GO ?= go

.PHONY: all build vet test race short bench bench-json verify experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the engine packages; the concurrent write
# pipeline and parallel lookup tests are the main target. -short skips
# the long soaks so this stays tractable on small machines.
race:
	$(GO) test -race -short ./internal/...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# Run the restart-format block benchmarks (linear v1 vs restart-seek v2 at
# 4K/16K/64K blocks) and emit machine-readable results for the PR record.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTableGet|BenchmarkSeekGE' -benchmem \
		./internal/sstable/ | $(GO) run ./cmd/benchjson > BENCH_pr2.json
	@echo wrote BENCH_pr2.json

# Fast correctness gate for the read-path packages: static checks plus a
# race-detector pass over the sstable block format and the lsm engine.
verify: vet build
	$(GO) test -race ./internal/sstable/... ./internal/lsm/...

# Regenerate the paper's evaluation at the default reduced scale.
experiments:
	$(GO) run ./cmd/lsmbench -exp all -scale 20000

clean:
	$(GO) clean ./...
