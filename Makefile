GO ?= go

.PHONY: all build vet lint lint-json lint-race test race short bench bench-json bench-ingest bench-postings bench-compaction bench-compare verify experiments ci clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (DESIGN.md §5.4): iterator aliasing,
# lock-guard annotations, internal-key comparison, trace nil-safety,
# hot-path allocation and error hygiene. Pure stdlib; exits non-zero on
# any finding.
lint:
	$(GO) run ./cmd/lsmlint ./...

# Same findings as lint, one JSON object per line on stdout — for CI
# annotators and editor integrations.
lint-json:
	$(GO) run ./cmd/lsmlint -json ./...

# Race-detector smoke over the packages the concurrency analyzers
# (lockorder/goleak/atomicmix) reason about: the commit-queue and
# parallel sub-compaction stress tests in internal/lsm and the
# concurrent workload profiler in internal/explain. Dynamic confirmation
# that the statically blessed lock order holds under contention.
lint-race:
	$(GO) test -race -run 'TestGroupCommit|TestCommit|TestParallelCompaction' ./internal/lsm/
	$(GO) test -race -run 'TestProfilerConcurrent|TestWorkloadSnapshot' ./internal/explain/

test: build
	$(GO) test ./...

# Race-detector pass over the engine packages; the concurrent write
# pipeline and parallel lookup tests are the main target. -short skips
# the long soaks so this stays tractable on small machines.
race:
	$(GO) test -race -short ./internal/...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# Run the restart-format block benchmarks (linear v1 vs restart-seek v2 at
# 4K/16K/64K blocks) and emit machine-readable results for the PR record.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkTableGet|BenchmarkSeekGE' -benchmem \
		./internal/sstable/ | $(GO) run ./cmd/benchjson > BENCH_pr2.json
	@echo wrote BENCH_pr2.json

# Run the group-commit ingest benchmarks (1/8 writers, inline vs grouped
# WAL sync under SyncGrouped) and emit machine-readable results for the
# PR record: ops/sec, fsyncs/op and commits per group.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestGroupCommit' -benchtime=2s \
		./internal/lsm/ | $(GO) run ./cmd/benchjson > BENCH_pr6.json
	@echo wrote BENCH_pr6.json

# Run the posting-list codec benchmarks (v1 JSON vs v2 binary): the
# isolated decode+merge at 10/100/1k-entry lists, the Eager RMW PUT at a
# fixed list size, and the Lazy LOOKUP top-10 end to end. Emits
# machine-readable results for the PR record.
bench-postings:
	{ $(GO) test -run '^$$' -bench 'BenchmarkPostingsMerge' -benchmem \
		./internal/postings/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEagerPut|BenchmarkLazyLookup' -benchmem \
		./internal/core/ ; } | $(GO) run ./cmd/benchjson > BENCH_pr7.json
	@echo wrote BENCH_pr7.json

# Run the sub-compaction engine benchmarks: full-compaction throughput at
# parallelism 1/2/4 over the primary-only and Lazy-index workloads. Emits
# machine-readable results for the PR record. Speedups at parallelism > 1
# require GOMAXPROCS >= parallelism (EXPERIMENTS.md).
bench-compaction:
	$(GO) test -run '^$$' -bench 'BenchmarkCompactionThroughput' -benchmem \
		./internal/core/ | $(GO) run ./cmd/benchjson > BENCH_pr10.json
	@echo wrote BENCH_pr10.json

# Benchmark regression gate: re-run the baseline's benchmarks and fail if
# any ops/sec dropped more than MAX_DROP percent against the recorded
# BASE JSON. Benchmarks missing from the base are reported and skipped
# (BenchmarkCompactionThroughput is new in BENCH_pr10.json and gates once
# a future BASE includes it).
BASE ?= BENCH_pr7.json
MAX_DROP ?= 25
bench-compare:
	{ $(GO) test -run '^$$' -bench 'BenchmarkPostingsMerge' -benchmem \
		./internal/postings/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEagerPut|BenchmarkLazyLookup' -benchmem \
		./internal/core/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCompactionThroughput' -benchmem \
		./internal/core/ ; } | $(GO) run ./cmd/benchjson -compare $(BASE) -max-drop $(MAX_DROP)

# Fast correctness gate for the read-path packages: static checks plus a
# race-detector pass over the sstable block format and the lsm engine.
verify: vet lint build
	$(GO) test -race ./internal/sstable/... ./internal/lsm/...

# The full pre-merge gate: static checks (go vet + lsmlint), a
# race-detector pass over every package, 10-second fuzz smokes of
# the sstable block round-trip and the posting-list codec (both seeded
# from testdata/fuzz corpora), and the bench-compare regression smoke
# against the recorded BENCH_pr7.json baseline. The experiments package alone runs ~18
# minutes under the race detector on a small box, so the per-package
# timeout (a hang guard, not a budget) is raised above go test's 10m
# default.
ci: vet lint lint-race build
	$(GO) test -race -timeout 45m ./...
	$(GO) test -fuzz=FuzzBlockRoundTrip -fuzztime=10s ./internal/sstable/
	$(GO) test -fuzz=FuzzPostingsRoundTrip -fuzztime=10s ./internal/postings/
	$(MAKE) bench-compare

# Regenerate the paper's evaluation at the default reduced scale.
experiments:
	$(GO) run ./cmd/lsmbench -exp all -scale 20000

clean:
	$(GO) clean ./...
