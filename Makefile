GO ?= go

.PHONY: all build vet test race short bench experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the engine packages; the concurrent write
# pipeline and parallel lookup tests are the main target. -short skips
# the long soaks so this stays tractable on small machines.
race:
	$(GO) test -race -short ./internal/...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# Regenerate the paper's evaluation at the default reduced scale.
experiments:
	$(GO) run ./cmd/lsmbench -exp all -scale 20000

clean:
	$(GO) clean ./...
