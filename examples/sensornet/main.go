// Wireless sensor network example — the paper's Embedded-index sweet spot
// (§1: "wireless sensor networks where a sensor generates data of the
// form (measurement id, temperature, humidity) and needs support for
// secondary attribute queries").
//
// The workload is write-heavy (sensors stream measurements) with rare
// secondary queries ("which measurements hit 30°C?"), on a
// space-constrained device — exactly the profile where the Embedded index
// (bloom filters + zone maps inside the primary SSTables) wins: zero
// index-table writes, zero index-table disk space.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"leveldbpp/internal/advisor"
	"leveldbpp/internal/core"
)

func measurement(sensor int, temp, humidity float64, tick int) (string, []byte) {
	key := fmt.Sprintf("m%08d", tick)
	// Temperature encoded zero-padded in tenths of a degree so range
	// predicates work over string zone maps.
	doc := fmt.Sprintf(`{"Sensor":"s%03d","TempDeci":"%05d","Humidity":"%05.1f","Tick":"%08d"}`,
		sensor, int(temp*10), humidity, tick)
	return key, []byte(doc)
}

func main() {
	// First, ask the advisor (Figure 2) what this workload needs.
	rec := advisor.Recommend(advisor.Profile{
		WriteFraction:          0.9,
		SecondaryQueryFraction: 0.02,
		SpaceConstrained:       true,
	})
	fmt.Printf("advisor recommends: %s\n  %s\n\n", rec.Index, rec.Rationale)

	dir, err := os.MkdirTemp("", "leveldbpp-sensornet-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(filepath.Join(dir, "sensors"), core.Options{
		Index:          rec.Index,
		Attrs:          []string{"TempDeci", "Sensor"},
		MemTableBytes:  128 << 10,
		BaseLevelBytes: 512 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Stream 15k measurements from 50 sensors; temperature drifts with
	// a slow daily cycle plus noise.
	rng := rand.New(rand.NewSource(3))
	const n = 15000
	for tick := 0; tick < n; tick++ {
		sensor := rng.Intn(50)
		base := 20 + 8*rng.Float64() // 20–28°C typical
		if rng.Intn(500) == 0 {
			base = 30 + 5*rng.Float64() // rare heat spike
		}
		key, doc := measurement(sensor, base, 40+20*rng.Float64(), tick)
		if err := db.Put(key, doc); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	prim, idx, err := db.DiskUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d measurements: primary=%d bytes, index tables=%d bytes, filters=%d bytes RAM\n",
		n, prim, idx, db.FilterMemoryUsage())

	// Secondary range query: all measurements at or above 30.0°C.
	s0 := db.Stats()
	hot, err := db.RangeLookup("TempDeci", "00300", "00999", 0)
	if err != nil {
		log.Fatal(err)
	}
	s1 := db.Stats()
	fmt.Printf("heat spikes ≥30.0°C: %d measurements found with %d block reads\n",
		len(hot), s1.Primary.BlockReads-s0.Primary.BlockReads)
	for i, e := range hot {
		if i >= 3 {
			fmt.Printf("  … and %d more\n", len(hot)-3)
			break
		}
		fmt.Printf("  %s → %s\n", e.Key, e.Value)
	}

	// Secondary point query: latest 5 readings from sensor s007.
	latest, err := db.Lookup("Sensor", "s007", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor s007, latest %d readings:\n", len(latest))
	for _, e := range latest {
		fmt.Printf("  %s → %s\n", e.Key, e.Value)
	}
}
