// Analytics example — the paper's Composite-index sweet spot (§1:
// "Composite Index is a good solution for general analytics platforms
// where one may group by year or department and so on").
//
// An order-events store is grouped by department with *unbounded* (no
// top-K) secondary queries. At no limit, Lazy and Composite share the
// same K+L index I/O, but Lazy pays JSON posting-list parse/merge CPU;
// Composite entries are plain keys. This example runs the same group-by
// on both and prints the wall-clock difference.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"leveldbpp/internal/core"
)

var departments = []string{
	"appliances", "books", "clothing", "electronics", "garden",
	"grocery", "music", "sports", "toys", "travel",
}

func main() {
	dir, err := os.MkdirTemp("", "leveldbpp-analytics-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const nOrders = 25000
	rng := rand.New(rand.NewSource(11))

	type record struct {
		key string
		doc []byte
	}
	records := make([]record, nOrders)
	for i := range records {
		dept := departments[rng.Intn(len(departments))]
		records[i] = record{
			key: fmt.Sprintf("order%08d", i),
			doc: []byte(fmt.Sprintf(`{"Dept":%q,"Amount":"%06d","Region":"r%02d"}`,
				dept, rng.Intn(100000), rng.Intn(20))),
		}
	}

	for _, kind := range []core.IndexKind{core.IndexComposite, core.IndexLazy} {
		db, err := core.Open(filepath.Join(dir, kind.String()), core.Options{
			Index:          kind,
			Attrs:          []string{"Dept"},
			MemTableBytes:  256 << 10,
			BaseLevelBytes: 1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range records {
			if err := db.Put(r.key, r.doc); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}

		// Group-by: count all orders per department (no top-K limit).
		start := time.Now()
		total := 0
		for _, dept := range departments {
			entries, err := db.Lookup("Dept", dept, 0) // 0 = return all
			if err != nil {
				log.Fatal(err)
			}
			total += len(entries)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-9s index: group-by over %d departments touched %d orders in %v\n",
			kind, len(departments), total, elapsed.Round(time.Millisecond))
		if total != nOrders {
			log.Fatalf("group-by lost rows: %d != %d", total, nOrders)
		}
		_ = db.Close()
	}

	fmt.Println("\npaper guideline: with no top-K limit both indexes read K+L blocks, but")
	fmt.Println("Composite avoids Lazy's posting-list JSON parse/merge CPU cost (§4.3).")
}
