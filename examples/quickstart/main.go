// Quickstart: open a LevelDB++ store with a Lazy secondary index, write a
// few JSON documents, and query them by secondary attribute.
package main

import (
	"fmt"
	"log"
	"os"

	"leveldbpp/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "leveldbpp-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open a database with a Lazy stand-alone index on "UserID".
	db, err := core.Open(dir, core.Options{
		Index: core.IndexLazy,
		Attrs: []string{"UserID"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// PUT: documents are JSON objects; indexed attributes must be
	// top-level string fields.
	puts := []struct{ key, doc string }{
		{"t1", `{"UserID":"alice","Text":"first tweet"}`},
		{"t2", `{"UserID":"alice","Text":"second tweet"}`},
		{"t3", `{"UserID":"bob","Text":"hello"}`},
		{"t4", `{"UserID":"alice","Text":"third tweet"}`},
	}
	for _, p := range puts {
		if err := db.Put(p.key, []byte(p.doc)); err != nil {
			log.Fatal(err)
		}
	}

	// GET by primary key.
	v, ok, err := db.Get("t3")
	if err != nil || !ok {
		log.Fatalf("get t3: %v %v", ok, err)
	}
	fmt.Printf("GET t3        → %s\n", v)

	// LOOKUP: the 2 most recent tweets by alice, newest first.
	entries, err := db.Lookup("UserID", "alice", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LOOKUP alice (top-2):")
	for _, e := range entries {
		fmt.Printf("  %s → %s\n", e.Key, e.Value)
	}

	// DELETE and observe the index follow.
	if err := db.Delete("t4"); err != nil {
		log.Fatal(err)
	}
	entries, err = db.Lookup("UserID", "alice", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after DEL t4, alice has %d tweets\n", len(entries))
}
