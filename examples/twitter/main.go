// Twitter timeline example — the paper's motivating application (§1):
// store tweets keyed by tweet id and serve "the K most recent tweets of a
// user", comparing the Lazy and Composite stand-alone indexes on the same
// synthetic stream.
//
// The paper's guideline: feeds are top-K-sensitive, so Lazy (which can
// stop at the first level boundary holding K results) is the right pick;
// this example measures both and prints the observed I/O difference.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"leveldbpp/internal/core"
	"leveldbpp/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "leveldbpp-twitter-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const nTweets = 20000
	tweets := workload.NewGenerator(workload.Config{Tweets: nTweets, Seed: 1}).All()

	open := func(kind core.IndexKind) *core.DB {
		db, err := core.Open(filepath.Join(dir, kind.String()), core.Options{
			Index:          kind,
			Attrs:          []string{workload.AttrUser},
			MemTableBytes:  256 << 10,
			BaseLevelBytes: 1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		return db
	}

	for _, kind := range []core.IndexKind{core.IndexLazy, core.IndexComposite} {
		db := open(kind)
		for _, tw := range tweets {
			if err := db.Put(tw.ID, tw.Doc()); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}

		// Serve 200 timeline requests: top-10 tweets of data-distributed
		// users (popular users queried more, like a real feed).
		q := workload.NewStaticQueries(tweets, 99)
		s0 := db.Stats()
		served := 0
		for i := 0; i < 200; i++ {
			op := q.Lookup(workload.AttrUser, 10)
			entries, err := db.Lookup(op.Attr, op.Lo, op.K)
			if err != nil {
				log.Fatal(err)
			}
			served += len(entries)
		}
		s1 := db.Stats()
		io := (s1.Primary.BlockReads - s0.Primary.BlockReads) + (s1.Index.BlockReads - s0.Index.BlockReads)
		fmt.Printf("%-9s index: served %4d timeline entries in 200 requests, %.2f block reads/request\n",
			kind, served, float64(io)/200)
		_ = db.Close()
	}

	fmt.Println("\npaper guideline: Lazy wins small-top-K feeds (it stops at the first")
	fmt.Println("level holding K results); Composite must walk every level's prefix range.")
}
