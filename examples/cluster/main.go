// Cluster example — the paper's Appendix D tradeoff, runnable: local
// (per-shard, Riak-style) versus global (attribute-partitioned,
// DynamoDB-style) secondary indexes over a hash-partitioned LevelDB++
// cluster.
//
// Point LOOKUPs in global mode touch one index shard; in local mode they
// scatter-gather across every data shard. Writes invert the tradeoff:
// global mode fans each PUT out to an index shard per attribute.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"leveldbpp/internal/core"
	"leveldbpp/internal/sharded"
	"leveldbpp/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "leveldbpp-cluster-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const nTweets = 10000
	tweets := workload.NewGenerator(workload.Config{Tweets: nTweets, Seed: 4}).All()

	for _, mode := range []struct {
		name string
		m    sharded.Mode
	}{{"local", sharded.LocalIndexes}, {"global", sharded.GlobalIndexes}} {
		c, err := sharded.Open(filepath.Join(dir, mode.name), sharded.Options{
			Shards: 4,
			Mode:   mode.m,
			Store: core.Options{
				Index:          core.IndexLazy,
				Attrs:          []string{workload.AttrUser},
				MemTableBytes:  128 << 10,
				BaseLevelBytes: 512 << 10,
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		d0, g0 := c.Stats()
		for _, tw := range tweets {
			if err := c.Put(tw.ID, tw.Doc()); err != nil {
				log.Fatal(err)
			}
		}
		d1, g1 := c.Stats()
		writeIO := (d1 - d0) + (g1 - g0)

		q := workload.NewStaticQueries(tweets, 5)
		var sample []sharded.Entry
		for i := 0; i < 100; i++ {
			op := q.Lookup(workload.AttrUser, 10)
			entries, err := c.Lookup(op.Attr, op.Lo, op.K)
			if err != nil {
				log.Fatal(err)
			}
			if len(entries) > 0 {
				sample = entries
			}
		}
		d2, g2 := c.Stats()
		readIO := (d2 - d1) + (g2 - g1)

		fmt.Printf("%-6s indexes: ingest I/O=%6d blocks, 100 top-10 lookups I/O=%5d blocks\n",
			mode.name, writeIO, readIO)
		if len(sample) > 0 {
			fmt.Printf("        sample result: %s (cluster seq %s)\n", sample[0].Key, sample[0].GSeq)
		}
		_ = c.Close()
	}

	fmt.Println("\nAppendix D tradeoff, as measured: global indexes always pay fan-out")
	fmt.Println("writes (one projected index entry per attribute). On reads they touch a")
	fmt.Println("single index shard — a win for low-skew values — but a Zipf-hot user's")
	fmt.Println("full-projection prefix scan can exceed local mode's scatter-gather,")
	fmt.Println("whose per-shard Lazy indexes stop at the first level holding top-K.")
}
