module leveldbpp

go 1.22
