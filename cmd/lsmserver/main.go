// Command lsmserver serves a LevelDB++ database over HTTP/JSON.
//
// Usage:
//
//	lsmserver -db /var/lib/tweets -index lazy -attrs UserID,CreationTime -addr :8080
//
// Endpoints (see internal/server):
//
//	PUT/GET/DELETE /doc/{key}
//	GET  /lookup?attr=&value=&k=
//	GET  /rangelookup?attr=&lo=&hi=&k=
//	GET  /explain/lookup  /explain/rangelookup  /explain/get
//	GET  /advisor
//	GET  /scan?lo=&hi=&limit=
//	POST /batch
//	GET  /stats   POST /flush   GET /check
//	GET  /healthz   GET /metrics   GET /events   GET /trace/slow
//	GET  /debug/pprof/*   (only with -pprof)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
	"leveldbpp/internal/server"
	"leveldbpp/internal/wal"
)

func main() {
	var (
		dir        = flag.String("db", "", "database directory (required)")
		index      = flag.String("index", "lazy", "index kind: none|embedded|eager|lazy|composite")
		attrs      = flag.String("attrs", "UserID,CreationTime", "comma-separated indexed attributes")
		addr       = flag.String("addr", ":8080", "listen address")
		cache      = flag.Int64("cache-mb", 0, "block cache size in MiB (0 = off, the paper's config)")
		metricsOn  = flag.Bool("metrics", true, "expose Prometheus text format at GET /metrics")
		pprofOn    = flag.Bool("pprof", false, "expose Go profiling at /debug/pprof/")
		traceRate  = flag.Float64("trace-sample", 0, "fraction of operations to trace (0 disables, 1 traces all)")
		eventsOut  = flag.String("events-jsonl", "", "append lifecycle events as JSON lines to this file")
		syncMode   = flag.String("sync-mode", "off", "WAL durability: off|always|grouped (grouped = one fsync per commit group)")
		groupOn    = flag.Bool("group-commit", false, "batch concurrent commits through the group-commit queue")
		postFmt    = flag.String("postings-format", "v2", "posting-list encoding written by Eager/Lazy indexes: v2 (binary) or v1 (seed JSON); reads sniff either")
		advisorIv  = flag.Duration("advisor-check", 0, "re-run the online index advisor at this interval (0 disables); flips land in the event log")
		compactPar = flag.Int("compaction-parallelism", 1, "key-range sub-compaction workers per compaction (1 = serial engine; results identical at any setting)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "lsmserver: -db is required")
		os.Exit(1)
	}
	kind, err := parseKind(*index)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserver:", err)
		os.Exit(1)
	}
	sync, err := wal.ParseSyncMode(*syncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserver:", err)
		os.Exit(1)
	}
	pf, err := postings.ParseFormat(*postFmt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserver:", err)
		os.Exit(1)
	}

	// The JSONL sink (if any) attaches as a secondary event sink behind the
	// DB's in-memory ring; it is flushed and closed on shutdown so the tail
	// of the event stream survives a SIGTERM.
	var jsonl *metrics.JSONLSink
	var events metrics.EventSink
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lsmserver:", err)
			os.Exit(1)
		}
		jsonl = metrics.NewJSONLSink(f)
		events = jsonl
	}

	db, err := core.Open(*dir, core.Options{
		Index:           kind,
		Attrs:           strings.Split(*attrs, ","),
		BlockCacheBytes: *cache << 20,
		TraceSampleRate: *traceRate,
		Events:          events,
		SyncMode:        sync,
		GroupCommit:     lsm.GroupCommitOptions{Enabled: *groupOn},
		PostingsFormat:  pf,

		CompactionParallelism: *compactPar,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsmserver:", err)
		os.Exit(1)
	}

	handler := server.NewWith(db, server.Config{Metrics: *metricsOn, Pprof: *pprofOn})
	if *advisorIv > 0 {
		go func() {
			t := time.NewTicker(*advisorIv)
			defer t.Stop()
			for range t.C {
				res := handler.AdvisorMonitor().Check()
				if res.Sufficient && !res.Match {
					log.Printf("advisor: configured=%s recommended=%s", res.Configured, res.Recommended)
				}
			}
		}()
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("shutting down")
		if err := srv.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	log.Printf("lsmserver: %s index on %s, serving %s (metrics=%v pprof=%v trace-sample=%g)",
		kind, *attrs, *addr, *metricsOn, *pprofOn, *traceRate)
	err = srv.ListenAndServe()
	if closeErr := db.Close(); closeErr != nil {
		log.Println("close:", closeErr)
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			log.Println("events-jsonl:", err)
		}
	}
	if err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func parseKind(s string) (core.IndexKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return core.IndexNone, nil
	case "embedded":
		return core.IndexEmbedded, nil
	case "eager":
		return core.IndexEager, nil
	case "lazy":
		return core.IndexLazy, nil
	case "composite":
		return core.IndexComposite, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q", s)
	}
}
