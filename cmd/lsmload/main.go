// Command lsmload ingests JSON-lines data into a LevelDB++ database —
// the consumer side of cmd/workloadgen:
//
//	workloadgen -mode dataset -tweets 100000 | lsmload -db /tmp/tweets -index lazy
//	workloadgen -mode mixed -ratios read-heavy -ops 50000 | lsmload -db /tmp/tweets -replay
//
// Dataset mode (default) expects {"id":..., ...attrs...} lines and PUTs
// each document under its "id". Replay mode (-replay) expects operation
// lines ({"op":"PUT","key":...,"value":{...}} etc.) and executes them,
// reporting throughput and query counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"leveldbpp/internal/core"
)

func main() {
	var (
		dir    = flag.String("db", "", "database directory (required)")
		index  = flag.String("index", "lazy", "index kind: none|embedded|eager|lazy|composite")
		attrs  = flag.String("attrs", "UserID,CreationTime", "comma-separated indexed attributes")
		replay = flag.Bool("replay", false, "input is an operation stream, not a dataset")
		batch  = flag.Int("batch", 1, "group dataset PUTs into atomic batches of this size")
		quiet  = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	kind, err := parseKind(*index)
	if err != nil {
		fatal(err)
	}
	db, err := core.Open(*dir, core.Options{Index: kind, Attrs: strings.Split(*attrs, ",")})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	start := time.Now()
	counts := map[string]int{}
	var pending core.Batch

	flush := func() {
		if pending.Len() > 0 {
			if err := db.Apply(&pending); err != nil {
				fatal(err)
			}
			pending.Reset()
		}
	}

	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if *replay {
			if err := replayOp(db, raw, counts); err != nil {
				fatal(fmt.Errorf("line %d: %w", line, err))
			}
		} else {
			var doc map[string]json.RawMessage
			if err := json.Unmarshal(raw, &doc); err != nil {
				fatal(fmt.Errorf("line %d: %w", line, err))
			}
			var id string
			if err := json.Unmarshal(doc["id"], &id); err != nil || id == "" {
				fatal(fmt.Errorf("line %d: missing or bad \"id\"", line))
			}
			delete(doc, "id")
			body, _ := json.Marshal(doc)
			pending.Put(id, body)
			counts["PUT"]++
			if pending.Len() >= *batch {
				flush()
			}
		}
		if !*quiet && line%100000 == 0 {
			fmt.Fprintf(os.Stderr, "lsmload: %d lines in %v\n", line, time.Since(start).Round(time.Second))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	flush()
	if err := db.Flush(); err != nil {
		fatal(err)
	}

	elapsed := time.Since(start)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lsmload: done in %v (%.0f lines/sec):", elapsed.Round(time.Millisecond),
			float64(line)/elapsed.Seconds())
		for op, n := range counts {
			fmt.Fprintf(os.Stderr, " %s=%d", op, n)
		}
		fmt.Fprintln(os.Stderr)
	}
}

func replayOp(db *core.DB, raw []byte, counts map[string]int) error {
	var op struct {
		Op    string          `json:"op"`
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
		Attr  string          `json:"attr"`
		Val   string          `json:"value_str"`
		Lo    string          `json:"lo"`
		Hi    string          `json:"hi"`
		K     int             `json:"k"`
	}
	if err := json.Unmarshal(raw, &op); err != nil {
		return err
	}
	counts[op.Op]++
	switch op.Op {
	case "PUT", "UPDATE":
		return db.Put(op.Key, op.Value)
	case "GET":
		_, _, err := db.Get(op.Key)
		return err
	case "LOOKUP":
		// workloadgen emits the lookup value in "value"; it may be a JSON
		// string.
		v := op.Val
		if v == "" {
			if json.Unmarshal(op.Value, &v) != nil {
				// Not a JSON string: fall back to the raw bytes.
				v = string(op.Value)
			}
		}
		_, err := db.Lookup(op.Attr, v, op.K)
		return err
	case "RANGELOOKUP":
		_, err := db.RangeLookup(op.Attr, op.Lo, op.Hi, op.K)
		return err
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

func parseKind(s string) (core.IndexKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return core.IndexNone, nil
	case "embedded":
		return core.IndexEmbedded, nil
	case "eager":
		return core.IndexEager, nil
	case "lazy":
		return core.IndexLazy, nil
	case "composite":
		return core.IndexComposite, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmload:", err)
	os.Exit(1)
}
