package main

import (
	"testing"

	"leveldbpp/internal/core"
)

func TestParseKind(t *testing.T) {
	cases := map[string]core.IndexKind{
		"none": core.IndexNone, "embedded": core.IndexEmbedded,
		"eager": core.IndexEager, "lazy": core.IndexLazy,
		"composite": core.IndexComposite, "LAZY": core.IndexLazy,
	}
	for in, want := range cases {
		got, err := parseKind(in)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseKind("btree"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func openShellDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{
		Index: core.IndexLazy,
		Attrs: []string{"UserID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestExecuteCommands(t *testing.T) {
	db := openShellDB(t)
	steps := [][]string{
		{"put", "t1", `{"UserID":"u1","Text":"hello`, `world"}`}, // spaces re-joined
		{"put", "t2", `{"UserID":"u1"}`},
		{"get", "t1"},
		{"lookup", "UserID", "u1"},
		{"lookup", "UserID", "u1", "1"},
		{"rangelookup", "UserID", "u0", "u2", "5"},
		{"del", "t1"},
		{"flush"},
		{"stats"},
		{"check"},
		{"help"},
	}
	for _, args := range steps {
		if err := execute(db, args); err != nil {
			t.Fatalf("execute(%v): %v", args, err)
		}
	}
	// The re-joined put must have stored the full JSON.
	v, ok, _ := db.Get("t2")
	if !ok || string(v) != `{"UserID":"u1"}` {
		t.Fatalf("t2 = %q %v", v, ok)
	}
}

func TestExecuteErrors(t *testing.T) {
	db := openShellDB(t)
	bad := [][]string{
		{"put", "only-key"},
		{"get"},
		{"del"},
		{"lookup", "UserID"},
		{"lookup", "UserID", "u1", "not-a-number"},
		{"rangelookup", "UserID", "a"},
		{"frobnicate"},
		{"lookup", "NotIndexed", "x"},
	}
	for _, args := range bad {
		if err := execute(db, args); err == nil {
			t.Errorf("execute(%v) should fail", args)
		}
	}
}
