// Command lsmdb is an interactive shell (and one-shot CLI) for a
// LevelDB++ database, exposing the paper's full operation set (Table 1).
//
// Usage:
//
//	lsmdb -db /tmp/tweets -index lazy -attrs UserID,CreationTime [command...]
//
// Commands (one-shot via arguments, or read line-by-line from stdin):
//
//	put <key> <json-document>
//	get <key>
//	del <key>
//	lookup <attr> <value> [topK]
//	rangelookup <attr> <lo> <hi> [topK]
//	explain <get|lookup|rangelookup> <args...>  (EXPLAIN report as JSON)
//	stats
//	flush
//	check     (full checksum + structure audit of all tables)
//	checkpoint <dir>  (consistent backup of all tables)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"leveldbpp/internal/core"
	"leveldbpp/internal/explain"
)

// explainAll (-explain) routes every get/lookup/rangelookup through the
// EXPLAIN path, printing the report after the results.
var explainAll bool

func main() {
	var (
		dir   = flag.String("db", "", "database directory (required)")
		index = flag.String("index", "lazy", "index kind: none|embedded|eager|lazy|composite")
		attrs = flag.String("attrs", "UserID,CreationTime", "comma-separated indexed attributes")
	)
	flag.BoolVar(&explainAll, "explain", false,
		"print an EXPLAIN report (plan, I/O, cost-model prediction) after every get/lookup/rangelookup")
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	kind, err := parseKind(*index)
	if err != nil {
		fatal(err)
	}
	db, err := core.Open(*dir, core.Options{
		Index: kind,
		Attrs: strings.Split(*attrs, ","),
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	if args := flag.Args(); len(args) > 0 {
		if err := execute(db, args); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("lsmdb (%s index on %s) — type 'help'\n", kind, *attrs)
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "exit" || fields[0] == "quit" {
			return
		}
		if err := execute(db, fields); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func parseKind(s string) (core.IndexKind, error) {
	switch strings.ToLower(s) {
	case "none":
		return core.IndexNone, nil
	case "embedded":
		return core.IndexEmbedded, nil
	case "eager":
		return core.IndexEager, nil
	case "lazy":
		return core.IndexLazy, nil
	case "composite":
		return core.IndexComposite, nil
	default:
		return 0, fmt.Errorf("unknown index kind %q", s)
	}
}

func execute(db *core.DB, args []string) error {
	switch args[0] {
	case "help":
		fmt.Println("put <key> <json> | get <key> | del <key> | lookup <attr> <value> [k] |",
			"rangelookup <attr> <lo> <hi> [k] | explain <get|lookup|rangelookup> <args...> |",
			"stats | flush | compact | check | checkpoint <dir> | exit")
		return nil
	case "explain":
		if len(args) < 2 {
			return fmt.Errorf("usage: explain <get|lookup|rangelookup> <args...>")
		}
		return executeExplain(db, args[1:])
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("usage: put <key> <json-document>")
		}
		return db.Put(args[1], []byte(strings.Join(args[2:], " ")))
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		if explainAll {
			return executeExplain(db, args)
		}
		v, ok, err := db.Get(args[1])
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
			return nil
		}
		fmt.Println(string(v))
		return nil
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: del <key>")
		}
		return db.Delete(args[1])
	case "lookup":
		if len(args) < 3 {
			return fmt.Errorf("usage: lookup <attr> <value> [topK]")
		}
		if explainAll {
			return executeExplain(db, args)
		}
		k, err := optionalK(args, 3)
		if err != nil {
			return err
		}
		entries, err := db.Lookup(args[1], args[2], k)
		if err != nil {
			return err
		}
		printEntries(entries)
		return nil
	case "rangelookup":
		if len(args) < 4 {
			return fmt.Errorf("usage: rangelookup <attr> <lo> <hi> [topK]")
		}
		if explainAll {
			return executeExplain(db, args)
		}
		k, err := optionalK(args, 4)
		if err != nil {
			return err
		}
		entries, err := db.RangeLookup(args[1], args[2], args[3], k)
		if err != nil {
			return err
		}
		printEntries(entries)
		return nil
	case "stats":
		s := db.Stats()
		prim, idx, err := db.DiskUsage()
		if err != nil {
			return err
		}
		fmt.Printf("disk: primary=%d index=%d bytes; filters=%d bytes in memory\n",
			prim, idx, db.FilterMemoryUsage())
		fmt.Printf("primary I/O: reads=%d writes=%d compaction=%d\n",
			s.Primary.BlockReads, s.Primary.BlockWrites, s.Primary.CompactionIO())
		fmt.Printf("index   I/O: reads=%d writes=%d compaction=%d\n",
			s.Index.BlockReads, s.Index.BlockWrites, s.Index.CompactionIO())
		fmt.Print(db.DebugString())
		return nil
	case "flush":
		return db.Flush()
	case "compact":
		return db.CompactRange("", "")
	case "checkpoint":
		if len(args) != 2 {
			return fmt.Errorf("usage: checkpoint <dest-dir>")
		}
		if err := db.Checkpoint(args[1]); err != nil {
			return err
		}
		fmt.Println("checkpoint written to", args[1])
		return nil
	case "check":
		reports, err := db.Verify()
		if err != nil {
			return err
		}
		ok := true
		for name, rep := range reports {
			fmt.Printf("%s: %d tables, %d blocks, %d entries", name, rep.Tables, rep.Blocks, rep.Entries)
			if rep.OK() {
				fmt.Println(" — OK")
				continue
			}
			ok = false
			fmt.Println()
			for _, p := range rep.Problems {
				fmt.Println("  PROBLEM:", p)
			}
		}
		if !ok {
			return fmt.Errorf("consistency check failed")
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", args[0])
	}
}

// executeExplain runs one operation through the EXPLAIN path and prints
// results followed by the indented-JSON report and its one-line summary.
func executeExplain(db *core.DB, args []string) error {
	var rep *explain.Report
	switch args[0] {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: explain get <key>")
		}
		v, ok, r, err := db.ExplainGet(args[1])
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
		} else {
			fmt.Println(string(v))
		}
		rep = r
	case "lookup":
		if len(args) < 3 {
			return fmt.Errorf("usage: explain lookup <attr> <value> [topK]")
		}
		k, err := optionalK(args, 3)
		if err != nil {
			return err
		}
		entries, r, err := db.ExplainLookup(args[1], args[2], k)
		if err != nil {
			return err
		}
		printEntries(entries)
		rep = r
	case "rangelookup":
		if len(args) < 4 {
			return fmt.Errorf("usage: explain rangelookup <attr> <lo> <hi> [topK]")
		}
		k, err := optionalK(args, 4)
		if err != nil {
			return err
		}
		entries, r, err := db.ExplainRangeLookup(args[1], args[2], args[3], k)
		if err != nil {
			return err
		}
		printEntries(entries)
		rep = r
	default:
		return fmt.Errorf("explain: unknown operation %q (get|lookup|rangelookup)", args[0])
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	fmt.Println(rep.String())
	return nil
}

func optionalK(args []string, pos int) (int, error) {
	if len(args) <= pos {
		return 0, nil
	}
	k, err := strconv.Atoi(args[pos])
	if err != nil {
		return 0, fmt.Errorf("bad topK %q: %w", args[pos], err)
	}
	return k, nil
}

func printEntries(entries []core.Entry) {
	for _, e := range entries {
		fmt.Printf("%s\t%s\n", e.Key, e.Value)
	}
	fmt.Printf("(%d results)\n", len(entries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmdb:", err)
	os.Exit(1)
}
