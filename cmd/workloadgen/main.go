// Command workloadgen emits synthetic Twitter-style datasets and
// operation streams as JSON lines, reproducing the paper's open-sourced
// workload generator.
//
// Usage:
//
//	workloadgen -mode dataset -tweets 100000 -seed 1 > tweets.jsonl
//	workloadgen -mode mixed -ratios write-heavy -ops 50000 > ops.jsonl
//
// Dataset lines: {"id":...,"UserID":...,"CreationTime":...,"Text":...}
// Op lines:      {"op":"PUT","key":...,"value":{...}} etc.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"leveldbpp/internal/workload"
)

func main() {
	var (
		mode   = flag.String("mode", "dataset", "dataset | mixed")
		tweets = flag.Int("tweets", 10000, "dataset size")
		users  = flag.Int("users", 0, "user population (0 = tweets/30)")
		ops    = flag.Int("ops", 10000, "mixed-mode operation count")
		ratios = flag.String("ratios", "write-heavy", "write-heavy | read-heavy | update-heavy")
		topK   = flag.Int("topk", 10, "LOOKUP top-K in mixed mode")
		seed   = flag.Int64("seed", 2018, "RNG seed")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer func() {
		// The last buffered lines hit the pipe here; a full disk or a
		// closed stdout must not exit 0.
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}()
	enc := json.NewEncoder(w)

	switch *mode {
	case "dataset":
		g := workload.NewGenerator(workload.Config{Tweets: *tweets, Users: *users, Seed: *seed})
		for {
			t, ok := g.Next()
			if !ok {
				return
			}
			if err := enc.Encode(map[string]string{
				"id":           t.ID,
				"UserID":       t.UserID,
				"CreationTime": workload.EncodeTime(t.Creation),
				"Text":         t.Text,
			}); err != nil {
				fatal(err)
			}
		}
	case "mixed":
		var mix workload.MixRatios
		switch *ratios {
		case "write-heavy":
			mix = workload.WriteHeavy
		case "read-heavy":
			mix = workload.ReadHeavy
		case "update-heavy":
			mix = workload.UpdateHeavy
		default:
			fatal(fmt.Errorf("unknown ratios %q", *ratios))
		}
		m := workload.NewMixed(workload.Config{Seed: *seed, Users: *users}, mix, *ops, *topK)
		for {
			op, ok := m.Next()
			if !ok {
				return
			}
			rec := map[string]interface{}{"op": op.Kind.String()}
			switch op.Kind {
			case workload.OpPut, workload.OpUpdate:
				rec["key"] = op.Key
				rec["value"] = json.RawMessage(op.Value)
			case workload.OpGet:
				rec["key"] = op.Key
			case workload.OpLookup:
				rec["attr"], rec["value"], rec["k"] = op.Attr, op.Lo, op.K
			case workload.OpRangeLookup:
				rec["attr"], rec["lo"], rec["hi"], rec["k"] = op.Attr, op.Lo, op.Hi, op.K
			}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workloadgen:", err)
	os.Exit(1)
}
