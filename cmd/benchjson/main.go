// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records, one per result line.
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units (e.g. decodes/get) all become entries in the "metrics" map:
//
//	go test -bench . ./internal/sstable/ | benchjson > BENCH_pr2.json
//
// With -compare it instead acts as a regression gate: new results (still
// read from stdin as bench text) are matched by name against a baseline
// JSON file and the process exits 1 when any benchmark's ops/sec dropped
// by more than -max-drop percent:
//
//	go test -bench . ./internal/postings/ | benchjson -compare BENCH_pr7.json -max-drop 25
//
// Benchmarks absent from the baseline are reported and skipped — the gate
// only judges pairs that exist on both sides.
//
// Lines that are not benchmark results (goos/pkg headers, PASS, ok) are
// preserved under "env" when recognised, otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type output struct {
	Env        map[string]string `json:"env"`
	Benchmarks []record          `json:"benchmarks"`
}

func main() {
	var (
		compare = flag.String("compare", "", "baseline JSON file; gate new results against it instead of printing JSON")
		maxDrop = flag.Float64("max-drop", 25, "with -compare: maximum tolerated ops/sec drop in percent")
	)
	flag.Parse()

	out, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	if *compare != "" {
		if err := compareBase(os.Stdout, out, *compare, *maxDrop); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

func parseBench(r io.Reader) (output, error) {
	out := output{Env: map[string]string{}, Benchmarks: []record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			out.Env["pkg"] = pkg
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Result shape: Name Iterations (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := record{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			rec.Metrics[fields[i+1]] = val
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	return out, sc.Err()
}

// compareBase gates new results against a baseline file: for every
// benchmark present on both sides, the ops/sec drop derived from ns/op
// must stay within maxDrop percent.
func compareBase(w io.Writer, cur output, basePath string, maxDrop float64) error {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base output
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("decode %s: %w", basePath, err)
	}
	baseNS := map[string]float64{}
	for _, b := range base.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			baseNS[b.Name] = ns
		}
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	failed := false
	compared := 0
	for _, b := range cur.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok || ns <= 0 {
			continue
		}
		old, ok := baseNS[b.Name]
		if !ok {
			fmt.Fprintf(w, "SKIP %-55s not in baseline %s\n", b.Name, basePath)
			continue
		}
		compared++
		// ops/sec ratio = old_ns / new_ns; drop% = (1 - ratio) * 100.
		drop := (1 - old/ns) * 100
		status := "OK  "
		if drop > maxDrop {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "%s %-55s base=%.0fns/op new=%.0fns/op drop=%+.1f%%\n",
			status, b.Name, old, ns, drop)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched the baseline %s", basePath)
	}
	if failed {
		return fmt.Errorf("ops/sec regression beyond %.0f%% against %s", maxDrop, basePath)
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) within %.0f%% of %s\n", compared, maxDrop, basePath)
	return nil
}
