// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of benchmark records, one per result line.
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units (e.g. decodes/get) all become entries in the "metrics" map:
//
//	go test -bench . ./internal/sstable/ | benchjson > BENCH_pr2.json
//
// Lines that are not benchmark results (goos/pkg headers, PASS, ok) are
// preserved under "env" when recognised, otherwise ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type output struct {
	Env        map[string]string `json:"env"`
	Benchmarks []record          `json:"benchmarks"`
}

func main() {
	out := output{Env: map[string]string{}, Benchmarks: []record{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Env[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			out.Env["pkg"] = pkg
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Result shape: Name Iterations (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := record{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			rec.Metrics[fields[i+1]] = val
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
