// Command lsmbench regenerates the paper's tables and figures at a chosen
// scale and prints the measured rows.
//
// Usage:
//
//	lsmbench -exp fig8a -scale 50000
//	lsmbench -exp all   -scale 20000 -queries 100
//
// Experiments: fig2 fig7 fig8a fig8b fig8c fig9 fig10 fig11 fig12 fig13
// fig14 fig15 table3 table5 c1 c2 ablation cache seek concurrency pipeline
// ingest ycsb all. Figures 12–15 share the
// Mixed-workload driver: fig12 runs all three mixes; fig13/14/15 run the
// write-, read- and update-heavy mixes individually.
package main

import (
	"flag"
	"fmt"
	"os"

	"leveldbpp/internal/experiments"
	"leveldbpp/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (fig2,fig7,fig8a,...,table5,c1,c2,ablation,cache,concurrency,all)")
		scale   = flag.Int("scale", 20000, "number of tweets to ingest")
		queries = flag.Int("queries", 100, "queries per measurement cell")
		seed    = flag.Int64("seed", 2018, "dataset RNG seed")
		dir     = flag.String("dir", "", "scratch directory (default: temp)")
		csvDir  = flag.String("csv", "", "also write results as CSV files into this directory")
		trace   = flag.Bool("trace", false, "trace every operation and print a phase-time breakdown per experiment")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:   *scale,
		Queries: *queries,
		Seed:    *seed,
		Dir:     *dir,
		Out:     os.Stdout,
	}
	if *trace {
		cfg.Tracer = metrics.NewTracer(1, metrics.DefaultTraceRing)
	}
	if cfg.Dir == "" {
		tmp, err := os.MkdirTemp("", "lsmbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		cfg.Dir = tmp
	}

	// csvOut writes rows when -csv is set.
	csvOut := func(name string, header []string, rows [][]string) error {
		if *csvDir == "" {
			return nil
		}
		return experiments.WriteCSV(*csvDir, name, header, rows)
	}

	runners := map[string]func() error{
		"fig2": func() error { experiments.Fig2Advisor(cfg); return nil },
		"fig7": func() error {
			r, err := experiments.Fig7DatasetZipf(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.Fig7CSV(r)
			return csvOut("fig7", h, rows)
		},
		"fig8a": func() error {
			rs, err := experiments.Fig8aDatabaseSize(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.Fig8aCSV(rs)
			return csvOut("fig8a", h, rows)
		},
		"fig8b": func() error {
			rs, err := experiments.Fig8bPutPerformance(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.Fig8bCSV(rs)
			return csvOut("fig8b", h, rows)
		},
		"fig8c": func() error { _, err := experiments.Fig8cGetPerformance(cfg); return err },
		"fig9": func() error {
			rs, err := experiments.Fig9PutOverTime(cfg, 10)
			if err != nil {
				return err
			}
			h, rows := experiments.Fig9CSV(rs)
			return csvOut("fig9", h, rows)
		},
		"fig10": func() error {
			rs, err := experiments.Fig10UserIDQueries(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.QueryCSV(rs)
			return csvOut("fig10", h, rows)
		},
		"fig11": func() error {
			rs, err := experiments.Fig11CreationTimeQueries(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.QueryCSV(rs)
			return csvOut("fig11", h, rows)
		},
		"fig12": func() error {
			names := []string{"fig13-write-heavy", "fig14-read-heavy", "fig15-update-heavy"}
			fns := []func(experiments.Config) ([]experiments.MixedResult, error){
				experiments.Fig12WriteHeavy, experiments.Fig12ReadHeavy, experiments.Fig12UpdateHeavy,
			}
			for i, f := range fns {
				rs, err := f(cfg)
				if err != nil {
					return err
				}
				h, rows := experiments.MixedCSV(rs)
				if err := csvOut(names[i], h, rows); err != nil {
					return err
				}
			}
			return nil
		},
		"fig13":  func() error { _, err := experiments.Fig12WriteHeavy(cfg); return err },
		"fig14":  func() error { _, err := experiments.Fig12ReadHeavy(cfg); return err },
		"fig15":  func() error { _, err := experiments.Fig12UpdateHeavy(cfg); return err },
		"table3": func() error { _, _, err := experiments.Table3Embedded(cfg); return err },
		"table5": func() error { _, _, err := experiments.Table5StandAlone(cfg); return err },
		"c1": func() error {
			rs, err := experiments.AppendixC1BloomBits(cfg, nil)
			if err != nil {
				return err
			}
			h, rows := experiments.C1CSV(rs)
			return csvOut("c1", h, rows)
		},
		"c2": func() error { _, err := experiments.AppendixC2Compression(cfg); return err },
		"ablation": func() error {
			_, err := experiments.EmbeddedAblations(cfg)
			return err
		},
		"cache": func() error { _, err := experiments.CacheEffects(cfg); return err },
		"seek":  func() error { _, err := experiments.SeekProfile(cfg); return err },
		"ycsb":  func() error { _, err := experiments.YCSBBench(cfg, nil); return err },
		"concurrency": func() error {
			_, err := experiments.ConcurrentReaders(cfg, nil)
			return err
		},
		"pipeline": func() error {
			rs, err := experiments.PipelineIngest(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.PipelineCSV(rs)
			return csvOut("pipeline", h, rows)
		},
		"ingest": func() error {
			rs, err := experiments.IngestThroughput(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.IngestCSV(rs)
			return csvOut("ingest", h, rows)
		},
		"postings": func() error {
			rs, err := experiments.PostingsCost(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.PostingsCSV(rs)
			return csvOut("postings", h, rows)
		},
		"explain": func() error {
			rs, err := experiments.ExplainValidation(cfg)
			if err != nil {
				return err
			}
			h, rows := experiments.ExplainCSV(rs)
			return csvOut("explain", h, rows)
		},
	}

	order := []string{"fig7", "fig2", "fig8a", "fig8b", "fig8c", "fig9", "fig10", "fig11",
		"fig12", "table3", "table5", "c1", "c2", "ablation", "cache", "seek", "concurrency", "pipeline", "ingest", "postings", "explain", "ycsb"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("=== %s ===\n", name)
			if err := runners[name](); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			if cfg.Tracer != nil {
				experiments.PrintBreakdown(os.Stdout, cfg.Tracer)
			}
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q; known: %v and all", *exp, order))
	}
	if err := run(); err != nil {
		fatal(err)
	}
	if cfg.Tracer != nil {
		experiments.PrintBreakdown(os.Stdout, cfg.Tracer)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmbench:", err)
	os.Exit(1)
}
