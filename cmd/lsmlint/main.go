// Command lsmlint runs the engine's repo-specific static analyzers
// (internal/lint) over the packages matched by its arguments.
//
// Usage:
//
//	lsmlint [-list] [-only name,name] [-json] [patterns...]
//
// With no patterns it analyzes ./... relative to the current directory.
// -json prints newline-delimited JSON (one diagnostic object per line:
// analyzer, file, line, col, message, suppression) instead of the
// file:line:col text form, for CI annotators and editor integrations.
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"leveldbpp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "print diagnostics as newline-delimited JSON")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "lsmlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsmlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "lsmlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lsmlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
