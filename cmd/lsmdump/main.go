// Command lsmdump inspects SSTable files — the analogue of LevelDB's
// sst_dump, extended with the Embedded index structures this format adds.
//
// Usage:
//
//	lsmdump file.sst              # summary: entries, blocks, key range, attrs
//	lsmdump -blocks file.sst      # per-block key ranges and secondary zone maps
//	lsmdump -entries file.sst     # every entry (key@seq:kind → value)
//	lsmdump -verify file.sst      # full checksum scan
package main

import (
	"flag"
	"fmt"
	"os"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/sstable"
)

func main() {
	var (
		showBlocks  = flag.Bool("blocks", false, "print per-block metadata")
		showEntries = flag.Bool("entries", false, "print every entry")
		verify      = flag.Bool("verify", false, "read and checksum every block")
		maxValue    = flag.Int("maxvalue", 80, "truncate printed values to this many bytes")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lsmdump [-blocks] [-entries] [-verify] <file.sst>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	tbl, err := sstable.OpenTable(f, fi.Size(), nil)
	if err != nil {
		fatal(fmt.Errorf("open table: %w", err))
	}

	fmt.Printf("file:      %s (%d bytes)\n", path, fi.Size())
	fmt.Printf("entries:   %d in %d blocks\n", tbl.EntryCount(), tbl.NumBlocks())
	fmt.Printf("max seq:   %d\n", tbl.MaxSeq())
	if tbl.EntryCount() > 0 {
		fmt.Printf("key range: %s .. %s\n", ikey.String(tbl.Smallest()), ikey.String(tbl.Largest()))
	}
	attrs := tbl.SecondaryAttrs()
	if len(attrs) > 0 {
		fmt.Printf("embedded secondary attributes (%d):\n", len(attrs))
		for _, a := range attrs {
			if min, max, ok := tbl.FileZone(a); ok {
				fmt.Printf("  %-16s file zone [%q, %q]\n", a, min, max)
			} else {
				fmt.Printf("  %-16s (no values)\n", a)
			}
		}
	}
	fmt.Printf("filter memory: %d bytes\n", tbl.FilterMemoryBytes())

	if *showBlocks {
		fmt.Println("\nblocks:")
		for i := 0; i < tbl.NumBlocks(); i++ {
			first, last := tbl.BlockRange(i)
			fmt.Printf("  block %4d: %s .. %s\n", i, ikey.String(first), ikey.String(last))
			for _, a := range attrs {
				if min, max, ok := tbl.BlockZone(a, i); ok {
					fmt.Printf("    %-14s zone [%q, %q]\n", a, min, max)
				}
			}
		}
	}

	if *showEntries {
		fmt.Println("\nentries:")
		it := tbl.NewIterator(false)
		for it.Next() {
			v := it.Value()
			suffix := ""
			if len(v) > *maxValue {
				v = v[:*maxValue]
				suffix = "…"
			}
			fmt.Printf("  %s → %s%s\n", ikey.String(it.Key()), v, suffix)
		}
		if err := it.Err(); err != nil {
			fatal(fmt.Errorf("iterating: %w", err))
		}
	}

	if *verify {
		it := tbl.NewIterator(false)
		n := 0
		for it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			fatal(fmt.Errorf("VERIFY FAILED: %w", err))
		}
		if n != tbl.EntryCount() {
			fatal(fmt.Errorf("VERIFY FAILED: iterated %d entries, meta says %d", n, tbl.EntryCount()))
		}
		fmt.Printf("verify: OK (%d entries, all checksums valid)\n", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmdump:", err)
	os.Exit(1)
}
