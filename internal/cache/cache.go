// Package cache provides a byte-capacity-bounded LRU block cache, the
// analogue of LevelDB's block cache. The paper's headline experiments run
// with the cache disabled ("No block cache was used") so that measured
// block I/O is purely algorithmic; the cache-effects experiment enables
// it to reproduce §5.2.2's discussion of caching under compaction churn —
// compaction rewrites tables, so cached blocks of consumed tables become
// unreachable (new tables get new IDs) exactly like invalidated OS buffer
// cache entries.
//
// The cache is partitioned into numShards independent LRU shards selected
// by key hash (LevelDB's ShardedLRUCache), so concurrent readers — the
// background write pipeline and parallel lookups — contend on a shard
// mutex rather than one global lock. Each shard owns an equal slice of
// the byte budget; eviction is per shard.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached block: the owning table's unique ID plus the
// block index within it.
type Key struct {
	Table uint64
	Block int
}

// numShards is the fixed shard count (a power of two, LevelDB uses 16).
const numShards = 16

// shardOf hashes a key to its shard (Fibonacci hashing over the table ID
// and block index; blocks of one table spread across shards).
func shardOf(k Key) uint64 {
	h := k.Table*0x9e3779b97f4a7c15 + uint64(k.Block)*0xbf58476d1ce4e5b9
	return (h >> 59) & (numShards - 1)
}

// Cache is a thread-safe sharded LRU over decoded block contents.
type Cache struct {
	shards [numShards]shard
}

// shard is one independent LRU partition.
type shard struct {
	mu       sync.Mutex
	capacity int64                 // guarded by mu
	used     int64                 // guarded by mu
	lru      *list.List            // guarded by mu; front = most recent; values are *entry
	items    map[Key]*list.Element // guarded by mu

	hits   int64 // guarded by mu
	misses int64 // guarded by mu
}

type entry struct {
	key  Key
	data []byte
}

// New returns a cache holding at most capacity bytes of block data.
// capacity <= 0 yields a cache that stores nothing (all misses), which
// callers may use instead of nil-checking. The budget splits evenly
// across shards (rounded up, as in LevelDB).
func New(capacity int64) *Cache {
	perShard := (capacity + numShards - 1) / numShards
	if capacity <= 0 {
		perShard = 0
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = shard{
			capacity: perShard,
			lru:      list.New(),
			items:    map[Key]*list.Element{},
		}
	}
	return c
}

// Get returns the cached block and true on a hit, promoting the entry.
func (c *Cache) Get(k Key) ([]byte, bool) {
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// Put inserts (or refreshes) a block, evicting LRU entries of its shard
// to stay within the shard's capacity. Blocks larger than a whole shard
// are not cached.
func (c *Cache) Put(k Key, data []byte) {
	s := &c.shards[shardOf(k)]
	if int64(len(data)) > s.capacity {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.used += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		s.lru.MoveToFront(el)
	} else {
		s.items[k] = s.lru.PushFront(&entry{key: k, data: data})
		s.used += int64(len(data))
	}
	for s.used > s.capacity {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		s.used -= int64(len(e.data))
		delete(s.items, e.key)
		s.lru.Remove(oldest)
	}
}

// EvictTable drops every block of one table from every shard — called
// when a compaction deletes the table, mirroring how address changes
// invalidate the OS buffer cache (paper §5.2.2).
func (c *Cache) EvictTable(table uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.Table == table {
				s.used -= int64(len(e.data))
				delete(s.items, e.key)
				s.lru.Remove(el)
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// Stats returns hit/miss counters and current usage summed over shards.
func (c *Cache) Stats() (hits, misses, usedBytes int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		usedBytes += s.used
		s.mu.Unlock()
	}
	return hits, misses, usedBytes
}

// Len returns the number of cached blocks across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
