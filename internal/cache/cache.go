// Package cache provides a byte-capacity-bounded LRU block cache, the
// analogue of LevelDB's block cache. The paper's headline experiments run
// with the cache disabled ("No block cache was used") so that measured
// block I/O is purely algorithmic; the cache-effects experiment enables
// it to reproduce §5.2.2's discussion of caching under compaction churn —
// compaction rewrites tables, so cached blocks of consumed tables become
// unreachable (new tables get new IDs) exactly like invalidated OS buffer
// cache entries.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached block: the owning table's unique ID plus the
// block index within it.
type Key struct {
	Table uint64
	Block int
}

// Cache is a thread-safe LRU over decoded block contents.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recent; values are *entry
	items    map[Key]*list.Element

	hits   int64
	misses int64
}

type entry struct {
	key  Key
	data []byte
}

// New returns a cache holding at most capacity bytes of block data.
// capacity <= 0 yields a cache that stores nothing (all misses), which
// callers may use instead of nil-checking.
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		items:    map[Key]*list.Element{},
	}
}

// Get returns the cached block and true on a hit, promoting the entry.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// Put inserts (or refreshes) a block, evicting LRU entries to stay within
// capacity. Blocks larger than the whole capacity are not cached.
func (c *Cache) Put(k Key, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
	} else {
		c.items[k] = c.lru.PushFront(&entry{key: k, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.used -= int64(len(e.data))
		delete(c.items, e.key)
		c.lru.Remove(oldest)
	}
}

// EvictTable drops every block of one table — called when a compaction
// deletes the table, mirroring how address changes invalidate the OS
// buffer cache (paper §5.2.2).
func (c *Cache) EvictTable(table uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Table == table {
			c.used -= int64(len(e.data))
			delete(c.items, e.key)
			c.lru.Remove(el)
		}
		el = next
	}
}

// Stats returns hit/miss counters and current usage.
func (c *Cache) Stats() (hits, misses, usedBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
