package cache

import (
	"sync"
	"testing"
)

func blk(n int) []byte { return make([]byte, n) }

func TestGetPut(t *testing.T) {
	c := New(1024)
	k := Key{Table: 1, Block: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("hello"))
	v, ok := c.Get(k)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 1 || used != 5 {
		t.Fatalf("stats = %d %d %d", hits, misses, used)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(300)
	for i := 0; i < 4; i++ {
		c.Put(Key{Table: 1, Block: i}, blk(100))
	}
	// Capacity 300 holds 3 blocks; block 0 must be evicted.
	if _, ok := c.Get(Key{Table: 1, Block: 0}); ok {
		t.Fatal("oldest block not evicted")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(Key{Table: 1, Block: i}); !ok {
			t.Fatalf("block %d wrongly evicted", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestAccessPromotes(t *testing.T) {
	c := New(300)
	c.Put(Key{1, 0}, blk(100))
	c.Put(Key{1, 1}, blk(100))
	c.Put(Key{1, 2}, blk(100))
	c.Get(Key{1, 0}) // promote the oldest
	c.Put(Key{1, 3}, blk(100))
	if _, ok := c.Get(Key{1, 0}); !ok {
		t.Fatal("promoted block evicted")
	}
	if _, ok := c.Get(Key{1, 1}); ok {
		t.Fatal("LRU block survived")
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	c := New(100)
	c.Put(Key{1, 0}, blk(200))
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("oversized block cached")
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

func TestPutRefreshAdjustsUsage(t *testing.T) {
	c := New(1000)
	c.Put(Key{1, 0}, blk(100))
	c.Put(Key{1, 0}, blk(300))
	if _, _, used := c.Stats(); used != 300 {
		t.Fatalf("used = %d, want 300", used)
	}
}

func TestEvictTable(t *testing.T) {
	c := New(10000)
	for tbl := uint64(1); tbl <= 3; tbl++ {
		for b := 0; b < 5; b++ {
			c.Put(Key{Table: tbl, Block: b}, blk(10))
		}
	}
	c.EvictTable(2)
	if c.Len() != 10 {
		t.Fatalf("Len after evict = %d", c.Len())
	}
	if _, ok := c.Get(Key{Table: 2, Block: 3}); ok {
		t.Fatal("evicted table still cached")
	}
	if _, ok := c.Get(Key{Table: 1, Block: 3}); !ok {
		t.Fatal("unrelated table evicted")
	}
	if _, _, used := c.Stats(); used != 100 {
		t.Fatalf("used = %d", used)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put(Key{1, 0}, []byte("x"))
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("zero-capacity cache stored a block")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Table: uint64(g % 4), Block: i % 50}
				if i%3 == 0 {
					c.Put(k, blk(64))
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.EvictTable(uint64(g % 4))
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		c.Put(Key{1, i}, blk(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Key{1, i % 100})
	}
}
