package cache

import (
	"sync"
	"testing"
)

func blk(n int) []byte { return make([]byte, n) }

// sameShardKeys returns n distinct keys for table that all hash to one
// shard, so LRU-order tests exercise a single partition deterministically.
func sameShardKeys(table uint64, n int) []Key {
	target := shardOf(Key{Table: table, Block: 0})
	out := []Key{{Table: table, Block: 0}}
	for b := 1; len(out) < n; b++ {
		k := Key{Table: table, Block: b}
		if shardOf(k) == target {
			out = append(out, k)
		}
	}
	return out
}

func TestGetPut(t *testing.T) {
	c := New(1024)
	k := Key{Table: 1, Block: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("hello"))
	v, ok := c.Get(k)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 1 || used != 5 {
		t.Fatalf("stats = %d %d %d", hits, misses, used)
	}
}

func TestLRUEviction(t *testing.T) {
	// 300 bytes per shard; four same-shard 100-byte blocks → the oldest
	// of the shard must go.
	c := New(300 * numShards)
	keys := sameShardKeys(1, 4)
	for _, k := range keys {
		c.Put(k, blk(100))
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest block not evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("block %v wrongly evicted", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestAccessPromotes(t *testing.T) {
	c := New(300 * numShards)
	keys := sameShardKeys(1, 4)
	c.Put(keys[0], blk(100))
	c.Put(keys[1], blk(100))
	c.Put(keys[2], blk(100))
	c.Get(keys[0]) // promote the oldest
	c.Put(keys[3], blk(100))
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("promoted block evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU block survived")
	}
}

func TestShardDistribution(t *testing.T) {
	// Many blocks of one table must not collapse into a single shard.
	shards := map[uint64]bool{}
	for b := 0; b < 256; b++ {
		shards[shardOf(Key{Table: 7, Block: b})] = true
	}
	if len(shards) < numShards/2 {
		t.Fatalf("256 blocks landed in only %d shards", len(shards))
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	// A block larger than one whole shard is not cached.
	c := New(100 * numShards)
	c.Put(Key{1, 0}, blk(200))
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("oversized block cached")
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

func TestPutRefreshAdjustsUsage(t *testing.T) {
	c := New(1000 * numShards)
	c.Put(Key{1, 0}, blk(100))
	c.Put(Key{1, 0}, blk(300))
	if _, _, used := c.Stats(); used != 300 {
		t.Fatalf("used = %d, want 300", used)
	}
}

func TestEvictTable(t *testing.T) {
	c := New(10000)
	for tbl := uint64(1); tbl <= 3; tbl++ {
		for b := 0; b < 5; b++ {
			c.Put(Key{Table: tbl, Block: b}, blk(10))
		}
	}
	c.EvictTable(2)
	if c.Len() != 10 {
		t.Fatalf("Len after evict = %d", c.Len())
	}
	if _, ok := c.Get(Key{Table: 2, Block: 3}); ok {
		t.Fatal("evicted table still cached")
	}
	if _, ok := c.Get(Key{Table: 1, Block: 3}); !ok {
		t.Fatal("unrelated table evicted")
	}
	if _, _, used := c.Stats(); used != 100 {
		t.Fatalf("used = %d", used)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put(Key{1, 0}, []byte("x"))
	if _, ok := c.Get(Key{1, 0}); ok {
		t.Fatal("zero-capacity cache stored a block")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Table: uint64(g % 4), Block: i % 50}
				if i%3 == 0 {
					c.Put(k, blk(64))
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.EvictTable(uint64(g % 4))
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		c.Put(Key{1, i}, blk(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Key{1, i % 100})
	}
}
