package sharded

import (
	"fmt"
	"math/rand"
	"testing"

	"leveldbpp/internal/core"
)

func clusterOptions(mode Mode) Options {
	return Options{
		Shards: 4,
		Mode:   mode,
		Store: core.Options{
			Index:               core.IndexLazy,
			Attrs:               []string{"UserID", "CreationTime"},
			MemTableBytes:       8 << 10,
			BaseLevelBytes:      32 << 10,
			LevelMultiplier:     4,
			L0CompactionTrigger: 3,
			MaxLevels:           5,
		},
	}
}

func openCluster(t testing.TB, mode Mode) *Cluster {
	t.Helper()
	c, err := Open(t.TempDir(), clusterOptions(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func doc(user string, ts int) []byte {
	return []byte(fmt.Sprintf(`{"UserID":%q,"CreationTime":"%010d","Text":"sharded"}`, user, ts))
}

var modes = map[string]Mode{"local": LocalIndexes, "global": GlobalIndexes}

func TestClusterBasics(t *testing.T) {
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			c := openCluster(t, mode)
			for i := 0; i < 30; i++ {
				if err := c.Put(fmt.Sprintf("t%03d", i), doc(fmt.Sprintf("u%d", i%3), i)); err != nil {
					t.Fatal(err)
				}
			}
			v, ok, err := c.Get("t007")
			if err != nil || !ok {
				t.Fatalf("Get: %v %v", ok, err)
			}
			if g, has := gseqOf(v); !has || g == "" {
				t.Fatal("stored doc lacks the gseq stamp")
			}

			got, err := c.Lookup("UserID", "u1", 3)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"t028", "t025", "t022"}
			if len(got) != 3 {
				t.Fatalf("Lookup returned %d", len(got))
			}
			for i := range want {
				if got[i].Key != want[i] {
					t.Fatalf("Lookup[%d] = %s, want %s (all: %v)", i, got[i].Key, want[i], keysOfEntries(got))
				}
			}
		})
	}
}

func keysOfEntries(es []Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Key
	}
	return out
}

func TestClusterUpdateAndDelete(t *testing.T) {
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			c := openCluster(t, mode)
			c.Put("t1", doc("u1", 1))
			c.Put("t2", doc("u1", 2))
			c.Put("t1", doc("u2", 3)) // moves t1 from u1 to u2
			if err := c.Delete("t2"); err != nil {
				t.Fatal(err)
			}
			got, err := c.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("stale results for u1: %v", keysOfEntries(got))
			}
			got, err = c.Lookup("UserID", "u2", 0)
			if err != nil || len(got) != 1 || got[0].Key != "t1" {
				t.Fatalf("u2 = %v, %v", keysOfEntries(got), err)
			}
		})
	}
}

func TestClusterRangeLookup(t *testing.T) {
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			c := openCluster(t, mode)
			for i := 0; i < 100; i++ {
				c.Put(fmt.Sprintf("t%03d", i), doc(fmt.Sprintf("u%d", i%5), i))
			}
			got, err := c.RangeLookup("CreationTime", "0000000010", "0000000019", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("range matched %d, want 10: %v", len(got), keysOfEntries(got))
			}
			// Newest first within the range.
			if got[0].Key != "t019" || got[9].Key != "t010" {
				t.Fatalf("range order: %v", keysOfEntries(got))
			}
		})
	}
}

func TestClusterDifferential(t *testing.T) {
	// Both modes must agree with a single unsharded reference store.
	local := openCluster(t, LocalIndexes)
	global := openCluster(t, GlobalIndexes)
	refOpts := clusterOptions(LocalIndexes).Store
	ref, err := core.Open(t.TempDir(), refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		var key string
		if i > 100 && rng.Intn(5) == 0 {
			key = fmt.Sprintf("t%05d", rng.Intn(i)) // update
		} else {
			key = fmt.Sprintf("t%05d", i)
		}
		d := doc(fmt.Sprintf("u%02d", rng.Intn(12)), i)
		if err := local.Put(key, d); err != nil {
			t.Fatal(err)
		}
		if err := global.Put(key, d); err != nil {
			t.Fatal(err)
		}
		if err := ref.Put(key, d); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			victim := fmt.Sprintf("t%05d", rng.Intn(i))
			local.Delete(victim)
			global.Delete(victim)
			ref.Delete(victim)
		}
	}
	for u := 0; u < 12; u++ {
		user := fmt.Sprintf("u%02d", u)
		for _, k := range []int{1, 5, 0} {
			want, err := ref.Lookup("UserID", user, k)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys := make([]string, len(want))
			for i, e := range want {
				wantKeys[i] = e.Key
			}
			for name, c := range map[string]*Cluster{"local": local, "global": global} {
				got, err := c.Lookup("UserID", user, k)
				if err != nil {
					t.Fatal(err)
				}
				gotKeys := keysOfEntries(got)
				if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
					t.Fatalf("%s mode, user %s, k=%d:\n got %v\nwant %v", name, user, k, gotKeys, wantKeys)
				}
			}
		}
	}
}

func TestClusterPersistence(t *testing.T) {
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			opts := clusterOptions(mode)
			c, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				c.Put(fmt.Sprintf("t%03d", i), doc(fmt.Sprintf("u%d", i%4), i))
			}
			c.Close()
			c2, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			got, err := c2.Lookup("UserID", "u2", 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[0].Key != "t198" || got[1].Key != "t194" {
				t.Fatalf("after reopen: %v", keysOfEntries(got))
			}
			// New writes must rank above everything pre-restart.
			c2.Put("t999", doc("u2", 999))
			got, _ = c2.Lookup("UserID", "u2", 1)
			if len(got) != 1 || got[0].Key != "t999" {
				t.Fatalf("logical clock went backwards: %v", keysOfEntries(got))
			}
		})
	}
}

func TestGlobalSingleShardLookupIsCheaper(t *testing.T) {
	// The core Appendix D tradeoff: point LOOKUPs touch one index shard
	// in global mode but every data shard in local mode.
	local := openCluster(t, LocalIndexes)
	global := openCluster(t, GlobalIndexes)
	for i := 0; i < 3000; i++ {
		d := doc(fmt.Sprintf("u%03d", i%100), i)
		local.Put(fmt.Sprintf("t%05d", i), d)
		global.Put(fmt.Sprintf("t%05d", i), d)
	}
	for _, c := range []*Cluster{local, global} {
		for _, s := range c.shards {
			s.Flush()
		}
	}
	measure := func(c *Cluster) int64 {
		d0, g0 := c.Stats()
		for q := 0; q < 50; q++ {
			if _, err := c.Lookup("UserID", fmt.Sprintf("u%03d", q%100), 10); err != nil {
				t.Fatal(err)
			}
		}
		d1, g1 := c.Stats()
		return (d1 - d0) + (g1 - g0)
	}
	localIO := measure(local)
	globalIO := measure(global)
	if globalIO >= localIO {
		t.Errorf("global-index lookups (%d I/Os) should beat local scatter-gather (%d I/Os)", globalIO, localIO)
	}
	t.Logf("lookup I/O over 50 queries: local=%d global=%d", localIO, globalIO)
}
