// Package sharded layers hash partitioning over LevelDB++ stores,
// reproducing the paper's Appendix D discussion: "in the distributed
// setting the main tradeoff is local versus global secondary indexes"
// (Riak's per-partition Stand-Alone indexes vs DynamoDB's global ones).
//
// Two modes are provided:
//
//   - LocalIndexes: each data shard maintains its own secondary index
//     (any of the paper's five techniques). A LOOKUP scatter-gathers
//     across every shard — cheap writes, fan-out reads (Riak's design).
//
//   - GlobalIndexes: a separate ring of index shards is partitioned by
//     *attribute value*; each entry projects the full document
//     (DynamoDB's global secondary index with full projection). A LOOKUP
//     touches exactly one index shard — fan-out writes, cheap reads.
//
// Global recency ordering across shards cannot use per-shard LSM
// sequence numbers; the cluster stamps a logical timestamp (the "_gseq"
// field) into every stored document and ranks results by it.
package sharded

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"leveldbpp/internal/bloom"
	"leveldbpp/internal/core"
	"leveldbpp/internal/lsm"
)

// Mode selects the distributed indexing strategy.
type Mode int

// The two strategies of Appendix D.
const (
	// LocalIndexes: per-shard secondary indexes, scatter-gather queries.
	LocalIndexes Mode = iota
	// GlobalIndexes: attribute-partitioned index shards with full
	// document projection, single-shard queries.
	GlobalIndexes
)

// GSeqField is the metadata field the cluster injects into stored
// documents to provide a cluster-wide insertion order.
const GSeqField = "_gseq"

// Options configures a Cluster.
type Options struct {
	// Shards is the number of data partitions (and, in GlobalIndexes
	// mode, index partitions). Default 4.
	Shards int
	// Mode selects local or global secondary indexes.
	Mode Mode
	// Store configures each underlying LevelDB++ shard. In GlobalIndexes
	// mode the per-shard Index is forced to IndexNone (the global ring
	// replaces it).
	Store core.Options
}

// Cluster is a hash-partitioned set of LevelDB++ stores.
type Cluster struct {
	opts   Options
	shards []*core.DB
	global []*lsm.DB // GlobalIndexes: one composite-keyed table per partition, all attrs

	mu   sync.Mutex
	gseq uint64 // guarded by mu; next global-index sequence number
}

// Open creates or reopens a cluster rooted at dir.
func Open(dir string, opts Options) (*Cluster, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sharded: create dir: %w", err)
	}
	c := &Cluster{opts: opts}

	storeOpts := opts.Store
	if opts.Mode == GlobalIndexes {
		storeOpts.Index = core.IndexNone
	}
	for i := 0; i < opts.Shards; i++ {
		db, err := core.Open(filepath.Join(dir, fmt.Sprintf("shard-%02d", i)), storeOpts)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.shards = append(c.shards, db)
	}
	if opts.Mode == GlobalIndexes {
		for i := 0; i < opts.Shards; i++ {
			idx, err := lsm.Open(filepath.Join(dir, fmt.Sprintf("gindex-%02d", i)), &lsm.Options{
				MemTableBytes:       opts.Store.MemTableBytes,
				BlockSize:           opts.Store.BlockSize,
				BaseLevelBytes:      opts.Store.BaseLevelBytes,
				LevelMultiplier:     opts.Store.LevelMultiplier,
				L0CompactionTrigger: opts.Store.L0CompactionTrigger,
				MaxLevels:           opts.Store.MaxLevels,
			})
			if err != nil {
				_ = c.Close()
				return nil, err
			}
			c.global = append(c.global, idx)
		}
	}
	// Recover the logical clock: the maximum _gseq across shards is a
	// lower bound; per-shard LSM sequence counts bound the rest. Simplest
	// sound recovery: sum of all shards' LastSeq (strictly ≥ any issued
	// gseq, preserving monotonicity).
	for _, s := range c.shards {
		c.gseq += s.LastSeq()
	}
	for _, g := range c.global {
		c.gseq += g.LastSeq()
	}
	return c, nil
}

// Close releases every shard.
func (c *Cluster) Close() error {
	var first error
	for _, s := range c.shards {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, g := range c.global {
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardFor routes a primary key to its data shard.
func (c *Cluster) shardFor(key string) *core.DB {
	return c.shards[bloom.Hash([]byte(key))%uint64(len(c.shards))]
}

// indexShardFor routes an attribute value to its global index shard.
func (c *Cluster) indexShardFor(attrValue string) *lsm.DB {
	return c.global[bloom.Hash([]byte(attrValue))%uint64(len(c.global))]
}

// stamp injects the cluster-wide logical timestamp into a document.
func stamp(doc []byte, gseq uint64) ([]byte, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, fmt.Errorf("sharded: document must be a JSON object: %w", err)
	}
	m[GSeqField] = json.RawMessage(fmt.Sprintf("%q", encodeGSeq(gseq)))
	return json.Marshal(m)
}

func encodeGSeq(g uint64) string { return fmt.Sprintf("%016d", g) }

func gseqOf(doc []byte) (string, bool) {
	var m map[string]json.RawMessage
	if json.Unmarshal(doc, &m) != nil {
		return "", false
	}
	raw, ok := m[GSeqField]
	if !ok {
		return "", false
	}
	var s string
	if json.Unmarshal(raw, &s) != nil {
		return "", false
	}
	return s, true
}

func attrOf(doc []byte, attr string) (string, bool) {
	var m map[string]json.RawMessage
	if json.Unmarshal(doc, &m) != nil {
		return "", false
	}
	raw, ok := m[attr]
	if !ok {
		return "", false
	}
	var s string
	if json.Unmarshal(raw, &s) != nil {
		return "", false
	}
	return s, true
}

const sep = byte(0)

func compositeKey(attr, value, primary string) []byte {
	k := make([]byte, 0, len(attr)+len(value)+len(primary)+2)
	k = append(k, attr...)
	k = append(k, sep)
	k = append(k, value...)
	k = append(k, sep)
	k = append(k, primary...)
	return k
}

func splitComposite(k []byte) (attr, value, primary string, ok bool) {
	first := -1
	for i, b := range k {
		if b != sep {
			continue
		}
		if first < 0 {
			first = i
			continue
		}
		return string(k[:first]), string(k[first+1 : i]), string(k[i+1:]), true
	}
	return "", "", "", false
}

// Put stores the document (a JSON object) under key. The stored form
// carries the injected GSeqField.
func (c *Cluster) Put(key string, doc []byte) error {
	c.mu.Lock()
	c.gseq++
	g := c.gseq
	c.mu.Unlock()

	stamped, err := stamp(doc, g)
	if err != nil {
		return err
	}
	shard := c.shardFor(key)

	if c.opts.Mode == GlobalIndexes {
		// Fan-out writes: one global index entry per indexed attribute,
		// carrying the full projected document (DynamoDB "ALL"
		// projection). Stale entries from attribute changes are filtered
		// at query time by comparing GSeq with the current record.
		for _, attr := range c.opts.Store.Attrs {
			v, ok := attrOf(stamped, attr)
			if !ok {
				continue
			}
			if err := c.indexShardFor(v).Put(compositeKey(attr, v, key), stamped); err != nil {
				return err
			}
		}
	}
	return shard.Put(key, stamped)
}

// Get fetches the current document for key (including the GSeqField).
func (c *Cluster) Get(key string) ([]byte, bool, error) {
	return c.shardFor(key).Get(key)
}

// Delete removes key, and in GlobalIndexes mode tombstones its index
// entries.
func (c *Cluster) Delete(key string) error {
	shard := c.shardFor(key)
	if c.opts.Mode == GlobalIndexes {
		old, ok, err := shard.Get(key)
		if err != nil {
			return err
		}
		if ok {
			for _, attr := range c.opts.Store.Attrs {
				if v, has := attrOf(old, attr); has {
					if err := c.indexShardFor(v).Delete(compositeKey(attr, v, key)); err != nil {
						return err
					}
				}
			}
		}
	}
	return shard.Delete(key)
}

// Entry is one cluster query result.
type Entry struct {
	Key   string
	Value []byte
	GSeq  string // cluster-wide insertion order, newest = largest
}

// Lookup returns the k most recent documents with attr == value across
// the whole cluster (k <= 0 means no limit).
func (c *Cluster) Lookup(attr, value string, k int) ([]Entry, error) {
	switch c.opts.Mode {
	case LocalIndexes:
		return c.scatterGather(k, func(s *core.DB) ([]core.Entry, error) {
			return s.Lookup(attr, value, k)
		})
	default:
		return c.globalLookup(attr, value, value, k)
	}
}

// RangeLookup returns the k most recent documents with lo <= attr <= hi.
func (c *Cluster) RangeLookup(attr, lo, hi string, k int) ([]Entry, error) {
	switch c.opts.Mode {
	case LocalIndexes:
		return c.scatterGather(k, func(s *core.DB) ([]core.Entry, error) {
			return s.RangeLookup(attr, lo, hi, k)
		})
	default:
		// A range of attribute values hashes to many index shards: query
		// them all (global indexes lose their single-shard advantage on
		// range predicates — the HyperDex motivation for value-range
		// partitioning).
		return c.globalLookup(attr, lo, hi, k)
	}
}

// scatterGather queries every data shard's local index and merges the
// shard top-Ks into the cluster top-K by GSeq.
func (c *Cluster) scatterGather(k int, q func(*core.DB) ([]core.Entry, error)) ([]Entry, error) {
	type res struct {
		entries []core.Entry
		err     error
	}
	results := make([]res, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *core.DB) {
			defer wg.Done()
			entries, err := q(s)
			results[i] = res{entries, err}
		}(i, s)
	}
	wg.Wait()

	var merged []Entry
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, e := range r.entries {
			g, ok := gseqOf(e.Value)
			if !ok {
				continue
			}
			merged = append(merged, Entry{Key: e.Key, Value: e.Value, GSeq: g})
		}
	}
	return rank(merged, k), nil
}

// globalLookup scans the relevant global index shard(s) and validates
// each projected entry against the owning data shard.
func (c *Cluster) globalLookup(attr, lo, hi string, k int) ([]Entry, error) {
	shardSet := map[*lsm.DB]bool{}
	if lo == hi {
		shardSet[c.indexShardFor(lo)] = true
	} else {
		for _, g := range c.global {
			shardSet[g] = true
		}
	}

	var candidates []Entry
	loK := compositeKey(attr, lo, "")
	hiK := append([]byte(attr), sep)
	hiK = append(hiK, hi...)
	hiK = append(hiK, sep+1)
	for g := range shardSet {
		err := g.Scan(loK, hiK, func(key, value []byte, _ uint64) bool {
			_, v, pk, ok := splitComposite(key)
			if !ok || v < lo || v > hi {
				return true
			}
			gs, ok := gseqOf(value)
			if !ok {
				return true
			}
			candidates = append(candidates, Entry{Key: pk, Value: append([]byte(nil), value...), GSeq: gs})
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	// Rank newest first, then validate projections against the data
	// shards until k valid results stand (an index entry is stale iff the
	// record's current GSeq differs).
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].GSeq > candidates[j].GSeq })
	var out []Entry
	seen := map[string]bool{}
	for _, cand := range candidates {
		if seen[cand.Key] {
			continue
		}
		seen[cand.Key] = true
		cur, ok, err := c.Get(cand.Key)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // deleted
		}
		curG, _ := gseqOf(cur)
		if curG != cand.GSeq {
			continue // superseded (possibly with a different attr value)
		}
		out = append(out, cand)
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out, nil
}

// rank orders entries newest-first by GSeq and truncates to k.
func rank(entries []Entry, k int) []Entry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].GSeq > entries[j].GSeq })
	if k > 0 && len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

// Stats sums I/O across all shards, split into data-shard and
// global-index-shard counters.
func (c *Cluster) Stats() (data, global int64) {
	for _, s := range c.shards {
		st := s.Stats()
		data += st.Primary.TotalIO() + st.Index.TotalIO()
	}
	for _, g := range c.global {
		global += g.Stats().Snapshot().TotalIO()
	}
	return data, global
}
