package advisor

import (
	"testing"

	"leveldbpp/internal/core"
)

func TestTimeCorrelatedPicksEmbedded(t *testing.T) {
	r := Recommend(Profile{TimeCorrelated: true, SecondaryQueryFraction: 0.5})
	if r.Index != core.IndexEmbedded {
		t.Fatalf("got %v", r.Index)
	}
}

func TestSpaceConstrainedPicksEmbedded(t *testing.T) {
	r := Recommend(Profile{SpaceConstrained: true, TypicalTopK: 10})
	if r.Index != core.IndexEmbedded {
		t.Fatalf("got %v", r.Index)
	}
}

func TestWriteHeavyFewLookupsPicksEmbedded(t *testing.T) {
	// The paper's sensor-network example: >50% writes, <5% secondary reads.
	r := Recommend(Profile{WriteFraction: 0.8, SecondaryQueryFraction: 0.02})
	if r.Index != core.IndexEmbedded {
		t.Fatalf("got %v", r.Index)
	}
}

func TestSmallTopKPicksLazy(t *testing.T) {
	// The paper's social-feed example: read-heavy, small top-K.
	r := Recommend(Profile{WriteFraction: 0.2, SecondaryQueryFraction: 0.3, TypicalTopK: 10})
	if r.Index != core.IndexLazy {
		t.Fatalf("got %v", r.Index)
	}
	if r.Rationale == "" {
		t.Fatal("missing rationale")
	}
}

func TestUnboundedQueriesPickComposite(t *testing.T) {
	// The paper's analytics example: group-by style return-all queries.
	r := Recommend(Profile{WriteFraction: 0.3, SecondaryQueryFraction: 0.4, TypicalTopK: 0})
	if r.Index != core.IndexComposite {
		t.Fatalf("got %v", r.Index)
	}
}

func TestEagerNeverRecommended(t *testing.T) {
	// §5.2.3: "Eager Index ... is not suitable for any workloads."
	profiles := []Profile{
		{}, {WriteFraction: 1}, {SecondaryQueryFraction: 1},
		{TypicalTopK: 1}, {TimeCorrelated: true}, {SpaceConstrained: true},
		{WriteFraction: 0.5, SecondaryQueryFraction: 0.5, TypicalTopK: 100},
	}
	for _, p := range profiles {
		if r := Recommend(p); r.Index == core.IndexEager {
			t.Fatalf("Eager recommended for %+v", p)
		}
	}
}
