package advisor

import (
	"testing"

	"leveldbpp/internal/core"
	"leveldbpp/internal/explain"
	"leveldbpp/internal/metrics"
)

func openLazy(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{
		Index: core.IndexLazy,
		Attrs: []string{"UserID", "CreationTime"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func flips(db *core.DB) int {
	n := 0
	for _, e := range db.EventLog().Events() {
		if e.Type == metrics.EventAdvisorFlip {
			n++
		}
	}
	return n
}

func TestFromWorkload(t *testing.T) {
	p := FromWorkload(explain.Workload{
		WriteFraction:          0.7,
		SecondaryQueryFraction: 0.1,
		TimeCorrelated:         true,
		TypicalTopK:            10,
	})
	if p.WriteFraction != 0.7 || p.SecondaryQueryFraction != 0.1 ||
		!p.TimeCorrelated || p.TypicalTopK != 10 {
		t.Fatalf("profile = %+v", p)
	}
	if p.SpaceConstrained {
		t.Fatal("SpaceConstrained is not observable and must stay false")
	}
}

// TestMonitorFlipOnce: an insufficient profile never advises; a sustained
// mismatch fires exactly one advisor_flip event; Evaluate never emits.
func TestMonitorFlipOnce(t *testing.T) {
	db := openLazy(t)
	m := NewMonitor(db)

	if res := m.Check(); res.Sufficient {
		t.Fatalf("sufficient with zero profiled ops: %+v", res)
	}
	if flips(db) != 0 {
		t.Fatal("insufficient profile emitted an event")
	}

	// Unbounded analytics-style lookups: Figure 2 recommends Composite,
	// mismatching the configured Lazy kind.
	for i := 0; i < 2*minOpsForAdvice; i++ {
		db.Profiler().RecordQuery(metrics.OpLookup, 0, 40)
	}
	res := m.Evaluate()
	if !res.Sufficient || res.Match {
		t.Fatalf("evaluate = %+v", res)
	}
	if res.Configured != "Lazy" || res.Recommended != "Composite" {
		t.Fatalf("recommendation = %s -> %s", res.Configured, res.Recommended)
	}
	if flips(db) != 0 {
		t.Fatal("Evaluate emitted an event")
	}

	if res := m.Check(); res.Match {
		t.Fatalf("check matched: %+v", res)
	}
	if flips(db) != 1 {
		t.Fatalf("flip events = %d, want 1", flips(db))
	}
	// A stable mismatch must not repeat the event.
	for i := 0; i < 3; i++ {
		m.Check()
	}
	if flips(db) != 1 {
		t.Fatalf("flip events = %d after repeated checks, want 1", flips(db))
	}
}

// TestMonitorRearmsAfterMatch: once the recommendation returns to the
// configured kind, a later divergence fires a fresh event.
func TestMonitorRearmsAfterMatch(t *testing.T) {
	db := openLazy(t)
	m := NewMonitor(db)

	// Mismatch (Composite), then flood with bounded top-10 queries until
	// the median K is positive again and Lazy matches.
	for i := 0; i < 2*minOpsForAdvice; i++ {
		db.Profiler().RecordQuery(metrics.OpLookup, 0, 40)
	}
	m.Check()
	if flips(db) != 1 {
		t.Fatalf("flip events = %d, want 1", flips(db))
	}
	for i := 0; i < 10*minOpsForAdvice; i++ {
		db.Profiler().RecordQuery(metrics.OpLookup, 10, 40)
	}
	res := m.Check()
	if !res.Match {
		t.Fatalf("expected match after bounded flood: %+v", res)
	}
	if flips(db) != 1 {
		t.Fatalf("flip events = %d after recovery, want 1", flips(db))
	}
	// New divergence: a monotone CreationTime stream makes the attribute
	// time-correlated and pushes the recommendation to Embedded.
	for i := 0; i < 100; i++ {
		db.Profiler().RecordAttrValue("CreationTime",
			string([]byte{'0' + byte(i/10%10), '0' + byte(i%10)}))
	}
	res = m.Check()
	if res.Match || res.Recommended != "Embedded" {
		t.Fatalf("expected Embedded divergence: %+v", res)
	}
	if flips(db) != 2 {
		t.Fatalf("flip events = %d after second divergence, want 2", flips(db))
	}
}
