package advisor

import (
	"sync"

	"leveldbpp/internal/core"
	"leveldbpp/internal/explain"
	"leveldbpp/internal/metrics"
)

// minOpsForAdvice is the smallest profiled operation count the online
// advisor will act on; below it the workload mix is noise.
const minOpsForAdvice = 32

// FromWorkload converts a profiler snapshot into the advisor's Profile.
// SpaceConstrained is a deployment property, not an observable — it stays
// false here and can be overridden by the caller.
func FromWorkload(w explain.Workload) Profile {
	return Profile{
		WriteFraction:          w.WriteFraction,
		SecondaryQueryFraction: w.SecondaryQueryFraction,
		TimeCorrelated:         w.TimeCorrelated,
		TypicalTopK:            w.TypicalTopK,
	}
}

// CheckResult is one online-advisor evaluation: the configured index kind
// against the kind the paper's decision strategy recommends for the
// workload observed so far.
type CheckResult struct {
	Configured  string           `json:"configured"`
	Recommended string           `json:"recommended"`
	Match       bool             `json:"match"`
	Rationale   string           `json:"rationale"`
	Sufficient  bool             `json:"sufficient"` // enough profiled ops to advise
	Profile     Profile          `json:"profile"`
	Workload    explain.Workload `json:"workload"`
}

// Monitor periodically re-runs the index-selection strategy against the
// live workload profile and emits an advisor_flip event when the
// recommendation moves away from the configured kind (or back). Safe for
// concurrent use.
type Monitor struct {
	db *core.DB

	mu      sync.Mutex
	lastRec core.IndexKind // last recommendation that fired an event
	armed   bool           // true once lastRec is meaningful
}

// NewMonitor returns a monitor watching db's profiler.
func NewMonitor(db *core.DB) *Monitor {
	return &Monitor{db: db}
}

// Evaluate computes the current CheckResult without emitting events —
// the pure form used by /advisor and the Prometheus gauges, so metric
// scrapes cannot spam the event log.
func (m *Monitor) Evaluate() CheckResult {
	w := m.db.Profiler().Snapshot()
	p := FromWorkload(w)
	rec := Recommend(p)
	return CheckResult{
		Configured:  m.db.Kind().String(),
		Recommended: rec.Index.String(),
		Match:       rec.Index == m.db.Kind(),
		Rationale:   rec.Rationale,
		Sufficient:  w.TotalOps >= minOpsForAdvice,
		Profile:     p,
		Workload:    w,
	}
}

// Check evaluates the advisor and emits an advisor_flip event when the
// recommendation changes to a kind other than the configured one (one
// event per distinct recommendation — a stable mismatch does not repeat).
func (m *Monitor) Check() CheckResult {
	res := m.Evaluate()
	if !res.Sufficient {
		return res
	}
	rec := kindFromString(res.Recommended)
	m.mu.Lock()
	fire := !res.Match && (!m.armed || m.lastRec != rec)
	if fire || res.Match {
		m.lastRec, m.armed = rec, true
	}
	m.mu.Unlock()
	if fire {
		m.db.EventLog().Emit(metrics.Event{
			Type: metrics.EventAdvisorFlip,
			Detail: "configured=" + res.Configured + " recommended=" + res.Recommended +
				": " + res.Rationale,
		})
	}
	return res
}

func kindFromString(s string) core.IndexKind {
	for _, k := range []core.IndexKind{core.IndexNone, core.IndexEmbedded,
		core.IndexEager, core.IndexLazy, core.IndexComposite} {
		if k.String() == s {
			return k
		}
	}
	return core.IndexNone
}
