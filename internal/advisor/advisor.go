// Package advisor implements the paper's secondary-index selection
// strategy (Figure 2 and the "Summary of Results" of §1): given a
// workload profile, it recommends one of the five indexing techniques
// with the paper's rationale.
package advisor

import (
	"fmt"

	"leveldbpp/internal/core"
)

// Profile characterizes an application workload for index selection.
type Profile struct {
	// WriteFraction is the share of PUT/DEL/UPDATE among all operations.
	WriteFraction float64
	// SecondaryQueryFraction is the share of LOOKUP/RANGELOOKUP among
	// all operations (the paper's "< 5%" branch compares against GETs
	// and writes).
	SecondaryQueryFraction float64
	// TimeCorrelated reports whether the indexed attribute correlates
	// with insertion time (zone maps become highly effective).
	TimeCorrelated bool
	// SpaceConstrained marks deployments where index storage/memory is a
	// concern (the paper's mobile/sensor examples).
	SpaceConstrained bool
	// TypicalTopK is the K most queries use; 0 means queries return all
	// matches (analytics-style).
	TypicalTopK int
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Index     core.IndexKind
	Rationale string
}

// Recommend applies Figure 2's decision strategy.
func Recommend(p Profile) Recommendation {
	// Embedded branch: time-correlated attribute, space concerns, or a
	// write-heavy workload with a small secondary-query share.
	switch {
	case p.TimeCorrelated:
		return Recommendation{
			Index: core.IndexEmbedded,
			Rationale: "attribute is time-correlated: file- and block-level zone maps prune " +
				"nearly all I/O, so the Embedded index matches stand-alone query speed at " +
				"zero index maintenance cost (paper §5.2.1, Figure 11)",
		}
	case p.SpaceConstrained:
		return Recommendation{
			Index: core.IndexEmbedded,
			Rationale: "space-constrained deployment: the Embedded index adds only " +
				"memory-resident filters to the primary table — no separate index table " +
				"(paper Figure 8a)",
		}
	case p.SecondaryQueryFraction < 0.05 && p.WriteFraction > 0.50:
		return Recommendation{
			Index: core.IndexEmbedded,
			Rationale: "write-heavy (>50% writes) with rare secondary queries (<5%): the " +
				"Embedded index's zero write overhead dominates its slower lookups " +
				"(paper Figure 2 guideline)",
		}
	}
	// Stand-alone branch: Eager is ruled out ("exponential write costs
	// ... not suitable for any workloads", §5.2.3); choose between Lazy
	// and Composite on top-K.
	if p.TypicalTopK > 0 {
		return Recommendation{
			Index: core.IndexLazy,
			Rationale: fmt.Sprintf("top-%d queries: Lazy stops at the first level boundary "+
				"holding K results, beating Composite's full-tree prefix scans "+
				"(paper §4.3, Figure 10a)", p.TypicalTopK),
		}
	}
	return Recommendation{
		Index: core.IndexComposite,
		Rationale: "unbounded (return-all) queries: Composite avoids Lazy's posting-list " +
			"parse/merge CPU cost at identical K+L I/O (paper §4.3; analytics guideline in §1)",
	}
}
