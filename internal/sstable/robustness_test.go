package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"leveldbpp/internal/ikey"
)

// TestOpenTableNeverPanicsOnGarbage feeds random byte blobs to OpenTable;
// it must reject them with errors, never panic or accept them.
func TestOpenTableNeverPanicsOnGarbage(t *testing.T) {
	prop := func(blob []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, err := OpenTable(bytes.NewReader(blob), int64(len(blob)), nil)
		return err != nil // garbage must not open cleanly
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestOpenTableMutatedRealTable flips random bytes in a real table file;
// every mutation must either fail at open, fail during iteration, or —
// if it happens to hit slack the checksums don't cover (there is none,
// but filters are probabilistic) — still never panic.
func TestOpenTableMutatedRealTable(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{BlockSize: 256, BitsPerKey: 10, SecondaryAttrs: []string{"a"}})
	for i := 0; i < 300; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("k%04d", i)), uint64(i+1), ikey.KindSet)
		err := b.Add(ik, []byte("value-value-value"), []AttrValue{{Attr: "a", Value: fmt.Sprintf("v%02d", i%10)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), orig...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			tbl, err := OpenTable(bytes.NewReader(data), size, nil)
			if err != nil {
				return // detected at open
			}
			it := tbl.NewIterator(false)
			for it.Next() {
				_ = it.Key()
				_ = it.Value()
			}
			_ = it.Err()
			// Point reads must also be panic-free.
			_, _, _, _ = tbl.Get([]byte("k0123"))
			_ = tbl.SecondaryCandidates("a", "v03")
		}()
	}
}

// TestTruncatedTablePrefixes opens every prefix of a real table; all must
// fail cleanly.
func TestTruncatedTablePrefixes(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{BlockSize: 128})
	for i := 0; i < 50; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("k%04d", i)), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 7 {
		if _, err := OpenTable(bytes.NewReader(full[:n]), int64(n), nil); err == nil {
			t.Fatalf("truncated table of %d/%d bytes opened cleanly", n, len(full))
		}
	}
}
