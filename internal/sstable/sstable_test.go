package sstable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
)

// buildTable writes n sequential entries with UserID/CreationTime
// attributes and returns an opened Table plus the backing buffer.
func buildTable(t *testing.T, n int, opts Options) (*Table, *metrics.IOStats) {
	t.Helper()
	var buf bytes.Buffer
	var stats metrics.IOStats
	opts.Stats = &stats
	b := NewBuilder(&buf, opts)
	for i := 0; i < n; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("t%08d", i)), uint64(i+1), ikey.KindSet)
		val := []byte(fmt.Sprintf(`{"UserID":"u%04d","CreationTime":"%010d"}`, i%50, i))
		attrs := []AttrValue{
			{Attr: "UserID", Value: fmt.Sprintf("u%04d", i%50)},
			{Attr: "CreationTime", Value: fmt.Sprintf("%010d", i)},
		}
		if err := b.Add(ik, val, attrs); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(buf.Len()) {
		t.Fatalf("Finish size %d != buffer %d", size, buf.Len())
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, &stats)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, &stats
}

func defaultOpts() Options {
	return Options{
		BlockSize:      512, // small so multi-block paths are exercised
		BitsPerKey:     10,
		Compression:    FlateCompression,
		SecondaryAttrs: []string{"UserID", "CreationTime"},
	}
}

func TestBuildOpenRoundTrip(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	if tbl.EntryCount() != 500 {
		t.Fatalf("EntryCount = %d", tbl.EntryCount())
	}
	if tbl.NumBlocks() < 2 {
		t.Fatalf("want multiple blocks, got %d", tbl.NumBlocks())
	}
	if string(ikey.UserKey(tbl.Smallest())) != "t00000000" {
		t.Fatalf("Smallest = %s", ikey.String(tbl.Smallest()))
	}
	if string(ikey.UserKey(tbl.Largest())) != "t00000499" {
		t.Fatalf("Largest = %s", ikey.String(tbl.Largest()))
	}
}

func TestGet(t *testing.T) {
	tbl, stats := buildTable(t, 500, defaultOpts())
	for _, i := range []int{0, 1, 250, 499} {
		key := []byte(fmt.Sprintf("t%08d", i))
		ik, val, ok, err := tbl.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key, ok, err)
		}
		if ikey.Seq(ik) != uint64(i+1) {
			t.Fatalf("Get(%s) seq = %d", key, ikey.Seq(ik))
		}
		if !bytes.Contains(val, []byte(fmt.Sprintf("u%04d", i%50))) {
			t.Fatalf("Get(%s) wrong value %s", key, val)
		}
	}
	before := stats.BlockReads.Load()
	if _, _, ok, _ := tbl.Get([]byte("missing-key")); ok {
		t.Fatal("found a missing key")
	}
	// Bloom filter should have prevented a block read for the miss (FP
	// possible but very unlikely at 10 bits/key).
	if after := stats.BlockReads.Load(); after != before {
		t.Logf("bloom false positive caused %d extra reads (acceptable, rare)", after-before)
	}
}

func TestGetReturnsNewestVersion(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, defaultOpts())
	// Same user key three times with descending seq (required order).
	for _, seq := range []uint64{30, 20, 10} {
		ik := ikey.Make([]byte("k"), seq, ikey.KindSet)
		if err := b.Add(ik, []byte(fmt.Sprintf("v%d", seq)), nil); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, nil)
	if err != nil {
		t.Fatal(err)
	}
	ik, val, ok, err := tbl.Get([]byte("k"))
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if ikey.Seq(ik) != 30 || string(val) != "v30" {
		t.Fatalf("got %s = %s, want seq 30", ikey.String(ik), val)
	}
}

func TestOutOfOrderAddFails(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, defaultOpts())
	if err := b.Add(ikey.Make([]byte("b"), 1, ikey.KindSet), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(ikey.Make([]byte("a"), 2, ikey.KindSet), nil, nil); err == nil {
		t.Fatal("out-of-order add must fail")
	}
}

func TestFullIteration(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	it := tbl.NewIterator(false)
	var prev []byte
	n := 0
	for it.Next() {
		if prev != nil && ikey.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iteration out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("iterated %d entries", n)
	}
}

func TestSeekGE(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	it := tbl.NewIterator(false)
	if !it.SeekGE(ikey.SeekKey([]byte("t00000100"))) {
		t.Fatal("SeekGE failed")
	}
	if got := string(ikey.UserKey(it.Key())); got != "t00000100" {
		t.Fatalf("SeekGE landed on %q", got)
	}
	// Seek between keys.
	if !it.SeekGE(ikey.SeekKey([]byte("t00000100x"))) {
		t.Fatal("SeekGE between failed")
	}
	if got := string(ikey.UserKey(it.Key())); got != "t00000101" {
		t.Fatalf("SeekGE between landed on %q", got)
	}
	// Past the end.
	if it.SeekGE(ikey.SeekKey([]byte("zzz"))) {
		t.Fatal("SeekGE past end should fail")
	}
}

func TestSecondaryCandidatesFindAllMatches(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	// u0007 appears at i=7,57,...,457: 10 entries scattered over blocks.
	cands := tbl.SecondaryCandidates("UserID", "u0007")
	if len(cands) == 0 {
		t.Fatal("no candidate blocks")
	}
	found := 0
	for _, bi := range cands {
		bit, err := tbl.BlockIterator(bi, false)
		if err != nil {
			t.Fatal(err)
		}
		for bit.Next() {
			if bytes.Contains(bit.Value(), []byte(`"UserID":"u0007"`)) {
				found++
			}
		}
	}
	if found != 10 {
		t.Fatalf("found %d matches via candidates, want 10", found)
	}
	// Pruning sanity: candidates should be far fewer than all blocks when
	// the attribute is selective... UserID with 50 values in every block is
	// NOT selective per block, so instead verify the time-correlated attr.
	tc := tbl.SecondaryCandidates("CreationTime", "0000000123")
	if len(tc) != 1 {
		t.Fatalf("time-correlated candidate blocks = %d, want exactly 1", len(tc))
	}
}

func TestSecondaryCandidatesAbsentValue(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	if c := tbl.SecondaryCandidates("UserID", "no-such-user"); len(c) != 0 {
		// Bloom FPs possible but zone map [u0000,u0049] excludes this value.
		t.Fatalf("candidates for absent value: %v", c)
	}
	if c := tbl.SecondaryCandidates("NotIndexed", "x"); c != nil {
		t.Fatal("candidates for unindexed attribute")
	}
}

func TestSecondaryRangeCandidates(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	// CreationTime is time-correlated: a narrow range must prune blocks.
	cands := tbl.SecondaryRangeCandidates("CreationTime", "0000000100", "0000000120")
	if len(cands) == 0 {
		t.Fatal("no range candidates")
	}
	if len(cands) >= tbl.NumBlocks() {
		t.Fatalf("time-correlated range did not prune: %d of %d blocks", len(cands), tbl.NumBlocks())
	}
	// Non-overlapping range.
	if c := tbl.SecondaryRangeCandidates("CreationTime", "9999999999", "9999999999"); len(c) != 0 {
		t.Fatal("candidates outside file zone")
	}
	// UserID (non-time-correlated) ranges should hit most blocks — the
	// paper's point about zone maps on uncorrelated attributes.
	wide := tbl.SecondaryRangeCandidates("UserID", "u0000", "u0049")
	if len(wide) != tbl.NumBlocks() {
		t.Fatalf("uncorrelated attr should hit all blocks, got %d of %d", len(wide), tbl.NumBlocks())
	}
}

func TestFileZone(t *testing.T) {
	tbl, _ := buildTable(t, 500, defaultOpts())
	min, max, ok := tbl.FileZone("CreationTime")
	if !ok || min != "0000000000" || max != "0000000499" {
		t.Fatalf("FileZone = %q %q %v", min, max, ok)
	}
	if _, _, ok := tbl.FileZone("NotIndexed"); ok {
		t.Fatal("FileZone for unindexed attr")
	}
}

func TestMayContainPrimary(t *testing.T) {
	tbl, stats := buildTable(t, 500, defaultOpts())
	r0 := stats.BlockReads.Load()
	if !tbl.MayContainPrimary([]byte("t00000042")) {
		t.Fatal("false negative on present key")
	}
	if tbl.MayContainPrimary([]byte("aaaa")) {
		t.Fatal("key below range should be rejected by zone")
	}
	if stats.BlockReads.Load() != r0 {
		t.Fatal("MayContainPrimary must not read blocks")
	}
}

func TestCompressionOnDiskSmaller(t *testing.T) {
	build := func(c Compression) int {
		var buf bytes.Buffer
		opts := defaultOpts()
		opts.Compression = c
		b := NewBuilder(&buf, opts)
		for i := 0; i < 1000; i++ {
			ik := ikey.Make([]byte(fmt.Sprintf("t%08d", i)), uint64(i+1), ikey.KindSet)
			// Highly compressible payload.
			val := bytes.Repeat([]byte("abcdefgh"), 32)
			if err := b.Add(ik, val, nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	raw, comp := build(NoCompression), build(FlateCompression)
	if comp >= raw {
		t.Fatalf("compressed table (%d) not smaller than raw (%d)", comp, raw)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, defaultOpts())
	for i := 0; i < 100; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("t%04d", i)), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, []byte("valuevaluevalue"), nil); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[10] ^= 0xff // flip a bit inside the first data block
	tbl, err := OpenTable(bytes.NewReader(data), size, nil)
	if err != nil {
		t.Fatal(err) // meta is intact; open succeeds
	}
	it := tbl.NewIterator(false)
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("corruption not detected")
	}
}

func TestCorruptMetaDetected(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, defaultOpts())
	if err := b.Add(ikey.Make([]byte("k"), 1, ikey.KindSet), []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-footerLen-2] ^= 0xff // inside the meta section
	if _, err := OpenTable(bytes.NewReader(data), size, nil); err == nil {
		t.Fatal("meta corruption not detected")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	if _, err := OpenTable(bytes.NewReader([]byte("short")), 5, nil); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, defaultOpts())
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.EntryCount() != 0 || tbl.NumBlocks() != 0 {
		t.Fatal("empty table has content")
	}
	it := tbl.NewIterator(false)
	if it.Next() {
		t.Fatal("iterating empty table")
	}
	if _, _, ok, _ := tbl.Get([]byte("k")); ok {
		t.Fatal("Get on empty table")
	}
}

func TestIOAttributionCompactionVsForeground(t *testing.T) {
	tbl, stats := buildTable(t, 500, defaultOpts())
	base := stats.Snapshot()
	it := tbl.NewIterator(true) // compaction read
	for it.Next() {
	}
	d := stats.Snapshot().Sub(base)
	if d.CompactionReads == 0 || d.BlockReads != 0 {
		t.Fatalf("compaction iterator misattributed: %+v", d)
	}
	base = stats.Snapshot()
	it = tbl.NewIterator(false)
	for it.Next() {
	}
	d = stats.Snapshot().Sub(base)
	if d.BlockReads == 0 || d.CompactionReads != 0 {
		t.Fatalf("foreground iterator misattributed: %+v", d)
	}
}

func TestQuickRoundTripArbitraryEntries(t *testing.T) {
	prop := func(raw map[string]string) bool {
		// Build sorted unique user keys.
		type kv struct{ k, v string }
		var entries []kv
		for k, v := range raw {
			entries = append(entries, kv{k, v})
		}
		if len(entries) == 0 {
			return true
		}
		// Sort by user key (seq constant ordering handled by distinct keys).
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				if entries[j].k < entries[i].k {
					entries[i], entries[j] = entries[j], entries[i]
				}
			}
		}
		var buf bytes.Buffer
		b := NewBuilder(&buf, Options{BlockSize: 64, BitsPerKey: 10})
		for i, e := range entries {
			ik := ikey.Make([]byte(e.k), uint64(i+1), ikey.KindSet)
			if err := b.Add(ik, []byte(e.v), nil); err != nil {
				return false
			}
		}
		size, err := b.Finish()
		if err != nil {
			return false
		}
		tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, nil)
		if err != nil {
			return false
		}
		for _, e := range entries {
			_, val, ok, err := tbl.Get([]byte(e.k))
			if err != nil || !ok || string(val) != e.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAccessors(t *testing.T) {
	tbl, _ := buildTable(t, 300, defaultOpts())
	if tbl.ID() == 0 {
		t.Fatal("table ID unassigned")
	}
	if tbl.MaxSeq() != 300 {
		t.Fatalf("MaxSeq = %d", tbl.MaxSeq())
	}
	if !tbl.HasAttr("UserID") || tbl.HasAttr("Nope") {
		t.Fatal("HasAttr wrong")
	}
	if tbl.FilterMemoryBytes() <= 0 {
		t.Fatal("FilterMemoryBytes zero")
	}
	attrs := tbl.SecondaryAttrs()
	if len(attrs) != 2 || attrs[0] != "CreationTime" || attrs[1] != "UserID" {
		t.Fatalf("SecondaryAttrs = %v", attrs)
	}
	first, last := tbl.BlockRange(0)
	if ikey.Compare(first, last) >= 0 {
		t.Fatal("block range inverted")
	}
	if min, max, ok := tbl.BlockZone("CreationTime", 0); !ok || min > max {
		t.Fatalf("BlockZone = %q %q %v", min, max, ok)
	}
	if _, _, ok := tbl.BlockZone("Nope", 0); ok {
		t.Fatal("BlockZone for unknown attr")
	}
}

func TestPrefixCompressionRoundTrip(t *testing.T) {
	// Keys with long shared prefixes and awkward boundaries.
	keys := []string{
		"a", "aa", "aaa", "aaab", "aaac", "ab",
		"prefix-0000000001", "prefix-0000000002", "prefix-0000000003",
		"prefix-00000001", "z",
	}
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{BlockSize: 1 << 20, Compression: NoCompression})
	for i, k := range keys {
		ik := ikey.Make([]byte(k), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, []byte(fmt.Sprintf("v-%s", k)), nil); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := tbl.NewIterator(false)
	i := 0
	for it.Next() {
		if got := string(ikey.UserKey(it.Key())); got != keys[i] {
			t.Fatalf("entry %d: key %q want %q", i, got, keys[i])
		}
		if got := string(it.Value()); got != "v-"+keys[i] {
			t.Fatalf("entry %d: value %q", i, got)
		}
		i++
	}
	if it.Err() != nil || i != len(keys) {
		t.Fatalf("iterated %d, err %v", i, it.Err())
	}
	// Retained keys must not alias the iterator's buffer.
	it2 := tbl.NewIterator(false)
	var saved [][]byte
	for it2.Next() {
		saved = append(saved, append([]byte(nil), it2.Key()...))
	}
	for i, s := range saved {
		if string(ikey.UserKey(s)) != keys[i] {
			t.Fatalf("saved key %d corrupted: %q", i, ikey.UserKey(s))
		}
	}
}

func TestPrefixCompressionShrinksSequentialKeys(t *testing.T) {
	build := func(prefixed bool) int {
		var buf bytes.Buffer
		b := NewBuilder(&buf, Options{BlockSize: 1 << 20, Compression: NoCompression})
		for i := 0; i < 2000; i++ {
			var k string
			if prefixed {
				k = fmt.Sprintf("tweet-id-with-long-common-prefix-%08d", i)
			} else {
				// Same key material but the varying digits lead, so
				// adjacent keys share only a few prefix bytes.
				k = fmt.Sprintf("%08d-tweet-id-with-long-common-suffix", i)
			}
			ik := ikey.Make([]byte(k), uint64(i+1), ikey.KindSet)
			if err := b.Add(ik, []byte("v"), nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	shared, unshared := build(true), build(false)
	if float64(shared) > 0.6*float64(unshared) {
		t.Fatalf("prefix compression ineffective: shared=%d unshared=%d", shared, unshared)
	}
}
