package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"leveldbpp/internal/bloom"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
)

// Options configures table building and opening.
type Options struct {
	// BlockSize is the uncompressed target size of a data block.
	BlockSize int
	// BitsPerKey sizes the per-block primary-key bloom filters.
	BitsPerKey int
	// SecondaryBitsPerKey sizes per-block secondary-attribute bloom
	// filters (paper Appendix C.1 sweeps this). 0 means BitsPerKey.
	SecondaryBitsPerKey int
	// Compression selects the block codec.
	Compression Compression
	// RestartInterval is the spacing of full (non-shared) keys in each
	// data block — the v2 restart-point format that makes in-block seeks
	// a binary search instead of a linear decode. 0 means
	// DefaultRestartInterval (16). A negative value disables restarts and
	// writes the legacy v1 block format and footer, byte-identical to the
	// seed builder (used by format-compatibility tests and ablations).
	RestartInterval int
	// SecondaryAttrs lists the attributes for which embedded bloom
	// filters and zone maps are built (paper §3). May be empty.
	SecondaryAttrs []string
	// Stats receives block I/O accounting; may be nil.
	Stats *metrics.IOStats
	// CompactionIO attributes writes to compaction counters instead of
	// foreground flush counters.
	CompactionIO bool
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.BitsPerKey <= 0 {
		o.BitsPerKey = 10
	}
	if o.SecondaryBitsPerKey <= 0 {
		o.SecondaryBitsPerKey = o.BitsPerKey
	}
	if o.RestartInterval == 0 {
		o.RestartInterval = DefaultRestartInterval
	}
	return o
}

// formatVersion returns the table format the options produce: 2 with a
// restart array, 1 (the seed format) when restarts are disabled.
func (o Options) formatVersion() int {
	if o.RestartInterval > 0 {
		return formatV2
	}
	return formatV1
}

// AttrValue carries one indexed secondary attribute value for an entry
// being added to a table.
type AttrValue struct {
	Attr  string
	Value string
}

// zone is a min/max range over attribute values (a zone map entry).
type zone struct {
	min, max string
	ok       bool
}

func (z *zone) extend(v string) {
	if !z.ok {
		z.min, z.max, z.ok = v, v, true
		return
	}
	if v < z.min {
		z.min = v
	}
	if v > z.max {
		z.max = v
	}
}

func (z *zone) contains(v string) bool      { return z.ok && z.min <= v && v <= z.max }
func (z *zone) overlaps(lo, hi string) bool { return z.ok && z.min <= hi && lo <= z.max }

// blockMeta is the in-memory (and on-disk) descriptor of one data block:
// its location, its primary-key zone map (first/last internal key — the
// "data index block" of Figure 3) and its primary bloom filter.
type blockMeta struct {
	offset, size uint64
	firstKey     []byte // internal key of the first entry
	lastKey      []byte // internal key of the last entry
	primaryBloom bloom.Filter
}

// secBlockMeta holds the Embedded-index structures for one (attribute,
// block) pair: a bloom filter over that block's attribute values and the
// block's attribute zone map.
type secBlockMeta struct {
	filter bloom.Filter
	zone   zone
}

// secAttrMeta aggregates an attribute's embedded index across a table:
// per-block filters/zones plus the file-level zone map the paper stores
// "in a global metadata file".
type secAttrMeta struct {
	name     string
	fileZone zone
	blocks   []secBlockMeta
}

// Builder writes an SSTable to w. Entries must be added in strictly
// increasing internal-key order.
type Builder struct {
	w    io.Writer
	opts Options

	block      blockBuilder
	firstIKey  []byte
	lastIKey   []byte
	userKeys   [][]byte
	attrValues map[string][]string
	attrZone   map[string]*zone

	blocks     []blockMeta
	attrs      map[string]*secAttrMeta
	offset     uint64
	entryCount int
	maxSeq     uint64
	prevIKey   []byte
	err        error
}

// NewBuilder returns a Builder writing to w with the given options.
func NewBuilder(w io.Writer, opts Options) *Builder {
	opts = opts.withDefaults()
	b := &Builder{
		w:          w,
		opts:       opts,
		attrValues: map[string][]string{},
		attrZone:   map[string]*zone{},
		attrs:      map[string]*secAttrMeta{},
	}
	if opts.RestartInterval > 0 {
		b.block.restartInterval = opts.RestartInterval
	}
	for _, a := range opts.SecondaryAttrs {
		b.attrs[a] = &secAttrMeta{name: a}
		b.attrZone[a] = &zone{}
	}
	return b
}

// Add appends an entry. attrs carries the entry's indexed secondary
// attribute values; attribute names not listed in Options.SecondaryAttrs
// are ignored, and entries (e.g. tombstones) may carry none.
func (b *Builder) Add(internalKey, value []byte, attrs []AttrValue) error {
	if b.err != nil {
		return b.err
	}
	if b.prevIKey != nil && ikey.Compare(b.prevIKey, internalKey) >= 0 {
		b.err = fmt.Errorf("sstable: keys added out of order: %s then %s",
			ikey.String(b.prevIKey), ikey.String(internalKey))
		return b.err
	}
	b.prevIKey = append(b.prevIKey[:0], internalKey...)

	if b.block.empty() {
		b.firstIKey = append([]byte(nil), internalKey...)
	}
	b.lastIKey = append(b.lastIKey[:0], internalKey...)
	b.block.add(internalKey, value)
	b.userKeys = append(b.userKeys, append([]byte(nil), ikey.UserKey(internalKey)...))
	for _, av := range attrs {
		if z, indexed := b.attrZone[av.Attr]; indexed {
			b.attrValues[av.Attr] = append(b.attrValues[av.Attr], av.Value)
			z.extend(av.Value)
		}
	}
	b.entryCount++
	if s := ikey.Seq(internalKey); s > b.maxSeq {
		b.maxSeq = s
	}

	if b.block.sizeEstimate() >= b.opts.BlockSize {
		return b.flushBlock()
	}
	return nil
}

func (b *Builder) flushBlock() error {
	phys, err := b.block.finish(b.opts.Compression)
	if err != nil {
		b.err = err
		return err
	}
	if _, err := b.w.Write(phys); err != nil {
		b.err = fmt.Errorf("sstable: write data block: %w", err)
		return b.err
	}
	if s := b.opts.Stats; s != nil {
		if b.opts.CompactionIO {
			s.CompactionWrites.Add(1)
			s.CompactionWriteBytes.Add(int64(len(phys)))
		} else {
			s.BlockWrites.Add(1)
			s.BlockWriteBytes.Add(int64(len(phys)))
		}
	}

	bm := blockMeta{
		offset:       b.offset,
		size:         uint64(len(phys)),
		firstKey:     b.firstIKey,
		lastKey:      append([]byte(nil), b.lastIKey...),
		primaryBloom: bloom.Build(b.userKeys, b.opts.BitsPerKey),
	}
	b.blocks = append(b.blocks, bm)
	b.offset += uint64(len(phys))

	for name, meta := range b.attrs {
		vals := b.attrValues[name]
		byteVals := make([][]byte, len(vals))
		for i, v := range vals {
			byteVals[i] = []byte(v)
		}
		sb := secBlockMeta{
			filter: bloom.Build(byteVals, b.opts.SecondaryBitsPerKey),
			zone:   *b.attrZone[name],
		}
		meta.blocks = append(meta.blocks, sb)
		if sb.zone.ok {
			meta.fileZone.extend(sb.zone.min)
			meta.fileZone.extend(sb.zone.max)
		}
		b.attrValues[name] = vals[:0]
		*b.attrZone[name] = zone{}
	}

	b.block.reset()
	b.userKeys = b.userKeys[:0]
	b.firstIKey = nil
	return nil
}

const (
	// footerLen is the legacy v1 footer: metaOff(8) metaLen(8) magic(8).
	footerLen = 24
	// footerLenV2 adds one format-version byte between metaLen and the
	// (new) magic: metaOff(8) metaLen(8) version(1) magicV2(8). A distinct
	// magic keeps the two footers unambiguous — readers sniff the last 8
	// bytes and parse accordingly, so v1 tables written by the seed
	// builder open byte-for-byte unchanged.
	footerLenV2 = 25
	tableMagic  = 0x4c534d2b2b474f21 // "LSM++GO!"
	tableMagic2 = 0x4c534d2b2b474f32 // "LSM++GO2"
	metaVersion = 1
	formatV1    = 1
	formatV2    = 2
)

// Finish flushes the pending block, writes the meta section and footer,
// and returns the total file size. The Builder must not be reused.
func (b *Builder) Finish() (int64, error) {
	if b.err != nil {
		return 0, b.err
	}
	if !b.block.empty() {
		if err := b.flushBlock(); err != nil {
			return 0, err
		}
	}
	meta := b.encodeMeta()
	metaOff := b.offset
	if _, err := b.w.Write(meta); err != nil {
		return 0, fmt.Errorf("sstable: write meta: %w", err)
	}
	b.offset += uint64(len(meta))
	if s := b.opts.Stats; s != nil {
		if b.opts.CompactionIO {
			s.CompactionWrites.Add(1)
			s.CompactionWriteBytes.Add(int64(len(meta)))
		} else {
			s.BlockWrites.Add(1)
			s.BlockWriteBytes.Add(int64(len(meta)))
		}
	}

	var footer [footerLenV2]byte
	binary.BigEndian.PutUint64(footer[0:8], metaOff)
	binary.BigEndian.PutUint64(footer[8:16], uint64(len(meta)))
	n := footerLen
	if b.opts.formatVersion() >= formatV2 {
		footer[16] = formatV2
		binary.BigEndian.PutUint64(footer[17:25], tableMagic2)
		n = footerLenV2
	} else {
		binary.BigEndian.PutUint64(footer[16:24], tableMagic)
	}
	if _, err := b.w.Write(footer[:n]); err != nil {
		return 0, fmt.Errorf("sstable: write footer: %w", err)
	}
	b.offset += uint64(n)
	return int64(b.offset), nil
}

// EntryCount returns the number of entries added so far.
func (b *Builder) EntryCount() int { return b.entryCount }

// EstimatedSize returns bytes written so far plus the pending block.
func (b *Builder) EstimatedSize() int64 {
	return int64(b.offset) + int64(b.block.sizeEstimate())
}

// --- meta encoding ---------------------------------------------------

type metaWriter struct{ buf []byte }

func (m *metaWriter) putUvarint(v uint64) { m.buf = binary.AppendUvarint(m.buf, v) }
func (m *metaWriter) putBytes(p []byte) {
	m.putUvarint(uint64(len(p)))
	m.buf = append(m.buf, p...)
}
func (m *metaWriter) putString(s string) { m.putBytes([]byte(s)) }
func (m *metaWriter) putBool(v bool) {
	if v {
		m.buf = append(m.buf, 1)
	} else {
		m.buf = append(m.buf, 0)
	}
}

func (b *Builder) encodeMeta() []byte {
	var m metaWriter
	m.putUvarint(metaVersion)
	m.putUvarint(uint64(len(b.blocks)))
	for _, bm := range b.blocks {
		m.putUvarint(bm.offset)
		m.putUvarint(bm.size)
		m.putBytes(bm.firstKey)
		m.putBytes(bm.lastKey)
		m.putBytes(bm.primaryBloom)
	}
	// Deterministic attribute order.
	m.putUvarint(uint64(len(b.opts.SecondaryAttrs)))
	for _, name := range b.opts.SecondaryAttrs {
		am := b.attrs[name]
		m.putString(am.name)
		m.putBool(am.fileZone.ok)
		m.putString(am.fileZone.min)
		m.putString(am.fileZone.max)
		for _, sb := range am.blocks {
			m.putBytes(sb.filter)
			m.putBool(sb.zone.ok)
			m.putString(sb.zone.min)
			m.putString(sb.zone.max)
		}
	}
	m.putUvarint(uint64(b.entryCount))
	m.putUvarint(b.maxSeq)
	crc := crc32.Checksum(m.buf, crcTable)
	m.buf = binary.BigEndian.AppendUint32(m.buf, crc)
	return m.buf
}
