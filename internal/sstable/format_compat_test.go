package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
)

func buildFormatTable(t *testing.T, restartInterval int, stats *metrics.IOStats) ([]byte, *Table) {
	t.Helper()
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{
		BlockSize:       512,
		BitsPerKey:      10,
		Compression:     NoCompression,
		RestartInterval: restartInterval,
	})
	for i := 0; i < 500; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("user%06d", i)), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, []byte(fmt.Sprintf("payload-%06d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, stats)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tbl
}

// TestV1FooterUnchanged pins the legacy wire format: RestartInterval < 0
// must produce a table whose trailing 24 bytes are the seed's v1 footer —
// old readers depend on finding tableMagic at exactly size-8.
func TestV1FooterUnchanged(t *testing.T) {
	data, tbl := buildFormatTable(t, -1, nil)
	if got := binary.BigEndian.Uint64(data[len(data)-8:]); got != tableMagic {
		t.Fatalf("v1 magic = %#x, want %#x", got, uint64(tableMagic))
	}
	if tbl.FormatVersion() != formatV1 {
		t.Fatalf("FormatVersion = %d, want %d", tbl.FormatVersion(), formatV1)
	}
	// v1 blocks must carry no restart trailer: the iterator sees zero
	// restart points and GETs fall back to the linear scan.
	var it BlockIter
	raw, err := tbl.readBlock(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.initBlockIter(&it, raw); err != nil {
		t.Fatal(err)
	}
	if it.numRestarts != 0 {
		t.Fatalf("v1 block has %d restarts", it.numRestarts)
	}
}

func TestV2FooterAndMagic(t *testing.T) {
	data, tbl := buildFormatTable(t, 0, nil)
	if got := binary.BigEndian.Uint64(data[len(data)-8:]); got != tableMagic2 {
		t.Fatalf("v2 magic = %#x, want %#x", got, uint64(tableMagic2))
	}
	if v := data[len(data)-9]; v != formatV2 {
		t.Fatalf("version byte = %d, want %d", v, formatV2)
	}
	if tbl.FormatVersion() != formatV2 {
		t.Fatalf("FormatVersion = %d, want %d", tbl.FormatVersion(), formatV2)
	}
}

// TestFormatsReadIdentically verifies both formats expose exactly the same
// logical contents through Get and through full iteration, and that the v1
// path never charges BlockSeeks while the v2 path does.
func TestFormatsReadIdentically(t *testing.T) {
	var s1, s2 metrics.IOStats
	_, t1 := buildFormatTable(t, -1, &s1)
	_, t2 := buildFormatTable(t, 0, &s2)

	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("user%06d", i))
		k1, v1, ok1, err1 := t1.Get(key)
		k2, v2, ok2, err2 := t2.Get(key)
		if err1 != nil || err2 != nil {
			t.Fatalf("get %d: %v / %v", i, err1, err2)
		}
		if !ok1 || !ok2 {
			t.Fatalf("get %d: ok %v / %v", i, ok1, ok2)
		}
		if !bytes.Equal(k1, k2) || !bytes.Equal(v1, v2) {
			t.Fatalf("get %d: contents differ between formats", i)
		}
	}
	if _, _, ok, _ := t1.Get([]byte("zzz-missing")); ok {
		t.Fatal("v1 found a missing key")
	}
	if _, _, ok, _ := t2.Get([]byte("zzz-missing")); ok {
		t.Fatal("v2 found a missing key")
	}

	i1, i2 := t1.NewIterator(true), t2.NewIterator(true)
	n := 0
	for i1.Next() {
		if !i2.Next() {
			t.Fatalf("v2 iterator ended early at %d", n)
		}
		if !bytes.Equal(i1.Key(), i2.Key()) || !bytes.Equal(i1.Value(), i2.Value()) {
			t.Fatalf("iteration diverges at entry %d", n)
		}
		n++
	}
	if i2.Next() {
		t.Fatal("v2 iterator has extra entries")
	}
	if err := i1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := i2.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("iterated %d entries, want 500", n)
	}

	if got := s1.Snapshot().BlockSeeks; got != 0 {
		t.Fatalf("v1 charged %d BlockSeeks", got)
	}
	if got := s2.Snapshot().BlockSeeks; got == 0 {
		t.Fatal("v2 charged no BlockSeeks")
	}
}

// TestSeekGELoadErrorSurfaces pins the satellite fix: a SeekGE that lands
// on a block which fails to load must report the error, not silently step
// to the next block.
func TestSeekGELoadErrorSurfaces(t *testing.T) {
	data, tbl := buildFormatTable(t, 0, nil)
	// Corrupt the first data block's CRC so loading it fails.
	corrupt := append([]byte(nil), data...)
	corrupt[0] ^= 0xff
	bad, err := OpenTable(bytes.NewReader(corrupt), int64(len(corrupt)), nil)
	if err != nil {
		t.Fatal(err)
	}
	it := bad.NewIterator(true)
	if it.SeekGE(ikey.SeekKey([]byte("user000000"))) {
		t.Fatal("SeekGE succeeded on a corrupt block")
	}
	if it.Err() == nil {
		t.Fatal("SeekGE swallowed the block-load error")
	}
	// The intact table seeks fine past the end: no entry, no error.
	it2 := tbl.NewIterator(true)
	if it2.SeekGE(ikey.SeekKey([]byte("zzzz"))) {
		t.Fatal("SeekGE past the last key returned an entry")
	}
	if err := it2.Err(); err != nil {
		t.Fatal(err)
	}
}
