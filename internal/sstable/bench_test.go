package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
)

// benchTable builds a 10k-entry table with ~50-byte values (≈64 entries
// per 4 KiB block) at the given block size and restart interval
// (-1 = legacy v1 linear blocks, the seed format).
func benchTable(tb testing.TB, blockSize, restartInterval int, stats *metrics.IOStats) (*Table, int) {
	tb.Helper()
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{
		BlockSize:       blockSize,
		BitsPerKey:      10,
		Compression:     NoCompression,
		RestartInterval: restartInterval,
	})
	const n = 10000
	val := bytes.Repeat([]byte("v"), 50)
	for i := 0; i < n; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("t%08d", i)), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, val, nil); err != nil {
			tb.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	t, err := OpenTable(bytes.NewReader(buf.Bytes()), size, stats)
	if err != nil {
		tb.Fatal(err)
	}
	return t, n
}

var benchFormats = []struct {
	name            string
	restartInterval int
}{
	{"linear", -1},   // v1: whole-block scan (seed behaviour)
	{"restart16", 0}, // v2: binary seek over restart points (default interval)
}

var benchBlockSizes = []int{4096, 16384, 65536}

// BenchmarkTableGet compares point reads through the v1 linear in-block
// scan against the v2 restart-point binary seek, at three block sizes.
// decodes/get (from the EntriesDecoded counter) is the paper-facing
// metric: it counts prefix-decoded entries per probe and is what shrinks
// when the restart seek skips intervals.
func BenchmarkTableGet(b *testing.B) {
	for _, bs := range benchBlockSizes {
		for _, f := range benchFormats {
			b.Run(fmt.Sprintf("block=%d/%s", bs, f.name), func(b *testing.B) {
				var stats metrics.IOStats
				tbl, n := benchTable(b, bs, f.restartInterval, &stats)
				var sc GetScratch
				keys := make([][]byte, n)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("t%08d", i))
				}
				before := stats.Snapshot()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, ok, err := tbl.GetWith(&sc, keys[i%n])
					if err != nil || !ok {
						b.Fatalf("get: ok=%v err=%v", ok, err)
					}
				}
				b.StopTimer()
				d := stats.Snapshot().Sub(before)
				b.ReportMetric(d.EntriesDecodedPerGet(), "decodes/get")
			})
		}
	}
}

// BenchmarkSeekGE measures positioning a table iterator at a random key:
// the index locates the block, then the in-block step is either a linear
// scan from the block head (v1) or a restart-point binary seek (v2).
func BenchmarkSeekGE(b *testing.B) {
	for _, bs := range benchBlockSizes {
		for _, f := range benchFormats {
			b.Run(fmt.Sprintf("block=%d/%s", bs, f.name), func(b *testing.B) {
				var stats metrics.IOStats
				tbl, n := benchTable(b, bs, f.restartInterval, &stats)
				it := tbl.NewIterator(true)
				seeks := make([][]byte, n)
				for i := range seeks {
					seeks[i] = ikey.SeekKey([]byte(fmt.Sprintf("t%08d", i)))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !it.SeekGE(seeks[i%n]) {
						b.Fatalf("seek %d missed", i)
					}
				}
				b.StopTimer()
				if err := it.Err(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// TestRestartSeekDecodesFewer pins the PR's acceptance criterion: at the
// default 4 KiB block size the restart-point seek must decode at least 2×
// fewer entries per GET than the v1 linear scan.
func TestRestartSeekDecodesFewer(t *testing.T) {
	perGet := func(restartInterval int) float64 {
		var stats metrics.IOStats
		tbl, n := benchTable(t, 4096, restartInterval, &stats)
		var sc GetScratch
		before := stats.Snapshot()
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("t%08d", i))
			_, _, ok, err := tbl.GetWith(&sc, key)
			if err != nil || !ok {
				t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
			}
		}
		return stats.Snapshot().Sub(before).EntriesDecodedPerGet()
	}
	linear := perGet(-1)
	restart := perGet(0)
	t.Logf("decodes/get: linear=%.2f restart=%.2f (%.1fx)", linear, restart, linear/restart)
	if restart <= 0 {
		t.Fatal("restart path decoded nothing; counter broken?")
	}
	if linear < 2*restart {
		t.Fatalf("restart seek not ≥2x better: linear=%.2f restart=%.2f", linear, restart)
	}
}
