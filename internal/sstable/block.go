// Package sstable implements LevelDB++'s on-disk table format (paper
// Appendix A.2 and Figure 3): data blocks holding sorted internal
// key/value entries, a block index carrying primary-key zone maps, a
// per-block primary bloom filter section, and — the Embedded index — a
// per-block bloom filter plus per-block and per-file zone maps for every
// indexed secondary attribute. All filters and maps are memory resident
// once a table is opened; disk is touched only for data blocks.
//
// Two block formats coexist (DESIGN.md §5.2). Format v1 (the seed) is a
// plain prefix-compressed entry stream, searchable only by linear scan.
// Format v2 adds LevelDB's restart array: every RestartInterval-th entry
// is written with a full (non-shared) key, and the block ends with the
// byte offsets of those restart entries plus their count. Point reads and
// seeks binary-search the restart points and decode at most one interval.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"leveldbpp/internal/ikey"
)

// Compression selects the per-block compression codec. The paper uses
// Snappy; we substitute stdlib DEFLATE at its fastest setting (see
// DESIGN.md §3) and support disabling it (paper Appendix C.2).
type Compression uint8

const (
	// NoCompression stores blocks raw.
	NoCompression Compression = 0
	// FlateCompression compresses each block with DEFLATE (BestSpeed).
	FlateCompression Compression = 1
)

// DefaultRestartInterval is the v2 block restart spacing: one full
// (non-shared) key every this many entries (LevelDB's constant).
const DefaultRestartInterval = 16

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockBuilder accumulates entries for one data block with LevelDB-style
// key prefix compression: each entry stores only the suffix of its key
// that differs from the previous entry's key.
// Entry wire format: varint(sharedLen) varint(unsharedLen) varint(valLen)
// unsharedKeyBytes value.
// With restartInterval > 0 (format v2) every restartInterval-th entry is
// stored with sharedLen 0 and its offset recorded; finish appends the
// restart offsets and their count — both big-endian uint32 — after the
// entries, inside the compressed/checksummed payload.
type blockBuilder struct {
	buf             bytes.Buffer
	scratch         [3 * binary.MaxVarintLen64]byte
	prevKey         []byte
	count           int
	restartInterval int // <=0 writes v1 blocks with no restart trailer
	restarts        []uint32
	sinceRestart    int
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.restartInterval > 0 && b.sinceRestart%b.restartInterval == 0 {
		b.restarts = append(b.restarts, uint32(b.buf.Len()))
		b.sinceRestart = 0
	} else {
		shared = sharedPrefixLen(b.prevKey, key)
	}
	b.sinceRestart++
	n := binary.PutUvarint(b.scratch[:], uint64(shared))
	n += binary.PutUvarint(b.scratch[n:], uint64(len(key)-shared))
	n += binary.PutUvarint(b.scratch[n:], uint64(len(value)))
	b.buf.Write(b.scratch[:n])
	b.buf.Write(key[shared:])
	b.buf.Write(value)
	b.prevKey = append(b.prevKey[:0], key...)
	b.count++
}

// sizeEstimate includes the pending restart trailer so block cutting
// accounts for the real on-disk payload; v1 blocks keep the seed's
// entries-only estimate so legacy tables cut at identical boundaries.
func (b *blockBuilder) sizeEstimate() int {
	if b.restartInterval > 0 {
		return b.buf.Len() + 4*len(b.restarts) + 4
	}
	return b.buf.Len()
}
func (b *blockBuilder) empty() bool { return b.count == 0 }

func (b *blockBuilder) reset() {
	b.buf.Reset()
	b.prevKey = b.prevKey[:0]
	b.count = 0
	b.restarts = b.restarts[:0]
	b.sinceRestart = 0
}

// finish returns the physical block: payload, a codec byte, and a CRC32C
// of payload+codec. For v2 the payload is entries + restart trailer; the
// CRC therefore covers the restart array too. The payload is compressed
// only when that actually shrinks it (LevelDB applies the same rule).
func (b *blockBuilder) finish(c Compression) ([]byte, error) {
	raw := b.buf.Bytes()
	if b.restartInterval > 0 {
		if b.buf.Len() > math.MaxUint32 {
			return nil, fmt.Errorf("sstable: block of %d bytes exceeds restart-offset range", b.buf.Len())
		}
		trailer := make([]byte, 0, 4*len(b.restarts)+4)
		for _, r := range b.restarts {
			trailer = binary.BigEndian.AppendUint32(trailer, r)
		}
		trailer = binary.BigEndian.AppendUint32(trailer, uint32(len(b.restarts)))
		raw = append(raw, trailer...)
	}
	payload := raw
	codec := NoCompression
	if c == FlateCompression {
		var cbuf bytes.Buffer
		fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("sstable: flate init: %w", err)
		}
		if _, err := fw.Write(raw); err != nil {
			return nil, fmt.Errorf("sstable: flate write: %w", err)
		}
		if err := fw.Close(); err != nil {
			return nil, fmt.Errorf("sstable: flate close: %w", err)
		}
		if cbuf.Len() < len(raw) {
			payload = cbuf.Bytes()
			codec = FlateCompression
		}
	}
	out := make([]byte, 0, len(payload)+5)
	out = append(out, payload...)
	out = append(out, byte(codec))
	crc := crc32.Checksum(out, crcTable)
	out = binary.BigEndian.AppendUint32(out, crc)
	return out, nil
}

// decodeBlock verifies the CRC and decompresses a physical block into its
// raw payload (entry stream, plus the restart trailer for v2 blocks).
func decodeBlock(phys []byte) ([]byte, error) {
	if len(phys) < 5 {
		return nil, fmt.Errorf("sstable: block too short (%d bytes)", len(phys))
	}
	body, crcBytes := phys[:len(phys)-4], phys[len(phys)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("sstable: block checksum mismatch: got %08x want %08x", got, want)
	}
	payload, codec := body[:len(body)-1], Compression(body[len(body)-1])
	switch codec {
	case NoCompression:
		return payload, nil
	case FlateCompression:
		fr := flate.NewReader(bytes.NewReader(payload))
		defer fr.Close()
		raw, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("sstable: flate decode: %w", err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("sstable: unknown block codec %d", codec)
	}
}

// BlockIter walks the decoded entries of one block in order,
// reconstructing prefix-compressed keys. On v2 blocks SeekGE
// binary-searches the restart array instead of decoding from the start.
// An iterator may be re-initialised over successive blocks; its key
// buffer is retained across resets so steady-state iteration and point
// reads allocate nothing.
type BlockIter struct {
	data        []byte // entry stream only (restart trailer stripped)
	restarts    []byte // 4 bytes per restart offset, big-endian
	numRestarts int
	off         int
	key         []byte
	val         []byte
	err         error
	decoded     int
}

func newBlockIter(raw []byte) *BlockIter {
	it := &BlockIter{}
	it.initV1(raw)
	return it
}

// initV1 resets the iterator over a v1 payload: the whole payload is the
// entry stream and there are no restart points.
func (it *BlockIter) initV1(raw []byte) {
	it.data = raw
	it.restarts, it.numRestarts = nil, 0
	it.off = 0
	it.key = it.key[:0]
	it.val = nil
	it.err = nil
	it.decoded = 0
}

// initV2 resets the iterator over a v2 payload, splitting off and
// validating the restart trailer. A malformed trailer is reported as an
// error rather than risking out-of-range restart jumps later.
func (it *BlockIter) initV2(raw []byte) error {
	it.initV1(raw)
	if len(raw) == 0 { // an empty block has no trailer
		return nil
	}
	if len(raw) < 4 {
		return it.fail(fmt.Errorf("sstable: v2 block of %d bytes lacks a restart count", len(raw)))
	}
	n := int(binary.BigEndian.Uint32(raw[len(raw)-4:]))
	trailer := 4 + 4*n
	if n < 0 || trailer > len(raw) {
		return it.fail(fmt.Errorf("sstable: restart count %d exceeds block of %d bytes", n, len(raw)))
	}
	entriesEnd := len(raw) - trailer
	it.data = raw[:entriesEnd]
	it.restarts = raw[entriesEnd : len(raw)-4]
	it.numRestarts = n
	prev := -1
	for i := 0; i < n; i++ {
		off := int(binary.BigEndian.Uint32(it.restarts[4*i:]))
		if off >= entriesEnd || off <= prev {
			return it.fail(fmt.Errorf("sstable: restart offset %d (entry %d) outside entries [0,%d) or non-increasing", off, i, entriesEnd))
		}
		prev = off
	}
	return nil
}

func (it *BlockIter) fail(err error) error {
	it.err = err
	return err
}

// Next advances to the following entry, returning false at the end or on
// corruption (check Err).
//
//lsm:hotpath
func (it *BlockIter) Next() bool {
	if it.err != nil || it.off >= len(it.data) {
		return false
	}
	corrupt := func(what string) bool {
		it.err = fmt.Errorf("sstable: corrupt entry %s at offset %d", what, it.off)
		return false
	}
	shared, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("shared length")
	}
	it.off += n
	unshared, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("unshared length")
	}
	it.off += n
	vlen, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("value length")
	}
	it.off += n
	if shared > uint64(len(it.key)) {
		return corrupt("shared prefix exceeding previous key")
	}
	end := it.off + int(unshared) + int(vlen)
	if end > len(it.data) || int(unshared) < 0 || int(vlen) < 0 || end < it.off {
		it.err = fmt.Errorf("sstable: entry overruns block (end %d > %d)", end, len(it.data))
		return false
	}
	// Rebuild the key: keep the shared prefix of the previous key, append
	// the unshared suffix. it.key is always this iterator's own buffer.
	it.key = append(it.key[:shared], it.data[it.off:it.off+int(unshared)]...)
	it.val = it.data[it.off+int(unshared) : end]
	it.off = end
	it.decoded++
	return true
}

// restartKey decodes the full key stored at restart point i without
// touching the iterator's position or key buffer.
//
//lsm:hotpath
func (it *BlockIter) restartKey(i int) ([]byte, error) {
	off := int(binary.BigEndian.Uint32(it.restarts[4*i:]))
	shared, n := binary.Uvarint(it.data[off:])
	if n <= 0 || shared != 0 {
		return nil, fmt.Errorf("sstable: restart %d at offset %d has shared prefix %d", i, off, shared)
	}
	off += n
	unshared, n := binary.Uvarint(it.data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("sstable: corrupt restart %d key length", i)
	}
	off += n
	_, n = binary.Uvarint(it.data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("sstable: corrupt restart %d value length", i)
	}
	off += n
	end := off + int(unshared)
	if int(unshared) < 0 || end > len(it.data) || end < off {
		return nil, fmt.Errorf("sstable: restart %d key overruns block", i)
	}
	k := it.data[off:end]
	if !ikey.Valid(k) {
		return nil, fmt.Errorf("sstable: restart %d key too short (%d bytes)", i, len(k))
	}
	return k, nil
}

// SeekGE positions the iterator at the first entry with internal key >=
// target and returns true, or returns false when no such entry exists
// (or on corruption — check Err). On v2 blocks it binary-searches the
// restart points and linearly decodes at most one restart interval; v1
// blocks fall back to a linear scan from the block start.
//
//lsm:hotpath
func (it *BlockIter) SeekGE(target []byte) bool {
	if it.err != nil {
		return false
	}
	start := 0
	if it.numRestarts > 0 {
		// First restart whose (full) key is strictly greater than target;
		// the interval to scan starts at the restart before it.
		i := sort.Search(it.numRestarts, func(i int) bool {
			if it.err != nil {
				return true
			}
			k, err := it.restartKey(i)
			if err != nil {
				it.err = err
				return true
			}
			return ikey.Compare(k, target) > 0
		})
		if it.err != nil {
			return false
		}
		if i > 0 {
			start = int(binary.BigEndian.Uint32(it.restarts[4*(i-1):]))
		}
	}
	it.off = start
	it.key = it.key[:0]
	it.val = nil
	for it.Next() {
		if !ikey.Valid(it.key) {
			it.err = fmt.Errorf("sstable: entry key too short (%d bytes) at offset %d", len(it.key), it.off)
			return false
		}
		if ikey.Compare(it.key, target) >= 0 {
			return true
		}
	}
	return false
}

// Decoded returns the number of entries decoded so far (metrics: the
// per-GET decode counter quantifies the restart-seek win).
func (it *BlockIter) Decoded() int { return it.decoded }

// Err reports any corruption hit while iterating.
func (it *BlockIter) Err() error { return it.err }

// Key returns the current entry's internal key (valid until Next).
func (it *BlockIter) Key() []byte { return it.key }

// Value returns the current entry's value (valid until Next).
func (it *BlockIter) Value() []byte { return it.val }
