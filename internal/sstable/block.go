// Package sstable implements LevelDB++'s on-disk table format (paper
// Appendix A.2 and Figure 3): data blocks holding sorted internal
// key/value entries, a block index carrying primary-key zone maps, a
// per-block primary bloom filter section, and — the Embedded index — a
// per-block bloom filter plus per-block and per-file zone maps for every
// indexed secondary attribute. All filters and maps are memory resident
// once a table is opened; disk is touched only for data blocks.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Compression selects the per-block compression codec. The paper uses
// Snappy; we substitute stdlib DEFLATE at its fastest setting (see
// DESIGN.md §3) and support disabling it (paper Appendix C.2).
type Compression uint8

const (
	// NoCompression stores blocks raw.
	NoCompression Compression = 0
	// FlateCompression compresses each block with DEFLATE (BestSpeed).
	FlateCompression Compression = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockBuilder accumulates entries for one data block with LevelDB-style
// key prefix compression: each entry stores only the suffix of its key
// that differs from the previous entry's key.
// Entry wire format: varint(sharedLen) varint(unsharedLen) varint(valLen)
// unsharedKeyBytes value.
type blockBuilder struct {
	buf     bytes.Buffer
	scratch [3 * binary.MaxVarintLen64]byte
	prevKey []byte
	count   int
}

func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func (b *blockBuilder) add(key, value []byte) {
	shared := sharedPrefixLen(b.prevKey, key)
	n := binary.PutUvarint(b.scratch[:], uint64(shared))
	n += binary.PutUvarint(b.scratch[n:], uint64(len(key)-shared))
	n += binary.PutUvarint(b.scratch[n:], uint64(len(value)))
	b.buf.Write(b.scratch[:n])
	b.buf.Write(key[shared:])
	b.buf.Write(value)
	b.prevKey = append(b.prevKey[:0], key...)
	b.count++
}

func (b *blockBuilder) sizeEstimate() int { return b.buf.Len() }
func (b *blockBuilder) empty() bool       { return b.count == 0 }

func (b *blockBuilder) reset() {
	b.buf.Reset()
	b.prevKey = b.prevKey[:0]
	b.count = 0
}

// finish returns the physical block: payload, a codec byte, and a CRC32C
// of payload+codec. The payload is compressed only when that actually
// shrinks it (LevelDB applies the same rule).
func (b *blockBuilder) finish(c Compression) ([]byte, error) {
	raw := b.buf.Bytes()
	payload := raw
	codec := NoCompression
	if c == FlateCompression {
		var cbuf bytes.Buffer
		fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("sstable: flate init: %w", err)
		}
		if _, err := fw.Write(raw); err != nil {
			return nil, fmt.Errorf("sstable: flate write: %w", err)
		}
		if err := fw.Close(); err != nil {
			return nil, fmt.Errorf("sstable: flate close: %w", err)
		}
		if cbuf.Len() < len(raw) {
			payload = cbuf.Bytes()
			codec = FlateCompression
		}
	}
	out := make([]byte, 0, len(payload)+5)
	out = append(out, payload...)
	out = append(out, byte(codec))
	crc := crc32.Checksum(out, crcTable)
	out = binary.BigEndian.AppendUint32(out, crc)
	return out, nil
}

// decodeBlock verifies the CRC and decompresses a physical block into its
// raw entry stream.
func decodeBlock(phys []byte) ([]byte, error) {
	if len(phys) < 5 {
		return nil, fmt.Errorf("sstable: block too short (%d bytes)", len(phys))
	}
	body, crcBytes := phys[:len(phys)-4], phys[len(phys)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(crcBytes); got != want {
		return nil, fmt.Errorf("sstable: block checksum mismatch: got %08x want %08x", got, want)
	}
	payload, codec := body[:len(body)-1], Compression(body[len(body)-1])
	switch codec {
	case NoCompression:
		return payload, nil
	case FlateCompression:
		fr := flate.NewReader(bytes.NewReader(payload))
		defer fr.Close()
		raw, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("sstable: flate decode: %w", err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("sstable: unknown block codec %d", codec)
	}
}

// BlockIter walks the decoded entries of one block in order,
// reconstructing prefix-compressed keys.
type BlockIter struct {
	data []byte
	off  int
	key  []byte
	val  []byte
	err  error
}

func newBlockIter(raw []byte) *BlockIter { return &BlockIter{data: raw} }

// Next advances to the following entry, returning false at the end or on
// corruption (check Err).
func (it *BlockIter) Next() bool {
	if it.err != nil || it.off >= len(it.data) {
		return false
	}
	corrupt := func(what string) bool {
		it.err = fmt.Errorf("sstable: corrupt entry %s at offset %d", what, it.off)
		return false
	}
	shared, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("shared length")
	}
	it.off += n
	unshared, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("unshared length")
	}
	it.off += n
	vlen, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		return corrupt("value length")
	}
	it.off += n
	if shared > uint64(len(it.key)) {
		return corrupt("shared prefix exceeding previous key")
	}
	end := it.off + int(unshared) + int(vlen)
	if end > len(it.data) || int(unshared) < 0 || int(vlen) < 0 || end < it.off {
		it.err = fmt.Errorf("sstable: entry overruns block (end %d > %d)", end, len(it.data))
		return false
	}
	// Rebuild the key: keep the shared prefix of the previous key, append
	// the unshared suffix. it.key is always this iterator's own buffer.
	it.key = append(it.key[:shared], it.data[it.off:it.off+int(unshared)]...)
	it.val = it.data[it.off+int(unshared) : end]
	it.off = end
	return true
}

// Err reports any corruption hit while iterating.
func (it *BlockIter) Err() error { return it.err }

// Key returns the current entry's internal key (valid until Next).
func (it *BlockIter) Key() []byte { return it.key }

// Value returns the current entry's value (valid until Next).
func (it *BlockIter) Value() []byte { return it.val }
