package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"leveldbpp/internal/ikey"
)

// fuzzEntries generates n sorted internal-key entries from a seeded rng:
// random-length user keys (deduplicated), random values (possibly empty).
func fuzzEntries(rng *rand.Rand, n int, maxKeyLen, maxValLen int) (keys, vals [][]byte) {
	userKeys := map[string]bool{}
	for len(userKeys) < n {
		k := make([]byte, 1+rng.Intn(maxKeyLen))
		rng.Read(k)
		userKeys[string(k)] = true
	}
	uks := make([]string, 0, n)
	for k := range userKeys {
		uks = append(uks, k)
	}
	sort.Strings(uks)
	for i, uk := range uks {
		keys = append(keys, ikey.Make([]byte(uk), uint64(i+1), ikey.KindSet))
		v := make([]byte, rng.Intn(maxValLen+1))
		rng.Read(v)
		vals = append(vals, v)
	}
	return keys, vals
}

// buildRawBlock encodes the entries into one raw (decoded) block payload
// using the given restart interval (<=0 for v1).
func buildRawBlock(t testing.TB, keys, vals [][]byte, restartInterval int) []byte {
	t.Helper()
	bb := blockBuilder{restartInterval: restartInterval}
	for i := range keys {
		bb.add(keys[i], vals[i])
	}
	phys, err := bb.finish(NoCompression)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := decodeBlock(phys)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzBlockRoundTrip drives encode→decode→iterate→seek over random keys,
// values and restart intervals. Every entry must survive the round trip;
// SeekGE must land exactly where a reference linear search says, for
// present keys, absent keys, and the extremes.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add(int64(1), 10, 16, 24, 32)
	f.Add(int64(2), 1, 1, 1, 0)
	f.Add(int64(3), 200, 3, 8, 100)
	f.Add(int64(4), 50, 7, 200, 5)
	f.Fuzz(func(t *testing.T, seed int64, n, interval, maxKeyLen, maxValLen int) {
		if n <= 0 || n > 500 || maxKeyLen <= 0 || maxKeyLen > 300 || maxValLen < 0 || maxValLen > 300 {
			t.Skip()
		}
		if interval > 64 {
			t.Skip()
		}
		// One-byte keys only admit 256 distinct values; keep the distinct-key
		// demand far below the space so fuzzEntries' dedup loop terminates.
		if maxKeyLen == 1 && n > 100 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		keys, vals := fuzzEntries(rng, n, maxKeyLen, maxValLen)
		raw := buildRawBlock(t, keys, vals, interval)

		var it BlockIter
		if interval > 0 {
			if err := it.initV2(raw); err != nil {
				t.Fatalf("initV2 on freshly built block: %v", err)
			}
		} else {
			it.initV1(raw)
		}

		// Full iteration reproduces every entry in order.
		for i := range keys {
			if !it.Next() {
				t.Fatalf("Next stopped at entry %d of %d: %v", i, len(keys), it.Err())
			}
			if !bytes.Equal(it.Key(), keys[i]) {
				t.Fatalf("entry %d key mismatch", i)
			}
			if !bytes.Equal(it.Value(), vals[i]) {
				t.Fatalf("entry %d value mismatch", i)
			}
		}
		if it.Next() {
			t.Fatal("iterated past the end")
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}

		// SeekGE agrees with a reference linear search on present keys,
		// mutated (likely absent) keys, and the extremes.
		targets := make([][]byte, 0, 2*len(keys)+2)
		targets = append(targets, keys...)
		for i := 0; i < len(keys); i += 3 {
			mutated := append([]byte(nil), keys[i]...)
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			if ikey.Valid(mutated) {
				targets = append(targets, mutated)
			}
		}
		targets = append(targets,
			ikey.Make(nil, ikey.MaxSeq, ikey.KindSet),                      // before everything
			ikey.Make(bytes.Repeat([]byte{0xff}, 301), 0, ikey.KindDelete)) // after everything
		for _, target := range targets {
			want := sort.Search(len(keys), func(i int) bool { return ikey.Compare(keys[i], target) >= 0 })
			got := it.SeekGE(target)
			if err := it.Err(); err != nil {
				t.Fatalf("SeekGE(%x) errored: %v", target, err)
			}
			if want == len(keys) {
				if got {
					t.Fatalf("SeekGE(%x) found %x past the last entry", target, it.Key())
				}
				continue
			}
			if !got {
				t.Fatalf("SeekGE(%x) missed entry %d", target, want)
			}
			if !bytes.Equal(it.Key(), keys[want]) || !bytes.Equal(it.Value(), vals[want]) {
				t.Fatalf("SeekGE(%x) landed on wrong entry", target)
			}
		}
	})
}

// FuzzBlockIterGarbage feeds arbitrary bytes to the v2 iterator: it must
// reject or iterate without ever panicking, for both Next and SeekGE.
func FuzzBlockIterGarbage(f *testing.F) {
	rng := rand.New(rand.NewSource(9))
	keys, vals := fuzzEntries(rng, 40, 12, 20)
	good := buildRawBlock(f, keys, vals, 8)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var it BlockIter
		if err := it.initV2(raw); err != nil {
			return // rejected up front: fine
		}
		for it.Next() {
			_, _ = it.Key(), it.Value()
		}
		it.SeekGE(ikey.Make([]byte("probe"), 1, ikey.KindSet))
		_ = it.Err()
	})
}

// corruptTrailer rewrites the restart count at the tail of a raw v2 block.
func corruptTrailer(raw []byte, count uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(out[len(out)-4:], count)
	return out
}

func TestBlockRestartCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys, vals := fuzzEntries(rng, 100, 10, 30)
	raw := buildRawBlock(t, keys, vals, 16)
	var it BlockIter
	if err := it.initV2(raw); err != nil {
		t.Fatal(err)
	}
	nRestarts := it.numRestarts
	if nRestarts < 2 {
		t.Fatalf("want ≥2 restarts, got %d", nRestarts)
	}
	probe := keys[len(keys)/2]

	check := func(name string, mutated []byte) {
		t.Helper()
		var bad BlockIter
		err := bad.initV2(mutated)
		if err == nil {
			// Not caught at init: the error must surface via SeekGE/Next,
			// never as a panic or a silently wrong result set.
			bad.SeekGE(probe)
			for bad.Next() {
			}
			err = bad.Err()
		}
		if err == nil {
			t.Fatalf("%s: corruption undetected", name)
		}
	}

	t.Run("truncated restart array", func(t *testing.T) {
		// Chop bytes out of the restart array while keeping the count: the
		// trailer now claims more offsets than the block holds.
		check("truncate", corruptTrailer(raw[:len(raw)-8], uint32(nRestarts)))
	})
	t.Run("restart offset past block end", func(t *testing.T) {
		mutated := append([]byte(nil), raw...)
		off := len(mutated) - 4 - 4*nRestarts // first restart offset slot
		binary.BigEndian.PutUint32(mutated[off:], uint32(len(raw)+100))
		check("offset", mutated)
	})
	t.Run("bad count", func(t *testing.T) {
		check("count-huge", corruptTrailer(raw, 0xffffffff))
	})
	t.Run("count larger than array", func(t *testing.T) {
		check("count-off-by-some", corruptTrailer(raw, uint32(nRestarts+5)))
	})
	t.Run("non-increasing offsets", func(t *testing.T) {
		if nRestarts >= 2 {
			mutated := append([]byte(nil), raw...)
			base := len(mutated) - 4 - 4*nRestarts
			// Swap the first two offsets so they decrease.
			first := binary.BigEndian.Uint32(mutated[base:])
			second := binary.BigEndian.Uint32(mutated[base+4:])
			binary.BigEndian.PutUint32(mutated[base:], second)
			binary.BigEndian.PutUint32(mutated[base+4:], first)
			check("order", mutated)
		}
	})
	t.Run("restart with nonzero shared prefix", func(t *testing.T) {
		// Point a restart offset at a non-restart entry (shared > 0):
		// restartKey must reject it during SeekGE. Sequential keys guarantee
		// every non-restart entry shares a prefix with its predecessor.
		var seqKeys, seqVals [][]byte
		for i := 0; i < 100; i++ {
			seqKeys = append(seqKeys, ikey.Make([]byte(fmt.Sprintf("key%05d", i)), uint64(i+1), ikey.KindSet))
			seqVals = append(seqVals, []byte("v"))
		}
		raw2 := buildRawBlock(t, seqKeys, seqVals, 16)
		var ref BlockIter
		if err := ref.initV2(raw2); err != nil {
			t.Fatal(err)
		}
		n2 := ref.numRestarts
		if n2 < 2 {
			t.Fatalf("want ≥2 restarts, got %d", n2)
		}
		// Locate the second entry's offset by decoding one entry; it shares
		// "key0000" with the first.
		if !ref.Next() {
			t.Fatal("empty block")
		}
		secondOff := ref.off
		shared, _ := binary.Uvarint(ref.data[secondOff:])
		if shared == 0 {
			t.Fatal("test setup broken: sequential keys must share a prefix")
		}
		mutated := append([]byte(nil), raw2...)
		base := len(mutated) - 4 - 4*n2
		// Restart 1 now points mid-interval; offsets stay increasing
		// (secondOff > restart 0's offset of 0) so init passes and the
		// defect is hit at seek time.
		binary.BigEndian.PutUint32(mutated[base+4:], uint32(secondOff))
		var bad BlockIter
		if err := bad.initV2(mutated); err != nil {
			return // also acceptable: rejected at init
		}
		for _, k := range seqKeys {
			bad.SeekGE(k)
			if bad.Err() != nil {
				return // detected
			}
		}
		t.Fatal("mid-interval restart offset never detected")
	})
}

// TestBlockIterKeyBufferReuse verifies the allocation-free contract: a
// reused iterator must not grow a fresh key buffer per block.
func TestBlockIterKeyBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys, vals := fuzzEntries(rng, 64, 10, 10)
	raw := buildRawBlock(t, keys, vals, 16)
	var it BlockIter
	if err := it.initV2(raw); err != nil {
		t.Fatal(err)
	}
	for it.Next() {
	}
	capAfterFirst := cap(it.key)
	allocs := testing.AllocsPerRun(50, func() {
		if err := it.initV2(raw); err != nil {
			t.Fatal(err)
		}
		for it.Next() {
		}
	})
	if allocs > 0 {
		t.Fatalf("reused BlockIter allocates %.1f per block pass", allocs)
	}
	if cap(it.key) != capAfterFirst {
		t.Fatalf("key buffer reallocated: cap %d → %d", capAfterFirst, cap(it.key))
	}
}

// TestGetWithAllocationFree verifies the point-read path allocates nothing
// in the steady state when the caller reuses a scratch.
func TestGetWithAllocationFree(t *testing.T) {
	var buf bytes.Buffer
	b := NewBuilder(&buf, Options{BlockSize: 4096, BitsPerKey: 10, Compression: NoCompression})
	const n = 2000
	for i := 0; i < n; i++ {
		ik := ikey.Make([]byte(fmt.Sprintf("t%08d", i)), uint64(i+1), ikey.KindSet)
		if err := b.Add(ik, []byte("value-payload-for-alloc-test"), nil); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(bytes.NewReader(buf.Bytes()), size, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sc GetScratch
	key := make([]byte, 0, 16)
	i := 0
	// Warm the scratch buffers once.
	if _, _, ok, err := tbl.GetWith(&sc, []byte("t00000000")); !ok || err != nil {
		t.Fatalf("warmup get: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		key = append(key[:0], []byte(fmt.Sprintf("t%08d", i%n))...)
		_, _, ok, err := tbl.GetWith(&sc, key)
		if !ok || err != nil {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		i++
	})
	// fmt.Sprintf accounts for ~2 allocations; the read path itself must
	// add none beyond that.
	if allocs > 3 {
		t.Fatalf("GetWith steady state allocates %.1f per call", allocs)
	}
}
