package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync/atomic"

	"leveldbpp/internal/bloom"
	"leveldbpp/internal/cache"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
)

// tableIDCounter assigns each opened table a process-unique ID for block
// cache keys; compaction outputs therefore never alias the cached blocks
// of the tables they replace.
var tableIDCounter atomic.Uint64

// Table is an open SSTable. All metadata — the block index (primary zone
// maps), primary bloom filters, secondary bloom filters and zone maps — is
// memory resident; only data block reads touch r.
type Table struct {
	r          io.ReaderAt
	id         uint64
	format     int // formatV1: linear blocks; formatV2: restart arrays
	blocks     []blockMeta
	attrs      map[string]*secAttrMeta
	entryCount int
	maxSeq     uint64
	stats      *metrics.IOStats
	cache      *cache.Cache
}

// OpenTable parses the footer and meta section of a table of the given
// size. stats may be nil.
func OpenTable(r io.ReaderAt, size int64, stats *metrics.IOStats) (*Table, error) {
	return OpenTableCached(r, size, stats, nil)
}

// OpenTableCached is OpenTable with an optional shared block cache
// (LevelDB's block cache; the paper's experiments run without one).
func OpenTableCached(r io.ReaderAt, size int64, stats *metrics.IOStats, blockCache *cache.Cache) (*Table, error) {
	if size < footerLen {
		return nil, fmt.Errorf("sstable: file too small (%d bytes)", size)
	}
	// Sniff the trailing magic to pick the footer layout: the seed's
	// 24-byte v1 footer, or the 25-byte v2 footer carrying a
	// format-version byte (restart-point blocks).
	flen := int64(footerLen)
	if size >= footerLenV2 {
		flen = footerLenV2
	}
	var fbuf [footerLenV2]byte
	footer := fbuf[footerLenV2-flen:]
	if _, err := r.ReadAt(footer, size-flen); err != nil {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	format := formatV1
	var metaOff, metaLen uint64
	switch magic := binary.BigEndian.Uint64(footer[len(footer)-8:]); magic {
	case tableMagic:
		f := footer[len(footer)-footerLen:]
		metaOff = binary.BigEndian.Uint64(f[0:8])
		metaLen = binary.BigEndian.Uint64(f[8:16])
		flen = footerLen
	case tableMagic2:
		if int64(len(footer)) < footerLenV2 {
			return nil, fmt.Errorf("sstable: file too small for v2 footer (%d bytes)", size)
		}
		metaOff = binary.BigEndian.Uint64(footer[0:8])
		metaLen = binary.BigEndian.Uint64(footer[8:16])
		if v := int(footer[16]); v != formatV2 {
			return nil, fmt.Errorf("sstable: unsupported table format version %d", v)
		}
		format = formatV2
		flen = footerLenV2
	default:
		return nil, fmt.Errorf("sstable: bad magic %016x", magic)
	}
	if int64(metaOff)+int64(metaLen) > size-flen {
		return nil, fmt.Errorf("sstable: meta section out of bounds")
	}
	meta := make([]byte, metaLen)
	if _, err := r.ReadAt(meta, int64(metaOff)); err != nil {
		return nil, fmt.Errorf("sstable: read meta: %w", err)
	}
	t := &Table{
		r:      r,
		id:     tableIDCounter.Add(1),
		format: format,
		attrs:  map[string]*secAttrMeta{},
		stats:  stats,
		cache:  blockCache,
	}
	if err := t.decodeMeta(meta); err != nil {
		return nil, err
	}
	return t, nil
}

// ID returns the table's process-unique identity (for cache eviction).
func (t *Table) ID() uint64 { return t.id }

type metaReader struct {
	buf []byte
	off int
	err error
}

func (m *metaReader) uvarint() uint64 {
	if m.err != nil {
		return 0
	}
	v, n := binary.Uvarint(m.buf[m.off:])
	if n <= 0 {
		m.err = fmt.Errorf("sstable: corrupt meta varint at %d", m.off)
		return 0
	}
	m.off += n
	return v
}

func (m *metaReader) bytes() []byte {
	n := m.uvarint()
	if m.err != nil {
		return nil
	}
	if m.off+int(n) > len(m.buf) {
		m.err = fmt.Errorf("sstable: corrupt meta bytes at %d", m.off)
		return nil
	}
	b := m.buf[m.off : m.off+int(n)]
	m.off += int(n)
	return b
}

func (m *metaReader) str() string { return string(m.bytes()) }

func (m *metaReader) bool() bool {
	if m.err != nil {
		return false
	}
	if m.off >= len(m.buf) {
		m.err = fmt.Errorf("sstable: corrupt meta bool at %d", m.off)
		return false
	}
	v := m.buf[m.off] != 0
	m.off++
	return v
}

func (t *Table) decodeMeta(meta []byte) error {
	if len(meta) < 4 {
		return fmt.Errorf("sstable: meta section truncated")
	}
	body, crcBytes := meta[:len(meta)-4], meta[len(meta)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.BigEndian.Uint32(crcBytes); got != want {
		return fmt.Errorf("sstable: meta checksum mismatch")
	}
	m := &metaReader{buf: body}
	if v := m.uvarint(); v != metaVersion {
		return fmt.Errorf("sstable: unsupported meta version %d", v)
	}
	nBlocks := m.uvarint()
	t.blocks = make([]blockMeta, nBlocks)
	for i := range t.blocks {
		t.blocks[i] = blockMeta{
			offset:       m.uvarint(),
			size:         m.uvarint(),
			firstKey:     append([]byte(nil), m.bytes()...),
			lastKey:      append([]byte(nil), m.bytes()...),
			primaryBloom: bloom.Filter(append([]byte(nil), m.bytes()...)),
		}
	}
	nAttrs := m.uvarint()
	for a := uint64(0); a < nAttrs; a++ {
		am := &secAttrMeta{name: m.str()}
		am.fileZone.ok = m.bool()
		am.fileZone.min = m.str()
		am.fileZone.max = m.str()
		am.blocks = make([]secBlockMeta, nBlocks)
		for i := range am.blocks {
			am.blocks[i].filter = bloom.Filter(append([]byte(nil), m.bytes()...))
			am.blocks[i].zone.ok = m.bool()
			am.blocks[i].zone.min = m.str()
			am.blocks[i].zone.max = m.str()
		}
		t.attrs[am.name] = am
	}
	t.entryCount = int(m.uvarint())
	t.maxSeq = m.uvarint()
	return m.err
}

// NumBlocks returns the number of data blocks.
func (t *Table) NumBlocks() int { return len(t.blocks) }

// EntryCount returns the number of entries in the table.
func (t *Table) EntryCount() int { return t.entryCount }

// MaxSeq returns the highest sequence number stored in the table, used to
// prune strata that cannot improve a full top-K heap.
func (t *Table) MaxSeq() uint64 { return t.maxSeq }

// Smallest returns the smallest internal key (nil for an empty table).
func (t *Table) Smallest() []byte {
	if len(t.blocks) == 0 {
		return nil
	}
	return t.blocks[0].firstKey
}

// Largest returns the largest internal key (nil for an empty table).
func (t *Table) Largest() []byte {
	if len(t.blocks) == 0 {
		return nil
	}
	return t.blocks[len(t.blocks)-1].lastKey
}

// readBlock fetches, verifies and decompresses block i, attributing I/O to
// foreground reads or compaction according to the flag.
func (t *Table) readBlock(i int, compaction bool) ([]byte, error) {
	return t.readBlockT(i, compaction, nil)
}

// readBlockT is readBlock with optional trace attribution: a cache-served
// fetch is timed as PhaseCacheHit, a disk read as PhaseBlockLoad (both
// sub-phases, nested inside whatever probe phase is running).
func (t *Table) readBlockT(i int, compaction bool, tr *metrics.Trace) ([]byte, error) {
	t0 := tr.Now()
	// Foreground reads may be served from the block cache; compaction
	// reads bypass it (LevelDB's rule) so compactions neither pollute nor
	// benefit from it.
	if t.cache != nil && !compaction {
		if raw, ok := t.cache.Get(cache.Key{Table: t.id, Block: i}); ok {
			if t.stats != nil {
				t.stats.CacheHits.Add(1)
			}
			tr.Count(metrics.CtrCacheHits, 1)
			tr.Since(metrics.PhaseCacheHit, t0)
			return raw, nil
		}
		if t.stats != nil {
			t.stats.CacheMisses.Add(1)
		}
	}
	bm := t.blocks[i]
	phys := make([]byte, bm.size)
	if _, err := t.r.ReadAt(phys, int64(bm.offset)); err != nil {
		return nil, fmt.Errorf("sstable: read block %d: %w", i, err)
	}
	if t.stats != nil {
		if compaction {
			t.stats.CompactionReads.Add(1)
			t.stats.CompactionReadBytes.Add(int64(len(phys)))
		} else {
			t.stats.BlockReads.Add(1)
			t.stats.BlockReadBytes.Add(int64(len(phys)))
		}
	}
	if !compaction {
		tr.Count(metrics.CtrBlockReads, 1)
	}
	raw, err := decodeBlock(phys)
	if err != nil {
		return nil, err
	}
	if t.cache != nil && !compaction {
		t.cache.Put(cache.Key{Table: t.id, Block: i}, raw)
	}
	tr.Since(metrics.PhaseBlockLoad, t0)
	return raw, nil
}

// candidateBlocks returns the index range [lo, hi) of blocks whose
// user-key span may contain userKey. Blocks are disjoint in internal-key
// order, so at most two blocks can straddle one user key (a key's versions
// crossing a block boundary).
func (t *Table) candidateBlocks(userKey []byte) (int, int) {
	lo := sort.Search(len(t.blocks), func(i int) bool {
		return bytes.Compare(ikey.UserKey(t.blocks[i].lastKey), userKey) >= 0
	})
	hi := lo
	for hi < len(t.blocks) && bytes.Compare(ikey.UserKey(t.blocks[hi].firstKey), userKey) <= 0 {
		hi++
	}
	return lo, hi
}

// MayContainPrimary consults only in-memory metadata (key range + primary
// bloom filters) and reports whether userKey may exist in this table. It
// performs no disk I/O — the cheap probe behind GetLite (paper §3).
func (t *Table) MayContainPrimary(userKey []byte) bool {
	return t.MayContainPrimaryTraced(userKey, nil)
}

// MayContainPrimaryTraced is MayContainPrimary counting each bloom filter
// consulted (and each that excluded a block) on the trace.
//
//lsm:hotpath
func (t *Table) MayContainPrimaryTraced(userKey []byte, tr *metrics.Trace) bool {
	lo, hi := t.candidateBlocks(userKey)
	for i := lo; i < hi; i++ {
		tr.Count(metrics.CtrBloomProbes, 1)
		if t.blocks[i].primaryBloom.MayContain(userKey) {
			return true
		}
		tr.Count(metrics.CtrBloomNegatives, 1)
	}
	return false
}

// OverlappingBlockCount returns how many data blocks overlap the user-key
// range [loUser, hiExcl) — pure metadata, no I/O. A nil hiExcl is
// unbounded above. This is the live "M" of the cost model's RANGELOOKUP
// formulas (Table 5), derived from actual level geometry.
func (t *Table) OverlappingBlockCount(loUser, hiExcl []byte) int {
	lo := sort.Search(len(t.blocks), func(i int) bool {
		return bytes.Compare(ikey.UserKey(t.blocks[i].lastKey), loUser) >= 0
	})
	hi := lo
	for hi < len(t.blocks) {
		if hiExcl != nil && bytes.Compare(ikey.UserKey(t.blocks[hi].firstKey), hiExcl) >= 0 {
			break
		}
		hi++
	}
	return hi - lo
}

// FormatVersion reports the table's block format: 1 (seed, linear-only
// blocks) or 2 (restart arrays).
func (t *Table) FormatVersion() int { return t.format }

// initBlockIter resets it over raw according to the table's format.
func (t *Table) initBlockIter(it *BlockIter, raw []byte) error {
	if t.format >= formatV2 {
		return it.initV2(raw)
	}
	it.initV1(raw)
	return nil
}

// GetScratch carries the reusable buffers of the point-read path: the
// block iterator (whose key buffer survives across blocks and calls) and
// the seek-key buffer. A zero value is ready to use; reusing one scratch
// across a sequence of Gets makes the steady state allocation-free.
type GetScratch struct {
	bi   BlockIter
	seek []byte
	// Trace, when non-nil, receives block-load vs. cache-hit sub-phase
	// timings for every block fetched through this scratch.
	Trace *metrics.Trace
}

// Get returns the newest record for userKey in this table: its internal
// key and value. ok is false if the key is absent. A tombstone is returned
// like any record (callers inspect the kind).
func (t *Table) Get(userKey []byte) (internalKey, value []byte, ok bool, err error) {
	var sc GetScratch
	return t.GetWith(&sc, userKey)
}

// GetWith is Get with caller-provided scratch buffers. The returned
// internal key aliases sc and is valid only until sc's next use; the
// returned value aliases the (immutable) block contents and remains valid
// while the table is open. Neither may be modified.
//
// On v2 tables the in-block search is a restart-array binary search that
// decodes at most one restart interval; v1 tables fall back to the seed's
// linear scan. Stats (when attached) record PointGets, BlockSeeks and
// EntriesDecoded, whose ratio is the per-GET decode cost.
//
//lsm:hotpath
func (t *Table) GetWith(sc *GetScratch, userKey []byte) (internalKey, value []byte, ok bool, err error) {
	if t.stats != nil {
		t.stats.PointGets.Add(1)
	}
	tr := sc.Trace
	tr.Count(metrics.CtrPointGets, 1)
	lo, hi := t.candidateBlocks(userKey)
	var seek []byte
	for i := lo; i < hi; i++ {
		tr.Count(metrics.CtrBloomProbes, 1)
		if !t.blocks[i].primaryBloom.MayContain(userKey) {
			tr.Count(metrics.CtrBloomNegatives, 1)
			continue
		}
		raw, err := t.readBlockT(i, false, tr)
		if err != nil {
			return nil, nil, false, err
		}
		it := &sc.bi
		if err := t.initBlockIter(it, raw); err != nil {
			return nil, nil, false, err
		}
		if it.numRestarts > 0 {
			if seek == nil {
				sc.seek = ikey.AppendSeek(sc.seek[:0], userKey)
				seek = sc.seek
			}
			if t.stats != nil {
				t.stats.BlockSeeks.Add(1)
			}
			// SeekKey sorts before every version of userKey, so the first
			// entry at or after it is the newest version iff user keys match.
			if it.SeekGE(seek) && bytes.Equal(ikey.UserKey(it.key), userKey) {
				if t.stats != nil {
					t.stats.EntriesDecoded.Add(int64(it.decoded))
				}
				tr.Count(metrics.CtrEntriesDecoded, int64(it.decoded))
				return it.key, it.val, true, nil
			}
		} else {
			for it.Next() {
				c := bytes.Compare(ikey.UserKey(it.key), userKey)
				if c == 0 {
					// Entries are ordered newest-first within a user key.
					if t.stats != nil {
						t.stats.EntriesDecoded.Add(int64(it.decoded))
					}
					tr.Count(metrics.CtrEntriesDecoded, int64(it.decoded))
					return it.key, it.val, true, nil
				}
				if c > 0 {
					break // sorted: userKey cannot appear later in the block
				}
			}
		}
		if err := it.Err(); err != nil {
			return nil, nil, false, err
		}
		if t.stats != nil {
			t.stats.EntriesDecoded.Add(int64(it.decoded))
		}
		tr.Count(metrics.CtrEntriesDecoded, int64(it.decoded))
		// The block passed its bloom filter but held no match for userKey.
		tr.Count(metrics.CtrBloomFalsePositives, 1)
	}
	return nil, nil, false, nil
}

// FileZone returns the file-level zone map for attr: the min and max
// attribute values present anywhere in this table. ok is false when the
// attribute is not indexed or no entry carried it.
func (t *Table) FileZone(attr string) (min, max string, ok bool) {
	am := t.attrs[attr]
	if am == nil || !am.fileZone.ok {
		return "", "", false
	}
	return am.fileZone.min, am.fileZone.max, true
}

// HasAttr reports whether attr has embedded index structures in this table.
func (t *Table) HasAttr(attr string) bool { return t.attrs[attr] != nil }

// SecondaryCandidates returns the data blocks that may contain an entry
// with attr == value: the file zone map, per-block zone maps, and
// per-block bloom filters must all pass (paper §3 LOOKUP).
func (t *Table) SecondaryCandidates(attr, value string) []int {
	return t.SecondaryCandidatesTraced(attr, value, nil)
}

// SecondaryCandidatesTraced is SecondaryCandidates with per-filter
// attribution on the trace: blocks pruned by zone maps (a whole-file zone
// reject prunes every block), secondary bloom probes/negatives, and the
// surviving candidate count.
func (t *Table) SecondaryCandidatesTraced(attr, value string, tr *metrics.Trace) []int {
	am := t.attrs[attr]
	if am == nil {
		return nil
	}
	if !am.fileZone.contains(value) {
		tr.Count(metrics.CtrZoneMapPrunes, int64(len(am.blocks)))
		return nil
	}
	v := []byte(value)
	var out []int
	for i := range am.blocks {
		sb := &am.blocks[i]
		if !sb.zone.contains(value) {
			tr.Count(metrics.CtrZoneMapPrunes, 1)
			continue
		}
		tr.Count(metrics.CtrBloomProbes, 1)
		if !sb.filter.MayContain(v) {
			tr.Count(metrics.CtrBloomNegatives, 1)
			continue
		}
		out = append(out, i)
	}
	tr.Count(metrics.CtrCandidateBlocks, int64(len(out)))
	return out
}

// SecondaryRangeCandidates returns the data blocks whose attr zone map
// overlaps [lo, hi] (paper §3 RANGELOOKUP; bloom filters cannot help range
// predicates).
func (t *Table) SecondaryRangeCandidates(attr, lo, hi string) []int {
	return t.SecondaryRangeCandidatesTraced(attr, lo, hi, nil)
}

// SecondaryRangeCandidatesTraced is SecondaryRangeCandidates with
// zone-map prune and candidate counts attributed to the trace.
func (t *Table) SecondaryRangeCandidatesTraced(attr, lo, hi string, tr *metrics.Trace) []int {
	am := t.attrs[attr]
	if am == nil {
		return nil
	}
	if !am.fileZone.overlaps(lo, hi) {
		tr.Count(metrics.CtrZoneMapPrunes, int64(len(am.blocks)))
		return nil
	}
	var out []int
	for i := range am.blocks {
		if !am.blocks[i].zone.overlaps(lo, hi) {
			tr.Count(metrics.CtrZoneMapPrunes, 1)
			continue
		}
		out = append(out, i)
	}
	tr.Count(metrics.CtrCandidateBlocks, int64(len(out)))
	return out
}

// FilterMemoryBytes returns the in-memory footprint of all bloom filters
// and zone maps, for the space accounting of Figure 8a.
func (t *Table) FilterMemoryBytes() int {
	n := 0
	for _, b := range t.blocks {
		n += len(b.primaryBloom) + len(b.firstKey) + len(b.lastKey)
	}
	for _, am := range t.attrs {
		for _, sb := range am.blocks {
			n += len(sb.filter) + len(sb.zone.min) + len(sb.zone.max)
		}
	}
	return n
}

// Iterator walks every entry of a table in internal-key order.
type Iterator struct {
	t          *Table
	compaction bool
	blockIdx   int
	bi         *BlockIter // nil when unpositioned / between blocks
	biStore    BlockIter  // backing store: key buffer reused across blocks
	tr         *metrics.Trace
	err        error
}

// NewIterator returns an unpositioned iterator. compaction attributes its
// block reads to compaction I/O counters.
func (t *Table) NewIterator(compaction bool) *Iterator {
	return &Iterator{t: t, compaction: compaction, blockIdx: -1}
}

// NewIteratorTraced is NewIterator with every block fetch attributed to
// the trace (block-load/cache-hit sub-phases plus block counters) — the
// scan path of Composite prefix scans, Eager range scans and Lazy
// range-fragment gathering.
func (t *Table) NewIteratorTraced(compaction bool, tr *metrics.Trace) *Iterator {
	return &Iterator{t: t, compaction: compaction, blockIdx: -1, tr: tr}
}

// BlockIterator reads block i and returns an iterator over just that
// block — the Embedded secondary lookup path, which visits only
// bloom/zone-map-positive blocks.
func (t *Table) BlockIterator(i int, compaction bool) (*BlockIter, error) {
	return t.BlockIteratorTraced(i, compaction, nil)
}

// BlockIteratorTraced is BlockIterator with the block fetch attributed to
// the trace's block-load / cache-hit sub-phases.
func (t *Table) BlockIteratorTraced(i int, compaction bool, tr *metrics.Trace) (*BlockIter, error) {
	raw, err := t.readBlockT(i, compaction, tr)
	if err != nil {
		return nil, err
	}
	bi := new(BlockIter)
	if err := t.initBlockIter(bi, raw); err != nil {
		return nil, err
	}
	return bi, nil
}

func (it *Iterator) loadBlock(i int) bool {
	if i >= len(it.t.blocks) {
		it.bi = nil
		return false
	}
	raw, err := it.t.readBlockT(i, it.compaction, it.tr)
	if err != nil {
		it.err = err
		it.bi = nil
		return false
	}
	if err := it.t.initBlockIter(&it.biStore, raw); err != nil {
		it.err = err
		it.bi = nil
		return false
	}
	it.blockIdx = i
	it.bi = &it.biStore
	return true
}

// Next advances; returns false at end or error.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.bi == nil {
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
	}
	for {
		if it.bi.Next() {
			return true
		}
		if err := it.bi.Err(); err != nil {
			it.err = err
			return false
		}
		if !it.loadBlock(it.blockIdx + 1) {
			return false
		}
	}
}

// SeekGE positions at the first entry with internal key >= target;
// returns false if no such entry exists or a block failed to load (the
// two are distinguished by Err — callers must not treat a false return
// with a pending error as "past the end").
func (it *Iterator) SeekGE(target []byte) bool {
	if it.err != nil {
		return false
	}
	idx := sort.Search(len(it.t.blocks), func(i int) bool {
		return ikey.Compare(it.t.blocks[i].lastKey, target) >= 0
	})
	it.bi = nil
	it.blockIdx = idx
	if idx >= len(it.t.blocks) {
		return false
	}
	// Load the candidate block directly: a failed load must surface as an
	// error, not silently fall through to iterating unrelated blocks.
	if !it.loadBlock(idx) {
		return false
	}
	if it.t.stats != nil && it.bi.numRestarts > 0 && !it.compaction {
		it.t.stats.BlockSeeks.Add(1)
	}
	if it.bi.SeekGE(target) {
		return true
	}
	if err := it.bi.Err(); err != nil {
		it.err = err
		return false
	}
	// target <= lastKey guarantees an in-block hit on well-formed tables;
	// advancing covers an empty decoded block without masking errors.
	return it.Next()
}

// Key returns the current internal key (valid until the next call).
func (it *Iterator) Key() []byte { return it.bi.key }

// Value returns the current value (valid until the next call).
func (it *Iterator) Value() []byte { return it.bi.val }

// Err reports any error hit during iteration.
func (it *Iterator) Err() error { return it.err }

// SecondaryAttrs lists the attributes with embedded index structures,
// sorted for deterministic output.
func (t *Table) SecondaryAttrs() []string {
	out := make([]string, 0, len(t.attrs))
	for name := range t.attrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BlockRange returns the first and last internal keys of block i.
func (t *Table) BlockRange(i int) (first, last []byte) {
	return t.blocks[i].firstKey, t.blocks[i].lastKey
}

// BlockZone returns attr's zone map for block i. ok is false when the
// attribute is unindexed or no entry in the block carried it.
func (t *Table) BlockZone(attr string, i int) (min, max string, ok bool) {
	am := t.attrs[attr]
	if am == nil || !am.blocks[i].zone.ok {
		return "", "", false
	}
	return am.blocks[i].zone.min, am.blocks[i].zone.max, true
}
