// Package server exposes a LevelDB++ database over HTTP/JSON — the thin
// network front a single-node NoSQL store needs to be usable as a
// service. The API mirrors the paper's operation set (Table 1) plus this
// repository's extensions:
//
//	PUT    /doc/{key}                         store document (JSON body)
//	GET    /doc/{key}                         fetch document
//	DELETE /doc/{key}                         delete document
//	GET    /lookup?attr=A&value=a&k=K         LOOKUP(A, a, K)
//	GET    /rangelookup?attr=A&lo=a&hi=b&k=K  RANGELOOKUP(A, a, b, K)
//	GET    /scan?lo=a&hi=b&limit=N            primary-key range scan
//	POST   /batch                             atomic batch (JSON body)
//	GET    /stats                             I/O counters, sizes, WAMF
//	POST   /flush                             force MemTables to disk
//	POST   /compact                           full manual compaction
//	GET    /check                             full consistency audit
//	GET    /debug                             level-shape dump
//
// All responses are JSON. Errors use standard status codes with a
// {"error": "..."} body.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"leveldbpp/internal/core"
)

// Server is an http.Handler over one database.
type Server struct {
	db  *core.DB
	mux *http.ServeMux
}

// New wraps db in an HTTP handler.
func New(db *core.DB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/lookup", s.handleLookup)
	s.mux.HandleFunc("/rangelookup", s.handleRangeLookup)
	s.mux.HandleFunc("/scan", s.handleScan)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/debug", s.handleDebug)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxBodyBytes bounds request bodies (1 MiB documents, 16 MiB batches).
const (
	maxDocBytes   = 1 << 20
	maxBatchBytes = 16 << 20
)

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/doc/")
	if key == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing document key"))
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes+1))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(body) > maxDocBytes {
			writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("document exceeds %d bytes", maxDocBytes))
			return
		}
		if err := s.db.Put(key, body); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"key": key})
	case http.MethodGet:
		value, ok, err := s.db.Get(key)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("key %q not found", key))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(value)
	case http.MethodDelete:
		if err := s.db.Delete(key); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": key})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func parseK(r *http.Request) (int, error) {
	ks := r.URL.Query().Get("k")
	if ks == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(ks)
	if err != nil {
		return 0, fmt.Errorf("bad k %q: %w", ks, err)
	}
	return k, nil
}

// entryJSON is the wire form of one query result.
type entryJSON struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
	Seq   uint64          `json:"seq"`
}

func toWire(entries []core.Entry) []entryJSON {
	out := make([]entryJSON, len(entries))
	for i, e := range entries {
		v := json.RawMessage(e.Value)
		if !json.Valid(v) {
			// Non-JSON payloads are re-encoded as JSON strings.
			b, _ := json.Marshal(string(e.Value))
			v = b
		}
		out[i] = entryJSON{Key: e.Key, Value: v, Seq: e.Seq}
	}
	return out
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr, value := q.Get("attr"), q.Get("value")
	if attr == "" {
		writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, err := s.db.Lookup(attr, value, k)
	if errors.Is(err, core.ErrUnknownAttr) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, toWire(entries))
}

func (s *Server) handleRangeLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr := q.Get("attr")
	if attr == "" {
		writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, err := s.db.RangeLookup(attr, q.Get("lo"), q.Get("hi"), k)
	if errors.Is(err, core.ErrUnknownAttr) {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, toWire(entries))
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 1000
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
		limit = n
	}
	var out []entryJSON
	err := s.db.Scan(q.Get("lo"), q.Get("hi"), func(key string, value []byte) bool {
		out = append(out, toWire([]core.Entry{{Key: key, Value: value}})[0])
		return len(out) < limit
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// batchRequest is the wire form of an atomic batch.
type batchRequest struct {
	Ops []struct {
		Op    string          `json:"op"` // "put" | "delete"
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value,omitempty"`
	} `json:"ops"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBatchBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("batch exceeds %d bytes", maxBatchBytes))
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	var b core.Batch
	for i, op := range req.Ops {
		switch op.Op {
		case "put":
			if op.Key == "" {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: missing key", i))
				return
			}
			b.Put(op.Key, op.Value)
		case "delete":
			if op.Key == "" {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: missing key", i))
				return
			}
			b.Delete(op.Key)
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q", i, op.Op))
			return
		}
	}
	if err := s.db.Apply(&b); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"applied": b.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	prim, idx, err := s.db.DiskUsage()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st := s.db.Stats()
	pWAMF, idxWAMF := s.db.WriteAmplification()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"index_kind":           s.db.Kind().String(),
		"disk_primary_bytes":   prim,
		"disk_index_bytes":     idx,
		"filter_memory_bytes":  s.db.FilterMemoryUsage(),
		"primary_io":           st.Primary,
		"index_io":             st.Index,
		"primary_wamf":         pWAMF,
		"index_wamf_per_attr":  idxWAMF,
		"last_sequence_number": s.db.LastSeq(),
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if err := s.db.Flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"flushed": true})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	q := r.URL.Query()
	if err := s.db.CompactRange(q.Get("lo"), q.Get("hi")); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"compacted": true})
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.db.DebugString())
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	reports, err := s.db.Verify()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	ok := true
	for _, rep := range reports {
		if !rep.OK() {
			ok = false
		}
	}
	status := http.StatusOK
	if !ok {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]interface{}{"ok": ok, "reports": reports})
}
