// Package server exposes a LevelDB++ database over HTTP/JSON — the thin
// network front a single-node NoSQL store needs to be usable as a
// service. The API mirrors the paper's operation set (Table 1) plus this
// repository's extensions:
//
//	PUT    /doc/{key}                         store document (JSON body)
//	GET    /doc/{key}                         fetch document
//	DELETE /doc/{key}                         delete document
//	GET    /lookup?attr=A&value=a&k=K         LOOKUP(A, a, K)
//	GET    /rangelookup?attr=A&lo=a&hi=b&k=K  RANGELOOKUP(A, a, b, K)
//	GET    /explain/lookup?attr=A&value=a&k=K EXPLAIN LOOKUP (report + results)
//	GET    /explain/rangelookup?...           EXPLAIN RANGELOOKUP
//	GET    /explain/get?key=k                 EXPLAIN GET
//	GET    /advisor                           live workload profile + index advice
//	GET    /scan?lo=a&hi=b&limit=N            primary-key range scan
//	POST   /batch                             atomic batch (JSON body)
//	GET    /stats                             I/O counters, sizes, WAMF
//	POST   /flush                             force MemTables to disk
//	POST   /compact                           full manual compaction
//	GET    /check                             full consistency audit
//	GET    /debug                             level-shape dump
//	GET    /healthz                           liveness (503 when stalled/closed)
//	GET    /metrics                           Prometheus text format
//	GET    /events                            lifecycle event log (JSON)
//	GET    /trace/slow?op=O&limit=N           recent slow traces + breakdown
//	GET    /debug/pprof/*                     Go profiling (opt-in)
//
// All responses are JSON. Errors use standard status codes with a
// {"error": "..."} body.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"leveldbpp/internal/advisor"
	"leveldbpp/internal/core"
)

// Config gates the optional observability surfaces of a Server.
type Config struct {
	// Metrics exposes GET /metrics in Prometheus text format.
	Metrics bool
	// Pprof exposes the Go profiler under /debug/pprof/. Off by default:
	// profiles reveal internals and cost CPU, so lsmserver requires an
	// explicit -pprof flag.
	Pprof bool
}

// Server is an http.Handler over one database.
type Server struct {
	db      *core.DB
	mux     *http.ServeMux
	monitor *advisor.Monitor

	// encodeErrors counts responses whose JSON encoding failed mid-write
	// (the status line is already gone by then, so the failure is logged
	// and surfaced through /stats and /metrics instead of the response).
	encodeErrors atomic.Int64
}

// New wraps db in an HTTP handler with /metrics enabled and pprof off.
func New(db *core.DB) *Server { return NewWith(db, Config{Metrics: true}) }

// NewWith wraps db with the given observability configuration.
func NewWith(db *core.DB, cfg Config) *Server {
	s := &Server{db: db, mux: http.NewServeMux(), monitor: advisor.NewMonitor(db)}
	s.mux.HandleFunc("/doc/", s.handleDoc)
	s.mux.HandleFunc("/lookup", s.handleLookup)
	s.mux.HandleFunc("/rangelookup", s.handleRangeLookup)
	s.mux.HandleFunc("/explain/lookup", s.handleExplainLookup)
	s.mux.HandleFunc("/explain/rangelookup", s.handleExplainRangeLookup)
	s.mux.HandleFunc("/explain/get", s.handleExplainGet)
	s.mux.HandleFunc("/advisor", s.handleAdvisor)
	s.mux.HandleFunc("/scan", s.handleScan)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/debug", s.handleDebug)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/trace/slow", s.handleTraceSlow)
	if cfg.Metrics {
		s.mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// EncodeErrors returns the number of responses whose JSON encoding failed.
func (s *Server) EncodeErrors() int64 { return s.encodeErrors.Load() }

// AdvisorMonitor returns the server's online index advisor — lsmserver's
// -advisor-check loop drives Check() on it so flips land in the event log.
func (s *Server) AdvisorMonitor() *advisor.Monitor { return s.monitor }

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already written; all that is left is to
		// count and log the failure (satellite fix: this used to be
		// silently discarded).
		s.encodeErrors.Add(1)
		log.Printf("server: encode %T response: %v", v, err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.db.Health(); err != nil {
		s.writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unhealthy", "error": err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK,
		map[string]interface{}{"status": "ok", "seq": s.db.LastSeq()})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	l := s.db.EventLog()
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"counts": l.Counts(),
		"events": l.Events(),
	})
}

func (s *Server) handleTraceSlow(w http.ResponseWriter, r *http.Request) {
	t := s.db.Tracer()
	q := r.URL.Query()
	slow := t.Slow()
	if op := q.Get("op"); op != "" {
		filtered := slow[:0]
		for _, rec := range slow {
			if rec.Op == op {
				filtered = append(filtered, rec)
			}
		}
		slow = filtered
	}
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
		if n < len(slow) {
			slow = slow[len(slow)-n:] // most recent last; keep the newest n
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"sample_rate": t.Rate(),
		"slow":        slow,
		"breakdown":   t.Breakdown(),
	})
}

// maxBodyBytes bounds request bodies (1 MiB documents, 16 MiB batches).
const (
	maxDocBytes   = 1 << 20
	maxBatchBytes = 16 << 20
)

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/doc/")
	if key == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("missing document key"))
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxDocBytes+1))
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(body) > maxDocBytes {
			s.writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("document exceeds %d bytes", maxDocBytes))
			return
		}
		if err := s.db.Put(key, body); err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"key": key})
	case http.MethodGet:
		value, ok, err := s.db.Get(key)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("key %q not found", key))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(value)
	case http.MethodDelete:
		if err := s.db.Delete(key); err != nil {
			s.writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"deleted": key})
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func parseK(r *http.Request) (int, error) {
	ks := r.URL.Query().Get("k")
	if ks == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(ks)
	if err != nil {
		return 0, fmt.Errorf("bad k %q: %w", ks, err)
	}
	return k, nil
}

// entryJSON is the wire form of one query result.
type entryJSON struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
	Seq   uint64          `json:"seq"`
}

func toWire(entries []core.Entry) []entryJSON {
	out := make([]entryJSON, len(entries))
	for i, e := range entries {
		v := json.RawMessage(e.Value)
		if !json.Valid(v) {
			// Non-JSON payloads are re-encoded as JSON strings.
			b, _ := json.Marshal(string(e.Value))
			v = b
		}
		out[i] = entryJSON{Key: e.Key, Value: v, Seq: e.Seq}
	}
	return out
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr, value := q.Get("attr"), q.Get("value")
	if attr == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, err := s.db.Lookup(attr, value, k)
	if errors.Is(err, core.ErrUnknownAttr) {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(entries))
}

func (s *Server) handleRangeLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr := q.Get("attr")
	if attr == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, err := s.db.RangeLookup(attr, q.Get("lo"), q.Get("hi"), k)
	if errors.Is(err, core.ErrUnknownAttr) {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toWire(entries))
}

func (s *Server) handleExplainLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr := q.Get("attr")
	if attr == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, rep, err := s.db.ExplainLookup(attr, q.Get("value"), k)
	if errors.Is(err, core.ErrUnknownAttr) {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"report": rep, "results": toWire(entries)})
}

func (s *Server) handleExplainRangeLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr := q.Get("attr")
	if attr == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("attr parameter required"))
		return
	}
	k, err := parseK(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	entries, rep, err := s.db.ExplainRangeLookup(attr, q.Get("lo"), q.Get("hi"), k)
	if errors.Is(err, core.ErrUnknownAttr) {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"report": rep, "results": toWire(entries)})
}

func (s *Server) handleExplainGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		s.writeErr(w, http.StatusBadRequest, errors.New("key parameter required"))
		return
	}
	_, found, rep, err := s.db.ExplainGet(key)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"report": rep, "found": found})
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	// Evaluate, not Check: a dashboard polling /advisor must not emit
	// advisor_flip events — only the -advisor-check loop does.
	s.writeJSON(w, http.StatusOK, s.monitor.Evaluate())
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 1000
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n <= 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
		limit = n
	}
	var out []entryJSON
	err := s.db.Scan(q.Get("lo"), q.Get("hi"), func(key string, value []byte) bool {
		out = append(out, toWire([]core.Entry{{Key: key, Value: value}})[0])
		return len(out) < limit
	})
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, out)
}

// batchRequest is the wire form of an atomic batch.
type batchRequest struct {
	Ops []struct {
		Op    string          `json:"op"` // "put" | "delete"
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value,omitempty"`
	} `json:"ops"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBatchBytes {
		s.writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("batch exceeds %d bytes", maxBatchBytes))
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decode batch: %w", err))
		return
	}
	var b core.Batch
	for i, op := range req.Ops {
		switch op.Op {
		case "put":
			if op.Key == "" {
				s.writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: missing key", i))
				return
			}
			b.Put(op.Key, op.Value)
		case "delete":
			if op.Key == "" {
				s.writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: missing key", i))
				return
			}
			b.Delete(op.Key)
		default:
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("op %d: unknown op %q", i, op.Op))
			return
		}
	}
	if err := s.db.Apply(&b); err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"applied": b.Len()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	prim, idx, err := s.db.DiskUsage()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st := s.db.Stats()
	pWAMF, idxWAMF := s.db.WriteAmplification()
	commitPrimary, commitIndex := s.db.CommitStats()
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"index_kind":          s.db.Kind().String(),
		"disk_primary_bytes":  prim,
		"disk_index_bytes":    idx,
		"filter_memory_bytes": s.db.FilterMemoryUsage(),
		"primary_io":          st.Primary,
		"index_io":            st.Index,
		"primary_wamf":        pWAMF,
		"index_wamf_per_attr": idxWAMF,
		"commit_primary":      commitPrimary,
		"commit_index":        commitIndex,
		"postings": map[string]int64{
			"bytes_decoded":    st.Primary.PostingsBytesDecoded + st.Index.PostingsBytesDecoded,
			"entries_decoded":  st.Primary.PostingsEntriesDecoded + st.Index.PostingsEntriesDecoded,
			"fragments_merged": st.Primary.FragmentsMerged + st.Index.FragmentsMerged,
		},
		"last_sequence_number": s.db.LastSeq(),
		"encode_errors":        s.encodeErrors.Load(),
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if err := s.db.Flush(); err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"flushed": true})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	q := r.URL.Query()
	if err := s.db.CompactRange(q.Get("lo"), q.Get("hi")); err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"compacted": true})
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.db.DebugString())
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	reports, err := s.db.Verify()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	ok := true
	for _, rep := range reports {
		if !rep.OK() {
			ok = false
		}
	}
	status := http.StatusOK
	if !ok {
		status = http.StatusInternalServerError
	}
	s.writeJSON(w, status, map[string]interface{}{"ok": ok, "reports": reports})
}
