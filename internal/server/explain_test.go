package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"leveldbpp/internal/core"
)

// newTracedServer opens a server over a fully-traced DB so /trace/slow has
// records to filter.
func newTracedServer(t *testing.T) (*httptest.Server, *core.DB) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{
		Index:           core.IndexLazy,
		Attrs:           []string{"UserID", "CreationTime"},
		MemTableBytes:   16 << 10,
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(func() { ts.Close(); db.Close() })
	return ts, db
}

func seedDocs(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"UserID":"u%d","CreationTime":"%010d"}`, i%3, i)
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/t%03d", ts.URL, i), doc)
	}
}

func TestTraceSlowFilters(t *testing.T) {
	ts, _ := newTracedServer(t)
	seedDocs(t, ts, 30)
	for i := 0; i < 5; i++ {
		do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=2", "")
	}
	do(t, http.MethodGet, ts.URL+"/doc/t001", "")

	type slowResp struct {
		Slow []struct {
			Op     string `json:"op"`
			Detail string `json:"detail"`
		} `json:"slow"`
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/trace/slow?op=lookup", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr slowResp
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Slow) == 0 {
		t.Fatal("no lookup traces")
	}
	for _, rec := range sr.Slow {
		if rec.Op != "lookup" {
			t.Fatalf("op filter leaked %q: %s", rec.Op, body)
		}
		// Satellite: slow-op records carry the explain detail string.
		if rec.Detail != "UserID=u1 plan=posting_merge" {
			t.Fatalf("lookup detail = %q", rec.Detail)
		}
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/trace/slow?op=lookup&limit=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit status %d", resp.StatusCode)
	}
	sr = slowResp{}
	json.Unmarshal(body, &sr)
	if len(sr.Slow) != 2 {
		t.Fatalf("limit=2 returned %d records", len(sr.Slow))
	}

	sr = slowResp{}
	_, body = do(t, http.MethodGet, ts.URL+"/trace/slow?op=nosuchop", "")
	json.Unmarshal(body, &sr)
	if len(sr.Slow) != 0 {
		t.Fatalf("unknown op matched %d records", len(sr.Slow))
	}

	resp, _ = do(t, http.MethodGet, ts.URL+"/trace/slow?limit=banana", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/trace/slow?limit=-1", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit status %d", resp.StatusCode)
	}
}

func TestExplainEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	seedDocs(t, ts, 30)

	resp, body := do(t, http.MethodGet, ts.URL+"/explain/lookup?attr=UserID&value=u1&k=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain lookup status %d: %s", resp.StatusCode, body)
	}
	var lr struct {
		Report struct {
			Op          string  `json:"op"`
			Index       string  `json:"index"`
			Plan        string  `json:"plan"`
			Results     int     `json:"results"`
			PredictedIO float64 `json:"predicted_io"`
			Formula     string  `json:"formula"`
		} `json:"report"`
		Results []entryJSON `json:"results"`
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Report.Op != "lookup" || lr.Report.Index != "Lazy" || lr.Report.Plan != "posting_merge" {
		t.Fatalf("report = %+v", lr.Report)
	}
	if lr.Report.PredictedIO <= 0 || lr.Report.Formula == "" {
		t.Fatalf("missing prediction: %+v", lr.Report)
	}
	if len(lr.Results) != 2 || lr.Report.Results != 2 {
		t.Fatalf("results = %d/%d", len(lr.Results), lr.Report.Results)
	}

	resp, body = do(t, http.MethodGet,
		ts.URL+"/explain/rangelookup?attr=CreationTime&lo=0000000005&hi=0000000010&k=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain rangelookup status %d: %s", resp.StatusCode, body)
	}
	lr.Report.Plan = ""
	json.Unmarshal(body, &lr)
	if lr.Report.Plan != "posting_merge_scan" || len(lr.Results) != 3 {
		t.Fatalf("rangelookup report = %+v (%d results)", lr.Report, len(lr.Results))
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/explain/get?key=t001", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain get status %d", resp.StatusCode)
	}
	var gr struct {
		Found  bool `json:"found"`
		Report struct {
			Plan string `json:"plan"`
		} `json:"report"`
	}
	json.Unmarshal(body, &gr)
	if !gr.Found || gr.Report.Plan != "point_get" {
		t.Fatalf("explain get = %s", body)
	}
	_, body = do(t, http.MethodGet, ts.URL+"/explain/get?key=missing", "")
	gr.Found = true
	json.Unmarshal(body, &gr)
	if gr.Found {
		t.Fatal("missing key reported found")
	}

	// Parameter validation.
	for _, url := range []string{
		"/explain/lookup?value=u1",          // missing attr
		"/explain/lookup?attr=Nope&value=x", // unknown attr
		"/explain/lookup?attr=UserID&value=u1&k=banana",
		"/explain/rangelookup?attr=Nope&lo=a&hi=b",
		"/explain/get", // missing key
	} {
		resp, _ := do(t, http.MethodGet, ts.URL+url, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestAdvisorEndpoint(t *testing.T) {
	ts, db := newTestServer(t)

	resp, body := do(t, http.MethodGet, ts.URL+"/advisor", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advisor status %d", resp.StatusCode)
	}
	var res struct {
		Configured  string `json:"configured"`
		Recommended string `json:"recommended"`
		Match       bool   `json:"match"`
		Sufficient  bool   `json:"sufficient"`
		Rationale   string `json:"rationale"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Configured != "Lazy" || res.Sufficient {
		t.Fatalf("cold advisor = %+v", res)
	}

	// Enough bounded top-K queries: Lazy is recommended and matches.
	seedDocs(t, ts, 10)
	for i := 0; i < 60; i++ {
		do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=5", "")
	}
	_, body = do(t, http.MethodGet, ts.URL+"/advisor", "")
	json.Unmarshal(body, &res)
	if !res.Sufficient || !res.Match || res.Recommended != "Lazy" || res.Rationale == "" {
		t.Fatalf("warm advisor = %+v", res)
	}
	// Polling /advisor must not emit advisor_flip events.
	for _, e := range db.EventLog().Events() {
		if e.Type == "advisor_flip" {
			t.Fatal("/advisor emitted an advisor_flip event")
		}
	}
}

func TestStatsCommitAndPostings(t *testing.T) {
	ts, _ := newTestServer(t)
	seedDocs(t, ts, 50)
	do(t, http.MethodPost, ts.URL+"/flush", "")
	for i := 0; i < 5; i++ {
		do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=2", "")
	}

	_, body := do(t, http.MethodGet, ts.URL+"/stats", "")
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"commit_primary", "commit_index", "postings"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("/stats missing %q: %s", key, body)
		}
	}
	var commit struct {
		Commits int64 `json:"commits"`
		Records int64 `json:"records"`
	}
	if err := json.Unmarshal(stats["commit_primary"], &commit); err != nil {
		t.Fatal(err)
	}
	if commit.Commits <= 0 || commit.Records <= 0 {
		t.Fatalf("commit_primary = %s", stats["commit_primary"])
	}
	var post map[string]int64
	if err := json.Unmarshal(stats["postings"], &post); err != nil {
		t.Fatal(err)
	}
	if post["entries_decoded"] <= 0 || post["bytes_decoded"] <= 0 {
		t.Fatalf("postings counters did not move: %s", stats["postings"])
	}
}
