package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"leveldbpp/internal/core"
)

func mustDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{
		Index: core.IndexLazy,
		Attrs: []string{"UserID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	labelRE  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// parsePrometheus is a strict parser for the Prometheus text format subset
// the server emits: it fails the test on any malformed line, HELP/TYPE
// lines for names that never get a sample, or samples with no prior TYPE.
func parsePrometheus(t *testing.T, body []byte) []promSample {
	t.Helper()
	var out []promSample
	typeOf := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("bad metric type in %q", line)
				}
				typeOf[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil && m[3] != "+Inf" && m[3] != "-Inf" && m[3] != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		labels := map[string]string{}
		if m[2] != "" {
			for _, lm := range labelRE.FindAllStringSubmatch(m[2], -1) {
				labels[lm[1]] = lm[2]
			}
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suffix) && typeOf[strings.TrimSuffix(base, suffix)] == "histogram" {
				base = strings.TrimSuffix(base, suffix)
			}
		}
		if _, ok := typeOf[base]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		if !strings.HasPrefix(m[1], "lsmpp_") {
			t.Fatalf("series %q lacks the lsmpp_ prefix", m[1])
		}
		out = append(out, promSample{name: m[1], labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func find(samples []promSample, name string, labels map[string]string) []promSample {
	var out []promSample
	for _, s := range samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, s)
		}
	}
	return out
}

// TestMetricsPrometheusRoundTrip drives all four paper operations through
// the HTTP API and verifies /metrics parses as Prometheus text with I/O
// counters for both tables and complete latency histograms per operation.
func TestMetricsPrometheusRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 120; i++ {
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/t%04d", ts.URL, i),
			fmt.Sprintf(`{"UserID":"u%d","CreationTime":"%010d","pad":"xxxxxxxxxxxxxxxxxxxxxxxx"}`, i%7, i))
	}
	do(t, http.MethodPost, ts.URL+"/flush", "")
	for i := 0; i < 30; i++ {
		do(t, http.MethodGet, fmt.Sprintf("%s/doc/t%04d", ts.URL, i), "")
		do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=3", "")
		do(t, http.MethodGet, ts.URL+"/rangelookup?attr=CreationTime&lo=0000000000&hi=0000000020", "")
	}
	// One EXPLAIN feeds the model-drift tracker so lsmpp_model_* gauges
	// have a sample to export.
	do(t, http.MethodGet, ts.URL+"/explain/lookup?attr=UserID&value=u1&k=3", "")

	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := parsePrometheus(t, body)
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// I/O counters exist for both tables, and the read path did real work.
	for _, table := range []string{"primary", "index"} {
		ss := find(samples, "lsmpp_block_reads_total", map[string]string{"table": table})
		if len(ss) != 1 {
			t.Fatalf("lsmpp_block_reads_total{table=%q}: %d samples", table, len(ss))
		}
		if table == "primary" && ss[0].value <= 0 {
			t.Fatal("primary block reads not counted")
		}
	}

	// Latency histograms: every operation the test drove has a complete
	// cumulative bucket series whose +Inf bucket equals _count.
	for _, op := range []string{"get", "put", "lookup", "rangelookup"} {
		lbl := map[string]string{"op": op}
		buckets := find(samples, "lsmpp_op_latency_seconds_bucket", lbl)
		if len(buckets) < 2 {
			t.Fatalf("op=%s: only %d bucket samples", op, len(buckets))
		}
		count := find(samples, "lsmpp_op_latency_seconds_count", lbl)
		sum := find(samples, "lsmpp_op_latency_seconds_sum", lbl)
		if len(count) != 1 || len(sum) != 1 {
			t.Fatalf("op=%s: count/sum samples = %d/%d", op, len(count), len(sum))
		}
		if count[0].value <= 0 {
			t.Fatalf("op=%s: zero observations", op)
		}
		if sum[0].value <= 0 {
			t.Fatalf("op=%s: zero latency sum", op)
		}
		// Buckets are cumulative: sort by le and check monotonicity.
		sort.Slice(buckets, func(i, j int) bool {
			return leValue(t, buckets[i]) < leValue(t, buckets[j])
		})
		last := buckets[len(buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("op=%s: largest bucket is le=%q, want +Inf", op, last.labels["le"])
		}
		if last.value != count[0].value {
			t.Fatalf("op=%s: +Inf bucket %v != count %v", op, last.value, count[0].value)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i].value < buckets[i-1].value {
				t.Fatalf("op=%s: bucket le=%s (%v) < le=%s (%v)", op,
					buckets[i].labels["le"], buckets[i].value,
					buckets[i-1].labels["le"], buckets[i-1].value)
			}
		}
	}

	// Level shapes appeared for the flushed primary table.
	if ss := find(samples, "lsmpp_level_files", map[string]string{"table": "primary"}); len(ss) == 0 {
		t.Fatal("no lsmpp_level_files for primary after flush")
	}
	// The flush left lifecycle events behind.
	if ss := find(samples, "lsmpp_events_total", map[string]string{"type": "flush_done"}); len(ss) != 1 || ss[0].value <= 0 {
		t.Fatalf("lsmpp_events_total{type=flush_done} missing or zero: %v", ss)
	}

	// Advisor gauges: the profiled op count moved, the match flag is 0/1,
	// and the recommendation one-hot has exactly one kind set.
	if ss := find(samples, "lsmpp_advisor_profiled_ops", nil); len(ss) != 1 || ss[0].value <= 0 {
		t.Fatalf("lsmpp_advisor_profiled_ops: %v", ss)
	}
	if ss := find(samples, "lsmpp_advisor_match", nil); len(ss) != 1 || (ss[0].value != 0 && ss[0].value != 1) {
		t.Fatalf("lsmpp_advisor_match: %v", ss)
	}
	hot := 0.0
	for _, s := range find(samples, "lsmpp_advisor_recommended", nil) {
		hot += s.value
	}
	if hot != 1 {
		t.Fatalf("lsmpp_advisor_recommended one-hot sums to %v", hot)
	}

	// Model-drift gauges exist for the op the EXPLAIN call fed.
	lbl := map[string]string{"op": "lookup"}
	if ss := find(samples, "lsmpp_model_ratio_samples", lbl); len(ss) != 1 || ss[0].value <= 0 {
		t.Fatalf("lsmpp_model_ratio_samples{op=lookup}: %v", ss)
	}
	if ss := find(samples, "lsmpp_model_ratio_mean", lbl); len(ss) != 1 || ss[0].value <= 0 {
		t.Fatalf("lsmpp_model_ratio_mean{op=lookup}: %v", ss)
	}
	if ss := find(samples, "lsmpp_model_drifted", lbl); len(ss) != 1 {
		t.Fatalf("lsmpp_model_drifted{op=lookup}: %v", ss)
	}
}

func leValue(t *testing.T, s promSample) float64 {
	t.Helper()
	le := s.labels["le"]
	if le == "+Inf" {
		return 1e308
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le label %q", le)
	}
	return v
}

func TestHealthzAndEventsEndpoints(t *testing.T) {
	ts, db := newTestServer(t)

	resp, body := do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var health map[string]interface{}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz body %s", body)
	}

	do(t, http.MethodPut, ts.URL+"/doc/e1", `{"UserID":"u1"}`)
	do(t, http.MethodPost, ts.URL+"/flush", "")
	resp, body = do(t, http.MethodGet, ts.URL+"/events", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("flush_done")) {
		t.Fatalf("event log missing flush_done: %s", body)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/trace/slow", "")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("trace/slow: %d %s", resp.StatusCode, body)
	}

	// A closed database is unhealthy.
	db.Close()
	resp, _ = do(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d", resp.StatusCode)
	}
}

// TestWriteJSONCountsEncodeErrors exercises the repaired error path:
// encoding failures are counted, reported by /stats, and exported.
func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	s := New(mustDB(t))
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, make(chan int)) // channels are unencodable
	if got := s.EncodeErrors(); got != 1 {
		t.Fatalf("EncodeErrors = %d, want 1", got)
	}
	rec = httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]int{"fine": 1})
	if got := s.EncodeErrors(); got != 1 {
		t.Fatalf("EncodeErrors after good write = %d, want 1", got)
	}

	// The running server reports the counter through /stats and /metrics.
	resp, body := do(t, http.MethodGet, ts.URL+"/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats map[string]interface{}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["encode_errors"]; !ok {
		t.Fatalf("stats missing encode_errors: %s", body)
	}
	_, body = do(t, http.MethodGet, ts.URL+"/metrics", "")
	if !bytes.Contains(body, []byte("lsmpp_http_encode_errors_total")) {
		t.Fatal("metrics missing lsmpp_http_encode_errors_total")
	}
}

func TestPprofGating(t *testing.T) {
	db := mustDB(t)
	off := httptest.NewServer(NewWith(db, Config{Metrics: false}))
	defer off.Close()
	resp, _ := do(t, http.MethodGet, off.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, off.URL+"/metrics", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics off: status %d", resp.StatusCode)
	}

	on := httptest.NewServer(NewWith(db, Config{Metrics: true, Pprof: true}))
	defer on.Close()
	resp, body := do(t, http.MethodGet, on.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("profile")) {
		t.Fatalf("pprof on: %d", resp.StatusCode)
	}
}
