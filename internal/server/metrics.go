// Prometheus text-format rendering for GET /metrics (DESIGN.md §5.3).
// Every series carries the lsmpp_ prefix; I/O counters are labelled
// table="primary"|"index" (index = sum over all attribute index tables),
// latency histograms are labelled op="get"|"put"|..., and level-shape
// gauges are labelled per table name as reported by core.LevelShapes.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"

	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
)

// ioCounters maps IOStats snapshot fields to exported counter series.
var ioCounters = []struct {
	name, help string
	get        func(sn metrics.Snapshot) int64
}{
	{"lsmpp_block_reads_total", "Data/index block reads on the read path.",
		func(sn metrics.Snapshot) int64 { return sn.BlockReads }},
	{"lsmpp_block_read_bytes_total", "Bytes of blocks read on the read path.",
		func(sn metrics.Snapshot) int64 { return sn.BlockReadBytes }},
	{"lsmpp_block_writes_total", "Block writes from memtable flushes.",
		func(sn metrics.Snapshot) int64 { return sn.BlockWrites }},
	{"lsmpp_block_write_bytes_total", "Bytes of blocks written by flushes.",
		func(sn metrics.Snapshot) int64 { return sn.BlockWriteBytes }},
	{"lsmpp_compaction_reads_total", "Block reads performed by compactions.",
		func(sn metrics.Snapshot) int64 { return sn.CompactionReads }},
	{"lsmpp_compaction_read_bytes_total", "Bytes read by compactions.",
		func(sn metrics.Snapshot) int64 { return sn.CompactionReadBytes }},
	{"lsmpp_compaction_writes_total", "Block writes performed by compactions.",
		func(sn metrics.Snapshot) int64 { return sn.CompactionWrites }},
	{"lsmpp_compaction_write_bytes_total", "Bytes written by compactions.",
		func(sn metrics.Snapshot) int64 { return sn.CompactionWriteBytes }},
	{"lsmpp_block_cache_hits_total", "Block reads served from the block cache.",
		func(sn metrics.Snapshot) int64 { return sn.CacheHits }},
	{"lsmpp_block_cache_misses_total", "Block reads that missed the block cache.",
		func(sn metrics.Snapshot) int64 { return sn.CacheMisses }},
	{"lsmpp_point_gets_total", "SSTable point reads (Table.Get calls).",
		func(sn metrics.Snapshot) int64 { return sn.PointGets }},
	{"lsmpp_entries_decoded_total", "Block entries decoded on the point-read path.",
		func(sn metrics.Snapshot) int64 { return sn.EntriesDecoded }},
	{"lsmpp_block_seeks_total", "In-block restart-array binary searches.",
		func(sn metrics.Snapshot) int64 { return sn.BlockSeeks }},
	{"lsmpp_postings_bytes_decoded_total", "Encoded posting-list bytes consumed by index paths.",
		func(sn metrics.Snapshot) int64 { return sn.PostingsBytesDecoded }},
	{"lsmpp_postings_entries_decoded_total", "Posting entries decoded by index paths.",
		func(sn metrics.Snapshot) int64 { return sn.PostingsEntriesDecoded }},
	{"lsmpp_postings_fragments_merged_total", "Posting-list fragments fed into merges.",
		func(sn metrics.Snapshot) int64 { return sn.FragmentsMerged }},
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Render into a buffer first so a slow client cannot hold DB
	// accessors open and a render error cannot emit a torn exposition.
	var buf bytes.Buffer
	s.writeMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) writeMetrics(w io.Writer) {
	st := s.db.Stats()
	tables := []struct {
		label string
		sn    metrics.Snapshot
	}{{"primary", st.Primary}, {"index", st.Index}}

	for _, c := range ioCounters {
		metrics.WriteMetricHeader(w, c.name, c.help, "counter")
		for _, t := range tables {
			metrics.WriteSample(w, c.name,
				metrics.Labels(map[string]string{"table": t.label}), float64(c.get(t.sn)))
		}
	}

	metrics.WriteMetricHeader(w, "lsmpp_block_cache_hit_ratio",
		"Fraction of block reads served from cache (0 when no reads).", "gauge")
	for _, t := range tables {
		ratio := 0.0
		if total := t.sn.CacheHits + t.sn.CacheMisses; total > 0 {
			ratio = float64(t.sn.CacheHits) / float64(total)
		}
		metrics.WriteSample(w, "lsmpp_block_cache_hit_ratio",
			metrics.Labels(map[string]string{"table": t.label}), ratio)
	}

	metrics.WriteMetricHeader(w, "lsmpp_entries_decoded_per_get",
		"Mean block entries decoded per point read.", "gauge")
	for _, t := range tables {
		metrics.WriteSample(w, "lsmpp_entries_decoded_per_get",
			metrics.Labels(map[string]string{"table": t.label}), t.sn.EntriesDecodedPerGet())
	}

	// Commit-path counters (DESIGN.md §5.5): logical commits, records,
	// WAL write groups, and fsyncs, per table, plus the derived
	// fsyncs-per-commit amortization gauge.
	primCS, idxCS := s.db.CommitStats()
	commitTables := []struct {
		label string
		cs    lsm.CommitStats
	}{{"primary", primCS}, {"index", idxCS}}
	commitCounters := []struct {
		name, help string
		get        func(cs lsm.CommitStats) int64
	}{
		{"lsmpp_commits_total", "Logical commits acknowledged by the write path.",
			func(cs lsm.CommitStats) int64 { return cs.Commits }},
		{"lsmpp_commit_records_total", "Records written across all commits.",
			func(cs lsm.CommitStats) int64 { return cs.Records }},
		{"lsmpp_commit_groups_total", "WAL write passes (commit groups; inline commits count 1 each).",
			func(cs lsm.CommitStats) int64 { return cs.Groups }},
		{"lsmpp_wal_fsyncs_total", "fsyncs issued by the commit path.",
			func(cs lsm.CommitStats) int64 { return cs.Fsyncs }},
	}
	for _, c := range commitCounters {
		metrics.WriteMetricHeader(w, c.name, c.help, "counter")
		for _, t := range commitTables {
			metrics.WriteSample(w, c.name,
				metrics.Labels(map[string]string{"table": t.label}), float64(c.get(t.cs)))
		}
	}
	metrics.WriteMetricHeader(w, "lsmpp_fsyncs_per_commit",
		"fsyncs divided by commits (0 when no commits).", "gauge")
	for _, t := range commitTables {
		metrics.WriteSample(w, "lsmpp_fsyncs_per_commit",
			metrics.Labels(map[string]string{"table": t.label}), t.cs.FsyncsPerCommit())
	}

	// Sub-compaction engine counters (DESIGN.md §5.9): key-range
	// partitions merged, partition workers busy right now, and cumulative
	// writer stall time under the L0 stop trigger.
	primCmp, idxCmp := s.db.CompactionStats()
	compactionTables := []struct {
		label string
		cs    lsm.CompactionStats
	}{{"primary", primCmp}, {"index", idxCmp}}
	metrics.WriteMetricHeader(w, "lsmpp_compaction_subcompactions_total",
		"Key-range sub-compaction partitions merged (serial compactions count 1).", "counter")
	for _, t := range compactionTables {
		metrics.WriteSample(w, "lsmpp_compaction_subcompactions_total",
			metrics.Labels(map[string]string{"table": t.label}), float64(t.cs.Subcompactions))
	}
	metrics.WriteMetricHeader(w, "lsmpp_compaction_workers_busy",
		"Sub-compaction partition workers currently merging.", "gauge")
	for _, t := range compactionTables {
		metrics.WriteSample(w, "lsmpp_compaction_workers_busy",
			metrics.Labels(map[string]string{"table": t.label}), float64(t.cs.WorkersBusy))
	}
	metrics.WriteMetricHeader(w, "lsmpp_compaction_stall_seconds_total",
		"Cumulative time writers spent stalled on the L0 stop trigger.", "counter")
	for _, t := range compactionTables {
		metrics.WriteSample(w, "lsmpp_compaction_stall_seconds_total",
			metrics.Labels(map[string]string{"table": t.label}), t.cs.StallSeconds)
	}

	// Commits-per-WAL-write histogram, one series set per table name
	// (sorted for a deterministic exposition).
	hists := s.db.GroupSizeHists()
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	metrics.WriteMetricHeader(w, "lsmpp_commit_group_size",
		"Commits per WAL write pass (group commit batching).", "histogram")
	for _, name := range histNames {
		hists[name].WritePrometheus(w, "lsmpp_commit_group_size",
			map[string]string{"table": name})
	}

	// Per-operation latency histograms (always on, independent of trace
	// sampling): one shared header, one label set per operation.
	ops := s.db.OpStats()
	metrics.WriteMetricHeader(w, "lsmpp_op_latency_seconds",
		"End-to-end operation latency in seconds.", "histogram")
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		ops.Hist(op).WritePrometheus(w, "lsmpp_op_latency_seconds",
			map[string]string{"op": op.String()})
	}

	// Level shapes: files / bytes / entries per (table, level). Table names
	// are sorted so the exposition is deterministic.
	shapes := s.db.LevelShapes()
	names := make([]string, 0, len(shapes))
	for name := range shapes {
		names = append(names, name)
	}
	sort.Strings(names)
	levelGauges := []struct {
		name, help string
		get        func(li lsm.LevelInfo) float64
	}{
		{"lsmpp_level_files", "SSTable files per level.",
			func(li lsm.LevelInfo) float64 { return float64(li.Files) }},
		{"lsmpp_level_bytes", "On-disk bytes per level.",
			func(li lsm.LevelInfo) float64 { return float64(li.Bytes) }},
		{"lsmpp_level_entries", "Stored entries per level.",
			func(li lsm.LevelInfo) float64 { return float64(li.Entries) }},
	}
	for _, g := range levelGauges {
		metrics.WriteMetricHeader(w, g.name, g.help, "gauge")
		for _, name := range names {
			for _, li := range shapes[name] {
				metrics.WriteSample(w, g.name, metrics.Labels(map[string]string{
					"table": name,
					"level": fmt.Sprintf("%d", li.Level),
				}), g.get(li))
			}
		}
	}

	// Lifecycle event counts by type (flushes, compactions, throttle
	// transitions, ...), straight from the shared event log.
	counts := s.db.EventLog().Counts()
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, string(t))
	}
	sort.Strings(types)
	metrics.WriteMetricHeader(w, "lsmpp_events_total",
		"Lifecycle events observed, by type.", "counter")
	for _, t := range types {
		metrics.WriteSample(w, "lsmpp_events_total",
			metrics.Labels(map[string]string{"type": t}), float64(counts[metrics.EventType(t)]))
	}

	if prim, idx, err := s.db.DiskUsage(); err == nil {
		metrics.WriteMetricHeader(w, "lsmpp_disk_bytes",
			"On-disk SSTable bytes.", "gauge")
		metrics.WriteSample(w, "lsmpp_disk_bytes",
			metrics.Labels(map[string]string{"table": "primary"}), float64(prim))
		metrics.WriteSample(w, "lsmpp_disk_bytes",
			metrics.Labels(map[string]string{"table": "index"}), float64(idx))
	}

	metrics.WriteMetricHeader(w, "lsmpp_filter_memory_bytes",
		"Resident memory of Bloom filters and zone maps.", "gauge")
	metrics.WriteSample(w, "lsmpp_filter_memory_bytes", "", float64(s.db.FilterMemoryUsage()))

	metrics.WriteMetricHeader(w, "lsmpp_last_sequence_number",
		"Newest assigned sequence number.", "gauge")
	metrics.WriteSample(w, "lsmpp_last_sequence_number", "", float64(s.db.LastSeq()))

	metrics.WriteMetricHeader(w, "lsmpp_trace_sample_rate",
		"Configured per-operation trace sampling rate.", "gauge")
	metrics.WriteSample(w, "lsmpp_trace_sample_rate", "", s.db.Tracer().Rate())

	// Cost-model accuracy (DESIGN.md §5.7): per-op rolling mean of the
	// observed/predicted I/O ratio, its sample count, and the drift flag —
	// from the workload profiler's snapshot, so scrapes emit no events.
	workload := s.db.Profiler().Snapshot()
	ratioOps := make([]string, 0, len(workload.Ratios))
	for op := range workload.Ratios {
		ratioOps = append(ratioOps, op)
	}
	sort.Strings(ratioOps)
	metrics.WriteMetricHeader(w, "lsmpp_model_ratio_mean",
		"Rolling mean of observed/predicted I/O per operation kind.", "gauge")
	for _, op := range ratioOps {
		metrics.WriteSample(w, "lsmpp_model_ratio_mean",
			metrics.Labels(map[string]string{"op": op}), workload.Ratios[op].Mean)
	}
	metrics.WriteMetricHeader(w, "lsmpp_model_ratio_samples",
		"Observed/predicted ratios in the rolling window, per operation kind.", "gauge")
	for _, op := range ratioOps {
		metrics.WriteSample(w, "lsmpp_model_ratio_samples",
			metrics.Labels(map[string]string{"op": op}), float64(workload.Ratios[op].Count))
	}
	metrics.WriteMetricHeader(w, "lsmpp_model_drifted",
		"1 when an operation kind's cost-model drift flag is raised.", "gauge")
	for _, op := range ratioOps {
		v := 0.0
		if workload.Ratios[op].Drifted {
			v = 1
		}
		metrics.WriteSample(w, "lsmpp_model_drifted",
			metrics.Labels(map[string]string{"op": op}), v)
	}

	// Online advisor (pure evaluation — no advisor_flip events from
	// scrapes): whether the configured kind matches the recommendation,
	// and the recommended kind as a one-hot gauge.
	check := s.monitor.Evaluate()
	metrics.WriteMetricHeader(w, "lsmpp_advisor_match",
		"1 when the advisor's recommended index kind matches the configured one.", "gauge")
	matchV := 0.0
	if check.Match {
		matchV = 1
	}
	metrics.WriteSample(w, "lsmpp_advisor_match", "", matchV)
	metrics.WriteMetricHeader(w, "lsmpp_advisor_recommended",
		"One-hot: 1 on the index kind the advisor currently recommends.", "gauge")
	for _, kind := range []string{"NoIndex", "Embedded", "Eager", "Lazy", "Composite"} {
		v := 0.0
		if kind == check.Recommended {
			v = 1
		}
		metrics.WriteSample(w, "lsmpp_advisor_recommended",
			metrics.Labels(map[string]string{"kind": kind}), v)
	}
	metrics.WriteMetricHeader(w, "lsmpp_advisor_profiled_ops",
		"Operations aggregated by the workload profiler.", "gauge")
	metrics.WriteSample(w, "lsmpp_advisor_profiled_ops", "", float64(workload.TotalOps))

	metrics.WriteMetricHeader(w, "lsmpp_http_encode_errors_total",
		"HTTP responses whose JSON encoding failed mid-write.", "counter")
	metrics.WriteSample(w, "lsmpp_http_encode_errors_total", "", float64(s.encodeErrors.Load()))
}
