package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leveldbpp/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *core.DB) {
	t.Helper()
	db, err := core.Open(t.TempDir(), core.Options{
		Index:         core.IndexLazy,
		Attrs:         []string{"UserID", "CreationTime"},
		MemTableBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	t.Cleanup(func() { ts.Close(); db.Close() })
	return ts, db
}

func do(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestDocLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, _ := do(t, http.MethodPut, ts.URL+"/doc/t1", `{"UserID":"alice","Text":"hi"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/doc/t1", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("alice")) {
		t.Fatalf("GET %d %s", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/doc/t1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/doc/t1", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete: %d", resp.StatusCode)
	}
}

func TestLookupEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 20; i++ {
		doc := fmt.Sprintf(`{"UserID":"u%d","CreationTime":"%010d"}`, i%3, i)
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/t%03d", ts.URL, i), doc)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=2", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d: %s", resp.StatusCode, body)
	}
	var entries []entryJSON
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != "t019" || entries[1].Key != "t016" {
		t.Fatalf("lookup = %+v", entries)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/rangelookup?attr=CreationTime&lo=0000000005&hi=0000000008", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rangelookup status %d", resp.StatusCode)
	}
	json.Unmarshal(body, &entries)
	if len(entries) != 4 {
		t.Fatalf("rangelookup = %d entries", len(entries))
	}

	// Unknown attribute → 400.
	resp, _ = do(t, http.MethodGet, ts.URL+"/lookup?attr=Nope&value=x", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown attr status %d", resp.StatusCode)
	}
	// Malformed k → 400.
	resp, _ = do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=banana", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k status %d", resp.StatusCode)
	}
}

func TestScanEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 10; i++ {
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/k%02d", ts.URL, i), fmt.Sprintf(`{"UserID":"u","n":%d}`, i))
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/scan?lo=k03&hi=k06", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d", resp.StatusCode)
	}
	var entries []entryJSON
	json.Unmarshal(body, &entries)
	if len(entries) != 4 || entries[0].Key != "k03" || entries[3].Key != "k06" {
		t.Fatalf("scan = %+v", entries)
	}
	// Limit.
	resp, body = do(t, http.MethodGet, ts.URL+"/scan?limit=3", "")
	json.Unmarshal(body, &entries)
	if len(entries) != 3 {
		t.Fatalf("limited scan = %d", len(entries))
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/doc/old", `{"UserID":"u9"}`)
	batch := `{"ops":[
		{"op":"put","key":"a","value":{"UserID":"u1"}},
		{"op":"put","key":"b","value":{"UserID":"u1"}},
		{"op":"delete","key":"old"}
	]}`
	resp, body := do(t, http.MethodPost, ts.URL+"/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/doc/old", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatal("batch delete not applied")
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1", "")
	var entries []entryJSON
	json.Unmarshal(body, &entries)
	if len(entries) != 2 {
		t.Fatalf("batch puts not indexed: %s", body)
	}

	// Bad batches → 400.
	for _, bad := range []string{`{"ops":[{"op":"zap","key":"x"}]}`, `{"ops":[{"op":"put"}]}`, `not json`} {
		resp, _ := do(t, http.MethodPost, ts.URL+"/batch", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad batch %q status %d", bad, resp.StatusCode)
		}
	}
	// GET on /batch → 405.
	resp, _ = do(t, http.MethodGet, ts.URL+"/batch", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /batch status %d", resp.StatusCode)
	}
}

func TestStatsFlushCheck(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 200; i++ {
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/t%04d", ts.URL, i),
			fmt.Sprintf(`{"UserID":"u%d","CreationTime":"%010d","pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`, i%5, i))
	}
	resp, _ := do(t, http.MethodPost, ts.URL+"/flush", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats map[string]interface{}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["index_kind"] != "Lazy" {
		t.Fatalf("stats = %s", body)
	}
	if stats["disk_primary_bytes"].(float64) <= 0 {
		t.Fatal("no disk usage reported after flush")
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/check", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok":true`)) {
		t.Fatalf("check: %d %s", resp.StatusCode, body)
	}
}

func TestOversizedDocumentRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	big := strings.Repeat("x", maxDocBytes+10)
	resp, _ := do(t, http.MethodPut, ts.URL+"/doc/big", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized doc status %d", resp.StatusCode)
	}
}

func TestNonJSONDocumentRoundTrips(t *testing.T) {
	ts, _ := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/doc/raw", "plain text, not json")
	resp, body := do(t, http.MethodGet, ts.URL+"/doc/raw", "")
	if resp.StatusCode != http.StatusOK || string(body) != "plain text, not json" {
		t.Fatalf("raw doc: %d %q", resp.StatusCode, body)
	}
	// Scan must still return valid JSON (string-encoded payload).
	resp, body = do(t, http.MethodGet, ts.URL+"/scan", "")
	if !json.Valid(body) {
		t.Fatalf("scan emitted invalid JSON: %s", body)
	}
}

func TestMissingKeyAndMethod(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := do(t, http.MethodGet, ts.URL+"/doc/", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty key status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPatch, ts.URL+"/doc/x", "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH status %d", resp.StatusCode)
	}
}

func TestCompactAndDebugEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 300; i++ {
		do(t, http.MethodPut, fmt.Sprintf("%s/doc/t%04d", ts.URL, i),
			fmt.Sprintf(`{"UserID":"u%d","pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`, i%5))
	}
	resp, _ := do(t, http.MethodPost, ts.URL+"/compact", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/compact", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compact status %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/debug", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("primary:")) {
		t.Fatalf("debug: %d %s", resp.StatusCode, body)
	}
	// Data still intact after compaction.
	resp, body = do(t, http.MethodGet, ts.URL+"/lookup?attr=UserID&value=u1&k=1", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("t0296")) {
		t.Fatalf("post-compact lookup: %s", body)
	}
}
