package experiments

import (
	"io"
	"testing"

	"leveldbpp/internal/core"
	"leveldbpp/internal/workload"
)

// testConfig is small enough for CI but still spans flushes and
// multi-level compactions (MemTable 256 KiB, ~350-byte docs).
func testConfig(t *testing.T) Config {
	scale := 6000
	if testing.Short() {
		scale = 2000
	}
	return Config{Scale: scale, Dir: t.TempDir(), Out: io.Discard, Seed: 11, Queries: 30}
}

func TestFig7ZipfShape(t *testing.T) {
	r, err := Fig7DatasetZipf(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveUsers < 10 {
		t.Fatalf("too few users: %d", r.ActiveUsers)
	}
	if r.Slope >= -0.3 {
		t.Fatalf("distribution not heavy-tailed: slope %.2f", r.Slope)
	}
	if r.TopUser <= r.MedianUser {
		t.Fatal("rank-frequency not skewed")
	}
}

func TestFig8aSizeOrdering(t *testing.T) {
	rs, err := Fig8aDatabaseSize(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[core.IndexKind]Fig8aResult{}
	for _, r := range rs {
		byKind[r.Kind] = r
	}
	// Paper Fig 8a: Embedded keeps no index tables → most space-efficient,
	// close to NoIndex; stand-alone variants pay for index tables.
	if byKind[core.IndexEmbedded].IndexBytes != 0 {
		t.Error("Embedded must have zero index-table bytes")
	}
	for _, k := range []core.IndexKind{core.IndexEager, core.IndexLazy, core.IndexComposite} {
		if byKind[k].IndexBytes == 0 {
			t.Errorf("%v must have a non-empty index table", k)
		}
	}
	// Embedded pays in memory-resident filters instead.
	if byKind[core.IndexEmbedded].FilterMemory <= byKind[core.IndexNone].FilterMemory {
		t.Error("Embedded filter memory should exceed NoIndex (extra secondary filters)")
	}
}

func TestFig8bWriteCostOrdering(t *testing.T) {
	rs, err := Fig8bPutPerformance(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[core.IndexKind]Fig8bResult{}
	for _, r := range rs {
		byKind[r.Kind] = r
	}
	// Paper Fig 8b: Embedded ingests (nearly) at NoIndex speed; Eager is
	// the worst writer; Composite is the best stand-alone.
	if byKind[core.IndexEmbedded].IndexWriteIO != 0 {
		t.Error("Embedded writes must not touch index tables")
	}
	eager, lazy, comp := byKind[core.IndexEager], byKind[core.IndexLazy], byKind[core.IndexComposite]
	if eager.IndexWriteIO+eager.IndexReadIO <= lazy.IndexWriteIO+lazy.IndexReadIO {
		t.Errorf("Eager index I/O (%d) must dominate Lazy (%d)",
			eager.IndexWriteIO+eager.IndexReadIO, lazy.IndexWriteIO+lazy.IndexReadIO)
	}
	if eager.IndexReadIO == 0 {
		t.Error("Eager writes must read the index table")
	}
	if lazy.IndexReadIO != 0 || comp.IndexReadIO != 0 {
		t.Error("Lazy/Composite writes must not read the index table")
	}
}

func TestFig8cGetUnaffected(t *testing.T) {
	rs, err := Fig8cGetPerformance(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 8c: "all the index variants have identical GET performance
	// with negligible difference" — block reads per GET must be within a
	// small factor across variants.
	var minIO, maxIO float64
	for i, r := range rs {
		if i == 0 || r.GetBlockReads < minIO {
			minIO = r.GetBlockReads
		}
		if i == 0 || r.GetBlockReads > maxIO {
			maxIO = r.GetBlockReads
		}
	}
	if maxIO > 3*minIO+0.5 {
		t.Errorf("GET I/O varies too much across variants: [%.2f, %.2f]", minIO, maxIO)
	}
}

func TestFig9EagerCompactionGrowsFastest(t *testing.T) {
	rs, err := Fig9PutOverTime(testConfig(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	final := map[core.IndexKind]Fig9Point{}
	for _, r := range rs {
		final[r.Kind] = r.Points[len(r.Points)-1]
	}
	// Paper Fig 9c: Eager's cumulative index compaction I/O grows far
	// faster than Lazy/Composite on the non-time-correlated UserID index.
	if final[core.IndexEager].CumIndexWriteIO <= final[core.IndexLazy].CumIndexWriteIO {
		t.Errorf("Eager cumulative index write I/O (%d) must exceed Lazy (%d)",
			final[core.IndexEager].CumIndexWriteIO, final[core.IndexLazy].CumIndexWriteIO)
	}
	if final[core.IndexEmbedded].CumIndexCompIO != 0 {
		t.Error("Embedded has no index table to compact")
	}
}

func TestFig10StandAloneBeatEmbeddedOnUserID(t *testing.T) {
	c := testConfig(t)
	rs, err := Fig10UserIDQueries(c)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(kind core.IndexKind, op workload.OpKind, k, sel int) *QueryResult {
		for i := range rs {
			r := &rs[i]
			if r.Kind == kind && r.Op == op && r.TopK == k && r.Selectivity == sel {
				return r
			}
		}
		t.Fatalf("missing cell %v/%v/k=%d/sel=%d", kind, op, k, sel)
		return nil
	}
	// Paper Fig 10a: stand-alone indexes beat Embedded on the
	// non-time-correlated attribute (zone maps don't prune; bloom checks
	// and block reads pile up). Compare I/O per query, the scale-stable
	// metric.
	embIO := cell(core.IndexEmbedded, workload.OpLookup, 10, 0).IOPerQuery
	lazyIO := cell(core.IndexLazy, workload.OpLookup, 10, 0).IOPerQuery
	if lazyIO >= embIO*3 {
		t.Errorf("Lazy top-10 LOOKUP I/O (%.2f) should not be 3x Embedded (%.2f)", lazyIO, embIO)
	}
	// NoIndex must be the worst scanner by far.
	noneIO := cell(core.IndexNone, workload.OpLookup, 10, 0).IOPerQuery
	if noneIO <= embIO {
		t.Errorf("NoIndex LOOKUP I/O (%.2f) must exceed Embedded (%.2f)", noneIO, embIO)
	}
	// Paper Fig 10: Lazy beats Composite at small top-K (early exit);
	// at no-limit they converge (both K+L) — allow generous slack, compare
	// at k=1.
	lazy1 := cell(core.IndexLazy, workload.OpLookup, 1, 0).IOPerQuery
	comp1 := cell(core.IndexComposite, workload.OpLookup, 1, 0).IOPerQuery
	if lazy1 > comp1*1.5+1 {
		t.Errorf("Lazy top-1 I/O (%.2f) should not exceed Composite (%.2f) materially", lazy1, comp1)
	}
	// Paper: "Embedded Index (i.e. Zone Maps) does not perform well for
	// non time-correlated Index and almost performs the same as no index"
	// — at no-limit K, where early termination cannot mask the scan.
	embR := cell(core.IndexEmbedded, workload.OpRangeLookup, 0, 10).IOPerQuery
	noneR := cell(core.IndexNone, workload.OpRangeLookup, 0, 10).IOPerQuery
	if embR < noneR/4 {
		t.Errorf("uncorrelated RANGELOOKUP: Embedded I/O (%.2f) should be near NoIndex (%.2f)", embR, noneR)
	}
	// Stand-alone at bounded K must beat Embedded's no-limit scan cost.
	lazyR := cell(core.IndexLazy, workload.OpRangeLookup, 10, 10).IOPerQuery
	if lazyR >= embR {
		t.Errorf("Lazy top-10 RANGELOOKUP I/O (%.2f) must beat Embedded no-limit scan (%.2f)", lazyR, embR)
	}
}

func TestFig11ZoneMapsPruneTimeCorrelated(t *testing.T) {
	c := testConfig(t)
	rs, err := Fig11CreationTimeQueries(c)
	if err != nil {
		t.Fatal(err)
	}
	var embRange, noneRange float64
	for _, r := range rs {
		// No-limit K: the cell where zone-map pruning (and nothing else)
		// decides the cost.
		if r.Op == workload.OpRangeLookup && r.TopK == 0 && r.Selectivity == 1 {
			switch r.Kind {
			case core.IndexEmbedded:
				embRange = r.IOPerQuery
			case core.IndexNone:
				noneRange = r.IOPerQuery
			}
		}
	}
	// Paper Fig 11b/c: zone maps are "very effective" on time-correlated
	// attributes — Embedded must prune the vast majority of NoIndex's I/O.
	if embRange >= noneRange/3 {
		t.Errorf("time-correlated RANGELOOKUP: Embedded I/O (%.2f) should be <1/3 of NoIndex (%.2f)",
			embRange, noneRange)
	}
}

func TestFig12MixedWorkloadsRun(t *testing.T) {
	c := testConfig(t)
	// The v2 posting codec shrinks the Lazy index tables ~30%, so the
	// index-compaction assertion below needs a larger ingest than the
	// JSON era did before the index tree spills past L0.
	c.Scale = 5000
	rs, err := Fig12WriteHeavy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(VariantsNoEager) {
		t.Fatalf("got %d curves", len(rs))
	}
	final := map[core.IndexKind]MixedPoint{}
	for _, r := range rs {
		if len(r.Points) == 0 {
			t.Fatalf("%v produced no checkpoints", r.Kind)
		}
		final[r.Kind] = r.Points[len(r.Points)-1]
	}
	// Embedded pays no index compaction in a write-heavy mix.
	if lazyComp := final[core.IndexLazy].CumCompactionIO; lazyComp == 0 {
		t.Error("Lazy write-heavy run must show index compaction I/O")
	}
	// Checkpoint sequence must be monotone in ops and cumulative I/O.
	for _, r := range rs {
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].Ops <= r.Points[i-1].Ops ||
				r.Points[i].CumCompactionIO < r.Points[i-1].CumCompactionIO ||
				r.Points[i].CumGetIO < r.Points[i-1].CumGetIO {
				t.Fatalf("%v: non-monotone checkpoints", r.Kind)
			}
		}
	}
}

func TestTable3And5(t *testing.T) {
	c := testConfig(t)
	rows3, measured, err := Table3Embedded(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 4 || measured < 0 {
		t.Fatal("Table 3 malformed")
	}
	rows5, m5, err := Table5StandAlone(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows5) != 8 {
		t.Fatal("Table 5 malformed")
	}
	// Measured per-PUT index I/O: Eager must dominate Lazy and Composite,
	// the core Table 5 relationship.
	if m5[core.IndexEager] <= m5[core.IndexLazy] {
		t.Errorf("measured Eager I/O/PUT (%.3f) must exceed Lazy (%.3f)",
			m5[core.IndexEager], m5[core.IndexLazy])
	}
}

func TestFig2AdvisorScenarios(t *testing.T) {
	recs := Fig2Advisor(testConfig(t))
	if len(recs) != 5 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	want := []core.IndexKind{
		core.IndexEmbedded,  // sensor network
		core.IndexLazy,      // social feed
		core.IndexComposite, // analytics
		core.IndexEmbedded,  // time-correlated
		core.IndexEmbedded,  // space constrained
	}
	for i, r := range recs {
		if r.Index != want[i] {
			t.Errorf("scenario %d: got %v want %v", i, r.Index, want[i])
		}
	}
}

func TestAppendixC1MoreBitsLessIO(t *testing.T) {
	c := testConfig(t)
	rs, err := AppendixC1BloomBits(c, []int{2, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatal("sweep incomplete")
	}
	// Paper C.1: larger filters → lower FP rate → fewer block reads, at
	// the cost of filter memory.
	if rs[2].IOPerLookup > rs[0].IOPerLookup {
		t.Errorf("50 bits/key I/O (%.2f) should not exceed 2 bits/key (%.2f)",
			rs[2].IOPerLookup, rs[0].IOPerLookup)
	}
	if rs[2].FilterMemBytes <= rs[0].FilterMemBytes {
		t.Error("filter memory must grow with bits/key")
	}
	if rs[2].TheoreticalFP >= rs[0].TheoreticalFP {
		t.Error("FP rate must fall with bits/key")
	}
}

func TestAppendixC2CompressionShrinksDisk(t *testing.T) {
	c := testConfig(t)
	rs, err := AppendixC2Compression(c)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]C2Result{}
	for _, r := range rs {
		key := r.Kind.String()
		if r.Compressed {
			key += "+c"
		}
		byKey[key] = r
	}
	if byKey["Embedded+c"].DiskBytes >= byKey["Embedded"].DiskBytes {
		t.Error("compression must shrink the Embedded store")
	}
	if byKey["Lazy+c"].DiskBytes >= byKey["Lazy"].DiskBytes {
		t.Error("compression must shrink the Lazy store")
	}
}

func TestEmbeddedAblationIO(t *testing.T) {
	c := testConfig(t)
	rs, err := EmbeddedAblations(c)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	// GetLite's whole point: validity checks without full-GET reads.
	if byName["no-getlite"].IOPerLookup < byName["baseline"].IOPerLookup {
		t.Errorf("disabling GetLite should not reduce I/O: %.2f vs baseline %.2f",
			byName["no-getlite"].IOPerLookup, byName["baseline"].IOPerLookup)
	}
}
