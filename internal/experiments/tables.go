package experiments

import (
	"leveldbpp/internal/advisor"
	"leveldbpp/internal/core"
	"leveldbpp/internal/costmodel"
	"leveldbpp/internal/workload"
)

// Table3Embedded prints the Embedded index analytic cost table (paper
// Table 3) alongside a measured LOOKUP I/O figure on the Static dataset.
func Table3Embedded(c Config) ([]costmodel.EmbeddedCost, float64, error) {
	c = c.withDefaults()
	tweets := c.dataset()

	db, err := c.openDB("table3", core.IndexEmbedded)
	if err != nil {
		return nil, 0, err
	}
	defer db.Close()
	if err := ingest(db, tweets, nil); err != nil {
		return nil, 0, err
	}

	// Measure: average block reads per top-10 UserID LOOKUP.
	q := workload.NewStaticQueries(tweets, c.Seed+5)
	s0 := db.Stats()
	for i := 0; i < c.Queries; i++ {
		op := q.Lookup(workload.AttrUser, 10)
		if _, err := db.Lookup(op.Attr, op.Lo, op.K); err != nil {
			return nil, 0, err
		}
	}
	s1 := db.Stats()
	measured := float64(s1.Primary.BlockReads-s0.Primary.BlockReads) / float64(c.Queries)

	p := costmodel.Params{Levels: 4, LevelRatio: 10, BlocksL0: 64, BitsPerKey: 10}
	rows := costmodel.Table3(p, 10, 2, 100000, false)
	c.printf("Table 3 — Embedded index worst-case disk accesses (analytic)\n")
	for _, r := range rows {
		c.printf("%-14s read=%.2f write=%.2f  %s\n", r.Op, r.ReadIO, r.WriteIO, r.Note)
	}
	c.printf("measured: %.2f primary block reads per top-10 UserID LOOKUP\n\n", measured)
	return rows, measured, nil
}

// Table5StandAlone prints the stand-alone cost table (paper Table 5) with
// parameters fitted to the generated dataset, plus measured per-PUT index
// I/O for each stand-alone variant.
func Table5StandAlone(c Config) ([]costmodel.StandAloneCost, map[core.IndexKind]float64, error) {
	c = c.withDefaults()
	tweets := c.dataset()

	avgPosting := float64(len(tweets))
	g := workload.NewGenerator(workload.Config{Tweets: c.Scale, Seed: c.Seed})
	g.All()
	if rf := workload.RankFrequency(g.UserFreq); len(rf) > 0 {
		avgPosting = float64(len(tweets)) / float64(len(rf))
	}

	p := costmodel.Params{Levels: 4, LevelRatio: 10, NumAttrs: 2, AvgPostingLen: avgPosting, RangeBlocks: 8}
	rows := costmodel.Table5(p, 10)
	c.printf("Table 5 — stand-alone index worst-case disk accesses (analytic, PL_S=%.0f)\n", avgPosting)
	for _, r := range rows {
		c.printf("  %s\n", r.String())
	}

	// Measure index-table I/O per PUT for the three stand-alone kinds.
	measured := map[core.IndexKind]float64{}
	for _, kind := range []core.IndexKind{core.IndexEager, core.IndexLazy, core.IndexComposite} {
		db, err := c.openDB("table5-"+kind.String(), kind)
		if err != nil {
			return nil, nil, err
		}
		if err := ingest(db, tweets, nil); err != nil {
			_ = db.Close()
			return nil, nil, err
		}
		s := db.Stats()
		perPut := float64(s.Index.TotalIO()) / float64(len(tweets))
		measured[kind] = perPut
		_, wamf := db.WriteAmplification()
		c.printf("measured %s: %.3f index-table block I/Os per PUT; index WAMF (bytes written per primary user byte): UserID=%.2f CreationTime=%.2f\n",
			kind, perPut, wamf["UserID"], wamf["CreationTime"])
		_ = db.Close()
	}
	c.printf("\n")
	return rows, measured, nil
}

// Fig2Advisor demonstrates the index selection strategy on the paper's
// three motivating application profiles.
func Fig2Advisor(c Config) []advisor.Recommendation {
	c = c.withDefaults()
	profiles := []struct {
		name string
		p    advisor.Profile
	}{
		{"wireless sensor network (write-heavy, rare lookups)",
			advisor.Profile{WriteFraction: 0.85, SecondaryQueryFraction: 0.03}},
		{"social feed (read-heavy, small top-K)",
			advisor.Profile{WriteFraction: 0.1, SecondaryQueryFraction: 0.4, TypicalTopK: 10}},
		{"analytics platform (group-by, no limit)",
			advisor.Profile{WriteFraction: 0.3, SecondaryQueryFraction: 0.5, TypicalTopK: 0}},
		{"time-series telemetry (time-correlated attribute)",
			advisor.Profile{WriteFraction: 0.6, SecondaryQueryFraction: 0.2, TimeCorrelated: true, TypicalTopK: 100}},
		{"mobile/edge store (space constrained)",
			advisor.Profile{WriteFraction: 0.5, SecondaryQueryFraction: 0.2, SpaceConstrained: true, TypicalTopK: 20}},
	}
	c.printf("Figure 2 — secondary index selection strategy\n")
	var out []advisor.Recommendation
	for _, pr := range profiles {
		r := advisor.Recommend(pr.p)
		out = append(out, r)
		c.printf("%-55s → %s\n    %s\n", pr.name, r.Index, r.Rationale)
	}
	c.printf("\n")
	return out
}
