package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
)

// PipelineResult is one row of the write-pipeline experiment: the same
// seeded ingest run with flushes and compactions inline (the paper's
// deterministic configuration) versus in background goroutines.
type PipelineResult struct {
	Mode          string // "inline" or "background"
	Kind          core.IndexKind
	OpsPerSec     float64
	MeanPutUs     float64
	P99PutUs      float64
	MaxPutUs      float64
	CompactionIO  int64 // primary + index compaction block ops
	Flushes       int64 // background pipeline counters (zero inline)
	Compactions   int64
	Slowdowns     int64
	ThrottleWaits int64
}

// PipelineIngest measures what the background write pipeline buys: with
// inline compaction a PUT that fills the MemTable pays for the flush — and
// any triggered compaction cascade — before returning, producing the
// stall spikes visible in MaxPutUs/P99PutUs; with BackgroundCompaction the
// writer hands the frozen MemTable to the flusher and continues, paying at
// most the L0 slowdown/stop throttle. Total compaction I/O is identical in
// both modes (same data, same leveling policy) — only *who* pays for it
// changes. Runs the None and Lazy kinds: the paper's baseline and its
// write-optimised stand-alone index (each PUT also writes the index
// table, doubling pipeline pressure).
func PipelineIngest(c Config) ([]PipelineResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Write pipeline — %d tweets, inline vs background flush+compaction\n", len(tweets))
	c.printf("%-12s %-10s %10s %10s %10s %10s %9s %8s %7s %7s\n",
		"mode", "index", "ops/sec", "mean(us)", "p99(us)", "max(us)", "comp-io", "flushes", "compax", "stalls")

	var out []PipelineResult
	for _, kind := range []core.IndexKind{core.IndexNone, core.IndexLazy} {
		for _, background := range []bool{false, true} {
			mode := "inline"
			if background {
				mode = "background"
			}
			opts := dbOptions(kind)
			opts.BackgroundCompaction = background
			db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("pipe-%s-%s", mode, kind)), opts)
			if err != nil {
				return nil, err
			}
			hist := metrics.NewHistogram(0)
			start := time.Now()
			if err := ingest(db, tweets, hist); err != nil {
				_ = db.Close()
				return nil, err
			}
			elapsed := time.Since(start) // includes the final Flush drain
			s := db.Stats()
			bg := db.BackgroundStats()
			r := PipelineResult{
				Mode:          mode,
				Kind:          kind,
				OpsPerSec:     float64(len(tweets)) / elapsed.Seconds(),
				MeanPutUs:     hist.Mean(),
				P99PutUs:      hist.Quantile(0.99),
				MaxPutUs:      hist.Max(),
				CompactionIO:  s.Primary.CompactionIO() + s.Index.CompactionIO(),
				Flushes:       bg.Flushes,
				Compactions:   bg.Compactions,
				Slowdowns:     bg.Slowdowns,
				ThrottleWaits: bg.ThrottleWaits,
			}
			out = append(out, r)
			c.printf("%-12s %s %10.0f %10.1f %10.1f %10.1f %9d %8d %7d %7d\n",
				r.Mode, kindLabel(r.Kind), r.OpsPerSec, r.MeanPutUs, r.P99PutUs, r.MaxPutUs,
				r.CompactionIO, r.Flushes, r.Compactions, r.Slowdowns+r.ThrottleWaits)
			if err := db.Close(); err != nil {
				return nil, err
			}
		}
	}
	c.printf("\n")
	return out, nil
}

// PipelineCSV renders PipelineIngest rows for WriteCSV.
func PipelineCSV(rs []PipelineResult) ([]string, [][]string) {
	header := []string{"mode", "index", "ops_per_sec", "mean_put_us", "p99_put_us", "max_put_us",
		"compaction_io", "flushes", "compactions", "slowdowns", "throttle_waits"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{
			r.Mode, r.Kind.String(),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.1f", r.MeanPutUs),
			fmt.Sprintf("%.1f", r.P99PutUs),
			fmt.Sprintf("%.1f", r.MaxPutUs),
			strconv.FormatInt(r.CompactionIO, 10),
			strconv.FormatInt(r.Flushes, 10),
			strconv.FormatInt(r.Compactions, 10),
			strconv.FormatInt(r.Slowdowns, 10),
			strconv.FormatInt(r.ThrottleWaits, 10),
		})
	}
	return header, rows
}
