package experiments

import (
	"fmt"
	"path/filepath"

	"leveldbpp/internal/bloom"
	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/workload"
)

// C1Result is one point of Appendix C.1's bits-per-key sweep for the
// Embedded index.
type C1Result struct {
	BitsPerKey     int
	TheoreticalFP  float64
	LookupMicros   float64
	IOPerLookup    float64
	FilterMemBytes int
}

// AppendixC1BloomBits sweeps the secondary bloom filter size (the paper
// tries 20…100 bits/key and settles on a dataset-dependent optimum) and
// measures Embedded LOOKUP latency and I/O at each setting.
func AppendixC1BloomBits(c Config, bitsSweep []int) ([]C1Result, error) {
	c = c.withDefaults()
	if len(bitsSweep) == 0 {
		bitsSweep = []int{2, 5, 10, 20, 50, 100}
	}
	tweets := c.dataset()
	c.printf("Appendix C.1 — Embedded LOOKUP vs secondary bloom filter bits/key (%d tweets)\n", len(tweets))
	c.printf("%8s %12s %12s %12s %14s\n", "bits/key", "theory-FP", "lookup(us)", "IO/lookup", "filter-mem(KB)")

	var out []C1Result
	for _, bits := range bitsSweep {
		opts := dbOptions(core.IndexEmbedded)
		opts.SecondaryBitsPerKey = bits
		db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("c1-%d", bits)), opts)
		if err != nil {
			return nil, err
		}
		if err := ingest(db, tweets, nil); err != nil {
			_ = db.Close()
			return nil, err
		}
		q := workload.NewStaticQueries(tweets, c.Seed+31)
		h := metrics.NewHistogram(0)
		s0 := db.Stats()
		for i := 0; i < c.Queries; i++ {
			op := q.Lookup(workload.AttrUser, 10)
			d, err := runOp(db, op)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			h.Observe(float64(d.Microseconds()))
		}
		s1 := db.Stats()
		r := C1Result{
			BitsPerKey:     bits,
			TheoreticalFP:  bloom.FalsePositiveRate(bits),
			LookupMicros:   h.Mean(),
			IOPerLookup:    float64(s1.Primary.BlockReads-s0.Primary.BlockReads) / float64(c.Queries),
			FilterMemBytes: db.FilterMemoryUsage(),
		}
		out = append(out, r)
		c.printf("%8d %12.5f %12.1f %12.2f %14.1f\n",
			r.BitsPerKey, r.TheoreticalFP, r.LookupMicros, r.IOPerLookup, float64(r.FilterMemBytes)/(1<<10))
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// C2Result compares compressed and uncompressed stores (Appendix C.2).
type C2Result struct {
	Kind          core.IndexKind
	Compressed    bool
	DiskBytes     int64
	MeanPutMicros float64
	LookupMicros  float64
}

// AppendixC2Compression reruns the Static ingest + LOOKUP with block
// compression disabled, for the Embedded and Lazy variants.
func AppendixC2Compression(c Config) ([]C2Result, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Appendix C.2 — effect of block compression (%d tweets)\n", len(tweets))
	c.printf("%-10s %12s %12s %12s %12s\n", "index", "compressed", "disk(MB)", "put(us)", "lookup(us)")

	var out []C2Result
	for _, kind := range []core.IndexKind{core.IndexEmbedded, core.IndexLazy} {
		for _, compressed := range []bool{true, false} {
			opts := dbOptions(kind)
			opts.DisableCompression = !compressed
			db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("c2-%s-%v", kind, compressed)), opts)
			if err != nil {
				return nil, err
			}
			ph := metrics.NewHistogram(0)
			if err := ingest(db, tweets, ph); err != nil {
				_ = db.Close()
				return nil, err
			}
			prim, idx, err := db.DiskUsage()
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			q := workload.NewStaticQueries(tweets, c.Seed+41)
			lh := metrics.NewHistogram(0)
			for i := 0; i < c.Queries; i++ {
				op := q.Lookup(workload.AttrUser, 10)
				d, err := runOp(db, op)
				if err != nil {
					_ = db.Close()
					return nil, err
				}
				lh.Observe(float64(d.Microseconds()))
			}
			r := C2Result{
				Kind:          kind,
				Compressed:    compressed,
				DiskBytes:     prim + idx,
				MeanPutMicros: ph.Mean(),
				LookupMicros:  lh.Mean(),
			}
			out = append(out, r)
			c.printf("%s %12v %12.2f %12.1f %12.1f\n", kindLabel(kind),
				compressed, float64(r.DiskBytes)/(1<<20), r.MeanPutMicros, r.LookupMicros)
			_ = db.Close()
		}
	}
	c.printf("\n")
	return out, nil
}

// AblationResult compares Embedded LOOKUP with and without one of its
// internal mechanisms (GetLite, file-level zone maps) — the extra
// ablations promised in DESIGN.md.
type AblationResult struct {
	Name         string
	LookupMicros float64
	IOPerLookup  float64
}

// EmbeddedAblations measures Embedded LOOKUP with GetLite disabled and
// with file-level zone maps disabled.
func EmbeddedAblations(c Config) ([]AblationResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	configs := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"baseline", func(*core.Options) {}},
		{"no-getlite", func(o *core.Options) { o.DisableGetLite = true }},
		{"no-filezone", func(o *core.Options) { o.DisableFileZoneMap = true }},
	}
	c.printf("Ablation — Embedded LOOKUP internal mechanisms (%d tweets, %d queries)\n", len(tweets), c.Queries)
	c.printf("%-14s %12s %12s\n", "config", "lookup(us)", "IO/lookup")

	var out []AblationResult
	for _, cfg := range configs {
		opts := dbOptions(core.IndexEmbedded)
		cfg.mutate(&opts)
		db, err := c.open(filepath.Join(c.Dir, "abl-"+cfg.name), opts)
		if err != nil {
			return nil, err
		}
		if err := ingest(db, tweets, nil); err != nil {
			_ = db.Close()
			return nil, err
		}
		q := workload.NewStaticQueries(tweets, c.Seed+51)
		h := metrics.NewHistogram(0)
		s0 := db.Stats()
		for i := 0; i < c.Queries; i++ {
			op := q.Lookup(workload.AttrUser, 10)
			d, err := runOp(db, op)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			h.Observe(float64(d.Microseconds()))
		}
		s1 := db.Stats()
		r := AblationResult{
			Name:         cfg.name,
			LookupMicros: h.Mean(),
			IOPerLookup:  float64(s1.Primary.BlockReads-s0.Primary.BlockReads) / float64(c.Queries),
		}
		out = append(out, r)
		c.printf("%-14s %12.1f %12.2f\n", r.Name, r.LookupMicros, r.IOPerLookup)
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}
