package experiments

import (
	"testing"

	"leveldbpp/internal/workload"
)

func TestCacheEffects(t *testing.T) {
	c := testConfig(t)
	c.Scale = 3000
	rs, err := CacheEffects(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("rows = %d", len(rs))
	}
	off, on := rs[0], rs[1]
	if off.CacheHits != 0 {
		t.Fatal("cache-off run recorded hits")
	}
	if on.CacheHits == 0 {
		t.Fatal("cache-on run recorded no hits")
	}
	// Caching a read-heavy workload must cut disk reads.
	if on.DiskReads >= off.DiskReads {
		t.Errorf("cache did not reduce disk reads: %d vs %d", on.DiskReads, off.DiskReads)
	}
	// Compaction churn retires cached tables, so the hit rate stays
	// below 100% even for a Zipf-hot read set.
	if on.HitRate >= 0.999 {
		t.Errorf("hit rate implausibly perfect: %.4f", on.HitRate)
	}
}

func TestConcurrentReaders(t *testing.T) {
	c := testConfig(t)
	c.Scale = 2000
	rs, err := ConcurrentReaders(c, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("rows = %d", len(rs))
	}
	for _, r := range rs {
		if r.LookupsPerSec <= 0 {
			t.Fatalf("no lookups completed with %d readers", r.Readers)
		}
		if r.WriterOpsTotal == 0 {
			t.Fatalf("writer starved with %d readers", r.Readers)
		}
	}
}

func TestCSVHelpers(t *testing.T) {
	dir := t.TempDir()
	h, rows := Fig8aCSV([]Fig8aResult{{PrimaryBytes: 100, IndexBytes: 50, FilterMemory: 10, MeanPutMicros: 1.5}})
	if len(h) != 5 || len(rows) != 1 {
		t.Fatalf("Fig8aCSV shape: %v %v", h, rows)
	}
	if err := WriteCSV(dir, "fig8a", h, rows); err != nil {
		t.Fatal(err)
	}
	h, rows = QueryCSV([]QueryResult{{TopK: 3, Selectivity: 10, IOPerQuery: 2.5}})
	if len(rows) != 1 || rows[0][2] != "3" {
		t.Fatalf("QueryCSV rows: %v", rows)
	}
	h, rows = MixedCSV([]MixedResult{{Points: []MixedPoint{{Ops: 5}, {Ops: 10}}}})
	if len(rows) != 2 {
		t.Fatalf("MixedCSV rows: %v", rows)
	}
	h, rows = Fig9CSV([]Fig9Result{{Points: []Fig9Point{{Ops: 1}}}})
	if len(rows) != 1 {
		t.Fatal("Fig9CSV rows")
	}
	h, rows = C1CSV([]C1Result{{BitsPerKey: 10}})
	if len(rows) != 1 || rows[0][0] != "10" {
		t.Fatal("C1CSV rows")
	}
	h, rows = Fig7CSV(Fig7Result{Ranks: []int{9, 4, 2}})
	if len(rows) != 3 || rows[2][0] != "4" {
		t.Fatalf("Fig7CSV rows: %v", rows)
	}
	_ = h
}

func TestYCSBBench(t *testing.T) {
	c := testConfig(t)
	c.Scale = 1500
	rs, err := YCSBBench(c, []workload.YCSBWorkload{workload.YCSBA, workload.YCSBC})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 { // 2 presets × 2 index kinds
		t.Fatalf("cells = %d", len(rs))
	}
	for _, r := range rs {
		if r.OpsPerSec <= 0 || r.MeanOpUs <= 0 {
			t.Fatalf("empty cell %+v", r)
		}
	}
}
