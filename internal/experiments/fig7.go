package experiments

import (
	"math"

	"leveldbpp/internal/workload"
)

// Fig7Result summarizes the UserID rank-frequency distribution of the
// synthetic dataset (paper Figure 7: a power law on log-log axes).
type Fig7Result struct {
	ActiveUsers int
	TopUser     int     // tweets by the most active user
	MedianUser  int     // tweets by the median active user
	Slope       float64 // log-log regression slope (negative; ~-1 for Zipf)
	Ranks       []int   // frequency at rank 1, 2, 4, 8, ... (log-spaced)
}

// Fig7DatasetZipf generates a dataset and reports its rank-frequency
// curve.
func Fig7DatasetZipf(c Config) (Fig7Result, error) {
	c = c.withDefaults()
	g := workload.NewGenerator(workload.Config{Tweets: c.Scale, Seed: c.Seed})
	g.All()
	rf := workload.RankFrequency(g.UserFreq)

	res := Fig7Result{ActiveUsers: len(rf)}
	if len(rf) == 0 {
		return res, nil
	}
	res.TopUser = rf[0]
	res.MedianUser = rf[len(rf)/2]
	for r := 1; r <= len(rf); r *= 2 {
		res.Ranks = append(res.Ranks, rf[r-1])
	}
	// Log-log least-squares slope over all ranks.
	var sx, sy, sxx, sxy float64
	n := float64(len(rf))
	for i, f := range rf {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(f))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	res.Slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)

	c.printf("Figure 7 — UserID rank-frequency distribution (%d tweets, %d active users)\n", c.Scale, res.ActiveUsers)
	c.printf("%-10s %s\n", "rank", "tweets")
	for i, f := range res.Ranks {
		c.printf("%-10d %d\n", 1<<i, f)
	}
	c.printf("log-log slope: %.2f (paper's seed shows a comparable power law)\n\n", res.Slope)
	return res, nil
}
