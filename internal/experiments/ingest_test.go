package experiments

import "testing"

func TestIngestThroughput(t *testing.T) {
	c := testConfig(t)
	c.Scale = 800
	rs, err := IngestThroughput(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 { // {None,Embedded} × {1,8 writers} × {inline,group}
		t.Fatalf("rows = %d", len(rs))
	}
	for _, r := range rs {
		if r.OpsPerSec <= 0 {
			t.Fatalf("no throughput for %+v", r)
		}
		if !r.Group || r.Writers == 1 {
			// Inline commits and single-writer groups are groups of one:
			// exactly one fsync per commit under SyncGrouped.
			if r.FsyncsPerOp != 1 || r.MeanGroup != 1 {
				t.Errorf("ungrouped run fsyncs/op=%.3f mean-group=%.2f, want 1/1 (%+v)",
					r.FsyncsPerOp, r.MeanGroup, r)
			}
			continue
		}
		// Concurrent grouped ingest must amortise: more than one commit
		// per fsync on average.
		if r.FsyncsPerOp >= 1 {
			t.Errorf("grouped run did not amortise fsyncs: %.3f/op (%+v)", r.FsyncsPerOp, r)
		}
		if r.MeanGroup <= 1 {
			t.Errorf("grouped run mean group %.2f, want > 1 (%+v)", r.MeanGroup, r)
		}
	}
	h, rows := IngestCSV(rs)
	if len(h) != 6 || len(rows) != len(rs) {
		t.Fatalf("CSV shape %d×%d", len(h), len(rows))
	}
}
