package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV writes one experiment's rows to dir/name.csv for plotting.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("experiments: create csv: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

// Fig8aCSV converts Figure 8a results to CSV rows.
func Fig8aCSV(rs []Fig8aResult) ([]string, [][]string) {
	header := []string{"index", "primary_bytes", "index_bytes", "filter_memory_bytes", "mean_put_us"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{r.Kind.String(), itoa(r.PrimaryBytes), itoa(r.IndexBytes),
			itoa(int64(r.FilterMemory)), ftoa(r.MeanPutMicros)})
	}
	return header, rows
}

// Fig8bCSV converts Figure 8b results to CSV rows.
func Fig8bCSV(rs []Fig8bResult) ([]string, [][]string) {
	header := []string{"index", "mean_put_us", "overhead_us", "creationtime_index_us", "userid_index_us",
		"index_write_io", "index_read_io", "index_compaction_io"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{r.Kind.String(), ftoa(r.MeanPutMicros), ftoa(r.OverheadMicros),
			ftoa(r.CreationTimeUs), ftoa(r.UserIDUs),
			itoa(r.IndexWriteIO), itoa(r.IndexReadIO), itoa(r.IndexCompaction)})
	}
	return header, rows
}

// Fig9CSV converts Figure 9 curves to long-form CSV rows.
func Fig9CSV(rs []Fig9Result) ([]string, [][]string) {
	header := []string{"index", "ops", "put_us", "cum_index_compaction_io", "cum_index_write_io"}
	var rows [][]string
	for _, r := range rs {
		for _, p := range r.Points {
			rows = append(rows, []string{r.Kind.String(), strconv.Itoa(p.Ops), ftoa(p.PutMicros),
				itoa(p.CumIndexCompIO), itoa(p.CumIndexWriteIO)})
		}
	}
	return header, rows
}

// QueryCSV converts Figure 10/11 cells to CSV rows.
func QueryCSV(rs []QueryResult) ([]string, [][]string) {
	header := []string{"index", "op", "topk", "selectivity",
		"median_us", "q1_us", "q3_us", "whisker_low_us", "whisker_high_us", "mean_us", "io_per_query"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{r.Kind.String(), r.Op.String(), strconv.Itoa(r.TopK), strconv.Itoa(r.Selectivity),
			ftoa(r.Box.Median), ftoa(r.Box.Q1), ftoa(r.Box.Q3),
			ftoa(r.Box.WhiskerLow), ftoa(r.Box.WhiskerHigh), ftoa(r.Box.Mean), ftoa(r.IOPerQuery)})
	}
	return header, rows
}

// MixedCSV converts Figure 12–15 curves to long-form CSV rows.
func MixedCSV(rs []MixedResult) ([]string, [][]string) {
	header := []string{"index", "ops", "mean_op_us",
		"cum_compaction_io", "cum_get_io", "cum_lookup_io", "cum_write_io"}
	var rows [][]string
	for _, r := range rs {
		for _, p := range r.Points {
			rows = append(rows, []string{r.Kind.String(), strconv.Itoa(p.Ops), ftoa(p.MeanOpMicros),
				itoa(p.CumCompactionIO), itoa(p.CumGetIO), itoa(p.CumLookupIO), itoa(p.CumWriteIO)})
		}
	}
	return header, rows
}

// C1CSV converts the Appendix C.1 sweep to CSV rows.
func C1CSV(rs []C1Result) ([]string, [][]string) {
	header := []string{"bits_per_key", "theoretical_fp", "lookup_us", "io_per_lookup", "filter_memory_bytes"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{strconv.Itoa(r.BitsPerKey), ftoa(r.TheoreticalFP),
			ftoa(r.LookupMicros), ftoa(r.IOPerLookup), itoa(int64(r.FilterMemBytes))})
	}
	return header, rows
}

// Fig7CSV converts the rank-frequency curve to CSV rows.
func Fig7CSV(r Fig7Result) ([]string, [][]string) {
	header := []string{"rank", "tweets"}
	var rows [][]string
	for i, f := range r.Ranks {
		rows = append(rows, []string{strconv.Itoa(1 << i), strconv.Itoa(f)})
	}
	return header, rows
}
