package experiments

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/workload"
)

// CacheResult is one row of the block-cache experiment: a read-heavy run
// with and without the LRU block cache (the paper runs cache-less and
// discusses OS buffer-cache effects in §5.2.2; this experiment makes the
// effect measurable in-process).
type CacheResult struct {
	Kind        core.IndexKind
	CacheBytes  int64
	DiskReads   int64 // block reads that went to disk
	CacheHits   int64
	HitRate     float64
	MeanOpMicro float64
}

// CacheEffects runs the read-heavy Mixed workload against the Lazy index
// with the block cache off and on, reporting disk-read savings and the
// compaction-invalidation behaviour (hit rate < 100% even for a hot set,
// because compactions retire cached tables).
func CacheEffects(c Config) ([]CacheResult, error) {
	c = c.withDefaults()
	nOps := c.Scale
	c.printf("Block cache effects — read-heavy mix, %d ops, Lazy index\n", nOps)
	c.printf("%-12s %12s %12s %10s %12s\n", "cache", "disk-reads", "cache-hits", "hit-rate", "mean-op(us)")

	var out []CacheResult
	for _, cacheBytes := range []int64{0, 4 << 20} {
		opts := mixedOptions(core.IndexLazy)
		opts.BlockCacheBytes = cacheBytes
		// Tighter flush threshold so even reduced-scale runs hit disk and
		// exercise the cache.
		opts.MemTableBytes = 64 << 10
		opts.BaseLevelBytes = 256 << 10
		db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("cache-%d", cacheBytes)), opts)
		if err != nil {
			return nil, err
		}
		m := workload.NewMixed(workload.Config{Seed: c.Seed, Tweets: nOps}, workload.ReadHeavy, nOps, 10)
		var total time.Duration
		done := 0
		for {
			op, ok := m.Next()
			if !ok {
				break
			}
			d, err := runOp(db, op)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			total += d
			done++
		}
		s := db.Stats()
		r := CacheResult{
			Kind:        core.IndexLazy,
			CacheBytes:  cacheBytes,
			DiskReads:   s.Primary.BlockReads + s.Index.BlockReads,
			CacheHits:   s.Primary.CacheHits + s.Index.CacheHits,
			MeanOpMicro: float64(total.Microseconds()) / float64(done),
		}
		if lookups := r.CacheHits + s.Primary.CacheMisses + s.Index.CacheMisses; lookups > 0 {
			r.HitRate = float64(r.CacheHits) / float64(lookups)
		}
		out = append(out, r)
		label := "off"
		if cacheBytes > 0 {
			label = fmt.Sprintf("%dMB", cacheBytes>>20)
		}
		c.printf("%-12s %12d %12d %9.1f%% %12.1f\n", label, r.DiskReads, r.CacheHits, r.HitRate*100, r.MeanOpMicro)
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// SeekResult is one row of the restart-format experiment: a GET-heavy run
// against v1 linear-scan blocks versus v2 restart-point blocks, reporting
// the in-block work each format does per point read.
type SeekResult struct {
	Format         string // "v1-linear" or "v2-restart"
	BlockSize      int
	PointGets      int64
	EntriesDecoded int64
	BlockSeeks     int64
	DecodesPerGet  float64
	MeanOpMicro    float64
}

// SeekProfile quantifies the restart-point block format (DESIGN.md §5.2):
// identical GET-heavy workloads run against legacy v1 blocks and v2
// restart blocks; the EntriesDecoded / PointGets ratio is the per-read
// CPU work the binary in-block seek removes.
func SeekProfile(c Config) ([]SeekResult, error) {
	c = c.withDefaults()
	nOps := c.Scale
	c.printf("Restart-point seek profile — GET-heavy mix, %d ops, Lazy index\n", nOps)
	c.printf("%-12s %8s %12s %14s %12s %14s %12s\n",
		"format", "block", "point-gets", "entries-dec", "seeks", "decodes/get", "mean-op(us)")

	formats := []struct {
		label    string
		interval int
	}{
		{"v1-linear", -1},
		{"v2-restart", 0},
	}
	// The paper's 4 KiB default holds only ~13 tweet documents per block,
	// so in-block scans are short; 16 KiB makes the in-block component of
	// a GET dominant and the restart seek's effect visible at DB level.
	var out []SeekResult
	for _, blockSize := range []int{4096, 16384} {
		for _, f := range formats {
			opts := mixedOptions(core.IndexLazy)
			opts.RestartInterval = f.interval
			opts.BlockSize = blockSize
			// Tight flush threshold so reduced-scale runs reach the SSTable
			// read path rather than answering from the MemTable.
			opts.MemTableBytes = 64 << 10
			opts.BaseLevelBytes = 256 << 10
			db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("seek-%s-%d", f.label, blockSize)), opts)
			if err != nil {
				return nil, err
			}
			m := workload.NewMixed(workload.Config{Seed: c.Seed, Tweets: nOps}, workload.ReadHeavy, nOps, 10)
			var total time.Duration
			done := 0
			for {
				op, ok := m.Next()
				if !ok {
					break
				}
				d, err := runOp(db, op)
				if err != nil {
					_ = db.Close()
					return nil, err
				}
				total += d
				done++
			}
			s := db.Stats()
			r := SeekResult{
				Format:         f.label,
				BlockSize:      blockSize,
				PointGets:      s.Primary.PointGets + s.Index.PointGets,
				EntriesDecoded: s.Primary.EntriesDecoded + s.Index.EntriesDecoded,
				BlockSeeks:     s.Primary.BlockSeeks + s.Index.BlockSeeks,
				MeanOpMicro:    float64(total.Microseconds()) / float64(done),
			}
			if r.PointGets > 0 {
				r.DecodesPerGet = float64(r.EntriesDecoded) / float64(r.PointGets)
			}
			out = append(out, r)
			c.printf("%-12s %8d %12d %14d %12d %14.2f %12.1f\n",
				r.Format, r.BlockSize, r.PointGets, r.EntriesDecoded, r.BlockSeeks, r.DecodesPerGet, r.MeanOpMicro)
			_ = db.Close()
		}
	}
	c.printf("\n")
	return out, nil
}

// ConcurrencyResult is one row of the concurrent-readers experiment
// (the analogue of the paper's Appendix C concurrency discussion):
// aggregate LOOKUP throughput as reader goroutines scale, with a single
// writer streaming in the background.
type ConcurrencyResult struct {
	Readers        int
	LookupsPerSec  float64
	MeanLookupUs   float64
	WriterOpsTotal int
}

// ConcurrentReaders measures Lazy-index LOOKUP throughput with 1..N
// reader goroutines running against a live single-writer ingest.
func ConcurrentReaders(c Config, readerCounts []int) ([]ConcurrencyResult, error) {
	c = c.withDefaults()
	if len(readerCounts) == 0 {
		readerCounts = []int{1, 2, 4, 8}
	}
	tweets := c.dataset()
	c.printf("Concurrent readers — Lazy index, %d preloaded tweets, live writer\n", len(tweets))
	c.printf("%8s %14s %14s %12s\n", "readers", "lookups/sec", "mean(us)", "writer-ops")

	var out []ConcurrencyResult
	for _, n := range readerCounts {
		db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("conc-%d", n)), mixedOptions(core.IndexLazy))
		if err != nil {
			return nil, err
		}
		for _, tw := range tweets {
			if err := db.Put(tw.ID, tw.Doc()); err != nil {
				_ = db.Close()
				return nil, err
			}
		}

		const duration = 300 * time.Millisecond
		stop := make(chan struct{})
		var wg sync.WaitGroup

		// One background writer continues the stream.
		writerOps := 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := workload.NewGenerator(workload.Config{Tweets: 1 << 30, Users: 10000, Seed: c.Seed + 999})
			for {
				select {
				case <-stop:
					return
				default:
				}
				tw, _ := g.Next()
				tw.ID = fmt.Sprintf("live%09d", writerOps)
				if err := db.Put(tw.ID, tw.Doc()); err != nil {
					return
				}
				writerOps++
			}
		}()

		// N readers issue top-10 LOOKUPs.
		hist := metrics.NewHistogram(0)
		var lookups int64
		var mu sync.Mutex
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				q := workload.NewStaticQueries(tweets, c.Seed+int64(r))
				local := 0
				for {
					select {
					case <-stop:
						mu.Lock()
						lookups += int64(local)
						mu.Unlock()
						return
					default:
					}
					op := q.Lookup(workload.AttrUser, 10)
					start := time.Now()
					if _, err := db.Lookup(op.Attr, op.Lo, op.K); err != nil {
						return
					}
					hist.Observe(float64(time.Since(start).Microseconds()))
					local++
				}
			}(r)
		}
		time.Sleep(duration)
		close(stop)
		wg.Wait()

		r := ConcurrencyResult{
			Readers:        n,
			LookupsPerSec:  float64(lookups) / duration.Seconds(),
			MeanLookupUs:   hist.Mean(),
			WriterOpsTotal: writerOps,
		}
		out = append(out, r)
		c.printf("%8d %14.0f %14.1f %12d\n", r.Readers, r.LookupsPerSec, r.MeanLookupUs, r.WriterOpsTotal)
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// YCSBResult reports one (workload, index) cell of the YCSB extension
// run: mean op latency and throughput.
type YCSBResult struct {
	Workload  workload.YCSBWorkload
	Kind      core.IndexKind
	MeanOpUs  float64
	OpsPerSec float64
}

// YCSBBench preloads c.Scale records and drives the six YCSB presets
// against the Embedded and Lazy variants — the standard cloud-serving
// mixes the paper contrasts its generator with (§5.1: YCSB offers no
// control over secondary-query ratios, so no secondary lookups appear
// here; this measures the primary-path cost of carrying each index).
func YCSBBench(c Config, presets []workload.YCSBWorkload) ([]YCSBResult, error) {
	c = c.withDefaults()
	if len(presets) == 0 {
		presets = []workload.YCSBWorkload{
			workload.YCSBA, workload.YCSBB, workload.YCSBC,
			workload.YCSBD, workload.YCSBE, workload.YCSBF,
		}
	}
	records := c.Scale
	nOps := c.Scale
	c.printf("YCSB presets — %d preloaded records, %d ops per cell\n", records, nOps)
	c.printf("%-9s %-10s %12s %14s\n", "workload", "index", "mean(us)", "ops/sec")

	var out []YCSBResult
	for _, kind := range []core.IndexKind{core.IndexEmbedded, core.IndexLazy} {
		for _, preset := range presets {
			opts := mixedOptions(kind)
			opts.Attrs = []string{"field0"}
			db, err := c.open(filepath.Join(c.Dir, fmt.Sprintf("ycsb-%c-%s", preset, kind)), opts)
			if err != nil {
				return nil, err
			}
			g, err := workload.NewYCSB(preset, records, nOps, c.Seed)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			for i := 0; i < records; i++ {
				if err := db.Put(workload.YCSBKey(i), g.LoadValue(i)); err != nil {
					_ = db.Close()
					return nil, err
				}
			}
			start := time.Now()
			done := 0
			for {
				op, ok := g.Next()
				if !ok {
					break
				}
				done++
				var err error
				switch op.Kind {
				case workload.YCSBInsert, workload.YCSBUpdate:
					err = db.Put(op.Key, op.Value)
				case workload.YCSBRead:
					_, _, err = db.Get(op.Key)
				case workload.YCSBScan:
					n := 0
					err = db.Scan(op.Key, "", func(string, []byte) bool {
						n++
						return n < op.ScanLen
					})
				case workload.YCSBReadModifyWrite:
					if _, _, err = db.Get(op.Key); err == nil {
						err = db.Put(op.Key, op.Value)
					}
				}
				if err != nil {
					_ = db.Close()
					return nil, err
				}
			}
			elapsed := time.Since(start)
			r := YCSBResult{
				Workload:  preset,
				Kind:      kind,
				MeanOpUs:  float64(elapsed.Microseconds()) / float64(done),
				OpsPerSec: float64(done) / elapsed.Seconds(),
			}
			out = append(out, r)
			c.printf("%-9c %s %12.1f %14.0f\n", preset, kindLabel(kind), r.MeanOpUs, r.OpsPerSec)
			_ = db.Close()
		}
	}
	c.printf("\n")
	return out, nil
}
