package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/postings"
	"leveldbpp/internal/workload"
)

// PostingsResult is one row of the posting-list codec experiment: a
// stand-alone index kind run end to end under one encoding, reporting
// ingest throughput, LOOKUP latency, and the decode work per query that
// the lsmpp_postings_* counters expose.
type PostingsResult struct {
	Kind               core.IndexKind
	Format             postings.Format
	IngestOpsPerSec    float64
	MeanLookupMicro    float64
	EntriesPerLookup   float64 // posting entries decoded per LOOKUP
	BytesPerLookup     float64 // encoded posting bytes decoded per LOOKUP
	FragmentsPerLookup float64 // fragments fed to the merge per LOOKUP (Lazy)
	IndexDiskBytes     int64
}

// PostingsCost measures what the posting-list encoding costs the
// stand-alone indexes (DESIGN.md §5.6): the same ingest + top-10 LOOKUP
// run under the seed v1 JSON codec and the v2 binary codec. Eager pays
// the codec on every PUT (full-list read-modify-write); Lazy pays it on
// every LOOKUP (fragment decode+merge). The per-query decode counters
// make the v2 early-stop visible: entries decoded per LOOKUP drops to
// roughly the top-K, independent of list length.
func PostingsCost(c Config) ([]PostingsResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Posting-list codec — %d tweets, %d top-10 LOOKUPs, v1 JSON vs v2 binary\n",
		len(tweets), c.Queries)
	c.printf("%-10s %-6s %10s %12s %12s %12s %10s %12s\n",
		"index", "fmt", "put/sec", "lookup(us)", "entries/q", "bytes/q", "frags/q", "index-disk")

	var out []PostingsResult
	for _, kind := range []core.IndexKind{core.IndexEager, core.IndexLazy} {
		for _, f := range []postings.Format{postings.FormatV1, postings.FormatV2} {
			opts := dbOptions(kind)
			opts.PostingsFormat = f
			name := fmt.Sprintf("postings-%s-%s", kind, f)
			db, err := c.open(filepath.Join(c.Dir, name), opts)
			if err != nil {
				return nil, err
			}

			start := time.Now()
			for _, tw := range tweets {
				if err := db.Put(tw.ID, tw.Doc()); err != nil {
					_ = db.Close()
					return nil, err
				}
			}
			if err := db.Flush(); err != nil {
				_ = db.Close()
				return nil, err
			}
			ingestSecs := time.Since(start).Seconds()

			q := workload.NewStaticQueries(tweets, c.Seed)
			s0 := db.Stats()
			start = time.Now()
			for i := 0; i < c.Queries; i++ {
				op := q.Lookup(workload.AttrUser, 10)
				if _, err := db.Lookup(op.Attr, op.Lo, op.K); err != nil {
					_ = db.Close()
					return nil, err
				}
			}
			querySecs := time.Since(start).Seconds()
			s1 := db.Stats()

			_, idxDisk, err := db.DiskUsage()
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			nq := float64(c.Queries)
			r := PostingsResult{
				Kind:               kind,
				Format:             f,
				IngestOpsPerSec:    float64(len(tweets)) / ingestSecs,
				MeanLookupMicro:    querySecs * 1e6 / nq,
				EntriesPerLookup:   float64(s1.Index.PostingsEntriesDecoded-s0.Index.PostingsEntriesDecoded) / nq,
				BytesPerLookup:     float64(s1.Index.PostingsBytesDecoded-s0.Index.PostingsBytesDecoded) / nq,
				FragmentsPerLookup: float64(s1.Index.FragmentsMerged-s0.Index.FragmentsMerged) / nq,
				IndexDiskBytes:     idxDisk,
			}
			out = append(out, r)
			c.printf("%-10s %-6s %10.0f %12.1f %12.1f %12.1f %10.2f %12d\n",
				r.Kind, r.Format, r.IngestOpsPerSec, r.MeanLookupMicro,
				r.EntriesPerLookup, r.BytesPerLookup, r.FragmentsPerLookup, r.IndexDiskBytes)
			if err := db.Close(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// PostingsCSV renders PostingsCost results for csvOut.
func PostingsCSV(rs []PostingsResult) ([]string, [][]string) {
	header := []string{"index", "format", "put_per_sec", "mean_lookup_us",
		"entries_per_lookup", "bytes_per_lookup", "frags_per_lookup", "index_disk_bytes"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{
			r.Kind.String(), r.Format.String(),
			fmt.Sprintf("%.0f", r.IngestOpsPerSec),
			fmt.Sprintf("%.1f", r.MeanLookupMicro),
			fmt.Sprintf("%.1f", r.EntriesPerLookup),
			fmt.Sprintf("%.1f", r.BytesPerLookup),
			fmt.Sprintf("%.2f", r.FragmentsPerLookup),
			fmt.Sprintf("%d", r.IndexDiskBytes),
		})
	}
	return header, rows
}
