package experiments

import (
	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/workload"
)

// QueryResult is one box of Figures 10–11: the latency distribution of a
// (variant, query type, top-K, selectivity) cell, plus the exact block
// I/O per query.
type QueryResult struct {
	Kind        core.IndexKind
	Op          workload.OpKind
	Attr        string
	TopK        int // 0 = no limit
	Selectivity int // users for Fig 10, minutes for Fig 11; 0 for LOOKUP
	Box         metrics.BoxPlot
	IOPerQuery  float64 // primary + index block reads per query
}

// TopKs are the paper's three top-K settings (Figures 10–11): 1, 10, and
// no limit.
var TopKs = []int{1, 10, 0}

// queryVariants: the paper excludes Eager from Figure 10 (UserID) having
// shown it unusable, but includes it in Figure 11; we keep it in both and
// let the numbers speak.
func (c Config) runQueryCell(db *core.DB, kind core.IndexKind, mkOp func() workload.Op) (QueryResult, error) {
	h := metrics.NewHistogram(0)
	s0 := db.Stats()
	var sample workload.Op
	for i := 0; i < c.Queries; i++ {
		op := mkOp()
		sample = op
		d, err := runOp(db, op)
		if err != nil {
			return QueryResult{}, err
		}
		h.Observe(float64(d.Microseconds()))
	}
	s1 := db.Stats()
	reads := (s1.Primary.BlockReads - s0.Primary.BlockReads) + (s1.Index.BlockReads - s0.Index.BlockReads)
	return QueryResult{
		Kind:       kind,
		Op:         sample.Kind,
		Attr:       sample.Attr,
		TopK:       sample.K,
		Box:        h.BoxPlot(),
		IOPerQuery: float64(reads) / float64(c.Queries),
	}, nil
}

// Fig10UserIDQueries reproduces Figure 10: LOOKUP and RANGELOOKUP latency
// on the non-time-correlated UserID attribute, for top-K ∈ {1, 10, ∞} and
// range selectivity ∈ {10, 100} users.
func Fig10UserIDQueries(c Config) ([]QueryResult, error) {
	return c.attrQueries(workload.AttrUser, []int{10, 100})
}

// Fig11CreationTimeQueries reproduces Figure 11: the same grid on the
// time-correlated CreationTime attribute. The paper sweeps {10, 100}
// minutes against a month-long 80M-tweet stream; scaled to our stream
// length we sweep {1, 10} minutes, preserving the window:span ratio's
// order of magnitude.
func Fig11CreationTimeQueries(c Config) ([]QueryResult, error) {
	return c.attrQueries(workload.AttrTime, []int{1, 10})
}

func (c Config) attrQueries(attr string, selectivities []int) ([]QueryResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	figure := "Figure 10 (UserID)"
	if attr == workload.AttrTime {
		figure = "Figure 11 (CreationTime)"
	}
	c.printf("%s — LOOKUP/RANGELOOKUP latency, %d tweets, %d queries per cell\n", figure, len(tweets), c.Queries)
	c.printf("%-10s %-12s %6s %6s %10s %10s %10s %10s\n",
		"index", "op", "topK", "sel", "median(us)", "q1", "q3", "IO/query")

	var out []QueryResult
	for _, kind := range Variants {
		db, err := c.openDB("figq-"+attr+"-"+kind.String(), kind)
		if err != nil {
			return nil, err
		}
		if err := ingest(db, tweets, nil); err != nil {
			_ = db.Close()
			return nil, err
		}
		q := workload.NewStaticQueries(tweets, c.Seed+101)

		emit := func(r QueryResult) {
			out = append(out, r)
			c.printf("%s %-12s %6d %6d %10.1f %10.1f %10.1f %10.2f\n",
				kindLabel(kind), r.Op.String(), r.TopK, r.Selectivity,
				r.Box.Median, r.Box.Q1, r.Box.Q3, r.IOPerQuery)
		}

		for _, k := range TopKs {
			r, err := c.runQueryCell(db, kind, func() workload.Op { return q.Lookup(attr, k) })
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			emit(r)
		}
		for _, sel := range selectivities {
			for _, k := range TopKs {
				mk := func() workload.Op {
					if attr == workload.AttrUser {
						return q.RangeLookupUsers(sel, k)
					}
					return q.RangeLookupTime(sel, k)
				}
				r, err := c.runQueryCell(db, kind, mk)
				if err != nil {
					_ = db.Close()
					return nil, err
				}
				r.Selectivity = sel
				emit(r)
			}
		}
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}
