package experiments

import (
	"path/filepath"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/workload"
)

// Fig8aResult is one bar group of Figure 8a: on-disk size decomposed into
// primary table and index tables, plus the Embedded index's memory-
// resident filter bytes.
type Fig8aResult struct {
	Kind          core.IndexKind
	PrimaryBytes  int64
	IndexBytes    int64
	FilterMemory  int
	MeanPutMicros float64
}

// Fig8aDatabaseSize ingests the Static dataset under every index variant
// and reports database sizes (Figure 8a) and mean PUT latency (the input
// to Figure 8b).
func Fig8aDatabaseSize(c Config) ([]Fig8aResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Figure 8a — database size after %d PUTs (two secondary indexes: UserID, CreationTime)\n", len(tweets))
	c.printf("%-10s %14s %14s %14s %14s\n", "index", "primary(MB)", "index(MB)", "filters(KB)", "put(us)")

	var out []Fig8aResult
	for _, kind := range Variants {
		db, err := c.openDB("fig8a-"+kind.String(), kind)
		if err != nil {
			return nil, err
		}
		h := metrics.NewHistogram(0)
		if err := ingest(db, tweets, h); err != nil {
			_ = db.Close()
			return nil, err
		}
		prim, idx, err := db.DiskUsage()
		if err != nil {
			_ = db.Close()
			return nil, err
		}
		r := Fig8aResult{
			Kind:          kind,
			PrimaryBytes:  prim,
			IndexBytes:    idx,
			FilterMemory:  db.FilterMemoryUsage(),
			MeanPutMicros: h.Mean(),
		}
		out = append(out, r)
		c.printf("%s %14.2f %14.2f %14.1f %14.1f\n", kindLabel(kind),
			float64(prim)/(1<<20), float64(idx)/(1<<20), float64(r.FilterMemory)/(1<<10), r.MeanPutMicros)
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// Fig8bResult decomposes PUT cost the paper's way: the primary-table
// baseline plus the isolated per-index overheads, obtained by differencing
// a CreationTime-only run and a two-index run ("the CreationTime Index
// time shows the difference between the time of PUT when we only have one
// secondary index minus the PUT time when there is no secondary index").
type Fig8bResult struct {
	Kind            core.IndexKind
	MeanPutMicros   float64 // both indexes
	OverheadMicros  float64 // vs the NoIndex baseline
	CreationTimeUs  float64 // isolated CreationTime-index overhead
	UserIDUs        float64 // isolated UserID-index overhead
	IndexWriteIO    int64   // index-table block writes + compaction writes
	IndexReadIO     int64   // index-table reads incurred by writes
	IndexCompaction int64
}

// Fig8bPutPerformance measures ingest cost per variant (Figure 8b),
// decomposed as the paper does: baseline (no index), CreationTime-only,
// and CreationTime+UserID runs, with the per-index overheads isolated by
// differencing.
func Fig8bPutPerformance(c Config) ([]Fig8bResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Figure 8b — PUT performance decomposition (%d PUTs)\n", len(tweets))
	c.printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n",
		"index", "put(us)", "overhead", "ct-idx", "uid-idx", "idx-wIO", "idx-rIO", "idx-compIO")

	ingestWith := func(name string, kind core.IndexKind, attrs []string) (float64, core.Stats, error) {
		opts := dbOptions(kind)
		opts.Attrs = attrs
		db, err := c.open(filepath.Join(c.Dir, "fig8b-"+name), opts)
		if err != nil {
			return 0, core.Stats{}, err
		}
		defer db.Close()
		h := metrics.NewHistogram(0)
		if err := ingest(db, tweets, h); err != nil {
			return 0, core.Stats{}, err
		}
		return h.Mean(), db.Stats(), nil
	}

	baseline, _, err := ingestWith("baseline", core.IndexNone, nil)
	if err != nil {
		return nil, err
	}
	out := []Fig8bResult{{Kind: core.IndexNone, MeanPutMicros: baseline}}
	c.printf("%s %10.1f %10.1f %10s %10s %10d %10d %10d\n", kindLabel(core.IndexNone),
		baseline, 0.0, "-", "-", 0, 0, 0)

	for _, kind := range []core.IndexKind{core.IndexEmbedded, core.IndexEager, core.IndexLazy, core.IndexComposite} {
		ctOnly, _, err := ingestWith("ct-"+kind.String(), kind, []string{workload.AttrTime})
		if err != nil {
			return nil, err
		}
		both, s, err := ingestWith("both-"+kind.String(), kind, []string{workload.AttrUser, workload.AttrTime})
		if err != nil {
			return nil, err
		}
		r := Fig8bResult{
			Kind:            kind,
			MeanPutMicros:   both,
			OverheadMicros:  both - baseline,
			CreationTimeUs:  ctOnly - baseline,
			UserIDUs:        both - ctOnly,
			IndexWriteIO:    s.Index.BlockWrites + s.Index.CompactionWrites,
			IndexReadIO:     s.Index.BlockReads,
			IndexCompaction: s.Index.CompactionIO(),
		}
		out = append(out, r)
		c.printf("%s %10.1f %10.1f %10.1f %10.1f %10d %10d %10d\n", kindLabel(kind),
			r.MeanPutMicros, r.OverheadMicros, r.CreationTimeUs, r.UserIDUs,
			r.IndexWriteIO, r.IndexReadIO, r.IndexCompaction)
	}
	c.printf("\n")
	return out, nil
}

// Fig8cResult is one bar of Figure 8c: mean GET latency per variant.
type Fig8cResult struct {
	Kind          core.IndexKind
	MeanGetMicros float64
	GetBlockReads float64 // block reads per GET
}

// Fig8cGetPerformance confirms the paper's claim that secondary indexes
// leave primary-key GETs untouched.
func Fig8cGetPerformance(c Config) ([]Fig8cResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	nGets := c.Queries * 10
	c.printf("Figure 8c — GET performance (%d GETs after %d PUTs)\n", nGets, len(tweets))
	c.printf("%-10s %12s %14s\n", "index", "get(us)", "blocks/GET")

	var out []Fig8cResult
	for _, kind := range Variants {
		db, err := c.openDB("fig8c-"+kind.String(), kind)
		if err != nil {
			return nil, err
		}
		if err := ingest(db, tweets, nil); err != nil {
			_ = db.Close()
			return nil, err
		}
		q := workload.NewStaticQueries(tweets, c.Seed+77)
		h := metrics.NewHistogram(0)
		before := db.Stats().Primary
		for i := 0; i < nGets; i++ {
			op := q.Get()
			d, err := runOp(db, op)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			h.Observe(float64(d.Microseconds()))
		}
		reads := db.Stats().Primary.BlockReads - before.BlockReads
		r := Fig8cResult{Kind: kind, MeanGetMicros: h.Mean(), GetBlockReads: float64(reads) / float64(nGets)}
		out = append(out, r)
		c.printf("%s %12.1f %14.2f\n", kindLabel(kind), r.MeanGetMicros, r.GetBlockReads)
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// Fig9Point is one sample of Figure 9: state after each ingest batch.
type Fig9Point struct {
	Ops             int
	PutMicros       float64 // mean PUT latency in this batch
	CumIndexCompIO  int64   // cumulative index-table compaction I/O (Fig 9c)
	CumIndexWriteIO int64
}

// Fig9Result is one curve (per index variant) of Figures 9a–9c.
type Fig9Result struct {
	Kind   core.IndexKind
	Points []Fig9Point
}

// Fig9PutOverTime ingests the dataset in batches, sampling PUT latency
// and cumulative index compaction I/O after each batch (the paper samples
// per million inserts).
func Fig9PutOverTime(c Config, batches int) ([]Fig9Result, error) {
	c = c.withDefaults()
	if batches <= 0 {
		batches = 10
	}
	tweets := c.dataset()
	batchSize := len(tweets) / batches
	c.printf("Figure 9 — PUT latency and cumulative index compaction I/O over time (%d batches of %d)\n", batches, batchSize)

	var out []Fig9Result
	for _, kind := range Variants {
		db, err := c.openDB("fig9-"+kind.String(), kind)
		if err != nil {
			return nil, err
		}
		res := Fig9Result{Kind: kind}
		for b := 0; b < batches; b++ {
			batch := tweets[b*batchSize : (b+1)*batchSize]
			var total time.Duration
			for _, tw := range batch {
				start := time.Now()
				if err := db.Put(tw.ID, tw.Doc()); err != nil {
					_ = db.Close()
					return nil, err
				}
				total += time.Since(start)
			}
			s := db.Stats()
			res.Points = append(res.Points, Fig9Point{
				Ops:             (b + 1) * batchSize,
				PutMicros:       float64(total.Microseconds()) / float64(len(batch)),
				CumIndexCompIO:  s.Index.CompactionIO(),
				CumIndexWriteIO: s.Index.BlockWrites + s.Index.CompactionWrites,
			})
		}
		out = append(out, res)
		c.printf("%s ", kindLabel(kind))
		for _, p := range res.Points {
			c.printf("[%dk: %.0fus io=%d] ", p.Ops/1000, p.PutMicros, p.CumIndexCompIO)
		}
		c.printf("\n")
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}
