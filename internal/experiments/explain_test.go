package experiments

import (
	"testing"

	"leveldbpp/internal/core"
)

// TestExplainValidation is the acceptance gate for the EXPLAIN cost
// accounting: on every indexed kind the aggregate observed/predicted I/O
// ratio for LOOKUP must land in [0.5, 2.0] — the model's worst-case
// formulas should bound reality within a small constant at the default
// geometry.
func TestExplainValidation(t *testing.T) {
	c := testConfig(t)
	c.Scale = 4000
	c.Queries = 40
	rs, err := ExplainValidation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2*len(Variants) {
		t.Fatalf("rows = %d, want %d", len(rs), 2*len(Variants))
	}
	lookup := map[core.IndexKind]ExplainResult{}
	for _, r := range rs {
		if r.ObservedIO <= 0 || r.PredictedIO <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Op == "LOOKUP" {
			lookup[r.Kind] = r
		}
	}
	for _, kind := range []core.IndexKind{
		core.IndexEmbedded, core.IndexEager, core.IndexLazy, core.IndexComposite,
	} {
		r, ok := lookup[kind]
		if !ok {
			t.Fatalf("no LOOKUP row for %s", kind)
		}
		if r.Ratio < 0.5 || r.Ratio > 2.0 {
			t.Errorf("%s LOOKUP observed/predicted = %.2f, want [0.5, 2.0] (obs=%d pred=%.1f)",
				kind, r.Ratio, r.ObservedIO, r.PredictedIO)
		}
	}
	h, rows := ExplainCSV(rs)
	if len(h) != 7 || len(rows) != len(rs) {
		t.Fatalf("CSV shape %d×%d", len(h), len(rows))
	}
}
