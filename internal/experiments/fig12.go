package experiments

import (
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/workload"
)

// MixedPoint is one checkpoint of Figures 12–15: overall mean op time so
// far plus cumulative disk I/O decomposed the way the paper plots it
// (compaction, GET, LOOKUP).
type MixedPoint struct {
	Ops             int
	MeanOpMicros    float64
	CumCompactionIO int64 // Fig 13a/14a/15a
	CumGetIO        int64 // Fig 13b/14b/15b
	CumLookupIO     int64 // Fig 13c/14c/15c
	CumWriteIO      int64
}

// MixedResult is one curve of a Mixed-workload figure.
type MixedResult struct {
	Kind   core.IndexKind
	Points []MixedPoint
}

// MixedWorkload runs Figures 12–15 for one ratio set (write/read/update
// heavy). Only UserID is indexed and queried, as in the paper (§5.2.2).
// Eager is excluded, matching the paper ("we did not consider Eager Index
// as it is shown to be unusable").
func MixedWorkload(c Config, name string, ratios workload.MixRatios, checkpoints int) ([]MixedResult, error) {
	c = c.withDefaults()
	if checkpoints <= 0 {
		checkpoints = 10
	}
	nOps := c.Scale
	c.printf("Figures 12-15 — Mixed %s workload (%d ops; PUT=%.0f%% GET=%.0f%% LOOKUP=%.0f%% updateFrac=%.0f%%)\n",
		name, nOps, ratios.Put*100, ratios.Get*100, ratios.Lookup*100, ratios.UpdateFrac*100)
	c.printf("%-10s %10s %12s %12s %12s %12s\n", "index", "ops", "mean(us)", "compIO", "getIO", "lookupIO")

	var out []MixedResult
	for _, kind := range VariantsNoEager {
		db, err := c.open(c.Dir+"/mixed-"+name+"-"+kind.String(), mixedOptions(kind))
		if err != nil {
			return nil, err
		}
		m := workload.NewMixed(workload.Config{Seed: c.Seed, Tweets: nOps}, ratios, nOps, 10)
		res := MixedResult{Kind: kind}
		var totalTime time.Duration
		done := 0
		checkEvery := nOps / checkpoints

		// Track I/O per op class by snapshotting around each op.
		var compIO, getIO, lookupIO, writeIO int64
		for {
			op, ok := m.Next()
			if !ok {
				break
			}
			s0 := db.Stats()
			d, err := runOp(db, op)
			if err != nil {
				_ = db.Close()
				return nil, err
			}
			s1 := db.Stats()
			totalTime += d
			done++
			fg := (s1.Primary.BlockReads - s0.Primary.BlockReads) +
				(s1.Index.BlockReads - s0.Index.BlockReads) +
				(s1.Primary.BlockWrites - s0.Primary.BlockWrites) +
				(s1.Index.BlockWrites - s0.Index.BlockWrites)
			comp := (s1.Primary.CompactionIO() - s0.Primary.CompactionIO()) +
				(s1.Index.CompactionIO() - s0.Index.CompactionIO())
			compIO += comp
			switch op.Kind {
			case workload.OpGet:
				getIO += fg
			case workload.OpLookup, workload.OpRangeLookup:
				lookupIO += fg
			default:
				writeIO += fg
			}
			if done%checkEvery == 0 {
				res.Points = append(res.Points, MixedPoint{
					Ops:             done,
					MeanOpMicros:    float64(totalTime.Microseconds()) / float64(done),
					CumCompactionIO: compIO,
					CumGetIO:        getIO,
					CumLookupIO:     lookupIO,
					CumWriteIO:      writeIO,
				})
			}
		}
		out = append(out, res)
		if n := len(res.Points); n > 0 {
			p := res.Points[n-1]
			c.printf("%s %10d %12.1f %12d %12d %12d\n", kindLabel(kind),
				p.Ops, p.MeanOpMicros, p.CumCompactionIO, p.CumGetIO, p.CumLookupIO)
		}
		_ = db.Close()
	}
	c.printf("\n")
	return out, nil
}

// mixedOptions indexes only UserID (paper §5.2.2: "Only the UserID
// attribute is indexed and queried").
func mixedOptions(kind core.IndexKind) core.Options {
	o := dbOptions(kind)
	o.Attrs = []string{workload.AttrUser}
	return o
}

// Fig12WriteHeavy runs the write-heavy mix (80/15/5).
func Fig12WriteHeavy(c Config) ([]MixedResult, error) {
	return MixedWorkload(c, "write-heavy", workload.WriteHeavy, 10)
}

// Fig12ReadHeavy runs the read-heavy mix (20/70/10).
func Fig12ReadHeavy(c Config) ([]MixedResult, error) {
	return MixedWorkload(c, "read-heavy", workload.ReadHeavy, 10)
}

// Fig12UpdateHeavy runs the update-heavy mix (40/15/5 with 40% updates).
func Fig12UpdateHeavy(c Config) ([]MixedResult, error) {
	return MixedWorkload(c, "update-heavy", workload.UpdateHeavy, 10)
}
