// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendix C) on scaled-down datasets. Each
// Fig*/Table* function runs one experiment, prints the paper-style rows to
// the configured writer, and returns structured results that tests assert
// qualitative "shape" claims against (who wins, by roughly what factor,
// where crossovers fall).
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/workload"
)

// Config scopes one experiment run.
type Config struct {
	// Scale is the number of tweets ingested (the paper uses 80M; the
	// defaults here run in seconds while preserving multi-level trees).
	Scale int
	// Dir is the scratch directory for databases; empty = a temp dir.
	Dir string
	// Out receives the printed experiment rows; nil = io.Discard.
	Out io.Writer
	// Seed makes datasets reproducible.
	Seed int64
	// Queries is the number of query operations per measurement point.
	Queries int
	// Tracer, when non-nil, is injected into every database an experiment
	// opens, so one tracer accumulates the phase-time breakdown across all
	// variants of a run (cmd/lsmbench -trace).
	Tracer *metrics.Tracer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 20000
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.Dir == "" {
		c.Dir, _ = os.MkdirTemp("", "leveldbpp-exp-")
	}
	return c
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.Out, format, args...)
}

// Variants are the index techniques compared in most figures. Eager is
// included where the paper includes it and skipped where the paper
// declares it unusable (Figures 10, 12–15).
var Variants = []core.IndexKind{
	core.IndexNone, core.IndexEmbedded, core.IndexEager, core.IndexLazy, core.IndexComposite,
}

// VariantsNoEager mirrors the paper's exclusion of Eager from the
// long-running experiments ("unusable for high write amplification").
var VariantsNoEager = []core.IndexKind{
	core.IndexNone, core.IndexEmbedded, core.IndexLazy, core.IndexComposite,
}

// engine tuning shared by all experiments: scaled-down LevelDB constants
// so a 10^4–10^6-tweet dataset spans multiple levels the way 80M tweets
// span LevelDB's.
func dbOptions(kind core.IndexKind) core.Options {
	return core.Options{
		Index:               kind,
		Attrs:               []string{workload.AttrUser, workload.AttrTime},
		MemTableBytes:       256 << 10,
		BlockSize:           4 << 10,
		BitsPerKey:          10,
		BaseLevelBytes:      1 << 20,
		LevelMultiplier:     10,
		L0CompactionTrigger: 4,
		MaxLevels:           7,
	}
}

func (c Config) openDB(name string, kind core.IndexKind) (*core.DB, error) {
	return c.open(filepath.Join(c.Dir, name), dbOptions(kind))
}

// open is core.Open plus injection of the run-wide tracer; every
// experiment opens its databases through it.
func (c Config) open(dir string, opts core.Options) (*core.DB, error) {
	if opts.Tracer == nil {
		opts.Tracer = c.Tracer
	}
	return core.Open(dir, opts)
}

// PrintBreakdown renders the tracer's cumulative per-operation phase
// table to w and resets the aggregates, so successive calls cover
// successive experiments.
func PrintBreakdown(w io.Writer, t *metrics.Tracer) {
	bds := t.Breakdown()
	if len(bds) == 0 {
		return
	}
	fmt.Fprintf(w, "--- trace breakdown ---\n")
	for _, b := range bds {
		fmt.Fprintf(w, "%-12s count=%-8d total=%.1fms mean=%.1fµs\n",
			b.Op, b.Count, b.TotalUS/1e3, b.TotalUS/float64(b.Count))
		for _, p := range b.Phases {
			fmt.Fprintf(w, "  %-16s %10.1fµs  %5.1f%%\n", p.Phase, p.US, 100*p.US/b.TotalUS)
		}
	}
	t.ResetBreakdown()
}

// dataset generates the experiment's tweet set once per call (seeded, so
// every variant ingests identical data). The simulated tweet rate is
// reduced from the seed's 35/s to 2/s so that minute-granularity time
// selectivities (Figure 11) remain selective at reduced dataset scales.
func (c Config) dataset() []workload.Tweet {
	return workload.NewGenerator(workload.Config{
		Tweets:              c.Scale,
		Seed:                c.Seed,
		MeanTweetsPerSecond: 2,
	}).All()
}

// ingest loads tweets, observing per-PUT latency.
func ingest(db *core.DB, tweets []workload.Tweet, h *metrics.Histogram) error {
	for _, tw := range tweets {
		start := time.Now()
		if err := db.Put(tw.ID, tw.Doc()); err != nil {
			return err
		}
		if h != nil {
			h.Observe(float64(time.Since(start).Microseconds()))
		}
	}
	return db.Flush()
}

// runOp executes one workload op against db and returns its latency.
func runOp(db *core.DB, op workload.Op) (time.Duration, error) {
	start := time.Now()
	var err error
	switch op.Kind {
	case workload.OpPut, workload.OpUpdate:
		err = db.Put(op.Key, op.Value)
	case workload.OpGet:
		_, _, err = db.Get(op.Key)
	case workload.OpLookup:
		_, err = db.Lookup(op.Attr, op.Lo, op.K)
	case workload.OpRangeLookup:
		_, err = db.RangeLookup(op.Attr, op.Lo, op.Hi, op.K)
	}
	return time.Since(start), err
}

// kindLabel pads index names for aligned tables.
func kindLabel(k core.IndexKind) string { return fmt.Sprintf("%-9s", k.String()) }
