package experiments

import (
	"testing"

	"leveldbpp/internal/core"
	"leveldbpp/internal/postings"
)

func TestPostingsCost(t *testing.T) {
	c := testConfig(t)
	c.Scale = 2000
	c.Queries = 40
	rs, err := PostingsCost(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 { // {Eager,Lazy} × {v1,v2}
		t.Fatalf("rows = %d", len(rs))
	}
	byKey := map[string]PostingsResult{}
	for _, r := range rs {
		if r.IngestOpsPerSec <= 0 || r.MeanLookupMicro <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.EntriesPerLookup <= 0 || r.BytesPerLookup <= 0 {
			t.Fatalf("decode counters did not move: %+v", r)
		}
		byKey[r.Kind.String()+"/"+r.Format.String()] = r
	}
	for _, kind := range []core.IndexKind{core.IndexEager, core.IndexLazy} {
		v1 := byKey[kind.String()+"/"+postings.FormatV1.String()]
		v2 := byKey[kind.String()+"/"+postings.FormatV2.String()]
		// The v2 cursor stops decoding once the top-K heap fills; v1 JSON
		// materializes whole lists before the heap sees anything.
		if v2.EntriesPerLookup > v1.EntriesPerLookup {
			t.Errorf("%s: v2 decoded more entries per LOOKUP (%.1f) than v1 (%.1f)",
				kind, v2.EntriesPerLookup, v1.EntriesPerLookup)
		}
		if v2.IndexDiskBytes > v1.IndexDiskBytes {
			t.Errorf("%s: v2 index larger on disk (%d) than v1 (%d)",
				kind, v2.IndexDiskBytes, v1.IndexDiskBytes)
		}
	}
	h, rows := PostingsCSV(rs)
	if len(h) != 8 || len(rows) != len(rs) {
		t.Fatalf("CSV shape %d×%d", len(h), len(rows))
	}
}
