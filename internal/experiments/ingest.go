package experiments

import (
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"leveldbpp/internal/core"
	"leveldbpp/internal/lsm"
	"leveldbpp/internal/wal"
)

// IngestResult is one row of the group-commit ingest experiment: the
// same durable multi-writer ingest with the commit queue off (every
// writer pays its own fsync) versus on (the group leader's fsync covers
// the whole group).
type IngestResult struct {
	Kind        core.IndexKind
	Writers     int
	Group       bool // group commit enabled
	OpsPerSec   float64
	FsyncsPerOp float64 // primary-table fsyncs per commit
	MeanGroup   float64 // mean commits per WAL write pass
}

// IngestThroughput measures what group commit buys a durable ingest
// (SyncGrouped: every acknowledged PUT is fsync-covered). With one
// writer the queue never holds more than one commit and the two modes
// coincide; with concurrent writers the inline path serialises one fsync
// per PUT while the group path amortises it across the whole queue. The
// None and Embedded kinds keep the writers on the engine's commit queue
// (stand-alone index kinds serialise writers above the engine to keep
// index maintenance in sequence order, so grouping cannot form there).
func IngestThroughput(c Config) ([]IngestResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("Group commit — %d tweets, durable ingest (SyncGrouped), inline vs grouped WAL sync\n", len(tweets))
	c.printf("%-10s %8s %7s %10s %10s %10s\n",
		"index", "writers", "group", "ops/sec", "fsyncs/op", "mean-group")

	var out []IngestResult
	for _, kind := range []core.IndexKind{core.IndexNone, core.IndexEmbedded} {
		for _, writers := range []int{1, 8} {
			for _, group := range []bool{false, true} {
				opts := dbOptions(kind)
				opts.BackgroundCompaction = true
				opts.SyncMode = wal.SyncGrouped
				if group {
					opts.GroupCommit = lsm.GroupCommitOptions{Enabled: true}
				}
				name := fmt.Sprintf("ingest-%s-w%d-%t", kind, writers, group)
				db, err := c.open(filepath.Join(c.Dir, name), opts)
				if err != nil {
					return nil, err
				}

				// Partition tweets modulo writer count: same total work at
				// every width, unique keys per writer.
				start := time.Now()
				var wg sync.WaitGroup
				errs := make([]error, writers)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := w; i < len(tweets); i += writers {
							if err := db.Put(tweets[i].ID, tweets[i].Doc()); err != nil {
								errs[w] = err
								return
							}
						}
					}(w)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						_ = db.Close()
						return nil, err
					}
				}
				if err := db.Flush(); err != nil {
					_ = db.Close()
					return nil, err
				}
				elapsed := time.Since(start)
				prim, _ := db.CommitStats()
				r := IngestResult{
					Kind:        kind,
					Writers:     writers,
					Group:       group,
					OpsPerSec:   float64(len(tweets)) / elapsed.Seconds(),
					FsyncsPerOp: prim.FsyncsPerCommit(),
					MeanGroup:   prim.MeanGroupSize(),
				}
				out = append(out, r)
				c.printf("%s %8d %7t %10.0f %10.3f %10.2f\n",
					kindLabel(r.Kind), r.Writers, r.Group, r.OpsPerSec, r.FsyncsPerOp, r.MeanGroup)
				if err := db.Close(); err != nil {
					return nil, err
				}
			}
		}
	}
	c.printf("\n")
	return out, nil
}

// IngestCSV renders IngestThroughput rows for WriteCSV.
func IngestCSV(rs []IngestResult) ([]string, [][]string) {
	header := []string{"index", "writers", "group", "ops_per_sec", "fsyncs_per_op", "mean_group"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{
			r.Kind.String(),
			strconv.Itoa(r.Writers),
			strconv.FormatBool(r.Group),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.3f", r.FsyncsPerOp),
			fmt.Sprintf("%.2f", r.MeanGroup),
		})
	}
	return header, rows
}
