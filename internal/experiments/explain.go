package experiments

import (
	"fmt"

	"leveldbpp/internal/core"
	"leveldbpp/internal/workload"
)

// ExplainResult aggregates one (index kind, op) cell of the cost-model
// validation: total observed logical block accesses across the queries
// against the total the Table 3/5 formulas predicted with live Params.
type ExplainResult struct {
	Kind        core.IndexKind
	Op          string
	Queries     int
	MeanResults float64 // mean K' per query
	ObservedIO  int64   // sum of per-query observed block accesses
	PredictedIO float64 // sum of per-query model predictions
	Ratio       float64 // ObservedIO / PredictedIO
}

// ExplainValidation (DESIGN.md §5.7) runs top-10 LOOKUPs and user-range
// RANGELOOKUPs through the EXPLAIN path on every index kind and reports
// the aggregate observed/predicted I/O ratio — the live check that the
// paper's worst-case formulas bound reality within a small constant. The
// acceptance band for LOOKUP on the four indexed kinds is [0.5, 2.0].
func ExplainValidation(c Config) ([]ExplainResult, error) {
	c = c.withDefaults()
	tweets := c.dataset()
	c.printf("EXPLAIN cost-model validation — %d tweets, %d queries per cell\n",
		len(tweets), c.Queries)
	c.printf("%-10s %-12s %8s %10s %12s %12s %8s\n",
		"index", "op", "queries", "mean K'", "observed", "predicted", "ratio")

	var out []ExplainResult
	for _, kind := range Variants {
		db, err := c.openDB("explain-"+kind.String(), kind)
		if err != nil {
			return nil, err
		}
		if err := func() error {
			if err := ingest(db, tweets, nil); err != nil {
				return err
			}
			if err := db.Flush(); err != nil {
				return err
			}
			queries := c.Queries
			if kind == core.IndexNone && queries > 10 {
				queries = 10 // every NoIndex query is a full scan
			}
			q := workload.NewStaticQueries(tweets, c.Seed)
			cells := []struct {
				op   string
				next func() workload.Op
			}{
				{"LOOKUP", func() workload.Op { return q.Lookup(workload.AttrUser, 10) }},
				{"RANGELOOKUP", func() workload.Op { return q.RangeLookupUsers(10, 10) }},
			}
			for _, cell := range cells {
				r := ExplainResult{Kind: kind, Op: cell.op, Queries: queries}
				var results int
				for i := 0; i < queries; i++ {
					op := cell.next()
					var obs int64
					var pred float64
					var n int
					if op.Kind == workload.OpLookup {
						entries, rp, err := db.ExplainLookup(op.Attr, op.Lo, op.K)
						if err != nil {
							return err
						}
						obs, pred, n = rp.ObservedIO, rp.PredictedIO, len(entries)
					} else {
						entries, rp, err := db.ExplainRangeLookup(op.Attr, op.Lo, op.Hi, op.K)
						if err != nil {
							return err
						}
						obs, pred, n = rp.ObservedIO, rp.PredictedIO, len(entries)
					}
					r.ObservedIO += obs
					r.PredictedIO += pred
					results += n
				}
				r.MeanResults = float64(results) / float64(queries)
				if r.PredictedIO > 0 {
					r.Ratio = float64(r.ObservedIO) / r.PredictedIO
				}
				out = append(out, r)
				c.printf("%s %-12s %8d %10.1f %12d %12.1f %8.2f\n",
					kindLabel(r.Kind), r.Op, r.Queries, r.MeanResults,
					r.ObservedIO, r.PredictedIO, r.Ratio)
			}
			return nil
		}(); err != nil {
			_ = db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExplainCSV renders ExplainValidation results for csvOut.
func ExplainCSV(rs []ExplainResult) ([]string, [][]string) {
	header := []string{"index", "op", "queries", "mean_results",
		"observed_io", "predicted_io", "ratio"}
	var rows [][]string
	for _, r := range rs {
		rows = append(rows, []string{
			r.Kind.String(), r.Op,
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%.1f", r.MeanResults),
			fmt.Sprintf("%d", r.ObservedIO),
			fmt.Sprintf("%.1f", r.PredictedIO),
			fmt.Sprintf("%.3f", r.Ratio),
		})
	}
	return header, rows
}
