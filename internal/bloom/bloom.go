// Package bloom implements the Bloom filter used throughout LevelDB++ for
// primary-key filtering and for the Embedded secondary index (paper
// Appendix A.3).
//
// The filter follows the classic double-hashing construction used by
// LevelDB: a single 64-bit base hash is split and advanced by a delta for
// each of the k probes, which is statistically close to k independent hash
// functions (Kirsch & Mitzenmacher).
//
// Given bitsPerKey m/|S|, the optimal number of probes is
// k = (m/|S|)·ln2 and the minimal false-positive rate is 2^(−(m/|S|)·ln2)
// (paper Equation 1).
package bloom

import (
	"encoding/binary"
	"math"
)

// Filter is an immutable encoded Bloom filter. The final byte stores the
// number of probe functions k, the rest is the bit array. An empty Filter
// matches nothing.
type Filter []byte

// maxProbes caps k; beyond 30 probes the CPU cost dominates with no
// meaningful FP-rate gain.
const maxProbes = 30

// NumProbes returns the optimal probe count for the given bits-per-key
// budget: k = b·ln2, clamped to [1, 30].
func NumProbes(bitsPerKey int) int {
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > maxProbes {
		k = maxProbes
	}
	return k
}

// FalsePositiveRate returns the expected false-positive probability of a
// filter built with bitsPerKey bits per key and the optimal probe count
// (paper Equation 1 at the optimum: 2^(−bitsPerKey·ln2)).
func FalsePositiveRate(bitsPerKey int) float64 {
	return math.Pow(2, -float64(bitsPerKey)*math.Ln2)
}

// Build constructs a Filter over the given keys with the requested
// bits-per-key budget. Duplicate keys are harmless. A nil or empty key set
// yields a minimal filter that still answers MayContain correctly (false
// for everything is not guaranteed by Bloom semantics, but an empty set
// yields an all-zero bit array, so MayContain is false for all keys).
func Build(keys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := NumProbes(bitsPerKey)

	bits := len(keys) * bitsPerKey
	// Small filters see high FP rates from rounding; LevelDB enforces a
	// 64-bit floor.
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8

	f := make(Filter, nBytes+1)
	f[nBytes] = byte(k)
	for _, key := range keys {
		h := Hash(key)
		delta := h>>33 | h<<31
		for i := 0; i < k; i++ {
			pos := h % uint64(bits)
			f[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// MayContain reports whether key may be in the set the filter was built
// from. False means definitely absent; true may be a false positive.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	bits := uint64((len(f) - 1) * 8)
	k := int(f[len(f)-1])
	if k > maxProbes {
		// Reserved for future encodings; treat as always-match so newer
		// files degrade to scans instead of missing data.
		return true
	}
	h := Hash(key)
	delta := h>>33 | h<<31
	for i := 0; i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// ApproximateSizeBytes returns the encoded size of the filter.
func (f Filter) ApproximateSizeBytes() int { return len(f) }

// Hash is a 64-bit FNV-1a-style hash with extra avalanche mixing, shared by
// the filter builder and prober. It is exported so table readers can reuse
// it for hash-sharded structures.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for len(key) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(key)) * prime64
		key = key[8:]
	}
	for _, b := range key {
		h = (h ^ uint64(b)) * prime64
	}
	// fmix64 finalizer from MurmurHash3 for avalanche.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
