package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%09d", i)) }

func TestEmptyFilter(t *testing.T) {
	f := Build(nil, 10)
	if f.MayContain([]byte("anything")) {
		t.Fatal("empty filter must not match")
	}
	var zero Filter
	if zero.MayContain([]byte("x")) {
		t.Fatal("zero-value filter must not match")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000, 10000} {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = key(i)
		}
		f := Build(keys, 10)
		for i, k := range keys {
			if !f.MayContain(k) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	const n = 10000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	for _, bpk := range []int{8, 10, 14, 20} {
		f := Build(keys, bpk)
		fp := 0
		const probes = 20000
		for i := 0; i < probes; i++ {
			if f.MayContain(key(n + i)) {
				fp++
			}
		}
		got := float64(fp) / probes
		want := FalsePositiveRate(bpk)
		// Allow generous slack: 3x theoretical plus small absolute floor.
		if got > want*3+0.002 {
			t.Errorf("bitsPerKey=%d: measured FP rate %.5f far above theory %.5f", bpk, got, want)
		}
	}
}

func TestHigherBitsLowerFP(t *testing.T) {
	const n = 5000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	rate := func(bpk int) float64 {
		f := Build(keys, bpk)
		fp := 0
		for i := 0; i < 10000; i++ {
			if f.MayContain(key(n + i)) {
				fp++
			}
		}
		return float64(fp) / 10000
	}
	if r8, r20 := rate(8), rate(20); r20 > r8 {
		t.Errorf("FP rate should drop with more bits: 8bpk=%.5f 20bpk=%.5f", r8, r20)
	}
}

func TestNumProbes(t *testing.T) {
	cases := []struct{ bpk, want int }{
		{1, 1}, {2, 1}, {10, 6}, {20, 13}, {100, 30}, {0, 1},
	}
	for _, c := range cases {
		if got := NumProbes(c.bpk); got != c.want {
			t.Errorf("NumProbes(%d) = %d, want %d", c.bpk, got, c.want)
		}
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	// 2^(-b ln 2): b=10 → ~0.00819
	if got := FalsePositiveRate(10); math.Abs(got-0.00819) > 0.0005 {
		t.Errorf("FalsePositiveRate(10) = %f", got)
	}
	if FalsePositiveRate(20) >= FalsePositiveRate(10) {
		t.Error("FP rate must decrease with bits per key")
	}
}

func TestDuplicateKeys(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("a"), []byte("a")}
	f := Build(keys, 10)
	if !f.MayContain([]byte("a")) {
		t.Fatal("duplicate keys broke filter")
	}
}

func TestBinaryKeys(t *testing.T) {
	keys := [][]byte{{0, 0, 0}, {0xff, 0xfe}, {}, {0x00}}
	f := Build(keys, 10)
	for i, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("binary key %d missing", i)
		}
	}
}

func TestQuickNoFalseNegative(t *testing.T) {
	prop := func(keys [][]byte, probe []byte) bool {
		f := Build(keys, 10)
		for _, k := range keys {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		h := Hash(key(i))
		if seen[h] {
			t.Fatalf("hash collision at %d (extremely unlikely; hash is broken)", i)
		}
		seen[h] = true
	}
}

func BenchmarkBuild10bpk(b *testing.B) {
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(keys, 10)
	}
}

func BenchmarkMayContain(b *testing.B) {
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = key(i)
	}
	f := Build(keys, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}
