package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestConcurrentModeEquivalence runs the same randomized workload through
// an inline-sequential DB and a background+parallel DB for every index
// kind, comparing every LOOKUP and RANGELOOKUP answer. The concurrency
// options must change scheduling only, never results (the determinism
// contract the paper experiments depend on).
func TestConcurrentModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence soak skipped in -short mode")
	}
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			inlineOpts := smallOptions(kind)
			bgOpts := smallOptions(kind)
			bgOpts.BackgroundCompaction = true
			bgOpts.LookupParallelism = 4

			inline, err := Open(t.TempDir(), inlineOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer inline.Close()
			bg, err := Open(t.TempDir(), bgOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer bg.Close()

			rng := rand.New(rand.NewSource(4242))
			const users = 20
			nextKey := 0
			apply := func(op func(db *DB) error) {
				if err := op(inline); err != nil {
					t.Fatal(err)
				}
				if err := op(bg); err != nil {
					t.Fatal(err)
				}
			}
			check := func(tag string) {
				for i := 0; i < 8; i++ {
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					for _, k := range []int{1, 5, 0} {
						a, err1 := inline.Lookup("UserID", user, k)
						b, err2 := bg.Lookup("UserID", user, k)
						if err1 != nil || err2 != nil {
							t.Fatalf("%s lookup: %v %v", tag, err1, err2)
						}
						if !sameKeys(keysOf(a), keysOf(b)) {
							t.Fatalf("%s user=%s k=%d diverged:\ninline %v\nbg     %v",
								tag, user, k, keysOf(a), keysOf(b))
						}
					}
					lo := fmt.Sprintf("u%03d", rng.Intn(users))
					hi := fmt.Sprintf("u%03d", rng.Intn(users))
					if lo > hi {
						lo, hi = hi, lo
					}
					a, err1 := inline.RangeLookup("UserID", lo, hi, 10)
					b, err2 := bg.RangeLookup("UserID", lo, hi, 10)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s range: %v %v", tag, err1, err2)
					}
					if !sameKeys(keysOf(a), keysOf(b)) {
						t.Fatalf("%s range [%s,%s] diverged:\ninline %v\nbg     %v",
							tag, lo, hi, keysOf(a), keysOf(b))
					}
				}
			}

			for round := 0; round < 3; round++ {
				for i := 0; i < 900; i++ {
					switch rng.Intn(10) {
					case 0: // delete
						if nextKey > 0 {
							key := fmt.Sprintf("t%06d", rng.Intn(nextKey))
							apply(func(db *DB) error { return db.Delete(key) })
						}
					case 1: // update existing
						if nextKey > 0 {
							key := fmt.Sprintf("t%06d", rng.Intn(nextKey))
							user := fmt.Sprintf("u%03d", rng.Intn(users))
							doc := tweetDoc(user, nextKey, "equiv update")
							apply(func(db *DB) error { return db.Put(key, doc) })
						}
					default: // fresh put
						key := fmt.Sprintf("t%06d", nextKey)
						user := fmt.Sprintf("u%03d", rng.Intn(users))
						doc := tweetDoc(user, nextKey, "equiv put with filler body text")
						apply(func(db *DB) error { return db.Put(key, doc) })
						nextKey++
					}
				}
				// Mid-pipeline check: the bg DB may hold a frozen MemTable
				// and a compaction in flight right now.
				check(fmt.Sprintf("round %d live", round))
				apply(func(db *DB) error { return db.Flush() })
				check(fmt.Sprintf("round %d flushed", round))
			}

			for _, db := range []*DB{inline, bg} {
				reports, err := db.Verify()
				if err != nil {
					t.Fatal(err)
				}
				for name, rep := range reports {
					if !rep.OK() {
						t.Fatalf("audit %s: %v", name, rep.Problems)
					}
				}
			}
		})
	}
}
