package core

import (
	"fmt"
	"testing"

	"leveldbpp/internal/postings"
)

// benchPostingsOptions sizes the engine so the benchmarks measure the
// posting-list codec, not flush/compaction churn: a large MemTable keeps
// the hot lists memory-resident across iterations.
func benchPostingsOptions(kind IndexKind, f postings.Format) Options {
	opts := smallOptions(kind)
	opts.MemTableBytes = 16 << 20
	opts.PostingsFormat = f
	return opts
}

// BenchmarkEagerPut measures the Eager read-modify-write at a fixed
// posting-list size: the benchmark key overwrites itself, so AppendAdd
// drops the superseded entry and the list holds steady at size entries.
func BenchmarkEagerPut(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		for _, f := range []postings.Format{postings.FormatV1, postings.FormatV2} {
			b.Run(fmt.Sprintf("entries=%d/%s", size, f), func(b *testing.B) {
				db, err := Open(b.TempDir(), benchPostingsOptions(IndexEager, f))
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				doc := tweetDoc("u-bench", 1, "eager put benchmark tweet")
				for i := 0; i < size-1; i++ {
					if err := db.Put(fmt.Sprintf("t%07d", i), doc); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := db.Put("t-bench", doc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLazyLookup measures LOOKUP top-10 against a single user whose
// merged fragment holds size entries: v1 JSON-decodes the whole list per
// query, v2 streams and stops decoding once the top-K heap fills.
func BenchmarkLazyLookup(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		for _, f := range []postings.Format{postings.FormatV1, postings.FormatV2} {
			b.Run(fmt.Sprintf("entries=%d/%s", size, f), func(b *testing.B) {
				db, err := Open(b.TempDir(), benchPostingsOptions(IndexLazy, f))
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				for i := 0; i < size; i++ {
					doc := tweetDoc("u-bench", 1000+i, "lazy lookup benchmark tweet")
					if err := db.Put(fmt.Sprintf("t%07d", i), doc); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := db.Lookup("UserID", "u-bench", 10)
					if err != nil {
						b.Fatal(err)
					}
					if want := min(10, size); len(res) != want {
						b.Fatalf("got %d results, want %d", len(res), want)
					}
				}
			})
		}
	}
}
