package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestDocumentsWithoutIndexedAttr(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			// Some docs lack UserID entirely; they are stored but never
			// indexed under it.
			db.Put("t1", []byte(`{"UserID":"u1","CreationTime":"0000000001"}`))
			db.Put("t2", []byte(`{"CreationTime":"0000000002"}`))
			db.Put("t3", []byte(`{"UserID":"u1","CreationTime":"0000000003"}`))
			if _, ok, _ := db.Get("t2"); !ok {
				t.Fatal("doc without attr not stored")
			}
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t3", "t1"}) {
				t.Fatalf("lookup = %v", keysOf(got))
			}
			// Its other attribute still works.
			got, err = db.RangeLookup("CreationTime", "0000000002", "0000000002", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t2"}) {
				t.Fatalf("time range = %v, %v", keysOf(got), err)
			}
		})
	}
}

func TestNonStringAttrValuesSkipped(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", []byte(`{"UserID":42,"CreationTime":"0000000001"}`))    // number
			db.Put("t2", []byte(`{"UserID":["a"],"CreationTime":"0000000002"}`)) // array
			db.Put("t3", []byte(`{"UserID":"u1","CreationTime":"0000000003"}`))
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t3"}) {
				t.Fatalf("lookup = %v, %v", keysOf(got), err)
			}
			if got, _ := db.Lookup("UserID", "42", 0); len(got) != 0 {
				t.Fatal("numeric attr wrongly indexed as string")
			}
		})
	}
}

func TestMalformedJSONStoredButUnindexed(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			if err := db.Put("bad", []byte(`{not json`)); err != nil {
				t.Fatalf("malformed JSON rejected at Put: %v", err)
			}
			v, ok, err := db.Get("bad")
			if err != nil || !ok || string(v) != `{not json` {
				t.Fatal("malformed doc not retrievable verbatim")
			}
			db.Put("good", tweetDoc("u1", 1, "x"))
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"good"}) {
				t.Fatalf("lookup = %v, %v", keysOf(got), err)
			}
			// Deleting the malformed doc must not error either.
			if err := db.Delete("bad"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAttrValueWithNULUnindexed(t *testing.T) {
	db := openKind(t, IndexComposite)
	doc := []byte("{\"UserID\":\"u\\u0000evil\",\"CreationTime\":\"0000000001\"}")
	if err := db.Put("t1", doc); err != nil {
		t.Fatal(err)
	}
	// The NUL-bearing value is unindexable (would corrupt composite-key
	// framing) but the record itself is intact.
	if _, ok, _ := db.Get("t1"); !ok {
		t.Fatal("record lost")
	}
	if got, err := db.Lookup("UserID", "u\x00evil", 0); err != nil || len(got) != 0 {
		t.Fatalf("NUL value indexed: %v %v", keysOf(got), err)
	}
}

func TestLargeDocuments(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			// 64 KiB documents — far beyond the 1 KiB block size.
			big := strings.Repeat("x", 64<<10)
			for i := 0; i < 10; i++ {
				doc := []byte(fmt.Sprintf(`{"UserID":"u1","CreationTime":"%010d","Text":%q}`, i, big))
				if err := db.Put(fmt.Sprintf("t%d", i), doc); err != nil {
					t.Fatal(err)
				}
			}
			db.Flush()
			v, ok, err := db.Get("t5")
			if err != nil || !ok || !bytes.Contains(v, []byte("xxxx")) || len(v) < 64<<10 {
				t.Fatalf("large doc mangled: len=%d ok=%v err=%v", len(v), ok, err)
			}
			got, err := db.Lookup("UserID", "u1", 3)
			if err != nil || !sameKeys(keysOf(got), []string{"t9", "t8", "t7"}) {
				t.Fatalf("lookup over large docs = %v, %v", keysOf(got), err)
			}
		})
	}
}

func TestTopKLargerThanMatches(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", tweetDoc("u1", 1, "only"))
			got, err := db.Lookup("UserID", "u1", 100)
			if err != nil || !sameKeys(keysOf(got), []string{"t1"}) {
				t.Fatalf("k>matches: %v, %v", keysOf(got), err)
			}
		})
	}
}

func TestEmptyAttributeValue(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", []byte(`{"UserID":"","CreationTime":"0000000001"}`))
			db.Put("t2", tweetDoc("u1", 2, "x"))
			got, err := db.Lookup("UserID", "", 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t1"}) {
				t.Fatalf("empty-value lookup = %v", keysOf(got))
			}
		})
	}
}

func TestRepeatedOverwritesSameAttr(t *testing.T) {
	// Overwriting with the same attribute value must not duplicate
	// results and must report the newest document.
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			for i := 0; i < 30; i++ {
				db.Put("t1", tweetDoc("u1", i, fmt.Sprintf("rev-%d", i)))
			}
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].Key != "t1" {
				t.Fatalf("duplicates: %v", keysOf(got))
			}
			if !bytes.Contains(got[0].Value, []byte("rev-29")) {
				t.Fatalf("stale document returned: %s", got[0].Value)
			}
		})
	}
}

func TestCoreCompactRange(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			for i := 0; i < 1500; i++ {
				db.Put(fmt.Sprintf("t%05d", i), tweetDoc(fmt.Sprintf("u%02d", i%10), i, "to be compacted"))
			}
			if err := db.CompactRange("", ""); err != nil {
				t.Fatal(err)
			}
			got, err := db.Lookup("UserID", "u03", 5)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"t01493", "t01483", "t01473", "t01463", "t01453"}
			if !sameKeys(keysOf(got), want) {
				t.Fatalf("after compact: %v", keysOf(got))
			}
		})
	}
}

func TestAccessorsAndDebugString(t *testing.T) {
	db := openKind(t, IndexLazy)
	if db.Kind() != IndexLazy {
		t.Fatal("Kind mismatch")
	}
	for i := 0; i < 500; i++ {
		db.Put(fmt.Sprintf("t%04d", i), tweetDoc(fmt.Sprintf("u%d", i%5), i, "accessors"))
	}
	db.Flush()
	prim, idx, err := db.DiskUsage()
	if err != nil || prim <= 0 || idx <= 0 {
		t.Fatalf("DiskUsage = %d %d %v", prim, idx, err)
	}
	if db.FilterMemoryUsage() <= 0 {
		t.Fatal("FilterMemoryUsage zero after flush")
	}
	if db.LastSeq() == 0 {
		t.Fatal("LastSeq zero")
	}
	s := db.DebugString()
	if !strings.Contains(s, "primary:") || !strings.Contains(s, "index-UserID:") {
		t.Fatalf("DebugString = %q", s)
	}
}

func TestIndexKindStrings(t *testing.T) {
	want := map[IndexKind]string{
		IndexNone: "NoIndex", IndexEmbedded: "Embedded", IndexEager: "Eager",
		IndexLazy: "Lazy", IndexComposite: "Composite", IndexKind(99): "IndexKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q want %q", int(k), k.String(), s)
		}
	}
}

func TestTopKHeapDirect(t *testing.T) {
	h := newTopK(2)
	if h.MinSeq() != 0 || h.Len() != 0 {
		t.Fatal("empty heap state")
	}
	h.Add(Entry{Key: "a", Seq: 5})
	h.Add(Entry{Key: "b", Seq: 9})
	h.Add(Entry{Key: "c", Seq: 7}) // displaces seq 5
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	rs := h.Results()
	if rs[0].Key != "b" || rs[1].Key != "c" {
		t.Fatalf("Results = %v", rs)
	}
	if h.Worth(6) {
		t.Fatal("seq below min accepted as worth")
	}
	if !h.Worth(8) {
		t.Fatal("improving seq rejected")
	}
	// Unbounded heap keeps everything.
	u := newTopK(0)
	for i := 0; i < 100; i++ {
		u.Add(Entry{Seq: uint64(i)})
	}
	if u.Len() != 100 || u.Full() {
		t.Fatal("unbounded heap truncated")
	}
}

func TestNestedAttributePaths(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			opts := smallOptions(kind)
			opts.Attrs = []string{"user.id", "meta.geo.city"}
			db, err := Open(t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			db.Put("t1", []byte(`{"user":{"id":"alice","name":"A"},"meta":{"geo":{"city":"NYC"}}}`))
			db.Put("t2", []byte(`{"user":{"id":"bob"},"meta":{"geo":{"city":"NYC"}}}`))
			db.Put("t3", []byte(`{"user":{"id":"alice"},"meta":{"geo":{"city":"LA"}}}`))
			// A literal dotted field name takes precedence over traversal.
			db.Put("t4", []byte(`{"user.id":"carol"}`))

			got, err := db.Lookup("user.id", "alice", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t3", "t1"}) {
				t.Fatalf("nested lookup = %v, %v", keysOf(got), err)
			}
			got, err = db.Lookup("meta.geo.city", "NYC", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t2", "t1"}) {
				t.Fatalf("deep nested lookup = %v, %v", keysOf(got), err)
			}
			got, err = db.Lookup("user.id", "carol", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t4"}) {
				t.Fatalf("literal dotted field = %v, %v", keysOf(got), err)
			}
		})
	}
}
