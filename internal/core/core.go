// Package core implements LevelDB++: the five secondary indexing
// techniques of "A Comparative Study of Secondary Indexing Techniques in
// LSM-based NoSQL Databases" (SIGMOD 2018) on top of the internal/lsm
// engine.
//
// A DB stores JSON documents keyed by primary key and supports the
// paper's operation set (Table 1): GET, PUT, DEL on the primary key, plus
// LOOKUP(A, a, K) and RANGELOOKUP(A, a, b, K) on indexed secondary
// attributes, returning the K most recent matching records by insertion
// time. The index kind is chosen at open time:
//
//   - IndexNone      — no secondary structures; lookups scan everything.
//   - IndexEmbedded  — per-block bloom filters + zone maps inside the
//     primary table's SSTables (paper §3).
//   - IndexEager     — stand-alone LSM index table with read-modify-write
//     posting lists (paper §4.1.1).
//   - IndexLazy      — stand-alone LSM index table with append-only
//     posting fragments merged during compaction (paper §4.1.2).
//   - IndexComposite — stand-alone LSM index table keyed by
//     (secondary key ∥ primary key) (paper §4.2).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leveldbpp/internal/explain"
	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
	"leveldbpp/internal/sstable"
	"leveldbpp/internal/wal"
)

// IndexKind selects the secondary indexing technique.
type IndexKind int

// The five techniques compared by the paper, plus the no-index baseline.
const (
	IndexNone IndexKind = iota
	IndexEmbedded
	IndexEager
	IndexLazy
	IndexComposite
)

// String returns the paper's name for the technique.
func (k IndexKind) String() string {
	switch k {
	case IndexNone:
		return "NoIndex"
	case IndexEmbedded:
		return "Embedded"
	case IndexEager:
		return "Eager"
	case IndexLazy:
		return "Lazy"
	case IndexComposite:
		return "Composite"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Options configures a LevelDB++ database.
type Options struct {
	// Index selects the secondary indexing technique.
	Index IndexKind
	// Attrs lists the secondary attributes to index. Attribute values
	// must be top-level JSON string fields of the document; range
	// semantics follow byte-wise string order, so numeric attributes
	// should be zero-padded (see workload.EncodeTime).
	Attrs []string

	// Engine tuning (zero values take lsm defaults).
	MemTableBytes       int64
	BlockSize           int
	BitsPerKey          int
	SecondaryBitsPerKey int
	DisableCompression  bool
	L0CompactionTrigger int
	BaseLevelBytes      int64
	LevelMultiplier     int
	MaxLevels           int
	SyncWAL             bool
	// SyncMode selects WAL durability per commit (off / always /
	// grouped); when unset it resolves from SyncWAL. See
	// lsm.Options.SyncMode.
	SyncMode wal.SyncMode
	// GroupCommit enables the leader-based commit queue on the primary
	// table and every index table, so concurrent writers of any index
	// kind batch their WAL writes and share fsyncs (DESIGN.md §5.5).
	GroupCommit lsm.GroupCommitOptions
	// RestartInterval sets the SSTable restart-point spacing for both the
	// primary and index tables (see lsm.Options.RestartInterval): 0 is the
	// v2 default, negative writes legacy v1 linear-scan blocks.
	RestartInterval int
	// PostingsFormat selects the posting-list encoding written by the
	// Eager and Lazy index paths (DESIGN.md §5.6): unset/v2 is the binary
	// varint format, v1 the seed's JSON arrays. Reading is always
	// format-sniffing, so a database written under either setting opens
	// under the other without conversion.
	PostingsFormat postings.Format
	// BlockCacheBytes enables an LRU block cache on the primary and
	// index tables (0 = off, the paper's configuration).
	BlockCacheBytes int64
	// BackgroundCompaction moves flushes and compactions of the primary
	// table and every index table to background goroutines (see
	// lsm.Options.BackgroundCompaction). Off by default so the paper's
	// experiments stay deterministic.
	BackgroundCompaction bool
	// CompactionParallelism bounds the key-range sub-compaction worker
	// pool of the primary table and every index table (see
	// lsm.Options.CompactionParallelism). 0 or 1 keeps the serial merge
	// engine; results are byte-identical at every setting.
	CompactionParallelism int
	// LookupParallelism > 1 fans LOOKUP/RANGELOOKUP candidate work out
	// over that many goroutines: per-SSTable probing in the Embedded
	// index, and candidate validation in the Eager, Lazy and Composite
	// indexes. 0 or 1 keeps the paper's sequential algorithms; results
	// are identical either way.
	LookupParallelism int

	// DisableGetLite makes the Embedded index validate candidates with
	// full GETs instead of the metadata-only GetLite probe (ablation;
	// paper §3 credits GetLite with "significantly reduced disk I/O").
	DisableGetLite bool
	// DisableFileZoneMap makes the Embedded index skip the file-level
	// zone map check and consult only per-block structures (ablation).
	DisableFileZoneMap bool

	// TraceSampleRate samples that fraction (0..1] of operations for
	// per-phase tracing (DESIGN.md §5.3). 0 disables tracing; sampling is
	// period-based (one in round(1/rate) operations), so rate 1 traces
	// everything. Ignored when Tracer is set.
	TraceSampleRate float64
	// SlowTraceThreshold keeps only traces at least this long in the
	// recent-trace ring (the /trace/slow endpoint); 0 keeps every sampled
	// trace. Aggregate per-phase breakdowns always include every sample.
	SlowTraceThreshold time.Duration
	// Tracer, when set, replaces the DB-owned tracer — lsmbench shares one
	// tracer across DBs to print a single breakdown per experiment.
	Tracer *metrics.Tracer
	// Events, when set, receives every engine lifecycle event in addition
	// to the DB-owned in-memory EventLog (e.g. a metrics.JSONLSink).
	Events metrics.EventSink
	// EventBufferSize caps the in-memory event ring
	// (0 = metrics.DefaultEventRing).
	EventBufferSize int
}

// Entry is one LOOKUP/RANGELOOKUP result: the record's primary key, its
// current document, and the sequence number that ranked it.
type Entry struct {
	Key   string
	Value []byte
	Seq   uint64
}

// DB is a LevelDB++ database: a primary LSM table plus, for stand-alone
// kinds, one LSM index table per indexed attribute.
type DB struct {
	opts    Options
	primary *lsm.DB
	indexes map[string]*lsm.DB // stand-alone index tables by attribute

	// writeMu serializes Put/Delete so that primary-table and index-table
	// write orders agree — Composite entries rank candidates by
	// index-table sequence number, which must follow primary insertion
	// order (paper §4.2). Only taken for stand-alone index kinds
	// (indexes != nil): None and Embedded have no second table to keep
	// in step, so their concurrent writers flow straight into the
	// engine's commit queue and can actually form groups.
	writeMu sync.Mutex

	// pf is the resolved posting-list encoding for index writes.
	pf postings.Format
	// postBuf is the posting-list encode scratch shared by the Eager RMW
	// and Lazy fragment write paths; guarded by writeMu (always held on
	// those paths), and safe to reuse across engine Puts because the
	// engine copies values before retaining them.
	postBuf []byte // guarded by writeMu

	// Observability (DESIGN.md §5.3): per-operation phase tracing,
	// always-on per-op latency histograms, and the lifecycle event log
	// shared by the primary table and every index table.
	tracer *metrics.Tracer
	ops    *metrics.OpStats
	events *metrics.EventLog

	// profiler aggregates the live op mix, top-K/matched distributions,
	// attribute time correlation and model-drift ratios (DESIGN.md §5.7).
	profiler *explain.WorkloadProfiler
	// putCount drives the every-Nth sampling of PUT attribute values into
	// the profiler's time-correlation estimator.
	putCount atomic.Int64
}

// ErrUnknownAttr is returned by lookups on attributes that were not
// declared in Options.Attrs.
var ErrUnknownAttr = errors.New("core: attribute is not indexed")

// compositeSep separates secondary key from primary key in Composite
// index entries; attribute values must not contain it.
const compositeSep = byte(0)

// extractAttrs pulls the indexed attributes out of a JSON document.
// Attribute names may be dot paths into nested objects ("user.id"); the
// resolved value must be a JSON string, anything else is skipped.
func extractAttrs(value []byte, attrs []string) []sstable.AttrValue {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(value, &doc); err != nil {
		return nil
	}
	var out []sstable.AttrValue
	for _, a := range attrs {
		raw, ok := resolvePath(doc, a)
		if !ok {
			continue
		}
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			continue
		}
		if strings.IndexByte(s, compositeSep) >= 0 {
			continue // NUL would corrupt Composite key framing; unindexable
		}
		out = append(out, sstable.AttrValue{Attr: a, Value: s})
	}
	return out
}

// resolvePath walks a dot path through nested JSON objects. A field whose
// literal name contains a dot takes precedence over path traversal.
func resolvePath(doc map[string]json.RawMessage, path string) (json.RawMessage, bool) {
	if raw, ok := doc[path]; ok {
		return raw, true
	}
	head, rest, found := strings.Cut(path, ".")
	if !found {
		return nil, false
	}
	raw, ok := doc[head]
	if !ok {
		return nil, false
	}
	var sub map[string]json.RawMessage
	if err := json.Unmarshal(raw, &sub); err != nil {
		return nil, false
	}
	return resolvePath(sub, rest)
}

// attrValue extracts one attribute's string value from a document.
func attrValue(value []byte, attr string) (string, bool) {
	for _, av := range extractAttrs(value, []string{attr}) {
		return av.Value, true
	}
	return "", false
}

// Open creates or reopens a LevelDB++ database rooted at dir. The primary
// table lives in dir/primary; stand-alone index tables in
// dir/index-<attr>.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create dir: %w", err)
	}
	attrs := append([]string(nil), opts.Attrs...)

	tracer := opts.Tracer
	if tracer == nil {
		tracer = metrics.NewTracer(opts.TraceSampleRate, 0)
	}
	if opts.SlowTraceThreshold > 0 {
		tracer.SetSlowThreshold(opts.SlowTraceThreshold)
	}
	events := metrics.NewEventLog(opts.EventBufferSize)
	events.Attach(opts.Events)

	primaryOpts := &lsm.Options{
		Events:                events.Named("primary"),
		MemTableBytes:         opts.MemTableBytes,
		BlockSize:             opts.BlockSize,
		BitsPerKey:            opts.BitsPerKey,
		SecondaryBitsPerKey:   opts.SecondaryBitsPerKey,
		DisableCompression:    opts.DisableCompression,
		L0CompactionTrigger:   opts.L0CompactionTrigger,
		BaseLevelBytes:        opts.BaseLevelBytes,
		LevelMultiplier:       opts.LevelMultiplier,
		MaxLevels:             opts.MaxLevels,
		SyncWAL:               opts.SyncWAL,
		SyncMode:              opts.SyncMode,
		GroupCommit:           opts.GroupCommit,
		RestartInterval:       opts.RestartInterval,
		BlockCacheBytes:       opts.BlockCacheBytes,
		BackgroundCompaction:  opts.BackgroundCompaction,
		CompactionParallelism: opts.CompactionParallelism,
		Tracer:                tracer,
	}
	if opts.Index == IndexEmbedded {
		primaryOpts.SecondaryAttrs = attrs
		primaryOpts.Extract = func(key, value []byte) []sstable.AttrValue {
			return extractAttrs(value, attrs)
		}
	}
	primary, err := lsm.Open(filepath.Join(dir, "primary"), primaryOpts)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, primary: primary, pf: opts.PostingsFormat.OrDefault(),
		tracer: tracer, ops: metrics.NewOpStats(), events: events,
		profiler: explain.NewWorkloadProfiler(events)}

	switch opts.Index {
	case IndexEager, IndexLazy, IndexComposite:
		db.indexes = make(map[string]*lsm.DB, len(attrs))
		for _, attr := range attrs {
			idxOpts := &lsm.Options{
				Events:                events.Named("index-" + attr),
				MemTableBytes:         opts.MemTableBytes,
				BlockSize:             opts.BlockSize,
				BitsPerKey:            opts.BitsPerKey,
				DisableCompression:    opts.DisableCompression,
				L0CompactionTrigger:   opts.L0CompactionTrigger,
				BaseLevelBytes:        opts.BaseLevelBytes,
				LevelMultiplier:       opts.LevelMultiplier,
				MaxLevels:             opts.MaxLevels,
				SyncWAL:               opts.SyncWAL,
				SyncMode:              opts.SyncMode,
				GroupCommit:           opts.GroupCommit,
				RestartInterval:       opts.RestartInterval,
				BlockCacheBytes:       opts.BlockCacheBytes,
				BackgroundCompaction:  opts.BackgroundCompaction,
				CompactionParallelism: opts.CompactionParallelism,
				Tracer:                tracer,
			}
			if opts.Index == IndexLazy {
				// The mergers run inside the engine (write path and
				// compaction), so the index table's IOStats is created here
				// and injected into both the engine and the mergers.
				st := &metrics.IOStats{}
				idxOpts.Stats = st
				idxOpts.WriteMerge = newLazyWriteMerger(db.pf, st)
				idxOpts.Merge = &lazyCompactionMerger{f: db.pf, st: st}
			}
			idx, err := lsm.Open(filepath.Join(dir, "index-"+attr), idxOpts)
			if err != nil {
				_ = primary.Close()
				for _, other := range db.indexes {
					_ = other.Close()
				}
				return nil, err
			}
			db.indexes[attr] = idx
		}
	}
	return db, nil
}

// Kind returns the database's index kind.
func (db *DB) Kind() IndexKind { return db.opts.Index }

// Get retrieves the document stored under key (Table 1: GET).
func (db *DB) Get(key string) ([]byte, bool, error) {
	t0 := time.Now()
	tr := db.tracer.Start(metrics.OpGet)
	value, ok, err := db.primary.GetTraced([]byte(key), tr)
	var io metrics.Counters
	if tr != nil && err == nil {
		io = tr.Counters() // read before Finish returns tr to the pool
	}
	tr.Finish()
	db.ops.Observe(metrics.OpGet, time.Since(t0))
	db.profiler.RecordOp(metrics.OpGet)
	if io.PointGets > 0 && err == nil {
		db.recordModelRatio(metrics.OpGet, "", "", "", 1, io)
	}
	return value, ok, err
}

// Put writes (or overwrites) the document under key and maintains the
// secondary indexes per the configured technique (Table 1: PUT).
func (db *DB) Put(key string, value []byte) error {
	t0 := time.Now()
	tr := db.tracer.Start(metrics.OpPut)
	err := db.putTraced(key, value, tr)
	tr.Finish()
	db.ops.Observe(metrics.OpPut, time.Since(t0))
	db.profiler.RecordOp(metrics.OpPut)
	// Sample every 16th PUT's attribute values into the time-correlation
	// estimator — it needs consecutive-pair counts, not every write.
	if len(db.opts.Attrs) > 0 && db.putCount.Add(1)&15 == 0 {
		for _, av := range extractAttrs(value, db.opts.Attrs) {
			db.profiler.RecordAttrValue(av.Attr, av.Value)
		}
	}
	return err
}

func (db *DB) putTraced(key string, value []byte, tr *metrics.Trace) error {
	if db.indexes != nil {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}
	seq, err := db.primary.PutWithSeqTraced([]byte(key), value, tr)
	if err != nil {
		return err
	}
	tI := tr.Now()
	switch db.opts.Index {
	case IndexEager:
		err = db.eagerPut(key, value, seq)
	case IndexLazy:
		err = db.lazyPut(key, value, seq)
	case IndexComposite:
		err = db.compositePut(key, value, seq)
	default:
		return nil
	}
	tr.Since(metrics.PhaseIndexUpdate, tI)
	return err
}

// Delete removes the document under key (Table 1: DEL). For stand-alone
// indexes the old document is read first so its posting entries can be
// marked deleted.
func (db *DB) Delete(key string) error {
	t0 := time.Now()
	tr := db.tracer.Start(metrics.OpDelete)
	err := db.deleteTraced(key, tr)
	tr.Finish()
	db.ops.Observe(metrics.OpDelete, time.Since(t0))
	db.profiler.RecordOp(metrics.OpDelete)
	return err
}

func (db *DB) deleteTraced(key string, tr *metrics.Trace) error {
	if db.indexes != nil {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}
	var old []byte
	if db.indexes != nil {
		tI := tr.Now()
		v, ok, err := db.primary.Get([]byte(key))
		tr.Since(metrics.PhaseIndexUpdate, tI)
		if err != nil {
			return err
		}
		if !ok {
			// Nothing indexed for this key; the primary tombstone is all
			// that is needed.
			_, err := db.primary.DeleteWithSeqTraced([]byte(key), tr)
			return err
		}
		old = v
	}
	seq, err := db.primary.DeleteWithSeqTraced([]byte(key), tr)
	if err != nil {
		return err
	}
	tI := tr.Now()
	switch db.opts.Index {
	case IndexEager:
		err = db.eagerDelete(key, old, seq)
	case IndexLazy:
		err = db.lazyDelete(key, old, seq)
	case IndexComposite:
		err = db.compositeDelete(key, old)
	default:
		return nil
	}
	tr.Since(metrics.PhaseIndexUpdate, tI)
	return err
}

// Lookup returns the k most recent records whose attr equals value
// (Table 1: LOOKUP). k <= 0 means no limit.
func (db *DB) Lookup(attr, value string, k int) ([]Entry, error) {
	if !db.indexed(attr) {
		return nil, ErrUnknownAttr
	}
	t0 := time.Now()
	tr := db.tracer.Start(metrics.OpLookup)
	if tr != nil {
		tr.SetDetail(attr + "=" + value + " plan=" + db.planName(metrics.OpLookup))
	}
	out, err := db.lookupTraced(attr, value, k, tr)
	var io metrics.Counters
	if tr != nil && err == nil {
		io = tr.Counters() // read before Finish returns tr to the pool
	}
	tr.Finish()
	db.ops.Observe(metrics.OpLookup, time.Since(t0))
	db.profiler.RecordQuery(metrics.OpLookup, k, len(out))
	if io.BlockAccesses() > 0 && err == nil {
		db.recordModelRatio(metrics.OpLookup, attr, value, value, len(out), io)
	}
	return out, err
}

func (db *DB) lookupTraced(attr, value string, k int, tr *metrics.Trace) ([]Entry, error) {
	switch db.opts.Index {
	case IndexEmbedded:
		return db.embeddedLookup(attr, value, k, tr)
	case IndexEager:
		return db.eagerLookup(attr, value, k, tr)
	case IndexLazy:
		return db.lazyLookup(attr, value, k, tr)
	case IndexComposite:
		return db.compositeLookup(attr, value, k, tr)
	default:
		return db.scanLookup(attr, value, value, k, tr)
	}
}

// RangeLookup returns the k most recent records with lo <= val(attr) <= hi
// (Table 1: RANGELOOKUP). k <= 0 means no limit.
func (db *DB) RangeLookup(attr, lo, hi string, k int) ([]Entry, error) {
	if !db.indexed(attr) {
		return nil, ErrUnknownAttr
	}
	if hi < lo {
		return nil, nil
	}
	t0 := time.Now()
	tr := db.tracer.Start(metrics.OpRangeLookup)
	if tr != nil {
		tr.SetDetail(attr + "=[" + lo + "," + hi + "] plan=" + db.planName(metrics.OpRangeLookup))
	}
	out, err := db.rangeLookupTraced(attr, lo, hi, k, tr)
	var io metrics.Counters
	if tr != nil && err == nil {
		io = tr.Counters() // read before Finish returns tr to the pool
	}
	tr.Finish()
	db.ops.Observe(metrics.OpRangeLookup, time.Since(t0))
	db.profiler.RecordQuery(metrics.OpRangeLookup, k, len(out))
	if io.BlockAccesses() > 0 && err == nil {
		db.recordModelRatio(metrics.OpRangeLookup, attr, lo, hi, len(out), io)
	}
	return out, err
}

func (db *DB) rangeLookupTraced(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	switch db.opts.Index {
	case IndexEmbedded:
		return db.embeddedRangeLookup(attr, lo, hi, k, tr)
	case IndexEager:
		return db.eagerRangeLookup(attr, lo, hi, k, tr)
	case IndexLazy:
		return db.lazyRangeLookup(attr, lo, hi, k, tr)
	case IndexComposite:
		return db.compositeRangeLookup(attr, lo, hi, k, tr)
	default:
		return db.scanLookup(attr, lo, hi, k, tr)
	}
}

func (db *DB) indexed(attr string) bool {
	for _, a := range db.opts.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// Flush forces all MemTables (primary and index tables) to disk.
func (db *DB) Flush() error {
	if err := db.primary.Flush(); err != nil {
		return err
	}
	for _, idx := range db.indexes {
		if err := idx.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases all resources.
func (db *DB) Close() error {
	err := db.primary.Close()
	for _, idx := range db.indexes {
		if e := idx.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Stats aggregates I/O statistics for the primary table and (summed) for
// all index tables, matching the paper's per-table I/O attribution.
type Stats struct {
	Primary metrics.Snapshot
	Index   metrics.Snapshot
}

// Stats returns a snapshot of I/O counters.
func (db *DB) Stats() Stats {
	s := Stats{Primary: db.primary.Stats().Snapshot()}
	for _, idx := range db.indexes {
		is := idx.Stats().Snapshot()
		s.Index.BlockReads += is.BlockReads
		s.Index.BlockReadBytes += is.BlockReadBytes
		s.Index.BlockWrites += is.BlockWrites
		s.Index.BlockWriteBytes += is.BlockWriteBytes
		s.Index.CompactionReads += is.CompactionReads
		s.Index.CompactionReadBytes += is.CompactionReadBytes
		s.Index.CompactionWrites += is.CompactionWrites
		s.Index.CompactionWriteBytes += is.CompactionWriteBytes
		s.Index.CacheHits += is.CacheHits
		s.Index.CacheMisses += is.CacheMisses
		s.Index.PointGets += is.PointGets
		s.Index.EntriesDecoded += is.EntriesDecoded
		s.Index.BlockSeeks += is.BlockSeeks
		s.Index.PostingsBytesDecoded += is.PostingsBytesDecoded
		s.Index.PostingsEntriesDecoded += is.PostingsEntriesDecoded
		s.Index.FragmentsMerged += is.FragmentsMerged
	}
	return s
}

// CommitStats returns the commit-path counters of the primary table and
// (summed) of all index tables: commits, records, WAL write groups and
// fsyncs, from which fsyncs-per-op and mean group size derive.
func (db *DB) CommitStats() (primary, index lsm.CommitStats) {
	primary = db.primary.CommitStats()
	for _, idx := range db.indexes {
		is := idx.CommitStats()
		index.Commits += is.Commits
		index.Records += is.Records
		index.Groups += is.Groups
		index.Fsyncs += is.Fsyncs
	}
	return primary, index
}

// CompactionStats returns the sub-compaction counters of the primary
// table and (summed) of all index tables: partitions merged, workers busy
// now, and cumulative L0 write-stall time (DESIGN.md §5.9).
func (db *DB) CompactionStats() (primary, index lsm.CompactionStats) {
	primary = db.primary.CompactionStats()
	for _, idx := range db.indexes {
		is := idx.CompactionStats()
		index.Subcompactions += is.Subcompactions
		index.WorkersBusy += is.WorkersBusy
		index.StallSeconds += is.StallSeconds
	}
	return primary, index
}

// CompactAll drives a full manual compaction of the primary table and
// every index table through the sub-compaction engine — lsm.CompactRange
// over the unbounded range, surfacing any mid-merge failure (the event
// log carries the failing partition's key range).
func (db *DB) CompactAll() error {
	if err := db.primary.CompactRange(nil, nil); err != nil {
		return fmt.Errorf("core: compact primary: %w", err)
	}
	for attr, idx := range db.indexes {
		if err := idx.CompactRange(nil, nil); err != nil {
			return fmt.Errorf("core: compact index-%s: %w", attr, err)
		}
	}
	return nil
}

// GroupSizeHists returns the commits-per-WAL-write histogram of every
// table, keyed like LevelShapes ("primary", "index-<attr>").
func (db *DB) GroupSizeHists() map[string]*metrics.Histogram {
	out := map[string]*metrics.Histogram{"primary": db.primary.GroupSizeHist()}
	for attr, idx := range db.indexes {
		out["index-"+attr] = idx.GroupSizeHist()
	}
	return out
}

// BackgroundStats sums the background-pipeline counters of the primary
// table and every index table; all zeros unless
// Options.BackgroundCompaction is set.
func (db *DB) BackgroundStats() lsm.BackgroundStats {
	s := db.primary.BackgroundStats()
	for _, idx := range db.indexes {
		is := idx.BackgroundStats()
		s.Flushes += is.Flushes
		s.Compactions += is.Compactions
		s.Slowdowns += is.Slowdowns
		s.ThrottleWaits += is.ThrottleWaits
	}
	return s
}

// DiskUsage reports on-disk bytes of the primary table and of all index
// tables (Figure 8a).
func (db *DB) DiskUsage() (primary, index int64, err error) {
	primary, err = db.primary.DiskUsage()
	if err != nil {
		return 0, 0, err
	}
	for _, idx := range db.indexes {
		n, err := idx.DiskUsage()
		if err != nil {
			return 0, 0, err
		}
		index += n
	}
	return primary, index, nil
}

// FilterMemoryUsage reports memory-resident filter and zone-map bytes
// (Embedded index overhead accounting).
func (db *DB) FilterMemoryUsage() int {
	n := db.primary.FilterMemoryUsage()
	for _, idx := range db.indexes {
		n += idx.FilterMemoryUsage()
	}
	return n
}

// validate fetches the current record for primary key pk and reports
// whether its attr still lies in [lo, hi] — the staleness check every
// stand-alone lookup performs on each candidate (paper §4: "We make sure
// val(A_i) = a ... as there could be invalid keys ... caused by updates").
func (db *DB) validate(pk, attr, lo, hi string) ([]byte, bool, error) {
	return db.validateWith(pk, attr, lo, hi, nil)
}

func (db *DB) validateWith(pk, attr, lo, hi string, tr *metrics.Trace) ([]byte, bool, error) {
	value, ok, err := db.primary.GetTraced([]byte(pk), tr)
	if err != nil || !ok {
		return nil, false, err
	}
	v, ok := attrValue(value, attr)
	if !ok || v < lo || v > hi {
		return nil, false, nil
	}
	return value, true, nil
}

// validateTraced is validate with its whole cost (primary GET + attribute
// re-check) attributed to the validate phase; the nested GET contributes
// I/O counters only (IOOnly), so its internal probe phases cannot
// double-count inside the validate window. tr may be nil.
func (db *DB) validateTraced(pk, attr, lo, hi string, tr *metrics.Trace) ([]byte, bool, error) {
	t0 := tr.Now()
	tr.Count(metrics.CtrValidations, 1)
	tr.IOOnlyBegin()
	value, valid, err := db.validateWith(pk, attr, lo, hi, tr)
	tr.IOOnlyEnd()
	tr.Since(metrics.PhaseValidate, t0)
	return value, valid, err
}

// newLazyWriteMerger returns the WriteMerger that coalesces posting
// fragments inside the MemTable so each level holds at most one fragment
// per secondary key. The streaming merge reuses one scratch across calls
// (the engine serializes write-merges per table; the mutex makes the
// closure safe regardless), but the output is always freshly allocated:
// the group-commit leader retains merged values across the rest of its
// batch, so a reused buffer would corrupt earlier records.
func newLazyWriteMerger(f postings.Format, st *metrics.IOStats) lsm.WriteMerger {
	var mu sync.Mutex
	var sc postings.MergeScratch
	return func(existing, incoming []byte) []byte {
		mu.Lock()
		defer mu.Unlock()
		out, err := sc.Merge(nil, [][]byte{incoming, existing}, false, f)
		if err != nil {
			// Never drop data on decode problems; newest fragment wins.
			return incoming
		}
		st.PostingsBytesDecoded.Add(sc.BytesDecoded())
		st.PostingsEntriesDecoded.Add(sc.EntriesDecoded())
		st.FragmentsMerged.Add(sc.FragmentsMerged())
		return out
	}
}

// lazyCompactionMerger merges fragments scattered across levels during
// index-table compaction (paper §4.1.2: "During merge compaction, we
// merge these fragmented lists"). The output buffer is reused across
// calls under mu — the SSTable builder copies the value into its block
// before the next Merge can run.
type lazyCompactionMerger struct {
	f  postings.Format
	st *metrics.IOStats

	mu  sync.Mutex
	sc  postings.MergeScratch // guarded by mu
	buf []byte                // guarded by mu
}

func (m *lazyCompactionMerger) Merge(_ []byte, values [][]byte, bottom bool) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out, err := m.sc.Merge(m.buf[:0], values, bottom, m.f)
	if err != nil {
		return m.mergeSalvage(values, bottom)
	}
	m.buf = out
	m.st.PostingsBytesDecoded.Add(m.sc.BytesDecoded())
	m.st.PostingsEntriesDecoded.Add(m.sc.EntriesDecoded())
	m.st.FragmentsMerged.Add(m.sc.FragmentsMerged())
	if m.sc.EntriesEmitted() == 0 {
		return nil, false
	}
	return out, true
}

// ForkMerger implements lsm.MergerForker: each key-range sub-compaction
// worker gets a private MergeScratch and output buffer, while the shared
// IOStats keeps aggregating decode counters (its fields are atomic).
func (m *lazyCompactionMerger) ForkMerger() lsm.Merger {
	return &lazyCompactionMerger{f: m.f, st: m.st}
}

// mergeSalvage preserves the seed behaviour when a fragment is corrupt:
// skip the undecodable fragments and merge the rest, rather than failing
// the whole compaction.
func (m *lazyCompactionMerger) mergeSalvage(values [][]byte, bottom bool) ([]byte, bool) {
	frags := make([]postings.List, 0, len(values))
	for _, v := range values {
		l, err := postings.Decode(v)
		if err != nil {
			continue
		}
		frags = append(frags, l)
	}
	merged := postings.Merge(frags, bottom)
	if len(merged) == 0 {
		return nil, false
	}
	return postings.EncodeFormat(merged, m.f), true
}

// Verify audits the primary table and every index table: full checksum
// scan, ordering, and level-shape checks (see lsm.Verify). The returned
// map is keyed by table name ("primary" or "index-<attr>").
func (db *DB) Verify() (map[string]lsm.VerifyReport, error) {
	out := map[string]lsm.VerifyReport{}
	rep, err := db.primary.Verify()
	if err != nil {
		return nil, err
	}
	out["primary"] = rep
	for attr, idx := range db.indexes {
		rep, err := idx.Verify()
		if err != nil {
			return nil, err
		}
		out["index-"+attr] = rep
	}
	return out, nil
}

// DebugString renders the level shape of the primary table and each
// index table.
func (db *DB) DebugString() string {
	s := "primary:\n" + indent(db.primary.DebugString())
	for attr, idx := range db.indexes {
		s += "index-" + attr + ":\n" + indent(idx.DebugString())
	}
	return s
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

// LastSeq returns the primary table's most recent sequence number.
func (db *DB) LastSeq() uint64 { return db.primary.LastSeq() }

// Tracer returns the DB's operation tracer (never nil; disabled unless
// Options.TraceSampleRate or Options.Tracer was set).
func (db *DB) Tracer() *metrics.Tracer { return db.tracer }

// OpStats returns the always-on per-operation latency histograms.
func (db *DB) OpStats() *metrics.OpStats { return db.ops }

// EventLog returns the in-memory lifecycle event log shared by the
// primary table and every index table.
func (db *DB) EventLog() *metrics.EventLog { return db.events }

// Profiler returns the DB's live workload profiler (never nil).
func (db *DB) Profiler() *explain.WorkloadProfiler { return db.profiler }

// Health reports the first unhealthy condition across the primary table
// and every index table (lsm.ErrClosed, lsm.ErrStalled, or a sticky
// background-pipeline error), or nil when all tables serve normally.
func (db *DB) Health() error {
	if err := db.primary.Health(); err != nil {
		return err
	}
	for _, idx := range db.indexes {
		if err := idx.Health(); err != nil {
			return err
		}
	}
	return nil
}

// LevelShapes returns the per-level shape of every table, keyed by table
// name ("primary", "index-<attr>") — the tree gauges served at /metrics.
func (db *DB) LevelShapes() map[string][]lsm.LevelInfo {
	out := map[string][]lsm.LevelInfo{"primary": db.primary.LevelShape()}
	for attr, idx := range db.indexes {
		out["index-"+attr] = idx.LevelShape()
	}
	return out
}

// WriteAmplification reports measured write amplification. primary is
// the primary table's physical WAMF. index maps each stand-alone index
// attribute to the bytes written to its index table (flushes +
// compactions) per byte of user data ingested into the primary table —
// the quantity whose Eager-vs-Lazy ratio Table 5 models as
// PL_S·22(L−1) vs 22(L−1).
func (db *DB) WriteAmplification() (primary float64, index map[string]float64) {
	index = map[string]float64{}
	ps := db.primary.Stats().Snapshot()
	primaryIngest := float64(ps.BlockWriteBytes) // lower bound when 0 ingest info
	primary = db.primary.WriteAmplification()
	// Recover the true ingest denominator from the primary's WAMF.
	if primary > 0 {
		primaryIngest = float64(ps.BlockWriteBytes+ps.CompactionWriteBytes) / primary
	}
	for attr, idx := range db.indexes {
		is := idx.Stats().Snapshot()
		if primaryIngest > 0 {
			index[attr] = float64(is.BlockWriteBytes+is.CompactionWriteBytes) / primaryIngest
		}
	}
	return primary, index
}

// Checkpoint writes a consistent, openable copy of the whole database
// (primary table and all index tables) under destDir. Writers are
// blocked for the duration, so the copies are mutually consistent.
func (db *DB) Checkpoint(destDir string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.primary.Checkpoint(filepath.Join(destDir, "primary")); err != nil {
		return err
	}
	for attr, idx := range db.indexes {
		if err := idx.Checkpoint(filepath.Join(destDir, "index-"+attr)); err != nil {
			return err
		}
	}
	return nil
}

// CompactRange forces the user-key range [lo, hi] (empty strings =
// unbounded) of the primary table down to its resting level, and fully
// compacts every index table. Useful after bulk loads and deletes.
func (db *DB) CompactRange(lo, hi string) error {
	var loB, hiB []byte
	if lo != "" {
		loB = []byte(lo)
	}
	if hi != "" {
		hiB = []byte(hi)
	}
	if err := db.primary.CompactRange(loB, hiB); err != nil {
		return err
	}
	for _, idx := range db.indexes {
		if err := idx.CompactRange(nil, nil); err != nil {
			return err
		}
	}
	return nil
}
