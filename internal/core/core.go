// Package core implements LevelDB++: the five secondary indexing
// techniques of "A Comparative Study of Secondary Indexing Techniques in
// LSM-based NoSQL Databases" (SIGMOD 2018) on top of the internal/lsm
// engine.
//
// A DB stores JSON documents keyed by primary key and supports the
// paper's operation set (Table 1): GET, PUT, DEL on the primary key, plus
// LOOKUP(A, a, K) and RANGELOOKUP(A, a, b, K) on indexed secondary
// attributes, returning the K most recent matching records by insertion
// time. The index kind is chosen at open time:
//
//   - IndexNone      — no secondary structures; lookups scan everything.
//   - IndexEmbedded  — per-block bloom filters + zone maps inside the
//     primary table's SSTables (paper §3).
//   - IndexEager     — stand-alone LSM index table with read-modify-write
//     posting lists (paper §4.1.1).
//   - IndexLazy      — stand-alone LSM index table with append-only
//     posting fragments merged during compaction (paper §4.1.2).
//   - IndexComposite — stand-alone LSM index table keyed by
//     (secondary key ∥ primary key) (paper §4.2).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
	"leveldbpp/internal/sstable"
)

// IndexKind selects the secondary indexing technique.
type IndexKind int

// The five techniques compared by the paper, plus the no-index baseline.
const (
	IndexNone IndexKind = iota
	IndexEmbedded
	IndexEager
	IndexLazy
	IndexComposite
)

// String returns the paper's name for the technique.
func (k IndexKind) String() string {
	switch k {
	case IndexNone:
		return "NoIndex"
	case IndexEmbedded:
		return "Embedded"
	case IndexEager:
		return "Eager"
	case IndexLazy:
		return "Lazy"
	case IndexComposite:
		return "Composite"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Options configures a LevelDB++ database.
type Options struct {
	// Index selects the secondary indexing technique.
	Index IndexKind
	// Attrs lists the secondary attributes to index. Attribute values
	// must be top-level JSON string fields of the document; range
	// semantics follow byte-wise string order, so numeric attributes
	// should be zero-padded (see workload.EncodeTime).
	Attrs []string

	// Engine tuning (zero values take lsm defaults).
	MemTableBytes       int64
	BlockSize           int
	BitsPerKey          int
	SecondaryBitsPerKey int
	DisableCompression  bool
	L0CompactionTrigger int
	BaseLevelBytes      int64
	LevelMultiplier     int
	MaxLevels           int
	SyncWAL             bool
	// RestartInterval sets the SSTable restart-point spacing for both the
	// primary and index tables (see lsm.Options.RestartInterval): 0 is the
	// v2 default, negative writes legacy v1 linear-scan blocks.
	RestartInterval int
	// BlockCacheBytes enables an LRU block cache on the primary and
	// index tables (0 = off, the paper's configuration).
	BlockCacheBytes int64
	// BackgroundCompaction moves flushes and compactions of the primary
	// table and every index table to background goroutines (see
	// lsm.Options.BackgroundCompaction). Off by default so the paper's
	// experiments stay deterministic.
	BackgroundCompaction bool
	// LookupParallelism > 1 fans LOOKUP/RANGELOOKUP candidate work out
	// over that many goroutines: per-SSTable probing in the Embedded
	// index, and candidate validation in the Eager, Lazy and Composite
	// indexes. 0 or 1 keeps the paper's sequential algorithms; results
	// are identical either way.
	LookupParallelism int

	// DisableGetLite makes the Embedded index validate candidates with
	// full GETs instead of the metadata-only GetLite probe (ablation;
	// paper §3 credits GetLite with "significantly reduced disk I/O").
	DisableGetLite bool
	// DisableFileZoneMap makes the Embedded index skip the file-level
	// zone map check and consult only per-block structures (ablation).
	DisableFileZoneMap bool
}

// Entry is one LOOKUP/RANGELOOKUP result: the record's primary key, its
// current document, and the sequence number that ranked it.
type Entry struct {
	Key   string
	Value []byte
	Seq   uint64
}

// DB is a LevelDB++ database: a primary LSM table plus, for stand-alone
// kinds, one LSM index table per indexed attribute.
type DB struct {
	opts    Options
	primary *lsm.DB
	indexes map[string]*lsm.DB // stand-alone index tables by attribute

	// writeMu serializes Put/Delete so that primary-table and index-table
	// write orders agree — Composite entries rank candidates by
	// index-table sequence number, which must follow primary insertion
	// order (paper §4.2).
	writeMu sync.Mutex
}

// ErrUnknownAttr is returned by lookups on attributes that were not
// declared in Options.Attrs.
var ErrUnknownAttr = errors.New("core: attribute is not indexed")

// compositeSep separates secondary key from primary key in Composite
// index entries; attribute values must not contain it.
const compositeSep = byte(0)

// extractAttrs pulls the indexed attributes out of a JSON document.
// Attribute names may be dot paths into nested objects ("user.id"); the
// resolved value must be a JSON string, anything else is skipped.
func extractAttrs(value []byte, attrs []string) []sstable.AttrValue {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(value, &doc); err != nil {
		return nil
	}
	var out []sstable.AttrValue
	for _, a := range attrs {
		raw, ok := resolvePath(doc, a)
		if !ok {
			continue
		}
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			continue
		}
		if strings.IndexByte(s, compositeSep) >= 0 {
			continue // NUL would corrupt Composite key framing; unindexable
		}
		out = append(out, sstable.AttrValue{Attr: a, Value: s})
	}
	return out
}

// resolvePath walks a dot path through nested JSON objects. A field whose
// literal name contains a dot takes precedence over path traversal.
func resolvePath(doc map[string]json.RawMessage, path string) (json.RawMessage, bool) {
	if raw, ok := doc[path]; ok {
		return raw, true
	}
	head, rest, found := strings.Cut(path, ".")
	if !found {
		return nil, false
	}
	raw, ok := doc[head]
	if !ok {
		return nil, false
	}
	var sub map[string]json.RawMessage
	if err := json.Unmarshal(raw, &sub); err != nil {
		return nil, false
	}
	return resolvePath(sub, rest)
}

// attrValue extracts one attribute's string value from a document.
func attrValue(value []byte, attr string) (string, bool) {
	for _, av := range extractAttrs(value, []string{attr}) {
		return av.Value, true
	}
	return "", false
}

// Open creates or reopens a LevelDB++ database rooted at dir. The primary
// table lives in dir/primary; stand-alone index tables in
// dir/index-<attr>.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create dir: %w", err)
	}
	attrs := append([]string(nil), opts.Attrs...)

	primaryOpts := &lsm.Options{
		MemTableBytes:        opts.MemTableBytes,
		BlockSize:            opts.BlockSize,
		BitsPerKey:           opts.BitsPerKey,
		SecondaryBitsPerKey:  opts.SecondaryBitsPerKey,
		DisableCompression:   opts.DisableCompression,
		L0CompactionTrigger:  opts.L0CompactionTrigger,
		BaseLevelBytes:       opts.BaseLevelBytes,
		LevelMultiplier:      opts.LevelMultiplier,
		MaxLevels:            opts.MaxLevels,
		SyncWAL:              opts.SyncWAL,
		RestartInterval:      opts.RestartInterval,
		BlockCacheBytes:      opts.BlockCacheBytes,
		BackgroundCompaction: opts.BackgroundCompaction,
	}
	if opts.Index == IndexEmbedded {
		primaryOpts.SecondaryAttrs = attrs
		primaryOpts.Extract = func(key, value []byte) []sstable.AttrValue {
			return extractAttrs(value, attrs)
		}
	}
	primary, err := lsm.Open(filepath.Join(dir, "primary"), primaryOpts)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, primary: primary}

	switch opts.Index {
	case IndexEager, IndexLazy, IndexComposite:
		db.indexes = make(map[string]*lsm.DB, len(attrs))
		for _, attr := range attrs {
			idxOpts := &lsm.Options{
				MemTableBytes:        opts.MemTableBytes,
				BlockSize:            opts.BlockSize,
				BitsPerKey:           opts.BitsPerKey,
				DisableCompression:   opts.DisableCompression,
				L0CompactionTrigger:  opts.L0CompactionTrigger,
				BaseLevelBytes:       opts.BaseLevelBytes,
				LevelMultiplier:      opts.LevelMultiplier,
				MaxLevels:            opts.MaxLevels,
				SyncWAL:              opts.SyncWAL,
				RestartInterval:      opts.RestartInterval,
				BlockCacheBytes:      opts.BlockCacheBytes,
				BackgroundCompaction: opts.BackgroundCompaction,
			}
			if opts.Index == IndexLazy {
				idxOpts.WriteMerge = lazyWriteMerge
				idxOpts.Merge = lazyCompactionMerger{}
			}
			idx, err := lsm.Open(filepath.Join(dir, "index-"+attr), idxOpts)
			if err != nil {
				primary.Close()
				for _, other := range db.indexes {
					other.Close()
				}
				return nil, err
			}
			db.indexes[attr] = idx
		}
	}
	return db, nil
}

// Kind returns the database's index kind.
func (db *DB) Kind() IndexKind { return db.opts.Index }

// Get retrieves the document stored under key (Table 1: GET).
func (db *DB) Get(key string) ([]byte, bool, error) {
	return db.primary.Get([]byte(key))
}

// Put writes (or overwrites) the document under key and maintains the
// secondary indexes per the configured technique (Table 1: PUT).
func (db *DB) Put(key string, value []byte) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	seq, err := db.primary.PutWithSeq([]byte(key), value)
	if err != nil {
		return err
	}
	switch db.opts.Index {
	case IndexEager:
		return db.eagerPut(key, value, seq)
	case IndexLazy:
		return db.lazyPut(key, value, seq)
	case IndexComposite:
		return db.compositePut(key, value, seq)
	}
	return nil
}

// Delete removes the document under key (Table 1: DEL). For stand-alone
// indexes the old document is read first so its posting entries can be
// marked deleted.
func (db *DB) Delete(key string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	var old []byte
	if db.indexes != nil {
		v, ok, err := db.primary.Get([]byte(key))
		if err != nil {
			return err
		}
		if !ok {
			// Nothing indexed for this key; the primary tombstone is all
			// that is needed.
			return db.primary.Delete([]byte(key))
		}
		old = v
	}
	seq, err := db.primary.DeleteWithSeq([]byte(key))
	if err != nil {
		return err
	}
	switch db.opts.Index {
	case IndexEager:
		return db.eagerDelete(key, old, seq)
	case IndexLazy:
		return db.lazyDelete(key, old, seq)
	case IndexComposite:
		return db.compositeDelete(key, old)
	}
	return nil
}

// Lookup returns the k most recent records whose attr equals value
// (Table 1: LOOKUP). k <= 0 means no limit.
func (db *DB) Lookup(attr, value string, k int) ([]Entry, error) {
	if !db.indexed(attr) {
		return nil, ErrUnknownAttr
	}
	switch db.opts.Index {
	case IndexEmbedded:
		return db.embeddedLookup(attr, value, k)
	case IndexEager:
		return db.eagerLookup(attr, value, k)
	case IndexLazy:
		return db.lazyLookup(attr, value, k)
	case IndexComposite:
		return db.compositeLookup(attr, value, k)
	default:
		return db.scanLookup(attr, value, value, k)
	}
}

// RangeLookup returns the k most recent records with lo <= val(attr) <= hi
// (Table 1: RANGELOOKUP). k <= 0 means no limit.
func (db *DB) RangeLookup(attr, lo, hi string, k int) ([]Entry, error) {
	if !db.indexed(attr) {
		return nil, ErrUnknownAttr
	}
	if hi < lo {
		return nil, nil
	}
	switch db.opts.Index {
	case IndexEmbedded:
		return db.embeddedRangeLookup(attr, lo, hi, k)
	case IndexEager:
		return db.eagerRangeLookup(attr, lo, hi, k)
	case IndexLazy:
		return db.lazyRangeLookup(attr, lo, hi, k)
	case IndexComposite:
		return db.compositeRangeLookup(attr, lo, hi, k)
	default:
		return db.scanLookup(attr, lo, hi, k)
	}
}

func (db *DB) indexed(attr string) bool {
	for _, a := range db.opts.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// Flush forces all MemTables (primary and index tables) to disk.
func (db *DB) Flush() error {
	if err := db.primary.Flush(); err != nil {
		return err
	}
	for _, idx := range db.indexes {
		if err := idx.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases all resources.
func (db *DB) Close() error {
	err := db.primary.Close()
	for _, idx := range db.indexes {
		if e := idx.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Stats aggregates I/O statistics for the primary table and (summed) for
// all index tables, matching the paper's per-table I/O attribution.
type Stats struct {
	Primary metrics.Snapshot
	Index   metrics.Snapshot
}

// Stats returns a snapshot of I/O counters.
func (db *DB) Stats() Stats {
	s := Stats{Primary: db.primary.Stats().Snapshot()}
	for _, idx := range db.indexes {
		is := idx.Stats().Snapshot()
		s.Index.BlockReads += is.BlockReads
		s.Index.BlockReadBytes += is.BlockReadBytes
		s.Index.BlockWrites += is.BlockWrites
		s.Index.BlockWriteBytes += is.BlockWriteBytes
		s.Index.CompactionReads += is.CompactionReads
		s.Index.CompactionReadBytes += is.CompactionReadBytes
		s.Index.CompactionWrites += is.CompactionWrites
		s.Index.CompactionWriteBytes += is.CompactionWriteBytes
		s.Index.CacheHits += is.CacheHits
		s.Index.CacheMisses += is.CacheMisses
		s.Index.PointGets += is.PointGets
		s.Index.EntriesDecoded += is.EntriesDecoded
		s.Index.BlockSeeks += is.BlockSeeks
	}
	return s
}

// BackgroundStats sums the background-pipeline counters of the primary
// table and every index table; all zeros unless
// Options.BackgroundCompaction is set.
func (db *DB) BackgroundStats() lsm.BackgroundStats {
	s := db.primary.BackgroundStats()
	for _, idx := range db.indexes {
		is := idx.BackgroundStats()
		s.Flushes += is.Flushes
		s.Compactions += is.Compactions
		s.Slowdowns += is.Slowdowns
		s.ThrottleWaits += is.ThrottleWaits
	}
	return s
}

// DiskUsage reports on-disk bytes of the primary table and of all index
// tables (Figure 8a).
func (db *DB) DiskUsage() (primary, index int64, err error) {
	primary, err = db.primary.DiskUsage()
	if err != nil {
		return 0, 0, err
	}
	for _, idx := range db.indexes {
		n, err := idx.DiskUsage()
		if err != nil {
			return 0, 0, err
		}
		index += n
	}
	return primary, index, nil
}

// FilterMemoryUsage reports memory-resident filter and zone-map bytes
// (Embedded index overhead accounting).
func (db *DB) FilterMemoryUsage() int {
	n := db.primary.FilterMemoryUsage()
	for _, idx := range db.indexes {
		n += idx.FilterMemoryUsage()
	}
	return n
}

// validate fetches the current record for primary key pk and reports
// whether its attr still lies in [lo, hi] — the staleness check every
// stand-alone lookup performs on each candidate (paper §4: "We make sure
// val(A_i) = a ... as there could be invalid keys ... caused by updates").
func (db *DB) validate(pk, attr, lo, hi string) ([]byte, bool, error) {
	value, ok, err := db.primary.Get([]byte(pk))
	if err != nil || !ok {
		return nil, false, err
	}
	v, ok := attrValue(value, attr)
	if !ok || v < lo || v > hi {
		return nil, false, nil
	}
	return value, true, nil
}

// lazyWriteMerge coalesces posting fragments inside the MemTable so each
// level holds at most one fragment per secondary key.
func lazyWriteMerge(existing, incoming []byte) []byte {
	ex, err1 := postings.Decode(existing)
	in, err2 := postings.Decode(incoming)
	if err1 != nil || err2 != nil {
		// Never drop data on decode problems; newest fragment wins.
		return incoming
	}
	return postings.Encode(postings.Merge([]postings.List{in, ex}, false))
}

// lazyCompactionMerger merges fragments scattered across levels during
// index-table compaction (paper §4.1.2: "During merge compaction, we
// merge these fragmented lists").
type lazyCompactionMerger struct{}

func (lazyCompactionMerger) Merge(_ []byte, values [][]byte, bottom bool) ([]byte, bool) {
	frags := make([]postings.List, 0, len(values))
	for _, v := range values {
		l, err := postings.Decode(v)
		if err != nil {
			continue
		}
		frags = append(frags, l)
	}
	merged := postings.Merge(frags, bottom)
	if len(merged) == 0 {
		return nil, false
	}
	return postings.Encode(merged), true
}

// Verify audits the primary table and every index table: full checksum
// scan, ordering, and level-shape checks (see lsm.Verify). The returned
// map is keyed by table name ("primary" or "index-<attr>").
func (db *DB) Verify() (map[string]lsm.VerifyReport, error) {
	out := map[string]lsm.VerifyReport{}
	rep, err := db.primary.Verify()
	if err != nil {
		return nil, err
	}
	out["primary"] = rep
	for attr, idx := range db.indexes {
		rep, err := idx.Verify()
		if err != nil {
			return nil, err
		}
		out["index-"+attr] = rep
	}
	return out, nil
}

// DebugString renders the level shape of the primary table and each
// index table.
func (db *DB) DebugString() string {
	s := "primary:\n" + indent(db.primary.DebugString())
	for attr, idx := range db.indexes {
		s += "index-" + attr + ":\n" + indent(idx.DebugString())
	}
	return s
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

// LastSeq returns the primary table's most recent sequence number.
func (db *DB) LastSeq() uint64 { return db.primary.LastSeq() }

// WriteAmplification reports measured write amplification. primary is
// the primary table's physical WAMF. index maps each stand-alone index
// attribute to the bytes written to its index table (flushes +
// compactions) per byte of user data ingested into the primary table —
// the quantity whose Eager-vs-Lazy ratio Table 5 models as
// PL_S·22(L−1) vs 22(L−1).
func (db *DB) WriteAmplification() (primary float64, index map[string]float64) {
	index = map[string]float64{}
	ps := db.primary.Stats().Snapshot()
	primaryIngest := float64(ps.BlockWriteBytes) // lower bound when 0 ingest info
	primary = db.primary.WriteAmplification()
	// Recover the true ingest denominator from the primary's WAMF.
	if primary > 0 {
		primaryIngest = float64(ps.BlockWriteBytes+ps.CompactionWriteBytes) / primary
	}
	for attr, idx := range db.indexes {
		is := idx.Stats().Snapshot()
		if primaryIngest > 0 {
			index[attr] = float64(is.BlockWriteBytes+is.CompactionWriteBytes) / primaryIngest
		}
	}
	return primary, index
}

// Checkpoint writes a consistent, openable copy of the whole database
// (primary table and all index tables) under destDir. Writers are
// blocked for the duration, so the copies are mutually consistent.
func (db *DB) Checkpoint(destDir string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.primary.Checkpoint(filepath.Join(destDir, "primary")); err != nil {
		return err
	}
	for attr, idx := range db.indexes {
		if err := idx.Checkpoint(filepath.Join(destDir, "index-"+attr)); err != nil {
			return err
		}
	}
	return nil
}

// CompactRange forces the user-key range [lo, hi] (empty strings =
// unbounded) of the primary table down to its resting level, and fully
// compacts every index table. Useful after bulk loads and deletes.
func (db *DB) CompactRange(lo, hi string) error {
	var loB, hiB []byte
	if lo != "" {
		loB = []byte(lo)
	}
	if hi != "" {
		hiB = []byte(hi)
	}
	if err := db.primary.CompactRange(loB, hiB); err != nil {
		return err
	}
	for _, idx := range db.indexes {
		if err := idx.CompactRange(nil, nil); err != nil {
			return err
		}
	}
	return nil
}
