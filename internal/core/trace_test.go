package core

import (
	"fmt"
	"strings"
	"testing"

	"leveldbpp/internal/metrics"
)

func openTraced(t *testing.T, kind IndexKind) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{
		Index:           kind,
		Attrs:           []string{"UserID", "CreationTime"},
		MemTableBytes:   32 << 10,
		TraceSampleRate: 1, // trace everything; threshold 0 records all
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func fillTraced(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`{"UserID":"u%02d","CreationTime":"%010d","pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`, i%5, i)
		if err := db.Put(fmt.Sprintf("t%05d", i), []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second wave stays in the MemTable so lookups cross mem and table
	// strata alike.
	for i := n; i < n+n/10; i++ {
		doc := fmt.Sprintf(`{"UserID":"u%02d","CreationTime":"%010d"}`, i%5, i)
		if err := db.Put(fmt.Sprintf("t%05d", i), []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
}

// lastTrace returns the most recent recorded trace for op.
func lastTrace(t *testing.T, db *DB, op string) metrics.TraceRecord {
	t.Helper()
	recs := db.Tracer().Slow()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Op == op {
			return recs[i]
		}
	}
	t.Fatalf("no %s trace recorded (have %d records)", op, len(recs))
	return metrics.TraceRecord{}
}

// TestLookupTraceCoverage is the acceptance check for the phase taxonomy:
// on every index kind, a traced LOOKUP attributes at least 95% of its wall
// time to named top-level phases. The op validates hundreds of candidates,
// so its wall time dwarfs the untraced bookkeeping between phases; a few
// attempts are allowed to ride out scheduler preemption, which can charge
// an arbitrary pause to the gap between two phases.
func TestLookupTraceCoverage(t *testing.T) {
	for _, kind := range []IndexKind{IndexEager, IndexLazy, IndexComposite, IndexEmbedded} {
		t.Run(kind.String(), func(t *testing.T) {
			db := openTraced(t, kind)
			fillTraced(t, db, 2000)

			best := 0.0
			var rec metrics.TraceRecord
			for attempt := 0; attempt < 5 && best < 0.95; attempt++ {
				if _, err := db.Lookup("UserID", "u01", 0); err != nil {
					t.Fatal(err)
				}
				r := lastTrace(t, db, "lookup")
				if r.Coverage > best {
					best, rec = r.Coverage, r
				}
			}
			if best < 0.95 {
				t.Fatalf("lookup coverage %.3f < 0.95; trace: %+v", best, rec)
			}
			if len(rec.Phases) == 0 {
				t.Fatal("trace has no phases")
			}
			for _, p := range rec.Phases {
				if p.Phase == "unknown" {
					t.Fatalf("unnamed phase in trace: %+v", rec)
				}
			}
			if !strings.HasPrefix(rec.Detail, "UserID=u01 plan=") {
				t.Fatalf("lookup detail = %q", rec.Detail)
			}
		})
	}
}

// TestRangeLookupTraceCoverage repeats the coverage check for RANGELOOKUP,
// whose scan paths use the mark-alternation pattern.
func TestRangeLookupTraceCoverage(t *testing.T) {
	for _, kind := range []IndexKind{IndexEager, IndexLazy, IndexComposite, IndexEmbedded} {
		t.Run(kind.String(), func(t *testing.T) {
			db := openTraced(t, kind)
			fillTraced(t, db, 2000)

			best := 0.0
			for attempt := 0; attempt < 5 && best < 0.9; attempt++ {
				if _, err := db.RangeLookup("CreationTime", "0000000000", "0000001000", 0); err != nil {
					t.Fatal(err)
				}
				if r := lastTrace(t, db, "rangelookup"); r.Coverage > best {
					best = r.Coverage
				}
			}
			if best < 0.9 {
				t.Fatalf("rangelookup coverage %.3f < 0.9", best)
			}
		})
	}
}

// TestTracePutPhases checks the write path names its phases too.
func TestTracePutPhases(t *testing.T) {
	db := openTraced(t, IndexLazy)
	fillTraced(t, db, 500)
	rec := lastTrace(t, db, "put")
	if len(rec.Phases) == 0 {
		t.Fatalf("put trace has no phases: %+v", rec)
	}
	names := map[string]bool{}
	for _, p := range rec.Phases {
		names[p.Phase] = true
	}
	for _, want := range []string{"wal", "mem_insert", "index_update"} {
		if !names[want] {
			t.Fatalf("put trace missing phase %q: %+v", want, rec.Phases)
		}
	}
}

// TestTracingDisabledByDefault: with no sample rate the tracer never
// samples, Slow stays empty, and operations still record OpStats latency.
func TestTracingDisabledByDefault(t *testing.T) {
	db, err := Open(t.TempDir(), Options{Index: IndexLazy, Attrs: []string{"UserID"}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put("k1", []byte(`{"UserID":"u1"}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Lookup("UserID", "u1", 0); err != nil {
		t.Fatal(err)
	}
	if recs := db.Tracer().Slow(); len(recs) != 0 {
		t.Fatalf("disabled tracer recorded %d traces", len(recs))
	}
	if bd := db.Tracer().Breakdown(); len(bd) != 0 {
		t.Fatalf("disabled tracer aggregated %d ops", len(bd))
	}
	for _, op := range []metrics.Op{metrics.OpGet, metrics.OpPut, metrics.OpLookup} {
		if db.OpStats().Hist(op).Count() == 0 {
			t.Fatalf("OpStats missing %s observations with tracing off", op)
		}
	}
}

// TestBreakdownAccumulates: the tracer's cumulative per-op aggregates
// cover all traced operations and reset cleanly between experiments.
func TestBreakdownAccumulates(t *testing.T) {
	db := openTraced(t, IndexLazy)
	fillTraced(t, db, 300)
	if _, err := db.Lookup("UserID", "u01", 5); err != nil {
		t.Fatal(err)
	}
	bds := db.Tracer().Breakdown()
	seen := map[string]bool{}
	for _, b := range bds {
		seen[b.Op] = true
		if b.Count <= 0 || b.TotalUS <= 0 {
			t.Fatalf("degenerate breakdown row: %+v", b)
		}
	}
	for _, want := range []string{"put", "lookup"} {
		if !seen[want] {
			t.Fatalf("breakdown missing op %q: %+v", want, bds)
		}
	}
	db.Tracer().ResetBreakdown()
	if bds := db.Tracer().Breakdown(); len(bds) != 0 {
		t.Fatalf("breakdown not reset: %+v", bds)
	}
}
