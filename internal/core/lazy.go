package core

import (
	"bytes"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
	"leveldbpp/internal/skiplist"
	"leveldbpp/internal/sstable"
)

// The Lazy index (paper §4.1.2) also keeps a stand-alone posting-list
// table per attribute, but a PUT just appends a one-entry fragment —
// PUT(a_i, [k]) — with no read. Fragments for the same attribute value
// accumulate one per stratum and merge during index-table compaction (and,
// in the MemTable, at write time via the engine's WriteMerge hook, which
// is memory-only). LOOKUP therefore walks strata newest-first, merging the
// fragments it finds, and may stop at the first stratum boundary where the
// top-K heap is full — fragments deeper down are strictly older for the
// same secondary key.

//lsm:locked — writeMu is held by putTraced on every caller path.
func (db *DB) lazyPut(key string, value []byte, seq uint64) error {
	for _, av := range extractAttrs(value, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		// Fragment built in the shared scratch (writeMu held); the engine
		// copies the value before Put returns.
		db.postBuf = postings.AppendSingle(db.postBuf[:0], key, seq, false, db.pf)
		if err := idx.Put([]byte(av.Value), db.postBuf); err != nil {
			return err
		}
	}
	return nil
}

// lazyDelete appends deletion-marker fragments (paper: "DEL operation
// similarly issues a PUT(a_i del, [k]) ... used during merge in compaction
// to remove the deleted entry").
//
//lsm:locked — writeMu is held by deleteTraced on every caller path.
func (db *DB) lazyDelete(key string, oldValue []byte, seq uint64) error {
	for _, av := range extractAttrs(oldValue, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		db.postBuf = postings.AppendSingle(db.postBuf[:0], key, seq, true, db.pf)
		if err := idx.Put([]byte(av.Value), db.postBuf); err != nil {
			return err
		}
	}
	return nil
}

// lazyFragments visits every fragment stored for secondary key value,
// newest stratum first: the MemTable fragment, then one per L0 file, then
// one per deeper level. fn receives the fragment's encoded bytes (either
// posting-list format; they alias stable arena/block memory) and returns
// false to stop early.
func lazyFragments(v *lsm.View, value []byte, tr *metrics.Trace, fn func(data []byte) (bool, error)) error {
	if data, _, deleted, ok := v.MemGet(value); ok && !deleted {
		if cont, err := fn(data); err != nil || !cont {
			return err
		}
	} else if ok && deleted {
		return nil // whole secondary key tombstoned
	}
	if v.HasImm() { // frozen MemTable stratum (background mode)
		if data, _, deleted, ok := v.ImmGet(value); ok && !deleted {
			if cont, err := fn(data); err != nil || !cont {
				return err
			}
		} else if ok && deleted {
			return nil
		}
	}
	// One scratch across every index-table probe; fragment bytes alias
	// stable block contents, only the internal key is scratch-backed.
	var sc sstable.GetScratch
	sc.Trace = tr
	for _, fm := range v.L0() {
		m := tr.BlockMark()
		ik, data, found, err := fm.Table().GetWith(&sc, value)
		tr.CountLevelSince(0, m)
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		if ikey.KindOf(ik) == ikey.KindDelete {
			return nil
		}
		if cont, err := fn(data); err != nil || !cont {
			return err
		}
	}
	for l := 1; l <= v.MaxLevel(); l++ {
		fm := v.FindLevelFile(l, value)
		if fm == nil {
			continue
		}
		m := tr.BlockMark()
		ik, data, found, err := fm.Table().GetWith(&sc, value)
		tr.CountLevelSince(l, m)
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		if ikey.KindOf(ik) == ikey.KindDelete {
			return nil
		}
		if cont, err := fn(data); err != nil || !cont {
			return err
		}
	}
	return nil
}

// lazyLookup is Algorithm 3: walk the index table level by level; each
// level holds at most one fragment; validate candidates against the data
// table; stop at a level boundary once K valid results are held (deeper
// fragments are older).
func (db *DB) lazyLookup(attr, value string, k int, tr *metrics.Trace) ([]Entry, error) {
	idx := db.indexes[attr]
	heap := newTopK(k)
	seen := map[string]bool{}
	var c postings.Cursor
	var decodedBytes, decodedEntries, frags int64
	// The mark closes an index_probe interval (stratum walk + fragment
	// decode) whenever a validation starts, and reopens it after, so the
	// two phases tile the traversal without overlap.
	mark := tr.Now()
	err := idx.View(func(v *lsm.View) error {
		return lazyFragments(v, []byte(value), tr, func(data []byte) (bool, error) {
			frags++
			tr.Count(metrics.CtrPostingFragments, 1)
			tD := tr.Now()
			if err := c.Reset(data); err != nil {
				return false, err
			}
			tr.Since(metrics.PhasePostingsDecode, tD)
			// Entries within a fragment are newest-first by the write
			// path's invariant; sorted tracks whether this fragment
			// honours it, which gates the mid-fragment early stop.
			sorted, first := true, true
			var prevSeq uint64
			for c.Next() {
				seq := c.Seq()
				if !first && seq > prevSeq {
					sorted = false
				}
				prevSeq, first = seq, false
				if seen[string(c.Key())] {
					continue // newer fragment already decided this key
				}
				pk := string(c.Key())
				seen[pk] = true
				if c.Del() || !heap.Worth(seq) {
					continue
				}
				tr.Since(metrics.PhaseIndexProbe, mark)
				doc, valid, err := db.validateTraced(pk, attr, value, value, tr)
				mark = tr.Now()
				if err != nil {
					return false, err
				}
				if valid {
					heap.Add(Entry{Key: pk, Value: doc, Seq: seq})
					if heap.Full() && sorted {
						// Every remaining entry in this fragment is older
						// than the heap's minimum; stop decoding the tail.
						break
					}
				}
			}
			decodedBytes += c.BytesDecoded()
			decodedEntries += c.EntriesDecoded()
			if err := c.Err(); err != nil {
				return false, err
			}
			// Stop descending once the heap is full: every entry in a
			// deeper fragment of this secondary key is older than every
			// entry already consumed.
			return !heap.Full(), nil
		})
	})
	tr.Since(metrics.PhaseIndexProbe, mark)
	if err != nil {
		return nil, err
	}
	tr.Count(metrics.CtrPostingEntries, decodedEntries)
	st := idx.Stats()
	st.PostingsBytesDecoded.Add(decodedBytes)
	st.PostingsEntriesDecoded.Add(decodedEntries)
	st.FragmentsMerged.Add(frags)
	return heap.Results(), nil
}

// lazyRangeLookup is Algorithm 6: for a range of secondary keys, fragments
// for *different* keys are not time-ordered across levels, so every level
// must be visited (paper §4.1.2); all fragments merge into one candidate
// pool which is validated newest-first.
func (db *DB) lazyRangeLookup(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	idx := db.indexes[attr]
	heap := newTopK(k)
	// Secondary key → encoded fragments, newest stratum first. Decoding is
	// deferred to the streaming merge below, so the scan itself only
	// gathers bytes.
	perKey := map[string][][]byte{}

	t0 := tr.Now()
	err := idx.View(func(v *lsm.View) error {
		loB, hiExcl := []byte(lo), upperBoundExclusive(hi)

		// MemTable strata: the live MemTable, then the frozen one if a
		// background flush is pending. Skiplist values alias stable arena
		// memory, so they are kept without copying.
		scanMem := func(it *skiplist.Iterator) error {
			if it == nil {
				return nil
			}
			var prevUser []byte
			for it.SeekGE(ikey.SeekKey(loB)); it.Valid(); it.Next() {
				ik := it.Key()
				uk := ikey.UserKey(ik)
				if bytes.Compare(uk, hiExcl) >= 0 {
					break
				}
				newest := prevUser == nil || !bytes.Equal(prevUser, uk)
				prevUser = append(prevUser[:0], uk...)
				if !newest || ikey.KindOf(ik) == ikey.KindDelete {
					continue
				}
				// Skiplist values alias arena memory that is never reused,
				// so the fragment stays valid past the iteration.
				perKey[string(uk)] = append(perKey[string(uk)], it.Value()) //lsm:aliasok
			}
			return nil
		}
		if err := scanMem(v.MemIter()); err != nil {
			return err
		}
		if err := scanMem(v.ImmIter()); err != nil {
			return err
		}

		// Table strata: each L0 file, then each deeper level. Iterator
		// value bytes are reused across Next, so fragments are copied.
		scanTable := func(fm *lsm.FileMeta) error {
			ti := fm.Table().NewIteratorTraced(false, tr)
			var prev []byte
			for ok := ti.SeekGE(ikey.SeekKey(loB)); ok; ok = ti.Next() {
				ik := ti.Key()
				uk := ikey.UserKey(ik)
				if bytes.Compare(uk, hiExcl) >= 0 {
					break
				}
				newest := prev == nil || !bytes.Equal(prev, uk)
				prev = append(prev[:0], uk...)
				if !newest || ikey.KindOf(ik) == ikey.KindDelete {
					continue
				}
				frag := append([]byte(nil), ti.Value()...)
				perKey[string(uk)] = append(perKey[string(uk)], frag)
			}
			return ti.Err()
		}
		for _, fm := range v.L0() {
			if err := scanTable(fm); err != nil {
				return err
			}
		}
		for l := 1; l <= v.MaxLevel(); l++ {
			for _, fm := range v.OverlappingFiles(l, loB, []byte(hi)) {
				if err := scanTable(fm); err != nil {
					return err
				}
			}
		}
		return nil
	})
	tr.Since(metrics.PhaseIndexProbe, t0)
	if err != nil {
		return nil, err
	}

	// Merge each key's fragments directly from the encoded bytes into the
	// candidate pool (newest-fragment order within a key is irrelevant:
	// the merge keeps max-seq per primary key). Deletion markers drop here
	// like the decoded path's Merge(frags, true) did.
	t0 = tr.Now()
	var candidates []postings.Entry
	var sc postings.MergeScratch
	var decodedBytes, decodedEntries, frags int64
	for _, encFrags := range perKey {
		err := sc.MergeFunc(encFrags, true, func(key []byte, seq uint64, del bool) {
			candidates = append(candidates, postings.Entry{Key: string(key), Seq: seq, Del: del})
		})
		if err != nil {
			tr.Since(metrics.PhasePostingMerge, t0)
			tr.Since(metrics.PhasePostingsDecode, t0)
			return nil, err
		}
		decodedBytes += sc.BytesDecoded()
		decodedEntries += sc.EntriesDecoded()
		frags += sc.FragmentsMerged()
	}
	tr.Since(metrics.PhasePostingMerge, t0)
	tr.Since(metrics.PhasePostingsDecode, t0)
	tr.Count(metrics.CtrPostingFragments, frags)
	tr.Count(metrics.CtrPostingEntries, decodedEntries)
	st := idx.Stats()
	st.PostingsBytesDecoded.Add(decodedBytes)
	st.PostingsEntriesDecoded.Add(decodedEntries)
	st.FragmentsMerged.Add(frags)
	if err := db.validateCandidates(candidates, attr, lo, hi, k, heap, tr); err != nil {
		return nil, err
	}
	return heap.Results(), nil
}
