package core

import (
	"container/heap"
	"sort"
)

// topK is the min-heap of Algorithm 1: it retains the K entries with the
// highest sequence numbers (most recent insertions). K <= 0 means
// unbounded (the paper's "no limit on top-k").
type topK struct {
	k int
	h entryHeap
}

type entryHeap []Entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].Seq < h[j].Seq } // min-heap by seq
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func newTopK(k int) *topK { return &topK{k: k} }

// Full reports whether K entries have been collected (never true when
// unbounded).
func (t *topK) Full() bool { return t.k > 0 && len(t.h) >= t.k }

// MinSeq returns the smallest retained sequence number (0 when empty).
// A candidate with Seq <= MinSeq cannot improve a full heap.
func (t *topK) MinSeq() uint64 {
	if len(t.h) == 0 {
		return 0
	}
	return t.h[0].Seq
}

// Worth reports whether a candidate with the given sequence number could
// enter the heap — the cheap pre-check performed before paying for a
// validity probe (Algorithm 1 lines 1-2).
func (t *topK) Worth(seq uint64) bool {
	return !t.Full() || seq > t.MinSeq()
}

// Add offers an entry; it is kept if the heap has room or the entry is
// newer than the current minimum.
func (t *topK) Add(e Entry) {
	if t.k <= 0 {
		heap.Push(&t.h, e)
		return
	}
	if len(t.h) < t.k {
		heap.Push(&t.h, e)
		return
	}
	if e.Seq > t.h[0].Seq {
		t.h[0] = e
		heap.Fix(&t.h, 0)
	}
}

// Len returns the number of retained entries.
func (t *topK) Len() int { return len(t.h) }

// Results returns the retained entries ordered newest first.
func (t *topK) Results() []Entry {
	out := make([]Entry, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}
