package core

import (
	"fmt"
	"testing"
)

// benchCompactionOptions sizes the engine so one CompactAll performs a
// large multi-input merge: the L0 trigger is lifted far above the flush
// count, so the timed section is purely the sub-compaction engine working
// through a stack of overlapping L0 tables (plus the mirrored index-table
// compaction for stand-alone kinds).
func benchCompactionOptions(kind IndexKind, parallelism int) Options {
	opts := smallOptions(kind)
	opts.CompactionParallelism = parallelism
	opts.L0CompactionTrigger = 1 << 20 // never compact inline; CompactAll does it all
	return opts
}

// BenchmarkCompactionThroughput measures full-compaction wall time over a
// fixed pre-built LSM shape at CompactionParallelism 1/2/4, for the
// primary-only kind and for Lazy (whose compactions also merge posting
// lists through the per-worker Merger fork). bytes/op is the primary+index
// footprint merged per iteration, so MB/s compares across settings.
// Speedups require GOMAXPROCS >= parallelism; see EXPERIMENTS.md
// "Measuring compaction parallelism".
func BenchmarkCompactionThroughput(b *testing.B) {
	const docs = 3000
	for _, kind := range []IndexKind{IndexNone, IndexLazy} {
		for _, par := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/parallelism=%d", kind, par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db, err := Open(b.TempDir(), benchCompactionOptions(kind, par))
					if err != nil {
						b.Fatal(err)
					}
					for j := 0; j < docs; j++ {
						user := fmt.Sprintf("u%03d", j%97)
						if err := db.Put(fmt.Sprintf("t%07d", j), tweetDoc(user, 1000+j, "compaction throughput benchmark tweet body")); err != nil {
							b.Fatal(err)
						}
					}
					if err := db.Flush(); err != nil {
						b.Fatal(err)
					}
					primary, index, err := db.DiskUsage()
					if err != nil {
						b.Fatal(err)
					}
					b.SetBytes(primary + index)
					b.StartTimer()
					if err := db.CompactAll(); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if err := db.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
