package core_test

import (
	"fmt"
	"log"
	"os"

	"leveldbpp/internal/core"
)

// Example shows the paper's full operation set (Table 1) against a Lazy
// stand-alone index.
func Example() {
	dir, _ := os.MkdirTemp("", "leveldbpp-example-")
	defer os.RemoveAll(dir)

	db, err := core.Open(dir, core.Options{
		Index: core.IndexLazy,
		Attrs: []string{"UserID"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put("t1", []byte(`{"UserID":"alice","Text":"first"}`))
	db.Put("t2", []byte(`{"UserID":"bob","Text":"hello"}`))
	db.Put("t3", []byte(`{"UserID":"alice","Text":"second"}`))

	// LOOKUP(A, a, K): the K most recent records with UserID == alice.
	entries, _ := db.Lookup("UserID", "alice", 10)
	for _, e := range entries {
		fmt.Println(e.Key)
	}
	// Output:
	// t3
	// t1
}

// ExampleDB_RangeLookup demonstrates RANGELOOKUP over a byte-ordered
// attribute.
func ExampleDB_RangeLookup() {
	dir, _ := os.MkdirTemp("", "leveldbpp-example-")
	defer os.RemoveAll(dir)

	db, err := core.Open(dir, core.Options{
		Index: core.IndexEmbedded,
		Attrs: []string{"Score"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put("p1", []byte(`{"Score":"040"}`))
	db.Put("p2", []byte(`{"Score":"075"}`))
	db.Put("p3", []byte(`{"Score":"090"}`))

	entries, _ := db.RangeLookup("Score", "050", "099", 0)
	for _, e := range entries {
		fmt.Println(e.Key)
	}
	// Output:
	// p3
	// p2
}

// ExampleBatch shows an atomic multi-operation commit.
func ExampleBatch() {
	dir, _ := os.MkdirTemp("", "leveldbpp-example-")
	defer os.RemoveAll(dir)

	db, err := core.Open(dir, core.Options{Index: core.IndexComposite, Attrs: []string{"UserID"}})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var b core.Batch
	b.Put("t1", []byte(`{"UserID":"alice"}`))
	b.Put("t2", []byte(`{"UserID":"alice"}`))
	b.Delete("t1")
	if err := db.Apply(&b); err != nil {
		log.Fatal(err)
	}

	entries, _ := db.Lookup("UserID", "alice", 0)
	fmt.Println(len(entries), entries[0].Key)
	// Output: 1 t2
}
