package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCrashRecoveryMidWorkloadAllKinds interrupts a randomized workload
// (by closing and reopening, which exercises the WAL replay path exactly
// as a crash after the last fsync would) and verifies lookups still match
// the reference model afterwards.
func TestCrashRecoveryMidWorkloadAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(kind)
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()
			rng := rand.New(rand.NewSource(13))
			op := 0
			step := func(n int) {
				for i := 0; i < n; i++ {
					op++
					key := fmt.Sprintf("t%05d", op)
					user := fmt.Sprintf("u%02d", rng.Intn(15))
					switch {
					case op%17 == 0 && op > 20:
						victim := fmt.Sprintf("t%05d", rng.Intn(op-1)+1)
						if err := db.Delete(victim); err != nil {
							t.Fatal(err)
						}
						m.del(victim)
					default:
						if err := db.Put(key, tweetDoc(user, op, "crashy")); err != nil {
							t.Fatal(err)
						}
						m.put(key, user, op)
					}
				}
			}
			verify := func() {
				for u := 0; u < 15; u++ {
					user := fmt.Sprintf("u%02d", u)
					got, err := db.Lookup("UserID", user, 7)
					if err != nil {
						t.Fatal(err)
					}
					want := m.lookup("UserID", user, user, 7)
					if !sameKeys(keysOf(got), want) {
						t.Fatalf("user %s after recovery: got %v want %v", user, keysOf(got), want)
					}
				}
			}

			step(700)
			// "Crash" 1: reopen and verify.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			verify()
			// Continue writing, crash again.
			step(700)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			verify()
			// Consistency audit of all tables.
			reports, err := db.Verify()
			if err != nil {
				t.Fatal(err)
			}
			for name, rep := range reports {
				if !rep.OK() {
					t.Fatalf("%s audit failed: %v", name, rep.Problems)
				}
			}
		})
	}
}

// TestGetLiteSavesIO verifies the paper's §3 claim: GetLite validity
// checks avoid the disk I/O a regular GET would pay. We compare primary
// block reads per LOOKUP with GetLite on and off on identical stores.
func TestGetLiteSavesIO(t *testing.T) {
	run := func(disable bool) float64 {
		opts := smallOptions(IndexEmbedded)
		opts.DisableGetLite = disable
		db, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		// Heavy overwrite workload → many stale candidates to invalidate.
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 4000; i++ {
			key := fmt.Sprintf("t%04d", rng.Intn(1200))
			db.Put(key, tweetDoc(fmt.Sprintf("u%02d", rng.Intn(20)), i, "getlite measurement tweet"))
		}
		db.Flush()
		pre := db.Stats().Primary.BlockReads
		const queries = 40
		for q := 0; q < queries; q++ {
			if _, err := db.Lookup("UserID", fmt.Sprintf("u%02d", q%20), 10); err != nil {
				t.Fatal(err)
			}
		}
		return float64(db.Stats().Primary.BlockReads-pre) / queries
	}
	withLite := run(false)
	withoutLite := run(true)
	if withLite > withoutLite {
		t.Errorf("GetLite should not cost more I/O than full GET validation: %.2f vs %.2f",
			withLite, withoutLite)
	}
	t.Logf("block reads per LOOKUP: GetLite=%.2f fullGET=%.2f", withLite, withoutLite)
}

// TestConcurrentReadersWithWriter exercises the core DB's concurrency
// contract under the race detector: many readers, one writer.
func TestConcurrentReadersWithWriter(t *testing.T) {
	db := openKind(t, IndexLazy)
	for i := 0; i < 500; i++ {
		db.Put(fmt.Sprintf("t%05d", i), tweetDoc(fmt.Sprintf("u%02d", i%10), i, "seed"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 500; i < 1500; i++ {
			if err := db.Put(fmt.Sprintf("t%05d", i), tweetDoc(fmt.Sprintf("u%02d", i%10), i, "live")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		for u := 0; u < 10; u++ {
			if _, err := db.Lookup("UserID", fmt.Sprintf("u%02d", u), 5); err != nil {
				t.Fatal(err)
			}
			if _, _, err := db.Get(fmt.Sprintf("t%05d", u*37)); err != nil {
				t.Fatal(err)
			}
		}
	}
}
