package core

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCompactionParallelismEquivalence runs the same workload with
// CompactionParallelism 1 and 4 for all five index kinds: every observable
// result (scan, LOOKUP, RANGELOOKUP), every fig8a/fig12 I/O counter, and
// every on-disk byte must be identical. The only permitted difference is
// CompactionReads/CompactionReadBytes: adjacent sub-compaction partitions
// each re-read the boundary block they share, so the parallel engine may
// read slightly more during compaction without changing what it writes.
func TestCompactionParallelismEquivalence(t *testing.T) {
	run := func(t *testing.T, kind IndexKind, parallelism int) postingsResult {
		opts := smallOptions(kind)
		opts.CompactionParallelism = parallelism
		db, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		postingsWorkload(t, db)
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		return collectPostingsResult(t, db)
	}

	// maskCompactionReads zeroes the one counter pair the parallel engine
	// is allowed to change, so the rest of the snapshot compares exactly.
	maskCompactionReads := func(s Stats) Stats {
		s.Primary.CompactionReads, s.Primary.CompactionReadBytes = 0, 0
		s.Index.CompactionReads, s.Index.CompactionReadBytes = 0, 0
		return s
	}

	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			serial := run(t, kind, 1)
			parallel := run(t, kind, 4)
			if !reflect.DeepEqual(serial.scan, parallel.scan) {
				t.Errorf("scan differs: serial %d keys, parallel %d keys", len(serial.scan), len(parallel.scan))
			}
			if !reflect.DeepEqual(serial.lookups, parallel.lookups) {
				t.Errorf("LOOKUP results differ:\nserial=%v\nparallel=%v", serial.lookups, parallel.lookups)
			}
			if !reflect.DeepEqual(serial.rngs, parallel.rngs) {
				t.Errorf("RANGELOOKUP results differ:\nserial=%v\nparallel=%v", serial.rngs, parallel.rngs)
			}
			ss, ps := maskCompactionReads(serial.stats), maskCompactionReads(parallel.stats)
			if !reflect.DeepEqual(ss, ps) {
				t.Errorf("I/O counters differ beyond CompactionReads:\nserial=%+v\nparallel=%+v", ss, ps)
			}
			if serial.primary != parallel.primary || serial.index != parallel.index {
				t.Errorf("disk usage differs: serial=(%d,%d) parallel=(%d,%d)",
					serial.primary, serial.index, parallel.primary, parallel.index)
			}
		})
	}
}

// TestCompactionParallelismLevels proves the equivalence holds at every
// parallelism level the benchmarks exercise, not just the 1-vs-4 pair, on
// the Lazy kind (the one whose compactions also merge posting lists
// through the per-worker Merger fork).
func TestCompactionParallelismLevels(t *testing.T) {
	results := map[int]postingsResult{}
	for _, p := range []int{1, 2, 4, 8} {
		opts := smallOptions(IndexLazy)
		opts.CompactionParallelism = p
		db, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		postingsWorkload(t, db)
		if err := db.CompactAll(); err != nil {
			t.Fatal(err)
		}
		results[p] = collectPostingsResult(t, db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	base := results[1]
	for _, p := range []int{2, 4, 8} {
		r := results[p]
		if !reflect.DeepEqual(base.scan, r.scan) ||
			!reflect.DeepEqual(base.lookups, r.lookups) ||
			!reflect.DeepEqual(base.rngs, r.rngs) {
			t.Errorf("parallelism %d: query results differ from serial", p)
		}
		if base.primary != r.primary || base.index != r.index {
			t.Errorf("parallelism %d: disk usage (%d,%d) differs from serial (%d,%d)",
				p, r.primary, r.index, base.primary, base.index)
		}
	}
}

// TestCompactionStatsSurface checks the observability counters the
// /metrics endpoint exports: a parallel compaction records its partitions
// in Subcompactions and leaves no worker marked busy afterwards.
func TestCompactionStatsSurface(t *testing.T) {
	opts := smallOptions(IndexLazy)
	opts.CompactionParallelism = 4
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 600; i++ {
		user := fmt.Sprintf("u%02d", i%9)
		if err := db.Put(fmt.Sprintf("t%04d", i), tweetDoc(user, 1000+i, "body")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	primary, index := db.CompactionStats()
	if primary.Subcompactions == 0 {
		t.Error("primary table recorded no sub-compactions")
	}
	if index.Subcompactions == 0 {
		t.Error("index table recorded no sub-compactions")
	}
	if primary.WorkersBusy != 0 || index.WorkersBusy != 0 {
		t.Errorf("workers still busy after quiescence: primary=%d index=%d",
			primary.WorkersBusy, index.WorkersBusy)
	}
}
