package core

import (
	"leveldbpp/internal/lsm"
)

// Batch collects Put/Delete operations that commit atomically on the
// primary table (one WAL frame). Secondary index maintenance runs per
// operation after the primary commit, in batch order — the same
// primary-first consistency the paper's single-op writes have.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del   bool
	key   string
	value []byte
}

// Put queues key → value.
func (b *Batch) Put(key string, value []byte) {
	b.ops = append(b.ops, batchOp{key: key, value: append([]byte(nil), value...)})
}

// Delete queues a delete of key.
func (b *Batch) Delete(key string) {
	b.ops = append(b.ops, batchOp{del: true, key: key})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply commits the batch.
func (db *DB) Apply(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if db.indexes != nil {
		db.writeMu.Lock()
		defer db.writeMu.Unlock()
	}

	// Deletes need the old document to mark index entries; resolve each
	// against earlier batch ops first, then the store.
	oldDocs := make([][]byte, len(b.ops))
	if db.indexes != nil {
		written := map[string][]byte{}
		for i, op := range b.ops {
			if op.del {
				if doc, ok := written[op.key]; ok {
					oldDocs[i] = doc
				} else {
					v, found, err := db.primary.Get([]byte(op.key))
					if err != nil {
						return err
					}
					if found {
						oldDocs[i] = v
					}
				}
				delete(written, op.key)
			} else {
				written[op.key] = op.value
			}
		}
	}

	var pb lsm.Batch
	for _, op := range b.ops {
		if op.del {
			pb.Delete([]byte(op.key))
		} else {
			// Zero-copy handoff: the key conversion is a fresh allocation
			// and op.value is owned by this batch (copied at enqueue) and
			// never mutated after Apply, so the engine may retain both.
			pb.PutNoCopy([]byte(op.key), op.value)
		}
	}
	firstSeq, err := db.primary.ApplyWithSeq(&pb)
	if err != nil {
		return err
	}

	if db.indexes == nil {
		return nil
	}
	for i, op := range b.ops {
		seq := firstSeq + uint64(i)
		var err error
		switch {
		case op.del && oldDocs[i] == nil:
			// Nothing was indexed for this key.
		case op.del:
			switch db.opts.Index {
			case IndexEager:
				err = db.eagerDelete(op.key, oldDocs[i], seq)
			case IndexLazy:
				err = db.lazyDelete(op.key, oldDocs[i], seq)
			case IndexComposite:
				err = db.compositeDelete(op.key, oldDocs[i])
			}
		default:
			switch db.opts.Index {
			case IndexEager:
				err = db.eagerPut(op.key, op.value, seq)
			case IndexLazy:
				err = db.lazyPut(op.key, op.value, seq)
			case IndexComposite:
				err = db.compositePut(op.key, op.value, seq)
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Scan iterates the primary table over [lo, hi] (inclusive; empty hi
// means unbounded) in key order, visiting only the newest live version of
// each key — LevelDB's range query API, which the paper's Eager
// RANGELOOKUP builds on. fn returning false stops the scan.
func (db *DB) Scan(lo, hi string, fn func(key string, value []byte) bool) error {
	var hiExcl []byte
	if hi != "" {
		hiExcl = upperBoundExclusive(hi)
	}
	return db.primary.Scan([]byte(lo), hiExcl, func(k, v []byte, _ uint64) bool {
		return fn(string(k), v)
	})
}
