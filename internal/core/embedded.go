package core

import (
	"bytes"

	"leveldbpp/internal/btree"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/lsm"
)

// The Embedded index (paper §3) keeps no separate table: every SSTable of
// the primary table carries per-block bloom filters and zone maps for each
// indexed attribute, plus a file-level zone map, all memory resident; the
// MemTable side is a B-tree from attribute value to postings.
//
// LOOKUP and RANGELOOKUP scan the store stratum by stratum — MemTable,
// each level-0 file, then each deeper level — reading only the data
// blocks whose filters pass, keeping a top-K min-heap by sequence number
// (Algorithms 5 and 8). Candidate validity ("is this still the newest
// version of the record?") is checked with GetLite: a metadata-only probe
// of the strata above the candidate, touching disk only to confirm bloom
// positives.

// stratum is one time-ordered component of the store: the MemTable
// (tables nil) or a set of SSTables (one table for an L0 stratum, a whole
// level otherwise).
type stratum struct {
	isMem  bool
	tables []*lsm.FileMeta
}

func (s stratum) maxSeq() uint64 {
	var m uint64
	for _, fm := range s.tables {
		if ms := fm.Table().MaxSeq(); ms > m {
			m = ms
		}
	}
	return m
}

// strataOf decomposes a view into newest-first strata.
func strataOf(v *lsm.View) []stratum {
	out := []stratum{{isMem: true}}
	for _, fm := range v.L0() {
		out = append(out, stratum{tables: []*lsm.FileMeta{fm}})
	}
	for l := 1; l <= v.MaxLevel(); l++ {
		if files := v.Level(l); len(files) > 0 {
			out = append(out, stratum{tables: files})
		}
	}
	return out
}

func (db *DB) embeddedLookup(attr, value string, k int) ([]Entry, error) {
	return db.embeddedScan(attr, value, value, k, true)
}

func (db *DB) embeddedRangeLookup(attr, lo, hi string, k int) ([]Entry, error) {
	return db.embeddedScan(attr, lo, hi, k, true)
}

// scanLookup is the NoIndex baseline: the identical traversal with every
// data block a candidate and no MemTable B-tree.
func (db *DB) scanLookup(attr, lo, hi string, k int) ([]Entry, error) {
	return db.embeddedScan(attr, lo, hi, k, false)
}

func (db *DB) embeddedScan(attr, lo, hi string, k int, useFilters bool) ([]Entry, error) {
	var results []Entry
	err := db.primary.View(func(v *lsm.View) error {
		strata := strataOf(v)
		heap := newTopK(k)
		// seen guards against double-reporting a primary key on the
		// full-GET validation path (ablation); the GetLite path cannot
		// report duplicates because older versions are invalidated by the
		// stratum holding the newer one.
		var seen map[string]bool
		if db.opts.DisableGetLite {
			seen = map[string]bool{}
		}

		for si, s := range strata {
			if s.isMem {
				if err := db.embeddedScanMem(v, attr, lo, hi, heap, useFilters); err != nil {
					return err
				}
			} else {
				for _, fm := range s.tables {
					if heap.Full() && fm.Table().MaxSeq() <= heap.MinSeq() {
						continue // nothing here can improve the heap
					}
					if err := db.embeddedScanTable(v, strata, si, fm, attr, lo, hi, heap, useFilters, seen); err != nil {
						return err
					}
				}
			}
			// Paper: scan to the end of a level before deciding; stop once
			// no remaining stratum can hold a newer match.
			if heap.Full() {
				remainingMax := uint64(0)
				for _, r := range strata[si+1:] {
					if m := r.maxSeq(); m > remainingMax {
						remainingMax = m
					}
				}
				if remainingMax <= heap.MinSeq() {
					break
				}
			}
		}
		results = heap.Results()
		return nil
	})
	return results, err
}

// embeddedScanMem collects MemTable matches: through the secondary B-tree
// when the Embedded index is active, by direct scan for NoIndex. MemTable
// candidates are validated against the MemTable itself — any newer
// version of the key must live there too.
func (db *DB) embeddedScanMem(v *lsm.View, attr, lo, hi string, heap *topK, useFilters bool) error {
	if useFilters {
		tree := v.MemSecTree(attr)
		if tree == nil {
			return nil
		}
		tree.AscendRange(lo, hi, func(_ string, ps []btree.Posting) bool {
			for _, p := range ps {
				if !heap.Worth(p.Seq) {
					continue
				}
				val, seq, deleted, ok := v.MemGet(p.Key)
				if !ok || deleted || seq != p.Seq {
					continue // superseded within the MemTable
				}
				heap.Add(Entry{Key: string(p.Key), Value: append([]byte(nil), val...), Seq: seq})
			}
			return true
		})
		return nil
	}
	it := v.MemIter()
	var prevUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.Key()
		uk := ikey.UserKey(ik)
		newest := prevUser == nil || !bytes.Equal(prevUser, uk)
		prevUser = append(prevUser[:0], uk...)
		if !newest || ikey.KindOf(ik) == ikey.KindDelete {
			continue
		}
		av, ok := attrValue(it.Value(), attr)
		if !ok || av < lo || av > hi {
			continue
		}
		heap.Add(Entry{Key: string(uk), Value: append([]byte(nil), it.Value()...), Seq: ikey.Seq(ik)})
	}
	return nil
}

// embeddedScanTable reads the candidate blocks of one table and offers
// matches to the heap after a validity check against the strata above.
func (db *DB) embeddedScanTable(v *lsm.View, strata []stratum, si int, fm *lsm.FileMeta,
	attr, lo, hi string, heap *topK, useFilters bool, seen map[string]bool) error {

	tbl := fm.Table()
	var candidates []int
	if !useFilters {
		candidates = make([]int, tbl.NumBlocks())
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		if !db.opts.DisableFileZoneMap {
			if _, _, ok := tbl.FileZone(attr); !ok {
				return nil
			}
		}
		if lo == hi {
			candidates = tbl.SecondaryCandidates(attr, lo)
		} else {
			candidates = tbl.SecondaryRangeCandidates(attr, lo, hi)
		}
	}

	for _, bi := range candidates {
		it, err := tbl.BlockIterator(bi, false)
		if err != nil {
			return err
		}
		for it.Next() {
			ik := it.Key()
			if ikey.KindOf(ik) == ikey.KindDelete {
				continue
			}
			av, ok := attrValue(it.Value(), attr)
			if !ok || av < lo || av > hi {
				continue
			}
			seq := ikey.Seq(ik)
			if !heap.Worth(seq) {
				continue
			}
			pk := string(ikey.UserKey(ik))
			valid, err := db.candidateValid(v, strata, si, pk, seq, attr, lo, hi, seen)
			if err != nil {
				return err
			}
			if valid {
				heap.Add(Entry{Key: pk, Value: append([]byte(nil), it.Value()...), Seq: seq})
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// candidateValid implements GetLite (paper Algorithm 5): the candidate is
// valid iff no newer version of pk exists in the strata above it. Each
// table in the tree holds at most one version per user key (flush-time
// dedup), so within-stratum shadowing cannot occur. With DisableGetLite
// the check degrades to the paper's alternative — a full GET from the top
// with value comparison — which costs real block reads.
func (db *DB) candidateValid(v *lsm.View, strata []stratum, si int, pk string, seq uint64,
	attr, lo, hi string, seen map[string]bool) (bool, error) {

	if db.opts.DisableGetLite {
		if seen[pk] {
			return false, nil
		}
		value, ok, err := v.Get([]byte(pk))
		if err != nil || !ok {
			return false, err
		}
		av, ok := attrValue(value, attr)
		valid := ok && av >= lo && av <= hi
		if valid {
			seen[pk] = true
		}
		return valid, nil
	}

	pkb := []byte(pk)
	for _, s := range strata[:si] {
		if s.isMem {
			if _, _, _, ok := v.MemGet(pkb); ok {
				return false, nil // any MemTable version is newer
			}
			continue
		}
		for _, fm := range s.tables {
			tbl := fm.Table()
			if !tbl.MayContainPrimary(pkb) {
				continue // pure in-memory rejection: the common case
			}
			// Bloom positive: confirm with a real read so a false
			// positive cannot wrongly invalidate the candidate.
			_, _, found, err := tbl.Get(pkb)
			if err != nil {
				return false, err
			}
			if found {
				return false, nil
			}
		}
	}
	return true, nil
}
