package core

import (
	"bytes"
	"sync"

	"leveldbpp/internal/btree"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/sstable"
)

// The Embedded index (paper §3) keeps no separate table: every SSTable of
// the primary table carries per-block bloom filters and zone maps for each
// indexed attribute, plus a file-level zone map, all memory resident; the
// MemTable side is a B-tree from attribute value to postings.
//
// LOOKUP and RANGELOOKUP scan the store stratum by stratum — MemTable,
// each level-0 file, then each deeper level — reading only the data
// blocks whose filters pass, keeping a top-K min-heap by sequence number
// (Algorithms 5 and 8). Candidate validity ("is this still the newest
// version of the record?") is checked with GetLite: a metadata-only probe
// of the strata above the candidate, touching disk only to confirm bloom
// positives.

// stratum is one time-ordered component of the store: the MemTable, the
// frozen MemTable awaiting background flush (if any), or a set of
// SSTables (one table for an L0 stratum, a whole level otherwise).
type stratum struct {
	isMem  bool
	isImm  bool
	memMax uint64 // max seq of a MemTable stratum (tables empty)
	level  int    // LSM level of a table stratum (block attribution)
	tables []*lsm.FileMeta
}

func (s stratum) maxSeq() uint64 {
	if s.isMem || s.isImm {
		return s.memMax
	}
	var m uint64
	for _, fm := range s.tables {
		if ms := fm.Table().MaxSeq(); ms > m {
			m = ms
		}
	}
	return m
}

// strataOf decomposes a view into newest-first strata. The frozen
// MemTable (background mode) sits between the MemTable and level 0; its
// memMax matters for the early-exit check — without it a full heap would
// wrongly conclude no remaining stratum can improve it.
func strataOf(v *lsm.View) []stratum {
	out := []stratum{{isMem: true, memMax: v.MemMaxSeq()}}
	if v.HasImm() {
		out = append(out, stratum{isImm: true, memMax: v.ImmMaxSeq()})
	}
	for _, fm := range v.L0() {
		out = append(out, stratum{tables: []*lsm.FileMeta{fm}})
	}
	for l := 1; l <= v.MaxLevel(); l++ {
		if files := v.Level(l); len(files) > 0 {
			out = append(out, stratum{level: l, tables: files})
		}
	}
	return out
}

func (db *DB) embeddedLookup(attr, value string, k int, tr *metrics.Trace) ([]Entry, error) {
	return db.embeddedScan(attr, value, value, k, true, tr)
}

func (db *DB) embeddedRangeLookup(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	return db.embeddedScan(attr, lo, hi, k, true, tr)
}

// scanLookup is the NoIndex baseline: the identical traversal with every
// data block a candidate and no MemTable B-tree.
func (db *DB) scanLookup(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	return db.embeddedScan(attr, lo, hi, k, false, tr)
}

func (db *DB) embeddedScan(attr, lo, hi string, k int, useFilters bool, tr *metrics.Trace) ([]Entry, error) {
	var results []Entry
	err := db.primary.View(func(v *lsm.View) error {
		strata := strataOf(v)
		heap := newTopK(k)
		// seen guards against double-reporting a primary key on the
		// full-GET validation path (ablation); the GetLite path cannot
		// report duplicates because older versions are invalidated by the
		// stratum holding the newer one.
		var seen map[string]bool
		if db.opts.DisableGetLite {
			seen = map[string]bool{}
		}

		// Phase attribution is per stratum: MemTable strata to
		// mem_probe/imm_probe, SSTable strata — including the interleaved
		// GetLite validity probes — to index_probe, with block_load /
		// cache_hit sub-phases from the traced block reads.
		for si, s := range strata {
			if s.isMem || s.isImm {
				t0 := tr.Now()
				err := db.embeddedScanMem(v, s.isImm, attr, lo, hi, heap, useFilters)
				phase := metrics.PhaseMemProbe
				if s.isImm {
					phase = metrics.PhaseImmProbe
				}
				tr.Since(phase, t0)
				if err != nil {
					return err
				}
			} else if db.opts.LookupParallelism > 1 && len(s.tables) > 1 && seen == nil {
				t0 := tr.Now()
				err := db.embeddedScanStratumParallel(v, strata, si, attr, lo, hi, heap, useFilters)
				tr.Since(metrics.PhaseIndexProbe, t0)
				if err != nil {
					return err
				}
			} else {
				t0 := tr.Now()
				for _, fm := range s.tables {
					if heap.Full() && fm.Table().MaxSeq() <= heap.MinSeq() {
						continue // nothing here can improve the heap
					}
					if err := db.embeddedScanTable(v, strata, si, fm, attr, lo, hi, heap, useFilters, seen, tr); err != nil {
						tr.Since(metrics.PhaseIndexProbe, t0)
						return err
					}
				}
				tr.Since(metrics.PhaseIndexProbe, t0)
			}
			// Paper: scan to the end of a level before deciding; stop once
			// no remaining stratum can hold a newer match.
			if heap.Full() {
				remainingMax := uint64(0)
				for _, r := range strata[si+1:] {
					if m := r.maxSeq(); m > remainingMax {
						remainingMax = m
					}
				}
				if remainingMax <= heap.MinSeq() {
					break
				}
			}
		}
		results = heap.Results()
		return nil
	})
	return results, err
}

// embeddedScanMem collects matches from a MemTable stratum (the live
// MemTable, or with imm set the frozen one): through the secondary B-tree
// when the Embedded index is active, by direct scan for NoIndex.
// Candidates are validated against the stratum itself — and, for the
// frozen MemTable, against the live MemTable, whose every version is
// newer.
func (db *DB) embeddedScanMem(v *lsm.View, imm bool, attr, lo, hi string, heap *topK, useFilters bool) error {
	get := v.MemGet
	if imm {
		get = v.ImmGet
	}
	shadowedByMem := func(pk []byte) bool {
		if !imm {
			return false
		}
		_, _, _, ok := v.MemGet(pk)
		return ok
	}
	if useFilters {
		tree := v.MemSecTree(attr)
		if imm {
			tree = v.ImmSecTree(attr)
		}
		if tree == nil {
			return nil
		}
		tree.AscendRange(lo, hi, func(_ string, ps []btree.Posting) bool {
			for _, p := range ps {
				if !heap.Worth(p.Seq) {
					continue
				}
				val, seq, deleted, ok := get(p.Key)
				if !ok || deleted || seq != p.Seq {
					continue // superseded within this MemTable
				}
				if shadowedByMem(p.Key) {
					continue // live MemTable holds a newer version
				}
				heap.Add(Entry{Key: string(p.Key), Value: append([]byte(nil), val...), Seq: seq})
			}
			return true
		})
		return nil
	}
	it := v.MemIter()
	if imm {
		it = v.ImmIter()
	}
	if it == nil {
		return nil
	}
	var prevUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := it.Key()
		uk := ikey.UserKey(ik)
		newest := prevUser == nil || !bytes.Equal(prevUser, uk)
		prevUser = append(prevUser[:0], uk...)
		if !newest || ikey.KindOf(ik) == ikey.KindDelete {
			continue
		}
		if shadowedByMem(uk) {
			continue
		}
		av, ok := attrValue(it.Value(), attr)
		if !ok || av < lo || av > hi {
			continue
		}
		heap.Add(Entry{Key: string(uk), Value: append([]byte(nil), it.Value()...), Seq: ikey.Seq(ik)})
	}
	return nil
}

// embeddedScanTable reads the candidate blocks of one table and offers
// matches to the heap after a validity check against the strata above.
func (db *DB) embeddedScanTable(v *lsm.View, strata []stratum, si int, fm *lsm.FileMeta,
	attr, lo, hi string, heap *topK, useFilters bool, seen map[string]bool, tr *metrics.Trace) error {

	tbl := fm.Table()
	var candidates []int
	if !useFilters {
		candidates = make([]int, tbl.NumBlocks())
		for i := range candidates {
			candidates[i] = i
		}
		tr.Count(metrics.CtrCandidateBlocks, int64(len(candidates)))
	} else {
		if !db.opts.DisableFileZoneMap {
			if _, _, ok := tbl.FileZone(attr); !ok {
				return nil
			}
		}
		if lo == hi {
			candidates = tbl.SecondaryCandidatesTraced(attr, lo, tr)
		} else {
			candidates = tbl.SecondaryRangeCandidatesTraced(attr, lo, hi, tr)
		}
	}

	for _, bi := range candidates {
		m := tr.BlockMark()
		it, err := tbl.BlockIteratorTraced(bi, false, tr)
		tr.CountLevelSince(strata[si].level, m)
		if err != nil {
			return err
		}
		matchedInBlock := false
		for it.Next() {
			ik := it.Key()
			if ikey.KindOf(ik) == ikey.KindDelete {
				continue
			}
			av, ok := attrValue(it.Value(), attr)
			if !ok || av < lo || av > hi {
				continue
			}
			matchedInBlock = true
			seq := ikey.Seq(ik)
			if !heap.Worth(seq) {
				continue
			}
			pk := string(ikey.UserKey(ik))
			valid, err := db.candidateValid(v, strata, si, pk, seq, attr, lo, hi, seen, tr)
			if err != nil {
				return err
			}
			if valid {
				heap.Add(Entry{Key: pk, Value: append([]byte(nil), it.Value()...), Seq: seq})
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
		if useFilters && lo == hi && !matchedInBlock {
			// The block's secondary bloom passed for this exact value but
			// the block held no match: a secondary-filter false positive.
			tr.Count(metrics.CtrBloomFalsePositives, 1)
		}
	}
	return nil
}

// candidateValid implements GetLite (paper Algorithm 5): the candidate is
// valid iff no newer version of pk exists in the strata above it. Each
// table in the tree holds at most one version per user key (flush-time
// dedup), so within-stratum shadowing cannot occur. With DisableGetLite
// the check degrades to the paper's alternative — a full GET from the top
// with value comparison — which costs real block reads.
func (db *DB) candidateValid(v *lsm.View, strata []stratum, si int, pk string, seq uint64,
	attr, lo, hi string, seen map[string]bool, tr *metrics.Trace) (bool, error) {

	tr.Count(metrics.CtrValidations, 1)
	if db.opts.DisableGetLite {
		if seen[pk] {
			return false, nil
		}
		tr.IOOnlyBegin()
		value, ok, err := v.GetTraced([]byte(pk), tr)
		tr.IOOnlyEnd()
		if err != nil || !ok {
			return false, err
		}
		av, ok := attrValue(value, attr)
		valid := ok && av >= lo && av <= hi
		if valid {
			seen[pk] = true
		}
		return valid, nil
	}

	pkb := []byte(pk)
	var sc sstable.GetScratch // reused across every bloom-positive probe
	sc.Trace = tr
	for _, s := range strata[:si] {
		if s.isMem {
			if _, _, _, ok := v.MemGet(pkb); ok {
				return false, nil // any MemTable version is newer
			}
			continue
		}
		if s.isImm {
			if _, _, _, ok := v.ImmGet(pkb); ok {
				return false, nil // any frozen-MemTable version is newer
			}
			continue
		}
		for _, fm := range s.tables {
			tbl := fm.Table()
			if !tbl.MayContainPrimaryTraced(pkb, tr) {
				continue // pure in-memory rejection: the common case
			}
			// Bloom positive: confirm with a real read so a false
			// positive cannot wrongly invalidate the candidate.
			m := tr.BlockMark()
			_, _, found, err := tbl.GetWith(&sc, pkb)
			tr.CountLevelSince(s.level, m)
			if err != nil {
				return false, err
			}
			if found {
				return false, nil
			}
		}
	}
	return true, nil
}

// embeddedScanStratumParallel is the LookupParallelism > 1 variant of the
// per-stratum table loop: candidate collection and validity probing for
// each SSTable run on their own goroutines, and the results fold into the
// heap afterwards. Because the Worth pre-check only prunes validation
// work (membership is decided by Add, on unique sequence numbers), the
// final heap matches the sequential scan exactly — the parallel path may
// just validate a few extra candidates.
func (db *DB) embeddedScanStratumParallel(v *lsm.View, strata []stratum, si int,
	attr, lo, hi string, heap *topK, useFilters bool) error {

	tables := strata[si].tables
	full, minSeq := heap.Full(), heap.MinSeq()
	worth := func(seq uint64) bool { return !full || seq > minSeq }

	workers := db.opts.LookupParallelism
	if workers > len(tables) {
		workers = len(tables)
	}
	results := make([][]Entry, len(tables))
	errs := make([]error, len(tables))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range next {
				fm := tables[ti]
				if full && fm.Table().MaxSeq() <= minSeq {
					continue // nothing here can improve the heap
				}
				results[ti], errs[ti] = db.embeddedCollectTable(v, strata, si, fm, attr, lo, hi, worth, useFilters)
			}
		}()
	}
	for ti := range tables {
		next <- ti
	}
	close(next)
	wg.Wait()
	for ti := range tables {
		if errs[ti] != nil {
			return errs[ti]
		}
		for _, e := range results[ti] {
			heap.Add(e)
		}
	}
	return nil
}

// embeddedCollectTable is embeddedScanTable with the heap factored out:
// it returns the table's validated candidates so a parallel caller can
// fold them in after all workers finish. GetLite validation only (the
// full-GET ablation path shares a seen map and stays sequential).
func (db *DB) embeddedCollectTable(v *lsm.View, strata []stratum, si int, fm *lsm.FileMeta,
	attr, lo, hi string, worth func(uint64) bool, useFilters bool) ([]Entry, error) {

	tbl := fm.Table()
	var candidates []int
	if !useFilters {
		candidates = make([]int, tbl.NumBlocks())
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		if !db.opts.DisableFileZoneMap {
			if _, _, ok := tbl.FileZone(attr); !ok {
				return nil, nil
			}
		}
		if lo == hi {
			candidates = tbl.SecondaryCandidates(attr, lo)
		} else {
			candidates = tbl.SecondaryRangeCandidates(attr, lo, hi)
		}
	}

	var out []Entry
	for _, bi := range candidates {
		it, err := tbl.BlockIterator(bi, false)
		if err != nil {
			return nil, err
		}
		for it.Next() {
			ik := it.Key()
			if ikey.KindOf(ik) == ikey.KindDelete {
				continue
			}
			av, ok := attrValue(it.Value(), attr)
			if !ok || av < lo || av > hi {
				continue
			}
			seq := ikey.Seq(ik)
			if !worth(seq) {
				continue
			}
			pk := string(ikey.UserKey(ik))
			valid, err := db.candidateValid(v, strata, si, pk, seq, attr, lo, hi, nil, nil)
			if err != nil {
				return nil, err
			}
			if valid {
				out = append(out, Entry{Key: pk, Value: append([]byte(nil), it.Value()...), Seq: seq})
			}
		}
		if err := it.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
