package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSoak is a long randomized workout for every index kind: mixed
// puts/updates/deletes/batches with continuous lookup validation against
// the model, periodic reopen (WAL replay), CompactRange, Checkpoint, and
// a final full audit. Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(kind)
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()
			rng := rand.New(rand.NewSource(2018))
			const users = 30
			nextKey := 0

			verify := func(tag string) {
				for i := 0; i < 10; i++ {
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					for _, k := range []int{1, 7, 0} {
						got, err := db.Lookup("UserID", user, k)
						if err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						want := m.lookup("UserID", user, user, k)
						if !sameKeys(keysOf(got), want) {
							t.Fatalf("%s user=%s k=%d:\n got %v\nwant %v", tag, user, k, keysOf(got), want)
						}
					}
				}
			}

			for round := 0; round < 4; round++ {
				for i := 0; i < 1200; i++ {
					switch rng.Intn(12) {
					case 0: // delete
						if nextKey > 0 {
							key := fmt.Sprintf("t%06d", rng.Intn(nextKey))
							if err := db.Delete(key); err != nil {
								t.Fatal(err)
							}
							m.del(key)
						}
					case 1: // atomic batch of 5 puts
						var b Batch
						for j := 0; j < 5; j++ {
							key := fmt.Sprintf("t%06d", nextKey)
							user := fmt.Sprintf("u%03d", rng.Intn(users))
							b.Put(key, tweetDoc(user, nextKey, "soak batch"))
							m.put(key, user, nextKey)
							nextKey++
						}
						if err := db.Apply(&b); err != nil {
							t.Fatal(err)
						}
					case 2: // update existing
						if nextKey > 0 {
							key := fmt.Sprintf("t%06d", rng.Intn(nextKey))
							user := fmt.Sprintf("u%03d", rng.Intn(users))
							if err := db.Put(key, tweetDoc(user, nextKey, "soak update")); err != nil {
								t.Fatal(err)
							}
							m.put(key, user, nextKey)
						}
					default: // fresh put
						key := fmt.Sprintf("t%06d", nextKey)
						user := fmt.Sprintf("u%03d", rng.Intn(users))
						if err := db.Put(key, tweetDoc(user, nextKey, "soak put with some body text")); err != nil {
							t.Fatal(err)
						}
						m.put(key, user, nextKey)
						nextKey++
					}
				}
				verify(fmt.Sprintf("round %d", round))

				switch round {
				case 0: // crash-reopen
					if err := db.Close(); err != nil {
						t.Fatal(err)
					}
					db, err = Open(dir, opts)
					if err != nil {
						t.Fatal(err)
					}
					verify("after reopen")
				case 1: // manual compaction
					if err := db.CompactRange("", ""); err != nil {
						t.Fatal(err)
					}
					verify("after compact")
				case 2: // checkpoint and verify the snapshot independently
					ckpt := dir + "-ckpt"
					if err := db.Checkpoint(ckpt); err != nil {
						t.Fatal(err)
					}
					snap, err := Open(ckpt, opts)
					if err != nil {
						t.Fatal(err)
					}
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					a, err1 := db.Lookup("UserID", user, 5)
					b, err2 := snap.Lookup("UserID", user, 5)
					if err1 != nil || err2 != nil || !sameKeys(keysOf(a), keysOf(b)) {
						t.Fatalf("checkpoint diverged: %v vs %v (%v %v)", keysOf(a), keysOf(b), err1, err2)
					}
					snap.Close()
				}
			}

			reports, err := db.Verify()
			if err != nil {
				t.Fatal(err)
			}
			for name, rep := range reports {
				if !rep.OK() {
					t.Fatalf("final audit %s: %v", name, rep.Problems)
				}
			}
			db.Close()
		})
	}
}
