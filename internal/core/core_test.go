package core

import (
	"fmt"
	"math/rand"
	"testing"
)

var allKinds = []IndexKind{IndexNone, IndexEmbedded, IndexEager, IndexLazy, IndexComposite}

// smallOptions makes flushes and compactions happen within a few hundred
// writes so every index path (MemTable, L0, deeper levels) is exercised.
func smallOptions(kind IndexKind) Options {
	return Options{
		Index:               kind,
		Attrs:               []string{"UserID", "CreationTime"},
		MemTableBytes:       8 << 10,
		BlockSize:           1 << 10,
		BaseLevelBytes:      32 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 3,
		MaxLevels:           5,
	}
}

func openKind(t testing.TB, kind IndexKind) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), smallOptions(kind))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func tweetDoc(user string, ts int, text string) []byte {
	return []byte(fmt.Sprintf(`{"UserID":%q,"CreationTime":"%010d","Text":%q}`, user, ts, text))
}

// model is the reference implementation: a map of current records with
// insertion counters.
type model struct {
	recs    map[string]modelRec
	counter uint64
}

type modelRec struct {
	user string
	time string
	seq  uint64
}

func newModel() *model { return &model{recs: map[string]modelRec{}} }

func (m *model) put(key, user string, ts int) {
	m.counter++
	m.recs[key] = modelRec{user: user, time: fmt.Sprintf("%010d", ts), seq: m.counter}
}

func (m *model) del(key string) {
	m.counter++
	delete(m.recs, key)
}

// lookup returns primary keys whose attr ∈ [lo, hi], newest first, top k.
func (m *model) lookup(attr, lo, hi string, k int) []string {
	type cand struct {
		key string
		seq uint64
	}
	var cs []cand
	for key, r := range m.recs {
		v := r.user
		if attr == "CreationTime" {
			v = r.time
		}
		if v >= lo && v <= hi {
			cs = append(cs, cand{key, r.seq})
		}
	}
	// Sort newest first.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].seq > cs[j-1].seq; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if k > 0 && len(cs) > k {
		cs = cs[:k]
	}
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.key
	}
	return out
}

func keysOf(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBasicOperationsAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			if err := db.Put("t1", tweetDoc("u1", 100, "hello")); err != nil {
				t.Fatal(err)
			}
			if err := db.Put("t2", tweetDoc("u1", 101, "world")); err != nil {
				t.Fatal(err)
			}
			if err := db.Put("t3", tweetDoc("u2", 102, "third")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := db.Get("t1")
			if err != nil || !ok {
				t.Fatalf("Get: %v %v", ok, err)
			}
			if string(v) != string(tweetDoc("u1", 100, "hello")) {
				t.Fatalf("Get value = %s", v)
			}

			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t2", "t1"}) {
				t.Fatalf("Lookup(u1) = %v", keysOf(got))
			}
			got, err = db.Lookup("UserID", "u1", 1)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t2"}) {
				t.Fatalf("Lookup(u1, k=1) = %v", keysOf(got))
			}
			got, err = db.Lookup("UserID", "nobody", 0)
			if err != nil || len(got) != 0 {
				t.Fatalf("Lookup(nobody) = %v, %v", keysOf(got), err)
			}

			got, err = db.RangeLookup("CreationTime", "0000000100", "0000000101", 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t2", "t1"}) {
				t.Fatalf("RangeLookup = %v", keysOf(got))
			}

			if _, err := db.Lookup("NoSuchAttr", "x", 1); err != ErrUnknownAttr {
				t.Fatalf("unknown attr error = %v", err)
			}
		})
	}
}

func TestUpdateMovesKeyBetweenAttrValues(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", tweetDoc("u1", 100, "original"))
			db.Put("t1", tweetDoc("u2", 100, "moved")) // UserID changes u1 → u2
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("stale index entry returned: %v", keysOf(got))
			}
			got, err = db.Lookup("UserID", "u2", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t1"}) {
				t.Fatalf("Lookup(u2) = %v, %v", keysOf(got), err)
			}
		})
	}
}

func TestDeleteRemovesFromLookups(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", tweetDoc("u1", 100, "a"))
			db.Put("t2", tweetDoc("u1", 101, "b"))
			if err := db.Delete("t1"); err != nil {
				t.Fatal(err)
			}
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil || !sameKeys(keysOf(got), []string{"t2"}) {
				t.Fatalf("after delete: %v, %v", keysOf(got), err)
			}
			if err := db.Delete("never-existed"); err != nil {
				t.Fatalf("deleting a missing key: %v", err)
			}
		})
	}
}

// TestDifferentialAllKinds runs the same randomized workload — puts,
// attribute-changing updates, deletes — through every index kind and
// checks every lookup against the reference model, at several top-K
// settings, with enough volume to push data through flushes and multiple
// compaction levels.
func TestDifferentialAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			m := newModel()
			rng := rand.New(rand.NewSource(42))

			users := 25
			nOps := 4000
			if testing.Short() {
				nOps = 1000
			}
			check := func(opIdx int) {
				for _, k := range []int{1, 5, 0} {
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					got, err := db.Lookup("UserID", user, k)
					if err != nil {
						t.Fatalf("op %d: Lookup: %v", opIdx, err)
					}
					want := m.lookup("UserID", user, user, k)
					if !sameKeys(keysOf(got), want) {
						t.Fatalf("op %d k=%d user=%s:\n got %v\nwant %v", opIdx, k, user, keysOf(got), want)
					}
				}
				// Range over CreationTime.
				lo := rng.Intn(nOps)
				hi := lo + rng.Intn(200)
				loS, hiS := fmt.Sprintf("%010d", lo), fmt.Sprintf("%010d", hi)
				for _, k := range []int{3, 0} {
					got, err := db.RangeLookup("CreationTime", loS, hiS, k)
					if err != nil {
						t.Fatalf("op %d: RangeLookup: %v", opIdx, err)
					}
					want := m.lookup("CreationTime", loS, hiS, k)
					if !sameKeys(keysOf(got), want) {
						t.Fatalf("op %d k=%d range=[%s,%s]:\n got %v\nwant %v", opIdx, k, loS, hiS, keysOf(got), want)
					}
				}
			}

			for i := 0; i < nOps; i++ {
				switch r := rng.Intn(20); {
				case r == 0: // delete an existing key
					key := fmt.Sprintf("t%05d", rng.Intn(i+1))
					if err := db.Delete(key); err != nil {
						t.Fatal(err)
					}
					m.del(key)
				case r <= 3: // update an existing key (attr may change)
					key := fmt.Sprintf("t%05d", rng.Intn(i+1))
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					if err := db.Put(key, tweetDoc(user, i, "updated")); err != nil {
						t.Fatal(err)
					}
					m.put(key, user, i)
				default: // fresh insert
					key := fmt.Sprintf("t%05d", i)
					user := fmt.Sprintf("u%03d", rng.Intn(users))
					if err := db.Put(key, tweetDoc(user, i, "tweet text goes here for padding")); err != nil {
						t.Fatal(err)
					}
					m.put(key, user, i)
				}
				if i%500 == 499 {
					check(i)
				}
			}
			check(nOps)
		})
	}
}

func TestTopKReturnsNewestFirstWithValues(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			for i := 0; i < 50; i++ {
				db.Put(fmt.Sprintf("t%03d", i), tweetDoc("u1", i, fmt.Sprintf("msg-%d", i)))
			}
			got, err := db.Lookup("UserID", "u1", 3)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t049", "t048", "t047"}) {
				t.Fatalf("top-3 = %v", keysOf(got))
			}
			// Values must be the current documents.
			if want := string(tweetDoc("u1", 49, "msg-49")); string(got[0].Value) != want {
				t.Fatalf("value = %s", got[0].Value)
			}
			// Seq ordering strictly decreasing.
			for i := 1; i < len(got); i++ {
				if got[i].Seq >= got[i-1].Seq {
					t.Fatal("results not ordered by recency")
				}
			}
		})
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(kind)
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 800; i++ {
				db.Put(fmt.Sprintf("t%04d", i), tweetDoc(fmt.Sprintf("u%02d", i%10), i, "persisted tweet"))
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			got, err := db2.Lookup("UserID", "u03", 5)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"t0793", "t0783", "t0773", "t0763", "t0753"}
			if !sameKeys(keysOf(got), want) {
				t.Fatalf("after reopen: %v want %v", keysOf(got), want)
			}
		})
	}
}

func TestEmbeddedAblationsSameResults(t *testing.T) {
	base := openKind(t, IndexEmbedded)
	optsNoLite := smallOptions(IndexEmbedded)
	optsNoLite.DisableGetLite = true
	noLite, err := Open(t.TempDir(), optsNoLite)
	if err != nil {
		t.Fatal(err)
	}
	defer noLite.Close()
	optsNoZone := smallOptions(IndexEmbedded)
	optsNoZone.DisableFileZoneMap = true
	noZone, err := Open(t.TempDir(), optsNoZone)
	if err != nil {
		t.Fatal(err)
	}
	defer noZone.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("t%05d", i)
		doc := tweetDoc(fmt.Sprintf("u%02d", rng.Intn(20)), i, "ablation test tweet")
		for _, db := range []*DB{base, noLite, noZone} {
			if err := db.Put(key, doc); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := 0; u < 20; u++ {
		user := fmt.Sprintf("u%02d", u)
		for _, k := range []int{1, 10, 0} {
			want, err := base.Lookup("UserID", user, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, db := range map[string]*DB{"noGetLite": noLite, "noFileZone": noZone} {
				got, err := db.Lookup("UserID", user, k)
				if err != nil {
					t.Fatal(err)
				}
				if !sameKeys(keysOf(got), keysOf(want)) {
					t.Fatalf("%s k=%d user=%s: %v want %v", name, k, user, keysOf(got), keysOf(want))
				}
			}
		}
	}
}

func TestIndexCostCharacteristics(t *testing.T) {
	// Sanity-check the paper's headline cost relationships on a small
	// ingest: Embedded writes no index-table blocks; Eager's index I/O
	// exceeds Lazy's (read-modify-write vs blind fragment writes).
	write := func(kind IndexKind) Stats {
		db := openKind(t, kind)
		for i := 0; i < 3000; i++ {
			db.Put(fmt.Sprintf("t%05d", i), tweetDoc(fmt.Sprintf("u%02d", i%30), i, "cost characteristics tweet body"))
		}
		db.Flush()
		return db.Stats()
	}
	emb := write(IndexEmbedded)
	eager := write(IndexEager)
	lazy := write(IndexLazy)

	if emb.Index.TotalIO() != 0 {
		t.Errorf("Embedded index-table I/O should be zero, got %d", emb.Index.TotalIO())
	}
	if eagerIO, lazyIO := eager.Index.TotalIO(), lazy.Index.TotalIO(); eagerIO <= lazyIO {
		t.Errorf("Eager index I/O (%d) should exceed Lazy (%d)", eagerIO, lazyIO)
	}
	if eager.Index.BlockReads == 0 {
		t.Error("Eager must read the index table on writes")
	}
	if lazy.Index.BlockReads != 0 {
		t.Errorf("Lazy writes must not read the index table, got %d reads", lazy.Index.BlockReads)
	}
}

func TestRangeLookupInvertedAndEmpty(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", tweetDoc("u5", 100, "x"))
			if got, err := db.RangeLookup("UserID", "u9", "u1", 0); err != nil || len(got) != 0 {
				t.Fatalf("inverted range: %v %v", got, err)
			}
			if got, err := db.RangeLookup("UserID", "v0", "v9", 0); err != nil || len(got) != 0 {
				t.Fatalf("empty range: %v %v", got, err)
			}
		})
	}
}

func BenchmarkLookupTop10(b *testing.B) {
	for _, kind := range []IndexKind{IndexEmbedded, IndexEager, IndexLazy, IndexComposite} {
		b.Run(kind.String(), func(b *testing.B) {
			db, err := Open(b.TempDir(), smallOptions(kind))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 5000; i++ {
				db.Put(fmt.Sprintf("t%06d", i), tweetDoc(fmt.Sprintf("u%02d", i%50), i, "benchmark tweet body text"))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Lookup("UserID", fmt.Sprintf("u%02d", i%50), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestWAMFOrderingEagerVsLazy(t *testing.T) {
	// Table 5: WAMF_Eager = PL_S × WAMF_Lazy — Eager rewrites whole
	// posting lists on every write. Measure both on identical ingests.
	run := func(kind IndexKind) float64 {
		db := openKind(t, kind)
		for i := 0; i < 3000; i++ {
			db.Put(fmt.Sprintf("t%05d", i), tweetDoc(fmt.Sprintf("u%02d", i%25), i, "wamf measurement tweet"))
		}
		db.Flush()
		_, idx := db.WriteAmplification()
		return idx["UserID"]
	}
	eager, lazy := run(IndexEager), run(IndexLazy)
	if eager <= 2*lazy {
		t.Errorf("Eager index WAMF (%.2f) must far exceed Lazy (%.2f)", eager, lazy)
	}
	t.Logf("measured index-table WAMF: eager=%.1f lazy=%.1f ratio=%.1f", eager, lazy, eager/lazy)
}
