package core

import (
	"fmt"
	"testing"
)

// ioTotals flattens a Stats snapshot into the totals the trace-counter
// taxonomy also records, so EXPLAIN reports can be checked against the
// engine's own I/O accounting.
type ioTotals struct {
	blockReads     int64
	cacheHits      int64
	pointGets      int64
	entriesDecoded int64
	postingEntries int64
	fragments      int64
}

func totals(s Stats) ioTotals {
	return ioTotals{
		blockReads:     s.Primary.BlockReads + s.Index.BlockReads,
		cacheHits:      s.Primary.CacheHits + s.Index.CacheHits,
		pointGets:      s.Primary.PointGets + s.Index.PointGets,
		entriesDecoded: s.Primary.EntriesDecoded + s.Index.EntriesDecoded,
		postingEntries: s.Primary.PostingsEntriesDecoded + s.Index.PostingsEntriesDecoded,
		fragments:      s.Primary.FragmentsMerged + s.Index.FragmentsMerged,
	}
}

func (a ioTotals) sub(b ioTotals) ioTotals {
	return ioTotals{
		blockReads:     a.blockReads - b.blockReads,
		cacheHits:      a.cacheHits - b.cacheHits,
		pointGets:      a.pointGets - b.pointGets,
		entriesDecoded: a.entriesDecoded - b.entriesDecoded,
		postingEntries: a.postingEntries - b.postingEntries,
		fragments:      a.fragments - b.fragments,
	}
}

// openGolden opens a DB with tracing off — EXPLAIN must attribute I/O via
// its detached trace regardless of the sampling rate — and settles the
// tree with a full compaction so no background work moves the stats
// between the snapshots the golden comparison takes.
func openGolden(t *testing.T, kind IndexKind) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{
		Index:         kind,
		Attrs:         []string{"UserID", "CreationTime"},
		MemTableBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < 1500; i++ {
		doc := fmt.Sprintf(`{"UserID":"u%02d","CreationTime":"%010d","pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`, i%5, i)
		if err := db.Put(fmt.Sprintf("t%05d", i), []byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange("", ""); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainGoldenLookup: on every index kind, the EXPLAIN report's trace
// counters must equal the IOStats deltas the same LOOKUP produced — both
// sides increment at the same sites, so any divergence means a phase is
// unattributed.
func TestExplainGoldenLookup(t *testing.T) {
	for _, kind := range []IndexKind{IndexNone, IndexEmbedded, IndexEager, IndexLazy, IndexComposite} {
		t.Run(kind.String(), func(t *testing.T) {
			db := openGolden(t, kind)
			before := totals(db.Stats())
			out, rep, err := db.ExplainLookup("UserID", "u01", 10)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil || len(out) == 0 {
				t.Fatalf("no report or no results (rep=%v, %d results)", rep, len(out))
			}
			d := totals(db.Stats()).sub(before)

			if rep.IO.BlockReads != d.blockReads {
				t.Errorf("BlockReads: explain=%d stats-delta=%d", rep.IO.BlockReads, d.blockReads)
			}
			if rep.IO.CacheHits != d.cacheHits {
				t.Errorf("CacheHits: explain=%d stats-delta=%d", rep.IO.CacheHits, d.cacheHits)
			}
			if rep.IO.PointGets != d.pointGets {
				t.Errorf("PointGets: explain=%d stats-delta=%d", rep.IO.PointGets, d.pointGets)
			}
			if rep.IO.EntriesDecoded != d.entriesDecoded {
				t.Errorf("EntriesDecoded: explain=%d stats-delta=%d", rep.IO.EntriesDecoded, d.entriesDecoded)
			}
			if kind == IndexEager || kind == IndexLazy {
				if rep.IO.PostingEntries != d.postingEntries {
					t.Errorf("PostingEntries: explain=%d stats-delta=%d", rep.IO.PostingEntries, d.postingEntries)
				}
				if kind == IndexLazy && rep.IO.PostingFragments != d.fragments {
					t.Errorf("PostingFragments: explain=%d stats-delta=%d", rep.IO.PostingFragments, d.fragments)
				}
			}
			if rep.ObservedIO != rep.IO.BlockReads+rep.IO.CacheHits {
				t.Errorf("ObservedIO %d != BlockReads+CacheHits %d",
					rep.ObservedIO, rep.IO.BlockReads+rep.IO.CacheHits)
			}
			if rep.PredictedIO <= 0 || rep.Formula == "" {
				t.Errorf("missing prediction: predicted=%.1f formula=%q", rep.PredictedIO, rep.Formula)
			}
			if rep.Plan == "" || rep.Index != kind.String() {
				t.Errorf("bad plan/index labels: %+v", rep)
			}
		})
	}
}

// TestExplainGoldenRangeLookup repeats the golden comparison for
// RANGELOOKUP on the block-access counters.
func TestExplainGoldenRangeLookup(t *testing.T) {
	for _, kind := range []IndexKind{IndexNone, IndexEmbedded, IndexEager, IndexLazy, IndexComposite} {
		t.Run(kind.String(), func(t *testing.T) {
			db := openGolden(t, kind)
			before := totals(db.Stats())
			out, rep, err := db.ExplainRangeLookup("CreationTime", "0000000000", "0000000500", 10)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil || len(out) == 0 {
				t.Fatalf("no report or no results (rep=%v, %d results)", rep, len(out))
			}
			d := totals(db.Stats()).sub(before)
			if rep.IO.BlockReads != d.blockReads {
				t.Errorf("BlockReads: explain=%d stats-delta=%d", rep.IO.BlockReads, d.blockReads)
			}
			if rep.IO.CacheHits != d.cacheHits {
				t.Errorf("CacheHits: explain=%d stats-delta=%d", rep.IO.CacheHits, d.cacheHits)
			}
			if rep.IO.PointGets != d.pointGets {
				t.Errorf("PointGets: explain=%d stats-delta=%d", rep.IO.PointGets, d.pointGets)
			}
			if rep.PredictedIO <= 0 {
				t.Errorf("missing prediction: %+v", rep)
			}
		})
	}
}

// TestExplainGoldenGet: GET's report must attribute its point access and
// block reads exactly, and predict the paper's single logical I/O.
func TestExplainGoldenGet(t *testing.T) {
	db := openGolden(t, IndexLazy)
	before := totals(db.Stats())
	v, ok, rep, err := db.ExplainGet("t00042")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(v) == 0 {
		t.Fatal("t00042 not found")
	}
	d := totals(db.Stats()).sub(before)
	if rep.IO.PointGets != d.pointGets {
		t.Errorf("PointGets: explain=%d stats-delta=%d", rep.IO.PointGets, d.pointGets)
	}
	if rep.IO.BlockReads != d.blockReads {
		t.Errorf("BlockReads: explain=%d stats-delta=%d", rep.IO.BlockReads, d.blockReads)
	}
	if rep.PredictedIO != 1 {
		t.Errorf("GET predicted %.1f, want 1", rep.PredictedIO)
	}
	if rep.Plan != "point_get" {
		t.Errorf("GET plan = %q", rep.Plan)
	}
}

// TestExplainUnknownAttr: EXPLAIN enforces the same attribute check as the
// plain query path.
func TestExplainUnknownAttr(t *testing.T) {
	db := openGolden(t, IndexLazy)
	if _, _, err := db.ExplainLookup("Nope", "x", 1); err != ErrUnknownAttr {
		t.Fatalf("err = %v, want ErrUnknownAttr", err)
	}
	if _, _, err := db.ExplainRangeLookup("Nope", "a", "b", 1); err != ErrUnknownAttr {
		t.Fatalf("err = %v, want ErrUnknownAttr", err)
	}
}
