package core

import (
	"fmt"
	"reflect"
	"testing"

	"leveldbpp/internal/postings"
)

// postingsWorkload drives enough writes, overwrites and deletes through db
// to push posting lists through the MemTable, L0, and deeper levels.
func postingsWorkload(t *testing.T, db *DB) {
	t.Helper()
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("t%04d", i)
		user := fmt.Sprintf("u%02d", i%7)
		if err := db.Put(key, tweetDoc(user, 1000+i, fmt.Sprintf("text-%04d", i))); err != nil {
			t.Fatal(err)
		}
		if i%23 == 0 && i > 0 {
			// Overwrite with a different UserID: exercises superseded
			// postings and candidate validation.
			if err := db.Put(fmt.Sprintf("t%04d", i-7), tweetDoc("u88", 1500+i, "moved")); err != nil {
				t.Fatal(err)
			}
		}
		if i%31 == 0 && i > 0 {
			if err := db.Delete(fmt.Sprintf("t%04d", i-5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

type postingsResult struct {
	stats   Stats
	primary int64
	index   int64
	scan    []string
	lookups [][]Entry
	rngs    [][]Entry
}

func collectPostingsResult(t *testing.T, db *DB) postingsResult {
	t.Helper()
	var r postingsResult
	r.stats = db.Stats()
	var err error
	if r.primary, r.index, err = db.DiskUsage(); err != nil {
		t.Fatal(err)
	}
	if err := db.Scan("", "", func(k string, _ []byte) bool {
		r.scan = append(r.scan, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, user := range []string{"u03", "u88", "u00"} {
		for _, k := range []int{5, 0} {
			res, err := db.Lookup("UserID", user, k)
			if err != nil {
				t.Fatal(err)
			}
			r.lookups = append(r.lookups, res)
		}
	}
	for _, k := range []int{10, 0} {
		res, err := db.RangeLookup("CreationTime", "0000001100", "0000001300", k)
		if err != nil {
			t.Fatal(err)
		}
		r.rngs = append(r.rngs, res)
	}
	return r
}

// TestPostingsFormatEquivalence runs the same workload under v1 and v2
// posting encodings for all five kinds: every observable result (scan,
// LOOKUP, RANGELOOKUP) must be identical. Kinds that store no posting
// lists must additionally match on every I/O counter and on-disk byte;
// for Eager/Lazy the v2 index must be no larger on disk.
func TestPostingsFormatEquivalence(t *testing.T) {
	run := func(t *testing.T, kind IndexKind, f postings.Format) postingsResult {
		opts := smallOptions(kind)
		opts.PostingsFormat = f
		db, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		postingsWorkload(t, db)
		return collectPostingsResult(t, db)
	}

	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			v1 := run(t, kind, postings.FormatV1)
			v2 := run(t, kind, postings.FormatV2)
			if !reflect.DeepEqual(v1.scan, v2.scan) {
				t.Errorf("scan differs: v1 %d keys, v2 %d keys", len(v1.scan), len(v2.scan))
			}
			if !reflect.DeepEqual(v1.lookups, v2.lookups) {
				t.Errorf("LOOKUP results differ:\nv1=%v\nv2=%v", v1.lookups, v2.lookups)
			}
			if !reflect.DeepEqual(v1.rngs, v2.rngs) {
				t.Errorf("RANGELOOKUP results differ:\nv1=%v\nv2=%v", v1.rngs, v2.rngs)
			}
			switch kind {
			case IndexEager, IndexLazy:
				if v2.index > v1.index {
					t.Errorf("v2 index larger on disk: v2=%d v1=%d", v2.index, v1.index)
				}
			default:
				// No posting lists stored: the format cannot change anything.
				if !reflect.DeepEqual(v1.stats, v2.stats) {
					t.Errorf("I/O counters differ:\nv1=%+v\nv2=%+v", v1.stats, v2.stats)
				}
				if v1.primary != v2.primary || v1.index != v2.index {
					t.Errorf("disk usage differs: v1=(%d,%d) v2=(%d,%d)",
						v1.primary, v1.index, v2.primary, v2.index)
				}
			}
		})
	}
}

// TestPostingsMixedFormatCompaction writes half the workload under v1,
// reopens the same directory under v2 for the other half, then compacts:
// the Lazy merge sees v1 and v2 fragments for the same secondary keys in
// one call, and Eager RMW rewrites v1 lists into v2. Results must match a
// database that ran the whole workload in one format.
func TestPostingsMixedFormatCompaction(t *testing.T) {
	for _, kind := range []IndexKind{IndexEager, IndexLazy} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			open := func(f postings.Format) *DB {
				opts := smallOptions(kind)
				opts.PostingsFormat = f
				db, err := Open(dir, opts)
				if err != nil {
					t.Fatal(err)
				}
				return db
			}

			put := func(db *DB, lo, hi int) {
				for i := lo; i < hi; i++ {
					user := fmt.Sprintf("u%02d", i%5)
					if err := db.Put(fmt.Sprintf("t%04d", i), tweetDoc(user, 1000+i, "x")); err != nil {
						t.Fatal(err)
					}
				}
			}

			db := open(postings.FormatV1)
			put(db, 0, 200)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db = open(postings.FormatV2)
			defer db.Close()
			put(db, 200, 400)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// Full compaction merges v1 and v2 fragments of the same
			// secondary key in single Merge calls.
			if err := db.CompactRange("", ""); err != nil {
				t.Fatal(err)
			}

			// Reference: the whole workload in one v2 database.
			ref, err := Open(t.TempDir(), func() Options {
				o := smallOptions(kind)
				o.PostingsFormat = postings.FormatV2
				return o
			}())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			put(ref, 0, 400)
			if err := ref.Flush(); err != nil {
				t.Fatal(err)
			}

			for _, user := range []string{"u00", "u03", "u04"} {
				got, err := db.Lookup("UserID", user, 10)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Lookup("UserID", user, 10)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("LOOKUP %s after mixed compaction:\ngot  %v\nwant %v", user, got, want)
				}
			}
			got, err := db.RangeLookup("CreationTime", "0000001050", "0000001350", 25)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.RangeLookup("CreationTime", "0000001050", "0000001350", 25)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("RANGELOOKUP after mixed compaction:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

// TestPostingsV1RecoveryWithV2Defaults simulates the upgrade path: a
// database entirely written under v1 — including unflushed WAL tail —
// reopens under the v2 default. WAL replay re-applies v1-encoded index
// writes, lookups sniff the stored format, and a full compaction rewrites
// the tables without losing entries.
func TestPostingsV1RecoveryWithV2Defaults(t *testing.T) {
	for _, kind := range []IndexKind{IndexEager, IndexLazy} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(kind)
			opts.PostingsFormat = postings.FormatV1
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				user := fmt.Sprintf("u%02d", i%4)
				if err := db.Put(fmt.Sprintf("t%04d", i), tweetDoc(user, 1000+i, "x")); err != nil {
					t.Fatal(err)
				}
			}
			// No Flush: the MemTable tail (including its index-table posting
			// lists) must come back via WAL replay.
			want := map[string][]Entry{}
			for _, user := range []string{"u00", "u01", "u02", "u03"} {
				res, err := db.Lookup("UserID", user, 8)
				if err != nil {
					t.Fatal(err)
				}
				want[user] = res
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			reopened := smallOptions(kind) // PostingsFormat unset → v2 default
			db2, err := Open(dir, reopened)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			check := func(stage string) {
				for user, w := range want {
					got, err := db2.Lookup("UserID", user, 8)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, w) {
						t.Errorf("%s: LOOKUP %s:\ngot  %v\nwant %v", stage, user, got, w)
					}
				}
			}
			check("after reopen")
			if err := db2.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db2.CompactRange("", ""); err != nil {
				t.Fatal(err)
			}
			check("after compact")
		})
	}
}
