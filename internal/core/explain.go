package core

import (
	"leveldbpp/internal/costmodel"
	"leveldbpp/internal/explain"
	"leveldbpp/internal/metrics"
)

// EXPLAIN (DESIGN.md §5.7): each Explain* method runs the real operation
// under a detached trace (always recorded, independent of the sampling
// rate), then pairs the trace's exact I/O attribution with the cost
// model's Table 3/5 prediction evaluated on live Params derived from the
// current tree geometry. The observed/predicted ratio also feeds the
// profiler's model-drift tracker, like any sampled operation's would.

// epsilonBlocks is the model's ε — the "scan to the end of the level"
// overshoot added to K in the Embedded bounds (paper §3.1).
const epsilonBlocks = 2

// ExplainGet runs GET under a detached trace and reports it.
func (db *DB) ExplainGet(key string) ([]byte, bool, *explain.Report, error) {
	tr := metrics.StartDetached(metrics.OpGet)
	tr.SetDetail("key=" + key)
	value, ok, err := db.primary.GetTraced([]byte(key), tr)
	if err != nil {
		return nil, false, nil, err
	}
	results := 0
	if ok {
		results = 1
	}
	rep := db.buildReport(tr, metrics.OpGet, "", "", "", 0, results)
	db.profiler.RecordOp(metrics.OpGet)
	db.profiler.RecordRatio(metrics.OpGet, rep.Ratio)
	return value, ok, rep, nil
}

// ExplainLookup runs LOOKUP(attr, value, k) under a detached trace and
// reports it.
func (db *DB) ExplainLookup(attr, value string, k int) ([]Entry, *explain.Report, error) {
	if !db.indexed(attr) {
		return nil, nil, ErrUnknownAttr
	}
	tr := metrics.StartDetached(metrics.OpLookup)
	tr.SetDetail(attr + "=" + value + " plan=" + db.planName(metrics.OpLookup))
	out, err := db.lookupTraced(attr, value, k, tr)
	if err != nil {
		return nil, nil, err
	}
	rep := db.buildReport(tr, metrics.OpLookup, attr, value, value, k, len(out))
	db.profiler.RecordQuery(metrics.OpLookup, k, len(out))
	db.profiler.RecordRatio(metrics.OpLookup, rep.Ratio)
	return out, rep, nil
}

// ExplainRangeLookup runs RANGELOOKUP(attr, lo, hi, k) under a detached
// trace and reports it.
func (db *DB) ExplainRangeLookup(attr, lo, hi string, k int) ([]Entry, *explain.Report, error) {
	if !db.indexed(attr) {
		return nil, nil, ErrUnknownAttr
	}
	if hi < lo {
		return nil, &explain.Report{Op: metrics.OpRangeLookup.String(),
			Index: db.opts.Index.String(), Plan: db.planName(metrics.OpRangeLookup)}, nil
	}
	tr := metrics.StartDetached(metrics.OpRangeLookup)
	tr.SetDetail(attr + "=[" + lo + "," + hi + "] plan=" + db.planName(metrics.OpRangeLookup))
	out, err := db.rangeLookupTraced(attr, lo, hi, k, tr)
	if err != nil {
		return nil, nil, err
	}
	rep := db.buildReport(tr, metrics.OpRangeLookup, attr, lo, hi, k, len(out))
	db.profiler.RecordQuery(metrics.OpRangeLookup, k, len(out))
	db.profiler.RecordRatio(metrics.OpRangeLookup, rep.Ratio)
	return out, rep, nil
}

// planName is the access-plan label EXPLAIN reports for op under the
// configured index kind.
func (db *DB) planName(op metrics.Op) string {
	switch op {
	case metrics.OpGet:
		return "point_get"
	case metrics.OpLookup:
		switch db.opts.Index {
		case IndexEmbedded:
			return "bloom_probe"
		case IndexEager:
			return "posting_fetch"
		case IndexLazy:
			return "posting_merge"
		case IndexComposite:
			return "prefix_scan"
		default:
			return "full_scan"
		}
	case metrics.OpRangeLookup:
		switch db.opts.Index {
		case IndexEmbedded:
			return "zone_map_prune"
		case IndexEager:
			return "posting_scan"
		case IndexLazy:
			return "posting_merge_scan"
		case IndexComposite:
			return "prefix_scan"
		default:
			return "full_scan"
		}
	default:
		return op.String()
	}
}

// buildReport assembles the Report for a finished (but not Finished)
// detached trace: phase timings and counters from the trace, prediction
// and Params from the live cost model.
func (db *DB) buildReport(tr *metrics.Trace, op metrics.Op, attr, lo, hi string, k, results int) *explain.Report {
	rec := tr.Record()
	io := tr.Counters()
	p, predicted, formula := db.predict(op, attr, lo, hi, results, io)
	rep := &explain.Report{
		Op:          op.String(),
		Index:       db.opts.Index.String(),
		Plan:        db.planName(op),
		Detail:      rec.Detail,
		K:           k,
		Results:     results,
		TotalUS:     rec.TotalUS,
		Phases:      rec.Phases,
		IO:          io,
		PredictedIO: predicted,
		Formula:     formula,
		Params:      p,
	}
	rep.Fill()
	return rep
}

// predict evaluates the cost model for op with live Params: per-level
// block counts from the table that op actually reads, L from its current
// stratum count, M from index metadata overlapping the queried range, and
// K' = the result count the operation matched. The Embedded bounds take K
// from the trace counters instead (see below). The returned formula
// string names the Table 3/5 bound used.
func (db *DB) predict(op metrics.Op, attr, lo, hi string, results int, io metrics.Counters) (costmodel.Params, float64, string) {
	p := db.modelParams(attr)
	totalBlocks := 0
	for _, b := range p.LevelBlocks {
		totalBlocks += b
	}
	switch op {
	case metrics.OpGet:
		return p, 1, "1 (Table 3/5 GET)"
	case metrics.OpLookup:
		switch db.opts.Index {
		case IndexEmbedded:
			// Table 3's K counts the blocks that hold the value — under a
			// Zipfian attribute that is far above the top-K result cap. The
			// engine keeps no per-value block statistics, so K comes from
			// the trace: candidate blocks minus secondary-bloom false
			// positives. The model's own contribution — the f_p·Σb_i
			// false-positive term — is what the ratio then validates.
			kBlocks := int(io.CandidateBlocks - io.BloomFalsePositives)
			if kBlocks < results {
				kBlocks = results
			}
			return p, costmodel.EmbeddedLookupIO(p, kBlocks, epsilonBlocks),
				"(K+eps) + f_p*sum(b_i) (Table 3 LOOKUP)"
		case IndexEager:
			return p, costmodel.EagerLookupIO(p, results), "K' + 1 (Table 5 LOOKUP)"
		case IndexLazy:
			return p, costmodel.LazyLookupIO(p, results), "K' + L (Table 5 LOOKUP)"
		case IndexComposite:
			return p, costmodel.CompositeLookupIO(p, results), "K' + L (Table 5 LOOKUP)"
		default:
			return p, float64(totalBlocks), "B (full scan)"
		}
	case metrics.OpRangeLookup:
		switch db.opts.Index {
		case IndexEmbedded:
			p.RangeBlocks = db.primary.OverlappingBlockCount(nil, nil)
			corr := db.profiler.TimeCorrelated(attr)
			// As for LOOKUP, K is the matched-block count from the trace
			// (candidates surviving the zone-map prune), not the result cap.
			kBlocks := int(io.CandidateBlocks)
			if kBlocks < results {
				kBlocks = results
			}
			return p, costmodel.EmbeddedRangeLookupIO(p, kBlocks, epsilonBlocks, corr, totalBlocks),
				"K+eps if time-correlated else B (Table 3 RANGELOOKUP)"
		case IndexEager, IndexLazy:
			p.RangeBlocks = db.indexes[attr].OverlappingBlockCount([]byte(lo), upperBoundExclusive(hi))
			return p, float64(results + p.RangeBlocks), "K' + M (Table 5 RANGELOOKUP)"
		case IndexComposite:
			p.RangeBlocks = db.indexes[attr].OverlappingBlockCount(
				compositeKey(lo, ""), append([]byte(hi), compositeSep+1))
			return p, float64(results + p.RangeBlocks), "K' + M (Table 5 RANGELOOKUP)"
		default:
			return p, float64(totalBlocks), "B (full scan)"
		}
	default:
		return p, 0, ""
	}
}

// modelParams derives live cost-model Params from the geometry of the
// table op actually reads: the per-attribute index table for stand-alone
// kinds, the primary table for Embedded and None (attr may be "" for GET).
func (db *DB) modelParams(attr string) costmodel.Params {
	p := costmodel.Params{
		LevelRatio: db.opts.LevelMultiplier,
		BitsPerKey: db.opts.BitsPerKey,
		NumAttrs:   len(db.opts.Attrs),
	}
	t := db.primary
	if idx, ok := db.indexes[attr]; ok {
		t = idx
	}
	if db.opts.Index == IndexEmbedded && db.opts.SecondaryBitsPerKey > 0 {
		// The LOOKUP false-positive term is governed by the per-block
		// secondary blooms, not the primary-key filter.
		p.BitsPerKey = db.opts.SecondaryBitsPerKey
	}
	p.Levels = t.NumStrata()
	shape := t.LevelShape()
	if len(shape) > 0 {
		p.LevelBlocks = make([]int, len(shape))
		for i, li := range shape {
			p.LevelBlocks[i] = li.Blocks
		}
		p.BlocksL0 = shape[0].Blocks
	}
	return p
}

// recordModelRatio feeds one sampled operation's observed/predicted ratio
// into the profiler's drift tracker. Called only for sampled traces (the
// counters were read before Finish), so the Params derivation is off the
// common path.
func (db *DB) recordModelRatio(op metrics.Op, attr, lo, hi string, results int, io metrics.Counters) {
	if db.profiler == nil {
		return
	}
	_, predicted, _ := db.predict(op, attr, lo, hi, results, io)
	if predicted > 0 {
		db.profiler.RecordRatio(op, float64(io.BlockAccesses())/predicted)
	}
}
