package core

import (
	"fmt"
	"reflect"
	"testing"

	"leveldbpp/internal/lsm"
)

// TestGroupCommitEquivalence runs the same deterministic single-writer
// workload with group commit on and off for every index kind and
// requires identical observable state: I/O counters (the fig8a/fig12
// measurements), disk usage, lookup results, and primary-scan iteration
// order. A group of one commit must be indistinguishable from the seed
// commit path.
func TestGroupCommitEquivalence(t *testing.T) {
	type result struct {
		stats   Stats
		primary int64
		index   int64
		scan    []string
		lookup  []Entry
		rng     []Entry
	}
	run := func(t *testing.T, kind IndexKind, group bool) result {
		opts := smallOptions(kind)
		if group {
			opts.GroupCommit = lsm.GroupCommitOptions{Enabled: true}
		}
		db, err := Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()

		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("t%04d", i)
			user := fmt.Sprintf("u%02d", i%7)
			if err := db.Put(key, tweetDoc(user, 1000+i, fmt.Sprintf("text-%04d", i))); err != nil {
				t.Fatal(err)
			}
			if i%31 == 0 && i > 0 {
				if err := db.Delete(fmt.Sprintf("t%04d", i-5)); err != nil {
					t.Fatal(err)
				}
			}
			if i%57 == 0 {
				var b Batch
				b.Put(fmt.Sprintf("b%04d", i), tweetDoc("u99", 2000+i, "batched"))
				b.Delete(fmt.Sprintf("t%04d", i/2))
				if err := db.Apply(&b); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}

		r := result{stats: db.Stats()}
		if r.primary, r.index, err = db.DiskUsage(); err != nil {
			t.Fatal(err)
		}
		if err := db.Scan("", "", func(k string, _ []byte) bool {
			r.scan = append(r.scan, k)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if r.lookup, err = db.Lookup("UserID", "u03", 20); err != nil {
			t.Fatal(err)
		}
		if r.rng, err = db.RangeLookup("CreationTime", "0000001100", "0000001200", 15); err != nil {
			t.Fatal(err)
		}
		return r
	}

	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			off := run(t, kind, false)
			on := run(t, kind, true)
			if !reflect.DeepEqual(on.stats, off.stats) {
				t.Errorf("I/O counters differ:\n on=%+v\noff=%+v", on.stats, off.stats)
			}
			if on.primary != off.primary || on.index != off.index {
				t.Errorf("disk usage differs: on=(%d,%d) off=(%d,%d)",
					on.primary, on.index, off.primary, off.index)
			}
			if !reflect.DeepEqual(on.scan, off.scan) {
				t.Errorf("scan order differs: on has %d keys, off has %d", len(on.scan), len(off.scan))
			}
			if !reflect.DeepEqual(on.lookup, off.lookup) {
				t.Errorf("LOOKUP results differ:\n on=%v\noff=%v", on.lookup, off.lookup)
			}
			if !reflect.DeepEqual(on.rng, off.rng) {
				t.Errorf("RANGELOOKUP results differ:\n on=%v\noff=%v", on.rng, off.rng)
			}
		})
	}
}

// TestGroupCommitConcurrentCore drives concurrent core writers (no
// stand-alone indexes, so they reach the engine's commit queue) and
// verifies grouping happened and every document survives a reopen.
func TestGroupCommitConcurrentCore(t *testing.T) {
	for _, kind := range []IndexKind{IndexNone, IndexEmbedded} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(kind)
			opts.MemTableBytes = 1 << 20
			opts.GroupCommit = lsm.GroupCommitOptions{Enabled: true}
			opts.BackgroundCompaction = true
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}

			const writers = 8
			const perWriter = 300
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				go func(w int) {
					for i := 0; i < perWriter; i++ {
						key := fmt.Sprintf("w%02d-%04d", w, i)
						if err := db.Put(key, tweetDoc(fmt.Sprintf("u%02d", w), i, key)); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(w)
			}
			for w := 0; w < writers; w++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			prim, _ := db.CommitStats()
			if prim.Commits != writers*perWriter {
				t.Errorf("primary commits = %d, want %d", prim.Commits, writers*perWriter)
			}
			if prim.Groups == 0 || prim.Groups > prim.Commits {
				t.Errorf("primary groups = %d out of %d commits", prim.Groups, prim.Commits)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(dir, smallOptions(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i += 29 {
					key := fmt.Sprintf("w%02d-%04d", w, i)
					if _, ok, err := re.Get(key); err != nil || !ok {
						t.Fatalf("Get(%s) after reopen = %v %v", key, ok, err)
					}
				}
			}
		})
	}
}
