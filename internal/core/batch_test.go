package core

import (
	"fmt"
	"testing"
)

func TestCoreBatchAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			var b Batch
			b.Put("t1", tweetDoc("u1", 1, "a"))
			b.Put("t2", tweetDoc("u1", 2, "b"))
			b.Put("t3", tweetDoc("u2", 3, "c"))
			b.Delete("t1")
			if err := db.Apply(&b); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := db.Get("t1"); ok {
				t.Fatal("intra-batch delete lost")
			}
			got, err := db.Lookup("UserID", "u1", 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t2"}) {
				t.Fatalf("Lookup after batch = %v", keysOf(got))
			}
		})
	}
}

func TestCoreBatchDeleteExistingKey(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			db.Put("t1", tweetDoc("u1", 1, "old"))
			var b Batch
			b.Delete("t1")
			b.Put("t2", tweetDoc("u1", 2, "new"))
			if err := db.Apply(&b); err != nil {
				t.Fatal(err)
			}
			got, _ := db.Lookup("UserID", "u1", 0)
			if !sameKeys(keysOf(got), []string{"t2"}) {
				t.Fatalf("after batch delete: %v", keysOf(got))
			}
		})
	}
}

func TestCoreBatchLargeMatchesIndividualPuts(t *testing.T) {
	for _, kind := range []IndexKind{IndexEmbedded, IndexLazy} {
		t.Run(kind.String(), func(t *testing.T) {
			batched := openKind(t, kind)
			individual := openKind(t, kind)
			var b Batch
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("t%04d", i)
				doc := tweetDoc(fmt.Sprintf("u%02d", i%20), i, "batch vs individual")
				b.Put(key, doc)
				if err := individual.Put(key, doc); err != nil {
					t.Fatal(err)
				}
				if b.Len() == 100 {
					if err := batched.Apply(&b); err != nil {
						t.Fatal(err)
					}
					b.Reset()
				}
			}
			if err := batched.Apply(&b); err != nil {
				t.Fatal(err)
			}
			for u := 0; u < 20; u++ {
				user := fmt.Sprintf("u%02d", u)
				a, err := batched.Lookup("UserID", user, 0)
				if err != nil {
					t.Fatal(err)
				}
				bI, err := individual.Lookup("UserID", user, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !sameKeys(keysOf(a), keysOf(bI)) {
					t.Fatalf("user %s: batched %v != individual %v", user, keysOf(a), keysOf(bI))
				}
			}
		})
	}
}

func TestCoreScan(t *testing.T) {
	db := openKind(t, IndexEmbedded)
	for i := 0; i < 50; i++ {
		db.Put(fmt.Sprintf("t%03d", i), tweetDoc("u1", i, "x"))
	}
	db.Delete("t010")
	db.Put("t011", tweetDoc("u2", 11, "updated"))

	var keys []string
	err := db.Scan("t005", "t015", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"t005", "t006", "t007", "t008", "t009", "t011", "t012", "t013", "t014", "t015"}
	if !sameKeys(keys, want) {
		t.Fatalf("Scan = %v", keys)
	}
	// Early stop.
	n := 0
	db.Scan("", "", func(string, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestCoreCheckpointAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			db := openKind(t, kind)
			for i := 0; i < 300; i++ {
				db.Put(fmt.Sprintf("t%04d", i), tweetDoc(fmt.Sprintf("u%d", i%5), i, "checkpointed"))
			}
			ckpt := t.TempDir() + "/snap"
			if err := db.Checkpoint(ckpt); err != nil {
				t.Fatal(err)
			}
			db.Put("t9999", tweetDoc("u1", 9999, "after"))

			snap, err := Open(ckpt, smallOptions(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			got, err := snap.Lookup("UserID", "u1", 2)
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(keysOf(got), []string{"t0296", "t0291"}) {
				t.Fatalf("snapshot lookup = %v", keysOf(got))
			}
			if _, ok, _ := snap.Get("t9999"); ok {
				t.Fatal("post-checkpoint write leaked")
			}
		})
	}
}
