package core

import (
	"sort"
	"sync"

	"leveldbpp/internal/lsm"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
)

// The Eager index (paper §4.1.1) maintains, per indexed attribute, a
// stand-alone LSM table mapping attribute value → posting list. Every PUT
// performs a read-modify-write of the affected list ("in-place" update in
// the logical sense — physically it writes a new list that invalidates the
// older ones), so LOOKUP needs only the single newest list, but writes
// suffer the paper's headline write amplification (WAMF ≈ PL_S·22·(L−1)).

func (db *DB) eagerPut(key string, value []byte, seq uint64) error {
	for _, av := range extractAttrs(value, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		if err := db.eagerUpdate(idx, av.Value, key, seq, false); err != nil {
			return err
		}
	}
	return nil
}

// eagerDelete marks key deleted in the posting lists of the old record's
// attribute values (read-update-write, paper §4.1.1).
func (db *DB) eagerDelete(key string, oldValue []byte, seq uint64) error {
	for _, av := range extractAttrs(oldValue, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		if err := db.eagerUpdate(idx, av.Value, key, seq, true); err != nil {
			return err
		}
	}
	return nil
}

// eagerUpdate is the read-modify-write: fetch the current list, prepend
// the new posting, drop the superseded entry for the same primary key,
// and write the list back. The stored list is already newest-first, so
// AppendAdd streams the update — no re-sort, and no intermediate []Entry
// — into the DB's scratch buffer.
//
//lsm:locked — writeMu is held by putTraced/deleteTraced on every caller path.
func (db *DB) eagerUpdate(idx *lsm.DB, attrValue, key string, seq uint64, del bool) error {
	cur, _, err := idx.Get([]byte(attrValue))
	if err != nil {
		return err
	}
	out, decoded, err := postings.AppendAdd(db.postBuf[:0], cur, key, seq, del, db.pf)
	if err != nil {
		return err
	}
	st := idx.Stats()
	st.PostingsBytesDecoded.Add(int64(len(cur)))
	st.PostingsEntriesDecoded.Add(decoded)
	err = idx.Put([]byte(attrValue), out)
	db.postBuf = out[:0]
	return err
}

// eagerLookup is Algorithm 2: one GET on the index table retrieves the
// complete, newest-first posting list; candidates are validated with GETs
// on the data table until K valid results are found.
func (db *DB) eagerLookup(attr, value string, k int, tr *metrics.Trace) ([]Entry, error) {
	idx := db.indexes[attr]
	t0 := tr.Now()
	// IOOnly: the nested GET's own top-level phases (mem/l0/level probes)
	// must not tile inside this op's index_probe window; only its block
	// counters carry through to the trace.
	tr.IOOnlyBegin()
	data, found, err := idx.GetTraced([]byte(value), tr)
	tr.IOOnlyEnd()
	tr.Since(metrics.PhaseIndexProbe, t0)
	if err != nil || !found {
		return nil, err
	}
	tr.Count(metrics.CtrPostingFragments, 1)
	// Stream the list instead of materializing it: the cursor decodes
	// entries one at a time (v2), so reaching K valid results leaves the
	// tail of the list undecoded. The mark alternates the trace between
	// posting_merge/postings_decode (cursor stepping) and validate.
	var c postings.Cursor
	mark := tr.Now()
	if err := c.Reset(data); err != nil {
		return nil, err
	}
	var out []Entry
	for c.Next() {
		if c.Del() {
			continue
		}
		pk := string(c.Key())
		seq := c.Seq()
		tr.Since(metrics.PhasePostingMerge, mark)
		tr.Since(metrics.PhasePostingsDecode, mark)
		doc, valid, err := db.validateTraced(pk, attr, value, value, tr)
		mark = tr.Now()
		if err != nil {
			return nil, err
		}
		if !valid {
			continue
		}
		out = append(out, Entry{Key: pk, Value: doc, Seq: seq})
		if k > 0 && len(out) >= k {
			break
		}
	}
	tr.Since(metrics.PhasePostingMerge, mark)
	tr.Since(metrics.PhasePostingsDecode, mark)
	if err := c.Err(); err != nil {
		return nil, err
	}
	st := idx.Stats()
	st.PostingsBytesDecoded.Add(c.BytesDecoded())
	st.PostingsEntriesDecoded.Add(c.EntriesDecoded())
	tr.Count(metrics.CtrPostingEntries, c.EntriesDecoded())
	return out, nil
}

// eagerRangeLookup (paper §4.1.1 RANGELOOKUP) range-scans the index table
// over [lo, hi]; each matching attribute value contributes its newest
// posting list; a global min-heap on sequence numbers selects the top-K
// across values.
func (db *DB) eagerRangeLookup(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	idx := db.indexes[attr]
	heap := newTopK(k)

	// Gather candidates cheaply first (index I/O), then validate in
	// recency order (data-table I/O) until K valid results stand. The
	// mark alternates the trace between index_probe (scan advance) and
	// posting_merge (list decode) with no overlap.
	var candidates []postings.Entry
	var decodedBytes, decodedEntries int64
	mark := tr.Now()
	err := idx.ScanTraced([]byte(lo), upperBoundExclusive(hi), tr, func(key, value []byte, _ uint64) bool {
		tr.Since(metrics.PhaseIndexProbe, mark)
		tD := tr.Now()
		list, err := postings.Decode(value)
		if err == nil {
			candidates = append(candidates, postings.Live(list)...)
			decodedBytes += int64(len(value))
			decodedEntries += int64(len(list))
			tr.Count(metrics.CtrPostingFragments, 1)
			tr.Count(metrics.CtrPostingEntries, int64(len(list)))
		} // else: skip undecodable lists rather than abort
		tr.Since(metrics.PhasePostingMerge, tD)
		tr.Since(metrics.PhasePostingsDecode, tD)
		mark = tr.Now()
		return true
	})
	tr.Since(metrics.PhaseIndexProbe, mark)
	if err != nil {
		return nil, err
	}
	st := idx.Stats()
	st.PostingsBytesDecoded.Add(decodedBytes)
	st.PostingsEntriesDecoded.Add(decodedEntries)
	if err := db.validateCandidates(candidates, attr, lo, hi, k, heap, tr); err != nil {
		return nil, err
	}
	return heap.Results(), nil
}

// validateCandidates sorts candidates newest-first and validates them
// against the data table until k valid entries are collected (k <= 0
// validates everything).
func (db *DB) validateCandidates(cands []postings.Entry, attr, lo, hi string, k int, heap *topK, tr *metrics.Trace) error {
	t0 := tr.Now()
	sortPostingsBySeqDesc(cands)
	tr.Since(metrics.PhasePostingMerge, t0)
	if db.opts.LookupParallelism > 1 && len(cands) > 1 {
		// Workers carry no trace (a Trace is single-goroutine); the whole
		// fan-out is attributed to validate from this side.
		t0 = tr.Now()
		err := db.validateCandidatesParallel(cands, attr, lo, hi, heap)
		tr.Since(metrics.PhaseValidate, t0)
		return err
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Key] {
			continue // an older posting for a key already decided
		}
		seen[c.Key] = true
		if !heap.Worth(c.Seq) {
			continue
		}
		doc, valid, err := db.validateTraced(c.Key, attr, lo, hi, tr)
		if err != nil {
			return err
		}
		if valid {
			heap.Add(Entry{Key: c.Key, Value: doc, Seq: c.Seq})
			if heap.Full() {
				// Remaining candidates are all older; the heap cannot
				// change further.
				return nil
			}
		}
	}
	return nil
}

// validateCandidatesParallel processes the (sorted, newest-first)
// candidates in chunks: each chunk's data-table validations run on
// LookupParallelism goroutines, and the outcomes fold into the heap in
// sequence order. The fold applies the same Worth/Full rules at the same
// points as the sequential loop, so the returned top-K is identical; the
// only difference is that up to one chunk of candidates past the
// sequential stopping point may get validated (extra reads, same answer).
func (db *DB) validateCandidatesParallel(cands []postings.Entry, attr, lo, hi string, heap *topK) error {
	seen := map[string]bool{}
	workers := db.opts.LookupParallelism
	chunkSize := workers * 4

	type outcome struct {
		doc   []byte
		valid bool
		err   error
	}
	chunk := make([]postings.Entry, 0, chunkSize)

	flush := func() (done bool, err error) {
		if len(chunk) == 0 {
			return false, nil
		}
		outcomes := make([]outcome, len(chunk))
		next := make(chan int)
		var wg sync.WaitGroup
		n := workers
		if n > len(chunk) {
			n = len(chunk)
		}
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					doc, valid, err := db.validate(chunk[i].Key, attr, lo, hi)
					outcomes[i] = outcome{doc: doc, valid: valid, err: err}
				}
			}()
		}
		for i := range chunk {
			next <- i
		}
		close(next)
		wg.Wait()
		for i, o := range outcomes {
			if o.err != nil {
				return false, o.err
			}
			if !o.valid || !heap.Worth(chunk[i].Seq) {
				continue
			}
			heap.Add(Entry{Key: chunk[i].Key, Value: o.doc, Seq: chunk[i].Seq})
			if heap.Full() {
				return true, nil
			}
		}
		chunk = chunk[:0]
		return false, nil
	}

	for _, c := range cands {
		if seen[c.Key] {
			continue // an older posting for a key already decided
		}
		seen[c.Key] = true
		if !heap.Worth(c.Seq) {
			continue
		}
		chunk = append(chunk, c)
		if len(chunk) >= chunkSize {
			done, err := flush()
			if err != nil || done {
				return err
			}
		}
	}
	_, err := flush()
	return err
}

func sortPostingsBySeqDesc(cands []postings.Entry) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].Seq > cands[j].Seq })
}

// upperBoundExclusive converts an inclusive string upper bound into the
// exclusive byte bound used by lsm.Scan.
func upperBoundExclusive(hi string) []byte {
	return append([]byte(hi), 0x00)
}
