package core

import (
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/postings"
)

// The Composite index (paper §4.2) stores, per indexed attribute, a
// stand-alone LSM table whose keys are the concatenation
// (secondary key ∥ 0x00 ∥ primary key) and whose values are empty.
// LOOKUP is a prefix range scan; because composite keys are ordered by
// key, not by time, and compaction moves arbitrary key ranges down, the
// scan must traverse every level before the top-K can be decided —
// the paper's explanation for why Composite loses to Lazy at small K but
// wins when K is unbounded (no posting-list CPU cost).

func compositeKey(attrValue, primaryKey string) []byte {
	k := make([]byte, 0, len(attrValue)+1+len(primaryKey))
	k = append(k, attrValue...)
	k = append(k, compositeSep)
	k = append(k, primaryKey...)
	return k
}

func splitCompositeKey(k []byte) (attrValue, primaryKey string, ok bool) {
	for i, b := range k {
		if b == compositeSep {
			return string(k[:i]), string(k[i+1:]), true
		}
	}
	return "", "", false
}

func (db *DB) compositePut(key string, value []byte, seq uint64) error {
	for _, av := range extractAttrs(value, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		if err := idx.Put(compositeKey(av.Value, key), nil); err != nil {
			return err
		}
	}
	return nil
}

// compositeDelete writes a tombstone for the old record's composite keys
// (paper: "a DEL operation inserts the composite key with a deletion
// marker in index table").
func (db *DB) compositeDelete(key string, oldValue []byte) error {
	for _, av := range extractAttrs(oldValue, db.opts.Attrs) {
		idx := db.indexes[av.Attr]
		if err := idx.Delete(compositeKey(av.Value, key)); err != nil {
			return err
		}
	}
	return nil
}

// compositeLookup is Algorithm 4: a prefix scan over the index table for
// attrValue ∥ 0x00. The merged scan inherently visits all levels (unlike
// Lazy there is no per-level early exit); candidates are then validated
// newest-first against the data table.
func (db *DB) compositeLookup(attr, value string, k int, tr *metrics.Trace) ([]Entry, error) {
	lo := compositeKey(value, "")
	hiExcl := append([]byte(value), compositeSep+1)
	return db.compositeCollect(attr, value, value, lo, hiExcl, k, tr)
}

// compositeRangeLookup is Algorithm 7: the prefix scan widens to every
// composite key whose secondary component lies in [lo, hi].
func (db *DB) compositeRangeLookup(attr, lo, hi string, k int, tr *metrics.Trace) ([]Entry, error) {
	loK := compositeKey(lo, "")
	hiExcl := append([]byte(hi), compositeSep+1)
	return db.compositeCollect(attr, lo, hi, loK, hiExcl, k, tr)
}

func (db *DB) compositeCollect(attr, lo, hi string, loK, hiExcl []byte, k int, tr *metrics.Trace) ([]Entry, error) {
	idx := db.indexes[attr]
	heap := newTopK(k)
	var candidates []postings.Entry
	t0 := tr.Now()
	err := idx.ScanTraced(loK, hiExcl, tr, func(key, _ []byte, seq uint64) bool {
		av, pk, ok := splitCompositeKey(key)
		if !ok || av < lo || av > hi {
			return true
		}
		candidates = append(candidates, postings.Entry{Key: pk, Seq: seq})
		tr.Count(metrics.CtrPostingEntries, 1)
		return true
	})
	tr.Since(metrics.PhaseIndexProbe, t0)
	if err != nil {
		return nil, err
	}
	if err := db.validateCandidates(candidates, attr, lo, hi, k, heap, tr); err != nil {
		return nil, err
	}
	return heap.Results(), nil
}
