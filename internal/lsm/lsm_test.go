package lsm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/sstable"
)

// smallOpts returns options scaled so tests exercise flushes and multiple
// compaction levels with tiny data volumes.
func smallOpts() *Options {
	return &Options{
		MemTableBytes:       8 << 10, // 8 KiB
		BlockSize:           1 << 10,
		BaseLevelBytes:      32 << 10,
		LevelMultiplier:     4,
		L0CompactionTrigger: 4,
		MaxLevels:           5,
	}
}

func openTestDB(t testing.TB, opts *Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func mustPut(t testing.TB, db *DB, k, v string) {
	t.Helper()
	if err := db.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

func mustGet(t testing.TB, db *DB, k string) (string, bool) {
	t.Helper()
	v, ok, err := db.Get([]byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

func TestPutGetDelete(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	mustPut(t, db, "k1", "v1")
	mustPut(t, db, "k2", "v2")
	if v, ok := mustGet(t, db, "k1"); !ok || v != "v1" {
		t.Fatalf("Get(k1) = %q %v", v, ok)
	}
	if _, ok := mustGet(t, db, "missing"); ok {
		t.Fatal("found missing key")
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustGet(t, db, "k1"); ok {
		t.Fatal("deleted key still visible")
	}
	if v, ok := mustGet(t, db, "k2"); !ok || v != "v2" {
		t.Fatal("unrelated key lost")
	}
}

func TestOverwrite(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 10; i++ {
		mustPut(t, db, "k", fmt.Sprintf("v%d", i))
	}
	if v, ok := mustGet(t, db, "k"); !ok || v != "v9" {
		t.Fatalf("Get = %q %v, want v9", v, ok)
	}
}

func TestFlushAndReadFromSSTable(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 100; i++ {
		mustPut(t, db, fmt.Sprintf("key%04d", i), fmt.Sprintf("val%04d", i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	var nL0 int
	db.View(func(v *View) error { nL0 = len(v.L0()); return nil })
	if nL0 == 0 {
		t.Fatal("no L0 files after flush")
	}
	for i := 0; i < 100; i++ {
		if v, ok := mustGet(t, db, fmt.Sprintf("key%04d", i)); !ok || v != fmt.Sprintf("val%04d", i) {
			t.Fatalf("key%04d = %q %v", i, v, ok)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	const n = 3000
	rng := rand.New(rand.NewSource(1))
	want := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%05d", rng.Intn(1000))
		v := fmt.Sprintf("val%08d", i)
		want[k] = v
		mustPut(t, db, k, v)
	}
	// Compactions must have run.
	deepest := 0
	db.View(func(v *View) error { deepest = v.DeepestNonEmpty(); return nil })
	if deepest < 1 {
		t.Fatalf("expected multi-level tree, deepest=%d", deepest)
	}
	for k, v := range want {
		if got, ok := mustGet(t, db, k); !ok || got != v {
			t.Fatalf("after compaction %s = %q %v, want %q", k, got, ok, v)
		}
	}
}

func TestDeleteSurvivesCompaction(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 500; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), "v")
	}
	db.Flush()
	for i := 0; i < 500; i += 2 {
		if err := db.Delete([]byte(fmt.Sprintf("key%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Push everything down through several flush/compaction rounds.
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("pad%06d", i), "padpadpadpadpadpad")
	}
	for i := 0; i < 500; i++ {
		_, ok := mustGet(t, db, fmt.Sprintf("key%05d", i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted key%05d visible", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("live key%05d lost", i)
		}
	}
}

func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 1500; i++ {
		k, v := fmt.Sprintf("key%05d", i%400), fmt.Sprintf("val%06d", i)
		want[k] = v
		mustPut(t, db, k, v)
	}
	db.Delete([]byte("key00007"))
	delete(want, "key00007")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, v := range want {
		if got, ok := mustGet(t, db2, k); !ok || got != v {
			t.Fatalf("after recovery %s = %q %v, want %q", k, got, ok, v)
		}
	}
	if _, ok := mustGet(t, db2, "key00007"); ok {
		t.Fatal("deleted key resurrected by recovery")
	}
	// Sequence numbers must continue, not restart.
	pre := db2.LastSeq()
	mustPut(t, db2, "post", "recovery")
	if db2.LastSeq() != pre+1 || pre < 1500 {
		t.Fatalf("sequence restarted: pre=%d", pre)
	}
}

func TestRecoveryWithTornWAL(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemTableBytes = 1 << 30 // never flush: everything stays in WAL
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("k%03d", i), "v")
	}
	db.Close()
	// Tear the last record.
	walFile := filepath.Join(dir, "WAL")
	fi, _ := os.Stat(walFile)
	if err := os.Truncate(walFile, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 49; i++ {
		if _, ok := mustGet(t, db2, fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("k%03d lost", i)
		}
	}
	if _, ok := mustGet(t, db2, "k049"); ok {
		t.Fatal("torn record should be lost")
	}
}

func TestWriteMerge(t *testing.T) {
	opts := smallOpts()
	opts.WriteMerge = func(existing, incoming []byte) []byte {
		return append(append([]byte(nil), existing...), incoming...)
	}
	db, _ := openTestDB(t, opts)
	mustPut(t, db, "list", "a")
	mustPut(t, db, "list", "b")
	mustPut(t, db, "list", "c")
	if v, _ := mustGet(t, db, "list"); v != "abc" {
		t.Fatalf("write-merged value = %q, want abc", v)
	}
	// After a flush the memtable is empty → no merge with disk values.
	db.Flush()
	mustPut(t, db, "list", "d")
	if v, _ := mustGet(t, db, "list"); v != "d" {
		t.Fatalf("fresh memtable value = %q, want d (fragments merge at compaction)", v)
	}
}

// concatMerger joins all observed values oldest→newest with '|'.
type concatMerger struct{}

func (concatMerger) Merge(_ []byte, values [][]byte, _ bool) ([]byte, bool) {
	// values arrive newest→oldest; concatenate oldest first.
	var out []byte
	for i := len(values) - 1; i >= 0; i-- {
		if len(out) > 0 {
			out = append(out, '|')
		}
		out = append(out, values[i]...)
	}
	return out, true
}

func TestCompactionMerger(t *testing.T) {
	opts := smallOpts()
	opts.Merge = concatMerger{}
	db, _ := openTestDB(t, opts)
	// Write fragments of the same key into separate L0 files.
	mustPut(t, db, "frag", "one")
	db.Flush()
	mustPut(t, db, "frag", "two")
	db.Flush()
	mustPut(t, db, "frag", "three")
	db.Flush()
	mustPut(t, db, "frag", "four")
	db.Flush() // 4 L0 files → triggers L0 compaction with merger
	var nL0 int
	db.View(func(v *View) error { nL0 = len(v.L0()); return nil })
	if nL0 != 0 {
		t.Fatalf("L0 not compacted: %d files", nL0)
	}
	if v, _ := mustGet(t, db, "frag"); v != "one|two|three|four" {
		t.Fatalf("merged = %q", v)
	}
}

func TestTombstoneDroppedAtBaseLevel(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	mustPut(t, db, "victim", "v")
	db.Flush()
	db.Delete([]byte("victim"))
	db.Flush()
	// Force compactions until L0 is empty; the tombstone should vanish
	// once it reaches the deepest level holding the key.
	for i := 0; i < 3; i++ {
		mustPut(t, db, fmt.Sprintf("fill%d", i), "x")
		db.Flush()
	}
	if _, ok := mustGet(t, db, "victim"); ok {
		t.Fatal("tombstone lost before shadowing its target")
	}
	// Scan all tables for any "victim" record.
	found := false
	db.View(func(v *View) error {
		scan := func(fms []*FileMeta) {
			for _, fm := range fms {
				it := fm.Table().NewIterator(false)
				for it.Next() {
					if string(ikey.UserKey(it.Key())) == "victim" {
						found = true
					}
				}
			}
		}
		scan(v.L0())
		for l := 1; l <= v.MaxLevel(); l++ {
			scan(v.Level(l))
		}
		return nil
	})
	if found {
		t.Fatal("victim record (or tombstone) still present after full compaction")
	}
}

func TestLevelShapeInvariants(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6000; i++ {
		mustPut(t, db, fmt.Sprintf("key%07d", rng.Intn(100000)), fmt.Sprintf("val%032d", i))
	}
	db.View(func(v *View) error {
		for l := 1; l <= v.MaxLevel(); l++ {
			files := v.Level(l)
			for i := 1; i < len(files); i++ {
				// Sorted and disjoint.
				if bytes.Compare(ikey.UserKey(files[i-1].Largest), ikey.UserKey(files[i].Smallest)) >= 0 {
					t.Errorf("level %d files overlap: %q vs %q",
						l, ikey.UserKey(files[i-1].Largest), ikey.UserKey(files[i].Smallest))
				}
			}
		}
		return nil
	})
}

func TestRandomOpsMatchReferenceMap(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(800))
		switch rng.Intn(10) {
		case 0:
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(ref, k)
		default:
			v := fmt.Sprintf("val%08d", i)
			mustPut(t, db, k, v)
			ref[k] = v
		}
		if i%1000 == 999 {
			// Spot-check a sample.
			for j := 0; j < 50; j++ {
				probe := fmt.Sprintf("key%04d", rng.Intn(800))
				got, ok := mustGet(t, db, probe)
				wantV, wantOK := ref[probe]
				if ok != wantOK || (ok && got != wantV) {
					t.Fatalf("op %d: %s = %q/%v, want %q/%v", i, probe, got, ok, wantV, wantOK)
				}
			}
		}
	}
	for k, v := range ref {
		if got, ok := mustGet(t, db, k); !ok || got != v {
			t.Fatalf("final: %s = %q/%v want %q", k, got, ok, v)
		}
	}
}

func TestStatsCountIO(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 3000; i++ {
		mustPut(t, db, fmt.Sprintf("key%06d", i), fmt.Sprintf("val%032d", i))
	}
	s := db.Stats().Snapshot()
	if s.BlockWrites == 0 {
		t.Error("no flush block writes recorded")
	}
	if s.CompactionWrites == 0 || s.CompactionReads == 0 {
		t.Errorf("no compaction I/O recorded: %+v", s)
	}
	pre := db.Stats().Snapshot()
	mustGet(t, db, "key000001") // old key: must be on disk
	post := db.Stats().Snapshot().Sub(pre)
	if post.BlockReads == 0 {
		t.Error("disk Get did not count a block read")
	}
}

func TestEmbeddedAttrsSurviveFlushAndCompaction(t *testing.T) {
	opts := smallOpts()
	opts.SecondaryAttrs = []string{"user"}
	opts.Extract = func(key, value []byte) []sstable.AttrValue {
		var doc map[string]string
		if json.Unmarshal(value, &doc) != nil {
			return nil
		}
		return []sstable.AttrValue{{Attr: "user", Value: doc["user"]}}
	}
	db, _ := openTestDB(t, opts)
	for i := 0; i < 3000; i++ {
		v := fmt.Sprintf(`{"user":"u%03d","text":"padding padding padding"}`, i%40)
		mustPut(t, db, fmt.Sprintf("t%06d", i), v)
	}
	db.Flush()
	// Every table at every level must carry the embedded structures.
	db.View(func(v *View) error {
		check := func(fms []*FileMeta, lvl string) {
			for _, fm := range fms {
				if !fm.Table().HasAttr("user") {
					t.Errorf("%s table %d lacks embedded attr", lvl, fm.Num)
				}
				if c := fm.Table().SecondaryCandidates("user", "u007"); len(c) == 0 {
					// u007 occurs every 40 entries; any table with ≥40
					// sequential entries must contain it.
					if fm.Table().EntryCount() > 80 {
						t.Errorf("%s table %d: no candidates for frequent user", lvl, fm.Num)
					}
				}
			}
		}
		check(v.L0(), "L0")
		for l := 1; l <= v.MaxLevel(); l++ {
			check(v.Level(l), fmt.Sprintf("L%d", l))
		}
		return nil
	})
	// MemTable B-tree must cover unflushed entries.
	mustPut(t, db, "t999999", `{"user":"u999","text":"fresh"}`)
	db.View(func(v *View) error {
		tree := v.MemSecTree("user")
		if tree == nil {
			t.Fatal("no memtable secondary tree")
		}
		if ps := tree.Get("u999"); len(ps) != 1 || string(ps[0].Key) != "t999999" {
			t.Fatalf("memtable B-tree postings = %v", ps)
		}
		return nil
	})
}

func TestViewStrata(t *testing.T) {
	opts := smallOpts()
	opts.L0CompactionTrigger = 100 // keep L0 files around
	db, _ := openTestDB(t, opts)
	mustPut(t, db, "a", "1")
	db.Flush()
	mustPut(t, db, "b", "2")
	db.Flush()
	mustPut(t, db, "c", "3")
	db.View(func(v *View) error {
		if len(v.L0()) != 2 {
			t.Fatalf("L0 files = %d", len(v.L0()))
		}
		// Newest first: the "b" file must precede the "a" file.
		if string(ikey.UserKey(v.L0()[0].Smallest)) != "b" {
			t.Fatalf("L0 not newest-first: %q", ikey.UserKey(v.L0()[0].Smallest))
		}
		if v.NumStrata() != 3 { // mem + 2 L0 files
			t.Fatalf("NumStrata = %d", v.NumStrata())
		}
		if _, _, _, ok := v.MemGet([]byte("c")); !ok {
			t.Fatal("memtable miss in view")
		}
		return nil
	})
}

func TestClosedDBErrors(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDiskUsageGrows(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	before, _ := db.DiskUsage()
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key%06d", i), fmt.Sprintf("val%064d", i))
	}
	db.Flush()
	after, _ := db.DiskUsage()
	if after <= before {
		t.Fatalf("disk usage did not grow: %d → %d", before, after)
	}
}

func BenchmarkPut(b *testing.B) {
	db, _ := openTestDB(b, &Options{MemTableBytes: 4 << 20})
	val := bytes.Repeat([]byte("v"), 550) // paper's average tweet size
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("tweet%010d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetFromDisk(b *testing.B) {
	db, _ := openTestDB(b, smallOpts())
	const n = 5000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key%07d", i)), bytes.Repeat([]byte("v"), 100))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key%07d", i%n)))
	}
}

func TestWriteAmplificationMeasured(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	if db.WriteAmplification() != 0 {
		t.Fatal("WAMF nonzero before ingest")
	}
	for i := 0; i < 8000; i++ {
		mustPut(t, db, fmt.Sprintf("key%07d", i), fmt.Sprintf("val%048d", i))
	}
	db.Flush()
	wamf := db.WriteAmplification()
	// Data spans multiple levels, so each byte is rewritten a few times;
	// compression can pull the physical ratio below 1, but multi-level
	// churn must still leave a clearly positive factor.
	if wamf < 0.3 || wamf > 50 {
		t.Fatalf("implausible WAMF %.2f", wamf)
	}
	// Disabling compression must raise the physical ratio.
	opts2 := smallOpts()
	opts2.DisableCompression = true
	db2, _ := openTestDB(t, opts2)
	for i := 0; i < 8000; i++ {
		mustPut(t, db2, fmt.Sprintf("key%07d", i), fmt.Sprintf("val%048d", i))
	}
	db2.Flush()
	if db2.WriteAmplification() <= wamf {
		t.Fatalf("uncompressed WAMF (%.2f) should exceed compressed (%.2f)", db2.WriteAmplification(), wamf)
	}
}
