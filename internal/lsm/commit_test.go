package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"leveldbpp/internal/wal"
)

func groupOpts() *Options {
	return &Options{
		MemTableBytes: 64 << 20, // keep everything in one MemTable/WAL
		SyncMode:      wal.SyncGrouped,
		GroupCommit:   GroupCommitOptions{Enabled: true},
	}
}

// TestGroupCommitCrashRecovery is the concurrent-writer crash test: N
// goroutines commit 3-record batches through the group path while the
// WAL's fault injector tears a write mid-group. After reopening the
// directory, every acknowledged commit must be fully present and every
// commit must be all-or-nothing — a torn group replays none of its
// records.
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, groupOpts())
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const recsPerCommit = 3
	type ack struct{ writer, op int }
	var ackMu sync.Mutex
	acked := map[ack]bool{}

	// Let ~32 KiB through, then tear. Each commit is ~150 WAL bytes, so
	// plenty of groups succeed before the fault trips mid-frame.
	db.logMu.Lock()
	db.log.FailAfter(32 << 10)
	db.logMu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; ; op++ {
				var b Batch
				for r := 0; r < recsPerCommit; r++ {
					b.Put(
						[]byte(fmt.Sprintf("w%02d-op%05d-r%d", w, op, r)),
						[]byte(fmt.Sprintf("value-%02d-%05d-%d", w, op, r)))
				}
				if err := db.Apply(&b); err != nil {
					if !errors.Is(err, wal.ErrInjectedCrash) {
						t.Errorf("writer %d: unexpected error %v", w, err)
					}
					return
				}
				ackMu.Lock()
				acked[ack{w, op}] = true
				ackMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("no commits were acknowledged before the injected crash")
	}
	// Simulate the crash: abandon the handle without closing (Close would
	// fail on the poisoned writer anyway; the torn file on disk is the
	// artifact under test). Table handles: none (nothing flushed).

	re, err := Open(dir, &Options{MemTableBytes: 64 << 20})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()

	present := func(w, op, r int) bool {
		_, ok, err := re.Get([]byte(fmt.Sprintf("w%02d-op%05d-r%d", w, op, r)))
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	survived := 0
	for w := 0; w < writers; w++ {
		for op := 0; ; op++ {
			n := 0
			for r := 0; r < recsPerCommit; r++ {
				if present(w, op, r) {
					n++
				}
			}
			if n == 0 && !acked[ack{w, op}] {
				break // past this writer's last surviving commit
			}
			if n != 0 && n != recsPerCommit {
				t.Errorf("writer %d op %d: %d of %d records replayed (torn group)", w, op, n, recsPerCommit)
			}
			if acked[ack{w, op}] && n != recsPerCommit {
				t.Errorf("writer %d op %d: acknowledged but only %d records replayed", w, op, n)
			}
			if n == recsPerCommit {
				survived++
			}
		}
	}
	if survived < len(acked) {
		t.Errorf("%d commits survived, %d were acknowledged", survived, len(acked))
	}
	// Leader passes serialize, so durable frames are a seq-ordered prefix:
	// replay-derived lastSeq must be exactly the survivors' records.
	if want := uint64(survived * recsPerCommit); re.LastSeq() != want {
		t.Errorf("LastSeq() = %d, want %d", re.LastSeq(), want)
	}
}

// TestGroupCommitConcurrentStress pounds the group path with the full
// background pipeline (flushes, compactions, throttling) and verifies
// every write, before and after reopen.
func TestGroupCommitConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	opts := bgOpts()
	opts.GroupCommit = GroupCommitOptions{Enabled: true}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%05d", w, i)
				if err := db.Put([]byte(k), []byte("val-"+k)); err != nil {
					t.Errorf("Put(%s): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	check := func(d *DB) {
		t.Helper()
		for w := 0; w < writers; w++ {
			for i := 0; i < perWriter; i += 13 {
				k := fmt.Sprintf("w%02d-%05d", w, i)
				v, ok, err := d.Get([]byte(k))
				if err != nil || !ok || string(v) != "val-"+k {
					t.Fatalf("Get(%s) = %q %v %v", k, v, ok, err)
				}
			}
		}
	}
	check(db)
	cs := db.CommitStats()
	if cs.Commits != writers*perWriter {
		t.Errorf("CommitStats.Commits = %d, want %d", cs.Commits, writers*perWriter)
	}
	if cs.Groups > cs.Commits || cs.Groups == 0 {
		t.Errorf("CommitStats.Groups = %d (commits %d)", cs.Groups, cs.Commits)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check(re)
}

// TestGroupCommitWALEquivalence runs the same single-writer workload —
// puts, deletes, batches, write-merge coalescing — with group commit on
// and off, and requires the resulting WAL files to be byte-identical:
// a group of one commit produces exactly the seed frames, so replay
// (and every replay-derived invariant) is unchanged.
func TestGroupCommitWALEquivalence(t *testing.T) {
	merger := func(existing, incoming []byte) []byte {
		out := append(append([]byte(nil), existing...), ';')
		return append(out, incoming...)
	}
	run := func(group bool) []byte {
		dir := t.TempDir()
		opts := &Options{MemTableBytes: 64 << 20, WriteMerge: merger}
		if group {
			opts.GroupCommit = GroupCommitOptions{Enabled: true}
		}
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i%50))
			if i%17 == 0 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := db.Put(k, []byte(fmt.Sprintf("frag-%03d", i))); err != nil {
				t.Fatal(err)
			}
			if i%23 == 0 {
				var b Batch
				b.Put([]byte(fmt.Sprintf("batch-%03d", i)), []byte("bv"))
				b.Delete(k)
				if err := db.Apply(&b); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(db.walFile())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	on, off := run(true), run(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("WAL bytes differ: group-commit on %d bytes, off %d bytes", len(on), len(off))
	}
}

// TestGroupCommitLeaderHandoff forces the promoted-follower path: one
// writer holds leadership in a slow commit while others enqueue, and the
// retiring leader must promote the next waiter, not strand it.
func TestGroupCommitLeaderHandoff(t *testing.T) {
	opts := groupOpts()
	opts.SyncMode = wal.SyncOff
	opts.GroupCommit.MaxWaiters = 2 // force multiple groups per burst
	db, _ := openTestDB(t, opts)

	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("h%02d-%04d", w, i)
				if err := db.Put([]byte(k), []byte(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cs := db.CommitStats()
	if cs.Commits != writers*200 {
		t.Fatalf("Commits = %d, want %d", cs.Commits, writers*200)
	}
	if hist := db.GroupSizeHist(); hist.Count() != cs.Groups {
		t.Fatalf("group-size histogram has %d observations, want %d groups", hist.Count(), cs.Groups)
	}
	if cs.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d under SyncOff, want 0", cs.Fsyncs)
	}
}
