package lsm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// collectScan runs a merged scan and returns the visited keys and values.
func collectScan(t *testing.T, db *DB, lo, hiExcl string) (keys, vals []string) {
	t.Helper()
	var hiB []byte
	if hiExcl != "" {
		hiB = []byte(hiExcl)
	}
	err := db.Scan([]byte(lo), hiB, func(k, v []byte, seq uint64) bool {
		keys = append(keys, string(k))
		vals = append(vals, string(v))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys, vals
}

func TestScanMergedAcrossStrata(t *testing.T) {
	opts := smallOpts()
	opts.L0CompactionTrigger = 100 // keep several L0 files around
	db, _ := openTestDB(t, opts)

	// Spread versions across: L0 file 1, L0 file 2, memtable.
	mustPut(t, db, "a", "old-a")
	mustPut(t, db, "b", "only-b")
	db.Flush()
	mustPut(t, db, "a", "mid-a")
	mustPut(t, db, "c", "only-c")
	db.Flush()
	mustPut(t, db, "a", "new-a") // memtable
	mustPut(t, db, "d", "only-d")

	keys, vals := collectScan(t, db, "", "")
	if fmt.Sprint(keys) != "[a b c d]" {
		t.Fatalf("keys = %v", keys)
	}
	if vals[0] != "new-a" {
		t.Fatalf("newest version not returned: %q", vals[0])
	}
}

func TestScanSkipsTombstones(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	mustPut(t, db, "a", "1")
	mustPut(t, db, "b", "2")
	mustPut(t, db, "c", "3")
	db.Flush()
	db.Delete([]byte("b"))
	keys, _ := collectScan(t, db, "", "")
	if fmt.Sprint(keys) != "[a c]" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestScanBounds(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 20; i++ {
		mustPut(t, db, fmt.Sprintf("k%02d", i), "v")
	}
	db.Flush()
	keys, _ := collectScan(t, db, "k05", "k10")
	if fmt.Sprint(keys) != "[k05 k06 k07 k08 k09]" {
		t.Fatalf("bounded scan = %v", keys)
	}
	// Unbounded high.
	keys, _ = collectScan(t, db, "k18", "")
	if fmt.Sprint(keys) != "[k18 k19]" {
		t.Fatalf("open scan = %v", keys)
	}
	// Empty window.
	keys, _ = collectScan(t, db, "k10", "k10")
	if len(keys) != 0 {
		t.Fatalf("empty window = %v", keys)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 100; i++ {
		mustPut(t, db, fmt.Sprintf("k%03d", i), "v")
	}
	n := 0
	err := db.Scan(nil, nil, func(k, v []byte, seq uint64) bool {
		n++
		return n < 7
	})
	if err != nil || n != 7 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestScanSeqIsNewestVersion(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	mustPut(t, db, "k", "v1")
	db.Flush()
	mustPut(t, db, "k", "v2")
	var got uint64
	db.Scan(nil, nil, func(_, _ []byte, seq uint64) bool {
		got = seq
		return true
	})
	if got != db.LastSeq() {
		t.Fatalf("scan seq = %d, want newest %d", got, db.LastSeq())
	}
}

func TestScanMatchesReferenceUnderChurn(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	ref := map[string]string{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(500))
		if rng.Intn(8) == 0 {
			db.Delete([]byte(k))
			delete(ref, k)
		} else {
			v := fmt.Sprintf("v%06d", i)
			mustPut(t, db, k, v)
			ref[k] = v
		}
	}
	var want []string
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	keys, vals := collectScan(t, db, "", "")
	if len(keys) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(keys), len(want))
	}
	for i, k := range keys {
		if k != want[i] || vals[i] != ref[k] {
			t.Fatalf("position %d: got %s=%s want %s=%s", i, k, vals[i], want[i], ref[want[i]])
		}
	}
}

func TestScanEmptyDB(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	keys, _ := collectScan(t, db, "", "")
	if len(keys) != 0 {
		t.Fatalf("scan of empty db = %v", keys)
	}
}

func TestViewScanConsistentWithDBScan(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 300; i++ {
		mustPut(t, db, fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	var a, b []string
	db.Scan(nil, nil, func(k, _ []byte, _ uint64) bool { a = append(a, string(k)); return true })
	db.View(func(v *View) error {
		return v.Scan(nil, nil, func(k, _ []byte, _ uint64) bool { b = append(b, string(k)); return true })
	})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("View.Scan differs from DB.Scan")
	}
}

func TestViewHelpers(t *testing.T) {
	opts := smallOpts()
	opts.SecondaryAttrs = []string{"a"}
	db, _ := openTestDB(t, opts)
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	db.Flush()
	if db.FilterMemoryUsage() <= 0 {
		t.Fatal("no filter memory after flush")
	}
	if s := db.DebugString(); len(s) == 0 {
		t.Fatal("empty DebugString")
	}
	db.View(func(v *View) error {
		if _, ok, err := v.Get([]byte("key00042")); err != nil || !ok {
			t.Fatalf("View.Get: %v %v", ok, err)
		}
		deepest := v.DeepestNonEmpty()
		if deepest < 1 {
			t.Fatalf("deepest = %d", deepest)
		}
		if fm := v.FindLevelFile(deepest, []byte("key00042")); fm == nil {
			// The key may live at another level; probe each.
			found := false
			for l := 1; l <= v.MaxLevel(); l++ {
				if v.FindLevelFile(l, []byte("key00042")) != nil {
					found = true
				}
			}
			for _, f := range v.L0() {
				if f.Table().MayContainPrimary([]byte("key00042")) {
					found = true
				}
			}
			if !found {
				t.Fatal("FindLevelFile found nothing at any level")
			}
		}
		if files := v.OverlappingFiles(deepest, []byte("key00000"), []byte("key99999")); len(files) == 0 {
			t.Fatal("OverlappingFiles empty on full range")
		}
		it := v.MemIter()
		it.SeekToFirst() // memtable may be empty after flush; just exercise
		return nil
	})
	seq1, err := db.PutWithSeq([]byte("pws"), []byte("v"))
	if err != nil || seq1 == 0 {
		t.Fatalf("PutWithSeq: %d %v", seq1, err)
	}
	seq2, err := db.DeleteWithSeq([]byte("pws"))
	if err != nil || seq2 != seq1+1 {
		t.Fatalf("DeleteWithSeq: %d %v", seq2, err)
	}
}
