package lsm

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestCheckpointIsConsistentSnapshot(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	// Leave some data in the MemTable (unflushed) on purpose.
	mustPut(t, db, "memonly", "still-in-wal")

	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := db.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	// Writes after the checkpoint must not appear in it.
	mustPut(t, db, "after", "too-late")
	db.Flush()

	snap, err := Open(ckpt, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 2000; i++ {
		if v, ok := mustGet(t, snap, fmt.Sprintf("key%05d", i)); !ok || v != fmt.Sprintf("val%032d", i) {
			t.Fatalf("checkpoint lost key%05d: %q %v", i, v, ok)
		}
	}
	if v, ok := mustGet(t, snap, "memonly"); !ok || v != "still-in-wal" {
		t.Fatalf("MemTable data missing from checkpoint: %q %v", v, ok)
	}
	if _, ok := mustGet(t, snap, "after"); ok {
		t.Fatal("post-checkpoint write leaked into the snapshot")
	}
	// The snapshot must pass a full audit and accept new writes.
	rep, err := snap.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("checkpoint audit: %v %v", rep.Problems, err)
	}
	mustPut(t, snap, "fresh", "write-into-snapshot")
	if v, _ := mustGet(t, snap, "fresh"); v != "write-into-snapshot" {
		t.Fatal("snapshot not writable")
	}
	// And the original is untouched.
	if v, _ := mustGet(t, db, "after"); v != "too-late" {
		t.Fatal("original database damaged by checkpoint")
	}
}

func TestCheckpointRefusesExistingDir(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	mustPut(t, db, "k", "v")
	dir := t.TempDir() // exists
	if err := db.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint into existing dir accepted")
	}
}

func TestCheckpointEmptyDB(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	ckpt := filepath.Join(t.TempDir(), "empty-ckpt")
	if err := db.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(ckpt, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, ok := mustGet(t, snap, "anything"); ok {
		t.Fatal("empty checkpoint has data")
	}
}
