package lsm

import (
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/wal"
)

// Batch collects writes that commit atomically: all operations share one
// WAL frame, so after a crash either every operation replays or none
// does, and readers never observe a prefix (operations apply under the
// writer lock).
type Batch struct {
	records []wal.Record
}

// Put queues key → value.
func (b *Batch) Put(key, value []byte) {
	b.records = append(b.records, wal.Record{
		Kind:  byte(ikey.KindSet),
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.records = append(b.records, wal.Record{
		Kind: byte(ikey.KindDelete),
		Key:  append([]byte(nil), key...),
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.records) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.records = b.records[:0] }

// Apply commits the batch. Within the batch, later operations shadow
// earlier ones on the same key (they receive higher sequence numbers).
// The MemTable flush check runs once, after the whole batch.
func (db *DB) Apply(b *Batch) error {
	_, err := db.ApplyWithSeq(b)
	return err
}

// ApplyWithSeq is Apply returning the sequence number assigned to the
// batch's first operation (operation i gets firstSeq+i).
func (db *DB) ApplyWithSeq(b *Batch) (uint64, error) {
	if b.Len() == 0 {
		return 0, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.bg != nil {
		if err := db.throttleLocked(); err != nil {
			return 0, err
		}
	}
	// WriteMerge must run before logging: the WAL stores post-merge
	// values so replay reconstructs the MemTable without re-merging.
	// Records later in the batch merge against earlier ones too.
	var pending map[string][]byte
	if db.opts.WriteMerge != nil {
		pending = make(map[string][]byte, len(b.records))
	}
	for i := range b.records {
		db.lastSeq++
		b.records[i].Seq = db.lastSeq
		if db.opts.WriteMerge == nil {
			continue
		}
		k := string(b.records[i].Key)
		if b.records[i].Kind != byte(ikey.KindSet) {
			delete(pending, k)
			continue
		}
		existing, merged := pending[k], false
		if existing != nil {
			merged = true
		} else if v, _, kind, ok := db.mem.get(b.records[i].Key); ok && kind == ikey.KindSet {
			existing, merged = v, true
		}
		if merged {
			b.records[i].Value = db.opts.WriteMerge(existing, b.records[i].Value)
		}
		pending[k] = b.records[i].Value
	}
	firstSeq := b.records[0].Seq
	if err := db.log.AppendBatch(b.records); err != nil {
		return 0, err
	}
	if db.opts.SyncWAL {
		if err := db.log.Sync(); err != nil {
			return 0, err
		}
	}
	for _, r := range b.records {
		db.mem.add(r.Seq, ikey.Kind(r.Kind), r.Key, r.Value, db.opts.Extract)
		db.ingestBytes += int64(len(r.Key) + len(r.Value))
	}
	if db.mem.approximateBytes() >= db.opts.MemTableBytes {
		if err := db.rotateMemLocked(); err != nil {
			return 0, err
		}
	}
	return firstSeq, nil
}
