package lsm

import (
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/wal"
)

// Batch collects writes that commit atomically: all operations share one
// WAL frame, so after a crash either every operation replays or none
// does, and readers never observe a prefix (operations apply under the
// writer lock).
type Batch struct {
	records []wal.Record
}

// Put queues key → value.
func (b *Batch) Put(key, value []byte) {
	b.records = append(b.records, wal.Record{
		Kind:  byte(ikey.KindSet),
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
}

// PutNoCopy queues key → value without copying either buffer. The
// MemTable will retain both directly (they also back the WAL frame), so
// the caller must hand over ownership: neither slice may be mutated or
// reused after this call, ever — the engine keeps them until the
// MemTable flushes.
//
//lsm:aliasok — deliberate zero-copy handoff; see the contract above.
func (b *Batch) PutNoCopy(key, value []byte) {
	b.records = append(b.records, wal.Record{
		Kind:  byte(ikey.KindSet),
		Key:   key,
		Value: value,
	})
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.records = append(b.records, wal.Record{
		Kind: byte(ikey.KindDelete),
		Key:  append([]byte(nil), key...),
	})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.records) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.records = b.records[:0] }

// Apply commits the batch. Within the batch, later operations shadow
// earlier ones on the same key (they receive higher sequence numbers).
// The MemTable flush check runs once, after the whole batch.
func (db *DB) Apply(b *Batch) error {
	_, err := db.ApplyWithSeq(b)
	return err
}

// ApplyWithSeq is Apply returning the sequence number assigned to the
// batch's first operation (operation i gets firstSeq+i).
func (db *DB) ApplyWithSeq(b *Batch) (uint64, error) {
	if b.Len() == 0 {
		return 0, nil
	}
	if db.opts.GroupCommit.Enabled {
		// The batch owns its record buffers (Put copies at enqueue;
		// PutNoCopy transfers ownership), so the MemTable retains them.
		return db.commit(b.records, true, nil)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.bg != nil {
		if err := db.throttleLocked(); err != nil {
			return 0, err
		}
	}
	var pending map[string][]byte
	if db.opts.WriteMerge != nil {
		pending = make(map[string][]byte, len(b.records))
	}
	db.assignSeqsLocked(b.records, pending)
	firstSeq := b.records[0].Seq
	db.logMu.Lock()
	err := db.log.AppendBatch(b.records)
	if err == nil {
		err = db.syncWALLocked(1, nil)
	}
	db.logMu.Unlock()
	if err != nil {
		return 0, err
	}
	for _, r := range b.records {
		db.mem.add(r.Seq, ikey.Kind(r.Kind), r.Key, r.Value, db.opts.Extract)
		db.ingestBytes += int64(len(r.Key) + len(r.Value))
	}
	db.cstats.commits.Add(1)
	db.cstats.records.Add(int64(len(b.records)))
	db.cstats.groups.Add(1)
	db.groupSize.Observe(1)
	if db.mem.approximateBytes() >= db.opts.MemTableBytes {
		if err := db.rotateMemLocked(); err != nil {
			return 0, err
		}
	}
	return firstSeq, nil
}

// assignSeqsLocked stamps consecutive sequence numbers onto records and,
// when a WriteMerger is configured, rewrites each set's value with the
// merge of the newest prior value — an earlier record this commit pass
// (via pending, which spans a whole commit group) or the MemTable's
// current value. WriteMerge must run before logging: the WAL stores
// post-merge values so replay reconstructs the MemTable without
// re-merging. Caller holds db.mu.
func (db *DB) assignSeqsLocked(records []wal.Record, pending map[string][]byte) {
	for i := range records {
		db.lastSeq++
		records[i].Seq = db.lastSeq
		if db.opts.WriteMerge == nil {
			continue
		}
		k := string(records[i].Key)
		if records[i].Kind != byte(ikey.KindSet) {
			delete(pending, k)
			continue
		}
		existing, merged := pending[k], false
		if existing != nil {
			merged = true
		} else if v, _, kind, ok := db.mem.get(records[i].Key); ok && kind == ikey.KindSet {
			existing, merged = v, true
		}
		if merged {
			records[i].Value = db.opts.WriteMerge(existing, records[i].Value)
		}
		pending[k] = records[i].Value
	}
}
