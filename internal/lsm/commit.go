// Leader-based group commit (DESIGN.md §5.5). When
// Options.GroupCommit.Enabled, every Put/Delete/Apply becomes a pending
// commit on a queue: the first writer to arrive leads, drains the queue
// up to a byte/count budget, assigns one contiguous sequence range under
// db.mu, writes every member's records as a single WAL batch frame off
// db.mu (one buffer flush, and one fsync per group under SyncGrouped),
// re-acquires db.mu for the MemTable inserts, and wakes the followers.
// WAL I/O and fsync latency thereby leave the critical section guarded
// by db.mu, and concurrent committers share the per-group fsync.
package lsm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/wal"
)

// pendingCommit is one writer's enqueued commit. The enqueuing goroutine
// blocks until done or lead closes; the leader that drains it owns every
// field in between.
type pendingCommit struct {
	records []wal.Record
	noCopy  bool // MemTable may retain Key/Value without copying
	bytes   int64
	tr      *metrics.Trace

	firstSeq uint64 // set by the leader before done closes
	err      error  // set by the leader before done closes

	// done wakes the waiter after its group committed (close-once).
	done chan struct{}
	// lead promotes the waiter to leader of the next group (close-once).
	lead chan struct{}
}

// commitQueue is the group-commit waiter queue. At most one leader exists
// at a time; its commit is never in pending (it seeds its own group).
type commitQueue struct {
	mu      sync.Mutex
	pending []*pendingCommit // guarded by mu
	leading bool             // guarded by mu
}

// enqueue registers pc and reports whether the caller must lead: true
// when no leader is active (pc seeds the new group and is not queued),
// false when pc joined pending and the caller should wait.
func (q *commitQueue) enqueue(pc *pendingCommit) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.leading {
		q.leading = true
		return true
	}
	q.pending = append(q.pending, pc)
	return false
}

// drain builds the leader's group: seed plus queued commits, in arrival
// order, until adding one would exceed maxBytes payload or maxWaiters
// members. The seed always fits regardless of budget.
func (q *commitQueue) drain(seed *pendingCommit, maxBytes int64, maxWaiters int) []*pendingCommit {
	q.mu.Lock()
	defer q.mu.Unlock()
	group := []*pendingCommit{seed}
	bytes := seed.bytes
	for len(q.pending) > 0 && len(group) < maxWaiters {
		pc := q.pending[0]
		if bytes+pc.bytes > maxBytes {
			break
		}
		group = append(group, pc)
		bytes += pc.bytes
		q.pending = q.pending[1:]
	}
	if len(q.pending) == 0 {
		q.pending = nil // release the drained backing array
	}
	return group
}

// handoff retires the current leader: it pops and returns the next
// leader's commit, or nil (clearing the leading flag) when the queue is
// empty.
func (q *commitQueue) handoff() *pendingCommit {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		q.leading = false
		return nil
	}
	next := q.pending[0]
	q.pending = q.pending[1:]
	return next
}

// commitStats counts logical commit activity. Atomics: read freely.
type commitStats struct {
	commits atomic.Int64 // logical commits acknowledged
	records atomic.Int64 // records across all commits
	groups  atomic.Int64 // WAL write passes (a group per pass; inline commits are groups of 1)
	fsyncs  atomic.Int64 // fsyncs issued by the commit path
}

// CommitStats is a point-in-time snapshot of commit-path counters.
type CommitStats struct {
	Commits int64 // logical commits acknowledged
	Records int64 // records across all commits
	Groups  int64 // WAL write passes (groups)
	Fsyncs  int64 // fsyncs issued
}

// FsyncsPerCommit returns fsyncs divided by commits (0 before any
// commit) — the amortization group commit buys under SyncGrouped.
func (s CommitStats) FsyncsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Fsyncs) / float64(s.Commits)
}

// MeanGroupSize returns commits divided by groups (0 before any group).
func (s CommitStats) MeanGroupSize() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.Commits) / float64(s.Groups)
}

// Sub returns s - o field-wise, for interval measurements.
func (s CommitStats) Sub(o CommitStats) CommitStats {
	return CommitStats{
		Commits: s.Commits - o.Commits,
		Records: s.Records - o.Records,
		Groups:  s.Groups - o.Groups,
		Fsyncs:  s.Fsyncs - o.Fsyncs,
	}
}

// CommitStats returns the DB's commit-path counters.
func (db *DB) CommitStats() CommitStats {
	return CommitStats{
		Commits: db.cstats.commits.Load(),
		Records: db.cstats.records.Load(),
		Groups:  db.cstats.groups.Load(),
		Fsyncs:  db.cstats.fsyncs.Load(),
	}
}

// GroupSizeHist returns the histogram of commits per WAL write pass.
func (db *DB) GroupSizeHist() *metrics.Histogram { return db.groupSize }

// commit routes one logical commit (records, not yet sequenced) through
// the group-commit queue and blocks until it is durable per SyncMode.
// It returns the sequence number assigned to records[0]. When noCopy is
// set the MemTable retains the record buffers directly; the caller must
// never mutate them afterwards.
func (db *DB) commit(records []wal.Record, noCopy bool, tr *metrics.Trace) (uint64, error) {
	var bytes int64
	for i := range records {
		bytes += int64(len(records[i].Key) + len(records[i].Value))
	}
	pc := &pendingCommit{
		records: records,
		noCopy:  noCopy,
		bytes:   bytes,
		tr:      tr,
		done:    make(chan struct{}),
		lead:    make(chan struct{}),
	}
	if db.commitQ.enqueue(pc) {
		db.leadGroup(pc)
	} else {
		t0 := tr.Now()
		select {
		case <-pc.done:
			tr.Since(metrics.PhaseCommitWait, t0)
		case <-pc.lead:
			tr.Since(metrics.PhaseCommitWait, t0)
			db.leadGroup(pc)
		}
	}
	return pc.firstSeq, pc.err
}

// leadGroup runs one leader pass seeded by seed, publishes the result to
// every member, and hands leadership to the next waiter (if any).
func (db *DB) leadGroup(seed *pendingCommit) {
	// Yield once before draining: the previous pass released its group and
	// promoted this leader at the same instant, so the released writers
	// are runnable but typically have not re-enqueued yet. One scheduler
	// pass lets them join this group instead of the next, roughly doubling
	// the steady-state group size for sub-millisecond fsyncs (for longer
	// fsyncs arrivals during the sync dominate and the yield is noise).
	runtime.Gosched()
	group := db.commitQ.drain(seed,
		db.opts.GroupCommit.MaxBatchBytes, db.opts.GroupCommit.MaxWaiters)
	err := db.commitGroup(group)
	for _, pc := range group {
		pc.err = err
		close(pc.done)
	}
	if next := db.commitQ.handoff(); next != nil {
		close(next.lead)
	}
}

// commitGroup performs the leader pass over group: sequence assignment
// and write-merge under db.mu, WAL batch append + sync under logMu only,
// MemTable inserts back under db.mu, then counter updates. The returned
// error is shared by every member.
func (db *DB) commitGroup(group []*pendingCommit) error {
	tr := group[0].tr // the leader's own trace; followers only see commit_wait
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.bg != nil {
		t0 := tr.Now()
		err := db.throttleLocked()
		tr.Since(metrics.PhaseThrottle, t0)
		if err != nil {
			db.mu.Unlock()
			return err
		}
	}
	// One contiguous sequence range for the whole group, and one shared
	// write-merge scope: a member's Put coalesces against earlier members
	// in this group exactly as it would against earlier serial commits,
	// so the WAL records (post-merge values) replay identically.
	var pending map[string][]byte
	total := 0
	if db.opts.WriteMerge != nil {
		for _, pc := range group {
			total += len(pc.records)
		}
		pending = make(map[string][]byte, total)
		total = 0
	}
	t0 := tr.Now()
	for _, pc := range group {
		pc.firstSeq = db.lastSeq + 1
		db.assignSeqsLocked(pc.records, pending)
		total += len(pc.records)
	}
	if db.opts.WriteMerge != nil {
		tr.Since(metrics.PhaseMergeProbe, t0)
	}
	// Gate freeze/flush until the inserts land: flushedSeq/immSeq may not
	// advance over sequences that are not yet in a MemTable.
	db.commitsInFlight++
	db.mu.Unlock()

	t0 = tr.Now()
	db.logMu.Lock()
	records := group[0].records
	if len(group) > 1 {
		records = make([]wal.Record, 0, total)
		for _, pc := range group {
			records = append(records, pc.records...)
		}
	}
	werr := db.log.AppendBatch(records)
	if werr == nil {
		werr = db.syncWALLocked(len(group), tr)
	}
	db.logMu.Unlock()
	tr.Since(metrics.PhaseWAL, t0)

	db.mu.Lock()
	if werr == nil {
		t0 = tr.Now()
		for _, pc := range group {
			for _, r := range pc.records {
				key, value := r.Key, r.Value
				if !pc.noCopy {
					key = append([]byte(nil), key...)
					value = append([]byte(nil), value...)
				}
				db.mem.add(r.Seq, ikey.Kind(r.Kind), key, value, db.opts.Extract)
				db.ingestBytes += int64(len(r.Key) + len(r.Value))
			}
		}
		tr.Since(metrics.PhaseMemInsert, t0)
	}
	db.commitsInFlight--
	db.cond.Broadcast() // wake freeze/flush waiting on commitsInFlight
	if werr != nil {
		db.mu.Unlock()
		return werr
	}
	var rerr error
	if db.mem.approximateBytes() >= db.opts.MemTableBytes && !db.closed {
		t0 = tr.Now()
		rerr = db.rotateMemLocked()
		tr.Since(metrics.PhaseRotate, t0)
	}
	db.mu.Unlock()

	db.cstats.groups.Add(1)
	db.cstats.commits.Add(int64(len(group)))
	db.cstats.records.Add(int64(total))
	db.groupSize.Observe(float64(len(group)))
	return rerr
}

// syncWALLocked makes the group's WAL frames durable per SyncMode: a
// buffer flush under SyncOff (acknowledged writes are always visible in
// the file), one fsync per group under SyncGrouped, one per member under
// SyncAlways (the seed-equivalent accounting). Caller holds logMu.
func (db *DB) syncWALLocked(members int, tr *metrics.Trace) error {
	switch db.opts.SyncMode {
	case wal.SyncGrouped:
		t0 := tr.Now()
		err := db.log.Sync()
		tr.Since(metrics.PhaseWALSync, t0)
		if err != nil {
			return err
		}
		db.cstats.fsyncs.Add(1)
	case wal.SyncAlways:
		t0 := tr.Now()
		for i := 0; i < members; i++ {
			if err := db.log.Sync(); err != nil {
				tr.Since(metrics.PhaseWALSync, t0)
				return err
			}
		}
		tr.Since(metrics.PhaseWALSync, t0)
		db.cstats.fsyncs.Add(int64(members))
	default: // SyncOff
		if err := db.log.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// waitCommitsLocked blocks until no leader pass sits between sequence
// assignment and MemTable insertion. freeze/flush call it before
// treating lastSeq as fully represented in the MemTables. Caller holds
// db.mu.
func (db *DB) waitCommitsLocked() {
	for db.commitsInFlight > 0 {
		db.cond.Wait()
	}
}
