package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestBatchBasic(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	b.Put([]byte("c"), []byte("3"))
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustGet(t, db, "a"); ok {
		t.Fatal("later delete in batch must shadow earlier put")
	}
	if v, _ := mustGet(t, db, "b"); v != "2" {
		t.Fatal("batch put lost")
	}
	if v, _ := mustGet(t, db, "c"); v != "3" {
		t.Fatal("batch put lost")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemTableBytes = 1 << 30 // keep everything in the WAL
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 100; i++ {
		if v, ok := mustGet(t, db2, fmt.Sprintf("k%03d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d = %q %v after reopen", i, v, ok)
		}
	}
}

func TestBatchCrashAtomicity(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemTableBytes = 1 << 30
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A committed single put, then a large batch.
	mustPut(t, db, "before", "yes")
	var b Batch
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("batch%02d", i)), []byte("v"))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Corrupt the tail of the WAL inside the batch frame: the whole batch
	// must vanish on replay, not a prefix of it.
	walFile := filepath.Join(dir, "WAL")
	fi, _ := os.Stat(walFile)
	if err := os.Truncate(walFile, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := mustGet(t, db2, "before"); !ok {
		t.Fatal("committed record before the batch lost")
	}
	for i := 0; i < 50; i++ {
		if _, ok := mustGet(t, db2, fmt.Sprintf("batch%02d", i)); ok {
			t.Fatalf("partial batch visible after crash: batch%02d", i)
		}
	}
}

func TestBatchWriteMergeIntraBatch(t *testing.T) {
	opts := smallOpts()
	opts.WriteMerge = func(existing, incoming []byte) []byte {
		return append(append([]byte(nil), existing...), incoming...)
	}
	db, _ := openTestDB(t, opts)
	mustPut(t, db, "list", "a") // pre-existing memtable value
	var b Batch
	b.Put([]byte("list"), []byte("b"))
	b.Put([]byte("list"), []byte("c"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if v, _ := mustGet(t, db, "list"); v != "abc" {
		t.Fatalf("merged batch value = %q, want abc", v)
	}
}

func TestBatchWriteMergeSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.MemTableBytes = 1 << 30
	opts.WriteMerge = func(existing, incoming []byte) []byte {
		return append(append([]byte(nil), existing...), incoming...)
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Put([]byte("list"), []byte("x"))
	b.Put([]byte("list"), []byte("y"))
	db.Apply(&b)
	db.Close()
	db2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// The WAL stores post-merge values, so replay must reproduce "xy"
	// without re-running the merger.
	if v, _ := mustGet(t, db2, "list"); v != "xy" {
		t.Fatalf("after replay = %q, want xy", v)
	}
}

func TestBatchTriggersFlush(t *testing.T) {
	db, _ := openTestDB(t, smallOpts()) // 8 KiB memtable
	var b Batch
	for i := 0; i < 400; i++ {
		b.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%064d", i)))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	var nL0 int
	db.View(func(v *View) error { nL0 = len(v.L0()) + len(v.Level(1)); return nil })
	if nL0 == 0 {
		t.Fatal("large batch did not flush")
	}
	for i := 0; i < 400; i++ {
		if _, ok := mustGet(t, db, fmt.Sprintf("key%04d", i)); !ok {
			t.Fatalf("key%04d lost in flush", i)
		}
	}
}
