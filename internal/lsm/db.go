package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"leveldbpp/internal/btree"
	"leveldbpp/internal/cache"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/skiplist"
	"leveldbpp/internal/sstable"
	"leveldbpp/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

// ErrStalled is returned by Health while the background-mode L0 write-stop
// throttle is engaged: writes block until compaction drains level 0.
var ErrStalled = errors.New("lsm: write stall: level-0 at stop trigger")

// The engine-wide blessed lock order, enforced whole-program by
// lsmlint's lockorder analyzer (DESIGN.md §5.8). A lock may be acquired
// only while holding locks strictly earlier in some chain; the order is
// the transitive closure of all chains. core's writeMu is the outermost
// (it serializes primary+index write pairs above this package), then the
// compaction interlock, then db.mu, then the WAL lock; cache shards and
// metrics histograms are leaves taken under db.mu. The commit queue's
// own mutex is deliberately unordered against db.mu — the group-commit
// protocol never holds one while taking the other.
//
// The sub-compaction run lock (compactionRun.mu) is a leaf below db.mu:
// the inline-mode writer cancels a failed run while holding db.mu, and
// partition workers take it bare — never the other way around. The
// tracer's ring mutex is a leaf for the same reason: inline compactions
// finish their OpCompact trace while still holding db.mu, and
// Tracer.finish touches nothing but its own ring and aggregates.
//
//lsm:lockorder core.DB.writeMu < lsm.background.compactionMu < lsm.DB.mu < lsm.DB.logMu
//lsm:lockorder lsm.DB.mu < cache.shard.mu
//lsm:lockorder lsm.DB.mu < metrics.Histogram.mu
//lsm:lockorder core.DB.writeMu < lsm.commitQueue.mu
//lsm:lockorder lsm.DB.mu < lsm.compactionRun.mu
//lsm:lockorder lsm.DB.mu < metrics.Tracer.mu

// DB is a single-node LSM key-value store. Writes are serialized. By
// default flushes and compactions run inline on the writing goroutine
// (see package doc); with Options.BackgroundCompaction they move to
// dedicated goroutines and the writer only swaps MemTables.
type DB struct {
	dir  string
	opts Options

	mu   sync.RWMutex
	cond *sync.Cond // signals imm-slot free, L0 drained, background done, commits landed
	mem  *memTable  // guarded by mu
	imm  *memTable  // guarded by mu; frozen MemTable awaiting background flush (nil inline)
	// logMu guards the WAL writer pointer and all WAL I/O, so a
	// group-commit leader appends and fsyncs without holding db.mu.
	// Lock order: db.mu (either mode) before logMu, never the reverse;
	// no goroutine acquires db.mu while holding logMu.
	logMu   sync.Mutex
	log     *wal.Writer // guarded by logMu
	memWALs []string    // guarded by mu; WAL files backing mem (active segment last)
	immWALs []string    // guarded by mu; WAL files backing imm; deleted after its flush
	immSeq  uint64      // guarded by mu; highest seq in imm (manifest floor for its flush)
	walSeq  uint64      // guarded by mu; next background WAL segment number
	v       *version    // guarded by mu
	lastSeq uint64      // guarded by mu
	// compactingLevels marks levels that are input or output of an
	// in-flight background compaction job; the scheduler only picks jobs
	// whose level pair is unmarked, so concurrent jobs never share files.
	compactingLevels []bool   // guarded by mu
	flushedSeq       uint64   // guarded by mu; highest seq durable in SSTables (manifest LastSeq)
	compactPtr       [][]byte // guarded by mu; per-level round-robin compaction cursor (user key)
	blockCache       *cache.Cache
	ingestBytes      int64 // guarded by mu; user key+value bytes accepted, for WAMF
	closed           bool  // guarded by mu

	// commitsInFlight counts leader passes between sequence assignment
	// (under mu) and MemTable insertion (back under mu). freeze/flush/
	// Close wait for zero via waitCommitsLocked before treating lastSeq
	// as fully present in the MemTables.
	commitsInFlight int // guarded by mu
	commitQ         commitQueue
	cstats          commitStats
	groupSize       *metrics.Histogram // commits per WAL write pass

	// nextFileNum is atomic so the background compactor can allocate
	// output numbers while rolling tables without holding db.mu.
	nextFileNum atomic.Uint64

	// Sub-compaction observability (DESIGN.md §5.9), atomic because
	// partition workers update them off-lock: partitions merged,
	// currently-busy workers, and cumulative writer stall time under the
	// L0 stop trigger.
	subcompactions atomic.Int64
	workersBusy    atomic.Int64
	stallNS        atomic.Int64

	bg *background // non-nil iff Options.BackgroundCompaction

	// testBlockFlush, when non-nil, is received from by the background
	// flusher before it builds a table — lets crash tests freeze a DB with
	// an unflushed immutable MemTable outstanding.
	testBlockFlush chan struct{}

	// testCompactRoll, when non-nil, runs after a compaction finishes each
	// output table, while nothing references it yet — lets crash tests
	// snapshot a directory with sub-compaction outputs that no version
	// edit has installed. Set before the compaction starts.
	testCompactRoll func()
}

// Open creates or recovers a DB in dir.
func Open(dir string, o *Options) (*DB, error) {
	opts := o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: create dir: %w", err)
	}
	db := &DB{
		dir:              dir,
		opts:             opts,
		mem:              newMemTable(opts.SecondaryAttrs),
		v:                newVersion(opts.MaxLevels),
		compactPtr:       make([][]byte, opts.MaxLevels),
		compactingLevels: make([]bool, opts.MaxLevels),
	}
	db.cond = sync.NewCond(&db.mu)
	db.nextFileNum.Store(1)
	db.groupSize = metrics.NewHistogramBuckets(0, metrics.ExpBuckets(1, 2, 9))
	if opts.BlockCacheBytes > 0 {
		db.blockCache = cache.New(opts.BlockCacheBytes)
	}

	m, found, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if found {
		db.nextFileNum.Store(m.NextFileNum)
		db.lastSeq = m.LastSeq
		db.flushedSeq = m.LastSeq
		for l, files := range m.Levels {
			if l >= opts.MaxLevels {
				return nil, fmt.Errorf("lsm: manifest has %d levels, MaxLevels is %d", len(m.Levels), opts.MaxLevels)
			}
			for _, fr := range files {
				fm, err := db.openTable(fr)
				if err != nil {
					return nil, err
				}
				db.v.levels[l] = append(db.v.levels[l], fm)
			}
		}
	}

	// Replay the WAL: records newer than the manifest's sequence were in
	// a MemTable at crash/close time. Background mode writes numbered
	// segments alongside the legacy single file, so replay visits them
	// all (record seqs are unique, so segment order is immaterial).
	replayFloor := db.lastSeq
	segments := walSegments(dir)
	replayFiles := append([]string{db.walFile()}, segments...)
	for _, path := range replayFiles {
		err = wal.Replay(path, func(r wal.Record) error {
			if r.Seq <= replayFloor {
				return nil // already durable in an SSTable
			}
			db.mem.add(r.Seq, ikey.Kind(r.Kind), r.Key, r.Value, opts.Extract)
			if r.Seq > db.lastSeq {
				db.lastSeq = r.Seq
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	if opts.BackgroundCompaction {
		// Start a fresh segment; every pre-existing WAL file still backs
		// the recovered MemTable and is deleted only after its flush.
		db.walSeq = nextWALSeq(segments) + 1
		seg := walSegmentPath(dir, db.walSeq)
		db.log, err = wal.Create(seg)
		if err != nil {
			return nil, err
		}
		if _, statErr := os.Stat(db.walFile()); statErr == nil {
			db.memWALs = append(db.memWALs, db.walFile())
		}
		db.memWALs = append(db.memWALs, segments...)
		db.memWALs = append(db.memWALs, seg)
	} else {
		db.log, err = wal.Append(db.walFile())
		if err != nil {
			return nil, err
		}
		db.memWALs = append(append([]string{}, segments...), db.walFile())
	}
	db.removeOrphanTables()
	if opts.BackgroundCompaction {
		db.startBackground()
	}
	db.emit(metrics.Event{
		Type:    metrics.EventOpen,
		Entries: db.mem.list.Len(),
		Bytes:   db.mem.approximateBytes(),
		Detail:  dir,
	})
	return db, nil
}

// emit forwards e to the configured event sink (nil-safe).
func (db *DB) emit(e metrics.Event) {
	if db.opts.Events != nil {
		db.opts.Events.Emit(e)
	}
}

// walSegmentPath names background-mode WAL segment n.
func walSegmentPath(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("WAL-%06d", n))
}

// walSegments lists existing numbered WAL segments, oldest first.
func walSegments(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "WAL-") && len(name) > 4 {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out
}

func nextWALSeq(segments []string) uint64 {
	var maxN uint64
	for _, s := range segments {
		var n uint64
		if _, err := fmt.Sscanf(filepath.Base(s), "WAL-%d", &n); err == nil && n > maxN {
			maxN = n
		}
	}
	return maxN
}

// removeOrphanTables deletes .sst files not referenced by the manifest —
// the residue of a crash between installing a compaction's new version
// and deleting its inputs. Safe at open: nothing references them.
//
//lsm:locked — called only from Open, before the DB is shared.
func (db *DB) removeOrphanTables() {
	live := map[string]bool{}
	for _, level := range db.v.levels {
		for _, fm := range level {
			live[filepath.Base(tablePath(db.dir, fm.Num))] = true
		}
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return // best-effort; an unreadable dir will fail loudly elsewhere
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".sst" && !live[name] {
			_ = os.Remove(filepath.Join(db.dir, name))
		}
	}
}

func (db *DB) walFile() string { return filepath.Join(db.dir, "WAL") }

func (db *DB) openTable(fr fileRecord) (*FileMeta, error) {
	f, err := os.Open(tablePath(db.dir, fr.Num))
	if err != nil {
		return nil, fmt.Errorf("lsm: open table %06d: %w", fr.Num, err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	tbl, err := openSSTable(f, fi.Size(), db.opts.Stats, db.blockCache)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	fm := &FileMeta{Num: fr.Num, Size: fr.Size, tbl: tbl, f: f}
	fm.Smallest = append([]byte(nil), tbl.Smallest()...)
	fm.Largest = append([]byte(nil), tbl.Largest()...)
	return fm, nil
}

// Put writes key → value. If a WriteMerger is configured and the MemTable
// already holds a live value for key, the merger combines them first
// (Lazy-index fragment coalescing; memory-only, no disk I/O).
func (db *DB) Put(key, value []byte) error {
	_, err := db.write(ikey.KindSet, key, value, nil)
	return err
}

// PutWithSeq is Put returning the assigned sequence number, which
// secondary-index layers stamp into posting-list entries so top-K
// ordering follows primary-table insertion time.
func (db *DB) PutWithSeq(key, value []byte) (uint64, error) {
	return db.write(ikey.KindSet, key, value, nil)
}

// PutWithSeqTraced is PutWithSeq recording write-path phase timings
// (throttle, wal, mem_insert, rotate) into tr. tr may be nil.
func (db *DB) PutWithSeqTraced(key, value []byte, tr *metrics.Trace) (uint64, error) {
	return db.write(ikey.KindSet, key, value, tr)
}

// Delete writes a tombstone for key.
func (db *DB) Delete(key []byte) error {
	_, err := db.write(ikey.KindDelete, key, nil, nil)
	return err
}

// DeleteWithSeq is Delete returning the assigned sequence number.
func (db *DB) DeleteWithSeq(key []byte) (uint64, error) {
	return db.write(ikey.KindDelete, key, nil, nil)
}

// DeleteWithSeqTraced is DeleteWithSeq with write-path phase tracing.
func (db *DB) DeleteWithSeqTraced(key []byte, tr *metrics.Trace) (uint64, error) {
	return db.write(ikey.KindDelete, key, nil, tr)
}

func (db *DB) write(kind ikey.Kind, key, value []byte, tr *metrics.Trace) (uint64, error) {
	if db.opts.GroupCommit.Enabled {
		return db.commit([]wal.Record{{Kind: byte(kind), Key: key, Value: value}}, false, tr)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if db.bg != nil {
		t0 := tr.Now()
		err := db.throttleLocked()
		tr.Since(metrics.PhaseThrottle, t0)
		if err != nil {
			return 0, err
		}
	}
	if db.opts.WriteMerge != nil && kind == ikey.KindSet {
		t0 := tr.Now()
		if existing, _, k, ok := db.mem.get(key); ok && k == ikey.KindSet {
			value = db.opts.WriteMerge(existing, value)
		}
		tr.Since(metrics.PhaseMergeProbe, t0)
	}
	db.lastSeq++
	seq := db.lastSeq
	t0 := tr.Now()
	db.logMu.Lock()
	err := db.log.Append(wal.Record{Seq: seq, Kind: byte(kind), Key: key, Value: value})
	if err == nil {
		err = db.syncWALLocked(1, tr)
	}
	db.logMu.Unlock()
	tr.Since(metrics.PhaseWAL, t0)
	if err != nil {
		return 0, err
	}
	// Copy: callers may reuse their buffers.
	t0 = tr.Now()
	db.mem.add(seq, kind, append([]byte(nil), key...), append([]byte(nil), value...), db.opts.Extract)
	tr.Since(metrics.PhaseMemInsert, t0)
	db.ingestBytes += int64(len(key) + len(value))
	db.cstats.commits.Add(1)
	db.cstats.records.Add(1)
	db.cstats.groups.Add(1)
	db.groupSize.Observe(1)

	if db.mem.approximateBytes() >= db.opts.MemTableBytes {
		t0 = tr.Now()
		err := db.rotateMemLocked()
		tr.Since(metrics.PhaseRotate, t0)
		if err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateMemLocked handles a full MemTable: inline mode flushes and
// compacts on the calling goroutine; background mode freezes the
// MemTable and hands it to the flusher.
func (db *DB) rotateMemLocked() error {
	if db.bg != nil {
		return db.freezeMemLocked(false)
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// Get returns the newest live value for key, reading the MemTable, then
// level-0 files newest-first, then one file per deeper level.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	return db.GetTraced(key, nil)
}

// GetTraced is Get recording read-path phase timings (mem_probe,
// imm_probe, l0_probe, level_probe, plus block_load/cache_hit sub-phases)
// into tr. tr may be nil.
func (db *DB) GetTraced(key []byte, tr *metrics.Trace) ([]byte, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	return db.getLocked(key, tr)
}

//lsm:hotpath
func (db *DB) getLocked(key []byte, tr *metrics.Trace) ([]byte, bool, error) {
	t0 := tr.Now()
	if value, _, kind, ok := db.mem.get(key); ok {
		tr.Since(metrics.PhaseMemProbe, t0)
		if kind == ikey.KindDelete {
			return nil, false, nil
		}
		return value, true, nil
	}
	tr.Since(metrics.PhaseMemProbe, t0)
	if db.imm != nil { // frozen MemTable: newer than any SSTable
		t0 = tr.Now()
		value, _, kind, ok := db.imm.get(key)
		tr.Since(metrics.PhaseImmProbe, t0)
		if ok {
			if kind == ikey.KindDelete {
				return nil, false, nil
			}
			return value, true, nil
		}
	}
	// One scratch serves every table probed by this GET; the returned
	// value aliases immutable block contents (like the MemTable paths
	// alias arena memory), so no per-hit copies are made.
	var sc sstable.GetScratch
	sc.Trace = tr
	t0 = tr.Now()
	for _, fm := range db.v.levels[0] { // newest first
		m := tr.BlockMark()
		ik, val, ok, err := fm.tbl.GetWith(&sc, key)
		tr.CountLevelSince(0, m)
		if err != nil {
			return nil, false, err
		}
		if ok {
			tr.Since(metrics.PhaseL0Probe, t0)
			if ikey.KindOf(ik) == ikey.KindDelete {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	tr.Since(metrics.PhaseL0Probe, t0)
	t0 = tr.Now()
	for l := 1; l < len(db.v.levels); l++ {
		fm := db.v.findFile(l, key)
		if fm == nil {
			continue
		}
		m := tr.BlockMark()
		ik, val, ok, err := fm.tbl.GetWith(&sc, key)
		tr.CountLevelSince(l, m)
		if err != nil {
			return nil, false, err
		}
		if ok {
			tr.Since(metrics.PhaseLevelProbe, t0)
			if ikey.KindOf(ik) == ikey.KindDelete {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	tr.Since(metrics.PhaseLevelProbe, t0)
	return nil, false, nil
}

// Flush forces the MemTable to level 0 and runs any pending compactions.
// In background mode it blocks until the background pipeline has drained
// (frozen MemTable flushed, tree shape within budget). Useful in tests
// and at the end of bulk loads.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.bg != nil {
		if !db.mem.empty() {
			if err := db.freezeMemLocked(true); err != nil {
				return err
			}
		}
		return db.waitPipelineIdleLocked()
	}
	if db.mem.empty() {
		return nil
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

// Close flushes nothing (the WAL preserves the MemTable) and releases file
// handles. In background mode it first drains in-flight background work
// and stops the flusher and compactor goroutines.
func (db *DB) Close() error {
	if db.bg != nil {
		if err := db.stopBackground(); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	// A group-commit leader may be mid-pass (off-mu WAL write); let it
	// land its MemTable inserts before the log closes under it.
	db.waitCommitsLocked()
	var firstErr error
	db.logMu.Lock()
	if err := db.log.Close(); err != nil {
		firstErr = err
	}
	db.logMu.Unlock()
	for _, level := range db.v.levels {
		for _, fm := range level {
			if err := fm.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	db.emit(metrics.Event{Type: metrics.EventClose, Detail: db.dir})
	return firstErr
}

// Health reports whether the DB is serving normally: ErrClosed after
// Close, ErrStalled while the background-mode L0 write-stop throttle is
// engaged, the background pipeline's sticky error if it failed, nil
// otherwise. Served by the HTTP layer at /healthz.
func (db *DB) Health() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	if db.bg != nil {
		if db.bg.err != nil {
			return db.bg.err
		}
		if len(db.v.levels[0]) >= db.opts.L0StopTrigger {
			return ErrStalled
		}
	}
	return nil
}

// LevelInfo describes one populated level for monitoring exports.
type LevelInfo struct {
	Level   int   `json:"level"`
	Files   int   `json:"files"`
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	Blocks  int   `json:"blocks"`
}

// LevelShape returns per-level file counts, byte totals and entry counts
// (every level up to the deepest populated one), the tree-shape gauges
// exported at /metrics.
func (db *DB) LevelShape() []LevelInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	deepest := -1
	for l, files := range db.v.levels {
		if len(files) > 0 {
			deepest = l
		}
	}
	out := make([]LevelInfo, 0, deepest+1)
	for l := 0; l <= deepest; l++ {
		li := LevelInfo{Level: l, Files: len(db.v.levels[l])}
		for _, fm := range db.v.levels[l] {
			li.Bytes += fm.Size
			li.Entries += fm.tbl.EntryCount()
			li.Blocks += fm.tbl.NumBlocks()
		}
		out = append(out, li)
	}
	return out
}

// Stats returns the DB's I/O counters.
func (db *DB) Stats() *metrics.IOStats { return db.opts.Stats }

// DiskUsage returns the on-disk size of all SSTables plus the WAL.
func (db *DB) DiskUsage() (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, level := range db.v.levels {
		for _, fm := range level {
			total += fm.Size
		}
	}
	seen := map[string]bool{}
	for _, p := range append(append([]string(nil), db.memWALs...), db.immWALs...) {
		if seen[p] {
			continue
		}
		seen[p] = true
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total, nil
}

// FilterMemoryUsage returns the memory-resident filter/zone-map bytes
// across all open tables (Figure 8a space accounting).
func (db *DB) FilterMemoryUsage() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, level := range db.v.levels {
		for _, fm := range level {
			n += fm.tbl.FilterMemoryBytes()
		}
	}
	return n
}

// BlockCacheStats returns cache hits, misses and used bytes; zeros when
// no cache is configured.
func (db *DB) BlockCacheStats() (hits, misses, used int64) {
	if db.blockCache == nil {
		return 0, 0, 0
	}
	return db.blockCache.Stats()
}

// WriteAmplification returns the measured physical write amplification:
// SSTable bytes written (flushes + compactions) divided by user bytes
// ingested. Note two deviations from the paper's logical WAMF (Table 5):
// block compression can push the ratio below 1, and for index tables
// written via read-modify-write the denominator counts the rewritten
// value, not the logical record — use core.WriteAmplification for the
// paper's per-user-byte comparison. Returns 0 before any ingest.
func (db *DB) WriteAmplification() float64 {
	db.mu.RLock()
	ingested := db.ingestBytes
	db.mu.RUnlock()
	if ingested == 0 {
		return 0
	}
	s := db.opts.Stats.Snapshot()
	return float64(s.BlockWriteBytes+s.CompactionWriteBytes) / float64(ingested)
}

// LastSeq returns the most recently assigned sequence number.
func (db *DB) LastSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lastSeq
}

// --- read views ---------------------------------------------------------

// View is a read-locked snapshot of the tree handed to index algorithms.
// The paper's secondary lookups proceed stratum by stratum, newest data
// first: MemTable, then each level-0 file (each flush is its own
// time-ordered run), then levels 1, 2, … .
type View struct {
	db     *DB
	mem    *memTable
	imm    *memTable // frozen MemTable (background mode), nil otherwise
	levels [][]*FileMeta
}

// View runs fn with a stable view of the database. fn must not call
// writing methods of the same DB (it would deadlock); reads on *other*
// DBs (e.g. the primary table while viewing an index table) are fine.
func (db *DB) View(fn func(*View) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	return fn(&View{db: db, mem: db.mem, imm: db.imm, levels: db.v.levels})
}

// Get performs a standard newest-wins point read inside the view.
func (v *View) Get(key []byte) ([]byte, bool, error) { return v.db.getLocked(key, nil) }

// GetTraced is Get with read-path phase tracing (tr may be nil).
func (v *View) GetTraced(key []byte, tr *metrics.Trace) ([]byte, bool, error) {
	return v.db.getLocked(key, tr)
}

// MemGet returns the newest MemTable record for key.
func (v *View) MemGet(key []byte) (value []byte, seq uint64, deleted bool, ok bool) {
	val, seq, kind, ok := v.mem.get(key)
	return val, seq, kind == ikey.KindDelete, ok
}

// MemIter iterates the MemTable in internal-key order.
func (v *View) MemIter() *skiplist.Iterator { return v.mem.iter() }

// MemSecTree returns the MemTable-side secondary B-tree for attr (nil when
// the attribute is not embedded-indexed).
func (v *View) MemSecTree(attr string) *btree.Tree { return v.mem.secTree(attr) }

// MemMaxSeq returns the highest sequence number in the MemTable (0 when
// empty) — the upper bound lookup algorithms use for stratum pruning.
func (v *View) MemMaxSeq() uint64 { return v.mem.maxSeq }

// HasImm reports whether a frozen MemTable stratum exists (background
// mode, flush pending). It sits between the MemTable and level 0 in
// newest-first order.
func (v *View) HasImm() bool { return v.imm != nil }

// ImmGet returns the newest frozen-MemTable record for key.
func (v *View) ImmGet(key []byte) (value []byte, seq uint64, deleted bool, ok bool) {
	if v.imm == nil {
		return nil, 0, false, false
	}
	val, seq, kind, ok := v.imm.get(key)
	return val, seq, kind == ikey.KindDelete, ok
}

// ImmIter iterates the frozen MemTable in internal-key order (nil when
// there is none).
func (v *View) ImmIter() *skiplist.Iterator {
	if v.imm == nil {
		return nil
	}
	return v.imm.iter()
}

// ImmSecTree returns the frozen MemTable's secondary B-tree for attr.
func (v *View) ImmSecTree(attr string) *btree.Tree {
	if v.imm == nil {
		return nil
	}
	return v.imm.secTree(attr)
}

// ImmMaxSeq returns the highest sequence number in the frozen MemTable
// (0 when there is none).
func (v *View) ImmMaxSeq() uint64 {
	if v.imm == nil {
		return 0
	}
	return v.imm.maxSeq
}

// L0 returns the level-0 files, newest first.
func (v *View) L0() []*FileMeta { return v.levels[0] }

// Level returns the files of level l (l ≥ 1), sorted by key, disjoint.
func (v *View) Level(l int) []*FileMeta { return v.levels[l] }

// MaxLevel returns the deepest configured level index.
func (v *View) MaxLevel() int { return len(v.levels) - 1 }

// DeepestNonEmpty returns the index of the deepest level holding data
// (0 when only L0/MemTable hold data).
func (v *View) DeepestNonEmpty() int {
	for l := len(v.levels) - 1; l >= 0; l-- {
		if len(v.levels[l]) > 0 {
			return l
		}
	}
	return 0
}

// FindLevelFile returns the single file in level l that may contain key,
// or nil. For l == 0 use L0 and probe each file.
func (v *View) FindLevelFile(l int, key []byte) *FileMeta {
	return (&version{levels: v.levels}).findFile(l, key)
}

// OverlappingFiles returns files in level l intersecting [loUser, hiUser].
func (v *View) OverlappingFiles(l int, loUser, hiUser []byte) []*FileMeta {
	return (&version{levels: v.levels}).overlappingFiles(l, loUser, hiUser)
}

// NumStrata reports how many time-ordered strata the view has: the
// MemTable, the frozen MemTable if present, each L0 file, and each deeper
// level (paper's "levels"; our L0 decomposition preserves the
// one-run-per-stratum property the lookup algorithms rely on).
func (v *View) NumStrata() int {
	n := 1 + len(v.levels[0])
	if v.imm != nil {
		n++
	}
	for l := 1; l < len(v.levels); l++ {
		if len(v.levels[l]) > 0 {
			n++
		}
	}
	return n
}

// NumStrata is the DB-scoped variant of View.NumStrata: the live stratum
// count of the tree, the cost model's "L" for stand-alone index lookups.
func (db *DB) NumStrata() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return (&View{mem: db.mem, imm: db.imm, levels: db.v.levels}).NumStrata()
}

// OverlappingBlockCount sums, across every SSTable, the data blocks whose
// key span intersects the user-key range [loUser, hiExcl) — metadata only,
// no I/O. It is the live "M" (blocks a range scan must visit) of the cost
// model's RANGELOOKUP formulas.
func (db *DB) OverlappingBlockCount(loUser, hiExcl []byte) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, level := range db.v.levels {
		for _, fm := range level {
			n += fm.tbl.OverlappingBlockCount(loUser, hiExcl)
		}
	}
	return n
}

// DebugString renders the tree shape — entries and bytes per level —
// in the spirit of LevelDB's "leveldb.stats" property.
func (db *DB) DebugString() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "memtable: %d entries, %d bytes\n", db.mem.list.Len(), db.mem.approximateBytes())
	if db.imm != nil {
		fmt.Fprintf(&sb, "immutable memtable: %d entries, %d bytes\n", db.imm.list.Len(), db.imm.approximateBytes())
	}
	for l, files := range db.v.levels {
		if len(files) == 0 {
			continue
		}
		var bytes int64
		entries := 0
		for _, fm := range files {
			bytes += fm.Size
			entries += fm.tbl.EntryCount()
		}
		fmt.Fprintf(&sb, "level %d: %d files, %d entries, %d bytes\n", l, len(files), entries, bytes)
	}
	return sb.String()
}
