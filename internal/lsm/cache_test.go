package lsm

import (
	"fmt"
	"testing"
)

func TestBlockCacheServesRepeatReads(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = 1 << 20
	db, _ := openTestDB(t, opts)
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	db.Flush()

	// First read: miss + disk read. Second read of the same key: hit, no
	// new disk read.
	pre := db.Stats().Snapshot()
	mustGet(t, db, "key00010")
	mid := db.Stats().Snapshot()
	if d := mid.Sub(pre); d.BlockReads == 0 {
		t.Fatal("first read should hit disk")
	}
	mustGet(t, db, "key00010")
	post := db.Stats().Snapshot()
	d := post.Sub(mid)
	if d.BlockReads != 0 {
		t.Fatalf("second read hit disk: %+v", d)
	}
	if d.CacheHits == 0 {
		t.Fatal("second read did not register a cache hit")
	}
	hits, misses, used := db.BlockCacheStats()
	if hits == 0 || misses == 0 || used == 0 {
		t.Fatalf("cache stats = %d %d %d", hits, misses, used)
	}
}

func TestBlockCacheDisabledByDefault(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 500; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), "value")
	}
	db.Flush()
	mustGet(t, db, "key00010")
	mustGet(t, db, "key00010")
	s := db.Stats().Snapshot()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("cache active without configuration: %+v", s)
	}
	if h, m, u := db.BlockCacheStats(); h != 0 || m != 0 || u != 0 {
		t.Fatal("BlockCacheStats nonzero without cache")
	}
}

func TestCompactionEvictsConsumedTables(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = 4 << 20
	db, _ := openTestDB(t, opts)
	// Warm the cache on L0 data.
	for i := 0; i < 1000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	db.Flush()
	for i := 0; i < 200; i++ {
		mustGet(t, db, fmt.Sprintf("key%05d", i))
	}
	if db.blockCache.Len() == 0 {
		t.Fatal("cache not warmed")
	}
	// Drive enough churn that every original table is compacted away.
	for i := 0; i < 4000; i++ {
		mustPut(t, db, fmt.Sprintf("pad%06d", i), fmt.Sprintf("val%064d", i))
	}
	// Reads of the original keys must be misses again (tables replaced,
	// LevelDB++'s analogue of the paper's buffer-cache invalidation).
	pre := db.Stats().Snapshot()
	for i := 0; i < 50; i++ {
		mustGet(t, db, fmt.Sprintf("key%05d", i))
	}
	d := db.Stats().Snapshot().Sub(pre)
	if d.BlockReads == 0 {
		t.Fatal("post-compaction reads served from stale cache entries")
	}
	// And correctness held throughout.
	if v, ok := mustGet(t, db, "key00042"); !ok || v != fmt.Sprintf("val%032d", 42) {
		t.Fatalf("data wrong after cache churn: %q %v", v, ok)
	}
}

func TestCacheCorrectnessUnderRandomOps(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = 64 << 10 // tiny: constant eviction pressure
	db, _ := openTestDB(t, opts)
	ref := map[string]string{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key%03d", i%700)
		v := fmt.Sprintf("val%08d", i)
		mustPut(t, db, k, v)
		ref[k] = v
		if i%37 == 0 {
			probe := fmt.Sprintf("key%03d", (i*13)%700)
			got, ok := mustGet(t, db, probe)
			want, wantOK := ref[probe]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: %s = %q/%v want %q/%v", i, probe, got, ok, want, wantOK)
			}
		}
	}
}
