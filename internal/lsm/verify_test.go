package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVerifyCleanStore(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 3000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i%800), fmt.Sprintf("val%032d", i))
	}
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store reported problems: %v", rep.Problems)
	}
	if rep.Tables == 0 || rep.Entries == 0 || rep.Blocks == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}

func TestVerifyDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	db.Flush()
	db.Close()

	// Flip a byte in the middle of some SSTable's data section.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(matches) == 0 {
		t.Fatal("no sstables on disk")
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/4] ^= 0x40
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, smallOpts())
	if err != nil {
		// Corruption in the meta section is caught at open; that also
		// counts as detection.
		return
	}
	defer db2.Close()
	rep, err := db2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("bit rot not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "checksum") || strings.Contains(p, "corrupt") ||
			strings.Contains(p, "entries") || strings.Contains(p, "order") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected problem set: %v", rep.Problems)
	}
}

func TestVerifyEmptyStore(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	rep, err := db.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Tables != 0 {
		t.Fatalf("empty store report: %+v", rep)
	}
}

func TestVerifyClosedDB(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	db.Close()
	if _, err := db.Verify(); err != ErrClosed {
		t.Fatalf("Verify on closed db: %v", err)
	}
}
