package lsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"leveldbpp/internal/metrics"
)

// firstIndex returns the position of the first event of type typ, or -1.
func firstIndex(evs []metrics.Event, typ metrics.EventType) int {
	for i, e := range evs {
		if e.Type == typ {
			return i
		}
	}
	return -1
}

// TestBackgroundEventOrdering drives the background pipeline until flushes
// and compactions have run, then checks that the event log tells the
// lifecycle story in causal order: a MemTable freeze precedes the flush it
// feeds, the flush completes before any compaction of its output starts,
// and start/done pairs balance once the pipeline drains at Close.
func TestBackgroundEventOrdering(t *testing.T) {
	log := metrics.NewEventLog(4096)
	o := bgOpts()
	o.Events = log
	dir := t.TempDir()
	db, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	evs := log.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	// Sequence numbers are strictly increasing (Events returns oldest
	// first), so index order below is emission order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event %d seq %d <= previous %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}

	counts := log.Counts()
	if counts[metrics.EventMemFreeze] == 0 {
		t.Fatal("no memtable_freeze events")
	}
	if counts[metrics.EventFlushStart] == 0 || counts[metrics.EventFlushStart] != counts[metrics.EventFlushDone] {
		t.Fatalf("flush events unbalanced: start=%d done=%d",
			counts[metrics.EventFlushStart], counts[metrics.EventFlushDone])
	}
	if counts[metrics.EventCompactionStart] == 0 || counts[metrics.EventCompactionStart] != counts[metrics.EventCompactionDone] {
		t.Fatalf("compaction events unbalanced: start=%d done=%d",
			counts[metrics.EventCompactionStart], counts[metrics.EventCompactionDone])
	}

	freeze := firstIndex(evs, metrics.EventMemFreeze)
	fStart := firstIndex(evs, metrics.EventFlushStart)
	fDone := firstIndex(evs, metrics.EventFlushDone)
	cStart := firstIndex(evs, metrics.EventCompactionStart)
	cDone := firstIndex(evs, metrics.EventCompactionDone)
	if !(freeze < fStart && fStart < fDone && fDone < cStart && cStart < cDone) {
		t.Fatalf("lifecycle out of order: freeze=%d flush_start=%d flush_done=%d compaction_start=%d compaction_done=%d",
			freeze, fStart, fDone, cStart, cDone)
	}

	// Payload sanity on the completed work.
	for _, e := range evs {
		switch e.Type {
		case metrics.EventFlushDone:
			if e.Bytes <= 0 || e.Entries <= 0 || e.Outputs != 1 {
				t.Fatalf("flush_done payload: %+v", e)
			}
		case metrics.EventCompactionDone:
			if e.Outputs <= 0 || e.Bytes <= 0 {
				t.Fatalf("compaction_done payload: %+v", e)
			}
		case metrics.EventWALRotate:
			if e.Detail == "" {
				t.Fatalf("wal_rotate without detail: %+v", e)
			}
		}
	}
}

// TestInlineModeEvents checks the inline engine emits the same vocabulary
// through flushLocked/runCompactionInlineLocked, and that a JSONL sink
// attached behind the ring receives every event as one JSON line.
func TestInlineModeEvents(t *testing.T) {
	var buf bytes.Buffer
	jsonl := metrics.NewJSONLSink(&buf)
	log := metrics.NewEventLog(0)
	log.Attach(jsonl)
	o := smallOpts()
	o.Events = log
	db, err := Open(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}

	counts := log.Counts()
	if counts[metrics.EventFlushDone] == 0 {
		t.Fatal("inline mode emitted no flush_done")
	}
	if counts[metrics.EventCompactionDone] == 0 {
		t.Fatal("inline mode emitted no compaction_done")
	}
	if counts[metrics.EventOpen] != 1 || counts[metrics.EventClose] != 1 {
		t.Fatalf("open/close counts: %d/%d", counts[metrics.EventOpen], counts[metrics.EventClose])
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var total int64
	for _, c := range counts {
		total += c
	}
	if int64(len(lines)) != total {
		t.Fatalf("JSONL lines = %d, events = %d", len(lines), total)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"seq":`) {
			t.Fatalf("unexpected JSONL line %q", line)
		}
	}
	if n := jsonl.EncodeErrors(); n != 0 {
		t.Fatalf("JSONL encode errors: %d", n)
	}
}
