package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"leveldbpp/internal/metrics"
)

// parallelWorkload drives enough writes, overwrites and deletes through db
// to stack several L0 compactions and deeper-level spills, with values big
// enough that compactions span many data blocks (so partitionBoundaries
// has material to split on).
func parallelWorkload(t testing.TB, db *DB, n int) {
	t.Helper()
	pad := strings.Repeat("x", 100)
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%06d", i), fmt.Sprintf("val-%06d-%s", i, pad))
		if i%17 == 0 && i > 0 {
			mustPut(t, db, fmt.Sprintf("key-%06d", i-9), fmt.Sprintf("over-%06d-%s", i, pad))
		}
		if i%29 == 0 && i > 0 {
			if err := db.Delete([]byte(fmt.Sprintf("key-%06d", i-13))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelCompactionByteIdentical is the determinism contract of the
// sub-compaction engine at its strongest: the same workload run at
// CompactionParallelism 1 and 4 must leave byte-identical directories —
// every SSTable, the MANIFEST, and the WAL. The parallel engine may only
// change *how* each compaction executes, never what it produces.
func TestParallelCompactionByteIdentical(t *testing.T) {
	run := func(parallelism int) (string, *DB) {
		o := smallOpts()
		o.CompactionParallelism = parallelism
		dir := t.TempDir()
		db, err := Open(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		parallelWorkload(t, db, 3000)
		if err := db.CompactRange(nil, nil); err != nil {
			t.Fatal(err)
		}
		return dir, db
	}
	dir1, db1 := run(1)
	dir4, db4 := run(4)

	// The parallel engine must actually have engaged: partitioned
	// compactions record one sub-compaction per partition.
	s1, s4 := db1.CompactionStats(), db4.CompactionStats()
	if s4.Subcompactions <= s1.Subcompactions {
		t.Fatalf("parallel engine never partitioned: parallelism 4 ran %d sub-compactions, parallelism 1 ran %d",
			s4.Subcompactions, s1.Subcompactions)
	}

	files1, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	files4, err := os.ReadDir(dir4)
	if err != nil {
		t.Fatal(err)
	}
	if len(files1) != len(files4) {
		t.Fatalf("file count differs: parallelism 1 has %d, parallelism 4 has %d", len(files1), len(files4))
	}
	for i, e1 := range files1 {
		e4 := files4[i]
		if e1.Name() != e4.Name() {
			t.Fatalf("file name differs: %s vs %s", e1.Name(), e4.Name())
		}
		b1, err := os.ReadFile(filepath.Join(dir1, e1.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b4, err := os.ReadFile(filepath.Join(dir4, e4.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b4) {
			t.Errorf("%s differs between parallelism 1 and 4 (%d vs %d bytes)", e1.Name(), len(b1), len(b4))
		}
	}
}

// TestParallelCompactionCrash kills a compaction mid-sub-compaction: the
// directory is snapshotted at the moment a finished output table sits on
// disk with no version edit referencing it. Reopening the snapshot must
// serve exactly the pre-compaction data (the partial outputs are never
// replayed into the tree) and must delete them as orphans.
func TestParallelCompactionCrash(t *testing.T) {
	o := smallOpts()
	o.CompactionParallelism = 4
	dir := t.TempDir()
	db, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	parallelWorkload(t, db, 2500)

	// Everything acknowledged so far, as ground truth for the crash image.
	want := map[string]string{}
	err = db.Scan(nil, nil, func(k, v []byte, _ uint64) bool {
		want[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot the directory the first time a compaction output rolls —
	// the on-disk state a kill -9 would leave behind at that instant.
	crash := t.TempDir()
	var once sync.Once
	snapped := false
	db.testCompactRoll = func() {
		once.Do(func() {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Error(err)
				return
			}
			for _, e := range entries {
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Error(err)
					return
				}
				if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
					t.Error(err)
					return
				}
			}
			snapped = true
		})
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	db.testCompactRoll = nil
	if !snapped {
		t.Fatal("CompactRange rolled no output table; workload too small")
	}

	// The snapshot must contain at least one table the manifest does not
	// reference — the partial sub-compaction output.
	orphans := orphanTables(t, crash)
	if len(orphans) == 0 {
		t.Fatal("crash image has no unreferenced table; snapshot raced the version edit")
	}

	re, err := Open(crash, func() *Options {
		o := smallOpts()
		o.CompactionParallelism = 4
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := map[string]string{}
	err = re.Scan(nil, nil, func(k, v []byte, _ uint64) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("crash recovery: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("crash recovery: Get(%s) = %q, want %q", k, got[k], v)
		}
	}
	if rep, err := re.Verify(); err != nil || len(rep.Problems) > 0 {
		t.Fatalf("verify after crash recovery: %v %v", err, rep.Problems)
	}
	// The partial outputs were orphans; Open must have removed them.
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(crash, name)); !os.IsNotExist(err) {
			t.Errorf("partial sub-compaction output %s survived recovery", name)
		}
	}
}

// orphanTables returns the .sst files in dir that the MANIFEST does not
// reference.
func orphanTables(t *testing.T, dir string) []string {
	t.Helper()
	m, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("load manifest: %v (ok=%v)", err, ok)
	}
	live := map[string]bool{}
	for _, level := range m.Levels {
		for _, fr := range level {
			live[filepath.Base(tablePath(dir, fr.Num))] = true
		}
	}
	var orphans []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".sst" && !live[e.Name()] {
			orphans = append(orphans, e.Name())
		}
	}
	return orphans
}

// TestParallelCompactionErrorAttribution injects a mid-merge read failure
// (an input table truncated underneath the engine) and checks the two
// error-surfacing contracts: CompactRange returns the failure tagged with
// the partition's user-key range, and the event log records a
// compaction_error event naming that range.
func TestParallelCompactionErrorAttribution(t *testing.T) {
	log := metrics.NewEventLog(256)
	o := smallOpts()
	o.CompactionParallelism = 4
	o.Events = log
	dir := t.TempDir()
	db, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Three manual flushes stay under L0CompactionTrigger (4), so no
	// compaction runs until CompactRange below.
	pad := strings.Repeat("z", 100)
	for f := 0; f < 3; f++ {
		for i := 0; i < 50; i++ {
			mustPut(t, db, fmt.Sprintf("key-%06d", f*50+i), fmt.Sprintf("val-%d-%s", i, pad))
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Truncate one input table: the block index is already in memory, so
	// partitioning still engages, and the partition that reads the lost
	// data blocks fails mid-merge.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	truncated := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".sst" {
			if err := os.Truncate(filepath.Join(dir, e.Name()), 16); err != nil {
				t.Fatal(err)
			}
			truncated = true
			break
		}
	}
	if !truncated {
		t.Fatal("no table on disk after three flushes")
	}

	err = db.CompactRange(nil, nil)
	if err == nil {
		t.Fatal("CompactRange succeeded over a truncated input table")
	}
	var se *subcompactionError
	if !errors.As(err, &se) {
		t.Fatalf("CompactRange error %v does not carry a partition range", err)
	}
	found := false
	for _, ev := range log.Events() {
		if ev.Type == metrics.EventCompactionError && strings.Contains(ev.Detail, "partition [") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no compaction_error event names the failed partition; events: %+v", log.Events())
	}
}

// TestParallelCompactionStress is the race-detector workout for the
// sub-compaction worker pool and the two-job background scheduler:
// concurrent writers and readers run against a background-mode DB with
// CompactionParallelism 4 (maxJobs 2), with a manual CompactRange in the
// middle. Wired into `make lint-race`.
func TestParallelCompactionStress(t *testing.T) {
	o := smallOpts()
	o.BackgroundCompaction = true
	o.CompactionParallelism = 4
	dir := t.TempDir()
	db, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 600
	)
	pad := strings.Repeat("y", 80)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := fmt.Sprintf("w%d-key-%05d", w, i)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("val-%d-%d-%s", w, i, pad))); err != nil {
					t.Error(err)
					return
				}
				if i%11 == 0 {
					if err := db.Delete([]byte(fmt.Sprintf("w%d-key-%05d", w, i/2))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.Get([]byte(fmt.Sprintf("w%d-key-%05d", i%writers, i%perW))); err != nil && err != ErrClosed {
				t.Error(err)
				return
			}
			if i%40 == 0 {
				err := db.Scan([]byte("w1"), []byte("w3"), func(_, _ []byte, _ uint64) bool { return true })
				if err != nil && err != ErrClosed {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		if err := db.CompactRange(nil, nil); err != nil && err != ErrClosed {
			t.Error(err)
		}
	}()

	writersDone := make(chan struct{})
	go func() {
		// Writer goroutines are the first `writers` waits; poll lastSeq
		// instead of adding a second WaitGroup.
		for {
			db.mu.RLock()
			n := db.lastSeq
			db.mu.RUnlock()
			if n >= uint64(writers*perW) {
				close(writersDone)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	<-writersDone
	close(stop)
	wg.Wait()

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Keys never targeted by the i/2 deletes must carry their final value.
	for w := 0; w < writers; w++ {
		for i := perW / 2; i < perW; i++ {
			k := fmt.Sprintf("w%d-key-%05d", w, i)
			if v, ok := mustGet(t, db, k); !ok || v != fmt.Sprintf("val-%d-%d-%s", w, i, pad) {
				t.Fatalf("Get(%s) = %.40q... %v", k, v, ok)
			}
		}
	}
	if rep, err := db.Verify(); err != nil || len(rep.Problems) > 0 {
		t.Fatalf("verify: %v %v", err, rep.Problems)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen in inline mode: the on-disk state parallel jobs left behind
	// must be mode- and parallelism-independent.
	re, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep, err := re.Verify(); err != nil || len(rep.Problems) > 0 {
		t.Fatalf("verify after reopen: %v %v", err, rep.Problems)
	}
}
