package lsm

import (
	"bytes"
	"fmt"

	"leveldbpp/internal/ikey"
)

// VerifyReport summarizes a full structural and checksum audit of the
// tree.
type VerifyReport struct {
	Tables   int
	Blocks   int
	Entries  int
	Problems []string
}

// OK reports whether the audit found no problems.
func (r VerifyReport) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Verify audits the whole store under a read lock: every data block of
// every SSTable is read and checksum-verified, entry order is checked
// against the internal-key comparator, table key ranges are checked
// against the manifest, and level shape invariants (sorted, disjoint
// above level 0) are enforced. It reads every block, so it costs a full
// scan.
func (db *DB) Verify() (VerifyReport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var rep VerifyReport
	if db.closed {
		return rep, ErrClosed
	}

	for l, files := range db.v.levels {
		for i, fm := range files {
			rep.Tables++
			rep.Blocks += fm.tbl.NumBlocks()
			if err := db.verifyTable(&rep, l, fm); err != nil {
				return rep, err
			}
			// Level shape: sorted and disjoint for l >= 1.
			if l >= 1 && i > 0 {
				prev := files[i-1]
				if bytes.Compare(ikey.UserKey(prev.Largest), ikey.UserKey(fm.Smallest)) >= 0 {
					rep.problemf("level %d: tables %06d and %06d overlap (%q >= %q)",
						l, prev.Num, fm.Num, ikey.UserKey(prev.Largest), ikey.UserKey(fm.Smallest))
				}
			}
		}
	}

	// MemTable ordering (the skip list enforces it; verify anyway).
	it := db.mem.iter()
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		rep.Entries++
		if prev != nil && ikey.Compare(prev, it.Key()) >= 0 {
			rep.problemf("memtable entries out of order at %s", ikey.String(it.Key()))
		}
		prev = append(prev[:0], it.Key()...)
	}
	return rep, nil
}

func (db *DB) verifyTable(rep *VerifyReport, level int, fm *FileMeta) error {
	it := fm.tbl.NewIterator(false)
	var prev []byte
	var first, last []byte
	n := 0
	for it.Next() {
		n++
		rep.Entries++
		if first == nil {
			first = append([]byte(nil), it.Key()...)
		}
		last = append(last[:0], it.Key()...)
		if prev != nil && ikey.Compare(prev, it.Key()) >= 0 {
			rep.problemf("table %06d (L%d): entries out of order at %s", fm.Num, level, ikey.String(it.Key()))
		}
		prev = append(prev[:0], it.Key()...)
	}
	if err := it.Err(); err != nil {
		rep.problemf("table %06d (L%d): %v", fm.Num, level, err)
		return nil // corruption recorded; keep auditing other tables
	}
	if n != fm.tbl.EntryCount() {
		rep.problemf("table %06d (L%d): iterated %d entries, meta says %d", fm.Num, level, n, fm.tbl.EntryCount())
	}
	if n > 0 {
		if ikey.Compare(first, fm.Smallest) != 0 {
			rep.problemf("table %06d (L%d): first key %s != manifest smallest %s",
				fm.Num, level, ikey.String(first), ikey.String(fm.Smallest))
		}
		if ikey.Compare(last, fm.Largest) != 0 {
			rep.problemf("table %06d (L%d): last key %s != manifest largest %s",
				fm.Num, level, ikey.String(last), ikey.String(fm.Largest))
		}
	}
	return nil
}
