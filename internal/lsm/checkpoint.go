package lsm

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Checkpoint writes a consistent, openable copy of the database to
// destDir (which must not exist). It runs under the read lock, so the
// copied MANIFEST, SSTables and WAL describe one instant: no flush or
// compaction can interleave. The checkpoint contains everything written
// before the call, including MemTable contents (via the copied WAL).
func (db *DB) Checkpoint(destDir string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	if _, err := os.Stat(destDir); err == nil {
		return fmt.Errorf("lsm: checkpoint destination %q already exists", destDir)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return fmt.Errorf("lsm: create checkpoint dir: %w", err)
	}

	copyFile := func(src, dst string) error {
		in, err := os.Open(src)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(dst)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			_ = out.Close()
			return err
		}
		if err := out.Sync(); err != nil {
			_ = out.Close()
			return err
		}
		return out.Close()
	}

	// Tables first, then WAL, then the manifest last — if the copy is
	// interrupted, a manifest-less directory is obviously not a database
	// rather than subtly truncated.
	for _, level := range db.v.levels {
		for _, fm := range level {
			name := fmt.Sprintf("%06d.sst", fm.Num)
			if err := copyFile(tablePath(db.dir, fm.Num), filepath.Join(destDir, name)); err != nil {
				return fmt.Errorf("lsm: checkpoint table %s: %w", name, err)
			}
		}
	}
	// Copy every WAL file backing the live and frozen MemTables under its
	// original basename; replay at open visits them all. Inline mode has
	// exactly the single legacy "WAL" file here. The read lock alone no
	// longer excludes WAL appends (a group-commit leader writes off
	// db.mu), so hold logMu across the copies and flush the writer's
	// buffer first: everything acknowledged before this call is then in
	// the copied files.
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if err := db.log.Flush(); err != nil {
		return fmt.Errorf("lsm: checkpoint flush WAL: %w", err)
	}
	copied := map[string]bool{}
	for _, p := range append(append([]string(nil), db.immWALs...), db.memWALs...) {
		if copied[p] {
			continue
		}
		copied[p] = true
		if _, err := os.Stat(p); err == nil {
			if err := copyFile(p, filepath.Join(destDir, filepath.Base(p))); err != nil {
				return fmt.Errorf("lsm: checkpoint WAL %s: %w", filepath.Base(p), err)
			}
		}
	}
	if _, err := os.Stat(manifestPath(db.dir)); err == nil {
		if err := copyFile(manifestPath(db.dir), manifestPath(destDir)); err != nil {
			return fmt.Errorf("lsm: checkpoint manifest: %w", err)
		}
	}
	return nil
}
