package lsm

import (
	"bytes"
	"container/heap"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/skiplist"
	"leveldbpp/internal/sstable"
)

// entryIter is the common shape of MemTable and SSTable iterators used by
// the merged scan.
type entryIter interface {
	Next() bool
	Key() []byte // internal key
	Value() []byte
	Err() error
}

// memIterAdapter turns a positioned skiplist iterator into an entryIter.
type memIterAdapter struct {
	it      *skiplist.Iterator
	started bool
}

func (a *memIterAdapter) Next() bool {
	if !a.started {
		a.started = true
	} else if a.it.Valid() {
		a.it.Next()
	}
	return a.it.Valid()
}
func (a *memIterAdapter) Key() []byte   { return a.it.Key() }
func (a *memIterAdapter) Value() []byte { return a.it.Value() }
func (a *memIterAdapter) Err() error    { return nil }

type scanSource struct{ it entryIter }

type scanHeap []*scanSource

func (h scanHeap) Len() int            { return len(h) }
func (h scanHeap) Less(i, j int) bool  { return ikey.Compare(h[i].it.Key(), h[j].it.Key()) < 0 }
func (h scanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x interface{}) { *h = append(*h, x.(*scanSource)) }
func (h *scanHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Scan performs a merged, newest-wins range scan over [lo, hiExcl):
// exactly one callback per live user key, tombstones suppressed, in
// ascending user-key order. A nil hiExcl means unbounded; fn returning
// false stops the scan. The callback receives the key's newest sequence
// number (insertion-time ordering for top-K processing).
func (db *DB) Scan(lo, hiExcl []byte, fn func(key, value []byte, seq uint64) bool) error {
	return db.ScanTraced(lo, hiExcl, nil, fn)
}

// ScanTraced is Scan with every SSTable block fetch attributed to tr
// (block-load/cache-hit sub-phases plus the per-op block counters). tr may
// be nil.
func (db *DB) ScanTraced(lo, hiExcl []byte, tr *metrics.Trace, fn func(key, value []byte, seq uint64) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	return scanView(&View{db: db, mem: db.mem, imm: db.imm, levels: db.v.levels}, lo, hiExcl, tr, fn)
}

// Scan is the View-scoped variant of DB.Scan.
func (v *View) Scan(lo, hiExcl []byte, fn func(key, value []byte, seq uint64) bool) error {
	return scanView(v, lo, hiExcl, nil, fn)
}

// ScanTraced is the View-scoped variant of DB.ScanTraced.
func (v *View) ScanTraced(lo, hiExcl []byte, tr *metrics.Trace, fn func(key, value []byte, seq uint64) bool) error {
	return scanView(v, lo, hiExcl, tr, fn)
}

func scanView(v *View, lo, hiExcl []byte, tr *metrics.Trace, fn func(key, value []byte, seq uint64) bool) error {
	seekKey := ikey.SeekKey(lo)

	var h scanHeap
	add := func(it entryIter) {
		heap.Push(&h, &scanSource{it: it})
	}

	mi := v.mem.iter()
	mi.SeekGE(seekKey)
	if mi.Valid() {
		add(&memIterAdapter{it: mi, started: true})
	}
	if v.imm != nil { // frozen MemTable stratum (background mode)
		ii := v.imm.iter()
		ii.SeekGE(seekKey)
		if ii.Valid() {
			add(&memIterAdapter{it: ii, started: true})
		}
	}
	seekTable := func(fm *FileMeta) error {
		it := fm.tbl.NewIteratorTraced(false, tr)
		if it.SeekGE(seekKey) {
			add(&tableIterAdapter{it: it, positioned: true})
		}
		return it.Err()
	}
	for _, fm := range v.levels[0] {
		if fm.overlapsUser(lo, nil) {
			if err := seekTable(fm); err != nil {
				return err
			}
		}
	}
	for l := 1; l < len(v.levels); l++ {
		for _, fm := range v.levels[l] {
			if fm.overlapsUser(lo, nil) {
				if err := seekTable(fm); err != nil {
					return err
				}
			}
		}
	}

	var curUser []byte
	for h.Len() > 0 {
		src := h[0]
		ik, val := src.it.Key(), src.it.Value()
		uk := ikey.UserKey(ik)
		if hiExcl != nil && bytes.Compare(uk, hiExcl) >= 0 {
			return nil
		}
		emit := curUser == nil || !bytes.Equal(curUser, uk)
		if emit {
			curUser = append(curUser[:0], uk...)
			if ikey.KindOf(ik) != ikey.KindDelete {
				if !fn(uk, val, ikey.Seq(ik)) {
					return nil
				}
			}
		}
		if src.it.Next() {
			heap.Fix(&h, 0)
		} else {
			if err := src.it.Err(); err != nil {
				return err
			}
			heap.Pop(&h)
		}
	}
	return nil
}

// tableIterAdapter bridges sstable.Iterator (whose SeekGE positions on the
// first entry) to the Next-first entryIter protocol.
type tableIterAdapter struct {
	it         *sstable.Iterator
	positioned bool
}

func (a *tableIterAdapter) Next() bool {
	if a.positioned {
		a.positioned = false
		return true
	}
	return a.it.Next()
}
func (a *tableIterAdapter) Key() []byte   { return a.it.Key() }
func (a *tableIterAdapter) Value() []byte { return a.it.Value() }
func (a *tableIterAdapter) Err() error    { return a.it.Err() }
