// Package lsm implements the leveled LSM-tree storage engine underneath
// LevelDB++ (paper Appendix A.1/A.2): a WAL-backed MemTable, leveled
// immutable SSTables with 10× fan-out, round-robin leveled compaction,
// tombstone deletes, and exact logical block I/O accounting.
//
// The engine is deliberately single-writer with *inline* flush and
// compaction: the paper picked LevelDB because a single-threaded store
// isolates and explains index costs, and inline compaction additionally
// makes every experiment deterministic. Reads are guarded by an RWMutex
// and may run concurrently with each other.
package lsm

import (
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/sstable"
	"leveldbpp/internal/wal"
)

// Merger combines multiple values of the same user key during compaction.
// The Lazy secondary index uses it to merge posting-list fragments
// scattered across levels (paper §4.1.2); the default (nil) behaviour
// keeps only the newest value.
type Merger interface {
	// Merge receives every value observed for userKey in this compaction,
	// ordered newest to oldest. bottom reports that no deeper level can
	// contain this key, allowing deletion markers to be dropped.
	// Returning keep=false elides the key from the output entirely.
	Merge(userKey []byte, values [][]byte, bottom bool) (merged []byte, keep bool)
}

// MergerForker is optionally implemented by Mergers that carry per-call
// scratch state. When key-range sub-compactions run partitions
// concurrently (Options.CompactionParallelism > 1) the engine calls
// ForkMerger once per partition worker, giving each a private scratch. A
// Merger that does not implement it is shared across workers and must be
// safe for concurrent use.
type MergerForker interface {
	Merger
	// ForkMerger returns a Merger with private mutable state; shared
	// counters may be retained (they must be concurrency-safe).
	ForkMerger() Merger
}

// WriteMerger combines an incoming value with the value already present in
// the MemTable for the same key. The Lazy index uses it so that at most
// one posting-list fragment per key exists per level, at zero disk-I/O
// cost (DESIGN.md §5).
type WriteMerger func(existing, incoming []byte) []byte

// AttrExtractor reports the indexed secondary attribute values of an
// entry; it is invoked at flush and compaction time to build the Embedded
// index structures of each new SSTable. It may return nil.
type AttrExtractor func(userKey, value []byte) []sstable.AttrValue

// Options tunes a DB. The zero value is usable; defaults mirror LevelDB's
// constants scaled to experiment-friendly sizes.
type Options struct {
	// MemTableBytes triggers a flush when the MemTable reaches this size.
	// Default 4 MiB.
	MemTableBytes int64
	// BlockSize is the SSTable data-block target size. Default 4096.
	BlockSize int
	// BitsPerKey sizes primary bloom filters. Default 10.
	BitsPerKey int
	// SecondaryBitsPerKey sizes embedded secondary bloom filters.
	// Default: BitsPerKey.
	SecondaryBitsPerKey int
	// Compression selects the SSTable block codec. Default: flate
	// (disable for paper Appendix C.2 runs).
	DisableCompression bool
	// RestartInterval is the SSTable restart-point spacing (full keys per
	// data block, format v2). 0 means sstable.DefaultRestartInterval;
	// negative writes legacy v1 blocks with linear-only in-block search
	// (the seed format, kept for ablations and compatibility tests).
	RestartInterval int
	// L0CompactionTrigger is the number of level-0 files that forces an
	// L0→L1 compaction. Default 4.
	L0CompactionTrigger int
	// BaseLevelBytes is the target size of level 1; level i+1 is
	// LevelMultiplier times larger. Default 10 MiB.
	BaseLevelBytes int64
	// LevelMultiplier is the fan-out between adjacent levels. Default 10
	// (LevelDB's constant; the paper's cost formulas use it as N).
	LevelMultiplier int
	// MaxLevels bounds the tree depth. Default 7.
	MaxLevels int
	// SecondaryAttrs lists attributes to embed bloom filters and zone
	// maps for (the Embedded index). Empty for index tables.
	SecondaryAttrs []string
	// Extract provides attribute values at table-build time; required
	// when SecondaryAttrs is non-empty.
	Extract AttrExtractor
	// Merge, when set, merges multi-version values during compaction.
	Merge Merger
	// WriteMerge, when set, merges an incoming Put with the MemTable's
	// current value for the key.
	WriteMerge WriteMerger
	// SyncWAL forces an fsync per write. Off by default (the paper's
	// throughput experiments run LevelDB in its default async mode).
	// Deprecated shorthand: SyncMode supersedes it when set.
	SyncWAL bool
	// SyncMode selects WAL durability per commit: off (never fsync),
	// always (one fsync per logical commit), or grouped (one fsync per
	// commit group — concurrent committers share it). The zero value
	// (wal.SyncUnset) resolves from SyncWAL: true → always, false → off.
	SyncMode wal.SyncMode
	// GroupCommit configures the leader-based commit queue. Off by
	// default: the paper's experiments use the serial inline commit path
	// for determinism.
	GroupCommit GroupCommitOptions
	// BackgroundCompaction decouples ingestion from merge work: on
	// memtable-full the writer swaps in a fresh MemTable + WAL segment and
	// hands the frozen one to a background flusher, while a dedicated
	// goroutine runs compactions and installs new versions under the DB
	// lock. Off by default — the paper's experiments require the inline,
	// single-threaded mode for determinism and exact I/O attribution
	// (DESIGN.md §5 "Concurrency modes").
	BackgroundCompaction bool
	// L0SlowdownTrigger is the level-0 file count at which background-mode
	// writers are delayed ~1ms per write so compaction can keep up.
	// Default 8. Ignored in inline mode.
	L0SlowdownTrigger int
	// L0StopTrigger is the level-0 file count at which background-mode
	// writers block until compaction brings L0 back under the limit.
	// Default 12. Ignored in inline mode.
	L0StopTrigger int
	// CompactionParallelism bounds the worker pool of the key-range
	// sub-compaction engine (DESIGN.md §5.9): each compaction's input span
	// is partitioned into up to this many disjoint user-key ranges merged
	// concurrently, and in background mode up to two compactions on
	// disjoint level pairs run at once. 0 or 1 keeps the serial engine;
	// results (output tables, manifests, write counters) are byte-identical
	// at every setting — only CompactionReads may differ, because adjacent
	// partitions re-read the boundary block they share.
	CompactionParallelism int
	// BlockCacheBytes enables an LRU block cache of the given capacity.
	// 0 disables caching — the paper's configuration ("No block cache
	// was used"), keeping measured block I/O purely algorithmic.
	BlockCacheBytes int64
	// Stats receives I/O accounting. If nil a private IOStats is used.
	Stats *metrics.IOStats
	// Tracer, when set, samples compactions into per-phase traces
	// (OpCompact with compact_merge/compact_write) alongside the
	// foreground ops traced by the layers above. Nil disables.
	Tracer *metrics.Tracer
	// Events, when set, receives structured lifecycle events (MemTable
	// freezes, flush and compaction start/done, throttle transitions, WAL
	// rotations — see metrics.EventType). Nil disables event emission.
	// Sinks are called with db.mu held and must not block on this DB.
	Events metrics.EventSink
}

// GroupCommitOptions tunes the leader-based commit queue (DESIGN.md
// §5.5). When Enabled, every Put/Delete/Apply enqueues a pending commit;
// the first waiter becomes leader, drains the queue up to the budgets
// below, writes one WAL batch, issues the fsyncs its group's SyncMode
// demands, performs the MemTable inserts, and wakes the followers.
type GroupCommitOptions struct {
	// Enabled turns the commit queue on.
	Enabled bool
	// MaxBatchBytes caps the WAL payload bytes a leader drains into one
	// group. Default 1 MiB.
	MaxBatchBytes int64
	// MaxWaiters caps the number of pending commits a leader drains into
	// one group. Default 128.
	MaxWaiters int
}

func (o *Options) withDefaults() Options {
	opts := Options{}
	if o != nil {
		opts = *o
	}
	if opts.MemTableBytes <= 0 {
		opts.MemTableBytes = 4 << 20
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = 4096
	}
	if opts.BitsPerKey <= 0 {
		opts.BitsPerKey = 10
	}
	if opts.SecondaryBitsPerKey <= 0 {
		opts.SecondaryBitsPerKey = opts.BitsPerKey
	}
	if opts.L0CompactionTrigger <= 0 {
		opts.L0CompactionTrigger = 4
	}
	if opts.BaseLevelBytes <= 0 {
		opts.BaseLevelBytes = 10 << 20
	}
	if opts.LevelMultiplier <= 1 {
		opts.LevelMultiplier = 10
	}
	if opts.MaxLevels <= 1 {
		opts.MaxLevels = 7
	}
	if opts.L0SlowdownTrigger <= 0 {
		opts.L0SlowdownTrigger = 8
	}
	if opts.L0StopTrigger <= 0 {
		opts.L0StopTrigger = 12
	}
	if opts.L0StopTrigger <= opts.L0SlowdownTrigger {
		opts.L0StopTrigger = opts.L0SlowdownTrigger + 4
	}
	if opts.Stats == nil {
		opts.Stats = &metrics.IOStats{}
	}
	if opts.CompactionParallelism <= 0 {
		opts.CompactionParallelism = 1
	}
	if opts.SyncMode == wal.SyncUnset {
		if opts.SyncWAL {
			opts.SyncMode = wal.SyncAlways
		} else {
			opts.SyncMode = wal.SyncOff
		}
	}
	if opts.GroupCommit.MaxBatchBytes <= 0 {
		opts.GroupCommit.MaxBatchBytes = 1 << 20
	}
	if opts.GroupCommit.MaxWaiters <= 0 {
		opts.GroupCommit.MaxWaiters = 128
	}
	return opts
}

func (o Options) compression() sstable.Compression {
	if o.DisableCompression {
		return sstable.NoCompression
	}
	return sstable.FlateCompression
}

func (o Options) tableOptions(compaction bool) sstable.Options {
	return sstable.Options{
		BlockSize:           o.BlockSize,
		BitsPerKey:          o.BitsPerKey,
		SecondaryBitsPerKey: o.SecondaryBitsPerKey,
		Compression:         o.compression(),
		RestartInterval:     o.RestartInterval,
		SecondaryAttrs:      o.SecondaryAttrs,
		Stats:               o.Stats,
		CompactionIO:        compaction,
	}
}
