package lsm

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/sstable"
)

// FileMeta describes one SSTable in the tree: its file number, size, key
// range, and the open table handle (all tables stay open, mirroring the
// paper's max_open_files=30000 configuration that keeps every filter in
// memory).
type FileMeta struct {
	Num      uint64
	Size     int64
	Smallest []byte // internal key
	Largest  []byte // internal key
	tbl      *sstable.Table
	f        *os.File
}

// Table returns the open table handle.
func (fm *FileMeta) Table() *sstable.Table { return fm.tbl }

func (fm *FileMeta) overlapsUser(loUser, hiUser []byte) bool {
	// [loUser, hiUser] inclusive, nil means unbounded.
	if hiUser != nil && bytes.Compare(ikey.UserKey(fm.Smallest), hiUser) > 0 {
		return false
	}
	if loUser != nil && bytes.Compare(ikey.UserKey(fm.Largest), loUser) < 0 {
		return false
	}
	return true
}

// version is the current shape of the tree: levels[0] holds overlapping
// files ordered newest-first; deeper levels hold disjoint files sorted by
// smallest key.
type version struct {
	levels [][]*FileMeta
}

func newVersion(maxLevels int) *version {
	return &version{levels: make([][]*FileMeta, maxLevels)}
}

// clone returns a version whose level slices are fresh copies, so edits
// install by copy: a reader (or an off-lock compaction) holding the old
// version keeps a stable view while the writer swaps in the clone.
func (v *version) clone() *version {
	nv := &version{levels: make([][]*FileMeta, len(v.levels))}
	for l, files := range v.levels {
		if len(files) > 0 {
			nv.levels[l] = append([]*FileMeta(nil), files...)
		}
	}
	return nv
}

// levelBytes sums file sizes in a level.
func (v *version) levelBytes(level int) int64 {
	var n int64
	for _, f := range v.levels[level] {
		n += f.Size
	}
	return n
}

// overlappingFiles returns the files in level whose user-key range
// intersects [loUser, hiUser].
func (v *version) overlappingFiles(level int, loUser, hiUser []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.levels[level] {
		if f.overlapsUser(loUser, hiUser) {
			out = append(out, f)
		}
	}
	return out
}

// findFile binary-searches a sorted (level ≥ 1) level for the single file
// that may contain userKey.
func (v *version) findFile(level int, userKey []byte) *FileMeta {
	files := v.levels[level]
	i := sort.Search(len(files), func(i int) bool {
		return bytes.Compare(ikey.UserKey(files[i].Largest), userKey) >= 0
	})
	if i < len(files) && bytes.Compare(ikey.UserKey(files[i].Smallest), userKey) <= 0 {
		return files[i]
	}
	return nil
}

// isBaseLevelForKey reports that no level deeper than level contains
// userKey's range, so tombstones may be dropped.
func (v *version) isBaseLevelForKey(level int, userKey []byte) bool {
	for l := level + 1; l < len(v.levels); l++ {
		for _, f := range v.levels[l] {
			if f.overlapsUser(userKey, userKey) {
				return false
			}
		}
	}
	return true
}

// --- manifest persistence ---------------------------------------------

// manifest is the JSON-serialized durable tree state. It is rewritten
// atomically (temp file + rename) after every flush or compaction.
type manifest struct {
	NextFileNum uint64         `json:"next_file_num"`
	LastSeq     uint64         `json:"last_seq"`
	Levels      [][]fileRecord `json:"levels"`
}

type fileRecord struct {
	Num      uint64 `json:"num"`
	Size     int64  `json:"size"`
	Smallest string `json:"smallest"` // base64 internal key
	Largest  string `json:"largest"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

func saveManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("lsm: encode manifest: %w", err)
	}
	tmp := manifestPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	return os.Rename(tmp, manifestPath(dir))
}

func loadManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("lsm: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("lsm: decode manifest: %w", err)
	}
	return m, true, nil
}

func (v *version) toManifest(nextFileNum, lastSeq uint64) manifest {
	m := manifest{NextFileNum: nextFileNum, LastSeq: lastSeq, Levels: make([][]fileRecord, len(v.levels))}
	for l, files := range v.levels {
		for _, f := range files {
			m.Levels[l] = append(m.Levels[l], fileRecord{
				Num:      f.Num,
				Size:     f.Size,
				Smallest: base64.StdEncoding.EncodeToString(f.Smallest),
				Largest:  base64.StdEncoding.EncodeToString(f.Largest),
			})
		}
	}
	return m
}

func tablePath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", num))
}
