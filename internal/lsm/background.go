package lsm

import (
	"fmt"
	"os"
	"sync"
	"time"

	"leveldbpp/internal/metrics"
	"leveldbpp/internal/wal"
)

// background holds the state of the concurrent write pipeline
// (Options.BackgroundCompaction): one flusher goroutine that turns frozen
// MemTables into L0 tables, and one compaction scheduler that restores
// the tree shape by dispatching jobs to runner goroutines — up to two at
// once on disjoint level pairs when Options.CompactionParallelism > 1.
// All fields except compactionMu and wg are guarded by db.mu; db.cond is
// broadcast whenever any of them changes.
type background struct {
	wg      sync.WaitGroup
	closing bool  // guarded by db.mu; Close in progress: drain, accept no new work
	quit    bool  // guarded by db.mu; goroutines must exit
	jobs    int   // guarded by db.mu; compaction jobs in flight
	maxJobs int   // immutable after startBackground; job-slot bound
	err     error // guarded by db.mu; sticky first background failure; poisons writes

	// compactionMu serializes compaction *scheduling* between the
	// background scheduler and manual CompactRange: the scheduler holds it
	// only while picking and reserving a job; CompactRange holds it for
	// its whole duration, so once running jobs drain no new ones start.
	// Runner goroutines never take it. Lock order: compactionMu before
	// db.mu, never the reverse.
	compactionMu sync.Mutex

	flushes       int64 // guarded by db.mu; background flushes completed
	compactions   int64 // guarded by db.mu; background compactions completed
	slowdowns     int64 // guarded by db.mu; writes delayed ~1ms by the L0 slowdown trigger
	throttleWaits int64 // guarded by db.mu; writes fully stalled by the L0 stop trigger

	// Throttle state for edge-triggered event emission: engage/release
	// events fire on transitions, not per delayed write.
	stopEngaged     bool // guarded by db.mu
	slowdownEngaged bool // guarded by db.mu
}

// BackgroundStats reports the pipeline's progress counters; all zeros in
// inline mode.
type BackgroundStats struct {
	Flushes       int64
	Compactions   int64
	Slowdowns     int64
	ThrottleWaits int64
}

// BackgroundStats returns the background pipeline counters.
func (db *DB) BackgroundStats() BackgroundStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.bg == nil {
		return BackgroundStats{}
	}
	return BackgroundStats{
		Flushes:       db.bg.flushes,
		Compactions:   db.bg.compactions,
		Slowdowns:     db.bg.slowdowns,
		ThrottleWaits: db.bg.throttleWaits,
	}
}

func (db *DB) startBackground() {
	db.bg = &background{maxJobs: 1}
	if db.opts.CompactionParallelism > 1 {
		// With the parallel engine on, let an L0→L1 job and one deeper
		// Ln→Ln+1 job overlap; the per-level reservation in
		// pickCompactionLocked keeps their file sets disjoint.
		db.bg.maxJobs = 2
	}
	db.bg.wg.Add(2)
	go db.flusher()
	go db.compactor()
}

// stopBackground drains in-flight background work (the flusher finishes a
// pending frozen MemTable; the compactor finishes its current job but
// starts no new ones) and stops both goroutines. Writers arriving during
// the drain receive ErrClosed.
func (db *DB) stopBackground() error {
	db.mu.Lock()
	bg := db.bg
	if bg == nil || db.closed {
		db.mu.Unlock()
		return nil
	}
	if !bg.closing {
		bg.closing = true
		db.cond.Broadcast()
	}
	for (db.imm != nil || bg.jobs > 0) && bg.err == nil {
		db.cond.Wait()
	}
	bg.quit = true
	db.cond.Broadcast()
	db.mu.Unlock()
	bg.wg.Wait()
	return nil
}

// failLocked records the first background failure and wakes everyone
// blocked on the pipeline; subsequent writes and Flush return the error.
func (bg *background) failLocked(db *DB, err error) {
	if bg.err == nil {
		bg.err = err
	}
	db.cond.Broadcast()
}

// throttleLocked applies LevelDB-style write control before a write is
// accepted: a single ~1ms delay per write once L0 reaches the slowdown
// trigger, and a full stall (condition wait) at the stop trigger so
// writers degrade gracefully instead of racing compaction.
func (db *DB) throttleLocked() error {
	bg := db.bg
	if bg.err != nil {
		return bg.err
	}
	if bg.closing || db.closed {
		return ErrClosed
	}
	stalled := false
	for len(db.v.levels[0]) >= db.opts.L0StopTrigger && bg.err == nil && !bg.closing && !db.closed {
		if !bg.stopEngaged {
			bg.stopEngaged = true
			db.emit(metrics.Event{Type: metrics.EventStopOn, Level: 0,
				Detail: fmt.Sprintf("l0_files=%d", len(db.v.levels[0]))})
		}
		bg.throttleWaits++
		stalled = true
		t0 := time.Now()
		db.cond.Wait()
		db.stallNS.Add(int64(time.Since(t0)))
	}
	if bg.stopEngaged && len(db.v.levels[0]) < db.opts.L0StopTrigger {
		bg.stopEngaged = false
		db.emit(metrics.Event{Type: metrics.EventStopOff, Level: 0,
			Detail: fmt.Sprintf("l0_files=%d", len(db.v.levels[0]))})
	}
	if bg.err != nil {
		return bg.err
	}
	if bg.closing || db.closed {
		return ErrClosed
	}
	if !stalled && len(db.v.levels[0]) >= db.opts.L0SlowdownTrigger {
		if !bg.slowdownEngaged {
			bg.slowdownEngaged = true
			db.emit(metrics.Event{Type: metrics.EventSlowdownOn, Level: 0,
				Detail: fmt.Sprintf("l0_files=%d", len(db.v.levels[0]))})
		}
		bg.slowdowns++
		db.mu.Unlock()
		time.Sleep(time.Millisecond)
		db.mu.Lock()
		if bg.err != nil {
			return bg.err
		}
		if bg.closing || db.closed {
			return ErrClosed
		}
	} else if bg.slowdownEngaged && len(db.v.levels[0]) < db.opts.L0SlowdownTrigger {
		bg.slowdownEngaged = false
		db.emit(metrics.Event{Type: metrics.EventSlowdownOff, Level: 0,
			Detail: fmt.Sprintf("l0_files=%d", len(db.v.levels[0]))})
	}
	return nil
}

// freezeMemLocked atomically swaps in a fresh MemTable + WAL segment and
// hands the frozen MemTable to the background flusher. At most one frozen
// MemTable is outstanding; a second freeze waits for the slot. force
// freezes a MemTable of any size (Flush); without it a freeze is skipped
// when another writer already rotated while this one waited for the slot.
func (db *DB) freezeMemLocked(force bool) error {
	bg := db.bg
	// Also wait out in-flight group-commit leader passes: immSeq below is
	// set to lastSeq, which must be fully present in the MemTable being
	// frozen or the flusher would advance the manifest floor over records
	// that only exist in the outgoing WAL segment.
	for (db.imm != nil || db.commitsInFlight > 0) && bg.err == nil && !bg.closing && !db.closed {
		db.cond.Wait()
	}
	if bg.err != nil {
		return bg.err
	}
	if bg.closing || db.closed {
		return ErrClosed
	}
	if db.mem.empty() {
		return nil
	}
	if !force && db.mem.approximateBytes() < db.opts.MemTableBytes/2 {
		return nil
	}
	db.walSeq++
	seg := walSegmentPath(db.dir, db.walSeq)
	db.logMu.Lock()
	err := db.log.Close()
	var log *wal.Writer
	if err == nil {
		log, err = wal.Create(seg)
		db.log = log
	}
	db.logMu.Unlock()
	if err != nil {
		return err
	}
	db.imm = db.mem
	db.immSeq = db.lastSeq
	db.immWALs = db.memWALs
	db.mem = newMemTable(db.opts.SecondaryAttrs)
	db.memWALs = []string{seg}
	db.emit(metrics.Event{Type: metrics.EventMemFreeze,
		Entries: db.imm.list.Len(), Bytes: db.imm.approximateBytes()})
	db.emit(metrics.Event{Type: metrics.EventWALRotate,
		Detail: fmt.Sprintf("segment=%d", db.walSeq)})
	db.cond.Broadcast() // wake the flusher
	return nil
}

// waitPipelineIdleLocked blocks until the frozen MemTable (if any) is
// flushed and the tree satisfies all shape invariants — the background
// analogue of inline Flush's flush-then-compact-to-quiescence.
func (db *DB) waitPipelineIdleLocked() error {
	bg := db.bg
	for (db.imm != nil || bg.jobs > 0 || db.needsCompactionLocked()) &&
		bg.err == nil && !bg.closing && !db.closed {
		db.cond.Wait()
	}
	if bg.err != nil {
		return bg.err
	}
	if bg.closing || db.closed {
		return ErrClosed
	}
	return nil
}

// flusher is the background goroutine that builds an L0 table from each
// frozen MemTable and installs it by version copy. On Close it drains a
// pending frozen MemTable before exiting; on error it parks (the WAL
// segments preserve the frozen contents for recovery).
func (db *DB) flusher() {
	bg := db.bg
	defer bg.wg.Done()
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		for db.imm == nil && !bg.quit {
			db.cond.Wait()
		}
		if db.imm == nil {
			return // quit with nothing pending
		}
		imm, immSeq, immWALs := db.imm, db.immSeq, db.immWALs
		fileNum := db.allocFileNum()
		hook := db.testBlockFlush
		db.emit(metrics.Event{Type: metrics.EventFlushStart, Level: 0,
			Entries: imm.list.Len(), Bytes: imm.approximateBytes()})
		flushT0 := time.Now()
		db.mu.Unlock()
		if hook != nil {
			<-hook
		}
		fm, err := db.buildMemTable(imm, fileNum)
		db.mu.Lock()
		if err != nil {
			bg.failLocked(db, err)
			return
		}
		nv := db.v.clone()
		nv.levels[0] = append([]*FileMeta{fm}, nv.levels[0]...)
		db.v = nv
		db.flushedSeq = immSeq
		if err := saveManifest(db.dir, db.v.toManifest(db.nextFileNum.Load(), db.flushedSeq)); err != nil {
			bg.failLocked(db, err)
			return
		}
		// The frozen MemTable is durable in the SSTable; its WAL segments
		// are no longer needed (crash before this point replays them and
		// skips records at or below the manifest floor).
		db.imm = nil
		db.immWALs = nil
		bg.flushes++
		db.emit(metrics.Event{Type: metrics.EventFlushDone, Level: 0, Outputs: 1,
			Entries: fm.tbl.EntryCount(), Bytes: fm.Size,
			DurationUS: time.Since(flushT0).Microseconds()})
		for _, p := range immWALs {
			_ = os.Remove(p)
		}
		db.cond.Broadcast() // wake writers waiting for the imm slot, and the compactor
	}
}

// compactor is the background scheduler: it waits until some unreserved
// level pair needs compaction and a job slot is free, picks a job under
// compactionMu+db.mu (same L0-first, round-robin policy as inline mode),
// reserves the job's two levels, and hands it to a runner goroutine. The
// merge itself runs entirely outside both locks, so with maxJobs > 1 an
// L0→L1 job and a deeper Ln→Ln+1 job overlap.
//
// Pick-time job.base stays valid for tombstone base checks under
// concurrent jobs: a job at levels (l, l+1) only consults levels deeper
// than l+1, and every other runnable job moves keys *between* such deeper
// levels (or shallower ones), so a key present below the target at pick
// time can at worst disappear — which makes the check conservative
// (bottom=false retains a tombstone one round longer), never wrong.
func (db *DB) compactor() {
	bg := db.bg
	defer bg.wg.Done()
	for {
		db.mu.Lock()
		for !(bg.jobs < bg.maxJobs && db.compactionReadyLocked()) &&
			!bg.quit && !bg.closing && bg.err == nil {
			db.cond.Wait()
		}
		if bg.quit || bg.closing || bg.err != nil {
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()

		// Lock order: compactionMu first (see background.compactionMu).
		// The tree may have changed between the wait and reacquisition;
		// a nil pick just loops back to the wait.
		bg.compactionMu.Lock()
		db.mu.Lock()
		var job *compactionJob
		if bg.jobs < bg.maxJobs {
			job = db.pickCompactionLocked()
		}
		if job == nil {
			db.mu.Unlock()
			bg.compactionMu.Unlock()
			continue
		}
		bg.jobs++
		db.compactingLevels[job.level] = true
		db.compactingLevels[job.level+1] = true
		db.emitCompactionStart(job)
		bg.wg.Add(1)
		go db.runCompactionJob(job)
		db.mu.Unlock()
		bg.compactionMu.Unlock()
	}
}

// runCompactionJob is one compaction job's runner goroutine: merge
// off-lock (possibly fanned out over key-range sub-compactions), then
// install, release the job's level reservation, and wake waiters.
func (db *DB) runCompactionJob(job *compactionJob) {
	bg := db.bg
	defer bg.wg.Done()
	t0 := time.Now()
	tr := db.opts.Tracer.Start(metrics.OpCompact)
	outputs, err := db.runCompactionMerge(job, tr)
	tr.Finish()

	db.mu.Lock()
	defer db.mu.Unlock()
	if err == nil {
		err = db.installCompactionLocked(job, outputs)
	}
	bg.jobs--
	db.compactingLevels[job.level] = false
	db.compactingLevels[job.level+1] = false
	if err != nil {
		db.emitCompactionError(job, err)
		bg.failLocked(db, err)
		return
	}
	db.emitCompactionDone(job, outputs, t0)
	bg.compactions++
	db.cond.Broadcast() // wake throttled writers, Flush waiters and the scheduler
}
