package lsm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"leveldbpp/internal/wal"
)

// BenchmarkIngestGroupCommit measures the write pipeline under durable
// syncs (SyncGrouped: every acknowledged commit is fsync-covered) with
// and without the commit queue. The acceptance numbers for the group
// commit PR come from these sub-benchmarks: 8-writer grouped throughput
// vs 8-writer inline, the fsyncs/op amortization, and the single-writer
// inline baseline (a group of one must not regress it).
func BenchmarkIngestGroupCommit(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 550) // paper's average tweet size
	run := func(b *testing.B, writers int, group bool) {
		opts := &Options{
			MemTableBytes: 1 << 30, // keep flushes out of the measurement
			SyncMode:      wal.SyncGrouped,
		}
		if group {
			opts.GroupCommit = GroupCommitOptions{Enabled: true}
		}
		db, _ := openTestDB(b, opts)
		before := db.CommitStats()
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Writer w owns ops w, w+writers, w+2*writers, ... so the
				// total is exactly b.N whatever the writer count.
				for i := w; i < b.N; i += writers {
					k := []byte(fmt.Sprintf("w%02d-%09d", w, i))
					if err := db.Put(k, val); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		d := db.CommitStats().Sub(before)
		if d.Commits > 0 {
			b.ReportMetric(float64(d.Fsyncs)/float64(d.Commits), "fsyncs/op")
			b.ReportMetric(d.MeanGroupSize(), "commits/group")
		}
	}
	b.Run("writers=1/inline", func(b *testing.B) { run(b, 1, false) })
	b.Run("writers=1/group", func(b *testing.B) { run(b, 1, true) })
	b.Run("writers=8/inline", func(b *testing.B) { run(b, 8, false) })
	b.Run("writers=8/group", func(b *testing.B) { run(b, 8, true) })
}
