package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func bgOpts() *Options {
	o := smallOpts()
	o.BackgroundCompaction = true
	return o
}

func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: have %d, want <= %d", runtime.NumGoroutine(), want)
}

// TestBackgroundBasic drives a background-mode DB through many flushes
// and compactions, then reopens the directory in inline mode to prove the
// on-disk formats (manifest, WAL segments, tables) are mode-independent.
func TestBackgroundBasic(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.BackgroundStats()
	if st.Flushes == 0 {
		t.Fatalf("no background flushes ran: %+v", st)
	}
	for i := 0; i < n; i += 97 {
		k := fmt.Sprintf("key-%05d", i)
		if v, ok := mustGet(t, db, k); !ok || v != fmt.Sprintf("value-%05d", i) {
			t.Fatalf("Get(%s) = %q %v", k, v, ok)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Cross-mode reopen: inline.
	inline, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer inline.Close()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if v, ok := mustGet(t, inline, k); !ok || v != fmt.Sprintf("value-%05d", i) {
			t.Fatalf("after inline reopen, Get(%s) = %q %v", k, v, ok)
		}
	}
	if rep, err := inline.Verify(); err != nil || len(rep.Problems) > 0 {
		t.Fatalf("verify after reopen: %v %v", err, rep.Problems)
	}
}

// TestBackgroundFrozenMemtableVisible checks the read paths while a
// frozen MemTable is parked behind the blocked flusher: Get and Scan must
// see its records, and newer live-MemTable versions must shadow it.
func TestBackgroundFrozenMemtableVisible(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	block := make(chan struct{})
	db.mu.Lock()
	db.testBlockFlush = block
	db.mu.Unlock()

	i := 0
	for {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
		i++
		db.mu.RLock()
		frozen := db.imm != nil
		db.mu.RUnlock()
		if frozen {
			break
		}
		if i > 100000 {
			t.Fatal("memtable never froze")
		}
	}
	// Overwrite one frozen key in the live MemTable.
	mustPut(t, db, "key-00000", "newer")

	if v, ok := mustGet(t, db, "key-00000"); !ok || v != "newer" {
		t.Fatalf("Get(key-00000) = %q %v, want newer", v, ok)
	}
	if v, ok := mustGet(t, db, "key-00001"); !ok || v != "value-00001" {
		t.Fatalf("Get(key-00001) = %q %v", v, ok)
	}
	got := map[string]string{}
	err = db.Scan(nil, nil, func(k, v []byte, _ uint64) bool {
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != i {
		t.Fatalf("scan saw %d keys, want %d", len(got), i)
	}
	if got["key-00000"] != "newer" {
		t.Fatalf("scan saw %q for overwritten key", got["key-00000"])
	}
	close(block)
	db.mu.Lock()
	db.testBlockFlush = nil
	db.mu.Unlock()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCrashRecovery freezes a MemTable, blocks its flush, and
// copies the directory — a crash image with an unflushed frozen MemTable
// and a live MemTable, each backed only by WAL segments. Reopening the
// copy must replay every acknowledged write.
func TestBackgroundCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	block := make(chan struct{})
	db.mu.Lock()
	db.testBlockFlush = block
	db.mu.Unlock()

	want := map[string]string{}
	i := 0
	for {
		k, v := fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i)
		mustPut(t, db, k, v)
		want[k] = v
		i++
		db.mu.RLock()
		frozen := db.imm != nil
		db.mu.RUnlock()
		if frozen {
			break
		}
		if i > 100000 {
			t.Fatal("memtable never froze")
		}
	}
	// A few more writes land in the fresh MemTable + new WAL segment.
	for j := 0; j < 50; j++ {
		k, v := fmt.Sprintf("post-%05d", j), fmt.Sprintf("pv-%05d", j)
		mustPut(t, db, k, v)
		want[k] = v
	}

	// Crash image: copy the directory while the flusher is still blocked
	// (the frozen MemTable exists nowhere but its WAL segments).
	crash := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.mu.RLock() // exclude concurrent manifest writes while copying
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db.mu.RUnlock()
	close(block)

	re, err := Open(crash, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for k, v := range want {
		if got, ok := mustGet(t, re, k); !ok || got != v {
			t.Fatalf("after crash recovery, Get(%s) = %q %v, want %q", k, got, ok, v)
		}
	}
}

// TestBackgroundCloseDrains proves Close waits for in-flight background
// work and leaves no goroutines behind, and that a reopen loses nothing.
func TestBackgroundCloseDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	// Close immediately: a frozen MemTable may be mid-flush and the
	// compactor mid-merge; both must drain.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)

	re, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if v, ok := mustGet(t, re, k); !ok || v != fmt.Sprintf("value-%05d", i) {
			t.Fatalf("after reopen, Get(%s) = %q %v", k, v, ok)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)

	// Closing twice is fine; writes after Close fail.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := re.Put([]byte("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

// TestBackgroundConcurrentStress runs writers, point readers and scanners
// against the background pipeline at once — the race-detector workout for
// the MemTable handoff, version install-by-copy, and throttle paths.
func TestBackgroundConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 800
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := fmt.Sprintf("w%d-key-%05d", w, i)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					if err := db.Delete([]byte(fmt.Sprintf("w%d-key-%05d", w, i/2))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Readers: point gets and scans on whatever exists.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := db.Get([]byte(fmt.Sprintf("w%d-key-%05d", r, i%perW))); err != nil && err != ErrClosed {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					err := db.Scan([]byte("w0"), []byte("w1"), func(_, _ []byte, _ uint64) bool { return true })
					if err != nil && err != ErrClosed {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	// One manual compaction mid-stream exercises the compactionMu path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		if err := db.CompactRange(nil, nil); err != nil && err != ErrClosed {
			t.Error(err)
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish first; then stop the readers.
	for {
		select {
		case <-done:
		default:
		}
		var writersAlive bool
		db.mu.RLock()
		writersAlive = db.lastSeq < uint64(writers*perW) // lower bound incl. deletes
		db.mu.RUnlock()
		if !writersAlive {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	<-done

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every key that wasn't deleted must be present with its final value.
	for w := 0; w < writers; w++ {
		for i := perW / 2; i < perW; i++ { // indices never targeted by deletes
			k := fmt.Sprintf("w%d-key-%05d", w, i)
			if v, ok := mustGet(t, db, k); !ok || v != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("Get(%s) = %q %v", k, v, ok)
			}
		}
	}
	if rep, err := db.Verify(); err != nil || len(rep.Problems) > 0 {
		t.Fatalf("verify: %v %v", err, rep.Problems)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCheckpoint takes a checkpoint while the pipeline is busy
// and verifies the copy opens and contains everything acknowledged before
// the call.
func TestBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, bgOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 1500
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := db.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	re, err := Open(ckpt, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if v, ok := mustGet(t, re, k); !ok || v != fmt.Sprintf("value-%05d", i) {
			t.Fatalf("checkpoint Get(%s) = %q %v", k, v, ok)
		}
	}
}

// TestInlineUnaffected guards the determinism contract: with
// BackgroundCompaction off, the new machinery must not run at all.
func TestInlineUnaffected(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key-%05d", i), fmt.Sprintf("value-%05d", i))
	}
	if db.bg != nil {
		t.Fatal("inline DB has background state")
	}
	db.mu.RLock()
	imm := db.imm
	db.mu.RUnlock()
	if imm != nil {
		t.Fatal("inline DB froze a memtable")
	}
	if st := db.BackgroundStats(); st != (BackgroundStats{}) {
		t.Fatalf("inline BackgroundStats = %+v", st)
	}
}
