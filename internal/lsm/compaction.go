package lsm

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"os"

	"leveldbpp/internal/cache"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/sstable"
	"leveldbpp/internal/wal"
)

func openSSTable(r io.ReaderAt, size int64, stats *metrics.IOStats, c *cache.Cache) (*sstable.Table, error) {
	return sstable.OpenTableCached(r, size, stats, c)
}

// maxTableBytes is the target SSTable size (LevelDB's 2 MB).
const maxTableBytes = 2 << 20

// maxBytesForLevel returns the size threshold that triggers compaction out
// of level l (l ≥ 1): BaseLevelBytes · LevelMultiplier^(l-1).
func (db *DB) maxBytesForLevel(l int) int64 {
	n := db.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		n *= int64(db.opts.LevelMultiplier)
	}
	return n
}

// flushLocked writes the MemTable to a new level-0 SSTable, persists the
// manifest, and truncates the WAL. Caller holds db.mu.
func (db *DB) flushLocked() error {
	fileNum := db.nextFileNum
	db.nextFileNum++

	path := tablePath(db.dir, fileNum)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lsm: create sstable: %w", err)
	}
	builder := sstable.NewBuilder(f, db.opts.tableOptions(false))
	it := db.mem.iter()
	var prevUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik, val := it.Key(), it.Value()
		uk := ikey.UserKey(ik)
		// The engine has no snapshots, so only the newest version of each
		// user key needs to survive the flush (entries arrive newest
		// first). This also guarantees one entry per user key per table,
		// which the Embedded lookup's validity check relies on.
		if prevUser != nil && bytes.Equal(prevUser, uk) {
			continue
		}
		prevUser = append(prevUser[:0], uk...)
		var attrs []sstable.AttrValue
		if db.opts.Extract != nil && ikey.KindOf(ik) == ikey.KindSet {
			attrs = db.opts.Extract(uk, val)
		}
		if err := builder.Add(ik, val, attrs); err != nil {
			f.Close()
			return err
		}
	}
	size, err := builder.Finish()
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fm, err := db.openTable(fileRecord{Num: fileNum, Size: size})
	if err != nil {
		return err
	}
	// Newest first in level 0.
	db.v.levels[0] = append([]*FileMeta{fm}, db.v.levels[0]...)

	if err := saveManifest(db.dir, db.v.toManifest(db.nextFileNum, db.lastSeq)); err != nil {
		return err
	}

	// The MemTable is durable in the SSTable; restart the WAL.
	if err := db.log.Close(); err != nil {
		return err
	}
	db.log, err = wal.Create(db.walFile())
	if err != nil {
		return err
	}
	db.mem = newMemTable(db.opts.SecondaryAttrs)
	return nil
}

// maybeCompactLocked runs compactions until the tree satisfies all shape
// invariants. Caller holds db.mu.
func (db *DB) maybeCompactLocked() error {
	for {
		if len(db.v.levels[0]) >= db.opts.L0CompactionTrigger {
			if err := db.compactL0Locked(); err != nil {
				return err
			}
			continue
		}
		compacted := false
		for l := 1; l < db.opts.MaxLevels-1; l++ {
			if db.v.levelBytes(l) > db.maxBytesForLevel(l) {
				if err := db.compactLevelLocked(l); err != nil {
					return err
				}
				compacted = true
				break
			}
		}
		if !compacted {
			return nil
		}
	}
}

// compactL0Locked merges every level-0 file with the overlapping files of
// level 1.
func (db *DB) compactL0Locked() error {
	inputs := append([]*FileMeta(nil), db.v.levels[0]...)
	var lo, hi []byte
	for _, fm := range inputs {
		s, l := ikey.UserKey(fm.Smallest), ikey.UserKey(fm.Largest)
		if lo == nil || bytes.Compare(s, lo) < 0 {
			lo = s
		}
		if hi == nil || bytes.Compare(l, hi) > 0 {
			hi = l
		}
	}
	next := db.v.overlappingFiles(1, lo, hi)
	return db.runCompactionLocked(0, inputs, next)
}

// compactLevelLocked picks one file of level l round-robin (LevelDB's
// compaction pointer, paper §4.2) and merges it with the overlapping
// files of level l+1.
func (db *DB) compactLevelLocked(l int) error {
	files := db.v.levels[l]
	if len(files) == 0 {
		return nil
	}
	pick := files[0]
	if ptr := db.compactPtr[l]; ptr != nil {
		for _, fm := range files {
			if bytes.Compare(ikey.UserKey(fm.Smallest), ptr) > 0 {
				pick = fm
				break
			}
		}
	}
	db.compactPtr[l] = append([]byte(nil), ikey.UserKey(pick.Largest)...)
	next := db.v.overlappingFiles(l+1, ikey.UserKey(pick.Smallest), ikey.UserKey(pick.Largest))
	return db.runCompactionLocked(l, []*FileMeta{pick}, next)
}

// mergeSource is one input iterator of a compaction.
type mergeSource struct {
	it *sstable.Iterator
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return ikey.Compare(h[i].it.Key(), h[j].it.Key()) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runCompactionLocked merges inputs (from level) and next (from level+1)
// into new tables at level+1, installs the new version, and removes
// obsolete files.
func (db *DB) runCompactionLocked(level int, inputs, next []*FileMeta) error {
	target := level + 1
	all := append(append([]*FileMeta(nil), inputs...), next...)

	var h mergeHeap
	for _, fm := range all {
		it := fm.tbl.NewIterator(true)
		if it.Next() {
			heap.Push(&h, &mergeSource{it: it})
		} else if err := it.Err(); err != nil {
			return err
		}
	}

	var outputs []*FileMeta
	var curFile *os.File
	var curBuilder *sstable.Builder
	var curNum uint64

	startOutput := func() error {
		curNum = db.nextFileNum
		db.nextFileNum++
		f, err := os.Create(tablePath(db.dir, curNum))
		if err != nil {
			return err
		}
		curFile = f
		curBuilder = sstable.NewBuilder(f, db.opts.tableOptions(true))
		return nil
	}
	finishOutput := func() error {
		if curBuilder == nil {
			return nil
		}
		size, err := curBuilder.Finish()
		if err != nil {
			return err
		}
		if err := curFile.Sync(); err != nil {
			return err
		}
		if err := curFile.Close(); err != nil {
			return err
		}
		fm, err := db.openTable(fileRecord{Num: curNum, Size: size})
		if err != nil {
			return err
		}
		outputs = append(outputs, fm)
		curFile, curBuilder = nil, nil
		return nil
	}
	emit := func(ik, value []byte) error {
		if curBuilder == nil {
			if err := startOutput(); err != nil {
				return err
			}
		}
		var attrs []sstable.AttrValue
		if db.opts.Extract != nil && ikey.KindOf(ik) == ikey.KindSet {
			attrs = db.opts.Extract(ikey.UserKey(ik), value)
		}
		if err := curBuilder.Add(ik, value, attrs); err != nil {
			return err
		}
		if curBuilder.EstimatedSize() >= maxTableBytes {
			return finishOutput()
		}
		return nil
	}

	// Group consecutive entries sharing a user key; within a group entries
	// arrive newest first (internal-key order).
	var groupKey []byte
	var groupIKeys [][]byte
	var groupValues [][]byte
	var groupKinds []ikey.Kind

	flushGroup := func() error {
		if groupKey == nil {
			return nil
		}
		defer func() {
			groupKey = nil
			groupIKeys = groupIKeys[:0]
			groupValues = groupValues[:0]
			groupKinds = groupKinds[:0]
		}()
		bottom := db.v.isBaseLevelForKey(target, groupKey)

		if db.opts.Merge != nil {
			// Collect live values down to (not past) the newest tombstone.
			var live [][]byte
			tombstoneAt := -1
			for i, k := range groupKinds {
				if k == ikey.KindDelete {
					tombstoneAt = i
					break
				}
				live = append(live, groupValues[i])
			}
			if len(live) == 0 {
				// Newest record is a tombstone.
				if tombstoneAt >= 0 && !bottom {
					return emit(groupIKeys[0], nil)
				}
				return nil
			}
			merged, keep := db.opts.Merge.Merge(groupKey, live, bottom && tombstoneAt < 0)
			if keep {
				if err := emit(groupIKeys[0], merged); err != nil {
					return err
				}
			}
			// A tombstone under the merged fragments must survive (unless
			// this is the base level) — it still shadows older fragments
			// in deeper levels.
			if tombstoneAt >= 0 && !bottom {
				return emit(groupIKeys[tombstoneAt], nil)
			}
			return nil
		}

		// Default: newest version wins.
		if groupKinds[0] == ikey.KindDelete {
			if bottom {
				return nil // tombstone has nothing left to shadow
			}
			return emit(groupIKeys[0], nil)
		}
		return emit(groupIKeys[0], groupValues[0])
	}

	for h.Len() > 0 {
		src := h[0]
		ik, val := src.it.Key(), src.it.Value()
		uk := ikey.UserKey(ik)
		if groupKey == nil || !bytes.Equal(groupKey, uk) {
			if err := flushGroup(); err != nil {
				return err
			}
			groupKey = append([]byte(nil), uk...)
		}
		groupIKeys = append(groupIKeys, append([]byte(nil), ik...))
		groupValues = append(groupValues, append([]byte(nil), val...))
		groupKinds = append(groupKinds, ikey.KindOf(ik))

		if src.it.Next() {
			heap.Fix(&h, 0)
		} else {
			if err := src.it.Err(); err != nil {
				return err
			}
			heap.Pop(&h)
		}
	}
	if err := flushGroup(); err != nil {
		return err
	}
	if err := finishOutput(); err != nil {
		return err
	}

	// Install the new version.
	dead := map[uint64]bool{}
	for _, fm := range all {
		dead[fm.Num] = true
	}
	var keepL []*FileMeta
	for _, fm := range db.v.levels[level] {
		if !dead[fm.Num] {
			keepL = append(keepL, fm)
		}
	}
	db.v.levels[level] = keepL
	var keepT []*FileMeta
	for _, fm := range db.v.levels[target] {
		if !dead[fm.Num] {
			keepT = append(keepT, fm)
		}
	}
	// Insert outputs sorted by smallest key (they are produced in order,
	// and target-level survivors don't overlap them).
	merged := append(keepT, outputs...)
	sortFilesBySmallest(merged)
	db.v.levels[target] = merged

	if err := saveManifest(db.dir, db.v.toManifest(db.nextFileNum, db.lastSeq)); err != nil {
		return err
	}
	for _, fm := range all {
		if db.blockCache != nil {
			db.blockCache.EvictTable(fm.tbl.ID())
		}
		fm.f.Close()
		os.Remove(tablePath(db.dir, fm.Num))
	}
	return nil
}

func sortFilesBySmallest(files []*FileMeta) {
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && ikey.Compare(files[j].Smallest, files[j-1].Smallest) < 0; j-- {
			files[j], files[j-1] = files[j-1], files[j]
		}
	}
}

// CompactRange forces the user-key range [lo, hi] (nil = unbounded) down
// the tree until every level except the deepest non-empty one is clear of
// it — LevelDB's manual compaction. Useful for tests, space reclamation
// after bulk deletes, and read-optimizing a cold dataset.
func (db *DB) CompactRange(lo, hi []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.mem.empty() {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	if len(db.v.levels[0]) > 0 {
		if err := db.compactL0Locked(); err != nil {
			return err
		}
	}
	for l := 1; l < db.opts.MaxLevels-1; l++ {
		for {
			overlapping := db.v.overlappingFiles(l, lo, hi)
			if len(overlapping) == 0 {
				break
			}
			// Skip when nothing deeper exists: the range already rests at
			// its final level.
			deeper := false
			for dl := l + 1; dl < db.opts.MaxLevels; dl++ {
				if len(db.v.levels[dl]) > 0 {
					deeper = true
				}
			}
			if !deeper && l == db.deepestNonEmptyLocked() {
				break
			}
			pick := overlapping[0]
			next := db.v.overlappingFiles(l+1, ikey.UserKey(pick.Smallest), ikey.UserKey(pick.Largest))
			if err := db.runCompactionLocked(l, []*FileMeta{pick}, next); err != nil {
				return err
			}
		}
	}
	return db.maybeCompactLocked()
}

func (db *DB) deepestNonEmptyLocked() int {
	for l := db.opts.MaxLevels - 1; l >= 0; l-- {
		if len(db.v.levels[l]) > 0 {
			return l
		}
	}
	return 0
}
