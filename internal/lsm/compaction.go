package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"leveldbpp/internal/cache"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/sstable"
	"leveldbpp/internal/wal"
)

func openSSTable(r io.ReaderAt, size int64, stats *metrics.IOStats, c *cache.Cache) (*sstable.Table, error) {
	return sstable.OpenTableCached(r, size, stats, c)
}

// maxTableBytes is the target SSTable size (LevelDB's 2 MB).
const maxTableBytes = 2 << 20

// allocFileNum hands out the next SSTable file number. Atomic so the
// background flusher and compactor can allocate without holding db.mu.
func (db *DB) allocFileNum() uint64 {
	return db.nextFileNum.Add(1) - 1
}

// maxBytesForLevel returns the size threshold that triggers compaction out
// of level l (l ≥ 1): BaseLevelBytes · LevelMultiplier^(l-1).
func (db *DB) maxBytesForLevel(l int) int64 {
	n := db.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		n *= int64(db.opts.LevelMultiplier)
	}
	return n
}

// buildMemTable writes mem's contents to a new SSTable and opens it. It
// takes no locks and touches no mutable DB state, so the background
// flusher runs it off-lock on a frozen MemTable.
func (db *DB) buildMemTable(mem *memTable, fileNum uint64) (*FileMeta, error) {
	path := tablePath(db.dir, fileNum)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: create sstable: %w", err)
	}
	builder := sstable.NewBuilder(f, db.opts.tableOptions(false))
	it := mem.iter()
	var prevUser []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik, val := it.Key(), it.Value()
		uk := ikey.UserKey(ik)
		// The engine has no snapshots, so only the newest version of each
		// user key needs to survive the flush (entries arrive newest
		// first). This also guarantees one entry per user key per table,
		// which the Embedded lookup's validity check relies on.
		if prevUser != nil && bytes.Equal(prevUser, uk) {
			continue
		}
		prevUser = append(prevUser[:0], uk...)
		var attrs []sstable.AttrValue
		if db.opts.Extract != nil && ikey.KindOf(ik) == ikey.KindSet {
			attrs = db.opts.Extract(uk, val)
		}
		if err := builder.Add(ik, val, attrs); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	size, err := builder.Finish()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return db.openTable(fileRecord{Num: fileNum, Size: size})
}

// flushLocked writes the MemTable to a new level-0 SSTable, persists the
// manifest, and restarts the WAL. Caller holds db.mu. In background mode
// this runs only with the pipeline drained (no frozen MemTable
// outstanding), from CompactRange.
func (db *DB) flushLocked() error {
	// flushedSeq below is set to lastSeq; wait out any group-commit
	// leader pass so every assigned sequence is in the MemTable first.
	db.waitCommitsLocked()
	db.emit(metrics.Event{Type: metrics.EventFlushStart, Level: 0,
		Entries: db.mem.list.Len(), Bytes: db.mem.approximateBytes()})
	flushT0 := time.Now()
	fm, err := db.buildMemTable(db.mem, db.allocFileNum())
	if err != nil {
		return err
	}
	// Newest first in level 0; install by copy so concurrent readers
	// holding the old version keep a stable view.
	nv := db.v.clone()
	nv.levels[0] = append([]*FileMeta{fm}, nv.levels[0]...)
	db.v = nv
	db.flushedSeq = db.lastSeq

	if err := saveManifest(db.dir, db.v.toManifest(db.nextFileNum.Load(), db.flushedSeq)); err != nil {
		return err
	}
	db.emit(metrics.Event{Type: metrics.EventFlushDone, Level: 0, Outputs: 1,
		Entries: fm.tbl.EntryCount(), Bytes: fm.Size,
		DurationUS: time.Since(flushT0).Microseconds()})

	// The MemTable is durable in the SSTable; restart the WAL. Any
	// leftover background segments backing it are obsolete too.
	db.logMu.Lock()
	err = db.log.Close()
	db.logMu.Unlock()
	if err != nil {
		return err
	}
	for _, p := range db.memWALs {
		if p != db.walFile() {
			_ = os.Remove(p)
		}
	}
	db.logMu.Lock()
	if db.bg != nil {
		_ = os.Remove(db.walFile())
		db.walSeq++
		seg := walSegmentPath(db.dir, db.walSeq)
		db.log, err = wal.Create(seg)
		db.memWALs = []string{seg}
		db.emit(metrics.Event{Type: metrics.EventWALRotate,
			Detail: fmt.Sprintf("segment=%d", db.walSeq)})
	} else {
		db.log, err = wal.Create(db.walFile())
		db.memWALs = []string{db.walFile()}
		db.emit(metrics.Event{Type: metrics.EventWALRotate, Detail: "restart"})
	}
	db.logMu.Unlock()
	if err != nil {
		return err
	}
	db.mem = newMemTable(db.opts.SecondaryAttrs)
	return nil
}

// needsCompactionLocked reports whether any shape invariant is violated.
func (db *DB) needsCompactionLocked() bool {
	if len(db.v.levels[0]) >= db.opts.L0CompactionTrigger {
		return true
	}
	for l := 1; l < db.opts.MaxLevels-1; l++ {
		if db.v.levelBytes(l) > db.maxBytesForLevel(l) {
			return true
		}
	}
	return false
}

// levelBusyLocked reports whether a job out of level l would touch a
// level reserved by an in-flight background job.
func (db *DB) levelBusyLocked(l int) bool {
	return db.compactingLevels[l] || db.compactingLevels[l+1]
}

// compactionReadyLocked reports whether some *unreserved* level pair
// violates a shape invariant — the background scheduler's wake predicate.
// Unlike pickCompactionLocked it is side-effect free (no compaction
// pointer advance), so it is safe to evaluate repeatedly in a wait loop.
func (db *DB) compactionReadyLocked() bool {
	if len(db.v.levels[0]) >= db.opts.L0CompactionTrigger && !db.levelBusyLocked(0) {
		return true
	}
	for l := 1; l < db.opts.MaxLevels-1; l++ {
		if db.v.levelBytes(l) > db.maxBytesForLevel(l) && !db.levelBusyLocked(l) {
			return true
		}
	}
	return false
}

// maybeCompactLocked runs compactions until the tree satisfies all shape
// invariants. Caller holds db.mu. (Inline mode only.)
func (db *DB) maybeCompactLocked() error {
	for {
		job := db.pickCompactionLocked()
		if job == nil {
			return nil
		}
		if err := db.runCompactionInlineLocked(job); err != nil {
			return err
		}
	}
}

// compactionJob is one picked compaction: inputs from level, overlapping
// files from level+1, and the pick-time version (stable until install,
// since only one compaction runs at a time) for tombstone base checks.
type compactionJob struct {
	level  int
	inputs []*FileMeta
	next   []*FileMeta
	base   *version
}

// pickCompactionLocked chooses the next compaction with the same policy
// inline mode applies: L0 first (merge all of L0 with overlapping L1),
// then the shallowest over-budget level, one file round-robin (LevelDB's
// compaction pointer, paper §4.2). Returns nil when the tree is in shape.
func (db *DB) pickCompactionLocked() *compactionJob {
	if len(db.v.levels[0]) >= db.opts.L0CompactionTrigger && !db.levelBusyLocked(0) {
		return db.pickL0Locked()
	}
	for l := 1; l < db.opts.MaxLevels-1; l++ {
		if db.v.levelBytes(l) > db.maxBytesForLevel(l) && !db.levelBusyLocked(l) {
			return db.pickLevelLocked(l)
		}
	}
	return nil
}

// pickL0Locked builds the job that merges every level-0 file with the
// overlapping files of level 1.
func (db *DB) pickL0Locked() *compactionJob {
	inputs := append([]*FileMeta(nil), db.v.levels[0]...)
	if len(inputs) == 0 {
		return nil
	}
	var lo, hi []byte
	for _, fm := range inputs {
		s, l := ikey.UserKey(fm.Smallest), ikey.UserKey(fm.Largest)
		if lo == nil || bytes.Compare(s, lo) < 0 {
			lo = s
		}
		if hi == nil || bytes.Compare(l, hi) > 0 {
			hi = l
		}
	}
	next := db.v.overlappingFiles(1, lo, hi)
	return &compactionJob{level: 0, inputs: inputs, next: next, base: db.v}
}

// pickLevelLocked picks one file of level l round-robin and the
// overlapping files of level l+1, advancing the compaction pointer.
func (db *DB) pickLevelLocked(l int) *compactionJob {
	files := db.v.levels[l]
	if len(files) == 0 {
		return nil
	}
	pick := files[0]
	if ptr := db.compactPtr[l]; ptr != nil {
		for _, fm := range files {
			if bytes.Compare(ikey.UserKey(fm.Smallest), ptr) > 0 {
				pick = fm
				break
			}
		}
	}
	db.compactPtr[l] = append([]byte(nil), ikey.UserKey(pick.Largest)...)
	next := db.v.overlappingFiles(l+1, ikey.UserKey(pick.Smallest), ikey.UserKey(pick.Largest))
	return &compactionJob{level: l, inputs: []*FileMeta{pick}, next: next, base: db.v}
}

// runCompactionInlineLocked merges and installs a job on the calling
// goroutine with db.mu held throughout — the inline-mode path, and
// CompactRange's path in both modes.
func (db *DB) runCompactionInlineLocked(job *compactionJob) error {
	db.emitCompactionStart(job)
	t0 := time.Now()
	tr := db.opts.Tracer.Start(metrics.OpCompact)
	outputs, err := db.runCompactionMerge(job, tr)
	tr.Finish()
	if err != nil {
		db.emitCompactionError(job, err)
		return err
	}
	if err := db.installCompactionLocked(job, outputs); err != nil {
		db.emitCompactionError(job, err)
		return err
	}
	db.emitCompactionDone(job, outputs, t0)
	return nil
}

// emitCompactionStart reports a picked job: source level, input file count
// across both levels, and input bytes.
func (db *DB) emitCompactionStart(job *compactionJob) {
	if db.opts.Events == nil {
		return
	}
	var inBytes int64
	for _, fm := range job.inputs {
		inBytes += fm.Size
	}
	for _, fm := range job.next {
		inBytes += fm.Size
	}
	db.emit(metrics.Event{Type: metrics.EventCompactionStart, Level: job.level,
		Inputs: len(job.inputs) + len(job.next), Bytes: inBytes})
}

// emitCompactionDone reports an installed job: output file count, bytes
// and entries, plus wall-clock duration since t0.
func (db *DB) emitCompactionDone(job *compactionJob, outputs []*FileMeta, t0 time.Time) {
	if db.opts.Events == nil {
		return
	}
	var outBytes int64
	entries := 0
	for _, fm := range outputs {
		outBytes += fm.Size
		entries += fm.tbl.EntryCount()
	}
	db.emit(metrics.Event{Type: metrics.EventCompactionDone, Level: job.level,
		Inputs: len(job.inputs) + len(job.next), Outputs: len(outputs),
		Bytes: outBytes, Entries: entries,
		DurationUS: time.Since(t0).Microseconds()})
}

// emitCompactionError reports a failed job. A sub-compaction failure
// carries the partition's user-key range, so a mid-merge error is
// attributable to the data that caused it.
func (db *DB) emitCompactionError(job *compactionJob, err error) {
	if db.opts.Events == nil {
		return
	}
	detail := err.Error()
	var se *subcompactionError
	if errors.As(err, &se) {
		detail = fmt.Sprintf("partition %s: %v", se.r, se.err)
	}
	db.emit(metrics.Event{Type: metrics.EventCompactionError, Level: job.level,
		Inputs: len(job.inputs) + len(job.next), Detail: detail})
}

// mergeSource is one input iterator of a compaction.
type mergeSource struct {
	it *sstable.Iterator
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return ikey.Compare(h[i].it.Key(), h[j].it.Key()) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runCompactionMerge merges job.inputs (from job.level) and job.next
// (from job.level+1) into new tables for job.level+1 and returns them. It
// reads only the job and immutable DB state, so the background compactor
// runs it without holding db.mu: input tables are immutable files, and
// job.base stays valid because concurrent jobs only move keys between
// levels deeper than this job's target (see compactor). With
// Options.CompactionParallelism > 1 the span is partitioned into key-range
// sub-compactions merged concurrently (subcompact.go); the ordered write
// stage keeps the outputs byte-identical either way.
func (db *DB) runCompactionMerge(job *compactionJob, tr *metrics.Trace) ([]*FileMeta, error) {
	all := append(append([]*FileMeta(nil), job.inputs...), job.next...)
	if bounds := partitionBoundaries(all, db.opts.CompactionParallelism); len(bounds) > 0 {
		return db.runCompactionParallel(job, all, bounds, tr)
	}
	return db.runCompactionSerial(job, all, tr)
}

// runCompactionSerial merges the whole span on the calling goroutine —
// the CompactionParallelism ≤ 1 engine, and the fallback when the inputs
// are too small to partition.
func (db *DB) runCompactionSerial(job *compactionJob, all []*FileMeta, tr *metrics.Trace) ([]*FileMeta, error) {
	target := job.level + 1
	t0 := time.Now()
	w := db.newCompactionWriter(tr)
	err := mergeGroups(all, keyRange{}, func(g *keyGroup) error {
		bottom := job.base.isBaseLevelForKey(target, g.key)
		return resolveGroup(db.opts.Merge, bottom, g, w.add)
	})
	var outputs []*FileMeta
	if err == nil {
		outputs, err = w.finish()
	}
	if err != nil {
		w.abort()
		return nil, err
	}
	db.subcompactions.Add(1)
	tr.Add(metrics.PhaseCompactWrite, time.Duration(w.writeNS))
	tr.Add(metrics.PhaseCompactMerge, time.Since(t0)-time.Duration(w.writeNS))
	return outputs, nil
}

// installCompactionLocked swaps in a version with the job's inputs
// replaced by its outputs, persists the manifest, and removes the input
// files. It filters dead files against the *current* version, so L0
// tables flushed while the merge ran off-lock survive. Caller holds
// db.mu; readers hold RLock for their whole operation, so nothing reads
// the inputs once the exclusive section completes.
func (db *DB) installCompactionLocked(job *compactionJob, outputs []*FileMeta) error {
	target := job.level + 1
	all := append(append([]*FileMeta(nil), job.inputs...), job.next...)
	dead := map[uint64]bool{}
	for _, fm := range all {
		dead[fm.Num] = true
	}
	nv := db.v.clone()
	var keepL []*FileMeta
	for _, fm := range nv.levels[job.level] {
		if !dead[fm.Num] {
			keepL = append(keepL, fm)
		}
	}
	nv.levels[job.level] = keepL
	var keepT []*FileMeta
	for _, fm := range nv.levels[target] {
		if !dead[fm.Num] {
			keepT = append(keepT, fm)
		}
	}
	// Insert outputs sorted by smallest key (they are produced in order,
	// and target-level survivors don't overlap them).
	merged := append(keepT, outputs...)
	sortFilesBySmallest(merged)
	nv.levels[target] = merged
	db.v = nv

	if err := saveManifest(db.dir, db.v.toManifest(db.nextFileNum.Load(), db.flushedSeq)); err != nil {
		return err
	}
	for _, fm := range all {
		if db.blockCache != nil {
			db.blockCache.EvictTable(fm.tbl.ID())
		}
		_ = fm.f.Close()
		_ = os.Remove(tablePath(db.dir, fm.Num))
	}
	return nil
}

func sortFilesBySmallest(files []*FileMeta) {
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && ikey.Compare(files[j].Smallest, files[j-1].Smallest) < 0; j-- {
			files[j], files[j-1] = files[j-1], files[j]
		}
	}
}

// CompactRange forces the user-key range [lo, hi] (nil = unbounded) down
// the tree until every level except the deepest non-empty one is clear of
// it — LevelDB's manual compaction. Useful for tests, space reclamation
// after bulk deletes, and read-optimizing a cold dataset. In background
// mode it excludes the background compactor for its duration and drains
// the frozen MemTable first.
func (db *DB) CompactRange(lo, hi []byte) error {
	if db.bg != nil {
		// Lock order: compactionMu before db.mu (see background).
		db.bg.compactionMu.Lock()
		defer db.bg.compactionMu.Unlock()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.bg != nil {
		// Wait out any in-flight flush and every running compaction job;
		// the scheduler cannot start new ones (we hold compactionMu), so
		// after this loop we mutate levels alone.
		bg := db.bg
		for (db.imm != nil || bg.jobs > 0) && bg.err == nil && !bg.closing && !db.closed {
			db.cond.Wait()
		}
		if bg.err != nil {
			return bg.err
		}
		if bg.closing || db.closed {
			return ErrClosed
		}
	}
	if !db.mem.empty() {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	if len(db.v.levels[0]) > 0 {
		if job := db.pickL0Locked(); job != nil {
			if err := db.runCompactionInlineLocked(job); err != nil {
				return err
			}
		}
	}
	for l := 1; l < db.opts.MaxLevels-1; l++ {
		for {
			overlapping := db.v.overlappingFiles(l, lo, hi)
			if len(overlapping) == 0 {
				break
			}
			// Skip when nothing deeper exists: the range already rests at
			// its final level.
			deeper := false
			for dl := l + 1; dl < db.opts.MaxLevels; dl++ {
				if len(db.v.levels[dl]) > 0 {
					deeper = true
				}
			}
			if !deeper && l == db.deepestNonEmptyLocked() {
				break
			}
			pick := overlapping[0]
			next := db.v.overlappingFiles(l+1, ikey.UserKey(pick.Smallest), ikey.UserKey(pick.Largest))
			job := &compactionJob{level: l, inputs: []*FileMeta{pick}, next: next, base: db.v}
			if err := db.runCompactionInlineLocked(job); err != nil {
				return err
			}
		}
	}
	return db.maybeCompactLocked()
}

func (db *DB) deepestNonEmptyLocked() int {
	for l := db.opts.MaxLevels - 1; l >= 0; l-- {
		if len(db.v.levels[l]) > 0 {
			return l
		}
	}
	return 0
}
