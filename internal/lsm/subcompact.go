package lsm

// Key-range sub-compactions with a pipelined merge engine (DESIGN.md
// §5.9). A compaction's input span is partitioned into disjoint user-key
// ranges along existing data-index block boundaries; each partition runs a
// two-stage pipeline (read/decode + k-way merge feeding value resolution)
// on its own goroutines, and a single ordered writer drains the partitions
// in key order into rolling output tables. Because one goroutine still
// writes every entry in global key order, output tables, manifests and
// write counters are byte-identical at every Options.CompactionParallelism
// setting; only CompactionReads can differ (adjacent partitions re-read
// the boundary block they share).

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"leveldbpp/internal/ikey"
	"leveldbpp/internal/metrics"
	"leveldbpp/internal/sstable"
)

// subcompactionBatch is the number of resolved entries a partition worker
// hands to the ordered writer per channel send.
const subcompactionBatch = 64

// errSubcompactionCanceled is the internal signal a partition stage
// returns when the run's quit channel closed under it; it never escapes
// the engine (the first real failure recorded in compactionRun does).
var errSubcompactionCanceled = errors.New("lsm: sub-compaction canceled")

// keyRange is a half-open user-key range [lo, hi); a nil bound is
// unbounded on that side.
type keyRange struct{ lo, hi []byte }

func (r keyRange) String() string {
	lo, hi := "-inf", "+inf"
	if r.lo != nil {
		lo = fmt.Sprintf("%q", r.lo)
	}
	if r.hi != nil {
		hi = fmt.Sprintf("%q", r.hi)
	}
	return fmt.Sprintf("[%s,%s)", lo, hi)
}

// subcompactionError attributes a merge failure to the partition it
// happened in, so the event log can name the key range.
type subcompactionError struct {
	r   keyRange
	err error
}

func (e *subcompactionError) Error() string {
	return fmt.Sprintf("lsm: sub-compaction %s: %v", e.r, e.err)
}

func (e *subcompactionError) Unwrap() error { return e.err }

// compactionRun is the shared cancel/error state of one compaction's
// partition workers: the first failure closes quit (exactly here, nowhere
// else), every blocking stage selects on it, and the recorded error plus
// its partition range surface to the caller.
type compactionRun struct {
	quit chan struct{} // closed by fail on the first failure

	mu       sync.Mutex
	err      error    // guarded by mu; first failure
	errRange keyRange // guarded by mu; partition of the first failure
}

func newCompactionRun() *compactionRun {
	return &compactionRun{quit: make(chan struct{})}
}

// fail records the first failure and cancels the run. Later calls are
// no-ops, so quit has a single close site.
func (r *compactionRun) fail(kr keyRange, err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
		r.errRange = kr
		close(r.quit)
	}
	r.mu.Unlock()
}

// firstErr returns the recorded failure wrapped with its partition range,
// or nil.
func (r *compactionRun) firstErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		return nil
	}
	return &subcompactionError{r: r.errRange, err: r.err}
}

// compactionEntry is one resolved record on its way from a partition
// worker to the ordered writer. Both slices are owned by the entry.
type compactionEntry struct {
	ik    []byte
	value []byte
}

// keyGroup collects every version of one user key observed by the k-way
// merge, newest first (internal-key order). A fresh group is allocated
// per key so downstream stages may retain it.
type keyGroup struct {
	key    []byte // user key
	ikeys  [][]byte
	values [][]byte
	kinds  []ikey.Kind
}

// mergeGroups runs the k-way merge of the tables over the user-key range
// kr and invokes fn once per user key with that key's version group. An
// error from fn aborts the merge and is returned unwrapped.
func mergeGroups(all []*FileMeta, kr keyRange, fn func(g *keyGroup) error) error {
	var h mergeHeap
	for _, fm := range all {
		it := fm.tbl.NewIterator(true)
		var ok bool
		if kr.lo == nil {
			ok = it.Next()
		} else {
			ok = it.SeekGE(ikey.SeekKey(kr.lo))
		}
		if !ok {
			if err := it.Err(); err != nil {
				return err
			}
			continue
		}
		heap.Push(&h, &mergeSource{it: it})
	}

	var g *keyGroup
	flush := func() error {
		if g == nil {
			return nil
		}
		err := fn(g)
		g = nil
		return err
	}
	for h.Len() > 0 {
		src := h[0]
		ik, val := src.it.Key(), src.it.Value()
		uk := ikey.UserKey(ik)
		if kr.hi != nil && bytes.Compare(uk, kr.hi) >= 0 {
			// The heap top is the global minimum, so every remaining
			// entry of every source is past the partition.
			break
		}
		if g == nil || !bytes.Equal(g.key, uk) {
			if err := flush(); err != nil {
				return err
			}
			g = &keyGroup{key: append([]byte(nil), uk...)}
		}
		// Copy: iterator Key/Value alias block buffers reused on Next.
		g.ikeys = append(g.ikeys, append([]byte(nil), ik...))
		g.values = append(g.values, append([]byte(nil), val...))
		g.kinds = append(g.kinds, ikey.KindOf(ik))

		if src.it.Next() {
			heap.Fix(&h, 0)
		} else {
			if err := src.it.Err(); err != nil {
				return err
			}
			heap.Pop(&h)
		}
	}
	return flush()
}

// resolveGroup applies the compaction value-resolution policy to one
// user-key group and emits the surviving records in output order: the
// Merger hook (Lazy posting-list coalescing) when configured, otherwise
// newest-wins with LevelDB tombstone rules. bottom reports that no level
// deeper than the compaction's target can hold the key.
func resolveGroup(merger Merger, bottom bool, g *keyGroup, emit func(ik, value []byte) error) error {
	if merger != nil {
		// Collect live values down to (not past) the newest tombstone.
		var live [][]byte
		tombstoneAt := -1
		for i, k := range g.kinds {
			if k == ikey.KindDelete {
				tombstoneAt = i
				break
			}
			live = append(live, g.values[i])
		}
		if len(live) == 0 {
			// Newest record is a tombstone.
			if tombstoneAt >= 0 && !bottom {
				return emit(g.ikeys[0], nil)
			}
			return nil
		}
		merged, keep := merger.Merge(g.key, live, bottom && tombstoneAt < 0)
		if keep {
			if err := emit(g.ikeys[0], merged); err != nil {
				return err
			}
		}
		// A tombstone under the merged fragments must survive (unless
		// this is the base level) — it still shadows older fragments in
		// deeper levels.
		if tombstoneAt >= 0 && !bottom {
			return emit(g.ikeys[tombstoneAt], nil)
		}
		return nil
	}

	// Default: newest version wins.
	if g.kinds[0] == ikey.KindDelete {
		if bottom {
			return nil // tombstone has nothing left to shadow
		}
		return emit(g.ikeys[0], nil)
	}
	return emit(g.ikeys[0], g.values[0])
}

// compactionWriter rolls resolved entries into target-size output tables.
// Exactly one goroutine uses a writer; in the parallel engine that is the
// caller draining partitions in key order, which is what keeps output
// file boundaries independent of parallelism.
type compactionWriter struct {
	db      *DB
	tr      *metrics.Trace
	outputs []*FileMeta
	file    *os.File
	builder *sstable.Builder
	num     uint64
	writeNS int64 // accumulated wall time inside add/flush (compact_write)
}

func (db *DB) newCompactionWriter(tr *metrics.Trace) *compactionWriter {
	return &compactionWriter{db: db, tr: tr}
}

// add appends one resolved entry, opening an output table on demand and
// rolling it once it reaches the target size.
func (w *compactionWriter) add(ik, value []byte) error {
	t0 := w.tr.Now()
	defer w.since(t0)
	if w.builder == nil {
		w.num = w.db.allocFileNum()
		f, err := os.Create(tablePath(w.db.dir, w.num))
		if err != nil {
			return err
		}
		w.file = f
		w.builder = sstable.NewBuilder(f, w.db.opts.tableOptions(true))
	}
	var attrs []sstable.AttrValue
	if w.db.opts.Extract != nil && ikey.KindOf(ik) == ikey.KindSet {
		attrs = w.db.opts.Extract(ikey.UserKey(ik), value)
	}
	if err := w.builder.Add(ik, value, attrs); err != nil {
		return err
	}
	if w.builder.EstimatedSize() >= maxTableBytes {
		return w.roll()
	}
	return nil
}

// roll finishes the open output table, fsyncs it and opens its FileMeta.
func (w *compactionWriter) roll() error {
	if w.builder == nil {
		return nil
	}
	size, err := w.builder.Finish()
	if err != nil {
		return err
	}
	if err := w.file.Sync(); err != nil {
		return err
	}
	if err := w.file.Close(); err != nil {
		return err
	}
	fm, err := w.db.openTable(fileRecord{Num: w.num, Size: size})
	if err != nil {
		return err
	}
	w.outputs = append(w.outputs, fm)
	w.file, w.builder = nil, nil
	if w.db.testCompactRoll != nil {
		w.db.testCompactRoll()
	}
	return nil
}

// finish flushes the trailing output table and returns every table
// produced.
func (w *compactionWriter) finish() ([]*FileMeta, error) {
	t0 := w.tr.Now()
	defer w.since(t0)
	if err := w.roll(); err != nil {
		return nil, err
	}
	return w.outputs, nil
}

// abort closes the open output and removes every file produced so far —
// the failure path, where nothing references the outputs yet. (A crash
// leaves the same residue, cleaned by removeOrphanTables at next Open.)
func (w *compactionWriter) abort() {
	if w.file != nil {
		_ = w.file.Close()
		_ = os.Remove(tablePath(w.db.dir, w.num))
		w.file, w.builder = nil, nil
	}
	for _, fm := range w.outputs {
		_ = fm.f.Close()
		_ = os.Remove(tablePath(w.db.dir, fm.Num))
	}
	w.outputs = nil
}

func (w *compactionWriter) since(t0 time.Time) {
	if !t0.IsZero() {
		w.writeNS += int64(time.Since(t0))
	}
}

// partitionBoundaries derives up to n-1 interior user-key split points
// from the data-index block boundaries of the input tables — metadata
// already in memory, so partitioning costs no I/O. It returns nil (run
// serial) when the inputs have too few distinct block boundaries to give
// every partition at least a couple of blocks.
func partitionBoundaries(all []*FileMeta, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	var cands [][]byte
	for _, fm := range all {
		for i := 0; i < fm.tbl.NumBlocks(); i++ {
			first, _ := fm.tbl.BlockRange(i)
			cands = append(cands, append([]byte(nil), ikey.UserKey(first)...))
		}
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i], cands[j]) < 0 })
	dedup := cands[:0]
	for _, c := range cands {
		if len(dedup) == 0 || !bytes.Equal(dedup[len(dedup)-1], c) {
			dedup = append(dedup, c)
		}
	}
	// The first candidate is the span's smallest key; only the interior
	// ones can split it.
	if len(dedup) > 0 {
		dedup = dedup[1:]
	}
	if len(dedup) < 2*n-1 {
		return nil
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, dedup[i*len(dedup)/n])
	}
	return bounds
}

// subcompact merges and resolves one partition on the worker pool: a
// reader goroutine drives the k-way merge and groups versions per user
// key, while this goroutine resolves the groups (with the worker's
// private Merger fork) and streams owned entry batches to out. It closes
// out when the partition is exhausted or the run is canceled.
func (db *DB) subcompact(run *compactionRun, all []*FileMeta, kr keyRange,
	target int, base *version, merger Merger, out chan<- []compactionEntry) {
	defer close(out)
	db.workersBusy.Add(1)
	defer db.workersBusy.Add(-1)

	groups := make(chan *keyGroup, subcompactionBatch)
	go db.subcompactReader(run, all, kr, groups)

	batch := make([]compactionEntry, 0, subcompactionBatch)
	send := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case out <- batch:
			batch = make([]compactionEntry, 0, subcompactionBatch)
			return true
		case <-run.quit:
			return false
		}
	}
	for g := range groups {
		bottom := base.isBaseLevelForKey(target, g.key)
		err := resolveGroup(merger, bottom, g, func(ik, value []byte) error {
			// ik is owned by the group; value may alias Merger-internal
			// scratch reused by the next Merge call, so copy it before
			// the entry crosses the channel.
			if value != nil {
				value = append([]byte(nil), value...)
			}
			batch = append(batch, compactionEntry{ik: ik, value: value})
			if len(batch) >= subcompactionBatch && !send() {
				return errSubcompactionCanceled
			}
			return nil
		})
		if err != nil {
			if err != errSubcompactionCanceled {
				run.fail(kr, err)
			}
			return
		}
	}
	send()
}

// subcompactReader is the read/decode stage of one partition: it runs the
// k-way merge over the partition's range and hands each user-key group to
// the resolve stage, stopping as soon as the run is canceled.
func (db *DB) subcompactReader(run *compactionRun, all []*FileMeta, kr keyRange, groups chan<- *keyGroup) {
	defer close(groups)
	err := mergeGroups(all, kr, func(g *keyGroup) error {
		select {
		case groups <- g:
			return nil
		case <-run.quit:
			return errSubcompactionCanceled
		}
	})
	if err != nil && err != errSubcompactionCanceled {
		run.fail(kr, err)
	}
}

// runCompactionParallel partitions the job's span into len(bounds)+1
// disjoint key ranges, merges them concurrently, and writes the resolved
// stream in key order on the calling goroutine.
func (db *DB) runCompactionParallel(job *compactionJob, all []*FileMeta,
	bounds [][]byte, tr *metrics.Trace) ([]*FileMeta, error) {
	target := job.level + 1
	ranges := make([]keyRange, 0, len(bounds)+1)
	var lo []byte
	for _, b := range bounds {
		ranges = append(ranges, keyRange{lo: lo, hi: b})
		lo = b
	}
	ranges = append(ranges, keyRange{lo: lo})

	t0 := time.Now()
	run := newCompactionRun()
	outs := make([]chan []compactionEntry, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		outs[i] = make(chan []compactionEntry, 4)
		merger := db.opts.Merge
		if forker, ok := merger.(MergerForker); ok {
			merger = forker.ForkMerger()
		}
		wg.Add(1)
		go func(kr keyRange, out chan<- []compactionEntry, m Merger) {
			defer wg.Done()
			db.subcompact(run, all, kr, target, job.base, m, out)
		}(ranges[i], outs[i], merger)
	}

	// Ordered write stage: drain partitions in key order. On failure keep
	// draining (never strand a sender), then surface the first error.
	w := db.newCompactionWriter(tr)
	var werr error
	for _, out := range outs {
		for batch := range out {
			if werr != nil {
				continue
			}
			for _, e := range batch {
				if err := w.add(e.ik, e.value); err != nil {
					werr = err
					run.fail(keyRange{}, err)
					break
				}
			}
		}
	}
	wg.Wait()
	err := run.firstErr()
	if werr != nil {
		err = werr // writer failure: report it bare, no partition range
	}
	var outputs []*FileMeta
	if err == nil {
		outputs, err = w.finish()
	}
	if err != nil {
		w.abort()
		return nil, err
	}
	db.subcompactions.Add(int64(len(ranges)))
	tr.Add(metrics.PhaseCompactWrite, time.Duration(w.writeNS))
	tr.Add(metrics.PhaseCompactMerge, time.Since(t0)-time.Duration(w.writeNS))
	return outputs, nil
}

// CompactionStats reports the sub-compaction engine's counters: total
// partitions merged, partition workers busy right now, and cumulative
// time writers spent stalled on the L0 stop trigger.
type CompactionStats struct {
	Subcompactions int64
	WorkersBusy    int64
	StallSeconds   float64
}

// CompactionStats returns the engine's sub-compaction counters.
func (db *DB) CompactionStats() CompactionStats {
	return CompactionStats{
		Subcompactions: db.subcompactions.Load(),
		WorkersBusy:    db.workersBusy.Load(),
		StallSeconds:   float64(db.stallNS.Load()) / float64(time.Second),
	}
}
