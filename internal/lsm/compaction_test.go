package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"leveldbpp/internal/ikey"
)

// TestMergerPreservesTombstoneShadowing covers the subtle path where a
// compaction merges live fragments that sit ABOVE a tombstone, while an
// older fragment lives in a deeper level: the tombstone must survive the
// merge (unless bottom-most) so the deep fragment stays shadowed.
func TestMergerPreservesTombstoneShadowing(t *testing.T) {
	opts := smallOpts()
	opts.Merge = concatMerger{}
	opts.L0CompactionTrigger = 100 // manual control below
	db, _ := openTestDB(t, opts)

	// Deep fragment: "old" — flush it and force it to level 1+ by
	// compacting L0 manually via trigger manipulation... simpler: build
	// the layering through ordered flushes, then compact only the upper
	// two files.
	mustPut(t, db, "frag", "old")
	db.Flush()
	db.Delete([]byte("frag")) // tombstone above "old"
	db.Flush()
	mustPut(t, db, "frag", "new") // fresh fragment above the tombstone
	db.Flush()

	// Compact everything to one level: expected visible value is "new"
	// only — never "old|new" (tombstone must cut the merge) and never
	// "old" (shadowing must survive intermediate states).
	for i := 0; i < 6; i++ {
		v, ok := mustGet(t, db, "frag")
		if !ok || v != "new" {
			t.Fatalf("round %d: frag = %q %v, want new", i, v, ok)
		}
		mustPut(t, db, fmt.Sprintf("fill%02d", i), "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
		db.Flush()
	}
	if v, ok := mustGet(t, db, "frag"); !ok || v != "new" {
		t.Fatalf("final: frag = %q %v", v, ok)
	}
}

// TestMergerDropsDeletedKeyAtBottom verifies a key whose newest record is
// a tombstone disappears entirely once compaction reaches the base level.
func TestMergerDropsDeletedKeyAtBottom(t *testing.T) {
	opts := smallOpts()
	opts.Merge = concatMerger{}
	db, _ := openTestDB(t, opts)
	mustPut(t, db, "victim", "a")
	db.Flush()
	db.Delete([]byte("victim"))
	db.Flush()
	for i := 0; i < 8; i++ {
		mustPut(t, db, fmt.Sprintf("fill%03d", i), "yyyyyyyyyyyyyyyyyy")
		db.Flush()
	}
	if _, ok := mustGet(t, db, "victim"); ok {
		t.Fatal("deleted key visible")
	}
	// No physical trace may remain.
	found := false
	db.View(func(v *View) error {
		for l := 0; l <= v.MaxLevel(); l++ {
			files := v.Level(l)
			if l == 0 {
				files = v.L0()
			}
			for _, fm := range files {
				it := fm.Table().NewIterator(false)
				for it.Next() {
					if string(ikey.UserKey(it.Key())) == "victim" {
						found = true
					}
				}
			}
		}
		return nil
	})
	if found {
		t.Fatal("victim record still on disk after full compaction")
	}
}

// TestCompactionPointerRotates checks the round-robin file pick: repeated
// level-1 compactions must not repeatedly choose the same key range.
func TestCompactionPointerRotates(t *testing.T) {
	opts := smallOpts()
	opts.BaseLevelBytes = 8 << 10 // tiny L1 → frequent L1→L2 compactions
	db, _ := openTestDB(t, opts)
	for i := 0; i < 8000; i++ {
		mustPut(t, db, fmt.Sprintf("key%07d", (i*2654435761)%1000000), fmt.Sprintf("val%040d", i))
	}
	var l2 int
	db.View(func(v *View) error { l2 = len(v.Level(2)); return nil })
	if l2 == 0 {
		t.Fatal("no level-2 files: rotation never pushed data down")
	}
	// Level 2 should cover a broad key range, not one corner.
	var lo, hi string
	db.View(func(v *View) error {
		files := v.Level(2)
		lo = string(ikey.UserKey(files[0].Smallest))
		hi = string(ikey.UserKey(files[len(files)-1].Largest))
		return nil
	})
	if lo >= "key0500000" || hi <= "key0500000" {
		t.Fatalf("level-2 range [%s, %s] suspiciously narrow", lo, hi)
	}
}

// TestLevelSizesRespectBudgets: after a long ingest, no level (except the
// last) should exceed its budget by more than one table's worth.
func TestLevelSizesRespectBudgets(t *testing.T) {
	opts := smallOpts()
	db, _ := openTestDB(t, opts)
	for i := 0; i < 10000; i++ {
		mustPut(t, db, fmt.Sprintf("key%07d", i), fmt.Sprintf("val%032d", i))
	}
	db.View(func(v *View) error {
		for l := 1; l < v.MaxLevel(); l++ {
			var bytes int64
			for _, fm := range v.Level(l) {
				bytes += fm.Size
			}
			budget := db.maxBytesForLevel(l) + maxTableBytes
			if bytes > budget {
				t.Errorf("level %d holds %d bytes, budget %d", l, bytes, budget)
			}
		}
		return nil
	})
}

// TestUpdateHeavyChurnKeepsNewestVisible hammers a small key space so
// every key has many versions spread over all levels.
func TestUpdateHeavyChurnKeepsNewestVisible(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	last := map[string]string{}
	for i := 0; i < 12000; i++ {
		k := fmt.Sprintf("key%02d", i%50)
		v := fmt.Sprintf("val%08d", i)
		mustPut(t, db, k, v)
		last[k] = v
	}
	for k, v := range last {
		if got, ok := mustGet(t, db, k); !ok || got != v {
			t.Fatalf("%s = %q %v, want %q", k, got, ok, v)
		}
	}
}

func TestCompactRangePushesDataDown(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	db.View(func(v *View) error {
		if len(v.L0()) != 0 {
			t.Errorf("L0 not empty after CompactRange: %d files", len(v.L0()))
		}
		deepest := v.DeepestNonEmpty()
		// Everything above the deepest level within the range must be
		// clear (full-range compaction → single resting level, except the
		// level right above may briefly hold nothing anyway).
		for l := 1; l < deepest; l++ {
			if len(v.Level(l)) != 0 {
				t.Errorf("level %d still holds %d files", l, len(v.Level(l)))
			}
		}
		return nil
	})
	for i := 0; i < 2000; i++ {
		if v, ok := mustGet(t, db, fmt.Sprintf("key%05d", i)); !ok || v != fmt.Sprintf("val%032d", i) {
			t.Fatalf("key%05d lost by CompactRange", i)
		}
	}
}

func TestCompactRangePartial(t *testing.T) {
	db, _ := openTestDB(t, smallOpts())
	for i := 0; i < 3000; i++ {
		mustPut(t, db, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%032d", i))
	}
	// Compact just a narrow band; everything must stay readable.
	if err := db.CompactRange([]byte("key01000"), []byte("key01500")); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 999, 1000, 1250, 1500, 1501, 2999} {
		if _, ok := mustGet(t, db, fmt.Sprintf("key%05d", i)); !ok {
			t.Fatalf("key%05d lost", i)
		}
	}
}

func TestOrphanTablesRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		mustPut(t, db, fmt.Sprintf("key%04d", i), "value-value-value")
	}
	db.Flush()
	db.Close()

	// Simulate a crash that left an unreferenced compaction output.
	orphan := filepath.Join(dir, "999999.sst")
	if err := os.WriteFile(orphan, []byte("garbage from a dead compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan table not garbage-collected at open")
	}
	// Data intact.
	if _, ok := mustGet(t, db2, "key0042"); !ok {
		t.Fatal("data lost during orphan GC")
	}
}
