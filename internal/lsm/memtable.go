package lsm

import (
	"bytes"

	"leveldbpp/internal/btree"
	"leveldbpp/internal/ikey"
	"leveldbpp/internal/skiplist"
)

// memTable is the in-memory component C0: a skip list over internal keys
// plus, when secondary attributes are indexed, a B-tree from attribute
// value to postings (paper §3: "For lookup in the MemTable, we maintain an
// in-memory B-tree on the secondary attribute(s)").
type memTable struct {
	list   *skiplist.List
	sec    map[string]*btree.Tree // attr name → value → postings
	maxSeq uint64                 // highest sequence number added
}

func newMemTable(secondaryAttrs []string) *memTable {
	m := &memTable{list: skiplist.New(ikey.Compare)}
	if len(secondaryAttrs) > 0 {
		m.sec = make(map[string]*btree.Tree, len(secondaryAttrs))
		for _, a := range secondaryAttrs {
			m.sec[a] = btree.New()
		}
	}
	return m
}

// add inserts a record and maintains the secondary B-trees.
func (m *memTable) add(seq uint64, kind ikey.Kind, userKey, value []byte, extract AttrExtractor) {
	ik := ikey.Make(userKey, seq, kind)
	m.list.Insert(ik, value)
	if seq > m.maxSeq {
		m.maxSeq = seq
	}
	if m.sec != nil && kind == ikey.KindSet && extract != nil {
		for _, av := range extract(userKey, value) {
			if tree, ok := m.sec[av.Attr]; ok {
				tree.Add(av.Value, btree.Posting{Key: userKey, Seq: seq})
			}
		}
	}
}

// get returns the newest record for userKey: its value, sequence number
// and kind.
func (m *memTable) get(userKey []byte) (value []byte, seq uint64, kind ikey.Kind, ok bool) {
	it := m.list.NewIterator()
	it.SeekGE(ikey.SeekKey(userKey))
	if !it.Valid() {
		return nil, 0, 0, false
	}
	k := it.Key()
	if !bytes.Equal(ikey.UserKey(k), userKey) {
		return nil, 0, 0, false
	}
	return it.Value(), ikey.Seq(k), ikey.KindOf(k), true
}

// approximateBytes reports memory used by keys and values.
func (m *memTable) approximateBytes() int64 { return m.list.ApproximateMemoryUsage() }

// empty reports whether any record has been added.
func (m *memTable) empty() bool { return m.list.Len() == 0 }

// iter returns an iterator over the full internal-key order.
func (m *memTable) iter() *skiplist.Iterator { return m.list.NewIterator() }

// secTree returns the secondary B-tree for attr, or nil.
func (m *memTable) secTree(attr string) *btree.Tree {
	if m.sec == nil {
		return nil
	}
	return m.sec[attr]
}
