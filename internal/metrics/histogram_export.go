package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Prometheus text-format export (DESIGN.md §5.3). Every exported series
// uses the lsmpp_ prefix. Histograms follow the Prometheus histogram
// convention: cumulative _bucket{le="..."} series ending in le="+Inf",
// plus _sum and _count.

// ExpBuckets returns n exponential bucket upper bounds starting at start
// and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs to ~8s (doubling), in seconds — wide enough
// for a cache-hit GET and a compaction-stalled PUT alike.
var DefLatencyBuckets = ExpBuckets(1e-6, 2, 24)

// NewHistogramBuckets is NewHistogram with Prometheus bucket counting
// enabled over the given sorted upper bounds.
//
//lsm:locked — the histogram is unpublished until this returns.
func NewHistogramBuckets(capSamples int, bounds []float64) *Histogram {
	h := NewHistogram(capSamples)
	h.bounds = append([]float64(nil), bounds...)
	sort.Float64s(h.bounds)
	h.buckets = make([]int64, len(h.bounds))
	return h
}

// Buckets returns the bucket upper bounds and the cumulative count of
// observations at or below each bound. Both slices are copies; nil when
// the histogram was built without buckets.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.bounds == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.buckets))
	var running int64
	for i, c := range h.buckets {
		running += c
		cumulative[i] = running
	}
	return bounds, cumulative
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.sum }

// observeBucketLocked increments the bucket for v. Caller holds h.mu.
func (h *Histogram) observeBucketLocked(v float64) {
	if h.bounds == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i]++
	}
	// v above every bound is counted only by _count (the +Inf bucket).
}

// promEscape escapes a label value per the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Labels renders a label set as {k="v",...}, keys sorted; empty for none.
func Labels(kv map[string]string) string {
	if len(kv) == 0 {
		return ""
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `%s="%s"`, k, promEscape(kv[k]))
	}
	sb.WriteString("}")
	return sb.String()
}

// WriteMetricHeader emits the # HELP and # TYPE lines for name.
func WriteMetricHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample emits one sample line. labels is pre-rendered (see Labels).
func WriteSample(w io.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %v\n", name, labels, v)
}

// WritePrometheus renders the histogram as a Prometheus histogram named
// name with the given extra labels. The caller emits the HELP/TYPE header
// once per name (several label sets may share it).
func (h *Histogram) WritePrometheus(w io.Writer, name string, labels map[string]string) {
	bounds, cum := h.Buckets()
	base := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		base[k] = v
	}
	for i, b := range bounds {
		base["le"] = fmt.Sprintf("%g", b)
		WriteSample(w, name+"_bucket", Labels(base), float64(cum[i]))
	}
	base["le"] = "+Inf"
	WriteSample(w, name+"_bucket", Labels(base), float64(h.Count()))
	delete(base, "le")
	WriteSample(w, name+"_sum", Labels(base), h.Sum())
	WriteSample(w, name+"_count", Labels(base), float64(h.Count()))
}

// OpStats records one latency histogram per operation kind, in seconds
// with DefLatencyBuckets — the per-operation histograms served at
// /metrics as lsmpp_op_latency_seconds{op="..."}.
type OpStats struct {
	hist [NumOps]*Histogram
}

// NewOpStats returns a ready OpStats.
func NewOpStats() *OpStats {
	s := &OpStats{}
	for i := range s.hist {
		s.hist[i] = NewHistogramBuckets(0, DefLatencyBuckets)
	}
	return s
}

// Observe records one operation latency.
func (s *OpStats) Observe(op Op, d time.Duration) {
	if s == nil {
		return
	}
	s.hist[op].Observe(d.Seconds())
}

// Hist returns the histogram for op.
func (s *OpStats) Hist(op Op) *Histogram {
	if s == nil {
		return nil
	}
	return s.hist[op]
}
