package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Per-operation tracing (DESIGN.md §5.3). A Tracer samples operations at a
// configurable rate and, for each sampled operation, records how its wall
// time divides across named phases — MemTable probe, frozen-MemTable probe,
// per-level SSTable probes, block loads vs. cache hits, posting-list
// merging, candidate validation, and the write-path stages. Completed
// traces land in a bounded ring (the "recent slow ops" buffer served at
// /trace/slow) and in cumulative per-op/per-phase aggregates that lsmbench
// renders as a phase-time breakdown table.
//
// The design is allocation-conscious: Trace objects are pooled, phase
// timings live in fixed-size arrays, and every method is safe on a nil
// *Trace or nil *Tracer so unsampled operations cost one pointer check per
// instrumentation point (Now on a nil trace does not even call time.Now).

// Op identifies the traced operation kind (the paper's Table 1 set plus
// the primary-key scan extension).
type Op uint8

// The traced operations.
const (
	OpGet Op = iota
	OpPut
	OpDelete
	OpLookup
	OpRangeLookup
	OpScan
	NumOps
)

// String returns the operation's wire name (used in JSON traces and as the
// op label of /metrics histograms).
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpLookup:
		return "lookup"
	case OpRangeLookup:
		return "rangelookup"
	case OpScan:
		return "scan"
	default:
		return "unknown"
	}
}

// Phase identifies one stage of an operation. Top-level phases are
// disjoint in time — their sum is the attributed fraction of an
// operation's wall clock. Sub-phases (block load, cache hit) nest inside
// top-level phases and are reported for I/O attribution but excluded from
// the coverage sum so phases never double count.
type Phase uint8

// The phase taxonomy (DESIGN.md §5.3).
const (
	// Write-path top-level phases.
	PhaseThrottle    Phase = iota // L0 slowdown/stop wait before a write is accepted
	PhaseCommitWait               // follower wait in the group-commit queue
	PhaseWAL                      // WAL append (+ fsync; see the wal_sync sub-phase)
	PhaseMergeProbe               // write-merge (Lazy coalescing) read of the prior fragment
	PhaseMemInsert                // MemTable insert
	PhaseRotate                   // MemTable freeze handoff or inline flush+compaction
	PhaseIndexUpdate              // secondary index maintenance (Eager RMW, Lazy/Composite puts)

	// Read-path top-level phases.
	PhaseMemProbe     // live MemTable probe or scan
	PhaseImmProbe     // frozen MemTable probe or scan
	PhaseL0Probe      // level-0 SSTable probes/scans
	PhaseLevelProbe   // deeper-level SSTable probes/scans
	PhaseIndexProbe   // stand-alone index table reads (Eager GET, Lazy fragments, Composite scan)
	PhasePostingMerge // posting-list decode and merge
	PhaseValidate     // candidate validation against the primary table

	// Sub-phases (nested inside the above; not counted toward coverage).
	PhaseBlockLoad      // data block fetched from disk
	PhaseCacheHit       // data block served by the block cache
	PhaseWALSync        // fsync portion of PhaseWAL (buffer flush + fdatasync)
	PhasePostingsDecode // posting-list codec time inside index_probe/posting_merge/index_update

	NumPhases
)

// String returns the phase's wire name.
func (p Phase) String() string {
	switch p {
	case PhaseThrottle:
		return "throttle"
	case PhaseCommitWait:
		return "commit_wait"
	case PhaseWAL:
		return "wal"
	case PhaseMergeProbe:
		return "merge_probe"
	case PhaseMemInsert:
		return "mem_insert"
	case PhaseRotate:
		return "rotate"
	case PhaseIndexUpdate:
		return "index_update"
	case PhaseMemProbe:
		return "mem_probe"
	case PhaseImmProbe:
		return "imm_probe"
	case PhaseL0Probe:
		return "l0_probe"
	case PhaseLevelProbe:
		return "level_probe"
	case PhaseIndexProbe:
		return "index_probe"
	case PhasePostingMerge:
		return "posting_merge"
	case PhaseValidate:
		return "validate"
	case PhaseBlockLoad:
		return "block_load"
	case PhaseCacheHit:
		return "cache_hit"
	case PhaseWALSync:
		return "wal_sync"
	case PhasePostingsDecode:
		return "postings_decode"
	default:
		return "unknown"
	}
}

// TopLevel reports whether the phase counts toward wall-clock coverage.
func (p Phase) TopLevel() bool { return p < PhaseBlockLoad }

// Trace accumulates the phase timings of one sampled operation. A nil
// *Trace is a valid no-op receiver — call sites never branch beyond the
// nil checks inside these methods. A Trace must not be shared across
// goroutines; parallel fan-out paths time the whole fan-out from the
// coordinating goroutine instead.
type Trace struct {
	op     Op
	detail string
	start  time.Time
	ns     [NumPhases]int64
	counts [NumPhases]uint32
	tracer *Tracer
}

// Now returns the current time for a subsequent Since, or the zero time
// when the trace is nil (avoiding the clock read entirely).
func (tr *Trace) Now() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since attributes the time elapsed from t0 to phase p. No-op on a nil
// trace or a zero t0 (the pair produced by a nil Now).
func (tr *Trace) Since(p Phase, t0 time.Time) {
	if tr == nil || t0.IsZero() {
		return
	}
	tr.ns[p] += int64(time.Since(t0))
	tr.counts[p]++
}

// Add attributes d to phase p directly.
func (tr *Trace) Add(p Phase, d time.Duration) {
	if tr == nil {
		return
	}
	tr.ns[p] += int64(d)
	tr.counts[p]++
}

// SetDetail annotates the trace (e.g. the looked-up attribute).
func (tr *Trace) SetDetail(s string) {
	if tr == nil {
		return
	}
	tr.detail = s
}

// Finish completes the trace: its total and phase times fold into the
// tracer's aggregates, it is recorded in the slow-op ring if it crossed
// the threshold, and the object returns to the pool. The trace must not be
// used afterwards.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.tracer.finish(tr)
}

// PhaseTime is one phase entry of a completed TraceRecord.
type PhaseTime struct {
	Phase string  `json:"phase"`
	US    float64 `json:"us"`
	Count uint32  `json:"count"`
}

// TraceRecord is the JSON form of a completed trace served at /trace/slow.
type TraceRecord struct {
	Op      string    `json:"op"`
	Detail  string    `json:"detail,omitempty"`
	Start   time.Time `json:"start"`
	TotalUS float64   `json:"total_us"`
	// AttributedUS sums the top-level phases; Coverage is its share of
	// TotalUS (the quantity the trace tests assert ≥ 0.95).
	AttributedUS float64     `json:"attributed_us"`
	Coverage     float64     `json:"coverage"`
	Phases       []PhaseTime `json:"phases,omitempty"`
}

// Tracer samples operations and collects their traces. Safe for
// concurrent use; a nil *Tracer never samples.
type Tracer struct {
	rateBits atomic.Uint64 // math.Float64bits of the configured rate
	period   atomic.Uint64 // sample every period-th op; 0 = disabled
	ctr      atomic.Uint64
	slowNS   atomic.Int64 // ring admission threshold; 0 = record all sampled

	pool sync.Pool

	mu   sync.Mutex
	ring []TraceRecord // guarded by mu
	pos  int           // guarded by mu
	n    int           // guarded by mu

	aggNS    [NumOps][NumPhases]int64 // guarded by mu
	aggCount [NumOps]int64            // guarded by mu
	aggTotal [NumOps]int64            // guarded by mu
}

// DefaultTraceRing is the slow-op ring capacity when 0 is requested.
const DefaultTraceRing = 128

// NewTracer returns a tracer sampling at rate (0 disables tracing, 1
// traces every operation, 0.01 every hundredth) keeping the ringCap most
// recent slow traces (0 = DefaultTraceRing).
func NewTracer(rate float64, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultTraceRing
	}
	t := &Tracer{ring: make([]TraceRecord, ringCap)}
	t.pool.New = func() interface{} { return new(Trace) }
	t.SetRate(rate)
	return t
}

// SetRate changes the sampling rate. Rates above 1 clamp to 1; rates at or
// below 0 disable sampling.
func (t *Tracer) SetRate(rate float64) {
	if rate > 1 {
		rate = 1
	}
	if rate <= 0 || math.IsNaN(rate) {
		t.rateBits.Store(math.Float64bits(0))
		t.period.Store(0)
		return
	}
	t.rateBits.Store(math.Float64bits(rate))
	t.period.Store(uint64(math.Round(1 / rate)))
}

// Rate returns the configured sampling rate.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.rateBits.Load())
}

// SetSlowThreshold restricts the slow-op ring to traces at least d long
// (0 admits every sampled trace).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNS.Store(int64(d)) }

// Start begins a trace for op, or returns nil when the operation is not
// sampled (including on a nil tracer). The caller must Finish it.
func (t *Tracer) Start(op Op) *Trace {
	if t == nil {
		return nil
	}
	period := t.period.Load()
	if period == 0 {
		return nil
	}
	if period > 1 && t.ctr.Add(1)%period != 0 {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	*tr = Trace{op: op, start: time.Now(), tracer: t}
	return tr
}

func (t *Tracer) finish(tr *Trace) {
	total := int64(time.Since(tr.start))
	rec := TraceRecord{
		Op:      tr.op.String(),
		Detail:  tr.detail,
		Start:   tr.start,
		TotalUS: float64(total) / 1e3,
	}
	var attributed int64
	for p := Phase(0); p < NumPhases; p++ {
		if tr.ns[p] == 0 && tr.counts[p] == 0 {
			continue
		}
		if p.TopLevel() {
			attributed += tr.ns[p]
		}
		rec.Phases = append(rec.Phases, PhaseTime{
			Phase: p.String(),
			US:    float64(tr.ns[p]) / 1e3,
			Count: tr.counts[p],
		})
	}
	rec.AttributedUS = float64(attributed) / 1e3
	if total > 0 {
		rec.Coverage = float64(attributed) / float64(total)
	}

	slow := total >= t.slowNS.Load()
	t.mu.Lock()
	t.aggCount[tr.op]++
	t.aggTotal[tr.op] += total
	for p := Phase(0); p < NumPhases; p++ {
		t.aggNS[tr.op][p] += tr.ns[p]
	}
	if slow {
		t.ring[t.pos] = rec
		t.pos = (t.pos + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()

	*tr = Trace{}
	t.pool.Put(tr)
}

// Slow returns the recorded slow traces, most recent last.
func (t *Tracer) Slow() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.n)
	start := t.pos - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// OpBreakdown aggregates every finished trace of one operation kind: the
// cumulative per-phase time lsmbench prints as the phase breakdown table.
type OpBreakdown struct {
	Op      string      `json:"op"`
	Count   int64       `json:"count"`
	TotalUS float64     `json:"total_us"`
	Phases  []PhaseTime `json:"phases,omitempty"`
}

// Breakdown returns cumulative per-op phase totals for every operation
// that completed at least one trace.
func (t *Tracer) Breakdown() []OpBreakdown {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []OpBreakdown
	for op := Op(0); op < NumOps; op++ {
		if t.aggCount[op] == 0 {
			continue
		}
		b := OpBreakdown{
			Op:      op.String(),
			Count:   t.aggCount[op],
			TotalUS: float64(t.aggTotal[op]) / 1e3,
		}
		for p := Phase(0); p < NumPhases; p++ {
			if t.aggNS[op][p] == 0 {
				continue
			}
			b.Phases = append(b.Phases, PhaseTime{Phase: p.String(), US: float64(t.aggNS[op][p]) / 1e3})
		}
		out = append(out, b)
	}
	return out
}

// ResetBreakdown zeroes the cumulative aggregates (lsmbench calls it
// between experiments so each table covers one experiment only). The
// slow-op ring is left intact.
func (t *Tracer) ResetBreakdown() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aggNS = [NumOps][NumPhases]int64{}
	t.aggCount = [NumOps]int64{}
	t.aggTotal = [NumOps]int64{}
}
