package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Per-operation tracing (DESIGN.md §5.3). A Tracer samples operations at a
// configurable rate and, for each sampled operation, records how its wall
// time divides across named phases — MemTable probe, frozen-MemTable probe,
// per-level SSTable probes, block loads vs. cache hits, posting-list
// merging, candidate validation, and the write-path stages. Completed
// traces land in a bounded ring (the "recent slow ops" buffer served at
// /trace/slow) and in cumulative per-op/per-phase aggregates that lsmbench
// renders as a phase-time breakdown table.
//
// The design is allocation-conscious: Trace objects are pooled, phase
// timings live in fixed-size arrays, and every method is safe on a nil
// *Trace or nil *Tracer so unsampled operations cost one pointer check per
// instrumentation point (Now on a nil trace does not even call time.Now).

// Op identifies the traced operation kind (the paper's Table 1 set plus
// the primary-key scan extension).
type Op uint8

// The traced operations.
const (
	OpGet Op = iota
	OpPut
	OpDelete
	OpLookup
	OpRangeLookup
	OpScan
	OpCompact
	NumOps
)

// String returns the operation's wire name (used in JSON traces and as the
// op label of /metrics histograms).
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpLookup:
		return "lookup"
	case OpRangeLookup:
		return "rangelookup"
	case OpScan:
		return "scan"
	case OpCompact:
		return "compact"
	default:
		return "unknown"
	}
}

// Phase identifies one stage of an operation. Top-level phases are
// disjoint in time — their sum is the attributed fraction of an
// operation's wall clock. Sub-phases (block load, cache hit) nest inside
// top-level phases and are reported for I/O attribution but excluded from
// the coverage sum so phases never double count.
type Phase uint8

// The phase taxonomy (DESIGN.md §5.3).
const (
	// Write-path top-level phases.
	PhaseThrottle    Phase = iota // L0 slowdown/stop wait before a write is accepted
	PhaseCommitWait               // follower wait in the group-commit queue
	PhaseWAL                      // WAL append (+ fsync; see the wal_sync sub-phase)
	PhaseMergeProbe               // write-merge (Lazy coalescing) read of the prior fragment
	PhaseMemInsert                // MemTable insert
	PhaseRotate                   // MemTable freeze handoff or inline flush+compaction
	PhaseIndexUpdate              // secondary index maintenance (Eager RMW, Lazy/Composite puts)

	// Read-path top-level phases.
	PhaseMemProbe     // live MemTable probe or scan
	PhaseImmProbe     // frozen MemTable probe or scan
	PhaseL0Probe      // level-0 SSTable probes/scans
	PhaseLevelProbe   // deeper-level SSTable probes/scans
	PhaseIndexProbe   // stand-alone index table reads (Eager GET, Lazy fragments, Composite scan)
	PhasePostingMerge // posting-list decode and merge
	PhaseValidate     // candidate validation against the primary table

	// Compaction top-level phases (the OpCompact trace, DESIGN.md §5.9):
	// the sub-compaction pipeline's stage split, summed across workers.
	PhaseCompactMerge // read/decode + k-way merge + group resolution (incl. posting merges)
	PhaseCompactWrite // output encode (blocks, filters, compression) + file write + fsync

	// Sub-phases (nested inside the above; not counted toward coverage).
	PhaseBlockLoad      // data block fetched from disk
	PhaseCacheHit       // data block served by the block cache
	PhaseWALSync        // fsync portion of PhaseWAL (buffer flush + fdatasync)
	PhasePostingsDecode // posting-list codec time inside index_probe/posting_merge/index_update

	NumPhases
)

// String returns the phase's wire name.
func (p Phase) String() string {
	switch p {
	case PhaseThrottle:
		return "throttle"
	case PhaseCommitWait:
		return "commit_wait"
	case PhaseWAL:
		return "wal"
	case PhaseMergeProbe:
		return "merge_probe"
	case PhaseMemInsert:
		return "mem_insert"
	case PhaseRotate:
		return "rotate"
	case PhaseIndexUpdate:
		return "index_update"
	case PhaseMemProbe:
		return "mem_probe"
	case PhaseImmProbe:
		return "imm_probe"
	case PhaseL0Probe:
		return "l0_probe"
	case PhaseLevelProbe:
		return "level_probe"
	case PhaseIndexProbe:
		return "index_probe"
	case PhasePostingMerge:
		return "posting_merge"
	case PhaseValidate:
		return "validate"
	case PhaseCompactMerge:
		return "compact_merge"
	case PhaseCompactWrite:
		return "compact_write"
	case PhaseBlockLoad:
		return "block_load"
	case PhaseCacheHit:
		return "cache_hit"
	case PhaseWALSync:
		return "wal_sync"
	case PhasePostingsDecode:
		return "postings_decode"
	default:
		return "unknown"
	}
}

// TopLevel reports whether the phase counts toward wall-clock coverage.
func (p Phase) TopLevel() bool { return p < PhaseBlockLoad }

// Counter identifies one exact-count I/O statistic accumulated on a Trace.
// Unlike the process-wide IOStats counters these are per-operation: an
// EXPLAIN report (DESIGN.md §5.7) is built from one trace's counters, and
// the per-kind golden tests assert they equal the IOStats deltas for the
// same operation. Counters are incremented at the same code sites as their
// IOStats twins, so the equality holds by construction.
type Counter uint8

// The counter taxonomy.
const (
	CtrBlockReads          Counter = iota // data blocks fetched from disk
	CtrCacheHits                          // data blocks served by the block cache
	CtrBloomProbes                        // bloom filters consulted (primary or secondary)
	CtrBloomNegatives                     // bloom filters that excluded a block
	CtrBloomFalsePositives                // blocks read on a bloom pass that held no match
	CtrZoneMapPrunes                      // blocks excluded by zone maps (incl. whole-file zones)
	CtrCandidateBlocks                    // blocks that survived zone+bloom filtering
	CtrPointGets                          // SSTable point reads issued
	CtrEntriesDecoded                     // block entries decoded during point reads
	CtrPostingFragments                   // posting-list fragments fetched/merged
	CtrPostingEntries                     // posting-list entries decoded
	CtrValidations                        // GetLite validity probes / primary-table validations
	NumCounters
)

// String returns the counter's wire name.
func (c Counter) String() string {
	switch c {
	case CtrBlockReads:
		return "block_reads"
	case CtrCacheHits:
		return "cache_hits"
	case CtrBloomProbes:
		return "bloom_probes"
	case CtrBloomNegatives:
		return "bloom_negatives"
	case CtrBloomFalsePositives:
		return "bloom_false_positives"
	case CtrZoneMapPrunes:
		return "zone_map_prunes"
	case CtrCandidateBlocks:
		return "candidate_blocks"
	case CtrPointGets:
		return "point_gets"
	case CtrEntriesDecoded:
		return "entries_decoded"
	case CtrPostingFragments:
		return "posting_fragments"
	case CtrPostingEntries:
		return "posting_entries"
	case CtrValidations:
		return "validations"
	default:
		return "unknown"
	}
}

// MaxTraceLevels bounds the per-level block-access attribution array;
// deeper levels clamp into the last bucket (MaxLevels defaults to 7, so in
// practice nothing clamps).
const MaxTraceLevels = 8

// Trace accumulates the phase timings of one sampled operation. A nil
// *Trace is a valid no-op receiver — call sites never branch beyond the
// nil checks inside these methods. A Trace must not be shared across
// goroutines; parallel fan-out paths time the whole fan-out from the
// coordinating goroutine instead.
type Trace struct {
	op     Op
	detail string
	start  time.Time
	ns     [NumPhases]int64
	counts [NumPhases]uint32
	ctrs   [NumCounters]int64
	levels [MaxTraceLevels]int64 // block accesses attributed per LSM level
	ioOnly int                   // >0 suppresses phase attribution (counters still record)
	tracer *Tracer
}

// StartDetached returns a trace bound to no tracer: it always records
// (regardless of any sampling rate) and Finish is a no-op, so the caller
// owns its lifetime. EXPLAIN uses detached traces to guarantee a report
// even when operation sampling is disabled.
func StartDetached(op Op) *Trace {
	return &Trace{op: op, start: time.Now()}
}

// Now returns the current time for a subsequent Since, or the zero time
// when the trace is nil (avoiding the clock read entirely).
func (tr *Trace) Now() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since attributes the time elapsed from t0 to phase p. No-op on a nil
// trace or a zero t0 (the pair produced by a nil Now).
func (tr *Trace) Since(p Phase, t0 time.Time) {
	if tr == nil || t0.IsZero() || tr.ioOnly > 0 {
		return
	}
	tr.ns[p] += int64(time.Since(t0))
	tr.counts[p]++
}

// Add attributes d to phase p directly.
func (tr *Trace) Add(p Phase, d time.Duration) {
	if tr == nil || tr.ioOnly > 0 {
		return
	}
	tr.ns[p] += int64(d)
	tr.counts[p]++
}

// IOOnlyBegin suppresses phase attribution until the matching IOOnlyEnd;
// Count keeps recording. Used when a traced operation nests another traced
// call path (the Eager index GET, validation's primary GET) whose internal
// top-level phases would otherwise double-count inside the outer op's
// phase window and break coverage accounting.
//
//lsm:hotpath
func (tr *Trace) IOOnlyBegin() {
	if tr == nil {
		return
	}
	tr.ioOnly++
}

// IOOnlyEnd reverses one IOOnlyBegin.
//
//lsm:hotpath
func (tr *Trace) IOOnlyEnd() {
	if tr == nil {
		return
	}
	tr.ioOnly--
}

// Count adds n to counter c. Nil-safe and allocation-free: the disabled
// path costs one pointer check.
//
//lsm:hotpath
func (tr *Trace) Count(c Counter, n int64) {
	if tr == nil {
		return
	}
	tr.ctrs[c] += n
}

// CounterValue returns the current value of counter c (0 on nil).
func (tr *Trace) CounterValue(c Counter) int64 {
	if tr == nil {
		return 0
	}
	return tr.ctrs[c]
}

// BlockMark snapshots the block-access total (reads + cache hits) so a
// caller that knows which level it is probing can attribute the delta via
// CountLevelSince.
//
//lsm:hotpath
func (tr *Trace) BlockMark() int64 {
	if tr == nil {
		return 0
	}
	return tr.ctrs[CtrBlockReads] + tr.ctrs[CtrCacheHits]
}

// CountLevelSince attributes the block accesses since mark (a BlockMark
// result) to level. Levels beyond the attribution array clamp into the
// last bucket.
//
//lsm:hotpath
func (tr *Trace) CountLevelSince(level int, mark int64) {
	if tr == nil {
		return
	}
	d := tr.ctrs[CtrBlockReads] + tr.ctrs[CtrCacheHits] - mark
	if d == 0 {
		return
	}
	if level < 0 {
		level = 0
	}
	if level >= MaxTraceLevels {
		level = MaxTraceLevels - 1
	}
	tr.levels[level] += d
}

// SetDetail annotates the trace (e.g. the looked-up attribute).
func (tr *Trace) SetDetail(s string) {
	if tr == nil {
		return
	}
	tr.detail = s
}

// Finish completes the trace: its total and phase times fold into the
// tracer's aggregates, it is recorded in the slow-op ring if it crossed
// the threshold, and the object returns to the pool. The trace must not be
// used afterwards.
func (tr *Trace) Finish() {
	if tr == nil || tr.tracer == nil {
		return
	}
	tr.tracer.finish(tr)
}

// Counters is the JSON form of a trace's exact I/O attribution.
type Counters struct {
	BlockReads          int64   `json:"block_reads"`
	CacheHits           int64   `json:"cache_hits"`
	BloomProbes         int64   `json:"bloom_probes"`
	BloomNegatives      int64   `json:"bloom_negatives"`
	BloomFalsePositives int64   `json:"bloom_false_positives"`
	ZoneMapPrunes       int64   `json:"zone_map_prunes"`
	CandidateBlocks     int64   `json:"candidate_blocks"`
	PointGets           int64   `json:"point_gets"`
	EntriesDecoded      int64   `json:"entries_decoded"`
	PostingFragments    int64   `json:"posting_fragments"`
	PostingEntries      int64   `json:"posting_entries"`
	Validations         int64   `json:"validations"`
	BlocksPerLevel      []int64 `json:"blocks_per_level,omitempty"`
}

// BlockAccesses is the observed logical I/O: blocks fetched from disk plus
// blocks served by the block cache. It is the quantity compared against
// the cost model's predicted block count (the model counts logical block
// accesses; whether the OS or the block cache absorbs them is orthogonal).
func (c Counters) BlockAccesses() int64 { return c.BlockReads + c.CacheHits }

// Counters returns a snapshot of the trace's I/O counters. Zero value on a
// nil trace.
func (tr *Trace) Counters() Counters {
	if tr == nil {
		return Counters{}
	}
	c := Counters{
		BlockReads:          tr.ctrs[CtrBlockReads],
		CacheHits:           tr.ctrs[CtrCacheHits],
		BloomProbes:         tr.ctrs[CtrBloomProbes],
		BloomNegatives:      tr.ctrs[CtrBloomNegatives],
		BloomFalsePositives: tr.ctrs[CtrBloomFalsePositives],
		ZoneMapPrunes:       tr.ctrs[CtrZoneMapPrunes],
		CandidateBlocks:     tr.ctrs[CtrCandidateBlocks],
		PointGets:           tr.ctrs[CtrPointGets],
		EntriesDecoded:      tr.ctrs[CtrEntriesDecoded],
		PostingFragments:    tr.ctrs[CtrPostingFragments],
		PostingEntries:      tr.ctrs[CtrPostingEntries],
		Validations:         tr.ctrs[CtrValidations],
	}
	max := -1
	for l, n := range tr.levels {
		if n != 0 {
			max = l
		}
	}
	if max >= 0 {
		c.BlocksPerLevel = append([]int64(nil), tr.levels[:max+1]...)
	}
	return c
}

// Record builds the TraceRecord for the trace as it stands, without
// finishing it. EXPLAIN uses this on detached traces to extract phase
// timings and I/O counters into a report.
func (tr *Trace) Record() TraceRecord {
	if tr == nil {
		return TraceRecord{}
	}
	return tr.record(int64(time.Since(tr.start)))
}

func (tr *Trace) record(total int64) TraceRecord {
	rec := TraceRecord{
		Op:      tr.op.String(),
		Detail:  tr.detail,
		Start:   tr.start,
		TotalUS: float64(total) / 1e3,
	}
	var attributed int64
	for p := Phase(0); p < NumPhases; p++ {
		if tr.ns[p] == 0 && tr.counts[p] == 0 {
			continue
		}
		if p.TopLevel() {
			attributed += tr.ns[p]
		}
		rec.Phases = append(rec.Phases, PhaseTime{
			Phase: p.String(),
			US:    float64(tr.ns[p]) / 1e3,
			Count: tr.counts[p],
		})
	}
	rec.AttributedUS = float64(attributed) / 1e3
	if total > 0 {
		rec.Coverage = float64(attributed) / float64(total)
	}
	for _, n := range tr.ctrs {
		if n != 0 {
			io := tr.Counters()
			rec.IO = &io
			break
		}
	}
	return rec
}

// PhaseTime is one phase entry of a completed TraceRecord.
type PhaseTime struct {
	Phase string  `json:"phase"`
	US    float64 `json:"us"`
	Count uint32  `json:"count"`
}

// TraceRecord is the JSON form of a completed trace served at /trace/slow.
type TraceRecord struct {
	Op      string    `json:"op"`
	Detail  string    `json:"detail,omitempty"`
	Start   time.Time `json:"start"`
	TotalUS float64   `json:"total_us"`
	// AttributedUS sums the top-level phases; Coverage is its share of
	// TotalUS (the quantity the trace tests assert ≥ 0.95).
	AttributedUS float64     `json:"attributed_us"`
	Coverage     float64     `json:"coverage"`
	Phases       []PhaseTime `json:"phases,omitempty"`
	// IO carries the exact per-op I/O attribution when any counter fired
	// (DESIGN.md §5.7); nil for traces with no counter activity.
	IO *Counters `json:"io,omitempty"`
}

// Tracer samples operations and collects their traces. Safe for
// concurrent use; a nil *Tracer never samples.
type Tracer struct {
	rateBits atomic.Uint64 // math.Float64bits of the configured rate
	period   atomic.Uint64 // sample every period-th op; 0 = disabled
	ctr      atomic.Uint64
	slowNS   atomic.Int64 // ring admission threshold; 0 = record all sampled

	pool sync.Pool

	mu   sync.Mutex
	ring []TraceRecord // guarded by mu
	pos  int           // guarded by mu
	n    int           // guarded by mu

	aggNS    [NumOps][NumPhases]int64 // guarded by mu
	aggCount [NumOps]int64            // guarded by mu
	aggTotal [NumOps]int64            // guarded by mu
}

// DefaultTraceRing is the slow-op ring capacity when 0 is requested.
const DefaultTraceRing = 128

// NewTracer returns a tracer sampling at rate (0 disables tracing, 1
// traces every operation, 0.01 every hundredth) keeping the ringCap most
// recent slow traces (0 = DefaultTraceRing).
func NewTracer(rate float64, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultTraceRing
	}
	t := &Tracer{ring: make([]TraceRecord, ringCap)}
	t.pool.New = func() interface{} { return new(Trace) }
	t.SetRate(rate)
	return t
}

// SetRate changes the sampling rate. Rates above 1 clamp to 1; rates at or
// below 0 disable sampling.
func (t *Tracer) SetRate(rate float64) {
	if rate > 1 {
		rate = 1
	}
	if rate <= 0 || math.IsNaN(rate) {
		t.rateBits.Store(math.Float64bits(0))
		t.period.Store(0)
		return
	}
	t.rateBits.Store(math.Float64bits(rate))
	t.period.Store(uint64(math.Round(1 / rate)))
}

// Rate returns the configured sampling rate.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.rateBits.Load())
}

// SetSlowThreshold restricts the slow-op ring to traces at least d long
// (0 admits every sampled trace).
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNS.Store(int64(d)) }

// Start begins a trace for op, or returns nil when the operation is not
// sampled (including on a nil tracer). The caller must Finish it.
func (t *Tracer) Start(op Op) *Trace {
	if t == nil {
		return nil
	}
	period := t.period.Load()
	if period == 0 {
		return nil
	}
	if period > 1 && t.ctr.Add(1)%period != 0 {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	*tr = Trace{op: op, start: time.Now(), tracer: t}
	return tr
}

func (t *Tracer) finish(tr *Trace) {
	total := int64(time.Since(tr.start))
	rec := tr.record(total)

	slow := total >= t.slowNS.Load()
	t.mu.Lock()
	t.aggCount[tr.op]++
	t.aggTotal[tr.op] += total
	for p := Phase(0); p < NumPhases; p++ {
		t.aggNS[tr.op][p] += tr.ns[p]
	}
	if slow {
		t.ring[t.pos] = rec
		t.pos = (t.pos + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
	t.mu.Unlock()

	*tr = Trace{}
	t.pool.Put(tr)
}

// Slow returns the recorded slow traces, most recent last.
func (t *Tracer) Slow() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.n)
	start := t.pos - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// OpBreakdown aggregates every finished trace of one operation kind: the
// cumulative per-phase time lsmbench prints as the phase breakdown table.
type OpBreakdown struct {
	Op      string      `json:"op"`
	Count   int64       `json:"count"`
	TotalUS float64     `json:"total_us"`
	Phases  []PhaseTime `json:"phases,omitempty"`
}

// Breakdown returns cumulative per-op phase totals for every operation
// that completed at least one trace.
func (t *Tracer) Breakdown() []OpBreakdown {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []OpBreakdown
	for op := Op(0); op < NumOps; op++ {
		if t.aggCount[op] == 0 {
			continue
		}
		b := OpBreakdown{
			Op:      op.String(),
			Count:   t.aggCount[op],
			TotalUS: float64(t.aggTotal[op]) / 1e3,
		}
		for p := Phase(0); p < NumPhases; p++ {
			if t.aggNS[op][p] == 0 {
				continue
			}
			b.Phases = append(b.Phases, PhaseTime{Phase: p.String(), US: float64(t.aggNS[op][p]) / 1e3})
		}
		out = append(out, b)
	}
	return out
}

// ResetBreakdown zeroes the cumulative aggregates (lsmbench calls it
// between experiments so each table covers one experiment only). The
// slow-op ring is left intact.
func (t *Tracer) ResetBreakdown() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aggNS = [NumOps][NumPhases]int64{}
	t.aggCount = [NumOps]int64{}
	t.aggTotal = [NumOps]int64{}
}
