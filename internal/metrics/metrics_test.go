package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestIOStatsSnapshotAndSub(t *testing.T) {
	var s IOStats
	s.BlockReads.Add(5)
	s.BlockWrites.Add(3)
	s.CompactionReads.Add(2)
	s.CompactionWrites.Add(1)
	a := s.Snapshot()
	if a.TotalIO() != 11 {
		t.Fatalf("TotalIO = %d", a.TotalIO())
	}
	if a.CompactionIO() != 3 {
		t.Fatalf("CompactionIO = %d", a.CompactionIO())
	}
	s.BlockReads.Add(10)
	d := s.Snapshot().Sub(a)
	if d.BlockReads != 10 || d.BlockWrites != 0 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Mean = %f", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %f/%f", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); math.Abs(got-50.5) > 1 {
		t.Fatalf("median = %f", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %f", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q1 = %f", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	b := h.BoxPlot()
	if b.Count != 0 {
		t.Fatal("empty boxplot count")
	}
}

func TestBoxPlotShape(t *testing.T) {
	h := NewHistogram(0)
	// 1..99 plus one extreme outlier.
	for i := 1; i < 100; i++ {
		h.Observe(float64(i))
	}
	h.Observe(10000)
	b := h.BoxPlot()
	if !(b.Q1 < b.Median && b.Median < b.Q3) {
		t.Fatalf("quartiles disordered: %+v", b)
	}
	if b.WhiskerHigh >= 10000 {
		t.Fatalf("whisker should exclude the outlier: %+v", b)
	}
	if b.WhiskerLow > b.Q1 || b.WhiskerHigh < b.Q3 {
		t.Fatalf("whiskers must bracket the box: %+v", b)
	}
}

func TestReservoirSamplingStaysBounded(t *testing.T) {
	h := NewHistogram(1000)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50000; i++ {
		h.Observe(rng.Float64() * 100)
	}
	if h.Count() != 50000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Median of Uniform(0,100) is 50; the reservoir estimate should land
	// near it.
	if m := h.Quantile(0.5); m < 45 || m > 55 {
		t.Fatalf("reservoir median = %f, want ~50", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("compaction-io")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last point")
	}
	s.Append(1, 10)
	s.Append(2, 20)
	p, ok := s.Last()
	if !ok || p.X != 2 || p.Y != 20 {
		t.Fatalf("Last = %+v %v", p, ok)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
}
