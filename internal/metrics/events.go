package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Structured event log (DESIGN.md §5.3). Engine lifecycle transitions —
// MemTable freezes, flushes, compactions, write-throttle engage/release,
// WAL rotations — are emitted as typed Events through a pluggable
// EventSink, so that a latency spike in the paper's box plots can be
// attributed to the background work that caused it. The default sink is a
// bounded in-memory ring (EventLog) served at /events; a JSONLSink can be
// attached for durable capture.

// EventType names one lifecycle transition.
type EventType string

// The event vocabulary.
const (
	EventOpen            EventType = "open"
	EventClose           EventType = "close"
	EventMemFreeze       EventType = "memtable_freeze"
	EventFlushStart      EventType = "flush_start"
	EventFlushDone       EventType = "flush_done"
	EventCompactionStart EventType = "compaction_start"
	EventCompactionDone  EventType = "compaction_done"
	EventCompactionError EventType = "compaction_error"
	EventSlowdownOn      EventType = "throttle_slowdown_engage"
	EventSlowdownOff     EventType = "throttle_slowdown_release"
	EventStopOn          EventType = "throttle_stop_engage"
	EventStopOff         EventType = "throttle_stop_release"
	EventWALRotate       EventType = "wal_rotate"
	// Model/advisor observability (DESIGN.md §5.7): emitted by the
	// workload profiler when the observed/predicted cost ratio leaves the
	// model's confidence band, and by the advisor monitor when the live
	// recommendation flips away from the configured index kind.
	EventModelDrift  EventType = "model_drift"
	EventAdvisorFlip EventType = "advisor_flip"
)

// Event is one structured lifecycle record. Seq and TS are assigned by
// the EventLog at emit time; Seq is strictly monotonic per log, so event
// ordering (freeze → flush_start → flush_done → compaction_start → …) is
// checkable even when wall clocks collide.
type Event struct {
	Seq        uint64    `json:"seq"`
	TS         time.Time `json:"ts"`
	Type       EventType `json:"type"`
	Table      string    `json:"table,omitempty"` // "primary", "index-<attr>"
	Level      int       `json:"level,omitempty"`
	Inputs     int       `json:"inputs,omitempty"`
	Outputs    int       `json:"outputs,omitempty"`
	Bytes      int64     `json:"bytes,omitempty"`
	Entries    int       `json:"entries,omitempty"`
	DurationUS int64     `json:"duration_us,omitempty"`
	Detail     string    `json:"detail,omitempty"`
}

// EventSink receives events. Implementations must be safe for concurrent
// use; Emit is called from engine goroutines holding engine locks, so it
// must not block on the emitting database.
type EventSink interface {
	Emit(Event)
}

// EventLog is the canonical sink: it stamps Seq and TS, keeps the most
// recent events in a bounded ring, counts events per type, and fans out to
// any attached secondary sinks.
type EventLog struct {
	seq atomic.Uint64

	mu     sync.Mutex
	ring   []Event             // guarded by mu
	pos    int                 // guarded by mu
	n      int                 // guarded by mu
	counts map[EventType]int64 // guarded by mu
	sinks  []EventSink         // guarded by mu
}

// DefaultEventRing is the ring capacity when 0 is requested.
const DefaultEventRing = 1024

// NewEventLog returns a log retaining the capacity most recent events
// (0 = DefaultEventRing).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventRing
	}
	return &EventLog{ring: make([]Event, capacity), counts: map[EventType]int64{}}
}

// Attach adds a secondary sink (e.g. a JSONLSink); every subsequent event
// is forwarded with Seq and TS already assigned.
func (l *EventLog) Attach(s EventSink) {
	if l == nil || s == nil {
		return
	}
	l.mu.Lock()
	l.sinks = append(l.sinks, s)
	l.mu.Unlock()
}

// Emit stamps and records e. Nil-safe.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	e.Seq = l.seq.Add(1)
	if e.TS.IsZero() {
		e.TS = time.Now()
	}
	l.mu.Lock()
	l.ring[l.pos] = e
	l.pos = (l.pos + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.counts[e.Type]++
	sinks := l.sinks
	l.mu.Unlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.pos - l.n
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Counts returns the number of events emitted per type since creation
// (not bounded by the ring).
func (l *EventLog) Counts() map[EventType]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[EventType]int64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Named returns a sink that stamps Table on every event before forwarding
// to this log — how one core database shares a log across its primary
// table and per-attribute index tables.
func (l *EventLog) Named(table string) EventSink {
	if l == nil {
		return nil
	}
	return &namedSink{table: table, log: l}
}

type namedSink struct {
	table string
	log   *EventLog
}

func (s *namedSink) Emit(e Event) {
	if e.Table == "" {
		e.Table = s.table
	}
	s.log.Emit(e)
}

// JSONLSink appends one JSON object per event to w. Writes are buffered;
// call Flush (or Close) to force them out — lsmserver flushes on graceful
// shutdown. Encode errors are counted, not returned (the engine cannot do
// anything useful with a log-write failure mid-flush).
type JSONLSink struct {
	mu     sync.Mutex
	bw     *bufio.Writer // guarded by mu
	closer io.Closer     // immutable after NewJSONLSink
	errs   atomic.Int64
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Emit writes e as one JSONL line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return
	}
	enc, err := json.Marshal(e)
	if err != nil {
		s.errs.Add(1)
		return
	}
	if _, err := s.bw.Write(append(enc, '\n')); err != nil {
		s.errs.Add(1)
	}
}

// Flush forces buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	return s.bw.Flush()
}

// EncodeErrors returns the number of events dropped by encode or write
// failures.
func (s *JSONLSink) EncodeErrors() int64 { return s.errs.Load() }

// Close flushes and closes the underlying writer (if closable). The sink
// drops subsequent events.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw == nil {
		return nil
	}
	err := s.bw.Flush()
	s.bw = nil
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
