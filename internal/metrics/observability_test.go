package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramRaceMixedReadersWriters hammers one bucketed histogram with
// concurrent writers and every reader the exporter uses; run under -race
// (make ci does) this proves the /metrics render path can share a live
// histogram with the operation hot path.
func TestHistogramRaceMixedReadersWriters(t *testing.T) {
	h := NewHistogramBuckets(1000, DefLatencyBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(i%100) * 1e-6)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Quantile(0.99)
				h.Mean()
				h.Buckets()
				h.BoxPlot()
				h.WritePrometheus(io.Discard, "x", map[string]string{"op": "get"})
			}
		}()
	}
	// Once the writers are done, release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for h.Count() < 20000 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if h.Count() != 20000 {
		t.Fatalf("Count = %d", h.Count())
	}
	_, cum := h.Buckets()
	if cum[len(cum)-1] > h.Count() {
		t.Fatalf("cumulative buckets exceed count: %d > %d", cum[len(cum)-1], h.Count())
	}
}

func TestEntriesDecodedPerGetZeroGets(t *testing.T) {
	var sn Snapshot
	if got := sn.EntriesDecodedPerGet(); got != 0 {
		t.Fatalf("zero gets: %f, want 0 (not NaN/Inf)", got)
	}
	sn = Snapshot{PointGets: 4, EntriesDecoded: 10}
	if got := sn.EntriesDecodedPerGet(); got != 2.5 {
		t.Fatalf("EntriesDecodedPerGet = %f, want 2.5", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile and the bucket export degrade to zeros.
	h := NewHistogramBuckets(10, []float64{1, 2})
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %f", q, v)
		}
	}
	var buf bytes.Buffer
	h.WritePrometheus(&buf, "m", nil)
	if !strings.Contains(buf.String(), `m_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram export:\n%s", buf.String())
	}

	// Single sample: every quantile is that sample; box plot collapses.
	h.Observe(7)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 7 {
			t.Fatalf("single-sample Quantile(%v) = %f, want 7", q, v)
		}
	}
	b := h.BoxPlot()
	if b.Median != 7 || b.Q1 != 7 || b.Q3 != 7 {
		t.Fatalf("single-sample boxplot: %+v", b)
	}
}

func TestBucketCountingCumulative(t *testing.T) {
	h := NewHistogramBuckets(0, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []int64{2, 3, 4} // ≤1: two, ≤10: three, ≤100: four; 500 only in +Inf
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels(map[string]string{"b": `quo"te`, "a": "line\nbreak"})
	want := `{a="line\nbreak",b="quo\"te"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
	if Labels(nil) != "" {
		t.Fatal("empty label set must render empty")
	}
}

func TestEventLogRingBounded(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: EventFlushDone})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// The ring keeps the newest events; counts keep the full tally.
	if evs[len(evs)-1].Seq != 10 || evs[0].Seq != 7 {
		t.Fatalf("ring window = [%d, %d], want [7, 10]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	if l.Counts()[EventFlushDone] != 10 {
		t.Fatalf("counts = %v", l.Counts())
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLSinkCountsWriteErrors(t *testing.T) {
	s := NewJSONLSink(&failWriter{n: 0})
	// Enough events to overflow the bufio buffer so the failing writer is
	// actually hit mid-stream.
	for i := 0; i < 500; i++ {
		s.Emit(Event{Seq: uint64(i + 1), Type: EventFlushStart, Table: "primary"})
	}
	if s.EncodeErrors() == 0 {
		t.Fatal("EncodeErrors not incremented on failed writes")
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush swallowed the sticky write error")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Type: EventCompactionDone, Table: "primary", Level: 1, Outputs: 2, Bytes: 4096})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var e Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("bad JSONL line %q: %v", line, err)
	}
	if e.Type != EventCompactionDone || e.Table != "primary" || e.Outputs != 2 {
		t.Fatalf("round-trip mismatch: %+v", e)
	}
	// Events after Close are dropped silently.
	s.Emit(Event{Type: EventFlushStart})
}

func TestTracerSamplingPeriod(t *testing.T) {
	off := NewTracer(0, 0)
	if tr := off.Start(OpGet); tr != nil {
		t.Fatal("rate 0 must never sample")
	}
	var nilTracer *Tracer
	if tr := nilTracer.Start(OpGet); tr != nil {
		t.Fatal("nil tracer must never sample")
	}

	half := NewTracer(0.5, 0)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr := half.Start(OpGet); tr != nil {
			sampled++
			tr.Finish()
		}
	}
	if sampled != 50 {
		t.Fatalf("rate 0.5 sampled %d/100, want every 2nd", sampled)
	}
}

// TestNilTraceSafe: the nil no-op contract the read/write hot paths rely
// on — no clock reads, no panics, no recorded state.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	t0 := tr.Now()
	if !t0.IsZero() {
		t.Fatal("nil Now must return the zero time")
	}
	tr.Since(PhaseWAL, t0)
	tr.Add(PhaseValidate, time.Second)
	tr.SetDetail("x")
	tr.Finish()
}
