// Package metrics provides the measurement primitives behind every figure
// in the study: atomic I/O counters (the paper reports cumulative disk I/O,
// Figures 9c and 13–15), latency histograms with quartiles and whiskers
// (the box-and-whisker plots of Figures 10–11), and cumulative series.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// IOStats counts logical disk-block I/O. The engine increments these at
// every block boundary, so experiments measure algorithmic I/O exactly,
// independent of OS caching (see DESIGN.md §3).
type IOStats struct {
	BlockReads           atomic.Int64 // data/index block reads on the read path
	BlockReadBytes       atomic.Int64
	BlockWrites          atomic.Int64 // block writes from memtable flushes
	BlockWriteBytes      atomic.Int64
	CompactionReads      atomic.Int64 // block reads performed by compactions
	CompactionReadBytes  atomic.Int64
	CompactionWrites     atomic.Int64 // block writes performed by compactions
	CompactionWriteBytes atomic.Int64
	CacheHits            atomic.Int64 // block reads served from the block cache
	CacheMisses          atomic.Int64
	PointGets            atomic.Int64 // sstable point reads (Table.Get calls)
	EntriesDecoded       atomic.Int64 // block entries decoded on the point-read path
	BlockSeeks           atomic.Int64 // in-block restart-array binary searches

	// Posting-list codec counters (DESIGN.md §5.6): decode work performed
	// by the stand-alone index paths (Eager RMW, Lazy merge, LOOKUP).
	PostingsBytesDecoded   atomic.Int64 // encoded posting-list bytes consumed
	PostingsEntriesDecoded atomic.Int64 // posting entries materialized or cursor-stepped
	FragmentsMerged        atomic.Int64 // posting-list fragments fed into merges
}

// Snapshot is a point-in-time copy of IOStats.
type Snapshot struct {
	BlockReads, BlockReadBytes             int64
	BlockWrites, BlockWriteBytes           int64
	CompactionReads, CompactionReadBytes   int64
	CompactionWrites, CompactionWriteBytes int64
	CacheHits, CacheMisses                 int64
	PointGets, EntriesDecoded, BlockSeeks  int64

	PostingsBytesDecoded, PostingsEntriesDecoded, FragmentsMerged int64
}

// EntriesDecodedPerGet returns the mean number of block entries decoded
// per point read — the cost the restart-point block format (DESIGN.md
// §5.2) cuts from a half-block linear scan to at most one restart
// interval. 0 when no point reads were recorded.
func (sn Snapshot) EntriesDecodedPerGet() float64 {
	if sn.PointGets == 0 {
		return 0
	}
	return float64(sn.EntriesDecoded) / float64(sn.PointGets)
}

// Snapshot returns a consistent-enough copy for reporting (fields are read
// individually; exactness across fields is not required by any experiment).
func (s *IOStats) Snapshot() Snapshot {
	return Snapshot{
		BlockReads:           s.BlockReads.Load(),
		BlockReadBytes:       s.BlockReadBytes.Load(),
		BlockWrites:          s.BlockWrites.Load(),
		BlockWriteBytes:      s.BlockWriteBytes.Load(),
		CompactionReads:      s.CompactionReads.Load(),
		CompactionReadBytes:  s.CompactionReadBytes.Load(),
		CompactionWrites:     s.CompactionWrites.Load(),
		CompactionWriteBytes: s.CompactionWriteBytes.Load(),
		CacheHits:            s.CacheHits.Load(),
		CacheMisses:          s.CacheMisses.Load(),
		PointGets:            s.PointGets.Load(),
		EntriesDecoded:       s.EntriesDecoded.Load(),
		BlockSeeks:           s.BlockSeeks.Load(),

		PostingsBytesDecoded:   s.PostingsBytesDecoded.Load(),
		PostingsEntriesDecoded: s.PostingsEntriesDecoded.Load(),
		FragmentsMerged:        s.FragmentsMerged.Load(),
	}
}

// TotalIO returns all block operations (reads + writes, foreground and
// compaction), the paper's "cumulative number of disk I/O".
func (sn Snapshot) TotalIO() int64 {
	return sn.BlockReads + sn.BlockWrites + sn.CompactionReads + sn.CompactionWrites
}

// CompactionIO returns compaction-attributed block operations.
func (sn Snapshot) CompactionIO() int64 { return sn.CompactionReads + sn.CompactionWrites }

// Sub returns sn - other, field-wise, for interval measurements.
func (sn Snapshot) Sub(other Snapshot) Snapshot {
	return Snapshot{
		BlockReads:           sn.BlockReads - other.BlockReads,
		BlockReadBytes:       sn.BlockReadBytes - other.BlockReadBytes,
		BlockWrites:          sn.BlockWrites - other.BlockWrites,
		BlockWriteBytes:      sn.BlockWriteBytes - other.BlockWriteBytes,
		CompactionReads:      sn.CompactionReads - other.CompactionReads,
		CompactionReadBytes:  sn.CompactionReadBytes - other.CompactionReadBytes,
		CompactionWrites:     sn.CompactionWrites - other.CompactionWrites,
		CompactionWriteBytes: sn.CompactionWriteBytes - other.CompactionWriteBytes,
		CacheHits:            sn.CacheHits - other.CacheHits,
		CacheMisses:          sn.CacheMisses - other.CacheMisses,
		PointGets:            sn.PointGets - other.PointGets,
		EntriesDecoded:       sn.EntriesDecoded - other.EntriesDecoded,
		BlockSeeks:           sn.BlockSeeks - other.BlockSeeks,

		PostingsBytesDecoded:   sn.PostingsBytesDecoded - other.PostingsBytesDecoded,
		PostingsEntriesDecoded: sn.PostingsEntriesDecoded - other.PostingsEntriesDecoded,
		FragmentsMerged:        sn.FragmentsMerged - other.FragmentsMerged,
	}
}

// Histogram collects latency (or any scalar) samples and reports the
// five-number summary used in the paper's box plots. It keeps every sample
// up to a cap, then switches to uniform reservoir sampling, preserving
// unbiased quantile estimates for arbitrarily long runs.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // guarded by mu
	sorted  bool      // guarded by mu
	count   int64     // guarded by mu
	sum     float64   // guarded by mu
	min     float64   // guarded by mu
	max     float64   // guarded by mu
	cap     int
	rnd     *rand.Rand // guarded by mu
	// bounds/buckets enable Prometheus bucket export (histogram_export.go);
	// nil unless built with NewHistogramBuckets. bounds is immutable after
	// construction.
	bounds  []float64
	buckets []int64 // guarded by mu
}

// NewHistogram returns a histogram retaining at most capSamples raw values
// (0 means the default of 100 000).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 100000
	}
	return &Histogram{cap: capSamples, min: math.Inf(1), max: math.Inf(-1), rnd: rand.New(rand.NewSource(1))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, v)
	} else if j := h.rnd.Int63n(h.count); j < int64(h.cap) {
		h.samples[j] = v
	}
	h.observeBucketLocked(v)
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.count }

// Mean returns the arithmetic mean of all observations (not just retained
// samples).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return observed extremes over the full stream.
func (h *Histogram) Min() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.min }
func (h *Histogram) Max() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) estimated from retained
// samples using linear interpolation.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return h.samples[n-1]
	}
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// BoxPlot is the five-number summary drawn in Figures 10–11: quartile
// boundaries plus whiskers at the most distant points within 1.5×IQR of
// the box, exactly as the paper describes its plots.
type BoxPlot struct {
	WhiskerLow  float64
	Q1          float64
	Median      float64
	Q3          float64
	WhiskerHigh float64
	Mean        float64
	Count       int64
}

// BoxPlot computes the summary.
func (h *Histogram) BoxPlot() BoxPlot {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := BoxPlot{Count: h.count}
	if h.count == 0 {
		return b
	}
	b.Q1 = h.quantileLocked(0.25)
	b.Median = h.quantileLocked(0.5)
	b.Q3 = h.quantileLocked(0.75)
	b.Mean = h.sum / float64(h.count)
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLow, b.WhiskerHigh = b.Q3, b.Q1
	for _, v := range h.samples {
		if v >= loFence && v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v <= hiFence && v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
	}
	return b
}

// String renders the summary in one line, in microseconds-agnostic units.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d whiskers=[%.1f, %.1f] box=[%.1f, %.1f] median=%.1f mean=%.1f",
		b.Count, b.WhiskerLow, b.WhiskerHigh, b.Q1, b.Q3, b.Median, b.Mean)
}

// Series is an append-only (x, y) sequence for cumulative plots
// (Figures 9 and 13–15).
type Series struct {
	mu     sync.Mutex
	Name   string  // immutable after NewSeries
	Points []Point // guarded by mu
}

// Point is a single series sample.
type Point struct{ X, Y float64 }

// NewSeries returns a named empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.mu.Lock()
	s.Points = append(s.Points, Point{x, y})
	s.mu.Unlock()
}

// Last returns the most recent point and whether one exists.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}
