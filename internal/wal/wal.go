// Package wal implements the write-ahead log that makes MemTable contents
// durable before they are flushed to an SSTable. Records are length- and
// CRC-framed; replay stops cleanly at the first torn or corrupt record, so
// a crash mid-write loses at most the record being written (LevelDB's
// recovery contract).
//
// The writer buffers frames in memory (bufio) and the engine flushes at
// commit granularity: one write syscall per commit — or per commit
// *group* under group commit — instead of two per record. Sync flushes
// the buffer and fsyncs; callers choose when via SyncMode.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects WAL durability semantics per commit.
type SyncMode uint8

// The sync modes. SyncUnset is the zero value so legacy configurations
// (the SyncWAL bool) keep working: the engine resolves it to SyncAlways
// or SyncOff at open time.
const (
	SyncUnset SyncMode = iota
	// SyncOff never fsyncs: frames reach the OS (buffer flush per
	// commit) but a machine crash can lose acknowledged writes. The
	// paper's throughput configuration.
	SyncOff
	// SyncAlways fsyncs once per logical commit before it is
	// acknowledged, even when a group-commit leader batched the WAL
	// write — the seed-equivalent fsync accounting, kept as the
	// ablation baseline for measuring what sync batching alone buys.
	SyncAlways
	// SyncGrouped fsyncs once per commit *group*: every member is still
	// acknowledged only after an fsync covering its records, but
	// concurrent committers share one. Without group commit each commit
	// is its own group, making this identical to SyncAlways.
	SyncGrouped
)

// String returns the mode's flag spelling.
func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncAlways:
		return "always"
	case SyncGrouped:
		return "grouped"
	default:
		return "unset"
	}
}

// ParseSyncMode parses a -sync-mode flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "always":
		return SyncAlways, nil
	case "grouped":
		return SyncGrouped, nil
	default:
		return SyncUnset, fmt.Errorf("wal: unknown sync mode %q (want off, always or grouped)", s)
	}
}

// Record is one logged operation: a put (Value != nil semantics carried by
// Kind) or delete of a user key at a sequence number.
type Record struct {
	Seq   uint64
	Kind  byte // 0 = delete, 1 = set (matches ikey kinds)
	Key   []byte
	Value []byte
}

// ErrInjectedCrash is returned by a Writer whose FailAfter fault was
// tripped: the write crossing the byte quota is torn mid-frame, exactly
// as a power loss would leave it.
var ErrInjectedCrash = errors.New("wal: injected crash")

// bufferSize is the in-memory frame buffer. Large enough that a typical
// commit group flushes in one write syscall.
const bufferSize = 64 << 10

// crashFile sits between the frame buffer and the file so crash tests
// can inject a torn write: once armed, at most quota more bytes reach
// the file and the write crossing the boundary is truncated and fails.
type crashFile struct {
	f     *os.File
	quota int64 // -1 = disarmed
}

func (cf *crashFile) Write(p []byte) (int, error) {
	if cf.quota < 0 {
		return cf.f.Write(p)
	}
	if int64(len(p)) <= cf.quota {
		cf.quota -= int64(len(p))
		return cf.f.Write(p)
	}
	n, _ := cf.f.Write(p[:cf.quota])
	cf.quota = 0
	return n, ErrInjectedCrash
}

// Writer appends records to a log file through an in-memory buffer.
// Frames are durable in the file only after Flush (OS-durable) or Sync
// (storage-durable); Close flushes. Not safe for concurrent use — the
// engine serializes WAL I/O under its log mutex.
type Writer struct {
	cf  crashFile
	bw  *bufio.Writer
	buf []byte // frame-encode scratch
}

func newWriter(f *os.File) *Writer {
	w := &Writer{cf: crashFile{f: f, quota: -1}}
	w.bw = bufio.NewWriterSize(&w.cf, bufferSize)
	return w
}

// Create opens (truncating) a log file for writing.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return newWriter(f), nil
}

// Append opens path for appending, creating it if absent. Used on DB open
// so that records replayed into the MemTable remain durable until the
// next flush.
func Append(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: append-open: %w", err)
	}
	return newWriter(f), nil
}

// Append writes one record. The frame is:
//
//	u32 crc | u32 payloadLen | payload
//	payload = u64 seq | u8 kind | uvarint keyLen | key | value
func (w *Writer) Append(r Record) error {
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.Seq)
	w.buf = append(w.buf, r.Kind)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Key)))
	w.buf = append(w.buf, r.Key...)
	w.buf = append(w.buf, r.Value...)
	return w.writeFrame()
}

// writeFrame emits the header + w.buf payload into the buffer.
func (w *Writer) writeFrame() error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], crc32.Checksum(w.buf, crcTable))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(w.buf)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	return nil
}

// Flush pushes buffered frames to the OS. The engine calls it once per
// commit (or commit group), so acknowledged writes are always visible in
// the file even without fsync — live-directory copies (checkpoints,
// crash tests) rely on this.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Sync flushes the buffer and fsyncs the log to stable storage.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.cf.f.Sync()
}

// Close flushes the buffer and closes the underlying file.
func (w *Writer) Close() error {
	ferr := w.bw.Flush()
	cerr := w.cf.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// FailAfter arms the crash-injection fault: after n more bytes reach the
// file, the write crossing the boundary is truncated and every
// subsequent write fails with ErrInjectedCrash. Buffered bytes count
// when they flush. Test hook; call under the same serialization as the
// write path.
func (w *Writer) FailAfter(n int64) { w.cf.quota = n }

// Replay reads records from the log at path in order, invoking fn for
// each. It returns nil on a clean or truncated tail (the expected result
// of a crash); any other corruption is reported.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()

	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header
			}
			return fmt.Errorf("wal: read header: %w", err)
		}
		wantCRC := binary.BigEndian.Uint32(hdr[0:4])
		plen := binary.BigEndian.Uint32(hdr[4:8])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload
			}
			return fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil // corrupt tail; stop replay here
		}
		if len(payload) > 8 && payload[8] == batchKind {
			records, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			for _, r := range records {
				if err := fn(r); err != nil {
					return err
				}
			}
			continue
		}
		r, err := decode(payload)
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

func decode(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: record too short (%d bytes)", len(p))
	}
	r := Record{
		Seq:  binary.BigEndian.Uint64(p[0:8]),
		Kind: p[8],
	}
	klen, n := binary.Uvarint(p[9:])
	if n <= 0 || 9+n+int(klen) > len(p) {
		return Record{}, fmt.Errorf("wal: corrupt key length")
	}
	off := 9 + n
	r.Key = append([]byte(nil), p[off:off+int(klen)]...)
	r.Value = append([]byte(nil), p[off+int(klen):]...)
	return r, nil
}

// batchKind marks a frame containing multiple sub-records that commit
// atomically: the frame CRC covers all of them, so replay applies either
// the whole batch or none of it.
const batchKind = 0xff

// AppendBatch writes records as one atomically-replayed frame. Records
// must carry consecutive sequence numbers starting at records[0].Seq.
func (w *Writer) AppendBatch(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	if len(records) == 1 {
		return w.Append(records[0])
	}
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint64(w.buf, records[0].Seq)
	w.buf = append(w.buf, batchKind)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(records)))
	for _, r := range records {
		w.buf = append(w.buf, r.Kind)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Key)))
		w.buf = append(w.buf, r.Key...)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Value)))
		w.buf = append(w.buf, r.Value...)
	}
	return w.writeFrame()
}

// decodeBatch expands a batch frame into its sub-records.
func decodeBatch(p []byte) ([]Record, error) {
	baseSeq := binary.BigEndian.Uint64(p[0:8])
	buf := p[9:]
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("wal: corrupt batch count")
	}
	buf = buf[n:]
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("wal: truncated batch record %d", i)
		}
		kind := buf[0]
		buf = buf[1:]
		klen, n := binary.Uvarint(buf)
		if n <= 0 || int(klen) > len(buf)-n {
			return nil, fmt.Errorf("wal: corrupt batch key %d", i)
		}
		buf = buf[n:]
		key := append([]byte(nil), buf[:klen]...)
		buf = buf[klen:]
		vlen, n := binary.Uvarint(buf)
		if n <= 0 || int(vlen) > len(buf)-n {
			return nil, fmt.Errorf("wal: corrupt batch value %d", i)
		}
		buf = buf[n:]
		val := append([]byte(nil), buf[:vlen]...)
		buf = buf[vlen:]
		out = append(out, Record{Seq: baseSeq + i, Kind: kind, Key: key, Value: val})
	}
	return out, nil
}
