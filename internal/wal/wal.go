// Package wal implements the write-ahead log that makes MemTable contents
// durable before they are flushed to an SSTable. Records are length- and
// CRC-framed; replay stops cleanly at the first torn or corrupt record, so
// a crash mid-write loses at most the record being written (LevelDB's
// recovery contract).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged operation: a put (Value != nil semantics carried by
// Kind) or delete of a user key at a sequence number.
type Record struct {
	Seq   uint64
	Kind  byte // 0 = delete, 1 = set (matches ikey kinds)
	Key   []byte
	Value []byte
}

// Writer appends records to a log file.
type Writer struct {
	f   *os.File
	buf []byte
}

// Create opens (truncating) a log file for writing.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append writes one record. The frame is:
//
//	u32 crc | u32 payloadLen | payload
//	payload = u64 seq | u8 kind | uvarint keyLen | key | value
func (w *Writer) Append(r Record) error {
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint64(w.buf, r.Seq)
	w.buf = append(w.buf, r.Kind)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Key)))
	w.buf = append(w.buf, r.Key...)
	w.buf = append(w.buf, r.Value...)

	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], crc32.Checksum(w.buf, crcTable))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(w.buf)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	return nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// Replay reads records from the log at path in order, invoking fn for
// each. It returns nil on a clean or truncated tail (the expected result
// of a crash); any other corruption is reported.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()

	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header
			}
			return fmt.Errorf("wal: read header: %w", err)
		}
		wantCRC := binary.BigEndian.Uint32(hdr[0:4])
		plen := binary.BigEndian.Uint32(hdr[4:8])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload
			}
			return fmt.Errorf("wal: read payload: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil // corrupt tail; stop replay here
		}
		if len(payload) > 8 && payload[8] == batchKind {
			records, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			for _, r := range records {
				if err := fn(r); err != nil {
					return err
				}
			}
			continue
		}
		r, err := decode(payload)
		if err != nil {
			return err
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

func decode(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: record too short (%d bytes)", len(p))
	}
	r := Record{
		Seq:  binary.BigEndian.Uint64(p[0:8]),
		Kind: p[8],
	}
	klen, n := binary.Uvarint(p[9:])
	if n <= 0 || 9+n+int(klen) > len(p) {
		return Record{}, fmt.Errorf("wal: corrupt key length")
	}
	off := 9 + n
	r.Key = append([]byte(nil), p[off:off+int(klen)]...)
	r.Value = append([]byte(nil), p[off+int(klen):]...)
	return r, nil
}

// Append opens path for appending, creating it if absent. Used on DB open
// so that records replayed into the MemTable remain durable until the
// next flush.
func Append(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: append-open: %w", err)
	}
	return &Writer{f: f}, nil
}

// batchKind marks a frame containing multiple sub-records that commit
// atomically: the frame CRC covers all of them, so replay applies either
// the whole batch or none of it.
const batchKind = 0xff

// AppendBatch writes records as one atomically-replayed frame. Records
// must carry consecutive sequence numbers starting at records[0].Seq.
func (w *Writer) AppendBatch(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	if len(records) == 1 {
		return w.Append(records[0])
	}
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint64(w.buf, records[0].Seq)
	w.buf = append(w.buf, batchKind)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(records)))
	for _, r := range records {
		w.buf = append(w.buf, r.Kind)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Key)))
		w.buf = append(w.buf, r.Key...)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(r.Value)))
		w.buf = append(w.buf, r.Value...)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], crc32.Checksum(w.buf, crcTable))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(w.buf)))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append batch header: %w", err)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("wal: append batch payload: %w", err)
	}
	return nil
}

// decodeBatch expands a batch frame into its sub-records.
func decodeBatch(p []byte) ([]Record, error) {
	baseSeq := binary.BigEndian.Uint64(p[0:8])
	buf := p[9:]
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("wal: corrupt batch count")
	}
	buf = buf[n:]
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("wal: truncated batch record %d", i)
		}
		kind := buf[0]
		buf = buf[1:]
		klen, n := binary.Uvarint(buf)
		if n <= 0 || int(klen) > len(buf)-n {
			return nil, fmt.Errorf("wal: corrupt batch key %d", i)
		}
		buf = buf[n:]
		key := append([]byte(nil), buf[:klen]...)
		buf = buf[klen:]
		vlen, n := binary.Uvarint(buf)
		if n <= 0 || int(vlen) > len(buf)-n {
			return nil, fmt.Errorf("wal: corrupt batch value %d", i)
		}
		buf = buf[n:]
		val := append([]byte(nil), buf[:vlen]...)
		buf = buf[vlen:]
		out = append(out, Record{Seq: baseSeq + i, Kind: kind, Key: key, Value: val})
	}
	return out, nil
}
