package wal

import (
	"fmt"
	"os"
	"testing"
)

func TestAppendBatchReplay(t *testing.T) {
	path := tempLog(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var batch []Record
	for i := 0; i < 25; i++ {
		batch = append(batch, Record{
			Seq:   100 + uint64(i),
			Kind:  byte(i % 2),
			Key:   []byte(fmt.Sprintf("key-%02d", i)),
			Value: []byte(fmt.Sprintf("value-%02d", i)),
		})
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Interleave a single record after the batch.
	if err := w.Append(Record{Seq: 200, Kind: 1, Key: []byte("solo")}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 26 {
		t.Fatalf("replayed %d records, want 26", len(got))
	}
	for i := 0; i < 25; i++ {
		g := got[i]
		if g.Seq != 100+uint64(i) || g.Kind != byte(i%2) ||
			string(g.Key) != fmt.Sprintf("key-%02d", i) ||
			string(g.Value) != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("record %d mismatch: %+v", i, g)
		}
	}
	if got[25].Seq != 200 || string(got[25].Key) != "solo" {
		t.Fatalf("trailing single record mismatch: %+v", got[25])
	}
}

func TestAppendBatchEmptyAndSingle(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	if err := w.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	// Single-record batches take the plain-frame path.
	if err := w.AppendBatch([]Record{{Seq: 1, Kind: 1, Key: []byte("k"), Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	n := 0
	Replay(path, func(Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("replayed %d, want 1", n)
	}
}

func TestBatchAtomicityOnCorruptTail(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	w.Append(Record{Seq: 1, Kind: 1, Key: []byte("committed")})
	var batch []Record
	for i := 0; i < 10; i++ {
		batch = append(batch, Record{Seq: 10 + uint64(i), Kind: 1, Key: []byte(fmt.Sprintf("b%d", i)), Value: []byte("v")})
	}
	w.AppendBatch(batch)
	w.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // corrupt inside the batch frame
	os.WriteFile(path, data, 0o644)

	var got []string
	if err := Replay(path, func(r Record) error { got = append(got, string(r.Key)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "committed" {
		t.Fatalf("batch not atomic under corruption: %v", got)
	}
}

func TestBatchWithEmptyKeysAndValues(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	batch := []Record{
		{Seq: 1, Kind: 1, Key: []byte{}, Value: []byte{}},
		{Seq: 2, Kind: 0, Key: []byte("k"), Value: nil},
		{Seq: 3, Kind: 1, Key: []byte("k2"), Value: []byte("v2")},
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var got []Record
	Replay(path, func(r Record) error { got = append(got, r); return nil })
	if len(got) != 3 {
		t.Fatalf("replayed %d", len(got))
	}
	if len(got[0].Key) != 0 || got[1].Kind != 0 || string(got[2].Value) != "v2" {
		t.Fatalf("batch contents mangled: %+v", got)
	}
}

func TestSyncDoesNotError(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	w.Append(Record{Seq: 1, Kind: 1, Key: []byte("k")})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
}
