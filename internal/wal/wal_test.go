package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "000001.log")
}

func TestAppendReplay(t *testing.T) {
	path := tempLog(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := Record{
			Seq:   uint64(i + 1),
			Kind:  byte(i % 2),
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: []byte(fmt.Sprintf("value-%03d", i)),
		}
		if r.Kind == 0 {
			r.Value = []byte{}
		}
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || string(g.Key) != string(w.Key) || string(g.Value) != string(w.Value) {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope.log"), func(Record) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEmptyFile(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	w.Close()
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d from empty log", n)
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	for i := 0; i < 10; i++ {
		w.Append(Record{Seq: uint64(i + 1), Kind: 1, Key: []byte("k"), Value: []byte("v")})
	}
	w.Close()
	// Truncate mid-record to simulate a crash during the last write.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", n)
	}
}

func TestCorruptTailStopsReplay(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	for i := 0; i < 5; i++ {
		w.Append(Record{Seq: uint64(i + 1), Kind: 1, Key: []byte("key"), Value: []byte("abcdef")})
	}
	w.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xff // corrupt last record's payload
	os.WriteFile(path, data, 0o644)
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records with corrupt tail, want 4", n)
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	w.Append(Record{Seq: 1, Kind: 1, Key: []byte{}, Value: []byte{}})
	w.Close()
	var got []Record
	Replay(path, func(r Record) error { got = append(got, r); return nil })
	if len(got) != 1 || len(got[0].Key) != 0 || len(got[0].Value) != 0 {
		t.Fatalf("empty k/v roundtrip failed: %+v", got)
	}
}

func TestLargeRecord(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	w.Append(Record{Seq: 1, Kind: 1, Key: []byte("big"), Value: big})
	w.Close()
	var got Record
	Replay(path, func(r Record) error { got = r; return nil })
	if len(got.Value) != len(big) {
		t.Fatalf("large record truncated: %d", len(got.Value))
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := tempLog(t)
	w, _ := Create(path)
	w.Append(Record{Seq: 1, Kind: 1, Key: []byte("k")})
	w.Close()
	wantErr := fmt.Errorf("boom")
	if err := Replay(path, func(Record) error { return wantErr }); err != wantErr {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	w, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{Seq: 1, Kind: 1, Key: []byte("tweet-0123456789"), Value: make([]byte, 550)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
