package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFlushMakesRecordsVisible verifies the buffering contract: appended
// records are not in the file until Flush, and are after — without Close.
func TestFlushMakesRecordsVisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if err := w.Append(Record{Seq: 1, Kind: 1, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("before flush: size=%d err=%v, want 0 (buffered)", fi.Size(), err)
	}

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Key) != "k" {
		t.Fatalf("after flush: replayed %v, want 1 record", got)
	}
}

// TestFailAfterTearsFrame arms the crash fault mid-frame and checks that
// replay recovers every record before the torn one and none after.
func TestFailAfterTearsFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}

	// Two complete records, flushed durable.
	for i := uint64(1); i <= 2; i++ {
		if err := w.Append(Record{Seq: i, Kind: 1, Key: []byte{byte(i)}, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Allow 5 more bytes through, then crash: the third record tears.
	w.FailAfter(5)
	if err := w.Append(Record{Seq: 3, Kind: 1, Key: []byte("torn"), Value: []byte("lost")}); err != nil {
		t.Fatal(err) // append only buffers; the error surfaces at flush
	}
	if err := w.Flush(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("flush err = %v, want ErrInjectedCrash", err)
	}
	// The error is sticky: every later append/sync keeps failing, so no
	// write after the crash can ever be acknowledged.
	if err := w.Append(Record{Seq: 4, Kind: 1, Key: []byte("x")}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("append after crash = %v, want ErrInjectedCrash", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("sync after crash = %v, want ErrInjectedCrash", err)
	}

	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("replayed %d records %v, want exactly the 2 pre-crash ones", len(got), got)
	}
}

// TestFailAfterTearsBatch proves the all-or-nothing property for batch
// frames: a batch torn mid-frame replays zero of its records.
func TestFailAfterTearsBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := w.Append(Record{Seq: 1, Kind: 1, Key: []byte("pre"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	batch := make([]Record, 8)
	for i := range batch {
		batch[i] = Record{Seq: uint64(2 + i), Kind: 1, Key: []byte{byte(i)}, Value: []byte("payload")}
	}
	w.FailAfter(40) // tears partway through the batch frame
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("flush err = %v, want ErrInjectedCrash", err)
	}

	var got []Record
	if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Key) != "pre" {
		t.Fatalf("replayed %v, want only the pre-batch record (torn batch = nothing)", got)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"off", SyncOff, true},
		{"always", SyncAlways, true},
		{"grouped", SyncGrouped, true},
		{"", SyncUnset, false},
		{"ALWAYS", SyncUnset, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("SyncMode(%q).String() = %q", tc.in, got.String())
		}
	}
}
