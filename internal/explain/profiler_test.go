package explain

import (
	"fmt"
	"sync"
	"testing"

	"leveldbpp/internal/metrics"
)

func TestWorkloadSnapshot(t *testing.T) {
	p := NewWorkloadProfiler(nil)
	for i := 0; i < 60; i++ {
		p.RecordOp(metrics.OpPut)
	}
	for i := 0; i < 20; i++ {
		p.RecordOp(metrics.OpGet)
	}
	for i := 0; i < 15; i++ {
		p.RecordQuery(metrics.OpLookup, 10, 25)
	}
	for i := 0; i < 5; i++ {
		p.RecordQuery(metrics.OpRangeLookup, 0, 100) // unbounded
	}
	w := p.Snapshot()
	if w.TotalOps != 100 {
		t.Fatalf("TotalOps = %d", w.TotalOps)
	}
	if w.WriteFraction != 0.6 {
		t.Errorf("WriteFraction = %g, want 0.6", w.WriteFraction)
	}
	if w.SecondaryQueryFraction != 0.2 {
		t.Errorf("SecondaryQueryFraction = %g, want 0.2", w.SecondaryQueryFraction)
	}
	if w.TypicalTopK != 10 {
		t.Errorf("TypicalTopK = %d, want 10", w.TypicalTopK)
	}
	if w.UnboundedFraction != 0.25 {
		t.Errorf("UnboundedFraction = %g, want 0.25", w.UnboundedFraction)
	}
	if w.MeanMatched <= 0 {
		t.Errorf("MeanMatched = %g", w.MeanMatched)
	}
}

func TestTypicalTopKUnboundedMajority(t *testing.T) {
	p := NewWorkloadProfiler(nil)
	for i := 0; i < 10; i++ {
		p.RecordQuery(metrics.OpLookup, 0, 50)
	}
	p.RecordQuery(metrics.OpLookup, 5, 50)
	if w := p.Snapshot(); w.TypicalTopK != 0 {
		t.Fatalf("TypicalTopK = %d for an unbounded-majority workload, want 0", w.TypicalTopK)
	}
}

func TestTimeCorrelated(t *testing.T) {
	p := NewWorkloadProfiler(nil)
	// Below corrMinSamples: never correlated, however clean the order.
	for i := 0; i < corrMinSamples/2; i++ {
		p.RecordAttrValue("CreationTime", fmt.Sprintf("%010d", i))
	}
	if p.TimeCorrelated("CreationTime") {
		t.Fatal("correlated with too few samples")
	}
	for i := corrMinSamples / 2; i < 3*corrMinSamples; i++ {
		p.RecordAttrValue("CreationTime", fmt.Sprintf("%010d", i))
		p.RecordAttrValue("UserID", fmt.Sprintf("u%02d", (i*53)%97))
	}
	if !p.TimeCorrelated("CreationTime") {
		t.Error("monotone attribute not detected as time-correlated")
	}
	if p.TimeCorrelated("UserID") {
		t.Error("shuffled attribute reported as time-correlated")
	}
	if p.TimeCorrelated("NoSuchAttr") {
		t.Error("unseen attribute reported as time-correlated")
	}
	w := p.Snapshot()
	if !w.TimeCorrelated {
		t.Error("snapshot did not surface the correlated attribute")
	}
	if c := w.TimeCorrelation["CreationTime"]; c < corrThreshold {
		t.Errorf("CreationTime correlation = %g", c)
	}
}

// TestModelDriftEvent: a sustained out-of-band ratio fires exactly one
// model_drift event; recovery into the clear band re-arms it so a second
// excursion fires again.
func TestModelDriftEvent(t *testing.T) {
	events := metrics.NewEventLog(64)
	p := NewWorkloadProfiler(events)

	drifts := func() int {
		n := 0
		for _, e := range events.Events() {
			if e.Type == metrics.EventModelDrift {
				n++
			}
		}
		return n
	}

	for i := 0; i < driftMinSamples-1; i++ {
		p.RecordRatio(metrics.OpLookup, 10)
	}
	if drifts() != 0 {
		t.Fatal("drift fired below the minimum sample count")
	}
	p.RecordRatio(metrics.OpLookup, 10)
	if drifts() != 1 {
		t.Fatalf("drift events = %d after sustained 10x ratio, want 1", drifts())
	}
	// Still drifted: no further events while out of band.
	for i := 0; i < 2*ratioWindowSize; i++ {
		p.RecordRatio(metrics.OpLookup, 10)
	}
	if drifts() != 1 {
		t.Fatalf("drift events = %d, repeated excursion must not re-fire", drifts())
	}
	// Recover into the clear band, then drift again: one more event.
	for i := 0; i < 2*ratioWindowSize; i++ {
		p.RecordRatio(metrics.OpLookup, 1)
	}
	if w := p.Snapshot(); w.Ratios["lookup"].Drifted {
		t.Fatal("flag did not clear after recovery")
	}
	for i := 0; i < 2*ratioWindowSize; i++ {
		p.RecordRatio(metrics.OpLookup, 0.1)
	}
	if drifts() != 2 {
		t.Fatalf("drift events = %d after recovery and second excursion, want 2", drifts())
	}
}

func TestRecordRatioIgnoresNonPositive(t *testing.T) {
	p := NewWorkloadProfiler(nil)
	p.RecordRatio(metrics.OpLookup, 0)
	p.RecordRatio(metrics.OpLookup, -3)
	if w := p.Snapshot(); len(w.Ratios) != 0 {
		t.Fatalf("non-positive ratios recorded: %+v", w.Ratios)
	}
}

func TestNilProfilerSafe(t *testing.T) {
	var p *WorkloadProfiler
	p.RecordOp(metrics.OpPut)
	p.RecordQuery(metrics.OpLookup, 10, 5)
	p.RecordAttrValue("a", "v")
	p.RecordRatio(metrics.OpLookup, 1)
	if p.TimeCorrelated("a") {
		t.Fatal("nil profiler correlated")
	}
	if w := p.Snapshot(); w.TotalOps != 0 {
		t.Fatalf("nil snapshot: %+v", w)
	}
}

// TestProfilerConcurrent hammers every recording path alongside Snapshot
// readers; run under -race this is the profiler's thread-safety gate.
func TestProfilerConcurrent(t *testing.T) {
	p := NewWorkloadProfiler(metrics.NewEventLog(16))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				switch i % 5 {
				case 0:
					p.RecordOp(metrics.OpPut)
				case 1:
					p.RecordQuery(metrics.OpLookup, i%20, i%50)
				case 2:
					p.RecordAttrValue("CreationTime", fmt.Sprintf("%010d", i))
				case 3:
					p.RecordRatio(metrics.Op(i%int(metrics.NumOps)), float64(i%7)+0.5)
				case 4:
					_ = p.Snapshot()
					_ = p.TimeCorrelated("CreationTime")
				}
			}
		}(g)
	}
	wg.Wait()
	if w := p.Snapshot(); w.TotalOps == 0 {
		t.Fatal("no operations recorded")
	}
}
