// Package explain holds the EXPLAIN/ANALYZE layer (DESIGN.md §5.7): the
// per-operation Report pairing a trace's exact observed I/O with the cost
// model's prediction, and the online WorkloadProfiler that aggregates the
// live operation mix into the advisor's inputs and tracks model drift.
//
// The package sits below core (which builds Reports from its five index
// implementations) and is imported by advisor (which converts a Workload
// snapshot into a Profile) — it depends only on metrics and costmodel, so
// no import cycle forms.
package explain

import (
	"fmt"

	"leveldbpp/internal/costmodel"
	"leveldbpp/internal/metrics"
)

// Report is one operation's execution report: the chosen plan, the phase
// timings and exact I/O attribution from a detached trace, and the cost
// model's prediction for the same operation evaluated with live Params.
type Report struct {
	Op      string `json:"op"`
	Index   string `json:"index"`
	Plan    string `json:"plan"`
	Detail  string `json:"detail,omitempty"`
	K       int    `json:"k,omitempty"` // requested top-K (0 = unbounded)
	Results int    `json:"results"`     // entries returned (the model's K')

	TotalUS float64             `json:"total_us"`
	Phases  []metrics.PhaseTime `json:"phases,omitempty"`
	IO      metrics.Counters    `json:"io"`

	// ObservedIO is the logical block-access count (disk reads + block
	// cache hits); PredictedIO is the Table 3/5 formula evaluated with
	// Params; Ratio is observed/predicted.
	ObservedIO  int64            `json:"observed_io"`
	PredictedIO float64          `json:"predicted_io"`
	Ratio       float64          `json:"ratio"`
	Formula     string           `json:"formula"`
	Params      costmodel.Params `json:"params"`
}

// Fill computes the derived fields (ObservedIO from the counters, Ratio
// from the prediction) after the caller has set IO and PredictedIO.
func (r *Report) Fill() {
	r.ObservedIO = r.IO.BlockAccesses()
	if r.PredictedIO > 0 {
		r.Ratio = float64(r.ObservedIO) / r.PredictedIO
	}
}

// String renders a one-line summary for CLI output.
func (r *Report) String() string {
	return fmt.Sprintf("%s[%s] plan=%s results=%d observed=%d predicted=%.1f ratio=%.2f (%s)",
		r.Op, r.Index, r.Plan, r.Results, r.ObservedIO, r.PredictedIO, r.Ratio, r.Formula)
}
