package explain

import (
	"fmt"
	"sync"
	"sync/atomic"

	"leveldbpp/internal/metrics"
)

// Drift detection thresholds: with at least driftMinSamples ratios in an
// op's rolling window, a mean outside [driftLow, driftHigh] fires one
// model_drift event; the flag re-arms only once the mean returns to the
// tighter [clearLow, clearHigh] band (hysteresis, so a ratio oscillating
// on the boundary cannot spam the event log).
const (
	driftMinSamples = 16
	driftLow        = 0.4
	driftHigh       = 2.5
	clearLow        = 0.5
	clearHigh       = 2.0

	ratioWindowSize = 64
	corrMinSamples  = 32
	corrThreshold   = 0.9
)

// WorkloadProfiler aggregates the live operation stream into a rolling
// workload snapshot: operation mix, top-K request distribution, matched
// result-set sizes, per-attribute time correlation of ingested values, and
// per-op observed/predicted cost ratios (the model-drift tracker). All
// methods are safe for concurrent use; the hot recording paths are a few
// atomic adds or one short mutex hold.
type WorkloadProfiler struct {
	events *metrics.EventLog // drift events sink; may be nil

	ops       [metrics.NumOps]atomic.Int64
	unbounded atomic.Int64 // secondary queries with no K bound

	topK    *metrics.Histogram // requested K of bounded secondary queries
	matched *metrics.Histogram // result-set sizes of secondary queries

	mu      sync.Mutex
	attrs   map[string]*attrCorr        // guarded by mu
	ratios  [metrics.NumOps]ratioWindow // guarded by mu
	drifted [metrics.NumOps]bool        // guarded by mu
}

// NewWorkloadProfiler returns a profiler emitting drift events to events
// (which may be nil for a silent profiler).
func NewWorkloadProfiler(events *metrics.EventLog) *WorkloadProfiler {
	return &WorkloadProfiler{
		events:  events,
		topK:    metrics.NewHistogram(0),
		matched: metrics.NewHistogram(0),
		attrs:   map[string]*attrCorr{},
	}
}

// RecordOp counts one operation (writes, gets, scans). Nil-safe.
//
//lsm:hotpath
func (p *WorkloadProfiler) RecordOp(op metrics.Op) {
	if p == nil {
		return
	}
	p.ops[op].Add(1)
}

// RecordQuery counts one secondary-index query with its requested K
// (0 = unbounded) and the number of results it matched. Nil-safe.
//
//lsm:hotpath
func (p *WorkloadProfiler) RecordQuery(op metrics.Op, k, matched int) {
	if p == nil {
		return
	}
	p.ops[op].Add(1)
	if k > 0 {
		p.topK.Observe(float64(k))
	} else {
		p.unbounded.Add(1)
	}
	p.matched.Observe(float64(matched))
}

// RecordAttrValue feeds one ingested secondary-attribute value into the
// time-correlation estimator. Callers sample (every Nth PUT) — the
// estimator needs pair counts, not every write. Nil-safe.
func (p *WorkloadProfiler) RecordAttrValue(attr, value string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	c := p.attrs[attr]
	if c == nil {
		c = &attrCorr{}
		p.attrs[attr] = c
	}
	c.observe(value)
	p.mu.Unlock()
}

// TimeCorrelated reports whether attr's sampled ingest order has been
// observed (with enough samples) to be approximately non-decreasing — the
// predicate selecting the Embedded RANGELOOKUP bound. Nil-safe.
func (p *WorkloadProfiler) TimeCorrelated(attr string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.attrs[attr]
	if c == nil || c.n < corrMinSamples {
		return false
	}
	return float64(c.concordant)/float64(c.n) >= corrThreshold
}

// RecordRatio feeds one observed/predicted cost ratio for op into the
// drift tracker, firing a model_drift event when the rolling mean leaves
// the model's confidence band. Nil-safe.
func (p *WorkloadProfiler) RecordRatio(op metrics.Op, ratio float64) {
	if p == nil || ratio <= 0 {
		return
	}
	p.mu.Lock()
	w := &p.ratios[op]
	w.add(ratio)
	var fire bool
	var mean float64
	if w.count >= driftMinSamples {
		mean = w.mean()
		if !p.drifted[op] && (mean < driftLow || mean > driftHigh) {
			p.drifted[op] = true
			fire = true
		} else if p.drifted[op] && mean >= clearLow && mean <= clearHigh {
			p.drifted[op] = false
		}
	}
	p.mu.Unlock()
	if fire {
		p.events.Emit(metrics.Event{
			Type:   metrics.EventModelDrift,
			Detail: fmt.Sprintf("op=%s mean_ratio=%.2f window=%d", op, mean, ratioWindowSize),
		})
	}
}

// RatioStats summarizes one op's rolling observed/predicted window.
type RatioStats struct {
	Count   int     `json:"count"`
	Mean    float64 `json:"mean"`
	Drifted bool    `json:"drifted"`
}

// Workload is a point-in-time snapshot of the profiled workload, the
// neutral form advisor.FromWorkload converts into an advisor.Profile.
type Workload struct {
	TotalOps               int64                 `json:"total_ops"`
	Ops                    map[string]int64      `json:"ops"`
	WriteFraction          float64               `json:"write_fraction"`
	SecondaryQueryFraction float64               `json:"secondary_query_fraction"`
	TypicalTopK            int                   `json:"typical_top_k"`
	UnboundedFraction      float64               `json:"unbounded_fraction"`
	MeanMatched            float64               `json:"mean_matched"`
	TimeCorrelation        map[string]float64    `json:"time_correlation,omitempty"`
	TimeCorrelated         bool                  `json:"time_correlated"`
	Ratios                 map[string]RatioStats `json:"model_ratios,omitempty"`
}

// Snapshot returns the current workload aggregate. Nil-safe (zero value).
func (p *WorkloadProfiler) Snapshot() Workload {
	var w Workload
	if p == nil {
		return w
	}
	w.Ops = map[string]int64{}
	var writes, secondary int64
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		n := p.ops[op].Load()
		if n == 0 {
			continue
		}
		w.Ops[op.String()] = n
		w.TotalOps += n
		switch op {
		case metrics.OpPut, metrics.OpDelete:
			writes += n
		case metrics.OpLookup, metrics.OpRangeLookup:
			secondary += n
		}
	}
	if w.TotalOps > 0 {
		w.WriteFraction = float64(writes) / float64(w.TotalOps)
		w.SecondaryQueryFraction = float64(secondary) / float64(w.TotalOps)
	}
	bounded := p.topK.Count()
	unbounded := p.unbounded.Load()
	if bounded+unbounded > 0 {
		w.UnboundedFraction = float64(unbounded) / float64(bounded+unbounded)
	}
	// TypicalTopK is the median requested K — unless most secondary
	// queries are unbounded, in which case the workload has no meaningful
	// top-K and the advisor's "small-K favours Lazy" rule must not apply.
	if bounded > unbounded && bounded > 0 {
		w.TypicalTopK = int(p.topK.Quantile(0.5))
	}
	if p.matched.Count() > 0 {
		w.MeanMatched = p.matched.Mean()
	}

	p.mu.Lock()
	if len(p.attrs) > 0 {
		w.TimeCorrelation = map[string]float64{}
		for attr, c := range p.attrs {
			if c.n < corrMinSamples {
				continue
			}
			corr := float64(c.concordant) / float64(c.n)
			w.TimeCorrelation[attr] = corr
			if corr >= corrThreshold {
				w.TimeCorrelated = true
			}
		}
	}
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		win := &p.ratios[op]
		if win.count == 0 {
			continue
		}
		if w.Ratios == nil {
			w.Ratios = map[string]RatioStats{}
		}
		w.Ratios[op.String()] = RatioStats{Count: win.count, Mean: win.mean(), Drifted: p.drifted[op]}
	}
	p.mu.Unlock()
	return w
}

// attrCorr estimates whether an attribute's ingested values arrive in
// (approximately) non-decreasing order — the paper's "time-correlated
// attribute" predicate that makes Embedded zone maps effective. It counts
// the fraction of consecutive sampled pairs that are concordant
// (value >= previous value).
type attrCorr struct {
	n          int64
	concordant int64
	last       string
	hasLast    bool
}

func (c *attrCorr) observe(value string) {
	if c.hasLast {
		c.n++
		if value >= c.last {
			c.concordant++
		}
	}
	c.last, c.hasLast = value, true
}

// ratioWindow is a fixed-size rolling window with an O(1) running sum.
type ratioWindow struct {
	buf   [ratioWindowSize]float64
	count int // observations retained (≤ ratioWindowSize)
	pos   int
	sum   float64
}

func (w *ratioWindow) add(v float64) {
	if w.count == len(w.buf) {
		w.sum -= w.buf[w.pos]
	} else {
		w.count++
	}
	w.buf[w.pos] = v
	w.sum += v
	w.pos = (w.pos + 1) % len(w.buf)
}

func (w *ratioWindow) mean() float64 {
	if w.count == 0 {
		return 0
	}
	return w.sum / float64(w.count)
}
