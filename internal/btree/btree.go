// Package btree implements an in-memory B-tree keyed by string.
//
// LevelDB++ uses it as the MemTable-side secondary index for the Embedded
// index (paper §3): while SSTables carry per-block bloom filters and zone
// maps, data still in the MemTable is indexed with "an in-memory B-tree on
// the secondary attribute(s)".
//
// Each tree key is a secondary attribute value; the associated value is an
// ordered set of postings (primary key + sequence number). The tree is not
// safe for concurrent mutation; the engine serializes writers and guards
// readers with its memtable swap lock.
package btree

import "sort"

// Posting records that the row with primary key Key was written with
// sequence number Seq while carrying the indexed attribute value.
type Posting struct {
	Key []byte
	Seq uint64
}

const degree = 32 // max children per node; max items = 2*degree-1

type item struct {
	key      string
	postings []Posting
}

type node struct {
	items    []item
	children []*node // empty for leaves
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is a B-tree from attribute value to posting list. The zero value is
// not usable; call New.
type Tree struct {
	root  *node
	size  int // number of distinct keys
	posts int // total postings
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &node{}} }

// Len returns the number of distinct attribute values stored.
func (t *Tree) Len() int { return t.size }

// Postings returns the total number of postings across all keys.
func (t *Tree) Postings() int { return t.posts }

// search returns the index of the first item >= key and whether it is an
// exact match.
func (n *node) search(key string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
	return i, i < len(n.items) && n.items[i].key == key
}

// Add appends a posting to the list for key, creating the key if absent.
// Postings arrive in increasing sequence order (the engine assigns
// monotonically increasing sequence numbers), so lists stay time-ordered.
func (t *Tree) Add(key string, p Posting) {
	t.posts++
	if existing := t.find(t.root, key); existing != nil {
		existing.postings = append(existing.postings, p)
		return
	}
	t.size++
	if len(t.root.items) >= 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	t.insertNonFull(t.root, item{key: key, postings: []Posting{p}})
}

func (t *Tree) find(n *node, key string) *item {
	for {
		i, ok := n.search(key)
		if ok {
			return &n.items[i]
		}
		if n.leaf() {
			return nil
		}
		n = n.children[i]
	}
}

// Get returns the postings recorded for key, newest last, or nil.
func (t *Tree) Get(key string) []Posting {
	if it := t.find(t.root, key); it != nil {
		return it.postings
	}
	return nil
}

func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	up := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[degree:]...)
		child.children = child.children[:degree]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (t *Tree) insertNonFull(n *node, it item) {
	for {
		i, ok := n.search(it.key)
		if ok {
			panic("btree: insertNonFull on existing key")
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = it
			return
		}
		if len(n.children[i].items) >= 2*degree-1 {
			n.splitChild(i)
			if it.key > n.items[i].key {
				i++
			}
		}
		n = n.children[i]
	}
}

// AscendRange calls fn for every key in the inclusive range [lo, hi] in
// ascending order, stopping early if fn returns false.
func (t *Tree) AscendRange(lo, hi string, fn func(key string, postings []Posting) bool) {
	if hi < lo {
		return
	}
	t.ascend(t.root, lo, &hi, fn)
}

// Ascend calls fn for every key >= lo in ascending order, stopping early
// if fn returns false.
func (t *Tree) Ascend(lo string, fn func(key string, postings []Posting) bool) {
	t.ascend(t.root, lo, nil, fn)
}

func (t *Tree) ascend(n *node, lo string, hi *string, fn func(string, []Posting) bool) bool {
	i, _ := n.search(lo)
	for ; i < len(n.items); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if hi != nil && n.items[i].key > *hi {
			return true
		}
		if !fn(n.items[i].key, n.items[i].postings) {
			return false
		}
	}
	if !n.leaf() {
		return t.ascend(n.children[len(n.items)], lo, hi, fn)
	}
	return true
}
