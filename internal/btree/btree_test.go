package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Postings() != 0 {
		t.Fatal("empty tree has entries")
	}
	if got := tr.Get("x"); got != nil {
		t.Fatalf("Get on empty = %v", got)
	}
	called := false
	tr.Ascend("", func(string, []Posting) bool { called = true; return true })
	if called {
		t.Fatal("AscendRange on empty tree called fn")
	}
}

func TestAddGet(t *testing.T) {
	tr := New()
	for i := 0; i < 2000; i++ {
		tr.Add(fmt.Sprintf("u%05d", i%100), Posting{Key: []byte(fmt.Sprintf("t%d", i)), Seq: uint64(i)})
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if tr.Postings() != 2000 {
		t.Fatalf("Postings = %d", tr.Postings())
	}
	ps := tr.Get("u00042")
	if len(ps) != 20 {
		t.Fatalf("postings for u00042 = %d, want 20", len(ps))
	}
	// Postings must be in increasing sequence order.
	for i := 1; i < len(ps); i++ {
		if ps[i].Seq <= ps[i-1].Seq {
			t.Fatal("postings out of sequence order")
		}
	}
}

func TestManyDistinctKeysStaySorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	keys := map[string]bool{}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(1<<30))
		keys[k] = true
		tr.Add(k, Posting{Seq: uint64(i)})
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	var got []string
	tr.Ascend("", func(k string, _ []Posting) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(keys))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration not sorted")
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 {
		tr.Add(fmt.Sprintf("k%02d", i), Posting{Seq: uint64(i)})
	}
	collect := func(lo, hi string) []string {
		var out []string
		tr.AscendRange(lo, hi, func(k string, _ []Posting) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	got := collect("k10", "k20")
	want := []string{"k10", "k12", "k14", "k16", "k18", "k20"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range [k10,k20] = %v", got)
	}
	if got := collect("k11", "k13"); fmt.Sprint(got) != "[k12]" {
		t.Fatalf("range [k11,k13] = %v", got)
	}
	if got := collect("k99", "k99"); len(got) != 0 {
		t.Fatalf("range past end = %v", got)
	}
	var open []string
	tr.Ascend("k94", func(k string, _ []Posting) bool { open = append(open, k); return true })
	if fmt.Sprint(open) != "[k94 k96 k98]" {
		t.Fatalf("Ascend open-ended = %v", open)
	}
	if got := collect("k97", "k01"); len(got) != 0 {
		t.Fatalf("inverted range = %v", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Add(fmt.Sprintf("k%02d", i), Posting{})
	}
	n := 0
	tr.Ascend("", func(string, []Posting) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQuickMatchesReferenceMap(t *testing.T) {
	prop := func(ops []uint16) bool {
		tr := New()
		ref := map[string][]uint64{}
		for seq, op := range ops {
			k := fmt.Sprintf("k%03d", op%500)
			tr.Add(k, Posting{Seq: uint64(seq)})
			ref[k] = append(ref[k], uint64(seq))
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, seqs := range ref {
			got := tr.Get(k)
			if len(got) != len(seqs) {
				return false
			}
			for i := range seqs {
				if got[i].Seq != seqs[i] {
					return false
				}
			}
		}
		// Full ascent matches the sorted reference keys.
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		ok := true
		tr.Ascend("", func(k string, _ []Posting) bool {
			if i >= len(want) || k != want[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Add(fmt.Sprintf("u%07d", i%100000), Posting{Seq: uint64(i)})
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Add(fmt.Sprintf("u%07d", i), Posting{Seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("u%07d", i%100000))
	}
}
