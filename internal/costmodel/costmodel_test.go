package costmodel

import (
	"math"
	"testing"
)

func TestPaperWAMFNumbers(t *testing.T) {
	// Paper §5.2.1: PL_S = 30 (UserID), L = 4, N = 10 →
	// WAMF_Eager = 30·22·3 = 1980... the paper prints 4290 for PL_S·22·(L−1)
	// with its own constants folded differently; we verify our formula's
	// internal consistency instead: Eager = PL_S × Lazy.
	p := Params{Levels: 4, LevelRatio: 10, AvgPostingLen: 30}
	lazy := WAMFLazy(p)
	if lazy != 2*11*3 {
		t.Fatalf("WAMFLazy = %g, want 66", lazy)
	}
	eager := WAMFEager(p)
	if eager != 30*lazy {
		t.Fatalf("WAMFEager = %g, want %g", eager, 30*lazy)
	}
	if WAMFComposite(p) != lazy {
		t.Fatal("Composite WAMF must equal Lazy")
	}
}

func TestWAMFGrowsWithDepthAndListLength(t *testing.T) {
	shallow := Params{Levels: 3, AvgPostingLen: 10}
	deep := Params{Levels: 6, AvgPostingLen: 10}
	if WAMFEager(deep) <= WAMFEager(shallow) {
		t.Fatal("WAMF must grow with levels")
	}
	longer := Params{Levels: 3, AvgPostingLen: 100}
	if WAMFEager(longer) <= WAMFEager(shallow) {
		t.Fatal("Eager WAMF must grow with posting length")
	}
	if WAMFLazy(longer) != WAMFLazy(shallow) {
		t.Fatal("Lazy WAMF must not depend on posting length")
	}
}

func TestEmbeddedLookupIO(t *testing.T) {
	p := Params{Levels: 3, LevelRatio: 10, BlocksL0: 100, BitsPerKey: 10}
	got := EmbeddedLookupIO(p, 10, 2)
	// K+ε = 12 plus fp·(100+1000+10000).
	fp := p.FalsePositiveRate()
	want := 12 + fp*11100
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EmbeddedLookupIO = %g, want %g", got, want)
	}
	// Bigger filters → fewer false-positive reads.
	p20 := p
	p20.BitsPerKey = 20
	if EmbeddedLookupIO(p20, 10, 2) >= got {
		t.Fatal("more bits/key must lower lookup I/O")
	}
}

func TestEmbeddedRangeLookupIO(t *testing.T) {
	p := Params{Levels: 3}
	if got := EmbeddedRangeLookupIO(p, 10, 2, true, 100000); got != 12 {
		t.Fatalf("time-correlated range = %g, want 12", got)
	}
	if got := EmbeddedRangeLookupIO(p, 10, 2, false, 100000); got != 100000 {
		t.Fatalf("uncorrelated range = %g, want full scan", got)
	}
}

func TestStandAloneLookupOrdering(t *testing.T) {
	p := Params{Levels: 4}
	k := 10
	if !(EagerLookupIO(p, k) < LazyLookupIO(p, k)) {
		t.Fatal("Eager LOOKUP I/O must be below Lazy (1 vs L index reads)")
	}
	if LazyLookupIO(p, k) != CompositeLookupIO(p, k) {
		t.Fatal("Lazy and Composite share K+L lookup I/O")
	}
}

func TestTable5Shape(t *testing.T) {
	p := Params{Levels: 4, NumAttrs: 2, AvgPostingLen: 30, RangeBlocks: 7}
	rows := Table5(p, 10)
	if len(rows) != 8 {
		t.Fatalf("Table 5 rows = %d", len(rows))
	}
	byKey := map[string]StandAloneCost{}
	for _, r := range rows {
		byKey[r.Op+"/"+r.Index] = r
	}
	// GET: no overhead for any stand-alone index.
	if g := byKey["GET/All"]; g.DataReads != 0 || g.IndexReads != 0 {
		t.Fatalf("GET row = %+v", g)
	}
	// PUT: Eager reads the index table, Lazy/Composite do not.
	if byKey["PUT/DEL/Eager"].IndexReads != 2 {
		t.Fatal("Eager PUT must read l index tables")
	}
	if byKey["PUT/DEL/Lazy"].IndexReads != 0 || byKey["PUT/DEL/Composite"].IndexReads != 0 {
		t.Fatal("Lazy/Composite PUT must not read")
	}
	// WAMF ordering.
	if byKey["PUT/DEL/Eager"].WAMF <= byKey["PUT/DEL/Lazy"].WAMF {
		t.Fatal("Eager WAMF must dominate")
	}
	// LOOKUP index reads: Eager 1, others L.
	if byKey["LOOKUP/Eager"].IndexReads != 1 || byKey["LOOKUP/Lazy"].IndexReads != 4 {
		t.Fatal("LOOKUP index-read costs wrong")
	}
	if byKey["RANGELOOKUP/All"].IndexReads != 7 {
		t.Fatal("RANGELOOKUP must read M index blocks")
	}
	// String renders without panicking and mentions the op.
	if s := rows[1].String(); s == "" {
		t.Fatal("empty row string")
	}
}

func TestTable3Shape(t *testing.T) {
	p := Params{Levels: 3, BlocksL0: 50}
	rows := Table3(p, 10, 2, 5000, false)
	if len(rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(rows))
	}
	if rows[0].ReadIO != 1 || rows[1].WriteIO != 1 {
		t.Fatal("GET/PUT costs must be 1 I/O")
	}
	if rows[3].ReadIO != 5000 {
		t.Fatal("uncorrelated RANGELOOKUP must equal full scan")
	}
	rows = Table3(p, 10, 2, 5000, true)
	if rows[3].ReadIO != 12 {
		t.Fatal("time-correlated RANGELOOKUP must be K+ε")
	}
}
