// Package costmodel implements the paper's analytic worst-case I/O and
// write-amplification formulas (Tables 3 and 5, Sections 3.1 and 4.3), so
// experiments can print paper-predicted costs next to measured ones.
package costmodel

import (
	"fmt"

	"leveldbpp/internal/bloom"
)

// Params are the model inputs (paper Table 6 notation).
type Params struct {
	Levels        int     // L: number of levels in the store
	LevelRatio    int     // N: size ratio between consecutive levels (10)
	BlocksL0      int     // b: number of blocks in level 0
	BitsPerKey    int     // sizes f_p, the bloom false-positive rate
	AvgPostingLen float64 // PL_S: average posting-list length
	NumAttrs      int     // l: number of indexed secondary attributes
	RangeBlocks   int     // M: index-table blocks holding keys in range
	// LevelBlocks, when set, replaces the geometric b·N^i series with the
	// actual per-level block counts observed in a live tree (EXPLAIN's
	// "live Params" derivation, DESIGN.md §5.7). LevelBlocks[0] is L0.
	LevelBlocks []int `json:",omitempty"`
}

func (p Params) withDefaults() Params {
	if p.LevelRatio <= 0 {
		p.LevelRatio = 10
	}
	if p.NumAttrs <= 0 {
		p.NumAttrs = 1
	}
	if p.BitsPerKey <= 0 {
		p.BitsPerKey = 10
	}
	return p
}

// FalsePositiveRate returns f_p for the configured bloom size.
func (p Params) FalsePositiveRate() float64 {
	return bloom.FalsePositiveRate(p.withDefaults().BitsPerKey)
}

// EmbeddedLookupIO is Table 3's LOOKUP bound: (K+ε) matched-block reads
// plus false-positive reads f_p·b·Σ N^i over the L scanned levels.
// epsilon models the "scan to the end of the level" overshoot.
func EmbeddedLookupIO(p Params, k, epsilon int) float64 {
	p = p.withDefaults()
	fp := p.FalsePositiveRate()
	fpCost := 0.0
	if len(p.LevelBlocks) > 0 {
		for _, b := range p.LevelBlocks {
			fpCost += fp * float64(b)
		}
		return float64(k+epsilon) + fpCost
	}
	levelBlocks := float64(p.BlocksL0)
	for i := 0; i < p.Levels; i++ {
		fpCost += fp * levelBlocks
		levelBlocks *= float64(p.LevelRatio)
	}
	return float64(k+epsilon) + fpCost
}

// EmbeddedRangeLookupIO is Table 3's RANGELOOKUP bound. For a
// time-correlated attribute zone maps prune to K+ε; otherwise the worst
// case equals a full scan (totalBlocks).
func EmbeddedRangeLookupIO(p Params, k, epsilon int, timeCorrelated bool, totalBlocks int) float64 {
	if timeCorrelated {
		return float64(k + epsilon)
	}
	return float64(totalBlocks)
}

// WAMFEager is §4.3's write-amplification for the Eager index:
// PL_S · 2·(N+1) · (L−1). With N=10 the paper writes it as PL_S·22·(L−1).
func WAMFEager(p Params) float64 {
	p = p.withDefaults()
	return p.AvgPostingLen * 2 * float64(p.LevelRatio+1) * float64(p.Levels-1)
}

// WAMFLazy is the Lazy/Composite write amplification 2·(N+1)·(L−1) —
// identical to a plain LevelDB table, since every write is a simple
// key-value append.
func WAMFLazy(p Params) float64 {
	p = p.withDefaults()
	return 2 * float64(p.LevelRatio+1) * float64(p.Levels-1)
}

// WAMFComposite equals WAMFLazy (paper §4.3).
func WAMFComposite(p Params) float64 { return WAMFLazy(p) }

// StandAloneCost is one row of Table 5: worst-case disk accesses split by
// table and direction.
type StandAloneCost struct {
	Op             string
	Index          string
	DataReads      float64
	DataWrites     float64
	IndexReads     float64
	IndexWrites    float64
	WAMF           float64
	CPUSignificant bool // the paper's ** marker
}

// Table5 materializes the paper's Table 5 for the given parameters and a
// query matching kMatched entries.
func Table5(p Params, kMatched int) []StandAloneCost {
	p = p.withDefaults()
	l := float64(p.NumAttrs)
	k := float64(kMatched)
	return []StandAloneCost{
		{Op: "GET", Index: "All"},
		{Op: "PUT/DEL", Index: "Eager", DataWrites: 1, IndexReads: l, IndexWrites: l, WAMF: WAMFEager(p)},
		{Op: "PUT/DEL", Index: "Lazy", DataWrites: 1, IndexWrites: l, WAMF: WAMFLazy(p), CPUSignificant: true},
		{Op: "PUT/DEL", Index: "Composite", DataWrites: 1, IndexWrites: l, WAMF: WAMFComposite(p)},
		{Op: "LOOKUP", Index: "Eager", DataReads: k, IndexReads: 1},
		{Op: "LOOKUP", Index: "Lazy", DataReads: k, IndexReads: float64(p.Levels), CPUSignificant: true},
		{Op: "LOOKUP", Index: "Composite", DataReads: k, IndexReads: float64(p.Levels)},
		{Op: "RANGELOOKUP", Index: "All", DataReads: k, IndexReads: float64(p.RangeBlocks)},
	}
}

// Table3 is the Embedded index cost table (paper Table 3).
type EmbeddedCost struct {
	Op      string
	ReadIO  float64
	WriteIO float64
	Note    string
}

// Table3 materializes the paper's Table 3.
func Table3(p Params, k, epsilon, totalBlocks int, timeCorrelated bool) []EmbeddedCost {
	return []EmbeddedCost{
		{Op: "GET", ReadIO: 1},
		{Op: "PUT/DEL", WriteIO: 1},
		{Op: "LOOKUP", ReadIO: EmbeddedLookupIO(p, k, epsilon), Note: "CPU cost of filter checks not negligible"},
		{Op: "RANGELOOKUP", ReadIO: EmbeddedRangeLookupIO(p, k, epsilon, timeCorrelated, totalBlocks),
			Note: rangeNote(timeCorrelated)},
	}
}

func rangeNote(timeCorrelated bool) string {
	if timeCorrelated {
		return "time-correlated attribute: zone maps prune to K+ε"
	}
	return "non-time-correlated: worst case equals full scan"
}

// EagerLookupIO and friends are the Table 5 LOOKUP I/O totals
// (K' + 1 / K' + L) used in EXPERIMENTS.md comparisons.
func EagerLookupIO(p Params, kMatched int) float64 { return float64(kMatched) + 1 }

// LazyLookupIO is K' + L.
func LazyLookupIO(p Params, kMatched int) float64 {
	return float64(kMatched) + float64(p.withDefaults().Levels)
}

// CompositeLookupIO is K' + L.
func CompositeLookupIO(p Params, kMatched int) float64 { return LazyLookupIO(p, kMatched) }

// String renders a StandAloneCost row.
func (c StandAloneCost) String() string {
	star := ""
	if c.CPUSignificant {
		star = " **"
	}
	return fmt.Sprintf("%-12s %-10s data(r=%g w=%g) index(r=%g w=%g) WAMF=%g%s",
		c.Op, c.Index, c.DataReads, c.DataWrites, c.IndexReads, c.IndexWrites, c.WAMF, star)
}
