package postings

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := List{{Key: "t4", Seq: 4}, {Key: "t1", Seq: 1, Del: true}}
	got, err := Decode(Encode(l))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != l[0] || got[1] != l[1] {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeEmpty(t *testing.T) {
	if l, err := Decode(nil); err != nil || l != nil {
		t.Fatalf("Decode(nil) = %v, %v", l, err)
	}
	if l, err := Decode([]byte("[]")); err != nil || len(l) != 0 {
		t.Fatalf("Decode([]) = %v, %v", l, err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("corrupt input accepted")
	}
}

func TestSingle(t *testing.T) {
	l, err := Decode(Single("t9", 9, false))
	if err != nil || len(l) != 1 || l[0].Key != "t9" || l[0].Seq != 9 || l[0].Del {
		t.Fatalf("Single = %+v, %v", l, err)
	}
}

func TestMergeNewestWinsPerKey(t *testing.T) {
	// Fragments newest-first, as compaction sees them.
	f1 := List{{Key: "t3", Seq: 30}, {Key: "t1", Seq: 25}} // newer fragment
	f2 := List{{Key: "t1", Seq: 10}, {Key: "t2", Seq: 5}}  // older fragment
	got := Merge([]List{f1, f2}, false)
	if len(got) != 3 {
		t.Fatalf("merged %d entries: %+v", len(got), got)
	}
	// Newest-first global order: t3(30), t1(25), t2(5).
	want := List{{Key: "t3", Seq: 30}, {Key: "t1", Seq: 25}, {Key: "t2", Seq: 5}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeDeletionMarkers(t *testing.T) {
	f1 := List{{Key: "t1", Seq: 20, Del: true}}
	f2 := List{{Key: "t1", Seq: 10}, {Key: "t2", Seq: 5}}
	// Not bottom: marker survives so deeper fragments stay shadowed.
	got := Merge([]List{f1, f2}, false)
	if len(got) != 2 || !got[0].Del || got[0].Key != "t1" {
		t.Fatalf("marker lost: %+v", got)
	}
	// Bottom: marker (and the entry it shadows) disappear.
	got = Merge([]List{f1, f2}, true)
	if len(got) != 1 || got[0].Key != "t2" {
		t.Fatalf("bottom merge = %+v", got)
	}
}

func TestAddSupersedes(t *testing.T) {
	l := List{{Key: "t1", Seq: 5}, {Key: "t2", Seq: 3}}
	l = Add(l, "t1", 9, false)
	if len(l) != 2 || l[0].Key != "t1" || l[0].Seq != 9 || l[1].Key != "t2" {
		t.Fatalf("Add = %+v", l)
	}
	l = Add(l, "t3", 12, true)
	if len(l) != 3 || l[0].Key != "t3" || !l[0].Del {
		t.Fatalf("Add del = %+v", l)
	}
}

func TestLive(t *testing.T) {
	l := List{{Key: "a", Seq: 3}, {Key: "b", Seq: 2, Del: true}, {Key: "c", Seq: 1}}
	live := Live(l)
	if len(live) != 2 || live[0].Key != "a" || live[1].Key != "c" {
		t.Fatalf("Live = %+v", live)
	}
}

func TestQuickMergeInvariants(t *testing.T) {
	prop := func(keys []uint8, seqs []uint16) bool {
		// Build random fragments.
		var frags []List
		cur := List{}
		for i := range keys {
			seq := uint64(0)
			if i < len(seqs) {
				seq = uint64(seqs[i])
			}
			cur = append(cur, Entry{Key: string(rune('a' + keys[i]%16)), Seq: seq, Del: keys[i]%7 == 0})
			if len(cur) == 3 {
				frags = append(frags, cur)
				cur = List{}
			}
		}
		frags = append(frags, cur)
		got := Merge(frags, false)
		// Invariant 1: newest-first order.
		for i := 1; i < len(got); i++ {
			if got[i].Seq > got[i-1].Seq {
				return false
			}
		}
		// Invariant 2: unique keys.
		seen := map[string]bool{}
		for _, e := range got {
			if seen[e.Key] {
				return false
			}
			seen[e.Key] = true
		}
		// Invariant 3: each survivor has the max seq for its key.
		for _, e := range got {
			for _, f := range frags {
				for _, o := range f {
					if o.Key == e.Key && o.Seq > e.Seq {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMergeLargeLists(b *testing.B) {
	var frags []List
	for f := 0; f < 4; f++ {
		l := make(List, 1000)
		for i := range l {
			l[i] = Entry{Key: string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)), Seq: uint64(f*1000 + i)}
		}
		frags = append(frags, l)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(frags, false)
	}
}
