// Package postings implements the posting lists used by the Stand-Alone
// Eager and Lazy indexes (paper §4.1): for each secondary attribute
// value, an index table stores the list of primary keys carrying that
// value, newest first, each entry stamped with the write's sequence
// number ("we attach a sequence number to each entry in the postings list
// on every write").
//
// Two on-disk encodings coexist (DESIGN.md §5.6):
//
//   - v1, the seed format: a single JSON array of {k, s, d} objects.
//   - v2: a magic byte followed by varint-encoded entries with
//     delta-encoded sequence numbers and length-prefixed keys, decodable
//     in place via Cursor without materializing a []Entry slice.
//
// Readers sniff the leading byte, so lists of either format — and mixed
// v1/v2 fragments inside one merge — are always readable. Writers pick
// the output encoding through Format.
//
// Lazy-index deletions are represented as in the paper: "DEL ... maintains
// a deletion marker which is used during merge in compaction to remove the
// deleted entry."
package postings

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Entry is one posting: a primary key, the sequence number of the write
// that produced it, and an optional deletion marker.
type Entry struct {
	Key string `json:"k"`
	Seq uint64 `json:"s"`
	Del bool   `json:"d,omitempty"`
}

// List is a posting list ordered newest (highest Seq) first.
type List []Entry

// Format selects the posting-list encoding written by the index write
// paths. Decoders never need it: they sniff the leading byte.
type Format uint8

// The posting-list formats.
const (
	// FormatUnset resolves to FormatV2 (the default).
	FormatUnset Format = iota
	// FormatV1 is the seed's JSON-array encoding, kept as an escape
	// hatch and for byte-compatibility ablations.
	FormatV1
	// FormatV2 is the binary varint/delta encoding (DESIGN.md §5.6).
	FormatV2
)

// OrDefault resolves FormatUnset to the default format (v2).
func (f Format) OrDefault() Format {
	if f == FormatUnset {
		return FormatV2
	}
	return f
}

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	case FormatUnset:
		return "unset"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// ParseFormat parses the -postings-format flag value. The empty string
// and "v2" select the default binary format; "v1" the seed JSON format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "v2":
		return FormatV2, nil
	case "v1":
		return FormatV1, nil
	default:
		return FormatUnset, fmt.Errorf("postings: unknown format %q (want v1 or v2)", s)
	}
}

// Encode serializes the list in the v1 JSON encoding — the paper's
// representation ("Posting lists can be serialized as a single JSON
// array"). Use EncodeFormat to select the encoding.
func Encode(l List) []byte {
	if len(l) == 0 {
		return []byte("[]")
	}
	data, err := json.Marshal(l)
	if err != nil {
		// A List of plain structs cannot fail to marshal.
		panic(fmt.Sprintf("postings: marshal: %v", err))
	}
	return data
}

// EncodeFormat serializes the list in the requested format.
func EncodeFormat(l List, f Format) []byte {
	if f.OrDefault() == FormatV1 {
		return Encode(l)
	}
	return AppendList(nil, l)
}

// Decode parses a serialized posting list of either format.
func Decode(data []byte) (List, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if data[0] == MagicV2 {
		return decodeV2(data)
	}
	var l List
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("postings: decode: %w", err)
	}
	return l, nil
}

// Single returns an encoded one-entry v1 list — the fragment a Lazy-index
// PUT writes under FormatV1. AppendSingle is the allocation-free v2
// equivalent.
func Single(key string, seq uint64, del bool) []byte {
	return Encode(List{{Key: key, Seq: seq, Del: del}})
}

// Merge combines decoded fragments ordered newest-fragment-first into one
// list: per primary key only the newest entry survives, and when
// dropDeleted is true (bottom-level compaction) surviving deletion markers
// are removed. The result is ordered newest first. MergeStreams performs
// the same merge directly over encoded fragments.
func Merge(fragments []List, dropDeleted bool) List {
	newest := map[string]Entry{}
	for _, frag := range fragments {
		for _, e := range frag {
			if cur, ok := newest[e.Key]; !ok || e.Seq > cur.Seq {
				newest[e.Key] = e
			}
		}
	}
	out := make(List, 0, len(newest))
	for _, e := range newest {
		if dropDeleted && e.Del {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Add prepends a new posting for key with seq, superseding any existing
// entry for the same primary key — the Eager index's read-modify-write
// step. The input's newest-first order is preserved without re-sorting;
// AppendAdd performs the same update directly on encoded bytes.
func Add(l List, key string, seq uint64, del bool) List {
	out := make(List, 0, len(l)+1)
	out = append(out, Entry{Key: key, Seq: seq, Del: del})
	for _, e := range l {
		if e.Key != key {
			out = append(out, e)
		}
	}
	return out
}

// Live returns the non-deleted entries, preserving order.
func Live(l List) List {
	out := make(List, 0, len(l))
	for _, e := range l {
		if !e.Del {
			out = append(out, e)
		}
	}
	return out
}
