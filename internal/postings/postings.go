// Package postings implements the JSON-serialized posting lists used by
// the Stand-Alone Eager and Lazy indexes (paper §4.1): for each secondary
// attribute value, an index table stores the list of primary keys carrying
// that value, newest first, each entry stamped with the write's sequence
// number ("we attach a sequence number to each entry in the postings list
// on every write").
//
// Lazy-index deletions are represented as in the paper: "DEL ... maintains
// a deletion marker which is used during merge in compaction to remove the
// deleted entry."
package postings

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Entry is one posting: a primary key, the sequence number of the write
// that produced it, and an optional deletion marker.
type Entry struct {
	Key string `json:"k"`
	Seq uint64 `json:"s"`
	Del bool   `json:"d,omitempty"`
}

// List is a posting list ordered newest (highest Seq) first.
type List []Entry

// Encode serializes the list as a single JSON array — the paper's
// representation ("Posting lists can be serialized as a single JSON
// array").
func Encode(l List) []byte {
	if len(l) == 0 {
		return []byte("[]")
	}
	data, err := json.Marshal(l)
	if err != nil {
		// A List of plain structs cannot fail to marshal.
		panic(fmt.Sprintf("postings: marshal: %v", err))
	}
	return data
}

// Decode parses a serialized posting list.
func Decode(data []byte) (List, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var l List
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("postings: decode: %w", err)
	}
	return l, nil
}

// Single returns an encoded one-entry list — the fragment a Lazy-index
// PUT writes.
func Single(key string, seq uint64, del bool) []byte {
	return Encode(List{{Key: key, Seq: seq, Del: del}})
}

// Merge combines fragments ordered newest-fragment-first into one list:
// per primary key only the newest entry survives, and when dropDeleted is
// true (bottom-level compaction) surviving deletion markers are removed.
// The result is ordered newest first.
func Merge(fragments []List, dropDeleted bool) List {
	newest := map[string]Entry{}
	for _, frag := range fragments {
		for _, e := range frag {
			if cur, ok := newest[e.Key]; !ok || e.Seq > cur.Seq {
				newest[e.Key] = e
			}
		}
	}
	out := make(List, 0, len(newest))
	for _, e := range newest {
		if dropDeleted && e.Del {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Add prepends a new posting for key with seq, superseding any existing
// entry for the same primary key — the Eager index's read-modify-write
// step. The result stays newest-first.
func Add(l List, key string, seq uint64, del bool) List {
	out := make(List, 0, len(l)+1)
	out = append(out, Entry{Key: key, Seq: seq, Del: del})
	for _, e := range l {
		if e.Key != key {
			out = append(out, e)
		}
	}
	return out
}

// Live returns the non-deleted entries, preserving order.
func Live(l List) List {
	out := make(List, 0, len(l))
	for _, e := range l {
		if !e.Del {
			out = append(out, e)
		}
	}
	return out
}
