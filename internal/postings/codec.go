package postings

import (
	"encoding/binary"
	"errors"
)

// Format v2 layout (DESIGN.md §5.6):
//
//	list  := MagicV2 entry*
//	entry := uvarint(len(key)<<1 | del) varint(seq - prevSeq) key-bytes
//
// Sequence numbers are delta-encoded against the previous entry (prevSeq
// starts at 0) with zig-zag varints, so the newest-first invariant — each
// next entry older by a handful of sequence numbers — costs one or two
// bytes per entry instead of a JSON object. Deltas use wrap-around uint64
// arithmetic, so arbitrary (even unsorted) lists round-trip exactly.
// There is no count header: a Cursor iterates until the buffer is
// exhausted, which is what lets AppendSingle emit a fragment and
// MergeStreams append entries without knowing the total up front.

// MagicV2 is the first byte of every v2-encoded posting list. A v1 JSON
// list always starts with '[' (0x5B), so a single-byte sniff
// distinguishes the formats.
const MagicV2 = 0x02

// ErrCorrupt reports a structurally invalid v2 posting list: a truncated
// varint, or a key length running past the buffer.
var ErrCorrupt = errors.New("postings: corrupt v2 posting list")

// appendEntry appends one v2 entry to dst and returns the extended buffer
// and the entry's sequence number (the caller's next prevSeq).
//
//lsm:hotpath
func appendEntry(dst []byte, prevSeq uint64, key []byte, seq uint64, del bool) ([]byte, uint64) {
	u := uint64(len(key)) << 1
	if del {
		u |= 1
	}
	dst = binary.AppendUvarint(dst, u)
	dst = binary.AppendVarint(dst, int64(seq-prevSeq))
	dst = append(dst, key...)
	return dst, seq
}

// AppendList appends the v2 encoding of l to dst.
func AppendList(dst []byte, l List) []byte {
	dst = append(dst, MagicV2)
	prev := uint64(0)
	for i := range l {
		dst, prev = appendEntry(dst, prev, []byte(l[i].Key), l[i].Seq, l[i].Del)
	}
	return dst
}

// AppendSingle appends a one-entry fragment for key to dst — the fragment
// a Lazy-index PUT writes. With FormatV2 and a dst of sufficient capacity
// the call performs zero heap allocations.
//
//lsm:hotpath
func AppendSingle(dst []byte, key string, seq uint64, del bool, f Format) []byte {
	if f.OrDefault() == FormatV1 {
		return append(dst, Single(key, seq, del)...)
	}
	dst = append(dst, MagicV2)
	u := uint64(len(key)) << 1
	if del {
		u |= 1
	}
	dst = binary.AppendUvarint(dst, u)
	dst = binary.AppendVarint(dst, int64(seq))
	return append(dst, key...)
}

// decodeV2 materializes a v2 list (Decode's slow path; hot readers use a
// Cursor instead).
func decodeV2(data []byte) (List, error) {
	var c Cursor
	if err := c.Reset(data); err != nil {
		return nil, err
	}
	var l List
	for c.Next() {
		l = append(l, Entry{Key: string(c.Key()), Seq: c.Seq(), Del: c.Del()})
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// Cursor iterates a posting list in place over its encoded bytes. For v2
// input, Key returns a sub-slice of the encoded buffer and Next performs
// no heap allocation, so a LOOKUP that stops after K entries never
// decodes — or pays for — the tail of the list. For v1 input, Reset
// decodes the JSON up front (the seed cost) and Next replays it.
//
// A Cursor may be reused across lists via Reset; its internal buffers are
// retained. The encoded buffer must stay immutable while the cursor reads
// from it, and Key's result aliases that buffer (copy it to retain it
// past the iteration).
type Cursor struct {
	rest []byte // unread v2 bytes
	prev uint64 // previous entry's seq (delta base)

	list   List // decoded v1 entries (nil for v2 input)
	idx    int  // next v1 entry
	keyBuf []byte

	key []byte
	seq uint64
	del bool
	err error

	entries int64
	bytes   int64
}

// Reset points the cursor at a new encoded list. For v1 input the JSON is
// decoded immediately and its cost (allocations, full-list scan) is paid
// here; a decode failure is returned and also latched into Err.
func (c *Cursor) Reset(data []byte) error {
	c.rest = nil
	c.prev = 0
	c.list = nil
	c.idx = 0
	c.key = nil
	c.seq = 0
	c.del = false
	c.err = nil
	c.entries = 0
	c.bytes = 0
	if len(data) == 0 {
		return nil
	}
	if data[0] == MagicV2 {
		c.rest = data[1:]
		c.bytes = 1
		return nil
	}
	l, err := Decode(data)
	if err != nil {
		c.err = err
		return err
	}
	c.list = l
	c.bytes = int64(len(data))
	c.entries = int64(len(l)) // JSON decodes all-or-nothing
	if l == nil {
		c.list = List{} // non-nil sentinel: v1 mode with zero entries
	}
	return nil
}

// Next advances to the next entry, reporting false at the end of the list
// or on corruption (check Err).
//
//lsm:hotpath
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	if c.list != nil {
		if c.idx >= len(c.list) {
			return false
		}
		e := &c.list[c.idx]
		c.idx++
		c.keyBuf = append(c.keyBuf[:0], e.Key...)
		c.key, c.seq, c.del = c.keyBuf, e.Seq, e.Del
		return true
	}
	if len(c.rest) == 0 {
		return false
	}
	u, n := binary.Uvarint(c.rest)
	if n <= 0 {
		c.err = ErrCorrupt
		return false
	}
	d, m := binary.Varint(c.rest[n:])
	if m <= 0 {
		c.err = ErrCorrupt
		return false
	}
	hdr := n + m
	keyLen := u >> 1
	if keyLen > uint64(len(c.rest)-hdr) {
		c.err = ErrCorrupt
		return false
	}
	end := hdr + int(keyLen)
	c.key = c.rest[hdr:end:end]
	c.del = u&1 != 0
	c.seq = c.prev + uint64(d)
	c.prev = c.seq
	c.rest = c.rest[end:]
	c.entries++
	c.bytes += int64(end)
	return true
}

// Key returns the current entry's primary key. For v2 input it aliases
// the encoded buffer; copy to retain.
func (c *Cursor) Key() []byte { return c.key }

// Seq returns the current entry's sequence number.
func (c *Cursor) Seq() uint64 { return c.seq }

// Del reports whether the current entry is a deletion marker.
func (c *Cursor) Del() bool { return c.del }

// Err returns the corruption error that ended iteration, if any.
func (c *Cursor) Err() error { return c.err }

// EntriesDecoded returns the number of entries materialized since Reset:
// for v2 input, the consumed prefix only; for v1 input, the whole list
// (JSON decodes all-or-nothing at Reset).
func (c *Cursor) EntriesDecoded() int64 { return c.entries }

// BytesDecoded returns the encoded bytes consumed since Reset. v1 input
// charges the whole buffer at Reset (JSON decodes all-or-nothing); v2
// input is charged per entry, so early termination is visible here.
func (c *Cursor) BytesDecoded() int64 { return c.bytes }
