package postings

import (
	"fmt"
	"testing"
)

// benchFragments builds nFrags fragments of size entries each in format
// f, newest-first within each fragment and across fragments (fragment 0
// carries the highest sequence numbers), with disjoint primary keys —
// the shape the Lazy index's strata hand to LOOKUP and compaction.
func benchFragments(nFrags, size int, f Format) [][]byte {
	var frags [][]byte
	seq := uint64(nFrags*size + 1)
	for fr := 0; fr < nFrags; fr++ {
		l := make(List, size)
		for i := range l {
			seq--
			l[i] = Entry{Key: fmt.Sprintf("t%07d", fr*size+i), Seq: seq}
		}
		frags = append(frags, EncodeFormat(l, f))
	}
	return frags
}

// BenchmarkPostingsMerge is the Lazy LOOKUP / compaction decode+merge in
// isolation: a 4-way merge of size-entry fragments into a reused output
// buffer, v1 (seed JSON) vs v2 (binary varint). This is the number the
// PR's acceptance bar reads at entries=100.
func BenchmarkPostingsMerge(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		for _, f := range []Format{FormatV1, FormatV2} {
			b.Run(fmt.Sprintf("entries=%d/%s", size, f), func(b *testing.B) {
				frags := benchFragments(4, size, f)
				var sc MergeScratch
				var out []byte
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					out, err = sc.Merge(out[:0], frags, false, f)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
