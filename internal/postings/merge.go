package postings

import (
	"bytes"
	"encoding/binary"
)

// Streaming merge over encoded fragments (DESIGN.md §5.6). The Lazy
// index's write-merge, compaction merge and RANGELOOKUP pooling all
// reduce to the same operation Merge performs on decoded lists — newest
// entry per primary key wins, optional tombstone elision — but paying a
// []Entry materialization per fragment on every call is exactly the
// ingestion overhead the paper attributes to the stand-alone indexes.
// MergeScratch performs the k-way merge directly from the encoded bytes:
// fragments are newest-first within themselves (the write path's
// invariant), so walking all cursors in globally descending sequence
// order makes the first occurrence of each key the winner, and the output
// streams into a reused buffer without an intermediate slice. Fragments
// that violate the invariant (hand-written or corrupted v1 lists) are
// detected by a validation pre-pass and merged through the reference
// map-based Merge instead, so the result is always equivalent.

// MergeScratch holds the reusable state of streaming merges: cursors,
// the per-key dedup set, and the fallback decode buffers. The zero value
// is ready to use; a scratch is not safe for concurrent use.
type MergeScratch struct {
	cursors []Cursor
	seen    keySet

	// Fallback buffers for unsorted fragments and v1-encoded output.
	frags []List
	list  List

	entries int64
	bytes   int64
	merged  int64
	emitted int64
}

// EntriesDecoded returns the posting entries decoded by the last merge.
func (s *MergeScratch) EntriesDecoded() int64 { return s.entries }

// BytesDecoded returns the encoded bytes decoded by the last merge.
func (s *MergeScratch) BytesDecoded() int64 { return s.bytes }

// FragmentsMerged returns the fragment count of the last merge.
func (s *MergeScratch) FragmentsMerged() int64 { return s.merged }

// EntriesEmitted returns the surviving entry count of the last merge
// (compaction uses 0 to elide the key entirely).
func (s *MergeScratch) EntriesEmitted() int64 { return s.emitted }

// Merge combines encoded fragments ordered newest-fragment-first into one
// encoded list appended to dst (pass a reused buffer sliced to [:0]): per
// primary key only the newest entry survives; dropDeleted removes
// surviving deletion markers (bottom-level compaction). The output is
// encoded in format f, ordered newest first. Any structurally corrupt
// fragment fails the whole merge.
func (s *MergeScratch) Merge(dst []byte, fragments [][]byte, dropDeleted bool, f Format) ([]byte, error) {
	if f.OrDefault() == FormatV1 {
		s.list = s.list[:0]
		err := s.MergeFunc(fragments, dropDeleted, func(key []byte, seq uint64, del bool) {
			s.list = append(s.list, Entry{Key: string(key), Seq: seq, Del: del})
		})
		if err != nil {
			return nil, err
		}
		return append(dst, Encode(s.list)...), nil
	}
	dst = append(dst, MagicV2)
	prev := uint64(0)
	err := s.MergeFunc(fragments, dropDeleted, func(key []byte, seq uint64, del bool) {
		dst, prev = appendEntry(dst, prev, key, seq, del)
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// MergeFunc is Merge without the re-encoding: emit is called once per
// surviving entry, in newest-first order. The key slice may alias a
// fragment's encoded bytes and is only valid during the call.
func (s *MergeScratch) MergeFunc(fragments [][]byte, dropDeleted bool, emit func(key []byte, seq uint64, del bool)) error {
	s.entries, s.bytes, s.merged, s.emitted = 0, 0, int64(len(fragments)), 0
	sorted, err := s.primeCursors(fragments)
	if err != nil {
		return err
	}
	if !sorted {
		return s.mergeFallback(fragments, dropDeleted, emit)
	}

	s.seen.reset()

	// live holds the indices of non-exhausted cursors, in fragment order;
	// each cursor is positioned on its current (yet unconsumed) entry.
	// Fragment count is small (one per stratum), so a linear max scan
	// beats a heap.
	for len(s.cursors) > 0 {
		best := 0
		for i := 1; i < len(s.cursors); i++ {
			if s.cursors[i].Seq() > s.cursors[best].Seq() {
				best = i
			}
		}
		c := &s.cursors[best]
		key, seq, del := c.Key(), c.Seq(), c.Del()
		if s.seen.insert(key) {
			if !(dropDeleted && del) {
				s.emitted++
				emit(key, seq, del)
			}
		}
		if !c.Next() {
			if err := c.Err(); err != nil {
				return err
			}
			s.entries += c.EntriesDecoded()
			s.bytes += c.BytesDecoded()
			// Shift-remove, then zero the vacated tail slot: the shift
			// duplicates the last cursor's struct (and so its keyBuf/list
			// backing arrays) one slot down, and primeCursors revives stale
			// slots by reslicing — two cursors sharing one buffer would
			// clobber each other's current entry on the next reuse.
			n := len(s.cursors)
			copy(s.cursors[best:], s.cursors[best+1:])
			s.cursors[n-1] = Cursor{}
			s.cursors = s.cursors[:n-1]
		}
	}
	return nil
}

// primeCursors validates every fragment (well-formed, newest-first) and
// positions s.cursors on each fragment's first entry. It reports whether
// all fragments honour the newest-first invariant; corruption is an
// error either way.
func (s *MergeScratch) primeCursors(fragments [][]byte) (sorted bool, err error) {
	s.cursors = s.cursors[:0]
	sorted = true
	for _, frag := range fragments {
		if len(s.cursors) == cap(s.cursors) {
			s.cursors = append(s.cursors, Cursor{})
		} else {
			s.cursors = s.cursors[:len(s.cursors)+1]
		}
		c := &s.cursors[len(s.cursors)-1]
		if err := c.Reset(frag); err != nil {
			return false, err
		}
		if c.list != nil {
			// v1: the entries are already materialized; check order on them
			// rather than re-decoding the JSON.
			for i := 1; i < len(c.list); i++ {
				if c.list[i].Seq > c.list[i-1].Seq {
					sorted = false
				}
			}
		} else {
			// v2: a throwaway walk over the raw bytes is allocation-free and
			// surfaces corruption before the merge emits anything.
			var v Cursor
			_ = v.Reset(frag) // cannot fail: v2 Reset only slices
			prev, first := uint64(0), true
			for v.Next() {
				if !first && v.Seq() > prev {
					sorted = false
				}
				prev, first = v.Seq(), false
			}
			if err := v.Err(); err != nil {
				return false, err
			}
		}
		if !c.Next() {
			s.cursors = s.cursors[:len(s.cursors)-1] // empty fragment
		}
	}
	return sorted, nil
}

// mergeFallback handles fragments that violate the newest-first
// invariant: decode everything and defer to the reference Merge, so the
// outcome matches the v1 semantics exactly.
func (s *MergeScratch) mergeFallback(fragments [][]byte, dropDeleted bool, emit func(key []byte, seq uint64, del bool)) error {
	s.frags = s.frags[:0]
	for _, frag := range fragments {
		l, err := Decode(frag)
		if err != nil {
			return err
		}
		s.frags = append(s.frags, l)
		s.entries += int64(len(l))
		s.bytes += int64(len(frag))
	}
	for _, e := range Merge(s.frags, dropDeleted) {
		s.emitted++
		emit([]byte(e.Key), e.Seq, e.Del)
	}
	return nil
}

// keySet is the merge's per-call dedup set: an open-addressing hash
// table whose keys live in one reusable byte arena. A map[string]struct{}
// would allocate one string per distinct primary key on every merge
// (`m[string(b)] = ...` always converts); the arena and table persist
// across merges on the same scratch, so a warm set inserts without
// touching the heap.
type keySet struct {
	arena []byte   // inserted keys, concatenated
	ends  []uint32 // ends[i] = end offset of key i in arena (start = ends[i-1])
	tab   []int32  // 1-based index into ends; 0 = empty slot
}

func (ks *keySet) reset() {
	ks.arena = ks.arena[:0]
	ks.ends = ks.ends[:0]
	if ks.tab == nil {
		ks.tab = make([]int32, 16)
	}
	clear(ks.tab)
}

func (ks *keySet) key(i int32) []byte {
	start := uint32(0)
	if i > 0 {
		start = ks.ends[i-1]
	}
	return ks.arena[start:ks.ends[i]]
}

//lsm:hotpath
func hashKey(b []byte) uint32 {
	h := uint32(2166136261) // FNV-1a
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// insert reports whether key was absent, adding it if so.
//
//lsm:hotpath
func (ks *keySet) insert(key []byte) bool {
	if 4*(len(ks.ends)+1) > 3*len(ks.tab) {
		ks.grow()
	}
	mask := uint32(len(ks.tab) - 1)
	h := hashKey(key) & mask
	for {
		idx := ks.tab[h]
		if idx == 0 {
			ks.arena = append(ks.arena, key...)
			ks.ends = append(ks.ends, uint32(len(ks.arena)))
			ks.tab[h] = int32(len(ks.ends)) // 1-based
			return true
		}
		if bytes.Equal(ks.key(idx-1), key) {
			return false
		}
		h = (h + 1) & mask
	}
}

// grow doubles the table and rehashes from the arena (amortized; only
// this path allocates, and only until the scratch has seen its peak).
func (ks *keySet) grow() {
	ks.tab = make([]int32, 2*len(ks.tab))
	mask := uint32(len(ks.tab) - 1)
	for i := range ks.ends {
		h := hashKey(ks.key(int32(i))) & mask
		for ks.tab[h] != 0 {
			h = (h + 1) & mask
		}
		ks.tab[h] = int32(i + 1)
	}
}

// MergeStreams is the convenience form of MergeScratch.Merge for callers
// without a scratch to reuse.
func MergeStreams(dst []byte, fragments [][]byte, dropDeleted bool, f Format) ([]byte, error) {
	var s MergeScratch
	return s.Merge(dst, fragments, dropDeleted, f)
}

// AppendAdd re-encodes existing (either format; nil for a missing list)
// with a new posting for key prepended and any older entry for the same
// primary key removed — the Eager index's read-modify-write — appending
// the result to dst (pass a reused buffer sliced to [:0]) in format f.
// The stored list is already newest-first, so the update is a streaming
// prepend + dedup with no re-sort and, for v2 in/out with sufficient dst
// capacity, no heap allocation. decoded reports the entries read from
// existing (I/O accounting).
func AppendAdd(dst []byte, existing []byte, key string, seq uint64, del bool, f Format) (out []byte, decoded int64, err error) {
	var c Cursor
	if err := c.Reset(existing); err != nil {
		return nil, 0, err
	}
	if f.OrDefault() == FormatV1 {
		l := List{{Key: key, Seq: seq, Del: del}}
		for c.Next() {
			if string(c.Key()) != key {
				l = append(l, Entry{Key: string(c.Key()), Seq: c.Seq(), Del: c.Del()})
			}
		}
		if err := c.Err(); err != nil {
			return nil, 0, err
		}
		return append(dst, Encode(l)...), c.EntriesDecoded(), nil
	}
	dst = append(dst, MagicV2)
	u := uint64(len(key)) << 1
	if del {
		u |= 1
	}
	dst = binary.AppendUvarint(dst, u)
	dst = binary.AppendVarint(dst, int64(seq))
	dst = append(dst, key...)
	prev := seq
	for c.Next() {
		if string(c.Key()) == key {
			continue
		}
		dst, prev = appendEntry(dst, prev, c.Key(), c.Seq(), c.Del())
	}
	if err := c.Err(); err != nil {
		return nil, 0, err
	}
	return dst, c.EntriesDecoded(), nil
}
