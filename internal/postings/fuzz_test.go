package postings

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// listFromFuzz derives a structured posting list from raw fuzz bytes:
// each byte contributes one entry whose key is drawn from a small
// printable alphabet (JSON-safe, so v1 and v2 can represent the same
// list), with sequence numbers descending-by-default but occasionally
// jumping to exercise the unsorted fallback.
func listFromFuzz(data []byte) List {
	var l List
	seq := uint64(len(data)) * 7
	for i, b := range data {
		key := fmt.Sprintf("k%d", b%13)
		if b%17 == 0 {
			key = "" // empty key
		}
		switch b % 5 {
		case 0:
			seq += uint64(b) // out-of-order jump
		default:
			if seq > uint64(b%3) {
				seq -= uint64(b%3) + 1
			}
		}
		l = append(l, Entry{Key: key, Seq: seq, Del: b%7 == 0})
		_ = i
	}
	return l
}

// splitFuzz cuts the derived list into up to four fragments.
func splitFuzz(l List, data []byte) []List {
	if len(l) == 0 {
		return nil
	}
	n := 1
	if len(data) > 0 {
		n = int(data[0]%4) + 1
	}
	var frags []List
	for i := 0; i < n; i++ {
		lo, hi := i*len(l)/n, (i+1)*len(l)/n
		frags = append(frags, l[lo:hi])
	}
	return frags
}

func FuzzPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{17, 17, 0, 255, 128, 64, 5, 5, 5})
	f.Add(bytes.Repeat([]byte{35, 7, 0}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		l := listFromFuzz(data)

		// Both encodings must round-trip exactly.
		for _, fm := range []Format{FormatV1, FormatV2} {
			got, err := Decode(EncodeFormat(l, fm))
			if err != nil {
				t.Fatalf("%v round trip: %v", fm, err)
			}
			if len(l) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, l) {
				t.Fatalf("%v round trip = %+v want %+v", fm, got, l)
			}
		}

		// Streaming merge over any fragment mix must match the reference
		// Merge up to its unstable equal-seq ordering.
		frags := splitFuzz(l, data)
		for _, drop := range []bool{false, true} {
			want := canonical(Merge(frags, drop))
			var enc [][]byte
			for i, frag := range frags {
				fm := FormatV2
				if i%2 == 1 {
					fm = FormatV1
				}
				enc = append(enc, EncodeFormat(frag, fm))
			}
			out, err := MergeStreams(nil, enc, drop, FormatV2)
			if err != nil {
				t.Fatalf("MergeStreams: %v", err)
			}
			got, err := Decode(out)
			if err != nil {
				t.Fatalf("decode merged: %v", err)
			}
			if !reflect.DeepEqual(canonical(got), want) {
				t.Fatalf("drop=%v: MergeStreams = %+v want %+v", drop, got, want)
			}
		}

		// AppendAdd must match the decoded-path Add for both encodings.
		if len(l) > 0 {
			key, seq := l[0].Key, l[0].Seq+100
			want := Add(l, key, seq, false)
			for _, fm := range []Format{FormatV1, FormatV2} {
				out, _, err := AppendAdd(nil, EncodeFormat(l, fm), key, seq, false, fm)
				if err != nil {
					t.Fatalf("AppendAdd %v: %v", fm, err)
				}
				got, err := Decode(out)
				if err != nil {
					t.Fatalf("decode AppendAdd %v: %v", fm, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v AppendAdd = %+v want %+v", fm, got, want)
				}
			}
		}
	})
}

func FuzzPostingsGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{MagicV2})
	f.Add([]byte{MagicV2, 0x80})
	f.Add([]byte{MagicV2, 0x04, 0x02, 'h', 'i'})
	f.Add([]byte(`[{"k":"a","s":1}]`))
	f.Add([]byte(`[{"k":"a","s"`))
	f.Add([]byte{MagicV2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// None of the decode entry points may panic on arbitrary bytes;
		// they either succeed or return an error.
		l, err := Decode(data)
		var c Cursor
		cerr := c.Reset(data)
		var n int
		for c.Next() {
			n++
		}
		if cerr == nil {
			cerr = c.Err()
		}
		if (err == nil) != (cerr == nil) {
			t.Fatalf("Decode err=%v but Cursor err=%v", err, cerr)
		}
		if err == nil && n != len(l) {
			t.Fatalf("Cursor yielded %d entries, Decode %d", n, len(l))
		}

		if _, merr := MergeStreams(nil, [][]byte{data, data}, false, FormatV2); (merr == nil) != (err == nil) {
			t.Fatalf("Decode err=%v but MergeStreams err=%v", err, merr)
		}
		if _, _, aerr := AppendAdd(nil, data, "k", 1, false, FormatV2); (aerr == nil) != (err == nil) {
			t.Fatalf("Decode err=%v but AppendAdd err=%v", err, aerr)
		}
	})
}
