package postings

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func sampleList() List {
	return List{
		{Key: "t9", Seq: 90},
		{Key: "t7", Seq: 71, Del: true},
		{Key: "t3", Seq: 30},
		{Key: "", Seq: 12}, // empty keys must round-trip
		{Key: "t1", Seq: 1},
	}
}

func TestV2RoundTrip(t *testing.T) {
	for _, l := range []List{nil, {}, sampleList()} {
		enc := AppendList(nil, l)
		if len(enc) == 0 || enc[0] != MagicV2 {
			t.Fatalf("v2 encoding missing magic: %x", enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(l) {
			t.Fatalf("round trip %d entries, want %d", len(got), len(l))
		}
		for i := range l {
			if got[i] != l[i] {
				t.Fatalf("entry %d = %+v want %+v", i, got[i], l[i])
			}
		}
	}
}

func TestV2RoundTripUnsortedAndHugeSeqs(t *testing.T) {
	// Wrap-around delta encoding must round-trip any seq sequence, not
	// just descending ones.
	l := List{{Key: "a", Seq: 3}, {Key: "b", Seq: 1 << 63}, {Key: "c", Seq: 0}, {Key: "d", Seq: ^uint64(0)}}
	got, err := Decode(AppendList(nil, l))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestEncodeFormat(t *testing.T) {
	l := sampleList()
	v1 := EncodeFormat(l, FormatV1)
	if v1[0] != '[' {
		t.Fatalf("v1 encoding not JSON: %q", v1)
	}
	v2 := EncodeFormat(l, FormatUnset) // unset resolves to v2
	if v2[0] != MagicV2 {
		t.Fatalf("default encoding not v2: %x", v2)
	}
	if len(v2) >= len(v1) {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", len(v2), len(v1))
	}
	for _, enc := range [][]byte{v1, v2} {
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Fatalf("decode mismatch: %+v", got)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"": FormatV2, "v2": FormatV2, "v1": FormatV1} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("v3"); err == nil {
		t.Fatal("ParseFormat accepted v3")
	}
}

func TestCursorEarlyStopConsumesPrefixOnly(t *testing.T) {
	l := make(List, 100)
	for i := range l {
		l[i] = Entry{Key: "tweet-with-a-long-key-0000", Seq: uint64(1000 - i)}
	}
	enc := AppendList(nil, l)
	var c Cursor
	if err := c.Reset(enc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && c.Next(); i++ {
	}
	if c.EntriesDecoded() != 5 {
		t.Fatalf("EntriesDecoded = %d want 5", c.EntriesDecoded())
	}
	if c.BytesDecoded() >= int64(len(enc))/2 {
		t.Fatalf("early stop consumed %d of %d bytes", c.BytesDecoded(), len(enc))
	}
}

func TestCursorV1Fallback(t *testing.T) {
	l := sampleList()
	var c Cursor
	if err := c.Reset(Encode(l)); err != nil {
		t.Fatal(err)
	}
	var got List
	for c.Next() {
		got = append(got, Entry{Key: string(c.Key()), Seq: c.Seq(), Del: c.Del()})
	}
	if c.Err() != nil || !reflect.DeepEqual(got, l) {
		t.Fatalf("v1 cursor = %+v, %v", got, c.Err())
	}
	if c.EntriesDecoded() != int64(len(l)) || c.BytesDecoded() == 0 {
		t.Fatalf("v1 counters = %d entries, %d bytes", c.EntriesDecoded(), c.BytesDecoded())
	}
	// The same cursor must be reusable for v2 input afterwards.
	if err := c.Reset(AppendList(nil, l)); err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for c.Next() {
		got = append(got, Entry{Key: string(c.Key()), Seq: c.Seq(), Del: c.Del()})
	}
	if !reflect.DeepEqual(got, l) {
		t.Fatalf("v2 cursor after reuse = %+v", got)
	}
}

func TestCursorCorruptInputs(t *testing.T) {
	valid := AppendList(nil, sampleList())
	for _, data := range [][]byte{
		{MagicV2, 0x80},             // truncated uvarint
		{MagicV2, 0x04},             // key length 2 past the buffer
		{MagicV2, 0x02, 0x80},       // truncated seq varint
		{MagicV2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00}, // huge key length
		valid[:len(valid)-1], // truncated key bytes
	} {
		var c Cursor
		if err := c.Reset(data); err != nil {
			t.Fatalf("Reset(%x) should defer corruption to Next: %v", data, err)
		}
		for c.Next() {
		}
		if c.Err() == nil {
			t.Fatalf("corrupt input %x iterated cleanly", data)
		}
		if _, err := Decode(data); err == nil {
			t.Fatalf("Decode accepted corrupt %x", data)
		}
	}
}

func TestAppendSingleMatchesSingle(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		got, err := Decode(AppendSingle(nil, "t42", 7, true, f))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decode(Single("t42", 7, true))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: AppendSingle = %+v want %+v", f, got, want)
		}
	}
}

func TestAppendAddEquivalence(t *testing.T) {
	base := sampleList()
	for _, inFmt := range []Format{FormatV1, FormatV2} {
		for _, outFmt := range []Format{FormatV1, FormatV2} {
			existing := EncodeFormat(base, inFmt)
			out, decoded, err := AppendAdd(nil, existing, "t3", 99, false, outFmt)
			if err != nil {
				t.Fatal(err)
			}
			if decoded != int64(len(base)) {
				t.Fatalf("decoded = %d want %d", decoded, len(base))
			}
			got, err := Decode(out)
			if err != nil {
				t.Fatal(err)
			}
			want := Add(base, "t3", 99, false)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("in=%v out=%v: AppendAdd = %+v want %+v", inFmt, outFmt, got, want)
			}
		}
	}
	// Missing list: prepend into nothing.
	out, _, err := AppendAdd(nil, nil, "t1", 5, true, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := Decode(out)
	if len(got) != 1 || got[0] != (Entry{Key: "t1", Seq: 5, Del: true}) {
		t.Fatalf("AppendAdd(nil) = %+v", got)
	}
}

// canonical sorts a list into a deterministic order for set comparison
// (v1 Merge's sort is unstable for equal sequence numbers).
func canonical(l List) List {
	out := append(List(nil), l...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq > out[j].Seq
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return !out[i].Del && out[j].Del
	})
	return out
}

func TestMergeStreamsMatchesMerge(t *testing.T) {
	newer := List{{Key: "t5", Seq: 50}, {Key: "t2", Seq: 42, Del: true}, {Key: "t1", Seq: 25}}
	older := List{{Key: "t2", Seq: 10}, {Key: "t1", Seq: 8}, {Key: "t0", Seq: 2}}
	for _, drop := range []bool{false, true} {
		want := canonical(Merge([]List{newer, older}, drop))
		// All four format combinations of the two fragments, both output formats.
		for _, f1 := range []Format{FormatV1, FormatV2} {
			for _, f2 := range []Format{FormatV1, FormatV2} {
				for _, outFmt := range []Format{FormatV1, FormatV2} {
					frags := [][]byte{EncodeFormat(newer, f1), EncodeFormat(older, f2)}
					out, err := MergeStreams(nil, frags, drop, outFmt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Decode(out)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(canonical(got), want) {
						t.Fatalf("drop=%v %v+%v->%v: got %+v want %+v", drop, f1, f2, outFmt, got, want)
					}
					// Output must be newest-first.
					for i := 1; i < len(got); i++ {
						if got[i].Seq > got[i-1].Seq {
							t.Fatalf("merge output not newest-first: %+v", got)
						}
					}
				}
			}
		}
	}
}

func TestMergeStreamsUnsortedFallback(t *testing.T) {
	// A fragment violating the newest-first invariant must still merge
	// with the exact semantics of the reference Merge.
	unsorted := List{{Key: "a", Seq: 1}, {Key: "b", Seq: 9}, {Key: "a", Seq: 5}}
	other := List{{Key: "b", Seq: 3}, {Key: "c", Seq: 2}}
	want := canonical(Merge([]List{unsorted, other}, false))
	out, err := MergeStreams(nil, [][]byte{AppendList(nil, unsorted), AppendList(nil, other)}, false, FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(got), want) {
		t.Fatalf("fallback merge = %+v want %+v", got, want)
	}
}

func TestMergeStreamsCorruptFragmentFails(t *testing.T) {
	good := AppendList(nil, sampleList())
	for _, bad := range [][]byte{{MagicV2, 0x04}, []byte("{not json")} {
		if _, err := MergeStreams(nil, [][]byte{good, bad}, false, FormatV2); err == nil {
			t.Fatalf("merge accepted corrupt fragment %x", bad)
		}
	}
}

func TestMergeScratchReuse(t *testing.T) {
	var s MergeScratch
	var buf []byte
	a := AppendList(nil, List{{Key: "x", Seq: 4}})
	b := AppendList(nil, List{{Key: "y", Seq: 2}})
	for i := 0; i < 3; i++ {
		out, err := s.Merge(buf[:0], [][]byte{a, b}, false, FormatV2)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
		got, err := Decode(out)
		if err != nil || len(got) != 2 || got[0].Key != "x" || got[1].Key != "y" {
			t.Fatalf("iteration %d: %+v, %v", i, got, err)
		}
		if s.FragmentsMerged() != 2 || s.EntriesDecoded() != 2 {
			t.Fatalf("iteration %d stats: frags=%d entries=%d", i, s.FragmentsMerged(), s.EntriesDecoded())
		}
	}
}

// TestMergeScratchReuseChainedV1 chains write-merges through one scratch,
// exactly like the Lazy index's WriteMerger does under load: each round
// merges a fresh single-entry fragment with the accumulated list. A past
// bug left stale Cursor structs in the scratch's slice after shift-
// removal; on reuse two v1 cursors shared one keyBuf backing array and
// clobbered each other's current key, collapsing the chain to two
// mismatched entries. Both formats must grow the list by one per round.
func TestMergeScratchReuseChainedV1(t *testing.T) {
	for _, f := range []Format{FormatV1, FormatV2} {
		t.Run(f.String(), func(t *testing.T) {
			var sc MergeScratch
			var existing []byte
			for i := 0; i < 10; i++ {
				incoming := AppendSingle(nil, fmt.Sprintf("t%04d", i), uint64(100+i), false, f)
				out, err := sc.Merge(nil, [][]byte{incoming, existing}, false, f)
				if err != nil {
					t.Fatal(err)
				}
				existing = out
			}
			got, err := Decode(existing)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 10 {
				t.Fatalf("chain collapsed: %d entries, want 10: %v", len(got), got)
			}
			for i, e := range got {
				wantKey := fmt.Sprintf("t%04d", 9-i)
				wantSeq := uint64(100 + 9 - i)
				if e.Key != wantKey || e.Seq != wantSeq {
					t.Fatalf("entry %d = %s@%d, want %s@%d", i, e.Key, e.Seq, wantKey, wantSeq)
				}
			}
		})
	}
}

func TestAppendSingleAllocationFree(t *testing.T) {
	dst := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendSingle(dst[:0], "tweet-0001234", 123456, false, FormatV2)
	})
	if allocs != 0 {
		t.Fatalf("AppendSingle allocated %.1f times per call", allocs)
	}
}

func TestCursorNextAllocationFree(t *testing.T) {
	l := make(List, 64)
	for i := range l {
		l[i] = Entry{Key: "tweet-0001234", Seq: uint64(5000 - i)}
	}
	enc := AppendList(nil, l)
	var c Cursor
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Reset(enc); err != nil {
			t.Fatal(err)
		}
		n := 0
		for c.Next() {
			n += len(c.Key())
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
	})
	if allocs != 0 {
		t.Fatalf("v2 cursor walk allocated %.1f times per list", allocs)
	}
}

func TestAppendAddAllocationFree(t *testing.T) {
	existing := AppendList(nil, sampleList())
	dst := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		out, _, err := AppendAdd(dst[:0], existing, "t3", 99, false, FormatV2)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("AppendAdd allocated %.1f times per call", allocs)
	}
}

func TestV1EncodingUnchangedBySniffing(t *testing.T) {
	// Byte-for-byte: the v1 writer output must be exactly what the seed
	// produced, so existing databases remain readable and re-writable.
	l := List{{Key: "t4", Seq: 4}, {Key: "t1", Seq: 1, Del: true}}
	want := `[{"k":"t4","s":4},{"k":"t1","s":1,"d":true}]`
	if got := string(EncodeFormat(l, FormatV1)); got != want {
		t.Fatalf("v1 bytes changed: %s", got)
	}
	if got := string(Encode(l)); got != want {
		t.Fatalf("Encode bytes changed: %s", got)
	}
	if !bytes.Equal(Single("t9", 9, false), []byte(`[{"k":"t9","s":9}]`)) {
		t.Fatalf("Single bytes changed: %s", Single("t9", 9, false))
	}
}
