package lint

import (
	"go/ast"
	"go/types"
)

// NilTrace protects the *metrics.Trace nil-safety contract. Tracing is
// sampled: most operations carry a nil *Trace, and every method on it is
// written to be a cheap no-op on the nil receiver. That contract only
// holds while callers outside internal/metrics treat the pointer as
// opaque — the moment one dereferences it, reads a field through it, or
// stores a Trace by value, a nil trace panics or a sampled trace is
// copied out from under the pool. The analyzer forbids, outside
// internal/metrics:
//
//   - explicit dereference: *tr
//   - Trace (the value type) in declarations, fields and composite literals
//   - comparison of a *Trace against anything but the nil literal
var NilTrace = &Analyzer{
	Name: "niltrace",
	Doc:  "*metrics.Trace is opaque outside internal/metrics: methods only, no deref, no value copies",
	Run:  runNilTrace,
}

func runNilTrace(pass *Pass) {
	if pkgPathTail(pass.Pkg.Path(), "metrics") {
		return
	}
	info := pass.Info

	isTracePtr := func(t types.Type) bool {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		return isTraceNamed(p.Elem())
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StarExpr:
				// A unary deref of a *Trace value. (Type positions like
				// the declaration `tr *metrics.Trace` are also StarExpr
				// nodes, but there x.X names a type, not a value.)
				tv, ok := info.Types[x.X]
				if ok && tv.Value == nil && !tv.IsType() && isTracePtr(tv.Type) {
					pass.Reportf(x.Pos(), "dereference of *metrics.Trace breaks the nil-safety contract; call its methods instead")
				}
			case *ast.SelectorExpr:
				// Field access through a *Trace (tr.op). Method calls
				// resolve to MethodVal selections and stay legal.
				if selInfo, ok := info.Selections[x]; ok && selInfo.Kind() == types.FieldVal {
					recv := selInfo.Recv()
					if isTracePtr(recv) || isTraceNamed(recv) {
						pass.Reportf(x.Sel.Pos(), "field access on metrics.Trace outside internal/metrics; the struct is opaque")
					}
				}
			case *ast.ValueSpec:
				if x.Type != nil && isTraceValueType(info, x.Type) {
					pass.Reportf(x.Type.Pos(), "metrics.Trace declared by value; only *metrics.Trace is nil-safe")
				}
			case *ast.Field:
				if isTraceValueType(info, x.Type) {
					pass.Reportf(x.Type.Pos(), "metrics.Trace field/param by value; only *metrics.Trace is nil-safe")
				}
			case *ast.CompositeLit:
				if x.Type != nil && isTraceValueType(info, x.Type) {
					pass.Reportf(x.Pos(), "metrics.Trace composite literal outside internal/metrics; obtain traces from the Tracer")
				}
			case *ast.BinaryExpr:
				if x.Op.String() != "==" && x.Op.String() != "!=" {
					return true
				}
				lt, rt := info.Types[x.X], info.Types[x.Y]
				if isTracePtr(lt.Type) && !isNilLit(x.Y) || isTracePtr(rt.Type) && !isNilLit(x.X) {
					pass.Reportf(x.OpPos, "comparison of *metrics.Trace against a non-nil value; traces are pooled and identity is meaningless")
				}
			}
			return true
		})
	}
}

// isTraceNamed reports whether t is the named type metrics.Trace.
func isTraceNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Trace" && obj.Pkg() != nil && pkgPathTail(obj.Pkg().Path(), "metrics")
}

// isTraceValueType reports whether the type expression denotes the bare
// value type metrics.Trace (not a pointer to it).
func isTraceValueType(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if _, ptr := unparen(e).(*ast.StarExpr); ptr {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.IsType() && isTraceNamed(tv.Type)
}

func isNilLit(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
