package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// objOf resolves an identifier to its object, whether it is a definition
// or a use.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// namedOf unwraps pointers and returns the named type beneath, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// pkgPathTail reports whether path is pkg or ends in "/pkg" — the form in
// which both the module's packages and the testdata harness see import
// paths.
func pkgPathTail(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// calleeObj resolves the called function or method object, or nil for
// builtins, type conversions and indirect calls.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return objOf(info, fun)
	case *ast.SelectorExpr:
		return objOf(info, fun.Sel)
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkg.name, with pkg matched by import-path tail (e.g. "ikey", "time").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return pkgPathTail(fn.Pkg().Path(), pkg)
}

// iterMethodCall reports whether call is recv.Key() or recv.Value() on an
// iterator-like receiver returning []byte. "Iterator-like" is structural:
// the receiver's named type contains "Iter" in its name (skiplist.Iterator,
// sstable.BlockIter, sstable.Iterator, and any future cursor following the
// repo's naming convention). The returned slices alias the iterator's
// internal buffers or immutable block/arena memory and are only valid
// until the next Next/Seek.
func iterMethodCall(info *types.Info, call *ast.CallExpr, methods ...string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	fn, ok := objOf(info, sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Results().Len() != 1 || !isByteSlice(sig.Results().At(0).Type()) {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && strings.Contains(strings.ToLower(named.Obj().Name()), "iter")
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (db in db.bg.flushes, sc in sc.bi.key), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsMutex reports whether t (passed or copied by value) embeds a
// mutex anywhere in its struct layout.
func containsMutex(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if isMutex(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if arr, isArr := ft.Underlying().(*types.Array); isArr {
			ft = arr.Elem()
		}
		if containsMutex(ft, depth+1) {
			return true
		}
	}
	return false
}

// localCompositeInits collects local variables initialised from a
// composite literal (db := &DB{...}, v := version{...}) or new(T) inside
// body. Objects they denote are unpublished: no other goroutine can see
// them yet, so guarded-field access through them is lock-free by
// construction (the constructor pattern).
func localCompositeInits(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		switch r := unparen(rhs).(type) {
		case *ast.CompositeLit:
		case *ast.UnaryExpr:
			if _, lit := unparen(r.X).(*ast.CompositeLit); r.Op.String() != "&" || !lit {
				return
			}
		case *ast.CallExpr:
			if id, ok := unparen(r.Fun).(*ast.Ident); !ok || id.Name != "new" {
				return
			}
		default:
			return
		}
		if obj := objOf(info, id); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					mark(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					mark(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// isBuiltinAppend reports whether call invokes the append builtin (as
// opposed to a local function shadowing the name).
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := objOf(info, id).(*types.Builtin)
	return builtin
}

// forEachFuncDecl applies fn to every function declaration with a body.
func forEachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
