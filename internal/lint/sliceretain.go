package lint

import (
	"go/ast"
	"go/types"
)

// SliceRetain flags iterator-owned byte slices that escape the iteration
// step. skiplist.Iterator, sstable.BlockIter and sstable.Iterator hand out
// Key()/Value() slices that alias internal buffers reused by the next
// Next/Seek (BlockIter.Next rewrites it.key in place for prefix
// decompression). Storing such a slice into a struct field, map, escaping
// slice or channel silently retains memory that is about to be
// overwritten — the classic LSM read-path corruption. An explicit copy
// (append([]byte(nil), it.Key()...)) breaks the alias and is accepted;
// deliberate aliasing (e.g. a scratch struct reset on every use) is
// annotated //lsm:aliasok.
var SliceRetain = &Analyzer{
	Name:        "sliceretain",
	Doc:         "iterator Key()/Value() bytes must be copied before they escape the iteration step",
	Suppression: "lsm:aliasok",
	Run:         runSliceRetain,
}

func runSliceRetain(pass *Pass) {
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		checkSliceRetainFunc(pass, fd)
	})
}

// checkSliceRetainFunc runs a small flow-insensitive alias propagation
// over one function body, then flags escaping uses of aliased values.
func checkSliceRetainFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// aliased holds locals transitively assigned from iterator
	// Key()/Value() calls. Two propagation passes close simple chains
	// (k := it.Key(); uk := ikey.UserKey(k); u2 := uk[1:]) without a
	// full fixpoint; deeper chains are beyond what the codebase writes.
	aliased := map[types.Object]bool{}

	var aliasExpr func(e ast.Expr) bool
	aliasExpr = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.CallExpr:
			if iterMethodCall(info, x, "Key", "Value") {
				return true
			}
			// ikey.UserKey returns a sub-slice of its argument: the user
			// key view of an aliased internal key is still aliased.
			if isPkgFunc(info, x, "ikey", "UserKey") && len(x.Args) == 1 {
				return aliasExpr(x.Args[0])
			}
			return false
		case *ast.Ident:
			obj := objOf(info, x)
			return obj != nil && aliased[obj]
		case *ast.SliceExpr:
			return aliasExpr(x.X)
		}
		return false
	}

	markAssign := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := objOf(info, id); obj != nil && aliasExpr(rhs) {
			aliased[obj] = true
		}
	}

	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for j := range st.Lhs {
						markAssign(st.Lhs[j], st.Rhs[j])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for j := range st.Names {
						markAssign(st.Names[j], st.Values[j])
					}
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, what string) {
		if pass.SuppressedAt(pos.Pos(), "lsm:aliasok") {
			return
		}
		pass.Reportf(pos.Pos(), "iterator-aliased bytes %s; copy with append([]byte(nil), ...) first or mark //lsm:aliasok", what)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Lhs {
				if !aliasExpr(st.Rhs[i]) {
					continue
				}
				switch unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					report(st.Rhs[i], "stored into a struct field")
				case *ast.IndexExpr:
					report(st.Rhs[i], "stored into a map or slice element")
				}
			}
		case *ast.CallExpr:
			// append(s, k) grows an escaping slice that outlives the
			// iteration step; append(dst, k...) is the copy idiom and
			// spreads bytes, not the alias.
			if isBuiltinAppend(info, st) && st.Ellipsis == 0 && len(st.Args) > 1 {
				for _, arg := range st.Args[1:] {
					if aliasExpr(arg) {
						report(arg, "appended to a slice")
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if aliasExpr(v) {
					report(v, "stored in a composite literal")
				}
			}
		case *ast.SendStmt:
			if aliasExpr(st.Value) {
				report(st.Value, "sent on a channel")
			}
		}
		return true
	})
}
