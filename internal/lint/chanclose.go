package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanClose enforces the `close-once` channel annotations the group-commit
// queue depends on. A pendingCommit's done and lead channels are the write
// pipeline's wakeup edges: exactly one goroutine — the group leader — may
// close each, exactly once, or a follower panics (double close) inside a
// path that holds no recoverable state. The safe shape is syntactic: one
// close site per annotated field in the whole package, so every reviewer
// and every refactor can see the single owner at a glance.
//
// A channel-typed struct field whose declaration comment contains the
// phrase "close-once" may therefore appear as the operand of the close
// builtin at exactly one site per package. Additional sites are reported
// (the first, in position order, is taken as the owner). The check is
// deliberately syntactic, like the rest of lsmlint: it cannot prove a
// single site runs once per channel value — the queue's state machine
// owns that — but it does catch the regression that actually happens,
// a second close site creeping in during a refactor.
var ChanClose = &Analyzer{
	Name: "chanclose",
	Doc:  "channel fields annotated `close-once` have exactly one close() site per package",
	Run:  runChanClose,
}

func runChanClose(pass *Pass) {
	fields := closeOnceFields(pass)
	if len(fields) == 0 {
		return
	}

	// Every close(x.field) site in the package, per annotated field.
	sites := map[types.Object][]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinClose(pass.Info, call) || len(call.Args) != 1 {
				return true
			}
			sel, ok := unparen(call.Args[0]).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := objOf(pass.Info, sel.Sel)
			if obj != nil && fields[obj] {
				sites[obj] = append(sites[obj], call.Pos())
			}
			return true
		})
	}

	for obj, positions := range sites {
		if len(positions) <= 1 {
			continue
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		owner := pass.Fset.Position(positions[0])
		for _, pos := range positions[1:] {
			pass.Reportf(pos, "second close site for close-once channel field %s (owner is %s:%d); route the wakeup through the owning site",
				obj.Name(), owner.Filename, owner.Line)
		}
	}
}

// closeOnceFields collects channel-typed struct fields whose doc or line
// comment carries the close-once annotation.
func closeOnceFields(pass *Pass) map[types.Object]bool {
	fields := map[types.Object]bool{}
	note := func(field *ast.Field, text string) {
		if !strings.Contains(text, "close-once") {
			return
		}
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Chan); ok {
				fields[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Doc != nil {
					note(field, field.Doc.Text())
				}
				if field.Comment != nil {
					note(field, field.Comment.Text())
				}
			}
			return true
		})
	}
	return fields
}

// isBuiltinClose reports whether call invokes the close builtin (not a
// local function shadowing the name).
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, builtin := objOf(info, id).(*types.Builtin)
	return builtin
}
