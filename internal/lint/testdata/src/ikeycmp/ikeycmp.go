// Package ikeycmp exercises the ikeycmp analyzer: raw byte comparison of
// internal keys outside internal/ikey.
package ikeycmp

import (
	"bytes"

	"leveldbpp/internal/ikey"
)

type meta struct{ Smallest, Largest []byte }

func namedConventions(ika, ikb []byte) bool {
	return bytes.Compare(ika, ikb) < 0 // want "raw byte comparison of internal key"
}

func constructedKeys(userKey []byte, other []byte) bool {
	return bytes.Equal(ikey.SeekKey(userKey), other) // want "raw byte comparison of internal key"
}

func manifestBounds(m meta, k []byte) bool {
	return bytes.Equal(k, m.Smallest) // want "raw byte comparison of internal key"
}

func slicedKey(ikPrev []byte) bool {
	return bytes.Equal(ikPrev[:8], nil) // want "raw byte comparison of internal key"
}

func good(a, b []byte, m meta) {
	_ = bytes.Compare(a, b)                      // plain user keys: ok
	_ = bytes.Equal(ikey.UserKey(m.Smallest), a) // user-key view: ok
	_ = ikey.Compare(m.Smallest, m.Largest)      // the sanctioned comparator
	_ = bytes.Equal(m.Smallest, m.Largest)       //lsm:aliasok
}
