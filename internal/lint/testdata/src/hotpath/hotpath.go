// Package hotpath exercises the hotpath analyzer: //lsm:hotpath functions
// must not read the clock, format strings, or grow fresh allocations.
package hotpath

import (
	"fmt"
	"time"
)

type cursor struct{ buf []byte }

//lsm:hotpath
func bad(in []byte) {
	t0 := time.Now() // want "time.Now in //lsm:hotpath bad"
	_ = t0
	_ = fmt.Sprintf("%d", len(in)) // want "fmt string formatting allocates in //lsm:hotpath bad"
	var out []byte
	out = append(out, in...) // want "growing append in //lsm:hotpath bad"
	_ = out
}

//lsm:hotpath
func good(c *cursor, in []byte) {
	c.buf = append(c.buf[:0], in...) // re-sliced scratch: ok
	c.buf = append(c.buf, in...)     // parameter-rooted scratch: ok
	if len(in) > 1<<20 {
		panic(fmt.Sprintf("hotpath: oversized input %d", len(in))) // corruption panic: off the hot path
	}
	var out []byte
	out = append(out, in...) //lsm:allocok
	_ = out
}

//lsm:hotpath
func (c *cursor) method(in []byte) {
	c.buf = append(c.buf, in...) // receiver-rooted scratch: ok
}

func unannotated(in []byte) []byte {
	_ = time.Now() // cold code: ok
	return append([]byte(nil), in...)
}
