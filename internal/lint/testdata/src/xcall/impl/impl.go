// Package impl is the callee half of the lockfacts cross-package
// fixture: a store whose methods acquire the class lock impl.Store.mu,
// plus a lock-free second implementation of the caller's Sink
// interface.
package impl

import "sync"

// Store is the lock-owning concrete type.
type Store struct {
	mu   sync.Mutex
	vals map[string]string
}

func (s *Store) Put(k, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[k] = v
}

func (s *Store) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals = nil
	return nil
}

// Null satisfies the caller's Sink without touching any lock.
type Null struct{}

func (Null) Drain() error { return nil }
