// Package caller is the calling half of the lockfacts cross-package
// fixture: it holds its own class lock while calling into impl, once
// through a static method call and once through a locally declared
// interface that both impl types satisfy.
package caller

import (
	"sync"

	"leveldbpp/internal/lint/testdata/src/xcall/impl"
)

// Sink is satisfied by impl.Store and impl.Null.
type Sink interface {
	Drain() error
}

type Pool struct {
	mu    sync.Mutex
	store *impl.Store
}

// Write holds caller.Pool.mu across a static cross-package call that
// acquires impl.Store.mu.
func (p *Pool) Write(k, v string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store.Put(k, v)
}

// Flush holds caller.Pool.mu across an interface call that resolves to
// every declared implementation.
func (p *Pool) Flush(s Sink) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return s.Drain()
}
