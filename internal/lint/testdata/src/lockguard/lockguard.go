// Package lockguard exercises the lockguard analyzer: `// guarded by mu`
// field annotations and mutex-copy detection.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) Locked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) RLockedStyle(r *sync.RWMutex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
}

func (c *counter) Bad() int {
	return c.n // want "n is guarded by mu but Bad does not lock it"
}

func (c *counter) bumpLocked() { c.n++ } // *Locked suffix: caller holds mu

//lsm:locked
func (c *counter) bumpCallerHeld() { c.n++ }

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // unpublished object: ok
	return c
}

func copyParam(c counter) int { // want "parameter copies a mutex-containing struct by value"
	return 0
}

func (c counter) copyRecv() {} // want "receiver copies a mutex-containing struct by value"

type wrapper struct{ inner counter }

func copyDeref(p *wrapper) {
	w := *p // want "dereference copies a mutex-containing struct"
	_ = w
}

func rangeCopy(ws []wrapper) {
	for _, w := range ws { // want "range copies a mutex-containing struct"
		_ = w
	}
	for i := range ws { // index ranging: ok
		_ = i
	}
}

func pointers(p *wrapper) *counter { // pointers never copy: ok
	return &p.inner
}
