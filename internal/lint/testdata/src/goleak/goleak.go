// Package goleak exercises the goroutine-leak analyzer: a spawned body
// that loops forever with no termination signal is flagged at the go
// statement; WaitGroup.Done, channel receives / select arms, bounded
// loops, and loops that exit via return are accepted, as is //lsm:leakok.
package goleak

import "sync"

func work() {}

// spinner's literal loops forever with no signal: flagged.
func spinner() {
	go func() { // want "may never exit: unbounded loop with no termination signal"
		for {
			work()
		}
	}()
}

// named spawns a declared function whose leak is two calls deep — the
// unbounded loop is found through the call graph.
func named() {
	go spin() // want "goroutine goleak.spin may never exit"
}

func spin() {
	spinLoop()
}

func spinLoop() {
	for {
		work()
	}
}

// joined loops forever but signs off via WaitGroup.Done: the goroutine
// is joinable, so it is the surrounding Wait's job to end it.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			work()
		}
	}()
}

// signalled drains a done channel: the select (and its receive) is the
// termination signal.
func signalled(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			work()
		}
	}()
}

// ranger exits when the channel closes.
func ranger(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// bounded loops have a condition: no report.
func bounded() {
	go func() {
		for i := 0; i < 3; i++ {
			work()
		}
	}()
}

// exits leaves its for{} through a return: not unbounded.
func exits(done func() bool) {
	go func() {
		for {
			if done() {
				return
			}
			work()
		}
	}()
}

// innerBreak only breaks the nested loop — the outer for{} never exits
// and nothing signals.
func innerBreak() {
	go func() { // want "unbounded loop with no termination signal"
		for {
			for {
				break
			}
			work()
		}
	}()
}

// suppressed is accepted at the spawn site.
func suppressed() {
	go func() { //lsm:leakok
		for {
			work()
		}
	}()
}
