package lockorder

import "sync"

// pair's two locks are acquired in both orders — a -> b directly, and
// b -> a three calls deep — forming the deadlock-candidate cycle. The
// analyzer reports the cycle once, at the first edge, with the witness
// chain of every hop naming the intermediate functions; the member edges
// are not additionally reported one by one.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func holdADirect(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	lockB(p) // want "lock-acquisition cycle: lockorder.pair.a -> lockorder.pair.b .via lockorder.holdADirect -> lockorder.lockB. -> lockorder.pair.a .via lockorder.holdB -> lockorder.viaMiddle -> lockorder.locksA."
}

func lockB(p *pair) {
	p.b.Lock()
	p.b.Unlock()
}

func holdB(p *pair) {
	p.b.Lock()
	defer p.b.Unlock()
	viaMiddle(p)
}

func viaMiddle(p *pair) {
	locksA(p)
}

func locksA(p *pair) {
	p.a.Lock()
	p.a.Unlock()
}
