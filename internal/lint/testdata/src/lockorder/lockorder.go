// Package lockorder exercises the lockorder analyzer: blessed nesting is
// silent, inversions and unblessed pairs are flagged at the acquisition
// site, a cycle through an intermediate function is reported once with
// the full witness chain, and //lsm:lockok suppresses a site.
//
// The package-local blessed order:
//
//lsm:lockorder lockorder.store.mu < lockorder.store.logMu
package lockorder

import "sync"

type store struct {
	mu    sync.Mutex
	logMu sync.Mutex
	side  sync.Mutex
}

// blessed follows the declared chain: silent.
func blessed(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logMu.Lock()
	s.logMu.Unlock()
}

// inverted acquires the chain backwards.
func inverted(s *store) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.mu.Lock() // want "inverting the blessed lock order lockorder.store.mu < lockorder.store.logMu"
	s.mu.Unlock()
}

// transitiveInverted inverts the chain through a callee: the witness
// names the intermediate helper.
func transitiveInverted(s *store) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	lockMain(s) // want "inverting the blessed lock order"
}

func lockMain(s *store) {
	s.mu.Lock()
	s.mu.Unlock()
}

// unblessed nests a pair no //lsm:lockorder chain covers.
func unblessed(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.side.Lock() // want "not covered by any //lsm:lockorder chain"
	s.side.Unlock()
}

// earlyReturn's unlock-and-bail branch must not leak into the
// fallthrough path: after the if, mu is still held, so the logMu
// acquisition is blessed and silent.
func earlyReturn(s *store, bail bool) {
	s.mu.Lock()
	if bail {
		s.mu.Unlock()
		return
	}
	s.logMu.Lock()
	s.logMu.Unlock()
	s.mu.Unlock()
}

// suppressed: same unblessed pair, accepted at this one site.
func suppressed(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.side.Lock() //lsm:lockok
	s.side.Unlock()
}
