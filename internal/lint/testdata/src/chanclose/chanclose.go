// Package chanclose exercises the chanclose analyzer: channel fields
// annotated close-once have exactly one close() site per package.
package chanclose

type waiter struct {
	// done wakes the waiter after commit (close-once).
	done chan struct{}
	// lead promotes the waiter to leader (close-once).
	lead chan struct{}
	// events is a plain channel: no annotation, closes are unrestricted.
	events chan int
	n      int // close-once mentioned here is ignored: not a channel
}

// ownerSite is the first close in position order and therefore the owner
// of done; the analyzer stays silent here.
func ownerSite(w *waiter) {
	close(w.done)
}

func duplicateSite(w *waiter) {
	close(w.done) // want "second close site for close-once channel field done"
	close(w.lead) // single site for lead: fine
}

func unannotated(w *waiter) {
	close(w.events)
	close(w.events) // no annotation, no finding
}

// close shadowed by a local function must not count as a close site.
func shadowed(w *waiter) {
	close := func(ch chan struct{}) {}
	close(w.done)
}
