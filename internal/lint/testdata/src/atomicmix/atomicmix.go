// Package atomicmix exercises the atomic-consistency analyzer: fields
// updated through sync/atomic package functions must not be read or
// written plainly elsewhere unless the guarding mutex (annotated
// `// guarded by <mu>`) is visibly held, the accessor follows the
// *Locked convention, the object is unpublished, or the line carries
// //lsm:atomicok.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	// guarded by mu
	hits int64
	raw  int64 // no guard annotation: atomics are the only legal access
}

// inc establishes both fields as atomically accessed.
func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.raw, 1)
}

// reset mixes in plain writes with no lock in sight.
func (c *counter) reset() {
	c.hits = 0 // want "hits is updated with sync/atomic elsewhere but accessed plainly here without holding mu"
	c.raw = 0  // want "raw is updated with sync/atomic elsewhere but accessed plainly here; no guarded-by mutex excuses the mix"
}

// peek is a plain cross-function read, equally racy.
func (c *counter) peek() int64 {
	return c.hits // want "accessed plainly here without holding mu"
}

// resetSlow holds the annotated guard: the mutex path is the declared
// alternative to the atomic for hits.
func (c *counter) resetSlow() {
	c.mu.Lock()
	c.hits = 0
	c.mu.Unlock()
}

// drainLocked follows the *Locked convention: the caller holds mu.
func (c *counter) drainLocked() int64 {
	v := c.hits
	c.hits = 0
	return v
}

// newCounter writes plainly into an unpublished object: constructors
// initialize before any concurrent access exists.
func newCounter() *counter {
	c := &counter{}
	c.hits = 1
	c.raw = 1
	return c
}

// snapshot documents an accepted race at one audited site.
func (c *counter) snapshot() int64 {
	return c.raw //lsm:atomicok
}
