// Package sliceretain exercises the sliceretain analyzer: iterator
// Key()/Value() bytes escaping the iteration step without a copy.
package sliceretain

import "leveldbpp/internal/ikey"

// fakeIter follows the repo's iterator shape: a named type containing
// "Iter" with Key/Value methods returning []byte.
type fakeIter struct{ buf []byte }

func (it *fakeIter) Key() []byte   { return it.buf }
func (it *fakeIter) Value() []byte { return it.buf }
func (it *fakeIter) Next()         {}

type holder struct {
	key []byte
	m   map[string][]byte
}

func storeDirect(it *fakeIter, h *holder) {
	h.key = it.Key()      // want "stored into a struct field"
	h.m["k"] = it.Value() // want "stored into a map or slice element"
}

func escapeCollections(it *fakeIter) {
	var keys [][]byte
	keys = append(keys, it.Key()) // want "appended to a slice"
	_ = keys
	_ = holder{key: it.Key()} // want "stored in a composite literal"
	ch := make(chan []byte, 1)
	ch <- it.Value() // want "sent on a channel"
}

func aliasChain(it *fakeIter, h *holder) {
	k := it.Key()
	sub := k[1:]
	h.key = sub // want "stored into a struct field"
}

func userKeyView(it *fakeIter, h *holder) {
	uk := ikey.UserKey(it.Key())
	h.key = uk // want "stored into a struct field"
}

func copies(it *fakeIter, h *holder) {
	h.key = append([]byte(nil), it.Key()...) // explicit copy: ok
	k := it.Key()
	h.key = append(h.key[:0], k...) // spread copies bytes, not the alias: ok
	local := it.Key()               // plain local: ok, dies with the step
	_ = local
	h.key = it.Key() //lsm:aliasok
}
