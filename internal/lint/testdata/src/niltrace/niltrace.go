// Package niltrace exercises the niltrace analyzer: *metrics.Trace is
// opaque outside internal/metrics.
package niltrace

import "leveldbpp/internal/metrics"

func deref(tr *metrics.Trace) {
	_ = *tr // want "dereference of .metrics.Trace breaks the nil-safety contract"
}

var byValue metrics.Trace // want "metrics.Trace declared by value"

type carrier struct {
	tr metrics.Trace // want "metrics.Trace field/param by value"
}

func takesValue(t metrics.Trace) {} // want "metrics.Trace field/param by value"

func literal() {
	_ = metrics.Trace{} // want "metrics.Trace composite literal"
}

func identityCompare(a, b *metrics.Trace) bool {
	return a == b // want "comparison of .metrics.Trace against a non-nil value"
}

func good(tr *metrics.Trace) {
	t0 := tr.Now() // methods are the contract: nil-cheap no-ops
	tr.Since(metrics.PhaseMemProbe, t0)
	tr.SetDetail("ok")
	if tr == nil { // nil check is the one legal comparison
		return
	}
	var ptr *metrics.Trace // pointer declarations: ok
	_ = ptr
}
