// Package errcheck exercises the errcheck-lite analyzer: silently
// dropped error returns, fmt.Errorf without %w, and deferred
// durability-critical Flush/Sync calls.
package errcheck

import (
	"bufio"
	"fmt"

	"leveldbpp/internal/wal"
)

type closer struct{}

func (c *closer) Close() error { return nil }

func multi() (int, error) { return 0, nil }

func bad(c *closer, err error) {
	c.Close()                       // want "error returned by c.Close is silently ignored"
	_ = fmt.Errorf("wrap: %v", err) // want "fmt.Errorf formats an error without %w"
}

func good(c *closer, err error) error {
	_ = c.Close()    // explicit discard: ok
	defer c.Close()  // defer is idiomatic for read paths: ok
	go badlyNamed(c) // go statements: out of scope
	if cerr := c.Close(); cerr != nil {
		return cerr
	}
	c.Close()                                //lsm:errok
	multi()                                  // multi-result calls are go vet's beat, not errcheck-lite's
	_ = fmt.Errorf("wrap: %w", err)          // wrapping: ok
	_ = fmt.Errorf("count: %d", 42)          // no error argument: ok
	_ = fmt.Errorf("stringified: %v", "err") // string, not error: ok
	return nil
}

func badlyNamed(c *closer) { _ = c.Close() }

// ownWriter is not bufio's or wal's Writer; its deferred Flush stays in
// the idiomatic-defer exemption.
type ownWriter struct{}

func (w *ownWriter) Flush() error { return nil }

func deferredFlush(bw *bufio.Writer, ww *wal.Writer, ow *ownWriter) {
	defer bw.Flush() // want "deferred bw.Flush discards its error, and durability depends on it"
	defer ww.Sync()  // want "deferred ww.Sync discards its error, and durability depends on it"
	defer ww.Flush() // want "deferred ww.Flush discards its error, and durability depends on it"
	go bw.Flush()    // want "go'd bw.Flush discards its error, and durability depends on it"
	defer ow.Flush() // non-durability writer: ok
	defer func() {
		if err := bw.Flush(); err != nil { // checked inside a closure: ok
			_ = err
		}
	}()
	defer ww.Sync() //lsm:errok
}
