// Package errcheck exercises the errcheck-lite analyzer: silently
// dropped error returns and fmt.Errorf without %w.
package errcheck

import "fmt"

type closer struct{}

func (c *closer) Close() error { return nil }

func multi() (int, error) { return 0, nil }

func bad(c *closer, err error) {
	c.Close()                       // want "error returned by c.Close is silently ignored"
	_ = fmt.Errorf("wrap: %v", err) // want "fmt.Errorf formats an error without %w"
}

func good(c *closer, err error) error {
	_ = c.Close()    // explicit discard: ok
	defer c.Close()  // defer is idiomatic for read paths: ok
	go badlyNamed(c) // go statements: out of scope
	if cerr := c.Close(); cerr != nil {
		return cerr
	}
	c.Close()                                //lsm:errok
	multi()                                  // multi-result calls are go vet's beat, not errcheck-lite's
	_ = fmt.Errorf("wrap: %w", err)          // wrapping: ok
	_ = fmt.Errorf("count: %d", 42)          // no error argument: ok
	_ = fmt.Errorf("stringified: %v", "err") // string, not error: ok
	return nil
}

func badlyNamed(c *closer) { _ = c.Close() }
