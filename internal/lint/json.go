package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
)

// jsonDiagnostic is the NDJSON wire form of one finding: what `lsmlint
// -json` prints, one object per line, for CI annotators and editors.
// Suppression, when non-empty, is the //lsm: directive that accepts the
// finding at its line.
type jsonDiagnostic struct {
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Message     string `json:"message"`
	Suppression string `json:"suppression,omitempty"`
}

// WriteJSON writes diags as newline-delimited JSON, one diagnostic per
// line, in the given (already sorted) order.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline NDJSON wants
	for _, d := range diags {
		jd := jsonDiagnostic{
			Analyzer:    d.Analyzer,
			File:        d.Pos.Filename,
			Line:        d.Pos.Line,
			Col:         d.Pos.Column,
			Message:     d.Message,
			Suppression: d.Suppression,
		}
		if err := enc.Encode(jd); err != nil {
			return fmt.Errorf("lint: encode diagnostic: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSON decodes a stream produced by WriteJSON. It is the round-trip
// counterpart consumers embed in tooling; offsets are not preserved
// (only file:line:col travels on the wire).
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	dec := json.NewDecoder(r)
	var out []Diagnostic
	for {
		var jd jsonDiagnostic
		if err := dec.Decode(&jd); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode diagnostic: %w", err)
		}
		out = append(out, Diagnostic{
			Analyzer:    jd.Analyzer,
			Pos:         token.Position{Filename: jd.File, Line: jd.Line, Column: jd.Col},
			Message:     jd.Message,
			Suppression: jd.Suppression,
		})
	}
}
