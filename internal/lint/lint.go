// Package lint implements lsmlint, the engine's repo-specific static
// analysis layer (DESIGN.md §5.4). The concurrent write pipeline, the
// parallel lookup fan-out and the sampled tracer rest on invariants the
// type system cannot express — iterator byte slices are only valid until
// the next Next/Seek, mutex-guarded fields must not be touched off-lock,
// internal keys must be compared through ikey.Compare, *metrics.Trace is
// nil-safe only as a pointer — so this package checks them mechanically
// on every commit (`make lint`).
//
// The framework is a deliberately small re-implementation of the shape of
// golang.org/x/tools/go/analysis using only the standard library: an
// Analyzer is a named Run function over a Pass; a Pass wraps one
// type-checked package; diagnostics carry positions and stable messages
// that the testdata harness matches against `// want "regexp"` comments.
//
// The comment directives that tune the analyzers at specific sites:
//
//	//lsm:hotpath  (function doc)  — hotpath checks this function
//	//lsm:locked   (function doc or end of line) — lockguard trusts the
//	                                 caller to hold the guarding mutex
//	                                 (or the object to be unpublished)
//	//lsm:aliasok  (end of line)   — sliceretain/ikeycmp accept this line
//	//lsm:allocok  (end of line)   — hotpath accepts this allocation
//	//lsm:errok    (end of line)   — errcheck accepts this line
//	//lsm:lockok   (end of line)   — lockorder accepts this acquisition
//	//lsm:leakok   (end of line)   — goleak accepts this go statement
//	//lsm:atomicok (end of line)   — atomicmix accepts this access
//	//lsm:lockorder A < B < C      — declares a chain of the blessed
//	                                 lock partial order (DESIGN.md §5.8)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding. Suppression names the //lsm:
// directive that would accept the finding at its line, "" when the
// analyzer has no suppression; it rides along so machine consumers
// (-json) can render the escape hatch next to the finding.
type Diagnostic struct {
	Analyzer    string
	Pos         token.Position
	Message     string
	Suppression string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check. Package analyzers set Run, which inspects
// one type-checked package at a time; whole-program analyzers set
// RunProgram instead, which sees every loaded package plus the lockfacts
// call graph at once. Suppression names the //lsm: line directive that
// silences the analyzer at a site (empty when there is none).
type Analyzer struct {
	Name        string
	Doc         string
	Suppression string
	Run         func(*Pass)
	RunProgram  func(*ProgramPass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	// lineDirectives maps file → line → the set of //lsm: directives
	// appearing in comments on that line (suppressions like lsm:aliasok).
	lineDirectives map[string]map[int][]string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer:    p.Analyzer.Name,
		Pos:         p.Fset.Position(pos),
		Message:     fmt.Sprintf(format, args...),
		Suppression: p.Analyzer.Suppression,
	})
}

// SuppressedAt reports whether a comment on pos's line carries the given
// directive (e.g. "lsm:aliasok"). Directives always suppress at line
// granularity, so one marker covers a multi-finding line.
func (p *Pass) SuppressedAt(pos token.Pos, directive string) bool {
	position := p.Fset.Position(pos)
	return hasDirective(p.lineDirectives[position.Filename], position.Line, directive)
}

func hasDirective(lines map[int][]string, line int, directive string) bool {
	for _, d := range lines[line] {
		if d == directive {
			return true
		}
	}
	return false
}

// buildLineDirectives scans every comment of every file once, recording
// //lsm: directives by file and line.
func buildLineDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lsm:") {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					out[pos.Filename] = lines
				}
				// A directive comment on its own line applies to the next
				// line too, matching gofmt's placement of long markers.
				for _, d := range strings.Fields(text) {
					if strings.HasPrefix(d, "lsm:") {
						lines[pos.Line] = append(lines[pos.Line], d)
					}
				}
			}
		}
	}
	return out
}

// funcHasDirective reports whether decl's doc comment carries directive
// (e.g. "lsm:hotpath").
func funcHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		for _, d := range strings.Fields(text) {
			if d == directive {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package — whole-program
// analyzers once over all packages together — and returns the combined
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		directives := buildLineDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:       a,
				Fset:           pkg.Fset,
				Files:          pkg.Files,
				Pkg:            pkg.Types,
				Info:           pkg.Info,
				diags:          &diags,
				lineDirectives: directives,
			}
			a.Run(pass)
		}
	}
	var progPass *ProgramPass
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if progPass == nil {
			progPass = newProgramPass(pkgs, &diags)
		}
		pp := *progPass
		pp.Analyzer = a
		a.RunProgram(&pp)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// Analyzers returns the full lsmlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SliceRetain,
		LockGuard,
		IKeyCmp,
		NilTrace,
		ChanClose,
		HotPath,
		ErrCheck,
		LockOrder,
		GoLeak,
		AtomicMix,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
