package lint

import (
	"go/token"
	"sort"
	"strings"

	"leveldbpp/internal/lint/lockfacts"
)

// LockOrder builds the global lock-acquisition graph — every site where
// one class lock is taken while another is held, directly or through any
// chain of calls resolved by the lockfacts call graph — and checks it
// against the blessed partial order declared in //lsm:lockorder
// directives:
//
//	//lsm:lockorder lsm.DB.mu < lsm.DB.logMu
//	//lsm:lockorder core.DB.writeMu < lsm.DB.mu < cache.shard.mu
//
// Each chain contributes its adjacent pairs; the blessed order is the
// transitive closure of all chains in the program. Three findings:
//
//   - a cycle in the observed graph (a deadlock candidate) is reported
//     once with the full witness call chain of every hop, naming the
//     intermediate functions;
//   - an acquisition inverting a blessed pair;
//   - an acquisition whose pair no //lsm:lockorder chain covers.
//
// Lock classes are instance-blind (see the lockfacts package doc), so
// acquiring a second instance of a held class is not reported. Suppress
// a single acquisition site with //lsm:lockok.
var LockOrder = &Analyzer{
	Name:        "lockorder",
	Doc:         "lock acquisitions follow the blessed //lsm:lockorder partial order; the observed acquisition graph is acyclic",
	Suppression: "lsm:lockok",
	RunProgram:  runLockOrder,
}

// lockOrderDirective is one parsed //lsm:lockorder chain.
type lockOrderDirective struct {
	classes []string
	pos     token.Pos
}

func runLockOrder(pass *ProgramPass) {
	directives := collectLockOrderDirectives(pass)
	blessed := map[string]map[string]bool{} // blessed[a][b]: a may be held while acquiring b
	for _, d := range directives {
		for i := 0; i+1 < len(d.classes); i++ {
			addBlessed(blessed, d.classes[i], d.classes[i+1])
		}
	}
	transitiveClose(blessed)
	for _, d := range directives {
		cyclic := false
		for _, c := range d.classes {
			if blessed[c][c] {
				cyclic = true
			}
		}
		if cyclic {
			pass.Reportf(d.pos, "//lsm:lockorder directives form a cycle; the blessed order must be a partial order")
			return
		}
	}

	edges := dedupEdges(pass.Prog.Edges())

	// Pair up the observed class graph. Edges the blessed order covers
	// (either direction) are judged against it — an inversion is reported
	// as an inversion, at the offending site. Cycle detection applies to
	// the uncovered remainder: a cycle there is reported once, with every
	// hop's witness chain, not edge-by-edge.
	first := map[[2]string]lockfacts.Edge{}
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		key := [2]string{e.From, e.To}
		if _, ok := first[key]; !ok {
			first[key] = e
		}
		if !blessed[e.From][e.To] && !blessed[e.To][e.From] {
			addBlessed(adj, e.From, e.To)
		}
	}
	inCycle := cyclicPairs(adj)

	reportedCycles := map[string]bool{}
	for _, e := range edges {
		if inCycle[[2]string{e.From, e.To}] {
			cycle := renderCycle(adj, inCycle, first, e.From)
			if reportedCycles[cycle] {
				continue
			}
			reportedCycles[cycle] = true
			rep := first[[2]string{e.From, e.To}]
			if pass.SuppressedAt(rep.Pos, "lsm:lockok") {
				continue
			}
			pass.Reportf(rep.Pos, "lock-acquisition cycle: %s; break one edge or suppress with //lsm:lockok", cycle)
			continue
		}
		if blessed[e.From][e.To] {
			continue
		}
		if pass.SuppressedAt(e.Pos, "lsm:lockok") {
			continue
		}
		if blessed[e.To][e.From] {
			pass.Reportf(e.Pos, "acquires %s while holding %s (%s), inverting the blessed lock order %s < %s",
				e.To, e.From, e.Path(), e.To, e.From)
			continue
		}
		pass.Reportf(e.Pos, "acquires %s while holding %s (%s); not covered by any //lsm:lockorder chain",
			e.To, e.From, e.Path())
	}
}

// collectLockOrderDirectives parses every //lsm:lockorder comment in the
// program, in deterministic (package, file, position) order.
func collectLockOrderDirectives(pass *ProgramPass) []lockOrderDirective {
	var out []lockOrderDirective
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lsm:lockorder") {
						continue
					}
					spec := strings.TrimSpace(strings.TrimPrefix(text, "lsm:lockorder"))
					var classes []string
					ok := spec != ""
					for _, part := range strings.Split(spec, "<") {
						part = strings.TrimSpace(part)
						if part == "" || strings.ContainsAny(part, " \t") {
							ok = false
							break
						}
						classes = append(classes, part)
					}
					if !ok || len(classes) < 2 {
						pass.Reportf(c.Pos(), "malformed //lsm:lockorder directive; want `//lsm:lockorder A < B [< C ...]`")
						continue
					}
					out = append(out, lockOrderDirective{classes: classes, pos: c.Pos()})
				}
			}
		}
	}
	return out
}

func addBlessed(m map[string]map[string]bool, a, b string) {
	if m[a] == nil {
		m[a] = map[string]bool{}
	}
	m[a][b] = true
}

// transitiveClose closes the relation in place (Floyd–Warshall over the
// handful of declared classes).
func transitiveClose(m map[string]map[string]bool) {
	nodes := relationNodes(m)
	for _, k := range nodes {
		for _, i := range nodes {
			if !m[i][k] {
				continue
			}
			for _, j := range nodes {
				if m[k][j] {
					addBlessed(m, i, j)
				}
			}
		}
	}
}

func relationNodes(m map[string]map[string]bool) []string {
	set := map[string]bool{}
	for a, tos := range m {
		set[a] = true
		for b := range tos {
			set[b] = true
		}
	}
	nodes := make([]string, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// cyclicPairs returns the set of edges that lie inside a cycle of the
// observed class graph: both endpoints reach each other.
func cyclicPairs(adj map[string]map[string]bool) map[[2]string]bool {
	reach := map[string]map[string]bool{}
	for a, tos := range adj {
		for b := range tos {
			addBlessed(reach, a, b)
		}
	}
	transitiveClose(reach)
	out := map[[2]string]bool{}
	for a, tos := range adj {
		for b := range tos {
			if reach[b][a] {
				out[[2]string{a, b}] = true
			}
		}
	}
	return out
}

// renderCycle walks one representative cycle through the cyclic edges
// starting from the lexicographically smallest reachable class, rendering
// every hop with its witness call chain.
func renderCycle(adj map[string]map[string]bool, inCycle map[[2]string]bool, first map[[2]string]lockfacts.Edge, seed string) string {
	// Normalize the starting class so every edge of the same cycle
	// renders the same string.
	members := map[string]bool{seed: true}
	queue := []string{seed}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, b := range sortedSet(adj[a]) {
			if inCycle[[2]string{a, b}] && !members[b] {
				members[b] = true
				queue = append(queue, b)
			}
		}
	}
	start := ""
	for _, m := range sortedBoolSet(members) {
		start = m
		break
	}

	var b strings.Builder
	b.WriteString(start)
	cur := start
	visited := map[string]bool{}
	for {
		visited[cur] = true
		next := ""
		for _, cand := range sortedSet(adj[cur]) {
			if !inCycle[[2]string{cur, cand}] {
				continue
			}
			// Prefer closing the loop, then unvisited nodes.
			if cand == start && len(visited) > 1 {
				next = cand
				break
			}
			if !visited[cand] && next == "" {
				next = cand
			}
		}
		if next == "" {
			break
		}
		e := first[[2]string{cur, next}]
		b.WriteString(" -> ")
		b.WriteString(next)
		b.WriteString(" (via ")
		b.WriteString(e.Path())
		b.WriteString(")")
		if next == start {
			break
		}
		cur = next
	}
	return b.String()
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedBoolSet(m map[string]bool) []string { return sortedSet(m) }

// dedupEdges collapses identical (From, To, Pos) triples — one call site
// resolving to several implementations that all acquire the same class.
func dedupEdges(edges []lockfacts.Edge) []lockfacts.Edge {
	type key struct {
		from, to string
		pos      token.Pos
	}
	seen := map[key]bool{}
	var out []lockfacts.Edge
	for _, e := range edges {
		k := key{e.From, e.To, e.Pos}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}
