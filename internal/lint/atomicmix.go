package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leveldbpp/internal/lint/lockfacts"
)

// AtomicMix catches split-brain field access: a struct field updated
// through the sync/atomic package-level functions (atomic.AddInt64(&x.f)
// and friends) in one function and read or written plainly in another —
// across package boundaries, since fields are keyed canonically (the
// typed atomics, atomic.Int64 etc., cannot be mixed and need no check).
// A plain access is accepted when:
//
//   - the field carries a `// guarded by <mu>` annotation and the
//     accessor visibly locks that mutex, follows the *Locked suffix
//     convention, or carries //lsm:locked — the annotated mutex is the
//     declared alternative to the atomic;
//   - the object is unpublished (just built from a composite literal in
//     the same body): constructors initialize plainly by design;
//   - the line carries //lsm:atomicok.
//
// Everything else is a data race waiting for a weaker memory model.
var AtomicMix = &Analyzer{
	Name:        "atomicmix",
	Doc:         "fields touched via sync/atomic are never accessed plainly without the guarding mutex, across the whole program",
	Suppression: "lsm:atomicok",
	RunProgram:  runAtomicMix,
}

func runAtomicMix(pass *ProgramPass) {
	// Pass 1: every field reached by &x.f arguments of sync/atomic
	// package-level calls, plus the positions of those selector uses
	// (they are not "plain" accesses).
	atomicFields := map[string]token.Pos{}
	atomicUse := map[token.Pos]bool{}
	for _, pkg := range pass.Pkgs {
		fpkg := pass.FactsPkg(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					sel, ok := unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					key := fieldKey(fpkg, sel)
					if key == "" {
						continue
					}
					if _, seen := atomicFields[key]; !seen {
						atomicFields[key] = sel.Pos()
					}
					atomicUse[sel.Pos()] = true
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: plain selector accesses of those fields, judged in the
	// context of their enclosing function.
	for _, pkg := range pass.Pkgs {
		fpkg := pass.FactsPkg(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkPlainAccess(pass, pkg, fpkg, fd, atomicFields, atomicUse)
			}
		}
	}
}

func checkPlainAccess(pass *ProgramPass, pkg *Package, fpkg *lockfacts.Pkg, fd *ast.FuncDecl, atomicFields map[string]token.Pos, atomicUse map[token.Pos]bool) {
	lockedSuffix := strings.HasSuffix(fd.Name.Name, "Locked") || strings.HasSuffix(fd.Name.Name, "locked")
	trusted := lockedSuffix || funcHasDirective(fd, "lsm:locked")
	locked := visiblyLockedNames(fd.Body)
	unpublished := localCompositeInits(pkg.Info, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key := fieldKey(fpkg, sel)
		if key == "" {
			return true
		}
		if _, hot := atomicFields[key]; !hot || atomicUse[sel.Pos()] {
			return true
		}
		guard := pass.Prog.Guards[key]
		if guard != "" && (trusted || locked[guard]) {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if rObj := objOf(pkg.Info, root); rObj != nil && unpublished[rObj] {
				return true
			}
		}
		if pass.SuppressedAt(sel.Pos(), "lsm:atomicok") {
			return true
		}
		field := sel.Sel.Name
		if guard != "" {
			pass.Reportf(sel.Sel.Pos(),
				"%s is updated with sync/atomic elsewhere but accessed plainly here without holding %s",
				field, guard)
		} else {
			pass.Reportf(sel.Sel.Pos(),
				"%s is updated with sync/atomic elsewhere but accessed plainly here; no guarded-by mutex excuses the mix",
				field)
		}
		return true
	})
}

// isAtomicPkgCall reports whether call invokes a package-level function
// of sync/atomic (AddInt64, StorePointer, ...) — not a typed-atomic
// method, whose receiver cannot be accessed plainly anyway.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldKey canonicalizes a field selector to "<pkg tail>.<Type>.<field>",
// matching lockfacts.Program.Guards keys; "" for non-fields.
func fieldKey(fpkg *lockfacts.Pkg, sel *ast.SelectorExpr) string {
	if fpkg == nil {
		return ""
	}
	obj, ok := fpkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return ""
	}
	s, ok := fpkg.Info.Selections[sel]
	if !ok {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	path := named.Obj().Pkg().Path()
	tail := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		tail = path[i+1:]
	}
	return tail + "." + named.Obj().Name() + "." + obj.Name()
}

// visiblyLockedNames collects the final names of mutexes the body locks,
// the same flow-insensitive evidence lockguard accepts.
func visiblyLockedNames(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch mu := unparen(sel.X).(type) {
		case *ast.Ident:
			locked[mu.Name] = true
		case *ast.SelectorExpr:
			locked[mu.Sel.Name] = true
		}
		return true
	})
	return locked
}
