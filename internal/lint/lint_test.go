package lint

import (
	"go/token"
	"regexp"
	"testing"
)

// wantRE extracts the expectation regexp from a `// want "..."` comment.
var wantRE = regexp.MustCompile(`want "([^"]*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hits int
}

// collectWants scans a loaded package for `// want "regexp"` comments.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// TestAnalyzersTestdata runs each analyzer over its testdata package and
// asserts that every `// want` expectation fires exactly once and that no
// unexpected diagnostics appear.
func TestAnalyzersTestdata(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkgs, err := Load(".", "./testdata/src/"+a.Name)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			wants := collectWants(t, pkgs[0])
			if len(wants) == 0 {
				t.Fatalf("testdata package for %s has no // want expectations", a.Name)
			}
			diags := RunAnalyzers(pkgs, []*Analyzer{a})
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hits++
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if w.hits != 1 {
					t.Errorf("%s:%d: want %q fired %d times, expected exactly once",
						w.file, w.line, w.re, w.hits)
				}
			}
		})
	}
}

// TestRepoIsClean is the whole-repo smoke test: lsmlint ./... must report
// zero diagnostics, i.e. the codebase obeys its own invariants. Any
// finding here is either a bug to fix or a site to annotate — never a
// reason to weaken the analyzer.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module layout changed?", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix the code or annotate the site (see package lint doc)", len(diags))
	}
}

// TestByName covers the CLI's analyzer lookup.
func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) = non-nil")
	}
}

// TestDiagnosticString pins the file:line:col rendering the Makefile and
// editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "demo",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "boom",
	}
	if got, wantS := d.String(), "x.go:3:7: boom [demo]"; got != wantS {
		t.Errorf("String() = %q, want %q", got, wantS)
	}
}

// TestSuppression verifies the line-directive scanner independently of
// any analyzer.
func TestSuppression(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/sliceretain")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pkg := pkgs[0]
	directives := buildLineDirectives(pkg.Fset, pkg.Files)
	found := false
	for _, lines := range directives {
		for _, ds := range lines {
			for _, d := range ds {
				if d == "lsm:aliasok" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("no lsm:aliasok directive found in sliceretain testdata")
	}
}
